// Unified experiment driver: selects registered sweeps by name, so one
// binary replaces the per-experiment ones (which remain as thin wrappers).
//
//   disp_bench --list
//   disp_bench all --threads=8 --jsonl=run.jsonl
//   disp_bench table1_sync_rooted fig5_sync_probe --seeds=1,2,3,4,5
#include <iostream>

#include "algo/registry.hpp"
#include "exp/bench_registry.hpp"
#include "graph/spec.hpp"
#include "util/cli.hpp"

namespace {

void printUsage(std::ostream& os) {
  os << "usage: disp_bench [--list] [--threads=N] [--run-threads=N]\n"
        "                  [--seeds=a,b,c] [--jsonl=PATH]\n"
        "                  [--trace=PATH | --trajectory=PATH] [--sample=N]\n"
        "                  [--graphs=SPEC;SPEC] [--placements=SPEC;SPEC]\n"
        "                  [--ks=a,b,c] [--faults=SPEC;SPEC] [--shard=I/N]\n"
        "                  [--list-cells] [--stream-cells]\n"
        "                  <sweep>... | all\n\n"
        "sweeps:\n";
  for (const auto& def : disp::exp::benchRegistry()) {
    os << "  " << def.name << (def.heavy ? "  (excluded from `all`)" : "")
       << "\n      " << def.summary << "\n";
  }
  os << "\n--seeds replicates add per-cell \"±95\" CI columns to the tables.\n"
        "--trace streams every run's typed events + sampled snapshots as\n"
        "JSON-lines (cadence --sample=N; schema validated by\n"
        "scripts/check_trace.sh).\n"
        "--graphs/--placements override a sweep's workload axes with\n"
        "';'-separated spec strings — e.g.\n"
        "  --graphs='er:n=2048,p=0.01;file:roads.e'\n"
        "  --placements='rooted;clusters:l=8;adversarial:far'\n"
        "(the `scenario` sweep is the blank canvas for these).\n"
        "--faults overrides a sweep's fault-load axis with ';'-separated\n"
        "FaultSpec strings (default: none) — e.g.\n"
        "  --faults='none;crash:rate=0.25,restart=64;churn:edges=4,every=32'\n"
        "(the `faults` sweep is the self-stabilization scorecard).\n"
        "--shard=I/N runs every Nth cell of the deterministic enumeration;\n"
        "merge shard JSONL outputs with scripts/merge_jsonl.sh.\n"
        "--list-cells prints the enumeration (one JSON line per cell) without\n"
        "running anything; --stream-cells flushes the JSONL sink after every\n"
        "cell so rows are durable under kill -9 (disp_fleet drives both).\n"
        "Exit codes: 0 ok, 1 sweep error, 2 usage, 3 shard owns zero cells.\n"
        "--run-threads=N parallelizes inside each SYNC run (facts stay\n"
        "byte-identical); requires --threads=1 — the two axes multiply.\n"
        "Algorithms are registry keys:\n";
  os << " ";
  for (const auto& key : disp::algorithmKeys()) os << " " << key;
  os << "\ngraph families:\n ";
  for (const auto& key : disp::graphFamilyKeys()) os << " " << key;
  os << "\nDISP_BENCH_SCALE in {0.5, 1, 2, 4} scales every sweep.\n";
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const disp::Cli cli(argc, argv);
    if (cli.has("list") || cli.has("help")) {
      printUsage(std::cout);
      return 0;
    }
    std::vector<std::string> names = cli.positional();
    if (names.empty()) {
      printUsage(std::cerr);
      return 2;
    }
    if (names.size() == 1 && names[0] == "all") {
      names.clear();
      for (const auto& def : disp::exp::benchRegistry()) {
        if (!def.heavy) names.push_back(def.name);  // campaigns opt in by name
      }
    }
    return disp::exp::runBenches(names, cli);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
}
