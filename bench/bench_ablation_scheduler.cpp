// E13 — scheduler-adversary ablation.
// Epoch counts of the ASYNC algorithms under increasingly adversarial
// activation schedules.  Epoch-measured time should be scheduler-robust
// (that is the point of the epoch definition); raw activations are not.
#include <iostream>

#include "bench_common.hpp"
#include "core/scheduler.hpp"

using namespace disp;
using namespace disp::bench;

int main() {
  std::cout << "# E13: ablation — scheduler adversaries (ASYNC)\n";
  Table t({"algo", "sched", "k", "epochs", "activations", "act/epoch"});
  const auto k = static_cast<std::uint32_t>(96 * scale());
  for (const Algorithm algo : {Algorithm::RootedAsync, Algorithm::KsAsync}) {
    for (const auto& sched : knownSchedulers()) {
      const auto r = runCase("er", k, algo, 1, sched, 23);
      if (!r.run.dispersed) continue;
      t.row()
          .cell(algorithmName(algo))
          .cell(sched)
          .cell(std::uint64_t{k})
          .cell(r.run.time)
          .cell(r.run.activations)
          .cell(double(r.run.activations) / double(r.run.time), 1);
    }
  }
  t.print(std::cout, "epoch robustness across schedulers");
  return 0;
}
