// E10 — Figure 6 / Lemma 6.
// Guest_See_Off escorts g guests home in O(log g) pairing sweeps: on a
// clique the guest set roughly equals the settled neighborhood, so the
// average number of see-off sweeps per DFS step must track log2, not
// linear.
#include <cmath>
#include <iostream>

#include "algo/async_rooted.hpp"
#include "algo/placement.hpp"
#include "bench_common.hpp"
#include "core/async_engine.hpp"

using namespace disp;
using namespace disp::bench;

int main() {
  std::cout << "# E10: Fig. 6 / Lemma 6 — Guest_See_Off sweeps\n";
  Table t({"graph", "k", "seeOffSweeps", "steps", "sweeps/step", "log2(k)"});
  for (const std::uint32_t k : kSweep(4, 8)) {
    const Graph g = makeComplete(k).build(PortLabeling::RandomPermutation, 9);
    const Placement p = rootedPlacement(g, k, 0, 7);
    AsyncEngine engine(g, p.positions, p.ids, makeRoundRobinScheduler(k));
    RootedAsyncDispersion algo(engine);
    algo.start();
    engine.run(400000000ULL);
    const auto& s = algo.stats();
    const std::uint64_t steps = s.forwardMoves + s.backtracks;
    t.row()
        .cell("complete")
        .cell(std::uint64_t{k})
        .cell(s.seeOffSweeps)
        .cell(steps)
        .cell(double(s.seeOffSweeps) / double(steps), 2)
        .cell(std::log2(double(k)), 2);
  }
  t.print(std::cout, "see-off sweeps per step track log2(k)");
  return 0;
}
