// E10 — Figure 6 / Lemma 6 (body: src/exp/benches_figs.cpp).
#include "exp/bench_registry.hpp"

int main(int argc, char** argv) {
  return disp::exp::benchMain("fig6_guest_see_off", argc, argv);
}
