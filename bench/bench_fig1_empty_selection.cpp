// E6 — Figure 1 / Lemma 1 (body: src/exp/benches_figs.cpp).
#include "exp/bench_registry.hpp"

int main(int argc, char** argv) {
  return disp::exp::benchMain("fig1_empty_selection", argc, argv);
}
