// E6 — Figure 1 / Lemma 1.
// Empty_Node_Selection on random trees: the fraction of empty nodes must be
// >= 1/3 for every tree (Lemma 1), with ~1/2 typical (lines).
#include <iostream>

#include "algo/empty_selection.hpp"
#include "bench_common.hpp"
#include "util/rng.hpp"

using namespace disp;
using namespace disp::bench;

namespace {
RootedTree randomTree(std::uint32_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::int64_t> parent(n);
  parent[0] = -1;
  for (std::uint32_t v = 1; v < n; ++v)
    parent[v] = static_cast<std::int64_t>(rng.below(v));
  return RootedTree::fromParentArray(parent, 0);
}
}  // namespace

int main() {
  std::cout << "# E6: Fig. 1 / Lemma 1 — Empty_Node_Selection\n";
  Table t({"k", "trees", "minEmptyFrac", "meanEmptyFrac", "lemma1 (>=0.333)"});
  for (const std::uint32_t k : kSweep(4, 11)) {
    std::vector<double> fracs;
    bool ok = true;
    for (std::uint64_t seed = 1; seed <= 32; ++seed) {
      const RootedTree tree = randomTree(k, seed * 977 + k);
      const auto sel = emptyNodeSelection(tree);
      validateSelection(tree, sel);  // throws on any lemma violation
      const double frac = double(sel.emptyCount()) / double(k);
      fracs.push_back(frac);
      ok &= sel.emptyCount() * 3 + 2 >= k;
    }
    const Summary s = summarize(fracs);
    t.row()
        .cell(std::uint64_t{k})
        .cell(std::uint64_t{32})
        .cell(s.min, 3)
        .cell(s.mean, 3)
        .cell(std::string(ok ? "holds" : "VIOLATED"));
  }
  t.print(std::cout, "empty fraction on random trees");
  return 0;
}
