// E19 — web-scale ingest & peak-RSS campaign (body:
// src/exp/benches_scale.cpp).  Datasets: scripts/make_scale_data.sh.
#include "exp/bench_registry.hpp"

int main(int argc, char** argv) {
  return disp::exp::benchMain("scale_real", argc, argv);
}
