// E20 — fault campaign scorecard (body: src/exp/benches_faults.cpp).
#include "exp/bench_registry.hpp"

int main(int argc, char** argv) {
  return disp::exp::benchMain("faults", argc, argv);
}
