// E1 — Table 1, SYNC rooted rows.
// Measures rounds vs k for the paper's RootedSyncDisp (Theorem 6.1, O(k)),
// the Sudo-style helper-doubling baseline (O(k log k); GeneralSync with
// ℓ=1) and the KS baseline (O(min{m, kΔ})), across graph families.  The
// claim to check: ours has flat rounds/k; Sudo-style has flat
// rounds/(k log k); KS blows up on dense graphs.
#include <iostream>

#include "bench_common.hpp"

using namespace disp;
using namespace disp::bench;

int main() {
  std::cout << "# E1: Table 1 — SYNC rooted (rounds vs k)\n";
  const std::vector<std::string> families{"er", "complete", "star", "path", "randtree"};
  const std::vector<Algorithm> algos{Algorithm::RootedSync, Algorithm::GeneralSync,
                                     Algorithm::KsSync};

  for (const auto& family : families) {
    Table t({"k", "n", "m", "Delta", "RootedSync(ours)", "Sudo-style", "KS-baseline",
             "ours/k", "sudo/(k log k)"});
    std::vector<double> ks, ours;
    for (const std::uint32_t k : kSweep(5, family == "complete" ? 8 : 9)) {
      // complete graphs need n=k to stress KS; other families use n=2k.
      const double nk = family == "complete" ? 1.0 : 2.0;
      const auto a = runCase(family, k, Algorithm::RootedSync, 1, "round_robin", 3, nk);
      const auto b = runCase(family, k, Algorithm::GeneralSync, 1, "round_robin", 3, nk);
      const auto c = runCase(family, k, Algorithm::KsSync, 1, "round_robin", 3, nk);
      if (!a.run.dispersed || !b.run.dispersed || !c.run.dispersed) {
        std::cout << "!! undispersed case " << family << " k=" << k << "\n";
        continue;
      }
      const double lg = std::log2(double(k));
      t.row()
          .cell(std::uint64_t{k})
          .cell(std::uint64_t{a.n})
          .cell(a.edges)
          .cell(std::uint64_t{a.maxDegree})
          .cell(a.run.time)
          .cell(b.run.time)
          .cell(c.run.time)
          .cell(double(a.run.time) / k, 1)
          .cell(double(b.run.time) / (k * lg), 2);
      ks.push_back(k);
      ours.push_back(double(a.run.time));
    }
    t.print(std::cout, "family: " + family);
    if (ks.size() >= 2) printDiagnosis(family + "/RootedSync", ks, ours);
  }
  return 0;
}
