// E8 — Figure 5 / Lemma 4 (body: src/exp/benches_figs.cpp).
#include "exp/bench_registry.hpp"

int main(int argc, char** argv) {
  return disp::exp::benchMain("fig5_sync_probe", argc, argv);
}
