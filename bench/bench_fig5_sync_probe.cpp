// E8 — Figure 5 / Lemma 4.
// Sync_Probe is O(1) rounds regardless of node degree: the longest single
// probe during a full RootedSyncDisp run must stay flat while the hub
// degree grows by 16x.
#include <iostream>

#include "algo/placement.hpp"
#include "algo/sync_rooted.hpp"
#include "bench_common.hpp"
#include "core/sync_engine.hpp"

using namespace disp;
using namespace disp::bench;

int main() {
  std::cout << "# E8: Fig. 5 / Lemma 4 — Sync_Probe rounds vs degree\n";
  Table t({"graph", "Delta", "k", "probes", "maxProbeRounds", "avgIter/probe"});
  const auto k = static_cast<std::uint32_t>(64 * scale());
  for (const std::uint32_t hub : {128u, 256u, 512u, 1024u, 2048u}) {
    const Graph g = makeStar(hub + 1).build(PortLabeling::RandomPermutation, 7);
    const Placement p = rootedPlacement(g, k, 0, 5);
    SyncEngine engine(g, p.positions, p.ids);
    RootedSyncDispersion algo(engine);
    algo.start();
    engine.run(100000000ULL);
    const auto& s = algo.stats();
    t.row()
        .cell("star")
        .cell(std::uint64_t{g.maxDegree()})
        .cell(std::uint64_t{k})
        .cell(s.probes)
        .cell(s.maxProbeRounds)
        .cell(double(s.probeIterations) / double(s.probes), 2);
  }
  t.print(std::cout, "probe cost is degree-independent (flat column 5)");
  return 0;
}
