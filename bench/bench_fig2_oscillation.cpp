// E7 — Figures 2-4 / Lemmas 2-3 (body: src/exp/benches_figs.cpp).
#include "exp/bench_registry.hpp"

int main(int argc, char** argv) {
  return disp::exp::benchMain("fig2_oscillation", argc, argv);
}
