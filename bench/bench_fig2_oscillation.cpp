// E7 — Figures 2-4 / Lemmas 2-3.
// Cover-assignment statistics on random trees: trip lengths are <= 6
// rounds, children-coverers handle <= 3 nodes, sibling-coverers <= 2,
// and the measured end-to-end algorithm never builds a longer cycle
// (OscillatorSystem asserts this during every RootedSyncDisp run).
#include <iostream>

#include "algo/empty_selection.hpp"
#include "bench_common.hpp"
#include "util/rng.hpp"

using namespace disp;
using namespace disp::bench;

namespace {
RootedTree randomTree(std::uint32_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::int64_t> parent(n);
  parent[0] = -1;
  for (std::uint32_t v = 1; v < n; ++v)
    parent[v] = static_cast<std::int64_t>(rng.below(v));
  return RootedTree::fromParentArray(parent, 0);
}
}  // namespace

int main() {
  std::cout << "# E7: Figs. 2-4 / Lemmas 2-3 — oscillation covers\n";
  Table t({"k", "coverers", "childType", "siblingType", "maxCovered", "maxTripRounds"});
  for (const std::uint32_t k : kSweep(4, 11)) {
    std::uint32_t coverers = 0, child = 0, sibling = 0, maxCovered = 0, maxTrip = 0;
    for (std::uint64_t seed = 1; seed <= 16; ++seed) {
      const RootedTree tree = randomTree(k, seed * 31 + k);
      const auto sel = emptyNodeSelection(tree);
      for (std::uint32_t v = 0; v < k; ++v) {
        if (sel.coverType[v] == CoverType::None) continue;
        ++coverers;
        child += sel.coverType[v] == CoverType::Children;
        sibling += sel.coverType[v] == CoverType::Siblings;
        const auto covered = static_cast<std::uint32_t>(sel.covers[v].size());
        maxCovered = std::max(maxCovered, covered);
        maxTrip = std::max(maxTrip, oscillationTripRounds(sel.coverType[v], covered));
      }
    }
    t.row()
        .cell(std::uint64_t{k})
        .cell(std::uint64_t{coverers})
        .cell(std::uint64_t{child})
        .cell(std::uint64_t{sibling})
        .cell(std::uint64_t{maxCovered})
        .cell(std::uint64_t{maxTrip});
  }
  t.print(std::cout, "cover statistics (Lemma 2 bound: maxTripRounds <= 6)");
  return 0;
}
