// E12 — design-choice ablation (body: src/exp/benches_misc.cpp).
#include "exp/bench_registry.hpp"

int main(int argc, char** argv) {
  return disp::exp::benchMain("ablation_techniques", argc, argv);
}
