// E12 — design-choice ablation.
// The paper's SYNC result stacks two techniques on the KS baseline:
//   level 0: KS sequential probing            -> O(min{m, kΔ})
//   level 1: + parallel probing w/ doubling   -> O(k log k)  (Sudo-style)
//   level 2: + seekers, empty nodes, oscillation -> O(k)     (Theorem 6.1)
// This bench isolates each level's contribution on a dense instance.
#include <iostream>

#include "bench_common.hpp"

using namespace disp;
using namespace disp::bench;

int main() {
  std::cout << "# E12: ablation — technique levels on a clique (k = n)\n";
  Table t({"k", "KS(level0)", "doubling(level1)", "full(level2)",
           "lvl0/lvl2", "lvl1/lvl2"});
  for (const std::uint32_t k : kSweep(5, 9)) {
    const auto l0 = runCase("complete", k, Algorithm::KsSync, 1, "round_robin", 5, 1.0);
    const auto l1 =
        runCase("complete", k, Algorithm::GeneralSync, 1, "round_robin", 5, 1.0);
    const auto l2 =
        runCase("complete", k, Algorithm::RootedSync, 1, "round_robin", 5, 1.0);
    t.row()
        .cell(std::uint64_t{k})
        .cell(l0.run.time)
        .cell(l1.run.time)
        .cell(l2.run.time)
        .cell(double(l0.run.time) / double(l2.run.time), 2)
        .cell(double(l1.run.time) / double(l2.run.time), 2);
  }
  t.print(std::cout, "rounds by technique level (speedups vs full algorithm)");
  return 0;
}
