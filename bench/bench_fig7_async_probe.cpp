// E9 — Figure 7 / Lemma 5.
// Async_Probe finds a fully unsettled neighbor in O(log k) iterations via
// helper doubling: average probe iterations per DFS step must grow
// logarithmically (not linearly) with k on dense graphs.
#include <cmath>
#include <iostream>

#include "algo/async_rooted.hpp"
#include "algo/placement.hpp"
#include "bench_common.hpp"
#include "core/async_engine.hpp"

using namespace disp;
using namespace disp::bench;

int main() {
  std::cout << "# E9: Fig. 7 / Lemma 5 — Async_Probe iterations vs k\n";
  Table t({"graph", "k", "probes", "iter/probe", "log2(k)", "guests"});
  for (const std::uint32_t k : kSweep(4, 8)) {
    const Graph g = makeComplete(k).build(PortLabeling::RandomPermutation, 3);
    const Placement p = rootedPlacement(g, k, 0, 5);
    AsyncEngine engine(g, p.positions, p.ids, makeRoundRobinScheduler(k));
    RootedAsyncDispersion algo(engine);
    algo.start();
    engine.run(400000000ULL);
    const auto& s = algo.stats();
    t.row()
        .cell("complete")
        .cell(std::uint64_t{k})
        .cell(s.probes)
        .cell(double(s.probeIterations) / double(s.probes), 2)
        .cell(std::log2(double(k)), 2)
        .cell(s.guestsRecruited);
  }
  t.print(std::cout, "iterations per probe track log2(k), not k");
  return 0;
}
