// E9 — Figure 7 / Lemma 5 (body: src/exp/benches_figs.cpp).
#include "exp/bench_registry.hpp"

int main(int argc, char** argv) {
  return disp::exp::benchMain("fig7_async_probe", argc, argv);
}
