// E15 — Table 1 at scale, k=2^10..2^14 (body: src/exp/benches_scale.cpp).
#include "exp/bench_registry.hpp"

int main(int argc, char** argv) {
  return disp::exp::benchMain("table1_scale", argc, argv);
}
