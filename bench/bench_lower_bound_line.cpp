// E11 — the Ω(k) lower-bound anchor (§1).
// On a path with all k agents at one end, any algorithm needs >= k-1
// rounds.  Reported: measured rounds / k for every algorithm — the paper's
// algorithm should sit at a small constant.
#include <iostream>

#include "bench_common.hpp"

using namespace disp;
using namespace disp::bench;

int main() {
  std::cout << "# E11: lower-bound anchor — path, all agents at one end\n";
  Table t({"k", "RootedSync/k", "Sudo-style/k", "KS/k", "RootedAsync(ep)/k"});
  for (const std::uint32_t k : kSweep(5, 9)) {
    const auto a = runCase("path", k, Algorithm::RootedSync, 1, "round_robin", 3, 1.5);
    const auto b = runCase("path", k, Algorithm::GeneralSync, 1, "round_robin", 3, 1.5);
    const auto c = runCase("path", k, Algorithm::KsSync, 1, "round_robin", 3, 1.5);
    const auto d = runCase("path", k, Algorithm::RootedAsync, 1, "round_robin", 3, 1.5);
    t.row()
        .cell(std::uint64_t{k})
        .cell(double(a.run.time) / k, 2)
        .cell(double(b.run.time) / k, 2)
        .cell(double(c.run.time) / k, 2)
        .cell(double(d.run.time) / k, 2);
  }
  t.print(std::cout, "time/k ratios (lower bound = 1.0)");
  return 0;
}
