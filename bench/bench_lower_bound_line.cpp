// E11 — the Ω(k) lower-bound anchor (body: src/exp/benches_misc.cpp).
#include "exp/bench_registry.hpp"

int main(int argc, char** argv) {
  return disp::exp::benchMain("lower_bound_line", argc, argv);
}
