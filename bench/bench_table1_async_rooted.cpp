// E2 — Table 1, ASYNC rooted rows.
// Epochs vs k for RootedAsyncDisp (Theorem 7.1, O(k log k)) against the KS
// baseline (O(min{m, kΔ})), under several fair adversarial schedulers.
#include <iostream>

#include "bench_common.hpp"

using namespace disp;
using namespace disp::bench;

int main() {
  std::cout << "# E2: Table 1 — ASYNC rooted (epochs vs k)\n";
  for (const auto& family : {std::string("er"), std::string("complete"),
                             std::string("star")}) {
    Table t({"k", "Delta", "sched", "RootedAsync(ours)", "KS-async",
             "ours/(k log k)", "ks/min(m,kDelta)"});
    std::vector<double> ks, ours;
    for (const std::uint32_t k : kSweep(5, 8)) {
      const double nk = family == "complete" ? 1.0 : 2.0;
      for (const char* sched : {"round_robin", "uniform"}) {
        const auto a = runCase(family, k, Algorithm::RootedAsync, 1, sched, 5, nk);
        const auto b = runCase(family, k, Algorithm::KsAsync, 1, sched, 5, nk);
        if (!a.run.dispersed || !b.run.dispersed) continue;
        const double lg = std::log2(double(k));
        const double ksBound =
            std::min<double>(double(a.edges), double(k) * a.maxDegree);
        t.row()
            .cell(std::uint64_t{k})
            .cell(std::uint64_t{a.maxDegree})
            .cell(std::string(sched))
            .cell(a.run.time)
            .cell(b.run.time)
            .cell(double(a.run.time) / (k * lg), 2)
            .cell(double(b.run.time) / ksBound, 2);
        if (std::string(sched) == "round_robin") {
          ks.push_back(k);
          ours.push_back(double(a.run.time));
        }
      }
    }
    t.print(std::cout, "family: " + family);
    if (ks.size() >= 2) printDiagnosis(family + "/RootedAsync", ks, ours);
  }
  return 0;
}
