// E4 — Table 1, ASYNC general rows (body: src/exp/benches_table1.cpp).
#include "exp/bench_registry.hpp"

int main(int argc, char** argv) {
  return disp::exp::benchMain("table1_async_general", argc, argv);
}
