// E4 — Table 1, ASYNC general rows.
//
// Measures GeneralAsyncDisp (Theorem 8.2 = the RootedAsyncDisp growing
// phase composed with KS subsumption, collapse walks and squatting) from
// general initial configurations with ℓ > 1 source nodes, against the
// O(k log k)-epoch claim, across adversarial schedulers.  The ℓ = 1 column
// is kept as the rooted reference point so the general rows can be read as
// a multiplicative overhead over the growing phase alone.
#include <iostream>

#include "bench_common.hpp"

using namespace disp;
using namespace disp::bench;

int main() {
  std::cout << "# E4: Table 1 — ASYNC general (GeneralAsyncDisp, Theorem 8.2)\n";
  Table t({"family", "k", "l", "sched", "epochs", "epochs/(k log k)"});
  std::vector<double> ks, es;
  for (const auto& family : {std::string("er"), std::string("grid")}) {
    for (const std::uint32_t k : kSweep(5, 8)) {
      for (const std::uint32_t l : {1u, 4u, 16u}) {
        for (const char* sched : {"round_robin", "uniform", "weighted"}) {
          const auto r = runCase(family, k, Algorithm::GeneralAsync, l, sched, 9);
          if (!r.run.dispersed) continue;
          const double lg = std::log2(double(k));
          t.row()
              .cell(family)
              .cell(std::uint64_t{k})
              .cell(std::uint64_t{l})
              .cell(std::string(sched))
              .cell(r.run.time)
              .cell(double(r.run.time) / (k * lg), 2);
          if (family == "er" && l == 4 && std::string(sched) == "round_robin") {
            ks.push_back(k);
            es.push_back(double(r.run.time));
          }
        }
      }
    }
  }
  t.print(std::cout, "ASYNC general dispersion under schedulers");
  if (ks.size() >= 2) printDiagnosis("er/GeneralAsync(l=4)", ks, es);
  return 0;
}
