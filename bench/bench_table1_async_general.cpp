// E4 — Table 1, ASYNC general rows.
//
// STATUS (see DESIGN.md §4 and EXPERIMENTS.md): the ASYNC general algorithm
// (Theorem 8.2 = RootedAsyncDisp growing + KS subsumption + squatting) is
// NOT implemented in this repository; its SYNC counterpart (subsumption,
// collapse walks, meeting arbitration) and the full ASYNC rooted algorithm
// (probing, Guest_See_Off, §4.3 hazard handling) are.  This bench measures
// the implemented ℓ=1 ASYNC point — the general rows' growing phase — so
// the epochs-vs-k shape of the general claim's dominant term is still
// exercised; general ℓ>1 is reported for SYNC in E3.
#include <iostream>

#include "bench_common.hpp"

using namespace disp;
using namespace disp::bench;

int main() {
  std::cout << "# E4: Table 1 — ASYNC general (growing-phase shape; see header note)\n";
  std::cout << "NOTE: l>1 ASYNC subsumption not implemented; measuring the "
               "l=1 growing phase that dominates Theorem 8.2's bound.\n";
  Table t({"family", "k", "sched", "epochs", "epochs/(k log k)"});
  std::vector<double> ks, es;
  for (const auto& family : {std::string("er"), std::string("grid")}) {
    for (const std::uint32_t k : kSweep(5, 8)) {
      for (const char* sched : {"round_robin", "uniform", "weighted"}) {
        const auto r = runCase(family, k, Algorithm::RootedAsync, 1, sched, 9);
        if (!r.run.dispersed) continue;
        const double lg = std::log2(double(k));
        t.row()
            .cell(family)
            .cell(std::uint64_t{k})
            .cell(std::string(sched))
            .cell(r.run.time)
            .cell(double(r.run.time) / (k * lg), 2);
        if (family == "er" && std::string(sched) == "round_robin") {
          ks.push_back(k);
          es.push_back(double(r.run.time));
        }
      }
    }
  }
  t.print(std::cout, "ASYNC growing phase under schedulers");
  if (ks.size() >= 2) printDiagnosis("er/RootedAsync", ks, es);
  return 0;
}
