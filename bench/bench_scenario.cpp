#include "exp/bench_registry.hpp"

int main(int argc, char** argv) {
  return disp::exp::benchMain("scenario", argc, argv);
}
