#pragma once
// Compatibility shim over the src/exp/ experiment driver.
//
// The bench binaries are now thin wrappers over the registered sweeps in
// src/exp/ (see exp/bench_registry.hpp); this header remains so that ad-hoc
// experiments and downstream snippets keep compiling.  runCase() is the
// historical single-seed entry point (seed 17 unless given), now delegating
// to exp::runCell; runCaseReplicates() adds seed-replicate aggregation.

#include <iostream>
#include <string>
#include <vector>

#include "exp/batch_runner.hpp"
#include "exp/sweep.hpp"
#include "util/table.hpp"

namespace disp::bench {

using exp::kSweep;
using exp::scale;

/// Historical result alias: {run, n, maxDegree, edges}.
using CaseResult = exp::RunRecord;

/// Builds the graph (n = ratio*k nodes), places agents and runs once.
inline CaseResult runCase(const std::string& family, std::uint32_t k,
                          const std::string& algo, std::uint32_t clusters = 1,
                          const std::string& sched = "round_robin",
                          std::uint64_t seed = 17, double nOverK = 2.0) {
  return exp::runCell({family, k, algo, exp::clustersPlacement(clusters), sched,
                       seed, nOverK, PortLabeling::RandomPermutation});
}

/// Seed-replicate variant: one run per seed plus the time summary
/// (mean/median/stddev over rounds or epochs).
struct ReplicatedCase {
  std::vector<CaseResult> runs;  ///< index-parallel with the seeds argument
  Summary time;
};

inline ReplicatedCase runCaseReplicates(const std::string& family, std::uint32_t k,
                                        const std::string& algo,
                                        const std::vector<std::uint64_t>& seeds,
                                        std::uint32_t clusters = 1,
                                        const std::string& sched = "round_robin",
                                        double nOverK = 2.0) {
  exp::SweepSpec spec;
  spec.name = "adhoc";
  spec.graphs = {family};
  spec.ks = {k};
  spec.algorithms = {algo};
  spec.placements = {exp::clustersPlacement(clusters)};
  spec.schedulers = {sched};
  spec.seeds = seeds;
  spec.nOverK = nOverK;
  exp::SweepResult res = exp::BatchRunner().run(spec);
  return {std::move(res.cells.front().replicates), res.cells.front().time};
}

inline void printDiagnosis(const std::string& label, const std::vector<double>& ks,
                           const std::vector<double>& times) {
  std::cout << exp::growthDiagnosisLine(label, ks, times) << "\n";
}

}  // namespace disp::bench
