#pragma once
// Shared scaffolding for the experiment binaries.  Every bench prints
// GitHub-markdown tables (the "rows" EXPERIMENTS.md quotes) and a growth
// diagnosis against the Table-1 models.  DISP_BENCH_SCALE ∈ {0.5, 1, 2, 4}
// scales the sweeps.

#include <cmath>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "algo/runner.hpp"
#include "graph/generators.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace disp::bench {

inline double scale() {
  if (const char* s = std::getenv("DISP_BENCH_SCALE")) return std::atof(s);
  return 1.0;
}

/// k values 2^lo .. 2^hi scaled by DISP_BENCH_SCALE.
inline std::vector<std::uint32_t> kSweep(std::uint32_t lo = 5, std::uint32_t hi = 9) {
  std::vector<std::uint32_t> ks;
  const double f = scale();
  for (std::uint32_t e = lo; e <= hi; ++e) {
    const auto k = static_cast<std::uint32_t>(double(1u << e) * f);
    if (k >= 8) ks.push_back(k);
  }
  return ks;
}

struct CaseResult {
  RunResult run;
  std::uint32_t n = 0;
  std::uint32_t maxDegree = 0;
  std::uint64_t edges = 0;
};

/// Builds the graph (n = ratio*k nodes), places agents and runs once.
inline CaseResult runCase(const std::string& family, std::uint32_t k,
                          Algorithm algo, std::uint32_t clusters = 1,
                          const std::string& sched = "round_robin",
                          std::uint64_t seed = 17, double nOverK = 2.0) {
  const auto n = static_cast<std::uint32_t>(double(k) * nOverK);
  const Graph g = makeFamily({family, n, seed});
  const Placement p = clusters == 1
                          ? rootedPlacement(g, k, 0, seed)
                          : clusteredPlacement(g, k, clusters, seed);
  CaseResult out;
  out.run = runDispersion(g, p, {algo, sched, seed});
  out.n = g.nodeCount();
  out.maxDegree = g.maxDegree();
  out.edges = g.edgeCount();
  return out;
}

inline void printDiagnosis(const std::string& label, const std::vector<double>& ks,
                           const std::vector<double>& times) {
  const auto d = diagnoseGrowth(ks, times);
  std::cout << "fit[" << label << "]: time ~ k^" << fmt(d.power.exponent, 2)
            << " (r2=" << fmt(d.power.r2, 3) << "), time/k: " << fmt(d.ratioLinearSmall, 1)
            << " -> " << fmt(d.ratioLinearLarge, 1)
            << ", time/(k log k): " << fmt(d.ratioKLogKSmall, 2) << " -> "
            << fmt(d.ratioKLogKLarge, 2) << "\n";
}

}  // namespace disp::bench
