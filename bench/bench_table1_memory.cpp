// E5 — Table 1 memory column.
// Max persistent bits per agent vs (k, Δ) for every algorithm; the paper
// claims O(log(k+Δ)) for all of them.  The report prints the measured
// high-water mark next to log2(k+Δ): the ratio must stay bounded as k
// doubles.
#include <iostream>

#include "bench_common.hpp"

using namespace disp;
using namespace disp::bench;

int main() {
  std::cout << "# E5: Table 1 — memory (max persistent bits/agent)\n";
  Table t({"algo", "family", "k", "Delta", "bits", "log2(k+Delta)", "bits/log"});
  for (const Algorithm algo : {Algorithm::RootedSync, Algorithm::RootedAsync,
                               Algorithm::GeneralSync, Algorithm::GeneralAsync,
                               Algorithm::KsSync, Algorithm::KsAsync}) {
    // GeneralAsync runs from a genuine general configuration (ℓ = 4); the
    // others keep their Table 1 placements (GeneralSync's ℓ = 1 is the
    // Sudo-style baseline row).
    const std::uint32_t clusters = algo == Algorithm::GeneralAsync ? 4 : 1;
    for (const auto& family : {std::string("er"), std::string("star")}) {
      for (const std::uint32_t k : kSweep(5, 8)) {
        const auto r = runCase(family, k, algo, clusters, "round_robin", 11);
        if (!r.run.dispersed) continue;
        const double lg = std::log2(double(k) + double(r.maxDegree));
        t.row()
            .cell(algorithmName(algo))
            .cell(family)
            .cell(std::uint64_t{k})
            .cell(std::uint64_t{r.maxDegree})
            .cell(r.run.maxMemoryBits)
            .cell(lg, 1)
            .cell(double(r.run.maxMemoryBits) / lg, 1);
      }
    }
  }
  t.print(std::cout, "memory vs O(log(k+Delta))");
  return 0;
}
