// E5 — Table 1 memory column (body: src/exp/benches_table1.cpp).
#include "exp/bench_registry.hpp"

int main(int argc, char** argv) {
  return disp::exp::benchMain("table1_memory", argc, argv);
}
