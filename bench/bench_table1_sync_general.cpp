// E3 — Table 1, SYNC general rows.
// Rounds vs k for the multi-source case (ℓ start nodes) with KS
// subsumption.  The growing phase here is the helper-doubling one (see
// DESIGN.md §4: the Theorem 8.1 integration of the oscillation machinery
// into the general case is the documented gap), so the expected shape is
// the [36]-level O(k log k)-ish curve, still far below the KS baseline.
#include <iostream>

#include "bench_common.hpp"

using namespace disp;
using namespace disp::bench;

int main() {
  std::cout << "# E3: Table 1 — SYNC general (rounds vs k and l)\n";
  Table t({"family", "k", "l", "rounds", "rounds/(k log k)", "dispersed"});
  for (const auto& family : {std::string("er"), std::string("grid"),
                             std::string("randtree")}) {
    for (const std::uint32_t k : kSweep(5, 8)) {
      for (const std::uint32_t l : {2u, 4u, 8u}) {
        const auto r = runCase(family, k, Algorithm::GeneralSync, l, "round_robin", 7);
        const double lg = std::log2(double(k));
        t.row()
            .cell(family)
            .cell(std::uint64_t{k})
            .cell(std::uint64_t{l})
            .cell(r.run.time)
            .cell(double(r.run.time) / (k * lg), 2)
            .cell(std::string(r.run.dispersed ? "yes" : "NO"));
      }
    }
  }
  t.print(std::cout, "GeneralSync across start-node counts");
  return 0;
}
