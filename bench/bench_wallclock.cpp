// Wall-clock microbenchmarks (google-benchmark): how fast the *simulator*
// itself runs each algorithm.  This is engineering telemetry, not a paper
// claim — the paper's "time" is rounds/epochs, measured by the other
// benches.
#include <benchmark/benchmark.h>

#include "algo/runner.hpp"
#include "graph/generators.hpp"

namespace {

using namespace disp;

void BM_RootedSync(benchmark::State& state) {
  const auto k = static_cast<std::uint32_t>(state.range(0));
  const Graph g = makeFamily({"er", 2 * k, 7});
  for (auto _ : state) {
    const Placement p = rootedPlacement(g, k, 0, 3);
    benchmark::DoNotOptimize(runDispersion(g, p, {Algorithm::RootedSync}));
  }
}
BENCHMARK(BM_RootedSync)->Arg(64)->Arg(128)->Arg(256);

void BM_RootedAsync(benchmark::State& state) {
  const auto k = static_cast<std::uint32_t>(state.range(0));
  const Graph g = makeFamily({"er", 2 * k, 7});
  for (auto _ : state) {
    const Placement p = rootedPlacement(g, k, 0, 3);
    benchmark::DoNotOptimize(
        runDispersion(g, p, {Algorithm::RootedAsync, "uniform", 5}));
  }
}
BENCHMARK(BM_RootedAsync)->Arg(64)->Arg(128);

void BM_KsSync(benchmark::State& state) {
  const auto k = static_cast<std::uint32_t>(state.range(0));
  const Graph g = makeFamily({"er", 2 * k, 7});
  for (auto _ : state) {
    const Placement p = rootedPlacement(g, k, 0, 3);
    benchmark::DoNotOptimize(runDispersion(g, p, {Algorithm::KsSync}));
  }
}
BENCHMARK(BM_KsSync)->Arg(64)->Arg(128)->Arg(256);

void BM_GeneralSync(benchmark::State& state) {
  const auto k = static_cast<std::uint32_t>(state.range(0));
  const Graph g = makeFamily({"er", 2 * k, 7});
  for (auto _ : state) {
    const Placement p = clusteredPlacement(g, k, 4, 3);
    benchmark::DoNotOptimize(runDispersion(g, p, {Algorithm::GeneralSync}));
  }
}
BENCHMARK(BM_GeneralSync)->Arg(64)->Arg(128);

}  // namespace

BENCHMARK_MAIN();
