// E14 — simulator wall-clock telemetry (body: src/exp/benches_misc.cpp).
#include "exp/bench_registry.hpp"

int main(int argc, char** argv) {
  return disp::exp::benchMain("wallclock", argc, argv);
}
