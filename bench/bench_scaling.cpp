// E18 — single-run wallclock scaling with --run-threads lanes (body:
// src/exp/benches_scale.cpp).
#include "exp/bench_registry.hpp"

int main(int argc, char** argv) {
  return disp::exp::benchMain("scaling", argc, argv);
}
