// Observable-session API tests: the string-keyed algorithm registry
// (round-trip, traits, unknown-name errors), the observer determinism
// contract (observed runs report facts identical to unobserved ones at any
// sampling cadence — the PR's acceptance criterion), the trace-event
// schema/ordering on pinned small runs, early stop, and trajectory capture.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include "algo/registry.hpp"
#include "algo/runner.hpp"
#include "graph/generators.hpp"
#include "graph/spec.hpp"

namespace disp {
namespace {

const char* kAllKeys[] = {"rooted_sync",   "rooted_async", "general_sync",
                          "general_async", "ks_sync",      "ks_async"};

Placement placementFor(const Graph& g, const std::string& algo, std::uint32_t k,
                       std::uint64_t seed) {
  return algorithmDef(algo).traits.requiresRooted
             ? rootedPlacement(g, k, 0, seed)
             : clusteredPlacement(g, k, 4, seed);
}

void expectSameFacts(const RunResult& a, const RunResult& b, const std::string& what) {
  EXPECT_EQ(a.dispersed, b.dispersed) << what;
  EXPECT_EQ(a.time, b.time) << what;
  EXPECT_EQ(a.activations, b.activations) << what;
  EXPECT_EQ(a.totalMoves, b.totalMoves) << what;
  EXPECT_EQ(a.maxMemoryBits, b.maxMemoryBits) << what;
  EXPECT_EQ(a.finalPositions, b.finalPositions) << what;
}

// ------------------------------------------------------------- registry

TEST(Registry, RoundTripsEveryBuiltinByKeyAndDisplayName) {
  ASSERT_GE(algorithmRegistry().size(), 6u);
  for (const char* key : kAllKeys) {
    const AlgorithmDef* byKey = findAlgorithm(key);
    ASSERT_NE(byKey, nullptr) << key;
    EXPECT_EQ(byKey->traits.key, key);
    // Display names (the Table 1 strings) resolve to the same entry.
    const AlgorithmDef* byDisplay = findAlgorithm(byKey->traits.display);
    EXPECT_EQ(byDisplay, byKey) << key;
    // Exactly one factory, matching the declared model.
    EXPECT_EQ(byKey->makeSync != nullptr, !byKey->traits.isAsync) << key;
    EXPECT_EQ(byKey->makeAsync != nullptr, byKey->traits.isAsync) << key;
  }
  EXPECT_EQ(algorithmKeys().size(), algorithmRegistry().size());
}

TEST(Registry, TraitsMatchTheLegacyEnumPredicates) {
  const Algorithm enums[] = {Algorithm::RootedSync,   Algorithm::RootedAsync,
                             Algorithm::GeneralSync,  Algorithm::GeneralAsync,
                             Algorithm::KsSync,       Algorithm::KsAsync};
  for (const Algorithm a : enums) {
    const AlgorithmDef& def = algorithmDef(algorithmKey(a));
    EXPECT_EQ(def.traits.isAsync, isAsync(a)) << def.traits.key;
    EXPECT_EQ(def.traits.display, algorithmName(a)) << def.traits.key;
  }
  // The general algorithms accept clustered placements, the rest do not.
  EXPECT_FALSE(algorithmDef("general_sync").traits.requiresRooted);
  EXPECT_FALSE(algorithmDef("general_async").traits.requiresRooted);
  EXPECT_TRUE(algorithmDef("rooted_sync").traits.requiresRooted);
  EXPECT_TRUE(algorithmDef("ks_async").traits.requiresRooted);
}

TEST(Registry, UnknownNamesFailLoudly) {
  EXPECT_EQ(findAlgorithm("rooted_synk"), nullptr);
  EXPECT_THROW((void)algorithmDef("rooted_synk"), std::invalid_argument);
  const Graph g = makeGraph("er", 32, 3);
  const Placement p = rootedPlacement(g, 16, 0, 3);
  RunOptions opts;
  opts.algorithm = "no_such_algorithm";
  EXPECT_THROW((void)runSession(g, p, opts), std::invalid_argument);
}

TEST(Registry, RejectsBadRegistrations) {
  AlgorithmDef dup;
  dup.traits = algorithmRegistry().front().traits;
  dup.makeSync = algorithmRegistry().front().makeSync;
  EXPECT_THROW(registerAlgorithm(dup), std::invalid_argument);

  AlgorithmDef mismatch;
  mismatch.traits = {"bogus_async", "Bogus", "", true, false};
  mismatch.makeSync = algorithmRegistry().front().makeSync;  // sync factory, async traits
  EXPECT_THROW(registerAlgorithm(mismatch), std::invalid_argument);
}

TEST(Registry, RootedPlacementRequirementIsEnforced) {
  const Graph g = makeGraph("grid", 36, 5);
  const Placement clustered = clusteredPlacement(g, 18, 3, 7);
  for (const char* key : {"rooted_sync", "rooted_async", "ks_sync", "ks_async"}) {
    RunOptions opts;
    opts.algorithm = key;
    EXPECT_THROW((void)runSession(g, clustered, opts), std::invalid_argument) << key;
  }
}

// ------------------------------------------- observer determinism contract

TEST(ObserverDeterminism, ObservedRunsReportIdenticalFactsAtAnyCadence) {
  const Graph g = makeGraph("er", 64, 11);
  for (const char* key : kAllKeys) {
    const Placement p = placementFor(g, key, 40, 13);
    RunOptions plain;
    plain.algorithm = key;
    plain.scheduler = "uniform";
    plain.seed = 17;
    const RunResult unobserved = runSession(g, p, plain);
    EXPECT_TRUE(unobserved.dispersed) << key;
    EXPECT_TRUE(unobserved.trajectory.empty()) << key;
    EXPECT_FALSE(unobserved.stoppedEarly) << key;

    for (const std::uint64_t cadence : {1ULL, 7ULL, 1000ULL}) {
      RunOptions observed = plain;
      observed.sampleEvery = cadence;
      observed.captureTrajectory = true;
      std::uint64_t events = 0;
      std::uint64_t steps = 0;
      observed.onEvent = [&events](const TraceEvent&) { ++events; };
      observed.onRound = [&steps](const StepSnapshot&) { ++steps; };
      observed.onActivation = [&steps](const StepSnapshot&) { ++steps; };
      const RunResult r = runSession(g, p, observed);
      expectSameFacts(unobserved, r,
                      std::string(key) + " cadence=" + std::to_string(cadence));
      EXPECT_FALSE(r.stoppedEarly);
      EXPECT_GT(events, 0u) << key;
      EXPECT_GT(steps, 0u) << key;
      EXPECT_EQ(steps, r.trajectory.size())
          << key << ": trajectory mirrors the sampled snapshots";
    }
  }
}

TEST(ObserverDeterminism, CompatWrapperMatchesSession) {
  const Graph g = makeGraph("grid", 64, 9);
  const Placement p = rootedPlacement(g, 48, 0, 3);
  const RunResult viaEnum = runDispersion(g, p, {Algorithm::RootedAsync, "uniform", 5});
  RunOptions opts;
  opts.algorithm = "rooted_async";
  opts.scheduler = "uniform";
  opts.seed = 5;
  const RunResult viaSession = runSession(g, p, opts);
  expectSameFacts(viaEnum, viaSession, "compat wrapper");
}

// --------------------------------------------------- trace schema/ordering

struct Recorded {
  std::vector<TraceEvent> events;
  std::vector<StepSnapshot> steps;  // positions pointer NOT retained validly
  std::vector<std::uint32_t> settledAtStep;
};

Recorded record(const Graph& g, const Placement& p, RunOptions opts) {
  Recorded rec;
  opts.onEvent = [&rec](const TraceEvent& e) { rec.events.push_back(e); };
  const auto step = [&rec](const StepSnapshot& s) {
    rec.steps.push_back(s);
    rec.settledAtStep.push_back(s.settled);
  };
  opts.onRound = step;
  opts.onActivation = step;
  const RunResult r = runSession(g, p, opts);
  EXPECT_TRUE(r.dispersed);
  return rec;
}

TEST(TraceSchema, PinnedGeneralSyncRunEmitsOrderedWellFormedEvents) {
  const Graph g = makeGraph("grid", 48, 7);
  const std::uint32_t k = 32;
  const Placement p = clusteredPlacement(g, k, 4, 7);
  RunOptions opts;
  opts.algorithm = "general_sync";
  opts.seed = 7;
  const Recorded rec = record(g, p, opts);

  ASSERT_FALSE(rec.events.empty());
  std::uint64_t lastTime = 0;
  std::int64_t settled = 0;
  std::uint64_t moves = 0;
  std::map<TraceEventKind, std::uint64_t> counts;
  for (const TraceEvent& e : rec.events) {
    ++counts[e.kind];
    // Events arrive in non-decreasing time order.
    EXPECT_GE(e.time, lastTime);
    lastTime = e.time;
    switch (e.kind) {
      case TraceEventKind::Move:
        ++moves;
        ASSERT_LT(e.agent, k);
        ASSERT_LT(e.node, g.nodeCount());   // destination
        ASSERT_LT(e.a, g.nodeCount());      // source
        EXPECT_NE(e.node, e.a) << "a move crosses an edge";
        ASSERT_GE(e.b, 1u);                 // port
        EXPECT_EQ(g.neighbor(e.a, static_cast<Port>(e.b)), e.node)
            << "move event is consistent with the port map";
        break;
      case TraceEventKind::Settle:
        ++settled;
        ASSERT_LT(e.agent, k);
        ASSERT_LT(e.node, g.nodeCount());
        break;
      case TraceEventKind::Collapse:
        --settled;
        ASSERT_LT(e.agent, k);
        break;
      case TraceEventKind::Meeting:
      case TraceEventKind::Subsume:
        EXPECT_NE(e.a, e.b) << "meeting/subsume relates two distinct trees";
        break;
      case TraceEventKind::Freeze:
      case TraceEventKind::OscillationDuty:
        break;
      case TraceEventKind::FaultCrash:
      case TraceEventKind::FaultRestart:
      case TraceEventKind::FaultEdge:
      case TraceEventKind::FaultSilent:
        ADD_FAILURE() << "fault event in a fault-free run";
        break;
    }
    EXPECT_GE(settled, 0) << "a collapse never precedes its settle";
  }
  // A dispersed run ends with exactly k live settlers.
  EXPECT_EQ(settled, std::int64_t{k});
  // Every edge traversal is a Move event.
  EXPECT_GT(moves, 0u);
  // ℓ = 4 trees on a small grid: the subsumption cascade fires, and every
  // subsumption was announced by a meeting and freezes a loser.
  EXPECT_GT(counts[TraceEventKind::Meeting], 0u);
  EXPECT_GT(counts[TraceEventKind::Subsume], 0u);
  EXPECT_GE(counts[TraceEventKind::Meeting], counts[TraceEventKind::Subsume]);
  EXPECT_EQ(counts[TraceEventKind::Freeze], counts[TraceEventKind::Subsume]);
  // Snapshots: settled counts are consistent with the event stream.
  ASSERT_FALSE(rec.settledAtStep.empty());
  EXPECT_EQ(rec.settledAtStep.back(), k);
}

TEST(TraceSchema, MoveEventsMatchTotalMovesForEveryAlgorithm) {
  const Graph g = makeGraph("er", 48, 21);
  for (const char* key : kAllKeys) {
    const Placement p = placementFor(g, key, 32, 9);
    RunOptions opts;
    opts.algorithm = key;
    opts.seed = 3;
    std::uint64_t moveEvents = 0;
    std::uint64_t settleEvents = 0;
    std::uint64_t collapseEvents = 0;
    opts.onEvent = [&](const TraceEvent& e) {
      moveEvents += e.kind == TraceEventKind::Move;
      settleEvents += e.kind == TraceEventKind::Settle;
      collapseEvents += e.kind == TraceEventKind::Collapse;
    };
    const RunResult r = runSession(g, p, opts);
    ASSERT_TRUE(r.dispersed) << key;
    EXPECT_EQ(moveEvents, r.totalMoves) << key;
    EXPECT_EQ(settleEvents - collapseEvents, 32u) << key;
  }
}

TEST(TraceSchema, RootedSyncEmitsOscillationDutyChurn) {
  // er at n = 2k leaves ≥ ⌈k/3⌉ empty nodes (Lemma 1), so cover duty must
  // be assigned; every gain (a=1) precedes the matching drop (a=0).
  const Graph g = makeGraph("er", 96, 5);
  const Placement p = rootedPlacement(g, 48, 0, 5);
  RunOptions opts;
  opts.algorithm = "rooted_sync";
  std::int64_t dutyHolders = 0;
  std::uint64_t gains = 0;
  opts.onEvent = [&](const TraceEvent& e) {
    if (e.kind != TraceEventKind::OscillationDuty) return;
    if (e.a == 1) {
      ++gains;
      ++dutyHolders;
    } else {
      --dutyHolders;
    }
    EXPECT_GE(dutyHolders, 0);
  };
  const RunResult r = runSession(g, p, opts);
  ASSERT_TRUE(r.dispersed);
  EXPECT_GT(gains, 0u);
  EXPECT_EQ(dutyHolders, 0) << "all oscillators retire by dispersion";
}

// ------------------------------------------------ sampling and early stop

TEST(Sampling, SnapshotsFollowTheCadenceAndCloseOnTheEnd) {
  const Graph g = makeGraph("er", 64, 11);
  const Placement p = rootedPlacement(g, 32, 0, 3);
  RunOptions opts;
  opts.algorithm = "rooted_sync";
  opts.sampleEvery = 16;
  opts.captureTrajectory = true;
  const RunResult r = runSession(g, p, opts);
  ASSERT_TRUE(r.dispersed);
  ASSERT_GE(r.trajectory.size(), 2u);
  for (std::size_t i = 0; i + 1 < r.trajectory.size(); ++i) {
    EXPECT_EQ(r.trajectory[i].time % 16, 0u) << i;
    EXPECT_LT(r.trajectory[i].time, r.trajectory[i + 1].time);
    EXPECT_LE(r.trajectory[i].totalMoves, r.trajectory[i + 1].totalMoves);
  }
  // The final sample reports the terminal state even off-cadence.
  EXPECT_EQ(r.trajectory.back().time, r.time);
  EXPECT_EQ(r.trajectory.back().totalMoves, r.totalMoves);
  EXPECT_EQ(r.trajectory.back().settled, 32u);
}

TEST(Sampling, EarlyStopTruncatesTheRun) {
  const Graph g = makeGraph("er", 64, 11);
  const Placement p = rootedPlacement(g, 32, 0, 3);
  RunOptions full;
  full.algorithm = "rooted_sync";
  const RunResult complete = runSession(g, p, full);
  ASSERT_TRUE(complete.dispersed);

  RunOptions stopping = full;
  stopping.captureTrajectory = true;
  stopping.stopWhen = [](const StepSnapshot& s) { return s.settled >= 8; };
  const RunResult stopped = runSession(g, p, stopping);
  EXPECT_TRUE(stopped.stoppedEarly);
  EXPECT_FALSE(stopped.dispersed);
  EXPECT_LT(stopped.time, complete.time);
  ASSERT_FALSE(stopped.trajectory.empty());
  EXPECT_GE(stopped.trajectory.back().settled, 8u);

  // ASYNC engines honour the predicate too (activation granularity).
  RunOptions asyncStop;
  asyncStop.algorithm = "rooted_async";
  asyncStop.scheduler = "uniform";
  asyncStop.seed = 7;
  asyncStop.stopWhen = [](const StepSnapshot& s) { return s.settled >= 8; };
  const RunResult asyncStopped = runSession(g, p, asyncStop);
  EXPECT_TRUE(asyncStopped.stoppedEarly);
  EXPECT_FALSE(asyncStopped.dispersed);
}

TEST(Sampling, StopWhenAtCompletionDoesNotMarkStoppedEarly) {
  // A stopWhen that can only fire once every agent has settled triggers on
  // the same round/activation the protocol finishes — the run completed,
  // so the truncation flag must stay false (RunResult contract).
  const Graph g = makeGraph("er", 64, 11);
  const Placement p = rootedPlacement(g, 32, 0, 3);
  for (const char* key : {"ks_sync", "ks_async"}) {
    RunOptions opts;
    opts.algorithm = key;
    opts.seed = 5;
    opts.stopWhen = [](const StepSnapshot& s) { return s.settled >= 32; };
    const RunResult r = runSession(g, p, opts);
    EXPECT_TRUE(r.dispersed) << key;
    EXPECT_FALSE(r.stoppedEarly) << key;
  }
}

TEST(Sampling, AsyncSnapshotsCarryEpochs) {
  const Graph g = makeGraph("er", 48, 3);
  const Placement p = rootedPlacement(g, 24, 0, 5);
  RunOptions opts;
  opts.algorithm = "rooted_async";
  opts.seed = 11;
  std::uint64_t lastEpochs = 0;
  bool sawPositions = false;
  opts.onActivation = [&](const StepSnapshot& s) {
    EXPECT_GE(s.epochs, lastEpochs);
    lastEpochs = s.epochs;
    ASSERT_NE(s.positions, nullptr);
    EXPECT_EQ(s.positions->size(), 24u);
    sawPositions = true;
  };
  const RunResult r = runSession(g, p, opts);
  ASSERT_TRUE(r.dispersed);
  EXPECT_TRUE(sawPositions);
  EXPECT_LE(lastEpochs, r.time);
}

}  // namespace
}  // namespace disp
