// End-to-end tests for GeneralAsyncDisp (Theorem 8.2): dispersion from
// general initial configurations under every scheduler, KS subsumption
// between concurrently growing trees, the O(k log k) epoch shape, the §4.3
// in-transit-helper hazard, and the O(log(k+Δ)) memory bound.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "algo/general_async.hpp"
#include "algo/placement.hpp"
#include "core/metrics.hpp"
#include "graph/generators.hpp"
#include "graph/spec.hpp"

namespace disp {
namespace {

struct Case {
  std::string family;
  std::uint32_t n;
  std::uint32_t k;
  std::uint32_t clusters;
  std::string scheduler;
};

std::string caseName(const ::testing::TestParamInfo<Case>& info) {
  return info.param.family + "_k" + std::to_string(info.param.k) + "_l" +
         std::to_string(info.param.clusters) + "_" + info.param.scheduler;
}

struct RunOut {
  RunOut(const Graph& g, std::uint32_t k, std::uint32_t clusters,
         const std::string& sched, std::uint64_t seed)
      : placement(clusters <= 1 ? rootedPlacement(g, k, 0, seed)
                                : clusteredPlacement(g, k, clusters, seed)),
        engine(g, placement.positions, placement.ids,
               makeSchedulerByName(sched, k, seed * 31 + 5)),
        algo(engine) {
    algo.start();
    engine.run(/*maxActivations=*/400000000ULL);
  }
  Placement placement;
  AsyncEngine engine;
  GeneralAsyncDispersion algo;
};

class GeneralAsyncTest : public ::testing::TestWithParam<Case> {};

TEST_P(GeneralAsyncTest, DispersesWithDistinctFinalNodes) {
  const auto& [family, n, k, clusters, sched] = GetParam();
  const Graph g = makeGraph(family, n, 77);
  RunOut run(g, k, clusters, sched, 3);
  EXPECT_TRUE(run.algo.dispersed()) << family << "/" << sched;
  auto pos = run.engine.positionsSnapshot();
  EXPECT_TRUE(isDispersed(pos));
  std::sort(pos.begin(), pos.end());
  EXPECT_EQ(std::unique(pos.begin(), pos.end()), pos.end());
  EXPECT_EQ(pos.size(), k);
}

INSTANTIATE_TEST_SUITE_P(
    FamiliesSchedulersAndClusters, GeneralAsyncTest,
    ::testing::Values(
        // ISSUE matrix: path/grid/er × all four schedulers × l in {1,2,8}.
        Case{"path", 64, 48, 1, "round_robin"}, Case{"path", 64, 48, 2, "shuffled"},
        Case{"path", 64, 48, 8, "uniform"}, Case{"path", 64, 48, 2, "weighted"},
        Case{"grid", 64, 48, 1, "uniform"}, Case{"grid", 64, 48, 2, "round_robin"},
        Case{"grid", 64, 48, 8, "shuffled"}, Case{"grid", 64, 48, 8, "weighted"},
        Case{"er", 64, 48, 1, "shuffled"}, Case{"er", 64, 48, 2, "uniform"},
        Case{"er", 64, 48, 8, "round_robin"}, Case{"er", 64, 48, 8, "weighted"},
        // A few structurally nasty extras.
        Case{"star", 60, 45, 4, "uniform"}, Case{"complete", 24, 24, 4, "uniform"},
        Case{"lollipop", 30, 28, 3, "shuffled"}, Case{"bintree", 63, 63, 8, "uniform"}),
    caseName);

TEST(GeneralAsync, TinyKAndEveryClusterCount) {
  for (std::uint32_t k = 1; k <= 6; ++k) {
    for (std::uint32_t l = 1; l <= k; ++l) {
      const Graph g = makeGraph("er", 20, 5);
      RunOut run(g, k, l, "uniform", k + l);
      EXPECT_TRUE(run.algo.dispersed()) << "k=" << k << " l=" << l;
    }
  }
}

TEST(GeneralAsync, ScatteredPlacementTerminatesPromptly) {
  // Already-dispersed start: every singleton group settles its only agent
  // in place and the run must finish without a single group move.
  const Graph g = makeGraph("grid", 49, 7);
  const Placement p = scatteredPlacement(g, 30, 11);
  AsyncEngine engine(g, p.positions, p.ids, makeSchedulerByName("shuffled", 30, 9));
  GeneralAsyncDispersion algo(engine);
  algo.start();
  engine.run(4000000);
  EXPECT_TRUE(algo.dispersed());
  EXPECT_EQ(engine.totalMoves(), 0u);
  EXPECT_EQ(engine.positionsSnapshot(), p.positions);
}

TEST(GeneralAsync, SubsumptionFiresWhenTreesCollide) {
  // k = n with several clusters on a small graph: trees must meet, and the
  // meetings must resolve by subsumption (collapse or self-collapse+march).
  const Graph g = makeGraph("path", 36, 13);
  RunOut run(g, 36, 4, "uniform", 5);
  ASSERT_TRUE(run.algo.dispersed());
  EXPECT_GT(run.algo.stats().meetings, 0u);
  EXPECT_GT(run.algo.stats().subsumptions, 0u);
  // Exactly one group survives with all agents; the rest dissolved or were
  // stripped to zero members.
  std::uint32_t alive = 0;
  for (std::uint32_t gi = 0; gi < run.algo.groupCount(); ++gi) {
    const auto s = run.algo.groupSnapshot(gi);
    if (!s.dissolved && s.total > 0) ++alive;
    EXPECT_EQ(s.unsettled, 0u) << "g" << gi;
  }
  EXPECT_GE(alive, 1u);
}

TEST(GeneralAsync, GuestsAreRecruitedOnDenseGraphs) {
  // On a clique every probe of an occupied neighbor recruits a guest; the
  // doubling mechanism must kick in even with multiple source trees.
  const Graph g = makeComplete(24).build();
  RunOut run(g, 24, 3, "uniform", 9);
  ASSERT_TRUE(run.algo.dispersed());
  EXPECT_GT(run.algo.stats().guestsRecruited, 0u);
  EXPECT_GT(run.algo.stats().seeOffSweeps, 0u);
}

TEST(GeneralAsync, InTransitHelperRegression) {
  // §4.3 regression: the weighted scheduler starves a subset of agents so
  // guests and escorts are routinely in transit when the rest of the
  // protocol wants to act.  Without the escort-order-consumed check in
  // Guest_See_Off (see async_rooted.cpp / general_async.cpp), a stale
  // escort order pulls a settler away from its node mid-protocol and some
  // seed below ends un-dispersed or with a settler off its node.
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const Graph g = makeComplete(20).build();
    RunOut run(g, 20, 2, "weighted", seed);
    ASSERT_TRUE(run.algo.dispersed()) << "seed " << seed;
    for (AgentIx a = 0; a < run.engine.agentCount(); ++a) {
      const auto s = run.algo.snapshot(a);
      EXPECT_TRUE(s.settled) << "seed " << seed << " a" << a;
      EXPECT_FALSE(s.isGuest) << "seed " << seed << " a" << a;
      EXPECT_EQ(run.engine.positionOf(a), s.settledAt) << "seed " << seed << " a" << a;
    }
    EXPECT_GT(run.algo.stats().guestsRecruited, 0u) << "seed " << seed;
  }
}

TEST(GeneralAsync, RescanMeetingIsNotDiscarded) {
  // Regression: a meeting discovered by the root-exhausted rescan used to
  // be thrown away — the main loop re-probed the stopping node, clearing
  // probeMet_ and exiting at once on the exhausted `checked` counter, so
  // the group rescanned forever and the engine hit its activation cap.
  // This configuration reproduced the livelock under every scheduler.
  const Graph g = makeGraph("randtree", 40, 13);
  for (const char* sched : {"round_robin", "shuffled", "uniform", "weighted"}) {
    const Placement p = clusteredPlacement(g, 32, 3, 113);
    AsyncEngine engine(g, p.positions, p.ids, makeSchedulerByName(sched, 32, 13));
    GeneralAsyncDispersion algo(engine);
    algo.start();
    engine.run(20000000ULL);
    EXPECT_TRUE(algo.dispersed()) << sched;
  }
}

TEST(GeneralAsync, ManySchedulerSeeds) {
  // Interleaving fuzz: dispersion must hold across activation orders.
  const Graph g = makeGraph("er", 40, 23);
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    RunOut run(g, 32, 4, "uniform", seed);
    EXPECT_TRUE(run.algo.dispersed()) << "seed " << seed;
  }
}

TEST(GeneralAsync, EpochsNearKLogK) {
  // Epoch count grows like k·log k (Theorem 8.2's headline): the ratio
  // epochs/(k·log2 k) must not blow up as k doubles.
  const Graph g = makeGraph("er", 400, 13);
  double prev = 0;
  for (std::uint32_t k : {32u, 64u, 128u}) {
    RunOut run(g, k, 4, "round_robin", 6);
    ASSERT_TRUE(run.algo.dispersed()) << k;
    const double ratio = static_cast<double>(run.engine.epochs()) /
                         (k * std::log2(static_cast<double>(k)));
    if (prev > 0) {
      EXPECT_LT(ratio, prev * 2.0) << "k=" << k;
    }
    prev = ratio;
  }
}

TEST(GeneralAsync, MemoryLogarithmic) {
  const Graph g = makeGraph("er", 200, 15);
  RunOut run(g, 128, 8, "uniform", 8);
  ASSERT_TRUE(run.algo.dispersed());
  const auto w = BitWidths::forRun(4ULL * 128, g.maxDegree(), 128);
  EXPECT_LE(run.engine.memory().maxBits(), 48ULL * (w.id + w.port + w.count));
}

TEST(GeneralAsync, DeterministicUnderRoundRobin) {
  const Graph g = makeGraph("grid", 49, 3);
  std::uint64_t firstEpochs = 0, firstMoves = 0;
  for (int rep = 0; rep < 2; ++rep) {
    RunOut run(g, 40, 4, "round_robin", 11);
    ASSERT_TRUE(run.algo.dispersed());
    if (rep == 0) {
      firstEpochs = run.engine.epochs();
      firstMoves = run.engine.totalMoves();
    } else {
      EXPECT_EQ(run.engine.epochs(), firstEpochs);
      EXPECT_EQ(run.engine.totalMoves(), firstMoves);
    }
  }
}

TEST(GeneralAsync, FullOccupancyOnTree) {
  const Graph g = makeRandomTree(40, 3).build();
  RunOut run(g, 40, 5, "shuffled", 2);
  ASSERT_TRUE(run.algo.dispersed());
  auto pos = run.engine.positionsSnapshot();
  std::sort(pos.begin(), pos.end());
  for (NodeId v = 0; v < 40; ++v) EXPECT_EQ(pos[v], v);
}

}  // namespace
}  // namespace disp
