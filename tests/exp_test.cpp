// Tests for the src/exp/ experiment driver: sweep enumeration, the batch
// runner's thread-count invariance (bit-identical cells for 1 vs 4+
// workers), concurrent runDispersion calls on shared Graph instances, and
// the JSONL sink format.  The *Concurrent* tests are the TSan targets.
#include <gtest/gtest.h>

#include <sstream>
#include <thread>

#include "algo/placement.hpp"
#include "exp/batch_runner.hpp"
#include "exp/sink.hpp"
#include "exp/sweep.hpp"
#include "graph/generators.hpp"

namespace disp::exp {
namespace {

void expectSameRun(const RunResult& a, const RunResult& b, const std::string& what) {
  EXPECT_EQ(a.dispersed, b.dispersed) << what;
  EXPECT_EQ(a.time, b.time) << what;
  EXPECT_EQ(a.activations, b.activations) << what;
  EXPECT_EQ(a.totalMoves, b.totalMoves) << what;
  EXPECT_EQ(a.maxMemoryBits, b.maxMemoryBits) << what;
  EXPECT_EQ(a.finalPositions, b.finalPositions) << what;
}

BatchRunner runnerWith(unsigned threads) {
  BatchOptions options;
  options.threads = threads;
  return BatchRunner(options);
}

SweepSpec smallSpec() {
  SweepSpec spec;
  spec.name = "test";
  spec.families = {"er", "star"};
  spec.ks = {12, 24};
  spec.algorithms = {"rooted_sync", "ks_async",
                     "general_async"};
  spec.clusterCounts = {1, 3};
  spec.schedulers = {"round_robin", "uniform"};
  spec.seeds = {1, 2, 3};
  return spec;
}

TEST(Sweep, EnumeratesCellsInCanonicalOrder) {
  const SweepSpec spec = smallSpec();
  const auto keys = enumerateCells(spec);
  ASSERT_EQ(keys.size(), spec.cellCount());
  ASSERT_EQ(keys.size(), 2u * 2u * 3u * 2u * 2u);
  // family ▸ k ▸ clusters ▸ scheduler ▸ algorithm.
  EXPECT_EQ(keys[0].family, "er");
  EXPECT_EQ(keys[0].k, 12u);
  EXPECT_EQ(keys[0].clusters, 1u);
  EXPECT_EQ(keys[0].scheduler, "round_robin");
  EXPECT_EQ(keys[0].algorithm, "rooted_sync");
  EXPECT_EQ(keys[1].algorithm, "ks_async");
  EXPECT_EQ(keys[3].scheduler, "uniform");
  EXPECT_EQ(keys[6].clusters, 3u);
  EXPECT_EQ(keys.back().family, "star");
  EXPECT_EQ(keys.back().k, 24u);
  EXPECT_EQ(keys.back().algorithm, "general_async");
}

TEST(Sweep, RejectsEmptyAxes) {
  SweepSpec spec = smallSpec();
  spec.ks.clear();
  EXPECT_THROW((void)enumerateCells(spec), std::invalid_argument);
}

TEST(BatchRunner, RejectsUnknownSchedulerNameUpFront) {
  // A typo'd scheduler must fail the sweep loudly, not degrade every async
  // cell into errored replicates.
  SweepSpec spec = smallSpec();
  spec.schedulers = {"round_robbin"};
  EXPECT_THROW((void)runnerWith(1).run(spec), std::invalid_argument);
}

TEST(Sweep, ResultLookupThrowsOnMissingCell) {
  SweepSpec spec = smallSpec();
  spec.seeds = {1};
  const SweepResult res = runnerWith(1).run(spec);
  EXPECT_THROW((void)res.at({"grid", 12, 1, "round_robin", "rooted_sync"}),
               std::out_of_range);
}

TEST(BatchRunner, ParallelIsBitIdenticalToSerial) {
  const SweepSpec spec = smallSpec();
  const SweepResult serial = runnerWith(1).run(spec);
  const SweepResult parallel = runnerWith(4).run(spec);
  ASSERT_EQ(serial.cells.size(), parallel.cells.size());
  for (std::size_t i = 0; i < serial.cells.size(); ++i) {
    const Cell& a = serial.cells[i];
    const Cell& b = parallel.cells[i];
    EXPECT_EQ(a.key, b.key);
    ASSERT_EQ(a.replicates.size(), spec.seeds.size());
    ASSERT_EQ(b.replicates.size(), spec.seeds.size());
    for (std::size_t r = 0; r < a.replicates.size(); ++r) {
      const std::string what = a.key.describe() + " seed=" +
                               std::to_string(spec.seeds[r]);
      EXPECT_EQ(a.replicates[r].error, b.replicates[r].error) << what;
      EXPECT_EQ(a.replicates[r].n, b.replicates[r].n) << what;
      EXPECT_EQ(a.replicates[r].edges, b.replicates[r].edges) << what;
      expectSameRun(a.replicates[r].run, b.replicates[r].run, what);
    }
    EXPECT_EQ(a.time.mean, b.time.mean);
    EXPECT_EQ(a.time.median, b.time.median);
  }
}

TEST(BatchRunner, MatchesDirectRunCellResults) {
  SweepSpec spec;
  spec.name = "direct";
  spec.families = {"er"};
  spec.ks = {16};
  spec.algorithms = {"general_sync"};
  spec.clusterCounts = {4};
  spec.seeds = {7, 8};
  const SweepResult res = runnerWith(2).run(spec);
  const Cell& cell = res.at({"er", 16, 4, "round_robin", "general_sync"});
  for (std::size_t r = 0; r < spec.seeds.size(); ++r) {
    const RunRecord direct = runCell(
        {"er", 16, "general_sync", 4, "round_robin", spec.seeds[r]});
    expectSameRun(direct.run, cell.replicates[r].run,
                  "seed=" + std::to_string(spec.seeds[r]));
  }
}

TEST(BatchRunner, RecordsLimitErrorsInsteadOfThrowing) {
  SweepSpec spec;
  spec.name = "limited";
  spec.families = {"er"};
  spec.ks = {16};
  spec.algorithms = {"rooted_sync"};
  spec.seeds = {1, 2};
  spec.limit = 1;  // guaranteed to hit the round cap
  const SweepResult res = runnerWith(2).run(spec);
  const Cell& cell = res.cells.front();
  EXPECT_FALSE(cell.allDispersed());
  EXPECT_EQ(cell.time.count, 0u);
  for (const RunRecord& r : cell.replicates) {
    EXPECT_FALSE(r.error.empty());
    EXPECT_FALSE(r.run.dispersed);
    EXPECT_EQ(r.n, 32u);  // graph stats still recorded
  }
}

// The re-entrancy guarantee behind the whole driver (DESIGN.md §5):
// concurrent runDispersion calls sharing immutable Graph instances must
// produce exactly the per-seed results of serial runs.
TEST(RunDispersion, ConcurrentRunsOnSharedGraphsAreBitIdentical) {
  const Graph er = makeFamily({"er", 48, 42});
  const Graph star = makeFamily({"star", 48, 42});
  struct Config {
    const Graph* g;
    std::string algo;
    std::uint32_t clusters;
    const char* sched;
    std::uint64_t seed;
  };
  std::vector<Config> configs;
  const char* algos[] = {"rooted_sync",  "rooted_async", "general_sync",
                         "general_async", "ks_sync",     "ks_async"};
  const char* scheds[] = {"round_robin", "uniform", "weighted:16", "shuffled"};
  for (int i = 0; i < 24; ++i) {
    const std::string algo = algos[i % 6];
    const bool general =
        algo == "general_sync" || algo == "general_async";
    configs.push_back({i % 2 ? &star : &er, algo, general ? 3u : 1u,
                       scheds[i % 4], 1000 + std::uint64_t(i)});
  }
  const auto runOne = [](const Config& c) {
    const Placement p = c.clusters == 1
                            ? rootedPlacement(*c.g, 24, 0, c.seed)
                            : clusteredPlacement(*c.g, 24, c.clusters, c.seed);
    RunOptions opts;
    opts.algorithm = c.algo;
    opts.scheduler = c.sched;
    opts.seed = c.seed;
    return runSession(*c.g, p, opts);
  };

  std::vector<RunResult> serial(configs.size());
  for (std::size_t i = 0; i < configs.size(); ++i) serial[i] = runOne(configs[i]);

  std::vector<RunResult> concurrent(configs.size());
  std::vector<std::thread> pool;
  pool.reserve(8);
  for (unsigned t = 0; t < 8; ++t) {
    pool.emplace_back([&, t] {
      for (std::size_t i = t; i < configs.size(); i += 8) {
        concurrent[i] = runOne(configs[i]);
      }
    });
  }
  for (std::thread& t : pool) t.join();

  for (std::size_t i = 0; i < configs.size(); ++i) {
    expectSameRun(serial[i], concurrent[i], "config " + std::to_string(i));
    EXPECT_TRUE(serial[i].dispersed) << i;
  }
}

TEST(ParallelFor, CoversEveryIndexOnceAndPropagatesFirstError) {
  std::vector<int> hits(500, 0);
  parallelFor(4, hits.size(), [&](std::size_t i) { ++hits[i]; });
  for (const int h : hits) EXPECT_EQ(h, 1);
  EXPECT_THROW(parallelFor(4, 8,
                           [](std::size_t i) {
                             if (i == 3) throw std::runtime_error("boom");
                           }),
               std::runtime_error);
}

TEST(Stats, Ci95HalfWidth) {
  EXPECT_EQ(ci95(summarize(std::vector<double>{5.0})), 0.0);
  const Summary s = summarize(std::vector<double>{2.0, 4.0, 6.0, 8.0});
  EXPECT_NEAR(ci95(s), 1.96 * s.stddev / 2.0, 1e-12);
}

TEST(Jsonl, EscapesAndMirrorsTableRows) {
  std::ostringstream os;
  JsonlWriter w(os);
  w.record({{"a", "plain"}, {"q", "has \"quotes\"\nand\tmore"}});
  EXPECT_EQ(os.str(),
            "{\"a\": \"plain\", \"q\": \"has \\\"quotes\\\"\\nand\\tmore\"}\n");

  std::ostringstream md, jl;
  JsonlWriter sink(jl);
  BenchContext ctx{md, &sink, {}, {}};
  Table t({"k", "rounds"});
  t.row().cell(std::uint64_t{8}).cell(std::uint64_t{42});
  emitTable(ctx, "sweep_x", "title y", t);
  EXPECT_NE(md.str().find("| 42"), std::string::npos);
  EXPECT_EQ(jl.str(),
            "{\"sweep\": \"sweep_x\", \"table\": \"title y\", "
            "\"k\": \"8\", \"rounds\": \"42\"}\n");
}

TEST(BenchContext, SeedsOrFallsBackToHistoricalSeed) {
  std::ostringstream os;
  BenchContext ctx{os, nullptr, {}, {}};
  EXPECT_EQ(ctx.seedsOr(17), (std::vector<std::uint64_t>{17}));
  ctx.seedOverride = {1, 2, 3};
  EXPECT_EQ(ctx.seedsOr(17), (std::vector<std::uint64_t>{1, 2, 3}));
}

}  // namespace
}  // namespace disp::exp
