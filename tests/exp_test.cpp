// Tests for the src/exp/ experiment driver: sweep enumeration, the batch
// runner's thread-count invariance (bit-identical cells for 1 vs 4+
// workers), concurrent runDispersion calls on shared Graph instances, and
// the JSONL sink format.  The *Concurrent* tests are the TSan targets.
#include <gtest/gtest.h>

#include <sstream>
#include <thread>

#include <cstdlib>

#include "algo/placement.hpp"
#include "algo/runner.hpp"
#include "exp/batch_runner.hpp"
#include "exp/sink.hpp"
#include "exp/sweep.hpp"
#include "graph/generators.hpp"
#include "graph/graph_io.hpp"
#include "graph/spec.hpp"

namespace disp::exp {
namespace {

void expectSameRun(const RunResult& a, const RunResult& b, const std::string& what) {
  EXPECT_EQ(a.dispersed, b.dispersed) << what;
  EXPECT_EQ(a.time, b.time) << what;
  EXPECT_EQ(a.activations, b.activations) << what;
  EXPECT_EQ(a.totalMoves, b.totalMoves) << what;
  EXPECT_EQ(a.maxMemoryBits, b.maxMemoryBits) << what;
  EXPECT_EQ(a.finalPositions, b.finalPositions) << what;
}

BatchRunner runnerWith(unsigned threads) {
  BatchOptions options;
  options.threads = threads;
  return BatchRunner(options);
}

SweepSpec smallSpec() {
  SweepSpec spec;
  spec.name = "test";
  spec.graphs = {"er", "star"};
  spec.ks = {12, 24};
  spec.algorithms = {"rooted_sync", "ks_async",
                     "general_async"};
  spec.placements = {"rooted", "clusters:l=3"};
  spec.schedulers = {"round_robin", "uniform"};
  spec.seeds = {1, 2, 3};
  return spec;
}

TEST(Sweep, EnumeratesCellsInCanonicalOrder) {
  const SweepSpec spec = smallSpec();
  const auto keys = enumerateCells(spec);
  ASSERT_EQ(keys.size(), spec.cellCount());
  ASSERT_EQ(keys.size(), 2u * 2u * 3u * 2u * 2u);
  // graph ▸ k ▸ placement ▸ scheduler ▸ algorithm.
  EXPECT_EQ(keys[0].graph, "er");
  EXPECT_EQ(keys[0].k, 12u);
  EXPECT_EQ(keys[0].placement, "rooted");
  EXPECT_EQ(keys[0].scheduler, "round_robin");
  EXPECT_EQ(keys[0].algorithm, "rooted_sync");
  EXPECT_EQ(keys[1].algorithm, "ks_async");
  EXPECT_EQ(keys[3].scheduler, "uniform");
  EXPECT_EQ(keys[6].placement, "clusters:l=3");
  EXPECT_EQ(keys.back().graph, "star");
  EXPECT_EQ(keys.back().k, 24u);
  EXPECT_EQ(keys.back().algorithm, "general_async");
}

TEST(Sweep, RejectsEmptyAxes) {
  SweepSpec spec = smallSpec();
  spec.ks.clear();
  EXPECT_THROW((void)enumerateCells(spec), std::invalid_argument);
}

// The faults axis: innermost in the enumeration, canonicalized, validated
// up front, defaulted to {"none"} so historical sweeps are unchanged.
TEST(Sweep, FaultsAxisEnumeratesInnermostAndCanonicalizes) {
  SweepSpec spec = smallSpec();
  spec.faults = {"none", "crash:restart=064,rate=0.25"};
  const auto keys = enumerateCells(spec);
  ASSERT_EQ(keys.size(), spec.cellCount());
  ASSERT_EQ(keys.size(), 2u * 2u * 3u * 2u * 2u * 2u);
  EXPECT_EQ(keys[0].faults, "none");
  EXPECT_EQ(keys[1].faults, "crash:rate=0.25,restart=64");  // canonical
  EXPECT_EQ(keys[0].algorithm, keys[1].algorithm);  // innermost axis
  // describe() elides the fault-free load (historical labels unchanged)
  // and names any other.
  EXPECT_EQ(keys[0].describe().find("faults="), std::string::npos);
  EXPECT_NE(keys[1].describe().find("faults=crash:rate=0.25,restart=64"),
            std::string::npos);

  spec.faults = {"crash:nope=1"};
  EXPECT_THROW((void)enumerateCells(spec), std::invalid_argument);
  spec.faults.clear();
  EXPECT_THROW((void)enumerateCells(spec), std::invalid_argument);
}

// A sweep whose faults axis is the default singleton {"none"} must produce
// byte-identical cells to one that never mentions the axis — the
// zero-overhead guard at the sweep layer.
TEST(Sweep, DefaultFaultsAxisLeavesCellsByteIdentical) {
  SweepSpec spec = smallSpec();
  spec.graphs = {"er"};
  spec.ks = {16};
  spec.seeds = {1, 2};
  const SweepResult plain = runnerWith(1).run(spec);

  SweepSpec explicitNone = spec;
  explicitNone.faults = {"none"};
  const SweepResult none = runnerWith(1).run(explicitNone);

  ASSERT_EQ(plain.cells.size(), none.cells.size());
  for (std::size_t i = 0; i < plain.cells.size(); ++i) {
    EXPECT_EQ(plain.cells[i].key, none.cells[i].key);
    ASSERT_EQ(plain.cells[i].replicates.size(), none.cells[i].replicates.size());
    for (std::size_t r = 0; r < plain.cells[i].replicates.size(); ++r) {
      expectSameRun(plain.cells[i].replicates[r].run,
                    none.cells[i].replicates[r].run,
                    plain.cells[i].key.describe());
    }
  }

  // Faulted cells resolve through at() with any equivalent spelling.
  SweepSpec faulted = spec;
  faulted.ks = {12};
  faulted.algorithms = {"ks_async"};
  faulted.placements = {"rooted"};
  faulted.schedulers = {"round_robin"};
  faulted.seeds = {1};
  faulted.limit = 100000;
  faulted.faults = {"silent:count=2"};
  const SweepResult res = runnerWith(1).run(faulted);
  const Cell& cell =
      res.at({"er", 12, "rooted", "round_robin", "ks_async", "silent:count=02"});
  ASSERT_TRUE(cell.ran());
  EXPECT_EQ(cell.replicates.front().run.faultsInjected, 2u);
}

TEST(BatchRunner, RejectsUnknownSchedulerNameUpFront) {
  // A typo'd scheduler must fail the sweep loudly, not degrade every async
  // cell into errored replicates.
  SweepSpec spec = smallSpec();
  spec.schedulers = {"round_robbin"};
  EXPECT_THROW((void)runnerWith(1).run(spec), std::invalid_argument);
}

TEST(Sweep, ResultLookupThrowsOnMissingCell) {
  SweepSpec spec = smallSpec();
  spec.seeds = {1};
  const SweepResult res = runnerWith(1).run(spec);
  EXPECT_THROW((void)res.at({"grid", 12, "rooted", "round_robin", "rooted_sync"}),
               std::out_of_range);
  // Lookups canonicalize spec strings first: any equivalent spelling of an
  // existing cell resolves.
  EXPECT_NO_THROW(
      (void)res.at({"er", 12, "clusters:l=03", "round_robin", "rooted_sync"}));
}

TEST(BatchRunner, ParallelIsBitIdenticalToSerial) {
  const SweepSpec spec = smallSpec();
  const SweepResult serial = runnerWith(1).run(spec);
  const SweepResult parallel = runnerWith(4).run(spec);
  ASSERT_EQ(serial.cells.size(), parallel.cells.size());
  for (std::size_t i = 0; i < serial.cells.size(); ++i) {
    const Cell& a = serial.cells[i];
    const Cell& b = parallel.cells[i];
    EXPECT_EQ(a.key, b.key);
    ASSERT_EQ(a.replicates.size(), spec.seeds.size());
    ASSERT_EQ(b.replicates.size(), spec.seeds.size());
    for (std::size_t r = 0; r < a.replicates.size(); ++r) {
      const std::string what = a.key.describe() + " seed=" +
                               std::to_string(spec.seeds[r]);
      EXPECT_EQ(a.replicates[r].error, b.replicates[r].error) << what;
      EXPECT_EQ(a.replicates[r].n, b.replicates[r].n) << what;
      EXPECT_EQ(a.replicates[r].edges, b.replicates[r].edges) << what;
      expectSameRun(a.replicates[r].run, b.replicates[r].run, what);
    }
    EXPECT_EQ(a.time.mean, b.time.mean);
    EXPECT_EQ(a.time.median, b.time.median);
  }
}

TEST(BatchRunner, MatchesDirectRunCellResults) {
  SweepSpec spec;
  spec.name = "direct";
  spec.graphs = {"er"};
  spec.ks = {16};
  spec.algorithms = {"general_sync"};
  spec.placements = {"clusters:l=4"};
  spec.seeds = {7, 8};
  const SweepResult res = runnerWith(2).run(spec);
  const Cell& cell = res.at({"er", 16, "clusters:l=4", "round_robin", "general_sync"});
  for (std::size_t r = 0; r < spec.seeds.size(); ++r) {
    const RunRecord direct = runCell(
        {"er", 16, "general_sync", "clusters:l=4", "round_robin", spec.seeds[r]});
    expectSameRun(direct.run, cell.replicates[r].run,
                  "seed=" + std::to_string(spec.seeds[r]));
  }
}

TEST(BatchRunner, RecordsLimitErrorsInsteadOfThrowing) {
  SweepSpec spec;
  spec.name = "limited";
  spec.graphs = {"er"};
  spec.ks = {16};
  spec.algorithms = {"rooted_sync"};
  spec.seeds = {1, 2};
  spec.limit = 1;  // guaranteed to hit the round cap
  const SweepResult res = runnerWith(2).run(spec);
  const Cell& cell = res.cells.front();
  EXPECT_FALSE(cell.allDispersed());
  EXPECT_EQ(cell.time.count, 0u);
  for (const RunRecord& r : cell.replicates) {
    EXPECT_FALSE(r.error.empty());
    EXPECT_FALSE(r.run.dispersed);
    EXPECT_EQ(r.n, 32u);  // graph stats still recorded
  }
}

// The re-entrancy guarantee behind the whole driver (DESIGN.md §5):
// concurrent runDispersion calls sharing immutable Graph instances must
// produce exactly the per-seed results of serial runs.
TEST(RunDispersion, ConcurrentRunsOnSharedGraphsAreBitIdentical) {
  const Graph er = makeGraph("er", 48, 42);
  const Graph star = makeGraph("star", 48, 42);
  struct Config {
    const Graph* g;
    std::string algo;
    std::uint32_t clusters;
    const char* sched;
    std::uint64_t seed;
  };
  std::vector<Config> configs;
  const char* algos[] = {"rooted_sync",  "rooted_async", "general_sync",
                         "general_async", "ks_sync",     "ks_async"};
  const char* scheds[] = {"round_robin", "uniform", "weighted:16", "shuffled"};
  for (int i = 0; i < 24; ++i) {
    const std::string algo = algos[i % 6];
    const bool general =
        algo == "general_sync" || algo == "general_async";
    configs.push_back({i % 2 ? &star : &er, algo, general ? 3u : 1u,
                       scheds[i % 4], 1000 + std::uint64_t(i)});
  }
  const auto runOne = [](const Config& c) {
    const Placement p = c.clusters == 1
                            ? rootedPlacement(*c.g, 24, 0, c.seed)
                            : clusteredPlacement(*c.g, 24, c.clusters, c.seed);
    RunOptions opts;
    opts.algorithm = c.algo;
    opts.scheduler = c.sched;
    opts.seed = c.seed;
    return runSession(*c.g, p, opts);
  };

  std::vector<RunResult> serial(configs.size());
  for (std::size_t i = 0; i < configs.size(); ++i) serial[i] = runOne(configs[i]);

  std::vector<RunResult> concurrent(configs.size());
  std::vector<std::thread> pool;
  pool.reserve(8);
  for (unsigned t = 0; t < 8; ++t) {
    pool.emplace_back([&, t] {
      for (std::size_t i = t; i < configs.size(); i += 8) {
        concurrent[i] = runOne(configs[i]);
      }
    });
  }
  for (std::thread& t : pool) t.join();

  for (std::size_t i = 0; i < configs.size(); ++i) {
    expectSameRun(serial[i], concurrent[i], "config " + std::to_string(i));
    EXPECT_TRUE(serial[i].dispersed) << i;
  }
}

// The --run-threads contract (DESIGN.md §9): intra-run lanes change
// wallclock only.  Facts AND the typed trace stream must be byte-identical
// between serial and 8-lane runs, on every registered protocol — SYNC ones
// exercise the staged round executor; ASYNC ones pin the documented
// "ignored" behavior.  Runs under the TSan CI job via the *Parallel* filter.
TEST(RunThreadsParallel, FactsAndTracesAreLaneCountInvariantOnEveryAlgorithm) {
  struct Case {
    const char* algo;
    const char* placement;
    std::uint32_t k;
  };
  // SYNC sizes cross the engine's parallel staging/commit thresholds
  // (>=256 staged moves or oscillators per round); ASYNC sizes stay small
  // (lanes are a no-op there, and epochs are expensive).
  const Case cases[] = {
      {"rooted_sync", "rooted", 400},      {"general_sync", "clusters:l=4", 300},
      {"ks_sync", "rooted", 300},          {"rooted_async", "rooted", 32},
      {"general_async", "clusters:l=3", 32}, {"ks_async", "rooted", 32},
  };
  const auto runWithLanes = [](const Case& c, unsigned lanes,
                               std::vector<TraceEvent>& events) {
    RunOptions opts;
    opts.algorithm = c.algo;
    opts.seed = 5;
    opts.runThreads = lanes;
    opts.onEvent = [&events](const TraceEvent& e) { events.push_back(e); };
    return runScenario("er", c.placement, c.k, opts);
  };
  for (const Case& c : cases) {
    std::vector<TraceEvent> serialEvents, parallelEvents;
    const RunResult serial = runWithLanes(c, 1, serialEvents);
    const RunResult parallel = runWithLanes(c, 8, parallelEvents);
    expectSameRun(serial, parallel, c.algo);
    EXPECT_TRUE(serial.dispersed) << c.algo;
    ASSERT_EQ(serialEvents.size(), parallelEvents.size()) << c.algo;
    for (std::size_t i = 0; i < serialEvents.size(); ++i) {
      const TraceEvent& a = serialEvents[i];
      const TraceEvent& b = parallelEvents[i];
      const bool same = a.kind == b.kind && a.time == b.time && a.agent == b.agent &&
                        a.node == b.node && a.a == b.a && a.b == b.b;
      ASSERT_TRUE(same) << c.algo << " trace event " << i << " drifted";
    }
  }
}

// Lane invariance under fault injection: the fault schedule is drawn up
// front from the run seed and the fault-aware staging/commit paths are
// serial, so a crash-restart run reports byte-identical facts, verdicts
// AND typed event streams (fault events included) at every lane count —
// on every registered protocol.  SYNC protocols whose belief desyncs
// report the same protocolError either way.
TEST(RunThreadsParallel, FaultRunsAreLaneCountInvariantOnEveryAlgorithm) {
  struct Case {
    const char* algo;
    std::uint32_t k;
    std::uint64_t limit;
  };
  const Case cases[] = {
      {"rooted_sync", 400, 4000},   {"general_sync", 300, 4000},
      {"ks_sync", 300, 4000},       {"rooted_async", 24, 200000},
      {"general_async", 24, 200000}, {"ks_async", 24, 200000},
  };
  const auto runWithLanes = [](const Case& c, unsigned lanes,
                               std::vector<TraceEvent>& events) {
    RunOptions opts;
    opts.algorithm = c.algo;
    opts.seed = 17;
    opts.limit = c.limit;
    opts.runThreads = lanes;
    opts.faults = "crash:rate=0.25,restart=64";
    opts.onEvent = [&events](const TraceEvent& e) { events.push_back(e); };
    return runScenario("er", "rooted", c.k, opts);
  };
  for (const Case& c : cases) {
    std::vector<TraceEvent> serialEvents, parallelEvents;
    const RunResult serial = runWithLanes(c, 1, serialEvents);
    const RunResult parallel = runWithLanes(c, 8, parallelEvents);
    expectSameRun(serial, parallel, c.algo);
    EXPECT_EQ(serial.limitHit, parallel.limitHit) << c.algo;
    EXPECT_EQ(serial.recovered, parallel.recovered) << c.algo;
    EXPECT_EQ(serial.recoveredAt, parallel.recoveredAt) << c.algo;
    EXPECT_EQ(serial.faultsInjected, parallel.faultsInjected) << c.algo;
    EXPECT_EQ(serial.protocolError, parallel.protocolError) << c.algo;
    EXPECT_GT(serial.faultsInjected, 0u) << c.algo;
    ASSERT_EQ(serialEvents.size(), parallelEvents.size()) << c.algo;
    for (std::size_t i = 0; i < serialEvents.size(); ++i) {
      const TraceEvent& a = serialEvents[i];
      const TraceEvent& b = parallelEvents[i];
      const bool same = a.kind == b.kind && a.time == b.time && a.agent == b.agent &&
                        a.node == b.node && a.a == b.a && a.b == b.b;
      ASSERT_TRUE(same) << c.algo << " fault-run trace event " << i << " drifted";
    }
  }
}

// BatchOptions.runThreads plumbs through CaseSpec into every run of a
// sweep; the cells must stay bit-identical to the all-serial sweep.
TEST(RunThreadsParallel, BatchRunnerSweepIsRunThreadsInvariant) {
  SweepSpec spec;
  spec.name = "rt";
  spec.graphs = {"er"};
  spec.ks = {300};
  spec.algorithms = {"rooted_sync"};
  spec.seeds = {1, 2};

  BatchOptions serialOpts;
  serialOpts.threads = 1;
  const SweepResult serial = BatchRunner(serialOpts).run(spec);

  BatchOptions lanedOpts;
  lanedOpts.threads = 1;  // one axis at a time (disp_bench enforces this)
  lanedOpts.runThreads = 4;
  const SweepResult laned = BatchRunner(lanedOpts).run(spec);

  ASSERT_EQ(serial.cells.size(), laned.cells.size());
  for (std::size_t i = 0; i < serial.cells.size(); ++i) {
    const Cell& a = serial.cells[i];
    const Cell& b = laned.cells[i];
    ASSERT_EQ(a.replicates.size(), b.replicates.size());
    for (std::size_t r = 0; r < a.replicates.size(); ++r) {
      expectSameRun(a.replicates[r].run, b.replicates[r].run,
                    a.key.describe() + " seed=" + std::to_string(spec.seeds[r]));
    }
  }
}

TEST(ParallelFor, CoversEveryIndexOnceAndPropagatesFirstError) {
  std::vector<int> hits(500, 0);
  parallelFor(4, hits.size(), [&](std::size_t i) { ++hits[i]; });
  for (const int h : hits) EXPECT_EQ(h, 1);
  EXPECT_THROW(parallelFor(4, 8,
                           [](std::size_t i) {
                             if (i == 3) throw std::runtime_error("boom");
                           }),
               std::runtime_error);
}

TEST(Stats, Ci95HalfWidth) {
  EXPECT_EQ(ci95(summarize(std::vector<double>{5.0})), 0.0);
  const Summary s = summarize(std::vector<double>{2.0, 4.0, 6.0, 8.0});
  EXPECT_NEAR(ci95(s), 1.96 * s.stddev / 2.0, 1e-12);
}

TEST(Jsonl, EscapesAndMirrorsTableRows) {
  std::ostringstream os;
  JsonlWriter w(os);
  w.record({{"a", "plain"}, {"q", "has \"quotes\"\nand\tmore"}});
  EXPECT_EQ(os.str(),
            "{\"a\": \"plain\", \"q\": \"has \\\"quotes\\\"\\nand\\tmore\"}\n");

  std::ostringstream md, jl;
  JsonlWriter sink(jl);
  BenchContext ctx{md, &sink, {}, {}};
  Table t({"k", "rounds"});
  t.row().cell(std::uint64_t{8}).cell(std::uint64_t{42});
  emitTable(ctx, "sweep_x", "title y", t);
  EXPECT_NE(md.str().find("| 42"), std::string::npos);
  EXPECT_EQ(jl.str(),
            "{\"sweep\": \"sweep_x\", \"table\": \"title y\", "
            "\"k\": \"8\", \"rounds\": \"42\"}\n");
}

TEST(Sweep, RejectsMalformedSpecAxesUpFront) {
  SweepSpec spec = smallSpec();
  spec.graphs = {"er", "nope:k=1"};
  EXPECT_THROW((void)enumerateCells(spec), std::invalid_argument);
  spec = smallSpec();
  spec.placements = {"cluster:l=3"};  // typo'd kind
  EXPECT_THROW((void)enumerateCells(spec), std::invalid_argument);
}

TEST(Sweep, ScaleRejectsMalformedEnvValue) {
  const char* old = std::getenv("DISP_BENCH_SCALE");
  const std::string saved = old ? old : "";
  const auto restore = [&] {
    if (old) {
      ::setenv("DISP_BENCH_SCALE", saved.c_str(), 1);
    } else {
      ::unsetenv("DISP_BENCH_SCALE");
    }
  };
  ::unsetenv("DISP_BENCH_SCALE");
  EXPECT_EQ(scale(), 1.0);
  ::setenv("DISP_BENCH_SCALE", "2", 1);
  EXPECT_EQ(scale(), 2.0);
  ::setenv("DISP_BENCH_SCALE", "0.5", 1);
  EXPECT_EQ(scale(), 0.5);
  // std::atof would have silently mapped all of these to 0.0, collapsing
  // every kSweep to the minimum; they must fail loudly instead.
  // (An empty value counts as unset, like the shell's `DISP_BENCH_SCALE=`.)
  ::setenv("DISP_BENCH_SCALE", "", 1);
  EXPECT_EQ(scale(), 1.0);
  for (const char* bad : {"abc", "0", "-1", "2x", "nan", "inf"}) {
    ::setenv("DISP_BENCH_SCALE", bad, 1);
    EXPECT_THROW((void)scale(), std::invalid_argument) << "value: " << bad;
  }
  restore();
}

// --shard=I/N semantics: the shards partition the canonical enumeration
// disjointly, each executed cell is bit-identical to the unsharded run,
// and onCellDone never fires for foreign cells.
TEST(BatchRunner, ShardsPartitionCellsDeterministically) {
  const SweepSpec spec = smallSpec();
  const SweepResult full = runnerWith(1).run(spec);

  std::vector<SweepResult> shards;
  std::size_t streamed = 0;
  for (unsigned i = 0; i < 3; ++i) {
    BatchOptions options;
    options.threads = 2;
    options.shardIndex = i;
    options.shardCount = 3;
    options.onCellDone = [&streamed](const Cell& c) {
      EXPECT_TRUE(c.ran());
      ++streamed;
    };
    shards.push_back(BatchRunner(options).run(spec));
  }

  std::size_t ranTotal = 0;
  for (std::size_t i = 0; i < full.cells.size(); ++i) {
    std::size_t owners = 0;
    for (const SweepResult& shard : shards) {
      ASSERT_EQ(shard.cells[i].key, full.cells[i].key);
      if (!shard.cells[i].ran()) continue;
      ++owners;
      ++ranTotal;
      ASSERT_EQ(shard.cells[i].replicates.size(), full.cells[i].replicates.size());
      for (std::size_t r = 0; r < full.cells[i].replicates.size(); ++r) {
        expectSameRun(shard.cells[i].replicates[r].run,
                      full.cells[i].replicates[r].run,
                      full.cells[i].key.describe());
      }
      EXPECT_EQ(shard.cells[i].time.mean, full.cells[i].time.mean);
    }
    EXPECT_EQ(owners, 1u) << "cell " << i << " owned by " << owners << " shards";
  }
  EXPECT_EQ(ranTotal, full.cells.size());
  EXPECT_EQ(streamed, full.cells.size());
}

TEST(BatchRunner, RejectsBadShard) {
  BatchOptions options;
  options.shardIndex = 2;
  options.shardCount = 2;
  EXPECT_THROW((void)BatchRunner(options).run(smallSpec()), std::invalid_argument);
}

// The acceptance check of the file: loader path: a generator graph saved
// to disk and re-run through a file: spec must reproduce the generator
// cell's facts exactly (dpg archives the port labeling bit-for-bit).
TEST(BatchRunner, FileSpecReproducesGeneratorCellExactly) {
  const std::uint64_t seed = 7;
  const std::uint32_t k = 16;
  CaseSpec gen;
  gen.graph = "er";
  gen.k = k;
  gen.algorithm = "general_sync";
  gen.placement = "clusters:l=4";
  gen.seed = seed;
  const RunRecord a = runCell(gen);

  // Save the exact graph the generator cell used (n = 2k, same seed).
  const Graph g = makeGraph("er", 2 * k, seed);
  const std::string path = ::testing::TempDir() + "exp_file_parity.dpg";
  saveGraph(path, g);

  CaseSpec viaFile = gen;
  viaFile.graph = "file:" + path;
  const RunRecord b = runCell(viaFile);
  EXPECT_EQ(a.n, b.n);
  EXPECT_EQ(a.edges, b.edges);
  EXPECT_EQ(a.maxDegree, b.maxDegree);
  expectSameRun(a.run, b.run, "file: parity");

  // And the batch path shares one loaded instance across seeds while
  // producing the same per-seed records.
  SweepSpec spec;
  spec.name = "file";
  spec.graphs = {"file:" + path};
  spec.ks = {k};
  spec.algorithms = {"general_sync"};
  spec.placements = {"clusters:l=4"};
  spec.seeds = {seed, seed + 1};
  const SweepResult res = runnerWith(2).run(spec);
  const Cell& cell = res.cells.front();
  expectSameRun(cell.replicates[0].run, a.run, "batch file: seed 7");
}

TEST(BenchContext, SeedsOrFallsBackToHistoricalSeed) {
  std::ostringstream os;
  BenchContext ctx{os, nullptr, {}, {}};
  EXPECT_EQ(ctx.seedsOr(17), (std::vector<std::uint64_t>{17}));
  ctx.seedOverride = {1, 2, 3};
  EXPECT_EQ(ctx.seedsOr(17), (std::vector<std::uint64_t>{1, 2, 3}));
}

}  // namespace
}  // namespace disp::exp
