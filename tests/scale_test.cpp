// Tests for the web-scale ingest machinery: the two-pass streaming CSR
// builder (fuzzed against the validating GraphBuilder), the ba/rmat/er:fast
// generator invariants, the Graphalytics writer round-trip, the portTo
// high-degree fast path, and the peak-RSS probe semantics.
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <vector>

#include "util/mem.hpp"
#include "util/rng.hpp"

#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "graph/graph_io.hpp"
#include "graph/spec.hpp"

namespace disp {
namespace {

// Port-exact graph equality: same CSR facts at every node and port.
void expectSameLabeledGraph(const Graph& a, const Graph& b) {
  ASSERT_EQ(a.nodeCount(), b.nodeCount());
  ASSERT_EQ(a.edgeCount(), b.edgeCount());
  EXPECT_EQ(a.maxDegree(), b.maxDegree());
  for (NodeId v = 0; v < a.nodeCount(); ++v) {
    ASSERT_EQ(a.degree(v), b.degree(v)) << "node " << v;
    for (Port p = 1; p <= a.degree(v); ++p) {
      EXPECT_EQ(a.neighbor(v, p), b.neighbor(v, p)) << v << ":" << p;
      EXPECT_EQ(a.reversePort(v, p), b.reversePort(v, p)) << v << ":" << p;
    }
  }
}

Graph twoPass(std::uint32_t n, const std::vector<Edge>& edges) {
  TwoPassBuilder tp(n);
  for (const Edge& e : edges) tp.countEdge(e.u, e.v);
  tp.beginEdges();
  for (const Edge& e : edges) tp.addEdge(e.u, e.v);
  return tp.finish();
}

// ---------------------------------------------------------- TwoPassBuilder

TEST(TwoPassBuilder, MatchesGraphBuilderOnFuzzedGraphs) {
  Rng rng(20260807);
  for (int iter = 0; iter < 60; ++iter) {
    // Random simple graph over a random node count, plus deliberate
    // isolated nodes (ids never touched by any edge).
    const auto n = static_cast<std::uint32_t>(4 + rng.below(60));
    GraphBuilder gb(n);
    std::vector<Edge> edges;
    for (std::uint32_t u = 0; u < n; ++u) {
      for (std::uint32_t v = u + 1; v < n; ++v) {
        if (u % 7 == 3 || v % 7 == 3) continue;  // keep some nodes isolated
        if (!rng.chance(0.15)) continue;
        const bool swap = rng.chance(0.5);
        const Edge e{swap ? v : u, swap ? u : v};
        gb.addEdge(e.u, e.v);
        edges.push_back(e);
      }
    }
    if (edges.empty()) continue;
    expectSameLabeledGraph(gb.build(PortLabeling::InsertionOrder),
                           twoPass(n, edges));
  }
}

TEST(TwoPassBuilder, MatchesGeneratorOutputs) {
  // Skewed-degree graphs are what the streaming path exists for.
  for (const char* family : {"ba", "rmat", "star"}) {
    const GraphBuilder gb = [&] {
      if (std::string(family) == "ba") return makeBarabasiAlbert(400, 3, 9);
      if (std::string(family) == "rmat") return makeRmat(256, 4, 9);
      return makeStar(200);
    }();
    SCOPED_TRACE(family);
    expectSameLabeledGraph(gb.build(PortLabeling::InsertionOrder),
                           twoPass(gb.nodeCount(), gb.edges()));
  }
}

TEST(TwoPassBuilder, RejectsSelfLoopAndPassMismatch) {
  {
    TwoPassBuilder tp(3);
    EXPECT_THROW(tp.countEdge(1, 1), std::invalid_argument);
  }
  {
    TwoPassBuilder tp(3);
    tp.countEdge(0, 1);
    tp.beginEdges();
    EXPECT_THROW(tp.addEdge(1, 1), std::invalid_argument);
  }
  {
    // Pass two must replay exactly the counted edges.
    TwoPassBuilder tp(4);
    tp.countEdge(0, 1);
    tp.countEdge(1, 2);
    tp.beginEdges();
    tp.addEdge(0, 1);
    EXPECT_THROW((void)tp.finish(), std::invalid_argument);
  }
  {
    // A different pass-two stream overflows some node's degree slot.
    TwoPassBuilder tp(4);
    tp.countEdge(0, 1);
    tp.countEdge(2, 3);
    tp.beginEdges();
    tp.addEdge(0, 1);
    EXPECT_THROW(tp.addEdge(0, 2), std::invalid_argument);
  }
}

TEST(TwoPassBuilder, HandlesIsolatedNodes) {
  // Nodes 0 and 3 isolated; CSR rows must be empty, not misaligned.
  const Graph g = twoPass(5, {{1, 2}, {2, 4}, {4, 1}});
  EXPECT_EQ(g.nodeCount(), 5u);
  EXPECT_EQ(g.edgeCount(), 3u);
  EXPECT_EQ(g.degree(0), 0u);
  EXPECT_EQ(g.degree(3), 0u);
  EXPECT_EQ(g.degree(2), 2u);
  EXPECT_NO_THROW(validateGraph(g));
}

// -------------------------------------------------------- streaming loaders

TEST(GraphIo, EdgeListRemapsSparseIdsBeyondTwoPow21) {
  // Ids far above the dense-remap threshold the loader compacts around.
  std::stringstream ss(
      "4194304 8388608\n"
      "8388608 16777216\n"
      "16777216 4194304\n");
  const Graph g = readEdgeList(ss, "sparse.el");
  EXPECT_EQ(g.nodeCount(), 3u);
  EXPECT_EQ(g.edgeCount(), 3u);
  EXPECT_TRUE(isConnected(g));
  EXPECT_NO_THROW(validateGraph(g));
}

TEST(GraphIo, EdgeListRejectsDuplicatesInBothOrientations) {
  std::stringstream same("0 1\n1 2\n0 1\n");
  EXPECT_THROW((void)readEdgeList(same, "s.el"), std::invalid_argument);
  std::stringstream flipped("0 1\n1 2\n1 0\n");
  EXPECT_THROW((void)readEdgeList(flipped, "f.el"), std::invalid_argument);
}

TEST(GraphIo, GraphalyticsWriterRoundTrips) {
  const Graph g = makeGraph("ba:n=300,d=3", 0, 21, PortLabeling::InsertionOrder);
  const std::string base = ::testing::TempDir() + "rt_ba";
  writeGraphalytics(base, g);
  const Graph h = loadGraphalytics(base);
  ASSERT_EQ(h.nodeCount(), g.nodeCount());
  ASSERT_EQ(h.edgeCount(), g.edgeCount());
  // Ports are not stored, so compare structure (degrees + adjacency) and
  // pin that a second write/load round-trip is a labeling fixpoint.
  for (NodeId v = 0; v < g.nodeCount(); ++v) {
    ASSERT_EQ(h.degree(v), g.degree(v)) << "node " << v;
    for (Port p = 1; p <= g.degree(v); ++p) {
      EXPECT_NE(h.portTo(v, g.neighbor(v, p)), kNoPort);
    }
  }
  const std::string base2 = ::testing::TempDir() + "rt_ba2";
  writeGraphalytics(base2, h);
  expectSameLabeledGraph(h, loadGraphalytics(base2));
}

// ------------------------------------------------------------- generators

TEST(Generators, BarabasiAlbertInvariantsPerSeed) {
  const std::uint32_t n = 500, d = 4;
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    const Graph g = makeBarabasiAlbert(n, d, seed).build();
    EXPECT_EQ(g.nodeCount(), n);
    // (d+1)-clique seed + d edges per later node, all distinct endpoints.
    EXPECT_EQ(g.edgeCount(),
              static_cast<std::uint64_t>(d + 1) * d / 2 +
                  static_cast<std::uint64_t>(n - d - 1) * d);
    for (NodeId v = 0; v < n; ++v) EXPECT_GE(g.degree(v), d) << "seed " << seed;
    EXPECT_TRUE(isConnected(g)) << "seed " << seed;
    EXPECT_NO_THROW(validateGraph(g));
    // Preferential attachment must produce a heavy tail: some hub well
    // above the 2d mean degree.
    EXPECT_GT(g.maxDegree(), 4 * d) << "seed " << seed;
  }
}

TEST(Generators, BarabasiAlbertIsSeedDeterministic) {
  const GraphBuilder a = makeBarabasiAlbert(300, 3, 42);
  const GraphBuilder b = makeBarabasiAlbert(300, 3, 42);
  expectSameLabeledGraph(a.build(), b.build());
}

TEST(Generators, RmatInvariantsPerSeed) {
  const std::uint32_t n = 512, ef = 6;
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    const Graph g = makeRmat(n, ef, seed).build();
    EXPECT_EQ(g.nodeCount(), n);
    // Target is ~n*ef distinct edges; duplicates are dropped and the
    // connectivity augmentation adds at most a spanning set.
    EXPECT_GE(g.edgeCount(), static_cast<std::uint64_t>(n) * ef / 2);
    EXPECT_LE(g.edgeCount(), static_cast<std::uint64_t>(n) * (ef + 1));
    EXPECT_TRUE(isConnected(g)) << "seed " << seed;
    EXPECT_NO_THROW(validateGraph(g));
    // The Graph500 mix concentrates mass in the low quadrant: skewed tail.
    EXPECT_GT(g.maxDegree(), 4 * ef) << "seed " << seed;
  }
}

TEST(Generators, ErdosRenyiFastIsConnectedAndSeedStable) {
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    const Graph g = makeErdosRenyiFast(400, 0.01, seed).build();
    EXPECT_EQ(g.nodeCount(), 400u);
    EXPECT_TRUE(isConnected(g)) << "seed " << seed;
    EXPECT_NO_THROW(validateGraph(g));
  }
  expectSameLabeledGraph(makeErdosRenyiFast(200, 0.05, 5).build(),
                         makeErdosRenyiFast(200, 0.05, 5).build());
}

TEST(GraphSpec, ScaleFamiliesRegisteredWithSizeBounds) {
  EXPECT_EQ(makeGraph("ba:n=200,d=5", 0, 3).nodeCount(), 200u);
  EXPECT_EQ(makeGraph("rmat:n=128,ef=4", 0, 3).nodeCount(), 128u);
  EXPECT_TRUE(GraphSpec::parse("ba:n=200").sizeBound());
  EXPECT_TRUE(GraphSpec::parse("rmat:n=128").sizeBound());
  EXPECT_FALSE(GraphSpec::parse("ba").sizeBound());
  // er:fast=1 is the opt-in O(m) sampler; bare er keeps its pinned stream.
  EXPECT_EQ(makeGraph("er:fast=1,n=256", 0, 7).nodeCount(), 256u);
  EXPECT_TRUE(isConnected(makeGraph("er:fast=1,n=256", 0, 7)));
}

// -------------------------------------------------------- portTo fast path

TEST(Graph, PortToIndexMatchesLinearScanAcrossThreshold) {
  // Degrees straddle kPortToIndexThreshold: hub uses the binary-search
  // index, leaves the linear scan; both must agree with the CSR rows.
  const Graph g = makeGraph("ba:n=400,d=4", 0, 13, PortLabeling::RandomPermutation);
  ASSERT_GT(g.maxDegree(), Graph::kPortToIndexThreshold);
  for (NodeId v = 0; v < g.nodeCount(); ++v) {
    const auto nbrs = g.neighbors(v);
    for (Port p = 1; p <= g.degree(v); ++p) {
      EXPECT_EQ(g.portTo(v, nbrs[p - 1]), p) << "node " << v;
    }
    EXPECT_EQ(g.portTo(v, v), kNoPort);
  }
}

TEST(Graph, PortToMissesOnHighDegreeNodes) {
  const Graph g = makeStar(100).build();
  ASSERT_GT(g.degree(0), Graph::kPortToIndexThreshold);
  // Leaves are mutually non-adjacent; the hub index must report misses.
  EXPECT_EQ(g.portTo(1, 2), kNoPort);
  EXPECT_EQ(g.portTo(1, 99), kNoPort);
  EXPECT_NE(g.portTo(0, 57), kNoPort);
}

// ------------------------------------------------------------ RSS probe

TEST(MemProbe, PeakCoversCurrentAndGrowsUnderAllocation) {
  const double current = currentRssMb();
  const double peak = peakRssMb();
  if (current == 0.0 || peak == 0.0) {
    GTEST_SKIP() << "RSS probe unavailable on this platform";
  }
  // The high-water mark can never be below the current resident set
  // (small slack: the two /proc reads are not atomic).
  EXPECT_GE(peak + 1.0, current);

  (void)resetPeakRss();
  const double before = peakRssMb();
  {
    // Touch ~64 MiB so the watermark must move well past `before`.
    std::vector<std::uint8_t> ballast(64u << 20, 1);
    volatile std::uint8_t sink = 0;
    for (std::size_t i = 0; i < ballast.size(); i += 4096) {
      sink = static_cast<std::uint8_t>(sink ^ ballast[i]);
    }
    (void)sink;
    EXPECT_GE(peakRssMb(), before + 32.0);
  }
  // Monotone until the next reset, even after the ballast is freed.
  const double after = peakRssMb();
  EXPECT_GE(after, before + 32.0);
  // A reset (when supported) pulls the watermark back toward current RSS.
  if (resetPeakRss()) {
    EXPECT_LE(peakRssMb(), after);
  }
}

}  // namespace
}  // namespace disp
