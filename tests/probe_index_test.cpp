// Guard rails for the ASYNC protocol probe indexes (algo/probe_index.hpp,
// DESIGN.md §9.4):
//  * randomized fuzz of IdleProberIndex and GroupPositionIndex against
//    obviously-correct naive models, replaying thousands of membership /
//    position / relabel transitions — buckets, counts and consolidation
//    verdicts must match after every step;
//  * end-to-end protocol runs on both index consumers (rooted_async,
//    general_async); in debug builds every availableProbersAt /
//    groupConsolidatedAt call additionally cross-checks the index against
//    the naive occupant scan it replaced.
#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <vector>

#include "algo/probe_index.hpp"
#include "algo/runner.hpp"
#include "graph/spec.hpp"

namespace disp {
namespace {

// ------------------------------------------- IdleProberIndex fuzz

/// The naive model: membership flags + positions, bucket = filter + sort.
struct NaiveProberModel {
  std::vector<bool> member;
  std::vector<NodeId> pos;

  NaiveProberModel(std::uint32_t agents, NodeId /*nodes*/)
      : member(agents, false), pos(agents, kInvalidNode) {}

  [[nodiscard]] std::vector<AgentIx> membersAt(NodeId v) const {
    std::vector<AgentIx> out;
    for (AgentIx a = 0; a < member.size(); ++a) {
      if (member[a] && pos[a] == v) out.push_back(a);
    }
    return out;
  }
};

void expectSameBucket(const IdleProberIndex& idx, const NaiveProberModel& ref,
                      NodeId v) {
  std::vector<AgentIx> got = idx.membersAt(v);
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, ref.membersAt(v)) << "node " << v;
}

TEST(IdleProberIndexFuzz, MatchesNaiveModelUnderRandomTransitions) {
  constexpr std::uint32_t kAgents = 48;
  constexpr NodeId kNodes = 16;
  constexpr std::uint32_t kSteps = 20000;
  std::mt19937_64 rng(20250807);

  IdleProberIndex idx(kAgents, kNodes);
  NaiveProberModel ref(kAgents, kNodes);

  for (std::uint32_t step = 0; step < kSteps; ++step) {
    const auto a = static_cast<AgentIx>(rng() % kAgents);
    const auto v = static_cast<NodeId>(rng() % kNodes);
    const NodeId before = ref.member[a] ? ref.pos[a] : kInvalidNode;
    switch (rng() % 3) {
      case 0:  // membership on (settle-undo / guest recruit)
        if (!ref.member[a]) {
          idx.insert(a, v);
          ref.member[a] = true;
          ref.pos[a] = v;
        }
        break;
      case 1:  // membership off (settle / guest goes home)
        if (ref.member[a]) {
          idx.erase(a);
          ref.member[a] = false;
        }
        break;
      default:  // position change (move hook); non-members must be ignored
        idx.relocate(a, v);
        if (ref.member[a]) ref.pos[a] = v;
        break;
    }
    ASSERT_EQ(idx.contains(a), ref.member[a]);
    expectSameBucket(idx, ref, v);
    if (before != kInvalidNode) expectSameBucket(idx, ref, before);
    if (step % 500 == 0) {
      for (NodeId u = 0; u < kNodes; ++u) expectSameBucket(idx, ref, u);
    }
  }
}

// ----------------------------------------- GroupPositionIndex fuzz

/// The naive model: (label, node, settled) per agent; consolidation by scan.
struct NaiveGroupModel {
  std::vector<std::uint32_t> label;
  std::vector<NodeId> pos;
  std::vector<bool> settled;

  NaiveGroupModel(std::uint32_t agents, std::uint32_t labels, NodeId nodes,
                  std::mt19937_64& rng)
      : label(agents), pos(agents), settled(agents, false) {
    for (AgentIx a = 0; a < agents; ++a) {
      label[a] = static_cast<std::uint32_t>(rng() % labels);
      pos[a] = static_cast<NodeId>(rng() % nodes);
    }
  }

  [[nodiscard]] std::uint32_t unsettledCount(std::uint32_t l) const {
    std::uint32_t n = 0;
    for (AgentIx a = 0; a < label.size(); ++a) n += (label[a] == l && !settled[a]);
    return n;
  }

  [[nodiscard]] std::uint32_t countAt(std::uint32_t l, NodeId v) const {
    std::uint32_t n = 0;
    for (AgentIx a = 0; a < label.size(); ++a) {
      n += (label[a] == l && !settled[a] && pos[a] == v);
    }
    return n;
  }

  [[nodiscard]] bool consolidatedAt(std::uint32_t l, NodeId v) const {
    bool any = false;
    for (AgentIx a = 0; a < label.size(); ++a) {
      if (label[a] != l || settled[a]) continue;
      if (pos[a] != v) return false;
      any = true;
    }
    return any;
  }
};

TEST(GroupPositionIndexFuzz, MatchesNaiveModelUnderRandomTransitions) {
  constexpr std::uint32_t kAgents = 40;
  constexpr std::uint32_t kLabels = 5;
  constexpr NodeId kNodes = 12;
  constexpr std::uint32_t kSteps = 20000;
  std::mt19937_64 rng(777);

  NaiveGroupModel ref(kAgents, kLabels, kNodes, rng);
  GroupPositionIndex idx(kLabels);
  for (AgentIx a = 0; a < kAgents; ++a) idx.add(ref.label[a], ref.pos[a]);

  for (std::uint32_t step = 0; step < kSteps; ++step) {
    const auto a = static_cast<AgentIx>(rng() % kAgents);
    const auto v = static_cast<NodeId>(rng() % kNodes);
    const auto l = static_cast<std::uint32_t>(rng() % kLabels);
    switch (rng() % 4) {
      case 0:  // settle at current node
        if (!ref.settled[a]) {
          idx.remove(ref.label[a], ref.pos[a]);
          ref.settled[a] = true;
        }
        break;
      case 1:  // unsettle (collapse walk collects a settler; may relabel)
        if (ref.settled[a]) {
          ref.label[a] = l;
          idx.add(l, ref.pos[a]);
          ref.settled[a] = false;
        }
        break;
      case 2:  // relabel an unsettled agent in place (adopt / absorb)
        if (!ref.settled[a] && ref.label[a] != l) {
          idx.remove(ref.label[a], ref.pos[a]);
          idx.add(l, ref.pos[a]);
          ref.label[a] = l;
        }
        break;
      default:  // move (the engine hook fires for unsettled members only)
        if (!ref.settled[a]) idx.move(ref.label[a], ref.pos[a], v);
        ref.pos[a] = v;
        break;
    }
    ASSERT_EQ(idx.unsettledCount(l), ref.unsettledCount(l));
    ASSERT_EQ(idx.countAt(l, v), ref.countAt(l, v));
    ASSERT_EQ(idx.consolidatedAt(l, v), ref.consolidatedAt(l, v));
    if (step % 500 == 0) {
      for (std::uint32_t li = 0; li < kLabels; ++li) {
        for (NodeId u = 0; u < kNodes; ++u) {
          ASSERT_EQ(idx.consolidatedAt(li, u), ref.consolidatedAt(li, u))
              << "label " << li << " node " << u;
        }
      }
    }
  }
}

// ------------------------------------- protocol-level equivalence

// Drives both index consumers end to end across schedulers and seeds.  In
// debug builds every query re-runs the naive scan and DISP_CHECKs equality,
// so a single dispersal here exercises thousands of index/naive
// comparisons under real protocol transition patterns (recruit, see-off,
// collapse, absorb, squatting retreats).
TEST(ProbeIndexProtocols, IndexedQueriesDisperseUnderEverySchedulerShape) {
  const char* scheds[] = {"round_robin", "uniform", "weighted:16", "shuffled"};
  for (const char* sched : scheds) {
    for (const std::uint64_t seed : {7ULL, 23ULL}) {
      RunOptions opts;
      opts.scheduler = sched;
      opts.seed = seed;

      opts.algorithm = "rooted_async";
      const RunResult rooted = runScenario("er", "rooted", 48, opts);
      EXPECT_TRUE(rooted.dispersed) << sched << " seed " << seed;

      opts.algorithm = "general_async";
      const RunResult general = runScenario("er", "clusters:l=4", 48, opts);
      EXPECT_TRUE(general.dispersed) << sched << " seed " << seed;
    }
  }
}

}  // namespace
}  // namespace disp
