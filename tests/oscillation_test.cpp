// Tests for the oscillator subsystem: trip shapes, the ≤ 6-round cycle
// (Lemma 2), the "every covered node visited within any 7 consecutive
// snapshots" property that Sync_Probe relies on, stop addition/removal
// rules and Lemma 3 type exclusivity.
#include <gtest/gtest.h>

#include "algo/oscillation.hpp"
#include "core/sync_engine.hpp"
#include "graph/generators.hpp"

namespace disp {
namespace {

std::vector<AgentId> seqIds(std::uint32_t k) {
  std::vector<AgentId> ids(k);
  for (std::uint32_t i = 0; i < k; ++i) ids[i] = i + 1;
  return ids;
}

// Observer fiber: record the oscillator's position for `rounds` rounds.
Task observe(SyncEngine& e, AgentIx a, std::uint32_t rounds,
             std::vector<NodeId>& trace) {
  for (std::uint32_t i = 0; i < rounds; ++i) {
    trace.push_back(e.positionOf(a));
    co_await e.nextRound();
  }
  trace.push_back(e.positionOf(a));
}

TEST(Oscillation, ChildTripVisitsEveryStopEachCycle) {
  // Star: agent 0 at hub covers children via ports 1..3.
  const Graph g = makeStar(6).build();
  SyncEngine e(g, {0}, seqIds(1));
  OscillatorSystem osc(e);
  osc.install();
  osc.addChildStop(0, 1);
  osc.addChildStop(0, 2);
  osc.addChildStop(0, 3);
  EXPECT_EQ(osc.maxCycleRounds(), 6u);

  std::vector<NodeId> trace;
  e.addFiber(observe(e, 0, 24, trace));
  e.run(100);

  // In any window of 7 consecutive snapshots, every covered node appears.
  for (std::size_t start = 0; start + 7 <= trace.size(); ++start) {
    for (Port p = 1; p <= 3; ++p) {
      const NodeId covered = g.neighbor(0, p);
      bool seen = false;
      for (std::size_t i = start; i < start + 7; ++i) seen |= trace[i] == covered;
      EXPECT_TRUE(seen) << "window " << start << " misses stop " << covered;
    }
  }
}

TEST(Oscillation, HomeVisitedEveryCycle) {
  const Graph g = makeStar(6).build();
  SyncEngine e(g, {0}, seqIds(1));
  OscillatorSystem osc(e);
  osc.install();
  osc.addChildStop(0, 1);
  osc.addChildStop(0, 2);
  osc.addChildStop(0, 3);
  std::vector<NodeId> trace;
  e.addFiber(observe(e, 0, 24, trace));
  e.run(100);
  for (std::size_t start = 0; start + 7 <= trace.size(); ++start) {
    bool home = false;
    for (std::size_t i = start; i < start + 7; ++i) home |= trace[i] == 0;
    EXPECT_TRUE(home);
  }
}

TEST(Oscillation, SiblingTripShape) {
  // Path 0-1-2-3: agent at node 0... use a star-of-3: parent=hub(0),
  // settler at leaf 1, covers leaves 2 and 3.
  const Graph g = makeStar(4).build();
  // Agent 0 placed at leaf reached via hub port 1.
  const NodeId home = g.neighbor(0, 1);
  SyncEngine e(g, {home}, seqIds(1));
  OscillatorSystem osc(e);
  osc.install();
  const Port parentPort = 1;  // leaves have exactly one port
  osc.addSiblingStop(0, parentPort, 2);
  osc.addSiblingStop(0, parentPort, 3);
  EXPECT_EQ(osc.maxCycleRounds(), 6u);

  std::vector<NodeId> trace;
  e.addFiber(observe(e, 0, 18, trace));
  e.run(100);

  const NodeId sib1 = g.neighbor(0, 2), sib2 = g.neighbor(0, 3);
  for (std::size_t start = 0; start + 7 <= trace.size(); ++start) {
    bool s1 = false, s2 = false, hm = false;
    for (std::size_t i = start; i < start + 7; ++i) {
      s1 |= trace[i] == sib1;
      s2 |= trace[i] == sib2;
      hm |= trace[i] == home;
    }
    EXPECT_TRUE(s1 && s2 && hm) << "window " << start;
  }
}

Task idleRounds(SyncEngine& e, std::uint32_t n) {
  for (std::uint32_t i = 0; i < n; ++i) co_await e.nextRound();
}

TEST(Oscillation, TypeMixingRejected) {
  const Graph g = makeStar(5).build();
  SyncEngine e(g, {0}, seqIds(1));
  OscillatorSystem osc(e);
  osc.addChildStop(0, 1);
  EXPECT_THROW(osc.addSiblingStop(0, 2, 3), std::logic_error);
}

TEST(Oscillation, ChildCapacityIsThree) {
  const Graph g = makeStar(6).build();
  SyncEngine e(g, {0}, seqIds(1));
  OscillatorSystem osc(e);
  osc.addChildStop(0, 1);
  osc.addChildStop(0, 2);
  osc.addChildStop(0, 3);
  EXPECT_THROW(osc.addChildStop(0, 4), std::logic_error);
}

TEST(Oscillation, SiblingCapacityIsTwo) {
  const Graph g = makeStar(5).build();
  const NodeId home = g.neighbor(0, 1);
  SyncEngine e(g, {home}, seqIds(1));
  OscillatorSystem osc(e);
  osc.addSiblingStop(0, 1, 2);
  osc.addSiblingStop(0, 1, 3);
  EXPECT_THROW(osc.addSiblingStop(0, 1, 4), std::logic_error);
}

TEST(Oscillation, AddRequiresIdleAtHome) {
  const Graph g = makeStar(6).build();
  SyncEngine e(g, {0}, seqIds(1));
  OscillatorSystem osc(e);
  osc.install();
  osc.addChildStop(0, 1);
  // Let one round pass: the oscillator is now away.
  e.addFiber(idleRounds(e, 1));
  e.run(10);
  EXPECT_FALSE(osc.isIdleAtHome(0));
  EXPECT_THROW(osc.addChildStop(0, 2), std::logic_error);
}

// Fiber that waits until the oscillator stands on its stop, then drops it.
Task dropWhenAtStop(SyncEngine& e, OscillatorSystem& osc, AgentIx a, bool& dropped) {
  for (std::uint32_t i = 0; i < 20; ++i) {
    if (osc.currentStopPort(a).has_value()) {
      osc.dropCurrentStop(a);
      dropped = true;
      co_return;
    }
    co_await e.nextRound();
  }
}

TEST(Oscillation, DropLastStopStopsOscillating) {
  const Graph g = makeStar(4).build();
  SyncEngine e(g, {0}, seqIds(1));
  OscillatorSystem osc(e);
  osc.install();
  osc.addChildStop(0, 1);
  bool dropped = false;
  e.addFiber(dropWhenAtStop(e, osc, 0, dropped));
  e.run(50);
  EXPECT_TRUE(dropped);
  // Let the trip finish: run a no-op fiber for a few rounds.
  SyncEngine e2(g, {0}, seqIds(1));  // fresh engine to check idle default
  OscillatorSystem osc2(e2);
  EXPECT_TRUE(osc2.isIdleAtHome(0));
  EXPECT_FALSE(osc2.isOscillating(0));
}

TEST(Oscillation, DropRequiresStandingOnStop) {
  const Graph g = makeStar(4).build();
  SyncEngine e(g, {0}, seqIds(1));
  OscillatorSystem osc(e);
  osc.addChildStop(0, 1);
  EXPECT_THROW(osc.dropCurrentStop(0), std::logic_error);  // still at home
}

TEST(Oscillation, NonParticipantsAreIdleAtHome) {
  const Graph g = makeStar(4).build();
  SyncEngine e(g, {0, 0}, seqIds(2));
  OscillatorSystem osc(e);
  EXPECT_TRUE(osc.isIdleAtHome(1));
  EXPECT_FALSE(osc.isOscillating(1));
  EXPECT_EQ(osc.currentStopPort(1), std::nullopt);
}

}  // namespace
}  // namespace disp
