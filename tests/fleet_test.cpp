// Tests for the src/fleet/ sweep fabric: the JSON value model, manifest
// round-trip + corruption rejection, the collector's dedup/divergence
// audit, transport spec parsing, --shard parse hardening, and — when the
// bench binaries are built (DISP_BENCH_BIN / DISP_FLEET_BIN) — subprocess
// end-to-end runs: a sharded fleet campaign must reproduce the unsharded
// reference byte-identically in fact columns, survive a mid-shard kill via
// restart-resume, and poison persistently failing shards.
#include <gtest/gtest.h>

#include <sys/wait.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "exp/bench_registry.hpp"
#include "fleet/collector.hpp"
#include "fleet/json.hpp"
#include "fleet/manifest.hpp"
#include "fleet/supervisor.hpp"
#include "fleet/transport.hpp"

namespace disp::fleet {
namespace {

namespace fs = std::filesystem;

std::string testDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "fleet_" + name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

void writeFile(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::trunc);
  ASSERT_TRUE(out) << path;
  out << content;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in) << path;
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

// ------------------------------------------------------------------ JSON

TEST(FleetJson, RoundTripsJsonlWriterRows) {
  const std::string line =
      R"({"sweep": "scenario", "table": "cell", "graph": "path:n=64", "k": "4", "moves": "17"})";
  const JsonValue v = JsonValue::parse(line);
  ASSERT_TRUE(v.isObject());
  EXPECT_EQ(v.dump(), line);  // insertion order + string values preserved
  ASSERT_NE(v.find("graph"), nullptr);
  EXPECT_EQ(v.find("graph")->asString(), "path:n=64");
  EXPECT_EQ(v.find("missing"), nullptr);
}

TEST(FleetJson, ParsesNestedValuesAndEscapes) {
  const JsonValue v = JsonValue::parse(
      R"({"a": [1, 2.5, true, null], "s": "q\"\\\nA"})");
  ASSERT_NE(v.find("a"), nullptr);
  const auto& items = v.find("a")->items();
  ASSERT_EQ(items.size(), 4u);
  EXPECT_EQ(items[0].asU64(), 1u);
  EXPECT_DOUBLE_EQ(items[1].asNumber(), 2.5);
  EXPECT_TRUE(items[2].asBool());
  EXPECT_TRUE(items[3].isNull());
  EXPECT_EQ(v.find("s")->asString(), "q\"\\\nA");
}

TEST(FleetJson, RejectsMalformedInputWithOffset) {
  EXPECT_THROW((void)JsonValue::parse(R"({"a": )"), std::runtime_error);
  EXPECT_THROW((void)JsonValue::parse(R"({"a": 1} trailing)"), std::runtime_error);
  EXPECT_THROW((void)JsonValue::parse(""), std::runtime_error);
  try {
    (void)JsonValue::parse(R"({"a": nope})");
    FAIL() << "expected parse failure";
  } catch (const std::runtime_error& e) {
    // The diagnostic must carry a byte offset for corrupted-manifest triage.
    EXPECT_NE(std::string(e.what()).find("at byte"), std::string::npos) << e.what();
  }
}

TEST(FleetJson, U64RejectsNonIntegers) {
  EXPECT_THROW((void)JsonValue::parse("1.5").asU64(), std::runtime_error);
  EXPECT_THROW((void)JsonValue::parse("-3").asU64(), std::runtime_error);
  EXPECT_EQ(JsonValue::parse("4096").asU64(), 4096u);
}

// ----------------------------------------------------------- shard flag

TEST(ShardFlag, ParsesCanonicalForms) {
  EXPECT_EQ(exp::parseShardFlag("0/1"), (std::pair<unsigned, unsigned>{0, 1}));
  EXPECT_EQ(exp::parseShardFlag("3/4"), (std::pair<unsigned, unsigned>{3, 4}));
  EXPECT_EQ(exp::parseShardFlag("0/4096"),
            (std::pair<unsigned, unsigned>{0, 4096}));
}

TEST(ShardFlag, RejectsNonCanonicalForms) {
  for (const char* bad : {"", "/", "1", "1/", "/4", "01/4", "1/04", "1/4/2",
                          "a/b", " 1/4", "1/4 ", "-1/4", "+1/4", "4/4", "0/0",
                          "0/4097", "12345/12346"}) {
    EXPECT_THROW((void)exp::parseShardFlag(bad), std::invalid_argument) << bad;
  }
}

TEST(ShardFlag, AttemptNamesAreStable) {
  EXPECT_EQ(shardAttemptName(0, 4, 1, "jsonl"), "shard_0of4.attempt1.jsonl");
  EXPECT_EQ(shardAttemptName(13, 128, 3, "log"), "shard_13of128.attempt3.log");
}

// ------------------------------------------------------------- manifest

Manifest sampleManifest() {
  Manifest m;
  m.sweeps = {"scenario", "faults"};
  m.benchArgs = {"--ks=4,6", "--seeds=1,2"};
  m.fleetSpec = "local:2";
  m.shardCount = 2;
  m.totalCells = 8;
  for (std::uint32_t i = 0; i < 2; ++i) {
    ShardEntry sh;
    sh.index = i;
    sh.cells = 4;
    m.shards.push_back(sh);
  }
  m.shards[0].state = ShardState::Done;
  m.shards[0].attempts = 2;
  m.shards[0].worker = "local:1";
  m.shards[0].outputs = {"shard_0of2.attempt1.jsonl", "shard_0of2.attempt2.jsonl"};
  m.shards[0].cellsDone = 4;
  return m;
}

TEST(FleetManifest, RoundTripsThroughJson) {
  const Manifest m = sampleManifest();
  const Manifest back = Manifest::fromJson(m.toJson());
  EXPECT_EQ(back.sweeps, m.sweeps);
  EXPECT_EQ(back.benchArgs, m.benchArgs);
  EXPECT_EQ(back.fleetSpec, m.fleetSpec);
  EXPECT_EQ(back.shardCount, m.shardCount);
  EXPECT_EQ(back.totalCells, m.totalCells);
  ASSERT_EQ(back.shards.size(), m.shards.size());
  EXPECT_EQ(back.shards[0].state, ShardState::Done);
  EXPECT_EQ(back.shards[0].attempts, 2u);
  EXPECT_EQ(back.shards[0].worker, "local:1");
  EXPECT_EQ(back.shards[0].outputs, m.shards[0].outputs);
  EXPECT_EQ(back.shards[0].cellsDone, 4u);
  EXPECT_EQ(back.shards[1].state, ShardState::Pending);
}

TEST(FleetManifest, SaveIsAtomicAndLoadable) {
  const std::string dir = testDir("manifest_save");
  const std::string path = dir + "/" + kManifestFile;
  sampleManifest().save(path);
  EXPECT_FALSE(fs::exists(path + ".tmp"));  // tmp+rename leaves no residue
  const Manifest back = Manifest::load(path);
  EXPECT_EQ(back.totalCells, 8u);
}

TEST(FleetManifest, RejectsCorruption) {
  const std::string good = sampleManifest().toJson();
  // Truncation (a crash mid-write would be caught before the rename, but a
  // corrupted disk image must still fail loudly).
  EXPECT_THROW((void)Manifest::fromJson(good.substr(0, good.size() / 2)),
               std::runtime_error);
  // Future/unknown version.
  std::string wrongVersion = good;
  wrongVersion.replace(wrongVersion.find("\"version\": 1"),
                       std::string("\"version\": 1").size(), "\"version\": 2");
  EXPECT_THROW((void)Manifest::fromJson(wrongVersion), std::runtime_error);
  // shard_count disagreeing with the shards array.
  std::string wrongCount = good;
  wrongCount.replace(wrongCount.find("\"shard_count\": 2"),
                     std::string("\"shard_count\": 2").size(),
                     "\"shard_count\": 3");
  EXPECT_THROW((void)Manifest::fromJson(wrongCount), std::runtime_error);
  // More outputs than attempts (impossible history).
  Manifest extra = sampleManifest();
  extra.shards[1].outputs = {"shard_1of2.attempt1.jsonl"};
  extra.shards[1].attempts = 0;
  EXPECT_THROW((void)Manifest::fromJson(extra.toJson()), std::runtime_error);
}

TEST(FleetManifest, LoadNamesThePathOnFailure) {
  try {
    (void)Manifest::load("/nonexistent/fleet_manifest.json");
    FAIL() << "expected load failure";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("fleet_manifest.json"),
              std::string::npos);
  }
}

// ------------------------------------------------------------ collector

const char* const kRowA =
    R"({"sweep": "s", "table": "cell", "graph": "path:n=8", "k": "4", "time": "11", "moves": "9"})";
const char* const kRowB =
    R"({"sweep": "s", "table": "cell", "graph": "path:n=8", "k": "6", "time": "15", "moves": "12"})";

TEST(Collector, DedupDropsIdenticalRowsAcrossAttempts) {
  const std::string dir = testDir("dedup");
  writeFile(dir + "/a1.jsonl", std::string(kRowA) + "\n");
  writeFile(dir + "/a2.jsonl", std::string(kRowA) + "\n" + kRowB + "\n");
  const MergeResult res = mergeJsonl({{dir + "/a1.jsonl", false},
                                      {dir + "/a2.jsonl", false}},
                                     DupPolicy::Dedup, dir + "/out.jsonl");
  EXPECT_TRUE(res.ok);
  EXPECT_EQ(res.rowsIn, 3u);
  EXPECT_EQ(res.rowsOut, 2u);
  EXPECT_EQ(res.dupsDropped, 1u);
  EXPECT_EQ(slurp(dir + "/out.jsonl"),
            std::string(kRowA) + "\n" + kRowB + "\n");
}

TEST(Collector, ErrorPolicyReportsOverlappingShards) {
  const std::string dir = testDir("overlap");
  writeFile(dir + "/s0.jsonl", std::string(kRowA) + "\n");
  writeFile(dir + "/s0b.jsonl", std::string(kRowA) + "\n");
  const MergeResult res = mergeJsonl({{dir + "/s0.jsonl", false},
                                      {dir + "/s0b.jsonl", false}},
                                     DupPolicy::Error, dir + "/out.jsonl");
  EXPECT_FALSE(res.ok);
  ASSERT_EQ(res.errors.size(), 1u);
  EXPECT_NE(res.errors[0].find("overlapping shards?"), std::string::npos);
  EXPECT_FALSE(fs::exists(dir + "/out.jsonl"));  // no output on failure
}

TEST(Collector, TelemetryColumnsAreExemptFromTheAudit) {
  const std::string dir = testDir("telemetry");
  // Same cell, different wall-clock telemetry: a legitimate rerun.
  writeFile(dir + "/a.jsonl",
            R"({"sweep": "s", "table": "cell", "graph": "er", "k": "4", "moves": "9", "ms": "12.5"})"
            "\n");
  writeFile(dir + "/b.jsonl",
            R"({"sweep": "s", "table": "cell", "graph": "er", "k": "4", "moves": "9", "ms": "99.9"})"
            "\n");
  const MergeResult res = mergeJsonl({{dir + "/a.jsonl", false},
                                      {dir + "/b.jsonl", false}},
                                     DupPolicy::Dedup, dir + "/out.jsonl");
  EXPECT_TRUE(res.ok);
  EXPECT_EQ(res.dupsDropped, 1u);
  EXPECT_TRUE(isTelemetryColumn("ms"));
  EXPECT_TRUE(isTelemetryColumn("peak_rss_mb"));
  EXPECT_FALSE(isTelemetryColumn("moves"));
  EXPECT_FALSE(isTelemetryColumn("time"));
}

TEST(Collector, FactDivergenceFailsLoudlyWithACellDiff) {
  const std::string dir = testDir("diverge");
  writeFile(dir + "/a.jsonl",
            R"({"sweep": "s", "table": "cell", "graph": "er", "k": "4", "moves": "9"})"
            "\n");
  writeFile(dir + "/b.jsonl",
            R"({"sweep": "s", "table": "cell", "graph": "er", "k": "4", "moves": "10"})"
            "\n");
  const MergeResult res = mergeJsonl({{dir + "/a.jsonl", false},
                                      {dir + "/b.jsonl", false}},
                                     DupPolicy::Dedup, dir + "/out.jsonl");
  EXPECT_FALSE(res.ok);
  ASSERT_EQ(res.divergences.size(), 1u);
  EXPECT_EQ(res.divergences[0].column, "moves");
  EXPECT_EQ(res.divergences[0].valueA, "9");
  EXPECT_EQ(res.divergences[0].valueB, "10");
  EXPECT_NE(res.divergences[0].identity.find("graph=er"), std::string::npos);
  EXPECT_NE(res.divergences[0].whereA.find("a.jsonl:1"), std::string::npos);
  EXPECT_FALSE(fs::exists(dir + "/out.jsonl"));
}

TEST(Collector, PartialTailToleranceIsOptInAndFinalLineOnly) {
  const std::string dir = testDir("tail");
  const std::string torn = std::string(kRowA) + "\n" + R"({"sweep": "s", "tab)";
  writeFile(dir + "/killed.jsonl", torn);
  // Without the flag a torn line is an error ...
  MergeResult strict = mergeJsonl({{dir + "/killed.jsonl", false}},
                                  DupPolicy::Dedup, dir + "/out.jsonl");
  EXPECT_FALSE(strict.ok);
  // ... with it, only the *final* line is forgiven.
  MergeResult lax = mergeJsonl({{dir + "/killed.jsonl", true}},
                               DupPolicy::Dedup, dir + "/out.jsonl");
  EXPECT_TRUE(lax.ok);
  EXPECT_EQ(lax.partialTails, 1u);
  EXPECT_EQ(lax.rowsOut, 1u);
  writeFile(dir + "/midtorn.jsonl",
            R"({"broken)" "\n" + std::string(kRowA) + "\n");
  MergeResult mid = mergeJsonl({{dir + "/midtorn.jsonl", true}},
                               DupPolicy::Dedup, dir + "/out.jsonl");
  EXPECT_FALSE(mid.ok);  // a torn line followed by data is real corruption
}

TEST(Collector, DiagnosticRowsCompareByFullContent) {
  const std::string dir = testDir("notes");
  // Fit/note rows carry only sweep/table coordinates: two different notes
  // must both survive, identical notes dedup.
  const std::string noteA = R"({"sweep": "s", "table": "fit", "slope": "1.9"})";
  const std::string noteB = R"({"sweep": "s", "table": "fit", "slope": "2.1"})";
  writeFile(dir + "/a.jsonl", noteA + "\n" + noteB + "\n");
  writeFile(dir + "/b.jsonl", noteA + "\n");
  const MergeResult res = mergeJsonl({{dir + "/a.jsonl", false},
                                      {dir + "/b.jsonl", false}},
                                     DupPolicy::Dedup, dir + "/out.jsonl");
  EXPECT_TRUE(res.ok);
  EXPECT_EQ(res.rowsOut, 2u);
  EXPECT_EQ(res.dupsDropped, 1u);
}

TEST(Collector, CountsDistinctCellRowsAcrossAttempts) {
  const std::string dir = testDir("count");
  writeFile(dir + "/a1.jsonl", std::string(kRowA) + "\n" + R"({"torn)");
  writeFile(dir + "/a2.jsonl", std::string(kRowA) + "\n" + kRowB + "\n" +
                                   R"({"sweep": "s", "table": "fit", "x": "1"})" "\n");
  // kRowA appears twice (distinct -> 1), the fit row is not a cell row, the
  // torn tail and a missing file count as zero.
  EXPECT_EQ(countDistinctCellRows({dir + "/a1.jsonl", dir + "/a2.jsonl",
                                   dir + "/absent.jsonl"}),
            2u);
}

// ------------------------------------------------------------ transport

TEST(Transport, ParsesLocalPools) {
  const auto t = makeTransport("local:4");
  EXPECT_EQ(t->slots(), 4u);
  EXPECT_EQ(t->describe(), "local:4");
  EXPECT_EQ(t->slotName(2), "local:2");
}

TEST(Transport, ParsesSshHostListsAsStub) {
  const auto t = makeTransport("ssh:alpha,beta");
  EXPECT_EQ(t->slots(), 2u);
  EXPECT_EQ(t->describe(), "ssh:alpha,beta");
  EXPECT_EQ(t->slotName(1), "ssh:beta");
  // The stub is honest: spawning throws instead of pretending.
  EXPECT_THROW((void)t->spawn({"disp_bench"}, "/dev/null", 0),
               std::runtime_error);
}

TEST(Transport, RejectsBadSpecs) {
  for (const char* bad :
       {"", "local", "local:", "local:0", "local:abc", "local:-2", "ssh:",
        "ssh:a,,b", "carrier-pigeon:coop"}) {
    EXPECT_THROW((void)makeTransport(bad), std::invalid_argument) << bad;
  }
}

// ----------------------------------------------------------- supervisor

TEST(Supervisor, RejectsInconsistentOptions) {
  FleetOptions opt;
  opt.sweeps = {"scenario"};
  opt.dir = testDir("badopts");
  opt.shardCount = 2;
  opt.shardCells = {4};  // wrong arity
  opt.totalCells = 4;
  EXPECT_THROW((void)runFleet(opt), std::invalid_argument);
}

#if defined(DISP_BENCH_BIN) && defined(DISP_FLEET_BIN)

// ------------------------------------------------- subprocess end-to-end
//
// A tiny but real campaign: the `scenario` sweep narrowed to 4 cells via
// axis overrides (1 graph x 2 ks x 1 placement x 2 algorithms), small
// enough for CI yet sharded 2-ways under local:2.

const char* const kAxes =
    " --graphs=path --ks=4,6 --placements=rooted --seeds=1,2";

int exitCode(const std::string& cmd) {
  const int status = std::system(cmd.c_str());
  if (status == -1) return -1;
  if (WIFEXITED(status)) return WEXITSTATUS(status);
  return 128 + (WIFSIGNALED(status) ? WTERMSIG(status) : 0);
}

/// Fact payloads (sorted key=value, telemetry stripped) of the
/// {"table": "cell"} rows in a JSONL file — the byte-identity the fleet
/// must preserve against an unsharded reference.
std::multiset<std::string> cellFacts(const std::string& path) {
  std::multiset<std::string> out;
  std::ifstream in(path);
  EXPECT_TRUE(in) << path;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const JsonValue row = JsonValue::parse(line);
    const JsonValue* table = row.find("table");
    if (table == nullptr || table->asString() != "cell") continue;
    std::vector<std::string> kvs;
    for (const auto& [key, value] : row.members()) {
      if (isTelemetryColumn(key)) continue;
      kvs.push_back(key + "=" + value.asString());
    }
    std::sort(kvs.begin(), kvs.end());
    std::string joined;
    for (const std::string& kv : kvs) joined += kv + "|";
    out.insert(joined);
  }
  return out;
}

/// Schema gate over fleet_events.jsonl: every line is JSON with seq/t_ms/
/// event, seq strictly increases, kinds are known, run_start opens and
/// run_done closes.
void checkEvents(const std::string& path, const std::string& wantOk) {
  const std::set<std::string> kKinds{
      "run_start", "resume",   "spawn", "exit",       "stall", "chaos_kill",
      "retry",     "poison",   "shard_done", "merge", "divergence", "run_done"};
  std::ifstream in(path);
  ASSERT_TRUE(in) << path;
  std::string line;
  std::uint64_t lastSeq = 0;
  std::string firstKind, lastKind, lastOkField;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const JsonValue row = JsonValue::parse(line);
    ASSERT_NE(row.find("seq"), nullptr) << line;
    ASSERT_NE(row.find("t_ms"), nullptr) << line;
    ASSERT_NE(row.find("event"), nullptr) << line;
    const std::uint64_t seq = std::stoull(row.find("seq")->asString());
    EXPECT_GT(seq, lastSeq) << "seq must be strictly monotonic: " << line;
    lastSeq = seq;
    const std::string kind = row.find("event")->asString();
    EXPECT_TRUE(kKinds.count(kind) > 0) << "unknown event kind: " << line;
    if (firstKind.empty()) firstKind = kind;
    lastKind = kind;
    if (kind == "run_done") lastOkField = row.find("ok")->asString();
  }
  EXPECT_EQ(firstKind, "run_start");
  EXPECT_EQ(lastKind, "run_done");
  EXPECT_EQ(lastOkField, wantOk);
}

std::string refJsonl() {
  static std::string path;
  if (!path.empty()) return path;
  const std::string dir = testDir("reference");
  path = dir + "/ref.jsonl";
  EXPECT_EQ(exitCode(std::string(DISP_BENCH_BIN) + " scenario" + kAxes +
                     " --jsonl=" + path + " --stream-cells > " + dir +
                     "/ref.out 2>&1"),
            0);
  return path;
}

TEST(FleetE2E, ListCellsEnumeratesTheCampaign) {
  const std::string dir = testDir("list");
  ASSERT_EQ(exitCode(std::string(DISP_BENCH_BIN) + " scenario" + kAxes +
                     " --list-cells > " + dir + "/cells.jsonl 2> " + dir +
                     "/err.txt"),
            0);
  std::ifstream in(dir + "/cells.jsonl");
  std::string line;
  std::size_t rows = 0;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const JsonValue row = JsonValue::parse(line);
    EXPECT_NE(row.find("sweep"), nullptr);
    EXPECT_NE(row.find("index"), nullptr);
    EXPECT_NE(row.find("graph"), nullptr);
    EXPECT_NE(row.find("k"), nullptr);
    EXPECT_NE(row.find("algo"), nullptr);
    ++rows;
  }
  EXPECT_EQ(rows, 4u);  // 1 graph x 2 ks x 1 placement x 1 sched x 2 algos
}

TEST(FleetE2E, EmptyShardExitsWithTheDistinctCode) {
  const std::string dir = testDir("empty_shard");
  // 4 cells under --shard=5/6: indices 0..3 mod 6 never hit 5.
  EXPECT_EQ(exitCode(std::string(DISP_BENCH_BIN) + " scenario" + kAxes +
                     " --shard=5/6 --jsonl=" + dir + "/s.jsonl > " + dir +
                     "/out.txt 2>&1"),
            exp::kEmptyShardExitCode);
}

TEST(FleetE2E, MalformedShardSpecsAreUsageErrors) {
  const std::string dir = testDir("bad_shard");
  for (const char* bad : {"01/4", "1/4/2", "4/4", "1/"}) {
    EXPECT_EQ(exitCode(std::string(DISP_BENCH_BIN) + " scenario" + kAxes +
                       " --shard=" + bad + " > " + dir + "/out.txt 2>&1"),
              2)
        << bad;
  }
  // Hand-rolled sweeps cannot shard: every shard would rerun them whole.
  EXPECT_EQ(exitCode(std::string(DISP_BENCH_BIN) +
                     " fig1_empty_selection --shard=0/2 > " + dir +
                     "/out.txt 2>&1"),
            2);
}

TEST(FleetE2E, FleetRunMatchesUnshardedReference) {
  const std::string dir = testDir("campaign");
  // chaos-kill-rows=1: the supervisor SIGKILLs the first worker whose
  // attempt file reaches one flushed row, then auto-retries it.
  ASSERT_EQ(exitCode(std::string(DISP_FLEET_BIN) + " run scenario" + kAxes +
                     " --fleet=local:2 --dir=" + dir +
                     " --chaos-kill-rows=1 --backoff=0.01"
                     " --poll-interval=0.005 --stall-timeout=120 > " +
                     dir + "/fleet.out 2>&1"),
            0)
      << slurp(dir + "/fleet.out");
  EXPECT_EQ(cellFacts(dir + "/" + kMergedFile), cellFacts(refJsonl()));
  checkEvents(dir + "/" + kEventsFile, "yes");
  const Manifest m = Manifest::load(dir + "/" + kManifestFile);
  EXPECT_EQ(m.shardCount, 2u);
  for (const ShardEntry& sh : m.shards) {
    EXPECT_EQ(sh.state, ShardState::Done);
    EXPECT_EQ(sh.cellsDone, sh.cells);
  }
}

TEST(FleetE2E, FreshRunRefusesAnExistingManifest) {
  const std::string dir = testDir("no_clobber");
  sampleManifest().save(dir + "/" + kManifestFile);
  EXPECT_EQ(exitCode(std::string(DISP_FLEET_BIN) + " run scenario" + kAxes +
                     " --fleet=local:2 --dir=" + dir + " > " + dir +
                     "/out.txt 2>&1"),
            2);
  EXPECT_NE(slurp(dir + "/out.txt").find("--resume"), std::string::npos);
}

TEST(FleetE2E, ResumeCompletesAKilledShard) {
  const std::string dir = testDir("resume");
  const std::string flags = std::string(" run scenario") + kAxes +
                            " --fleet=local:2 --dir=" + dir +
                            " --backoff=0.01 --poll-interval=0.005"
                            " --stall-timeout=120";
  ASSERT_EQ(exitCode(std::string(DISP_FLEET_BIN) + flags + " > " + dir +
                     "/run1.out 2>&1"),
            0)
      << slurp(dir + "/run1.out");
  const std::multiset<std::string> want = cellFacts(dir + "/" + kMergedFile);
  EXPECT_EQ(want, cellFacts(refJsonl()));

  // Simulate a worker SIGKILL'd mid-shard after one flushed row plus a torn
  // tail, with the coordinator dead before observing the exit: shard 0 is
  // still Running in the manifest and its attempt file is truncated.
  Manifest m = Manifest::load(dir + "/" + kManifestFile);
  ASSERT_EQ(m.shards[0].outputs.size(), 1u);
  const std::string attempt1 = dir + "/" + m.shards[0].outputs[0];
  std::ifstream in(attempt1);
  std::string firstRow;
  ASSERT_TRUE(std::getline(in, firstRow));
  in.close();
  writeFile(attempt1, firstRow + "\n" + R"({"sweep": "scenario", "tor)");
  m.shards[0].state = ShardState::Running;
  m.save(dir + "/" + kManifestFile);
  fs::remove(dir + "/" + kMergedFile);

  ASSERT_EQ(exitCode(std::string(DISP_FLEET_BIN) + flags + " --resume > " +
                     dir + "/run2.out 2>&1"),
            0)
      << slurp(dir + "/run2.out");
  // Facts byte-identical to the unsharded reference; shard 0 relaunched
  // once (attempt 2), shard 1 untouched.
  EXPECT_EQ(cellFacts(dir + "/" + kMergedFile), want);
  const Manifest after = Manifest::load(dir + "/" + kManifestFile);
  EXPECT_EQ(after.shards[0].attempts, 2u);
  EXPECT_EQ(after.shards[0].outputs.size(), 2u);
  EXPECT_EQ(after.shards[1].attempts, 1u);
  checkEvents(dir + "/" + kEventsFile, "yes");
}

TEST(FleetE2E, PoisonsPersistentFailuresAndResumeRecovers) {
  const std::string dir = testDir("poison");
  const std::string common = std::string(" run scenario") + kAxes +
                             " --fleet=local:2 --dir=" + dir +
                             " --max-attempts=2 --backoff=0.01"
                             " --poll-interval=0.005 --stall-timeout=120";
  // /bin/false as the worker: every attempt fails, both shards poison.
  ASSERT_EQ(exitCode(std::string(DISP_FLEET_BIN) + common +
                     " --bench=/bin/false > " + dir + "/run1.out 2>&1"),
            1)
      << slurp(dir + "/run1.out");
  const Manifest poisoned = Manifest::load(dir + "/" + kManifestFile);
  for (const ShardEntry& sh : poisoned.shards) {
    EXPECT_EQ(sh.state, ShardState::Failed);
    EXPECT_EQ(sh.attempts, 2u);  // maxAttempts failures burned
  }
  checkEvents(dir + "/" + kEventsFile, "no");
  EXPECT_FALSE(fs::exists(dir + "/" + kMergedFile));

  // --resume with a working bench grants a fresh attempt budget and
  // completes the campaign.
  ASSERT_EQ(exitCode(std::string(DISP_FLEET_BIN) + common + " --resume > " +
                     dir + "/run2.out 2>&1"),
            0)
      << slurp(dir + "/run2.out");
  EXPECT_EQ(cellFacts(dir + "/" + kMergedFile), cellFacts(refJsonl()));
  checkEvents(dir + "/" + kEventsFile, "yes");
}

TEST(FleetE2E, MergeCliAuditsDivergence) {
  const std::string dir = testDir("merge_cli");
  writeFile(dir + "/a.jsonl",
            R"({"sweep": "s", "table": "cell", "graph": "er", "k": "4", "moves": "9"})"
            "\n");
  writeFile(dir + "/b.jsonl",
            R"({"sweep": "s", "table": "cell", "graph": "er", "k": "4", "moves": "10"})"
            "\n");
  EXPECT_EQ(exitCode(std::string(DISP_FLEET_BIN) + " merge --out=" + dir +
                     "/out.jsonl " + dir + "/a.jsonl " + dir +
                     "/b.jsonl > " + dir + "/out.txt 2> " + dir + "/err.txt"),
            1);
  EXPECT_NE(slurp(dir + "/err.txt").find("DIVERGENCE"), std::string::npos);
  // Clean inputs merge and report the row count.
  writeFile(dir + "/b.jsonl", std::string(kRowB) + "\n");
  EXPECT_EQ(exitCode(std::string(DISP_FLEET_BIN) + " merge --out=" + dir +
                     "/out.jsonl " + dir + "/a.jsonl " + dir +
                     "/b.jsonl > " + dir + "/out.txt 2>&1"),
            0);
  EXPECT_NE(slurp(dir + "/out.txt").find("merged 2 rows"), std::string::npos);
}

TEST(FleetE2E, RunRejectsCoordinatorOwnedFlags) {
  const std::string dir = testDir("forbidden");
  EXPECT_EQ(exitCode(std::string(DISP_FLEET_BIN) + " run scenario" + kAxes +
                     " --dir=" + dir + " --trace=t.jsonl > " + dir +
                     "/out.txt 2>&1"),
            2);
  EXPECT_NE(slurp(dir + "/out.txt").find("coordinator-owned"),
            std::string::npos);
}

#endif  // DISP_BENCH_BIN && DISP_FLEET_BIN

}  // namespace
}  // namespace disp::fleet
