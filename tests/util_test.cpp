// Tests for the utility layer: RNG determinism/uniformity, statistics,
// table rendering, CLI parsing.
#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <set>
#include <sstream>

#include "util/check.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace disp {
namespace {

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (a() == b());
  EXPECT_LT(equal, 3);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.below(17), 17u);
  }
}

TEST(Rng, BelowIsRoughlyUniform) {
  Rng rng(9);
  std::array<int, 8> hist{};
  constexpr int kDraws = 80000;
  for (int i = 0; i < kDraws; ++i) ++hist[rng.below(8)];
  for (const int h : hist) {
    EXPECT_NEAR(h, kDraws / 8, kDraws / 8 * 0.1);
  }
}

TEST(Rng, BelowRejectsZero) { EXPECT_THROW((void)Rng(1).below(0), std::invalid_argument); }

TEST(Rng, IntInCoversBounds) {
  Rng rng(11);
  bool sawLo = false, sawHi = false;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.intIn(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    sawLo |= (v == -3);
    sawHi |= (v == 3);
  }
  EXPECT_TRUE(sawLo);
  EXPECT_TRUE(sawHi);
}

TEST(Rng, Real01InUnitInterval) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.real01();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, PermutationIsPermutation) {
  Rng rng(17);
  const auto p = rng.permutation(100);
  std::set<std::uint32_t> seen(p.begin(), p.end());
  EXPECT_EQ(seen.size(), 100u);
  EXPECT_EQ(*seen.begin(), 0u);
  EXPECT_EQ(*seen.rbegin(), 99u);
}

TEST(Rng, ShuffleKeepsMultiset) {
  Rng rng(19);
  std::vector<int> v{1, 2, 2, 3, 3, 3};
  auto w = v;
  rng.shuffle(w);
  std::sort(w.begin(), w.end());
  EXPECT_EQ(v, w);
}

TEST(Rng, ForkIsIndependent) {
  Rng a(23);
  Rng b = a.fork();
  EXPECT_NE(a(), b());
}

TEST(Stats, SummaryBasics) {
  const std::vector<double> xs{1, 2, 3, 4, 5};
  const Summary s = summarize(xs);
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_NEAR(s.stddev, std::sqrt(2.5), 1e-12);
}

TEST(Stats, SummaryEvenCountMedian) {
  const std::vector<double> xs{1, 2, 3, 10};
  EXPECT_DOUBLE_EQ(summarize(xs).median, 2.5);
}

TEST(Stats, SummaryEmpty) {
  const Summary s = summarize({});
  EXPECT_EQ(s.count, 0u);
}

TEST(Stats, LinearFitExact) {
  const std::vector<double> x{1, 2, 3, 4};
  const std::vector<double> y{5, 7, 9, 11};  // y = 3 + 2x
  const LinearFit f = fitLinear(x, y);
  EXPECT_NEAR(f.slope, 2.0, 1e-12);
  EXPECT_NEAR(f.intercept, 3.0, 1e-12);
  EXPECT_NEAR(f.r2, 1.0, 1e-12);
}

TEST(Stats, PowerFitRecoversExponent) {
  std::vector<double> x, y;
  for (double k = 16; k <= 4096; k *= 2) {
    x.push_back(k);
    y.push_back(7.5 * std::pow(k, 1.5));
  }
  const PowerFit f = fitPower(x, y);
  EXPECT_NEAR(f.exponent, 1.5, 1e-9);
  EXPECT_NEAR(f.coeff, 7.5, 1e-6);
}

TEST(Stats, DiagnoseGrowthLinearSeries) {
  std::vector<double> k, y;
  for (double kk = 64; kk <= 2048; kk *= 2) {
    k.push_back(kk);
    y.push_back(12.0 * kk);
  }
  const auto d = diagnoseGrowth(k, y);
  EXPECT_NEAR(d.power.exponent, 1.0, 1e-9);
  EXPECT_NEAR(d.ratioLinearSmall, d.ratioLinearLarge, 1e-9);
  // A linear series has a *decreasing* k·log k ratio.
  EXPECT_GT(d.ratioKLogKSmall, d.ratioKLogKLarge);
}

TEST(Table, MarkdownShape) {
  Table t({"a", "bb"});
  t.row().cell("x").cell(std::uint64_t{12});
  t.row().cell(3.14159, 2).cell("y");
  const std::string md = t.markdown();
  EXPECT_NE(md.find("| a "), std::string::npos);
  EXPECT_NE(md.find("3.14"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
  // header + separator + 2 rows
  EXPECT_EQ(std::count(md.begin(), md.end(), '\n'), 4);
}

TEST(Table, CsvShape) {
  Table t({"a", "b"});
  t.row().cell("1").cell("2");
  EXPECT_EQ(t.csv(), "a,b\n1,2\n");
}

TEST(Table, TooManyCellsThrows) {
  Table t({"only"});
  t.row().cell("ok");
  EXPECT_THROW(t.cell("overflow"), std::invalid_argument);
}

TEST(Cli, ParsesFlagsAndPositionals) {
  const char* argv[] = {"prog", "--k=128", "--verbose", "input.g", "--ratio=0.5"};
  const Cli cli(5, argv);
  EXPECT_EQ(cli.integer("k", 0), 128);
  EXPECT_TRUE(cli.has("verbose"));
  EXPECT_FALSE(cli.has("quiet"));
  EXPECT_DOUBLE_EQ(cli.real("ratio", 0.0), 0.5);
  EXPECT_EQ(cli.str("missing", "dflt"), "dflt");
  ASSERT_EQ(cli.positional().size(), 1u);
  EXPECT_EQ(cli.positional()[0], "input.g");
}

TEST(Cli, ParsesLists) {
  const char* argv[] = {"prog", "--names=a,b,,c", "--seeds=1,2,3"};
  const Cli cli(3, argv);
  EXPECT_EQ(cli.list("names"), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(cli.u64list("seeds"), (std::vector<std::uint64_t>{1, 2, 3}));
  EXPECT_TRUE(cli.u64list("missing").empty());
}

TEST(Cli, U64ListRejectsNonNumbers) {
  const char* argv[] = {"prog", "--a=1,x", "--b=-1", "--c=1.5", "--d=+2"};
  const Cli cli(5, argv);
  EXPECT_THROW((void)cli.u64list("a"), std::invalid_argument);
  EXPECT_THROW((void)cli.u64list("b"), std::invalid_argument);  // no sign wrap
  EXPECT_THROW((void)cli.u64list("c"), std::invalid_argument);
  EXPECT_THROW((void)cli.u64list("d"), std::invalid_argument);
}

TEST(Cli, IntegerIsStrict) {
  const char* argv[] = {"prog", "--a=4x",  "--b= 4", "--c=+4",
                        "--d=-12", "--e=0x10", "--f="};
  const Cli cli(7, argv);
  EXPECT_THROW((void)cli.integer("a", 0), std::invalid_argument);
  EXPECT_THROW((void)cli.integer("b", 0), std::invalid_argument);
  EXPECT_THROW((void)cli.integer("c", 0), std::invalid_argument);
  EXPECT_EQ(cli.integer("d", 0), -12);
  EXPECT_THROW((void)cli.integer("e", 0), std::invalid_argument);  // no hex
  EXPECT_THROW((void)cli.integer("f", 0), std::invalid_argument);
  EXPECT_EQ(cli.integer("missing", 7), 7);
}

TEST(Cli, IntegerErrorNamesTheFlag) {
  const char* argv[] = {"prog", "--threads=4x"};
  const Cli cli(2, argv);
  try {
    (void)cli.integer("threads", 0);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("--threads"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("4x"), std::string::npos);
  }
}

TEST(Cli, RealIsStrict) {
  const char* argv[] = {"prog",     "--a=0.5x", "--b=1e3", "--c=.5",
                        "--d=-0.25", "--e=nan",  "--f=inf", "--g= 1"};
  const Cli cli(8, argv);
  EXPECT_THROW((void)cli.real("a", 0.0), std::invalid_argument);
  EXPECT_DOUBLE_EQ(cli.real("b", 0.0), 1000.0);
  EXPECT_DOUBLE_EQ(cli.real("c", 0.0), 0.5);
  EXPECT_DOUBLE_EQ(cli.real("d", 0.0), -0.25);
  EXPECT_THROW((void)cli.real("e", 0.0), std::invalid_argument);
  EXPECT_THROW((void)cli.real("f", 0.0), std::invalid_argument);
  EXPECT_THROW((void)cli.real("g", 0.0), std::invalid_argument);
  EXPECT_DOUBLE_EQ(cli.real("missing", 2.5), 2.5);
}

TEST(Cli, RejectsEmptyFlagNames) {
  const char* bare[] = {"prog", "--"};
  EXPECT_THROW(Cli(2, bare), std::invalid_argument);
  const char* keyless[] = {"prog", "--=value"};
  EXPECT_THROW(Cli(2, keyless), std::invalid_argument);
  // Plain positionals (and single dashes) are still fine.
  const char* ok[] = {"prog", "-", "input.g"};
  EXPECT_EQ(Cli(3, ok).positional().size(), 2u);
}

TEST(Cli, ParseU64IsStrict) {
  EXPECT_EQ(parseU64("42", "x"), 42u);
  EXPECT_THROW((void)parseU64("", "x"), std::invalid_argument);
  EXPECT_THROW((void)parseU64(" 1", "x"), std::invalid_argument);
  EXPECT_THROW((void)parseU64("99999999999999999999999", "x"),
               std::invalid_argument);  // out of range
}

TEST(Check, RequireThrowsInvalidArgument) {
  EXPECT_THROW(DISP_REQUIRE(false, "boom"), std::invalid_argument);
}

TEST(Check, CheckThrowsLogicError) {
  EXPECT_THROW(DISP_CHECK(false, "boom"), std::logic_error);
}

}  // namespace
}  // namespace disp
