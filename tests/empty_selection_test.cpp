// Tests for Algorithm 1 (Empty_Node_Selection) and the cover assignment:
// Lemma 1 (≥ ⌈k/3⌉ empty), Lemma 2 (trips ≤ 6 rounds), Lemma 3 (cover
// shape), on hand-built trees, DFS trees of graph families, and random
// trees (property sweep).
#include <gtest/gtest.h>

#include "algo/empty_selection.hpp"
#include "graph/generators.hpp"
#include "graph/spec.hpp"
#include "graph/graph_algos.hpp"
#include "util/rng.hpp"

namespace disp {
namespace {

RootedTree lineTree(std::uint32_t n) {
  std::vector<std::int64_t> parent(n);
  parent[0] = -1;
  for (std::uint32_t v = 1; v < n; ++v) parent[v] = v - 1;
  return RootedTree::fromParentArray(parent, 0);
}

RootedTree starTree(std::uint32_t n) {
  std::vector<std::int64_t> parent(n, 0);
  parent[0] = -1;
  return RootedTree::fromParentArray(parent, 0);
}

RootedTree randomTree(std::uint32_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::int64_t> parent(n);
  parent[0] = -1;
  for (std::uint32_t v = 1; v < n; ++v)
    parent[v] = static_cast<std::int64_t>(rng.below(v));
  return RootedTree::fromParentArray(parent, 0);
}

TEST(RootedTree, FromParentArrayBasics) {
  const RootedTree t = lineTree(5);
  EXPECT_EQ(t.size(), 5u);
  EXPECT_EQ(t.depth[4], 4u);
  EXPECT_TRUE(t.isLeaf(4));
  EXPECT_FALSE(t.isLeaf(0));
}

TEST(RootedTree, RejectsForest) {
  std::vector<std::int64_t> parent{-1, 0, 1, 3};  // node 3 points to itself's area
  parent[3] = 3;
  EXPECT_THROW((void)RootedTree::fromParentArray(parent, 0), std::invalid_argument);
}

TEST(EmptySelection, LineK3) {
  const auto sel = emptyNodeSelection(lineTree(3));
  validateSelection(lineTree(3), sel);
  EXPECT_EQ(sel.emptyCount(), 1u);  // middle node empty
  EXPECT_TRUE(sel.occupied[0]);
  EXPECT_FALSE(sel.occupied[1]);
  EXPECT_TRUE(sel.occupied[2]);
}

TEST(EmptySelection, LineHalfEmpty) {
  // On a line, exactly the odd-depth nodes are empty: ⌊k/2⌋ of them.
  for (std::uint32_t k : {4u, 7u, 16u, 31u}) {
    const RootedTree t = lineTree(k);
    const auto sel = emptyNodeSelection(t);
    validateSelection(t, sel);
    EXPECT_EQ(sel.emptyCount(), k / 2) << "k=" << k;
  }
}

TEST(EmptySelection, StarSettlesEveryThird) {
  // Star rooted at the hub: hub settled, children 4,7,... settled; hub
  // covers 1..3; anchors cover pairs.
  const RootedTree t = starTree(11);  // hub + 10 leaves
  const auto sel = emptyNodeSelection(t);
  validateSelection(t, sel);
  EXPECT_TRUE(sel.occupied[0]);
  // occupied leaves: j=3,6,9 (0-based) -> 3 of them.
  EXPECT_EQ(sel.occupiedCount(), 4u);
  EXPECT_EQ(sel.coverType[0], CoverType::Children);
  EXPECT_EQ(sel.covers[0].size(), 3u);
}

TEST(EmptySelection, Lemma1OnManyRandomTrees) {
  for (std::uint64_t seed = 0; seed < 60; ++seed) {
    const std::uint32_t k = 3 + static_cast<std::uint32_t>(seed * 7 % 200);
    const RootedTree t = randomTree(k, seed * 1337 + 1);
    const auto sel = emptyNodeSelection(t);
    validateSelection(t, sel);  // includes the ceil(k/3) bound
    EXPECT_LE(sel.occupiedCount(), (2 * k) / 3 + 1) << "seed " << seed;
  }
}

TEST(EmptySelection, RootAlwaysOccupied) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const RootedTree t = randomTree(50, seed);
    EXPECT_TRUE(emptyNodeSelection(t).occupied[t.root]);
  }
}

TEST(EmptySelection, CoverTypesNeverMix) {
  // validateSelection throws if a settler covers both children and
  // siblings; run a heavy sweep to exercise many shapes.
  for (std::uint64_t seed = 100; seed < 160; ++seed) {
    const RootedTree t = randomTree(120, seed);
    EXPECT_NO_THROW(validateSelection(t, emptyNodeSelection(t)));
  }
}

TEST(EmptySelection, DfsTreesOfFamilies) {
  for (const auto& family : graphFamilyKeys()) {
    const Graph g = makeGraph(family, 60, 9);
    const auto parentNodes = portOrderDfsTree(g, 0);
    std::vector<std::int64_t> parent(parentNodes.size());
    for (std::size_t v = 0; v < parentNodes.size(); ++v)
      parent[v] = (static_cast<NodeId>(v) == parentNodes[v])
                      ? -1
                      : static_cast<std::int64_t>(parentNodes[v]);
    const RootedTree t = RootedTree::fromParentArray(parent, 0);
    const auto sel = emptyNodeSelection(t);
    EXPECT_NO_THROW(validateSelection(t, sel)) << family;
  }
}

TEST(EmptySelection, TripRoundsFormula) {
  EXPECT_EQ(oscillationTripRounds(CoverType::None, 0), 0u);
  EXPECT_EQ(oscillationTripRounds(CoverType::Children, 1), 2u);
  EXPECT_EQ(oscillationTripRounds(CoverType::Children, 3), 6u);
  EXPECT_EQ(oscillationTripRounds(CoverType::Siblings, 1), 4u);
  EXPECT_EQ(oscillationTripRounds(CoverType::Siblings, 2), 6u);
}

// Property sweep: the fraction of empty nodes converges to >= 1/3 across
// tree shapes and sizes.
class SelectionSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(SelectionSweep, EmptyFractionAtLeastThird) {
  const std::uint32_t k = GetParam();
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    const RootedTree t = randomTree(k, seed * 31 + k);
    const auto sel = emptyNodeSelection(t);
    EXPECT_GE(sel.emptyCount() * 3 + 2, k) << "k=" << k << " seed=" << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, SelectionSweep,
                         ::testing::Values(3u, 5u, 9u, 17u, 33u, 65u, 129u, 257u,
                                           513u, 1025u));

}  // namespace
}  // namespace disp
