// Tests for the simulation core: world moves/pin semantics, SYNC rounds and
// fiber scheduling, ASYNC activations and the epoch counter, schedulers,
// memory ledger, placements.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "algo/placement.hpp"
#include "core/async_engine.hpp"
#include "core/fiber.hpp"
#include "core/memory.hpp"
#include "core/metrics.hpp"
#include "core/scheduler.hpp"
#include "core/sync_engine.hpp"
#include "graph/generators.hpp"
#include "graph/graph_algos.hpp"
#include "graph/spec.hpp"
#include "util/rng.hpp"

namespace disp {
namespace {

std::vector<AgentId> seqIds(std::uint32_t k) {
  std::vector<AgentId> ids(k);
  for (std::uint32_t i = 0; i < k; ++i) ids[i] = i + 1;
  return ids;
}

// ------------------------------------------------------------------ world

TEST(World, RejectsBadConstruction) {
  const Graph g = makePath(3).build();
  EXPECT_THROW(World(g, {}, {}), std::invalid_argument);                 // no agents
  EXPECT_THROW(World(g, {0, 1}, {1}), std::invalid_argument);           // size mismatch
  EXPECT_THROW(World(g, {0, 0, 0, 0}, seqIds(4)), std::invalid_argument);  // k > n
  EXPECT_THROW(World(g, {0, 1}, {5, 5}), std::invalid_argument);        // dup ids
  EXPECT_THROW(World(g, {7, 0}, seqIds(2)), std::invalid_argument);     // bad node
}

TEST(World, MoveUpdatesPinAndOccupancy) {
  const Graph g = makePath(3).build();
  World w(g, {0, 0}, seqIds(2));
  EXPECT_EQ(w.pinOf(0), kNoPort);
  w.applyMove(0, 1);  // 0 -> 1
  EXPECT_EQ(w.positionOf(0), 1u);
  EXPECT_EQ(w.pinOf(0), g.reversePort(0, 1));
  EXPECT_EQ(w.agentsAt(0).size(), 1u);
  EXPECT_EQ(w.agentsAt(1).size(), 1u);
  EXPECT_EQ(w.totalMoves(), 1u);
  // Return trip restores co-location.
  w.applyMove(0, w.pinOf(0));
  EXPECT_EQ(w.positionOf(0), 0u);
  EXPECT_EQ(w.agentsAt(0).size(), 2u);
}

TEST(World, RejectsInvalidPort) {
  const Graph g = makePath(3).build();
  World w(g, {0}, seqIds(1));
  EXPECT_THROW(w.applyMove(0, 0), std::invalid_argument);
  EXPECT_THROW(w.applyMove(0, 2), std::invalid_argument);  // endpoint has degree 1
}

// ------------------------------------------------------------ sync engine

// A fiber that walks one agent to the end of a path, one edge per round.
Task walkRight(SyncEngine& e, AgentIx a, std::uint32_t steps) {
  for (std::uint32_t i = 0; i < steps; ++i) {
    const NodeId at = e.positionOf(a);
    // On a path built in insertion order, the "right" port is 2 internally,
    // 1 at the left endpoint.
    const Port p = (at == 0) ? 1 : 2;
    e.stageMove(a, p);
    co_await e.nextRound();
  }
}

TEST(SyncEngine, MovesCommitPerRound) {
  const Graph g = makePath(6).build();
  SyncEngine e(g, {0}, seqIds(1));
  e.addFiber(walkRight(e, 0, 5));
  e.run(100);
  EXPECT_EQ(e.positionOf(0), 5u);
  EXPECT_EQ(e.round(), 5u);
  EXPECT_EQ(e.totalMoves(), 5u);
}

Task meetInMiddle(SyncEngine& e, AgentIx left, AgentIx right, bool& met) {
  // left starts at 0, right at 2 on a path of 3; they swap toward node 1.
  e.stageMove(left, 1);
  e.stageMove(right, 1);
  co_await e.nextRound();
  met = e.agentsAt(1).size() == 2;
}

TEST(SyncEngine, SimultaneousMovesMeet) {
  const Graph g = makePath(3).build();
  SyncEngine e(g, {0, 2}, seqIds(2));
  bool met = false;
  e.addFiber(meetInMiddle(e, 0, 1, met));
  e.run(10);
  EXPECT_TRUE(met);
}

Task doubleStage(SyncEngine& e, AgentIx a) {
  e.stageMove(a, 1);
  e.stageMove(a, 1);  // must throw
  co_await e.nextRound();
}

TEST(SyncEngine, DoubleStageIsRejected) {
  const Graph g = makePath(3).build();
  SyncEngine e(g, {1}, seqIds(1));
  e.addFiber(doubleStage(e, 0));
  EXPECT_THROW(e.run(10), std::logic_error);
}

Task idleForever(SyncEngine& e) {
  for (;;) co_await e.nextRound();
}

TEST(SyncEngine, RoundLimitGuardsDeadlock) {
  const Graph g = makePath(3).build();
  SyncEngine e(g, {0}, seqIds(1));
  e.addFiber(idleForever(e));
  EXPECT_THROW(e.run(50), std::runtime_error);
}

Task nestedInner(SyncEngine& e, int& log) {
  log = log * 10 + 2;
  co_await e.nextRound();
  log = log * 10 + 3;
}

Task nestedOuter(SyncEngine& e, int& log) {
  log = log * 10 + 1;
  co_await nestedInner(e, log);
  log = log * 10 + 4;
  co_await e.nextRound();
  log = log * 10 + 5;
}

TEST(SyncEngine, NestedTasksInterleaveWithRounds) {
  const Graph g = makePath(3).build();
  SyncEngine e(g, {0}, seqIds(1));
  int log = 0;
  e.addFiber(nestedOuter(e, log));
  e.run(10);
  EXPECT_EQ(log, 12345);
  EXPECT_EQ(e.round(), 2u);  // two awaited rounds
}

Task throwingFiber(SyncEngine& e) {
  co_await e.nextRound();
  throw std::runtime_error("protocol bug");
}

TEST(SyncEngine, FiberExceptionsPropagate) {
  const Graph g = makePath(3).build();
  SyncEngine e(g, {0}, seqIds(1));
  e.addFiber(throwingFiber(e));
  EXPECT_THROW(e.run(10), std::runtime_error);
}

Task twoFiberPing(SyncEngine& e, AgentIx a, std::uint32_t rounds) {
  for (std::uint32_t i = 0; i < rounds; ++i) {
    const NodeId at = e.positionOf(a);
    const Port out = (at == 0) ? 1 : e.pinOf(a);
    e.stageMove(a, out);
    co_await e.nextRound();
  }
}

TEST(SyncEngine, MultipleFibersAdvanceInLockstep) {
  const Graph g = makeStar(5).build();
  SyncEngine e(g, {0, 0}, seqIds(2));
  e.addFiber(twoFiberPing(e, 0, 4));
  e.addFiber(twoFiberPing(e, 1, 6));
  e.run(20);
  // Both walked an even number of hops from the hub: back at the hub.
  EXPECT_EQ(e.positionOf(0), 0u);
  EXPECT_EQ(e.positionOf(1), 0u);
  EXPECT_EQ(e.round(), 6u);
}

TEST(SyncEngine, RoundHookRunsEveryRound) {
  const Graph g = makePath(4).build();
  SyncEngine e(g, {0}, seqIds(1));
  int hookCount = 0;
  e.addRoundHook([&] { ++hookCount; });
  e.addFiber(walkRight(e, 0, 3));
  e.run(10);
  EXPECT_EQ(hookCount, 3);
}

// ----------------------------------------------------------- async engine

// Agent program: walk right `steps` edges, one per activation, then stop.
Task asyncWalk(AsyncEngine& e, AgentIx a, std::uint32_t steps, bool leader) {
  for (std::uint32_t i = 0; i < steps; ++i) {
    co_await e.nextActivation(a);
    const NodeId at = e.positionOf(a);
    e.move(a, at == 0 ? 1 : 2);
  }
  if (leader) e.finish();
  for (;;) co_await e.nextActivation(a);
}

TEST(AsyncEngine, RoundRobinEpochsMatchSweeps) {
  const Graph g = makePath(8).build();
  AsyncEngine e(g, {0, 0}, seqIds(2), makeRoundRobinScheduler(2));
  e.setAgentFiber(0, asyncWalk(e, 0, 6, false));
  e.setAgentFiber(1, asyncWalk(e, 1, 6, true));
  e.run(10000);
  EXPECT_EQ(e.positionOf(0), 6u);
  EXPECT_EQ(e.positionOf(1), 6u);
  // Under round-robin, each sweep of k activations is exactly one epoch.
  EXPECT_EQ(e.epochs(), 6u);
}

TEST(AsyncEngine, EpochCountsUnderAllSchedulers) {
  for (const auto& name : knownSchedulers()) {
    const Graph g = makePath(12).build();
    AsyncEngine e(g, {0, 0, 0}, seqIds(3), makeSchedulerByName(name, 3, 99));
    e.setAgentFiber(0, asyncWalk(e, 0, 10, false));
    e.setAgentFiber(1, asyncWalk(e, 1, 10, false));
    e.setAgentFiber(2, asyncWalk(e, 2, 10, true));
    e.run(1000000);
    EXPECT_EQ(e.positionOf(2), 10u) << name;
    // Epochs track the *slowest* agent: an agent may complete many cycles
    // inside one epoch, so the only universal bounds are these.
    EXPECT_GE(e.epochs(), 1u) << name;
    EXPECT_LE(e.epochs(), e.activations() / 3 + 1) << name;
    EXPECT_GT(e.activations(), 0u) << name;
  }
}

Task moveTwicePerActivation(AsyncEngine& e, AgentIx a) {
  co_await e.nextActivation(a);
  e.move(a, 1);
  e.move(a, 1);  // must throw: one move per CCM cycle
}

TEST(AsyncEngine, SecondMoveInOneActivationRejected) {
  const Graph g = makePath(4).build();
  AsyncEngine e(g, {0}, seqIds(1), makeRoundRobinScheduler(1));
  e.setAgentFiber(0, moveTwicePerActivation(e, 0));
  EXPECT_THROW(e.run(100), std::logic_error);
}

TEST(AsyncEngine, ActivationCapGuardsNonTermination) {
  const Graph g = makePath(4).build();
  AsyncEngine e(g, {0}, seqIds(1), makeRoundRobinScheduler(1));
  e.setAgentFiber(0, asyncWalk(e, 0, 2, false));  // never calls finish()
  EXPECT_THROW(e.run(500), std::runtime_error);
}

// ------------------------------------------------------------- schedulers

TEST(Scheduler, AllAreFairOverLongRuns) {
  constexpr std::uint32_t k = 5;
  for (const auto& name : knownSchedulers()) {
    auto s = makeSchedulerByName(name, k, 7);
    std::map<std::uint32_t, int> hist;
    for (int i = 0; i < 20000; ++i) ++hist[s->next()];
    EXPECT_EQ(hist.size(), k) << name << " starved an agent";
    for (const auto& [agent, count] : hist) {
      EXPECT_GT(count, 100) << name << " agent " << agent;
    }
  }
}

TEST(Scheduler, WeightedSkewsRatios) {
  auto s = makeWeightedScheduler(4, {0}, 10, 13);
  std::map<std::uint32_t, int> hist;
  for (int i = 0; i < 40000; ++i) ++hist[s->next()];
  // Agent 0 should be activated ~10x less often than others.
  EXPECT_LT(hist[0] * 5, hist[1]);
}

TEST(Scheduler, UnknownNameThrows) {
  EXPECT_THROW((void)makeSchedulerByName("bogus", 3, 1), std::invalid_argument);
}

// ------------------------------------------------------------- memory

TEST(Memory, BitsForWidths) {
  EXPECT_EQ(bitsFor(0), 1u);
  EXPECT_EQ(bitsFor(1), 1u);
  EXPECT_EQ(bitsFor(7), 3u);
  EXPECT_EQ(bitsFor(8), 4u);
}

TEST(Memory, LedgerTracksHighWater) {
  MemoryLedger ledger(3);
  ledger.record(0, 10);
  ledger.record(1, 25);
  ledger.record(0, 5);  // lower than before; high water stays
  EXPECT_EQ(ledger.maxBits(), 25u);
  EXPECT_EQ(ledger.bitsOf(0), 10u);
}

TEST(Memory, WidthsForRun) {
  const auto w = BitWidths::forRun(/*maxId=*/4096, /*maxDegree=*/100, /*k=*/1024);
  EXPECT_EQ(w.id, 13u);
  EXPECT_EQ(w.port, 7u);   // values 0..101
  EXPECT_EQ(w.count, 11u);  // values 0..1024
}

// ------------------------------------------------------------- metrics

TEST(Metrics, IsDispersedDetectsCollisions) {
  EXPECT_TRUE(isDispersed({0, 1, 2}));
  EXPECT_FALSE(isDispersed({0, 1, 0}));
  EXPECT_TRUE(isDispersed({5}));
}

// ------------------------------------------------------------ placements

TEST(Placement, RootedAllOnRoot) {
  const Graph g = makePath(10).build();
  const auto p = rootedPlacement(g, 6, 3, 42);
  EXPECT_EQ(p.positions.size(), 6u);
  for (const NodeId v : p.positions) EXPECT_EQ(v, 3u);
  std::set<AgentId> ids(p.ids.begin(), p.ids.end());
  EXPECT_EQ(ids.size(), 6u);
  for (const AgentId id : ids) {
    EXPECT_GE(id, 1u);
    EXPECT_LE(id, 24u);
  }
}

TEST(Placement, ClusteredUsesExactlyLClusters) {
  const Graph g = makeGraph("er", 40, 11);
  const auto p = clusteredPlacement(g, 20, 4, 17);
  std::set<NodeId> nodes(p.positions.begin(), p.positions.end());
  EXPECT_EQ(nodes.size(), 4u);
}

TEST(Placement, ScatteredIsDispersed) {
  const Graph g = makeGraph("er", 50, 19);
  const auto p = scatteredPlacement(g, 30, 21);
  EXPECT_TRUE(isDispersed(p.positions));
}

TEST(Placement, RejectsBadParameters) {
  const Graph g = makePath(5).build();
  EXPECT_THROW((void)rootedPlacement(g, 9, 0, 1), std::invalid_argument);   // k > n
  EXPECT_THROW((void)clusteredPlacement(g, 3, 9, 1), std::invalid_argument);  // l > k
}

// ---------------------------------------------------------- placement spec

TEST(PlacementSpec, ParsePrintRoundTrip) {
  // Canonical strings are fixpoints; defaults are elided.
  for (const std::string canon :
       {"rooted", "rooted:root=5", "clusters:l=8", "spread", "adversarial:far",
        "adversarial:far,l=4", "adversarial:frontier", "adversarial:frontier,l=4",
        "adversarial:hot"}) {
    EXPECT_EQ(PlacementSpec::parse(canon).toString(), canon);
  }
  EXPECT_EQ(PlacementSpec::parse("rooted:root=0").toString(), "rooted");
  EXPECT_EQ(PlacementSpec::parse("clusters:l=02").toString(), "clusters:l=2");
  EXPECT_EQ(PlacementSpec::parse("adversarial:far,l=2").toString(),
            "adversarial:far");
  EXPECT_EQ(PlacementSpec::parse("adversarial:frontier,l=2").toString(),
            "adversarial:frontier");
}

// Round-trip fuzz across the whole grammar: any generated spelling must
// reach a canonical fixpoint in one parse+print.
TEST(PlacementSpec, RoundTripFuzz) {
  Rng rng(0x5ca1ab1eULL);
  for (int iter = 0; iter < 300; ++iter) {
    std::string text;
    switch (rng.below(6)) {
      case 0:
        text = rng.chance(0.5) ? "rooted"
                               : "rooted:root=" + std::to_string(rng.below(1000));
        break;
      case 1:
        text = "clusters:l=" + std::to_string(1 + rng.below(64));
        break;
      case 2:
        text = "spread";
        break;
      case 3:
        text = rng.chance(0.5)
                   ? "adversarial:far"
                   : "adversarial:far,l=" + std::to_string(1 + rng.below(64));
        break;
      case 4:
        text = rng.chance(0.5)
                   ? "adversarial:frontier"
                   : "adversarial:frontier,l=" + std::to_string(1 + rng.below(64));
        break;
      default:
        text = "adversarial:hot";
        break;
    }
    const std::string canon = PlacementSpec::parse(text).toString();
    EXPECT_EQ(PlacementSpec::parse(canon).toString(), canon) << "from: " << text;
  }
}

TEST(PlacementSpec, ParseRejectsUnknownKindsAndParams) {
  for (const std::string bad :
       {"cluster:l=2", "rooted:x=1", "clusters:l=abc", "adversarial:cold",
        "adversarial", "spread:l=2", "clusters:l=0", "",
        "adversarial:frontier,x=2", "adversarial:frontier,l=0"}) {
    EXPECT_THROW((void)PlacementSpec::parse(bad), std::invalid_argument) << bad;
  }
}

TEST(PlacementSpec, KindsMapToTheFreeFunctions) {
  const Graph g = makeGraph("er", 40, 11);
  const auto eq = [](const Placement& a, const Placement& b) {
    EXPECT_EQ(a.positions, b.positions);
    EXPECT_EQ(a.ids, b.ids);
  };
  eq(PlacementSpec::parse("rooted").place(g, 10, 7), rootedPlacement(g, 10, 0, 7));
  eq(PlacementSpec::parse("rooted:root=3").place(g, 10, 7),
     rootedPlacement(g, 10, 3, 7));
  eq(PlacementSpec::parse("clusters:l=4").place(g, 10, 7),
     clusteredPlacement(g, 10, 4, 7));
  eq(PlacementSpec::parse("spread").place(g, 10, 7), scatteredPlacement(g, 10, 7));
  eq(PlacementSpec::parse("adversarial:hot").place(g, 10, 7),
     adversarialHotPlacement(g, 10, 7));
  eq(PlacementSpec::parse("adversarial:far,l=3").place(g, 9, 7),
     adversarialFarPlacement(g, 9, 3, 7));
  eq(PlacementSpec::parse("adversarial:frontier,l=3").place(g, 9, 7),
     adversarialFrontierPlacement(g, 9, 3, 7));
}

TEST(PlacementSpec, TableLabelsMatchHistoricalClusterColumn) {
  EXPECT_EQ(PlacementSpec::parse("rooted").tableLabel(), "1");
  EXPECT_EQ(PlacementSpec::parse("clusters:l=8").tableLabel(), "8");
  EXPECT_EQ(PlacementSpec::parse("spread").tableLabel(), "spread");
  EXPECT_EQ(PlacementSpec::parse("adversarial:far").tableLabel(), "far:2");
  EXPECT_EQ(PlacementSpec::parse("adversarial:frontier,l=3").tableLabel(),
            "frontier:3");
  EXPECT_EQ(PlacementSpec::parse("adversarial:hot").tableLabel(), "hot");
}

// The adversarial:far invariant (ISSUE satellite): with the default l = 2
// the two centers sit a full diameter apart — in particular >= diameter/2.
TEST(Placement, AdversarialFarSeparatesClustersByDiameter) {
  for (const std::string spec :
       {"path:n=40", "grid:rows=7,cols=7", "er:n=100", "randtree:n=80",
        "cycle:n=30", "lollipop:n=40,clique=10"}) {
    const Graph g = makeGraph(spec, 0, 13);
    const std::uint32_t diam = diameter(g);
    const Placement p = adversarialFarPlacement(g, 12, 2, 13);
    std::set<NodeId> centers(p.positions.begin(), p.positions.end());
    ASSERT_EQ(centers.size(), 2u) << spec;
    const NodeId a = *centers.begin();
    const NodeId b = *std::next(centers.begin());
    const std::uint32_t dist = bfsDistances(g, a)[b];
    EXPECT_EQ(dist, diam) << spec;  // far:2 achieves the full diameter
    EXPECT_GE(dist, (diam + 1) / 2) << spec;
    // Deterministic: same graph, any seed -> same centers.
    const Placement q = adversarialFarPlacement(g, 12, 2, 999);
    EXPECT_EQ(p.positions, q.positions) << spec;
  }
  // l = 4 on a grid: four pairwise-distinct, pairwise-remote centers.
  const Graph g = makeGraph("grid:rows=8,cols=8", 0, 3);
  const Placement p = adversarialFarPlacement(g, 16, 4, 3);
  std::set<NodeId> centers(p.positions.begin(), p.positions.end());
  EXPECT_EQ(centers.size(), 4u);
}

// The adversarial:frontier invariant: centers are the deepest BFS levels
// from node 0 — every center is at least as deep as every non-center.
TEST(Placement, AdversarialFrontierPicksTheDeepestBfsLevels) {
  // Exact on a path: BFS depth from node 0 is the node id, so the l = 2
  // centers are the two far-end nodes.
  const Graph path = makePath(12).build();
  const Placement onPath = adversarialFrontierPlacement(path, 6, 2, 5);
  const std::set<NodeId> pathCenters(onPath.positions.begin(),
                                     onPath.positions.end());
  EXPECT_EQ(pathCenters, (std::set<NodeId>{10, 11}));

  for (const std::string spec :
       {"path:n=40", "grid:rows=7,cols=7", "er:n=100", "randtree:n=80",
        "cycle:n=30", "lollipop:n=40,clique=10"}) {
    const Graph g = makeGraph(spec, 0, 13);
    const std::uint32_t l = 4;
    const Placement p = adversarialFrontierPlacement(g, 12, l, 13);
    const std::set<NodeId> centers(p.positions.begin(), p.positions.end());
    ASSERT_EQ(centers.size(), l) << spec;
    // Recompute the property from scratch: min depth over centers >= max
    // depth over excluded nodes (the centers are a deepest-first prefix).
    const std::vector<std::uint32_t> dist = bfsDistances(g, 0);
    std::uint32_t minCenter = kUnreachable;
    for (const NodeId c : centers) minCenter = std::min(minCenter, dist[c]);
    for (NodeId v = 0; v < g.nodeCount(); ++v) {
      if (centers.count(v) > 0) continue;
      EXPECT_GE(minCenter, dist[v]) << spec << " node " << v;
    }
    // Deterministic positions: the seed only drives the agent IDs.
    const Placement q = adversarialFrontierPlacement(g, 12, l, 999);
    EXPECT_EQ(p.positions, q.positions) << spec;
    EXPECT_NE(p.ids, q.ids) << spec;
  }
}

// The adversarial:hot invariant: every agent starts on an argmax-degree
// node.
TEST(Placement, AdversarialHotCoLocatesOnMaxDegreeNode) {
  for (const std::string spec : {"star:n=30", "er:n=80", "wheel:n=20"}) {
    const Graph g = makeGraph(spec, 0, 23);
    const Placement p = adversarialHotPlacement(g, 10, 23);
    ASSERT_FALSE(p.positions.empty());
    const NodeId hub = p.positions.front();
    EXPECT_EQ(g.degree(hub), g.maxDegree()) << spec;
    for (const NodeId v : p.positions) EXPECT_EQ(v, hub) << spec;
  }
}

}  // namespace
}  // namespace disp
