// Tests for the simulation core: world moves/pin semantics, SYNC rounds and
// fiber scheduling, ASYNC activations and the epoch counter, schedulers,
// memory ledger, placements.
#include <gtest/gtest.h>

#include <map>

#include "algo/placement.hpp"
#include "core/async_engine.hpp"
#include "core/fiber.hpp"
#include "core/memory.hpp"
#include "core/metrics.hpp"
#include "core/scheduler.hpp"
#include "core/sync_engine.hpp"
#include "graph/generators.hpp"

namespace disp {
namespace {

std::vector<AgentId> seqIds(std::uint32_t k) {
  std::vector<AgentId> ids(k);
  for (std::uint32_t i = 0; i < k; ++i) ids[i] = i + 1;
  return ids;
}

// ------------------------------------------------------------------ world

TEST(World, RejectsBadConstruction) {
  const Graph g = makePath(3).build();
  EXPECT_THROW(World(g, {}, {}), std::invalid_argument);                 // no agents
  EXPECT_THROW(World(g, {0, 1}, {1}), std::invalid_argument);           // size mismatch
  EXPECT_THROW(World(g, {0, 0, 0, 0}, seqIds(4)), std::invalid_argument);  // k > n
  EXPECT_THROW(World(g, {0, 1}, {5, 5}), std::invalid_argument);        // dup ids
  EXPECT_THROW(World(g, {7, 0}, seqIds(2)), std::invalid_argument);     // bad node
}

TEST(World, MoveUpdatesPinAndOccupancy) {
  const Graph g = makePath(3).build();
  World w(g, {0, 0}, seqIds(2));
  EXPECT_EQ(w.pinOf(0), kNoPort);
  w.applyMove(0, 1);  // 0 -> 1
  EXPECT_EQ(w.positionOf(0), 1u);
  EXPECT_EQ(w.pinOf(0), g.reversePort(0, 1));
  EXPECT_EQ(w.agentsAt(0).size(), 1u);
  EXPECT_EQ(w.agentsAt(1).size(), 1u);
  EXPECT_EQ(w.totalMoves(), 1u);
  // Return trip restores co-location.
  w.applyMove(0, w.pinOf(0));
  EXPECT_EQ(w.positionOf(0), 0u);
  EXPECT_EQ(w.agentsAt(0).size(), 2u);
}

TEST(World, RejectsInvalidPort) {
  const Graph g = makePath(3).build();
  World w(g, {0}, seqIds(1));
  EXPECT_THROW(w.applyMove(0, 0), std::invalid_argument);
  EXPECT_THROW(w.applyMove(0, 2), std::invalid_argument);  // endpoint has degree 1
}

// ------------------------------------------------------------ sync engine

// A fiber that walks one agent to the end of a path, one edge per round.
Task walkRight(SyncEngine& e, AgentIx a, std::uint32_t steps) {
  for (std::uint32_t i = 0; i < steps; ++i) {
    const NodeId at = e.positionOf(a);
    // On a path built in insertion order, the "right" port is 2 internally,
    // 1 at the left endpoint.
    const Port p = (at == 0) ? 1 : 2;
    e.stageMove(a, p);
    co_await e.nextRound();
  }
}

TEST(SyncEngine, MovesCommitPerRound) {
  const Graph g = makePath(6).build();
  SyncEngine e(g, {0}, seqIds(1));
  e.addFiber(walkRight(e, 0, 5));
  e.run(100);
  EXPECT_EQ(e.positionOf(0), 5u);
  EXPECT_EQ(e.round(), 5u);
  EXPECT_EQ(e.totalMoves(), 5u);
}

Task meetInMiddle(SyncEngine& e, AgentIx left, AgentIx right, bool& met) {
  // left starts at 0, right at 2 on a path of 3; they swap toward node 1.
  e.stageMove(left, 1);
  e.stageMove(right, 1);
  co_await e.nextRound();
  met = e.agentsAt(1).size() == 2;
}

TEST(SyncEngine, SimultaneousMovesMeet) {
  const Graph g = makePath(3).build();
  SyncEngine e(g, {0, 2}, seqIds(2));
  bool met = false;
  e.addFiber(meetInMiddle(e, 0, 1, met));
  e.run(10);
  EXPECT_TRUE(met);
}

Task doubleStage(SyncEngine& e, AgentIx a) {
  e.stageMove(a, 1);
  e.stageMove(a, 1);  // must throw
  co_await e.nextRound();
}

TEST(SyncEngine, DoubleStageIsRejected) {
  const Graph g = makePath(3).build();
  SyncEngine e(g, {1}, seqIds(1));
  e.addFiber(doubleStage(e, 0));
  EXPECT_THROW(e.run(10), std::logic_error);
}

Task idleForever(SyncEngine& e) {
  for (;;) co_await e.nextRound();
}

TEST(SyncEngine, RoundLimitGuardsDeadlock) {
  const Graph g = makePath(3).build();
  SyncEngine e(g, {0}, seqIds(1));
  e.addFiber(idleForever(e));
  EXPECT_THROW(e.run(50), std::runtime_error);
}

Task nestedInner(SyncEngine& e, int& log) {
  log = log * 10 + 2;
  co_await e.nextRound();
  log = log * 10 + 3;
}

Task nestedOuter(SyncEngine& e, int& log) {
  log = log * 10 + 1;
  co_await nestedInner(e, log);
  log = log * 10 + 4;
  co_await e.nextRound();
  log = log * 10 + 5;
}

TEST(SyncEngine, NestedTasksInterleaveWithRounds) {
  const Graph g = makePath(3).build();
  SyncEngine e(g, {0}, seqIds(1));
  int log = 0;
  e.addFiber(nestedOuter(e, log));
  e.run(10);
  EXPECT_EQ(log, 12345);
  EXPECT_EQ(e.round(), 2u);  // two awaited rounds
}

Task throwingFiber(SyncEngine& e) {
  co_await e.nextRound();
  throw std::runtime_error("protocol bug");
}

TEST(SyncEngine, FiberExceptionsPropagate) {
  const Graph g = makePath(3).build();
  SyncEngine e(g, {0}, seqIds(1));
  e.addFiber(throwingFiber(e));
  EXPECT_THROW(e.run(10), std::runtime_error);
}

Task twoFiberPing(SyncEngine& e, AgentIx a, std::uint32_t rounds) {
  for (std::uint32_t i = 0; i < rounds; ++i) {
    const NodeId at = e.positionOf(a);
    const Port out = (at == 0) ? 1 : e.pinOf(a);
    e.stageMove(a, out);
    co_await e.nextRound();
  }
}

TEST(SyncEngine, MultipleFibersAdvanceInLockstep) {
  const Graph g = makeStar(5).build();
  SyncEngine e(g, {0, 0}, seqIds(2));
  e.addFiber(twoFiberPing(e, 0, 4));
  e.addFiber(twoFiberPing(e, 1, 6));
  e.run(20);
  // Both walked an even number of hops from the hub: back at the hub.
  EXPECT_EQ(e.positionOf(0), 0u);
  EXPECT_EQ(e.positionOf(1), 0u);
  EXPECT_EQ(e.round(), 6u);
}

TEST(SyncEngine, RoundHookRunsEveryRound) {
  const Graph g = makePath(4).build();
  SyncEngine e(g, {0}, seqIds(1));
  int hookCount = 0;
  e.addRoundHook([&] { ++hookCount; });
  e.addFiber(walkRight(e, 0, 3));
  e.run(10);
  EXPECT_EQ(hookCount, 3);
}

// ----------------------------------------------------------- async engine

// Agent program: walk right `steps` edges, one per activation, then stop.
Task asyncWalk(AsyncEngine& e, AgentIx a, std::uint32_t steps, bool leader) {
  for (std::uint32_t i = 0; i < steps; ++i) {
    co_await e.nextActivation(a);
    const NodeId at = e.positionOf(a);
    e.move(a, at == 0 ? 1 : 2);
  }
  if (leader) e.finish();
  for (;;) co_await e.nextActivation(a);
}

TEST(AsyncEngine, RoundRobinEpochsMatchSweeps) {
  const Graph g = makePath(8).build();
  AsyncEngine e(g, {0, 0}, seqIds(2), makeRoundRobinScheduler(2));
  e.setAgentFiber(0, asyncWalk(e, 0, 6, false));
  e.setAgentFiber(1, asyncWalk(e, 1, 6, true));
  e.run(10000);
  EXPECT_EQ(e.positionOf(0), 6u);
  EXPECT_EQ(e.positionOf(1), 6u);
  // Under round-robin, each sweep of k activations is exactly one epoch.
  EXPECT_EQ(e.epochs(), 6u);
}

TEST(AsyncEngine, EpochCountsUnderAllSchedulers) {
  for (const auto& name : knownSchedulers()) {
    const Graph g = makePath(12).build();
    AsyncEngine e(g, {0, 0, 0}, seqIds(3), makeSchedulerByName(name, 3, 99));
    e.setAgentFiber(0, asyncWalk(e, 0, 10, false));
    e.setAgentFiber(1, asyncWalk(e, 1, 10, false));
    e.setAgentFiber(2, asyncWalk(e, 2, 10, true));
    e.run(1000000);
    EXPECT_EQ(e.positionOf(2), 10u) << name;
    // Epochs track the *slowest* agent: an agent may complete many cycles
    // inside one epoch, so the only universal bounds are these.
    EXPECT_GE(e.epochs(), 1u) << name;
    EXPECT_LE(e.epochs(), e.activations() / 3 + 1) << name;
    EXPECT_GT(e.activations(), 0u) << name;
  }
}

Task moveTwicePerActivation(AsyncEngine& e, AgentIx a) {
  co_await e.nextActivation(a);
  e.move(a, 1);
  e.move(a, 1);  // must throw: one move per CCM cycle
}

TEST(AsyncEngine, SecondMoveInOneActivationRejected) {
  const Graph g = makePath(4).build();
  AsyncEngine e(g, {0}, seqIds(1), makeRoundRobinScheduler(1));
  e.setAgentFiber(0, moveTwicePerActivation(e, 0));
  EXPECT_THROW(e.run(100), std::logic_error);
}

TEST(AsyncEngine, ActivationCapGuardsNonTermination) {
  const Graph g = makePath(4).build();
  AsyncEngine e(g, {0}, seqIds(1), makeRoundRobinScheduler(1));
  e.setAgentFiber(0, asyncWalk(e, 0, 2, false));  // never calls finish()
  EXPECT_THROW(e.run(500), std::runtime_error);
}

// ------------------------------------------------------------- schedulers

TEST(Scheduler, AllAreFairOverLongRuns) {
  constexpr std::uint32_t k = 5;
  for (const auto& name : knownSchedulers()) {
    auto s = makeSchedulerByName(name, k, 7);
    std::map<std::uint32_t, int> hist;
    for (int i = 0; i < 20000; ++i) ++hist[s->next()];
    EXPECT_EQ(hist.size(), k) << name << " starved an agent";
    for (const auto& [agent, count] : hist) {
      EXPECT_GT(count, 100) << name << " agent " << agent;
    }
  }
}

TEST(Scheduler, WeightedSkewsRatios) {
  auto s = makeWeightedScheduler(4, {0}, 10, 13);
  std::map<std::uint32_t, int> hist;
  for (int i = 0; i < 40000; ++i) ++hist[s->next()];
  // Agent 0 should be activated ~10x less often than others.
  EXPECT_LT(hist[0] * 5, hist[1]);
}

TEST(Scheduler, UnknownNameThrows) {
  EXPECT_THROW((void)makeSchedulerByName("bogus", 3, 1), std::invalid_argument);
}

// ------------------------------------------------------------- memory

TEST(Memory, BitsForWidths) {
  EXPECT_EQ(bitsFor(0), 1u);
  EXPECT_EQ(bitsFor(1), 1u);
  EXPECT_EQ(bitsFor(7), 3u);
  EXPECT_EQ(bitsFor(8), 4u);
}

TEST(Memory, LedgerTracksHighWater) {
  MemoryLedger ledger(3);
  ledger.record(0, 10);
  ledger.record(1, 25);
  ledger.record(0, 5);  // lower than before; high water stays
  EXPECT_EQ(ledger.maxBits(), 25u);
  EXPECT_EQ(ledger.bitsOf(0), 10u);
}

TEST(Memory, WidthsForRun) {
  const auto w = BitWidths::forRun(/*maxId=*/4096, /*maxDegree=*/100, /*k=*/1024);
  EXPECT_EQ(w.id, 13u);
  EXPECT_EQ(w.port, 7u);   // values 0..101
  EXPECT_EQ(w.count, 11u);  // values 0..1024
}

// ------------------------------------------------------------- metrics

TEST(Metrics, IsDispersedDetectsCollisions) {
  EXPECT_TRUE(isDispersed({0, 1, 2}));
  EXPECT_FALSE(isDispersed({0, 1, 0}));
  EXPECT_TRUE(isDispersed({5}));
}

// ------------------------------------------------------------ placements

TEST(Placement, RootedAllOnRoot) {
  const Graph g = makePath(10).build();
  const auto p = rootedPlacement(g, 6, 3, 42);
  EXPECT_EQ(p.positions.size(), 6u);
  for (const NodeId v : p.positions) EXPECT_EQ(v, 3u);
  std::set<AgentId> ids(p.ids.begin(), p.ids.end());
  EXPECT_EQ(ids.size(), 6u);
  for (const AgentId id : ids) {
    EXPECT_GE(id, 1u);
    EXPECT_LE(id, 24u);
  }
}

TEST(Placement, ClusteredUsesExactlyLClusters) {
  const Graph g = makeFamily({"er", 40, 11});
  const auto p = clusteredPlacement(g, 20, 4, 17);
  std::set<NodeId> nodes(p.positions.begin(), p.positions.end());
  EXPECT_EQ(nodes.size(), 4u);
}

TEST(Placement, ScatteredIsDispersed) {
  const Graph g = makeFamily({"er", 50, 19});
  const auto p = scatteredPlacement(g, 30, 21);
  EXPECT_TRUE(isDispersed(p.positions));
}

TEST(Placement, RejectsBadParameters) {
  const Graph g = makePath(5).build();
  EXPECT_THROW((void)rootedPlacement(g, 9, 0, 1), std::invalid_argument);   // k > n
  EXPECT_THROW((void)clusteredPlacement(g, 3, 9, 1), std::invalid_argument);  // l > k
}

}  // namespace
}  // namespace disp
