// End-to-end tests for RootedSyncDisp (Theorem 6.1): dispersion correctness
// across families × k, the O(k) round bound (rounds/k stays flat as k
// grows), Lemma 7 (≥ ⌈k/3⌉ empty at DFS end), Lemma 4 (probe rounds O(1)),
// the O(log(k+Δ)) memory bound, and the ≤ 2 seeker-borrow guarantee.
#include <gtest/gtest.h>

#include "algo/placement.hpp"
#include "algo/sync_rooted.hpp"
#include "core/metrics.hpp"
#include "graph/generators.hpp"
#include "graph/spec.hpp"

namespace disp {
namespace {

struct Case {
  std::string family;
  std::uint32_t n;
  std::uint32_t k;
};

std::string caseName(const ::testing::TestParamInfo<Case>& info) {
  return info.param.family + "_n" + std::to_string(info.param.n) + "_k" +
         std::to_string(info.param.k);
}

struct RunOut {
  RunOut(const Graph& g, std::uint32_t k, std::uint64_t seed)
      : placement(rootedPlacement(g, k, 0, seed)),
        engine(g, placement.positions, placement.ids),
        algo(engine) {
    algo.start();
    engine.run(4000ULL * k + 200000);
  }
  Placement placement;
  SyncEngine engine;
  RootedSyncDispersion algo;
};

class SyncRootedTest : public ::testing::TestWithParam<Case> {};

TEST_P(SyncRootedTest, Disperses) {
  const auto& [family, n, k] = GetParam();
  const Graph g = makeGraph(family, n, 42);
  RunOut run(g, k, 7);
  EXPECT_TRUE(run.algo.dispersed()) << family;
  EXPECT_TRUE(isDispersed(run.engine.positionsSnapshot()));
  // Lemma 7 / Lemma 1: at DFS end at least ceil(k/3) tree nodes were empty.
  EXPECT_GE(run.algo.stats().emptyAtDfsEnd * 3 + 2, k) << family;
  EXPECT_EQ(run.algo.stats().treeSize, k);
  EXPECT_LE(run.algo.stats().borrows, 2u);
}

INSTANTIATE_TEST_SUITE_P(
    Families, SyncRootedTest,
    ::testing::Values(Case{"path", 80, 80}, Case{"path", 80, 23},
                      Case{"cycle", 64, 64}, Case{"star", 70, 70},
                      Case{"star", 70, 21}, Case{"complete", 28, 28},
                      Case{"bintree", 63, 63}, Case{"bintree", 63, 30},
                      Case{"randtree", 90, 90}, Case{"grid", 64, 64},
                      Case{"grid", 64, 33}, Case{"er", 72, 72},
                      Case{"er", 72, 31}, Case{"regular", 60, 60},
                      Case{"lollipop", 40, 40}, Case{"barbell", 42, 42},
                      Case{"hypercube", 64, 64}, Case{"wheel", 50, 50},
                      Case{"bipartite", 40, 40}, Case{"caterpillar", 60, 60}),
    caseName);

TEST(SyncRooted, SmallKRange) {
  // Minimum supported k (7) through 12 on several shapes.
  for (std::uint32_t k = 7; k <= 12; ++k) {
    for (const char* family : {"path", "star", "er", "randtree"}) {
      const Graph g = makeGraph(family, 24, k * 3 + 1);
      RunOut run(g, k, k);
      EXPECT_TRUE(run.algo.dispersed()) << family << " k=" << k;
    }
  }
}

TEST(SyncRooted, RejectsTinyK) {
  const Graph g = makePath(10).build();
  const Placement p = rootedPlacement(g, 5, 0, 1);
  SyncEngine engine(g, p.positions, p.ids);
  EXPECT_THROW(RootedSyncDispersion{engine}, std::invalid_argument);
}

TEST(SyncRooted, RejectsGeneralPlacement) {
  const Graph g = makePath(20).build();
  const Placement p = clusteredPlacement(g, 10, 2, 3);
  SyncEngine engine(g, p.positions, p.ids);
  EXPECT_THROW(RootedSyncDispersion{engine}, std::invalid_argument);
}

TEST(SyncRooted, ProbeRoundsAreConstant) {
  // Lemma 4: Sync_Probe is O(1) rounds regardless of degree.  Compare the
  // longest probe on a star (Δ = n-1) against a path (Δ = 2): the bound is
  // a fixed constant, independent of Δ and k.
  std::uint64_t starMax = 0, pathMax = 0;
  {
    const Graph g = makeStar(200).build();
    RunOut run(g, 60, 5);
    ASSERT_TRUE(run.algo.dispersed());
    starMax = run.algo.stats().maxProbeRounds;
  }
  {
    const Graph g = makePath(200).build();
    RunOut run(g, 60, 5);
    ASSERT_TRUE(run.algo.dispersed());
    pathMax = run.algo.stats().maxProbeRounds;
  }
  // Each probe iteration costs 8 rounds + O(1) custodian waits; at most ~4
  // iterations with borrows. 64 rounds is a generous constant ceiling.
  EXPECT_LE(starMax, 64u);
  EXPECT_LE(pathMax, 64u);
}

TEST(SyncRooted, RoundsLinearInK) {
  // The paper's headline: rounds/k stays (roughly) flat as k doubles.
  const Graph g = makeGraph("er", 600, 11);
  double prevRatio = 0;
  for (std::uint32_t k : {64u, 128u, 256u, 512u}) {
    RunOut run(g, k, 3);
    ASSERT_TRUE(run.algo.dispersed()) << k;
    const double ratio =
        static_cast<double>(run.engine.round()) / static_cast<double>(k);
    if (prevRatio > 0) {
      EXPECT_LT(ratio, prevRatio * 1.5) << "rounds/k grew superlinearly at k=" << k;
    }
    prevRatio = ratio;
  }
}

TEST(SyncRooted, MemoryLogarithmic) {
  const Graph g = makeGraph("er", 300, 17);
  for (std::uint32_t k : {64u, 256u}) {
    RunOut run(g, k, 9);
    ASSERT_TRUE(run.algo.dispersed());
    const auto w = BitWidths::forRun(4ULL * k, g.maxDegree(), k);
    // Records are ~11 log-sized fields; custody of ≤ 3 covered records plus
    // leader extras stays within ~64 log-words.
    EXPECT_LE(run.engine.memory().maxBits(), 64ULL * (w.id + w.port + w.count));
  }
}

TEST(SyncRooted, ForwardMovesExactlyKMinus1) {
  const Graph g = makeGraph("randtree", 50, 23);
  RunOut run(g, 50, 2);
  ASSERT_TRUE(run.algo.dispersed());
  EXPECT_EQ(run.algo.stats().forwardMoves, 49u);
  EXPECT_LE(run.algo.stats().backtracks, 49u);
}

TEST(SyncRooted, OscillationCyclesWithinLemma2Bound) {
  const Graph g = makeGraph("star", 100, 3);
  RunOut run(g, 40, 4);
  ASSERT_TRUE(run.algo.dispersed());
  EXPECT_LE(run.algo.oscillators().maxCycleRounds(), 6u);
}

TEST(SyncRooted, DeterministicAcrossRuns) {
  const Graph g = makeGraph("er", 100, 21);
  std::uint64_t first = 0;
  for (int rep = 0; rep < 2; ++rep) {
    RunOut run(g, 64, 13);
    ASSERT_TRUE(run.algo.dispersed());
    if (rep == 0) {
      first = run.engine.round();
    } else {
      EXPECT_EQ(run.engine.round(), first);
    }
  }
}

TEST(SyncRooted, FullOccupancyOnTree) {
  const Graph g = makeRandomTree(48, 19).build();
  RunOut run(g, 48, 6);
  ASSERT_TRUE(run.algo.dispersed());
  auto pos = run.engine.positionsSnapshot();
  std::sort(pos.begin(), pos.end());
  for (NodeId v = 0; v < 48; ++v) EXPECT_EQ(pos[v], v);
}

TEST(SyncRooted, WorksUnderRandomPortLabels) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const Graph g = makeGraph("er", 64, seed, PortLabeling::RandomPermutation);
    RunOut run(g, 48, seed);
    EXPECT_TRUE(run.algo.dispersed()) << "seed " << seed;
  }
}

}  // namespace
}  // namespace disp
