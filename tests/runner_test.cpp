// Facade-level integration tests: every algorithm through runDispersion,
// including the small-k fallback, cross-model agreement checks, and the
// cross-algorithm invariant suite (dispersal, distinct occupancy, metric
// sanity/monotonicity, and bit-identical reruns for fixed seeds).
#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "algo/runner.hpp"
#include "graph/generators.hpp"
#include "graph/spec.hpp"

namespace disp {
namespace {

constexpr Algorithm kAllAlgorithms[] = {
    Algorithm::RootedSync, Algorithm::RootedAsync,  Algorithm::GeneralSync,
    Algorithm::GeneralAsync, Algorithm::KsSync,     Algorithm::KsAsync,
};

/// Rooted algorithms require rooted placements; general ones are exercised
/// on a 4-cluster general configuration.
Placement placementFor(const Graph& g, Algorithm algo, std::uint32_t k,
                       std::uint64_t seed) {
  const bool general = algo == Algorithm::GeneralSync || algo == Algorithm::GeneralAsync;
  return general ? clusteredPlacement(g, k, 4, seed) : rootedPlacement(g, k, 0, seed);
}

TEST(Runner, AllAlgorithmsDisperseRooted) {
  const Graph g = makeGraph("er", 64, 5);
  for (const Algorithm algo : kAllAlgorithms) {
    const Placement p = rootedPlacement(g, 48, 0, 3);
    const RunResult r = runDispersion(g, p, {algo, "round_robin", 7});
    EXPECT_TRUE(r.dispersed) << algorithmName(algo);
    EXPECT_TRUE(isDispersed(r.finalPositions)) << algorithmName(algo);
    EXPECT_GT(r.time, 0u) << algorithmName(algo);
    EXPECT_GT(r.maxMemoryBits, 0u) << algorithmName(algo);
  }
}

TEST(Runner, SmallKFallsBackToBaseline) {
  const Graph g = makeGraph("star", 20, 1);
  for (std::uint32_t k = 1; k <= 6; ++k) {
    const Placement p = rootedPlacement(g, k, 0, k);
    const RunResult r = runDispersion(g, p, {Algorithm::RootedSync});
    EXPECT_TRUE(r.dispersed) << "k=" << k;
  }
}

TEST(Runner, GeneralSyncHandlesClusters) {
  const Graph g = makeGraph("grid", 64, 9);
  for (std::uint32_t l : {1u, 2u, 4u, 8u}) {
    const Placement p = clusteredPlacement(g, 48, l, 11);
    const RunResult r = runDispersion(g, p, {Algorithm::GeneralSync});
    EXPECT_TRUE(r.dispersed) << "l=" << l;
  }
}

TEST(Runner, AsyncSchedulersAllWork) {
  const Graph g = makeGraph("randtree", 40, 13);
  for (const char* sched : {"round_robin", "shuffled", "uniform", "weighted"}) {
    const Placement p = rootedPlacement(g, 32, 0, 5);
    const RunResult r = runDispersion(g, p, {Algorithm::RootedAsync, sched, 9});
    EXPECT_TRUE(r.dispersed) << sched;
    EXPECT_GT(r.activations, 0u);
  }
}

TEST(Runner, SyncFasterThanBaselineOnClique) {
  // The headline separation at a glance: on a clique with k = n the KS
  // baseline pays Θ(k²) re-probing settled neighbors while the paper's
  // algorithm stays O(k) (with its constant-factor probe overhead).
  const Graph g = makeComplete(160).build();
  const Placement p = rootedPlacement(g, 160, 0, 3);
  const RunResult fancy = runDispersion(g, p, {Algorithm::RootedSync});
  const RunResult base = runDispersion(g, p, {Algorithm::KsSync});
  ASSERT_TRUE(fancy.dispersed);
  ASSERT_TRUE(base.dispersed);
  EXPECT_LT(fancy.time, base.time);
}

TEST(Runner, KsRequiresRootedPlacement) {
  const Graph g = makePath(20).build();
  const Placement p = clusteredPlacement(g, 10, 2, 3);
  EXPECT_THROW((void)runDispersion(g, p, {Algorithm::KsSync}), std::invalid_argument);
}

TEST(Runner, GeneralAsyncHandlesClustersUnderAllSchedulers) {
  const Graph g = makeGraph("grid", 64, 9);
  for (std::uint32_t l : {1u, 2u, 4u, 8u}) {
    for (const char* sched : {"round_robin", "shuffled", "uniform", "weighted"}) {
      const Placement p = clusteredPlacement(g, 48, l, 11);
      const RunResult r = runDispersion(g, p, {Algorithm::GeneralAsync, sched, 7});
      EXPECT_TRUE(r.dispersed) << "l=" << l << " " << sched;
      EXPECT_GT(r.activations, 0u);
    }
  }
}

// ------------------------- cross-algorithm invariant suite -------------------

struct CrossCase {
  Algorithm algorithm;
  std::string family;
  std::uint64_t seed;
};

std::string crossCaseName(const ::testing::TestParamInfo<CrossCase>& info) {
  std::string name = algorithmName(info.param.algorithm) + "_" + info.param.family +
                     "_s" + std::to_string(info.param.seed);
  std::erase_if(name, [](char c) { return !std::isalnum(static_cast<unsigned char>(c)); });
  return name;
}

class CrossAlgorithmTest : public ::testing::TestWithParam<CrossCase> {};

TEST_P(CrossAlgorithmTest, TerminatesDispersedWithSaneMetrics) {
  const auto& [algo, family, seed] = GetParam();
  const std::uint32_t k = 48;
  const Graph g = makeGraph(family, 64, seed);
  const Placement p = placementFor(g, algo, k, seed + 1);
  const RunResult r = runDispersion(g, p, {algo, "round_robin", seed});

  EXPECT_TRUE(r.dispersed);
  ASSERT_EQ(r.finalPositions.size(), k);
  EXPECT_TRUE(isDispersed(r.finalPositions));
  auto nodes = r.finalPositions;
  std::sort(nodes.begin(), nodes.end());
  EXPECT_EQ(std::unique(nodes.begin(), nodes.end()), nodes.end())
      << "agents must occupy k distinct nodes";

  // Metric sanity: time passes, agents move, memory is accounted, and the
  // ASYNC activation count dominates the epoch count.
  EXPECT_GE(r.time, 1u);
  EXPECT_GT(r.totalMoves, 0u);
  EXPECT_GT(r.maxMemoryBits, 0u);
  if (isAsync(algo)) {
    EXPECT_GE(r.activations, r.time);
  } else {
    // SYNC: one CCM cycle per agent per round, by the model's definition.
    EXPECT_EQ(r.activations, r.time * k);
  }
}

TEST_P(CrossAlgorithmTest, FixedSeedsGiveBitIdenticalRuns) {
  const auto& [algo, family, seed] = GetParam();
  const std::uint32_t k = 32;
  const Graph g = makeGraph(family, 48, seed);
  const Placement p = placementFor(g, algo, k, seed + 1);
  const RunSpec spec{algo, "uniform", seed};
  const RunResult a = runDispersion(g, p, spec);
  const RunResult b = runDispersion(g, p, spec);
  EXPECT_EQ(a.dispersed, b.dispersed);
  EXPECT_EQ(a.time, b.time);
  EXPECT_EQ(a.activations, b.activations);
  EXPECT_EQ(a.totalMoves, b.totalMoves);
  EXPECT_EQ(a.maxMemoryBits, b.maxMemoryBits);
  EXPECT_EQ(a.finalPositions, b.finalPositions);
}

std::vector<CrossCase> crossCases() {
  std::vector<CrossCase> cases;
  for (const Algorithm algo : kAllAlgorithms) {
    for (const char* family : {"path", "grid", "er"}) {
      for (const std::uint64_t seed : {3ULL, 17ULL}) {
        cases.push_back({algo, family, seed});
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithmsFamiliesSeeds, CrossAlgorithmTest,
                         ::testing::ValuesIn(crossCases()), crossCaseName);

TEST(CrossAlgorithm, MovesAndTimeNonDecreasingInK) {
  // Scaling sanity shared by every algorithm: on a fixed graph, settling
  // more agents never takes fewer total moves, and never less time.
  const Graph g = makeGraph("er", 128, 21);
  for (const Algorithm algo : kAllAlgorithms) {
    std::uint64_t prevMoves = 0, prevTime = 0;
    for (const std::uint32_t k : {16u, 32u, 64u}) {
      const Placement p = placementFor(g, algo, k, 5);
      const RunResult r = runDispersion(g, p, {algo, "round_robin", 9});
      ASSERT_TRUE(r.dispersed) << algorithmName(algo) << " k=" << k;
      EXPECT_GE(r.totalMoves, prevMoves) << algorithmName(algo) << " k=" << k;
      EXPECT_GE(r.time, prevTime) << algorithmName(algo) << " k=" << k;
      prevMoves = r.totalMoves;
      prevTime = r.time;
    }
  }
}

// ------------------------------------------------------------ scenario API

TEST(RunScenario, MatchesManualGraphAndPlacementConstruction) {
  RunOptions opts;
  opts.algorithm = "rooted_sync";
  opts.seed = 7;
  const RunResult viaScenario = runScenario("er", "rooted", 24, opts);

  const Graph g = makeGraph("er", 48, 7);  // default sizing n = 2k
  const Placement p = rootedPlacement(g, 24, 0, 7);
  const RunResult manual = runSession(g, p, opts);
  EXPECT_EQ(viaScenario.dispersed, manual.dispersed);
  EXPECT_EQ(viaScenario.time, manual.time);
  EXPECT_EQ(viaScenario.totalMoves, manual.totalMoves);
  EXPECT_EQ(viaScenario.finalPositions, manual.finalPositions);
}

TEST(RunScenario, RunsAdversarialPlacementsOnParameterizedGraphs) {
  RunOptions opts;
  opts.algorithm = "general_sync";
  opts.seed = 3;
  const RunResult far =
      runScenario("grid:rows=6,cols=6", "adversarial:far", 18, opts);
  EXPECT_TRUE(far.dispersed);
  EXPECT_TRUE(isDispersed(far.finalPositions));

  opts.algorithm = "rooted_sync";
  const RunResult hot = runScenario("star:n=40", "adversarial:hot", 16, opts);
  EXPECT_TRUE(hot.dispersed);
}

TEST(RunScenario, RejectsMalformedSpecs) {
  EXPECT_THROW((void)runScenario("nope", "rooted", 8), std::invalid_argument);
  EXPECT_THROW((void)runScenario("er", "nope", 8), std::invalid_argument);
  EXPECT_THROW((void)runScenario("er", "rooted", 0), std::invalid_argument);
}

}  // namespace
}  // namespace disp
