// Facade-level integration tests: every algorithm through runDispersion,
// including the small-k fallback and cross-model agreement checks.
#include <gtest/gtest.h>

#include "algo/runner.hpp"
#include "graph/generators.hpp"

namespace disp {
namespace {

TEST(Runner, AllAlgorithmsDisperseRooted) {
  const Graph g = makeFamily({"er", 64, 5});
  for (const Algorithm algo : {Algorithm::RootedSync, Algorithm::RootedAsync,
                               Algorithm::GeneralSync, Algorithm::KsSync,
                               Algorithm::KsAsync}) {
    const Placement p = rootedPlacement(g, 48, 0, 3);
    const RunResult r = runDispersion(g, p, {algo, "round_robin", 7});
    EXPECT_TRUE(r.dispersed) << algorithmName(algo);
    EXPECT_TRUE(isDispersed(r.finalPositions)) << algorithmName(algo);
    EXPECT_GT(r.time, 0u) << algorithmName(algo);
    EXPECT_GT(r.maxMemoryBits, 0u) << algorithmName(algo);
  }
}

TEST(Runner, SmallKFallsBackToBaseline) {
  const Graph g = makeFamily({"star", 20, 1});
  for (std::uint32_t k = 1; k <= 6; ++k) {
    const Placement p = rootedPlacement(g, k, 0, k);
    const RunResult r = runDispersion(g, p, {Algorithm::RootedSync});
    EXPECT_TRUE(r.dispersed) << "k=" << k;
  }
}

TEST(Runner, GeneralSyncHandlesClusters) {
  const Graph g = makeFamily({"grid", 64, 9});
  for (std::uint32_t l : {1u, 2u, 4u, 8u}) {
    const Placement p = clusteredPlacement(g, 48, l, 11);
    const RunResult r = runDispersion(g, p, {Algorithm::GeneralSync});
    EXPECT_TRUE(r.dispersed) << "l=" << l;
  }
}

TEST(Runner, AsyncSchedulersAllWork) {
  const Graph g = makeFamily({"randtree", 40, 13});
  for (const char* sched : {"round_robin", "shuffled", "uniform", "weighted"}) {
    const Placement p = rootedPlacement(g, 32, 0, 5);
    const RunResult r = runDispersion(g, p, {Algorithm::RootedAsync, sched, 9});
    EXPECT_TRUE(r.dispersed) << sched;
    EXPECT_GT(r.activations, 0u);
  }
}

TEST(Runner, SyncFasterThanBaselineOnClique) {
  // The headline separation at a glance: on a clique with k = n the KS
  // baseline pays Θ(k²) re-probing settled neighbors while the paper's
  // algorithm stays O(k) (with its constant-factor probe overhead).
  const Graph g = makeComplete(160).build();
  const Placement p = rootedPlacement(g, 160, 0, 3);
  const RunResult fancy = runDispersion(g, p, {Algorithm::RootedSync});
  const RunResult base = runDispersion(g, p, {Algorithm::KsSync});
  ASSERT_TRUE(fancy.dispersed);
  ASSERT_TRUE(base.dispersed);
  EXPECT_LT(fancy.time, base.time);
}

TEST(Runner, KsRequiresRootedPlacement) {
  const Graph g = makePath(20).build();
  const Placement p = clusteredPlacement(g, 10, 2, 3);
  EXPECT_THROW((void)runDispersion(g, p, {Algorithm::KsSync}), std::invalid_argument);
}

}  // namespace
}  // namespace disp
