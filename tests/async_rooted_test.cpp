// End-to-end tests for RootedAsyncDisp (Theorem 7.1): dispersion under
// every scheduler, the O(k log k) epoch shape, guest recruitment/see-off
// accounting, and the O(log(k+Δ)) memory bound.
#include <gtest/gtest.h>

#include <cmath>

#include "algo/async_rooted.hpp"
#include "algo/placement.hpp"
#include "core/metrics.hpp"
#include "graph/generators.hpp"
#include "graph/spec.hpp"

namespace disp {
namespace {

struct Case {
  std::string family;
  std::uint32_t n;
  std::uint32_t k;
  std::string scheduler;
};

std::string caseName(const ::testing::TestParamInfo<Case>& info) {
  return info.param.family + "_k" + std::to_string(info.param.k) + "_" +
         info.param.scheduler;
}

struct RunOut {
  RunOut(const Graph& g, std::uint32_t k, const std::string& sched, std::uint64_t seed)
      : placement(rootedPlacement(g, k, 0, seed)),
        engine(g, placement.positions, placement.ids,
               makeSchedulerByName(sched, k, seed * 31 + 5)),
        algo(engine) {
    algo.start();
    engine.run(/*maxActivations=*/80000000ULL);
  }
  Placement placement;
  AsyncEngine engine;
  RootedAsyncDispersion algo;
};

class AsyncRootedTest : public ::testing::TestWithParam<Case> {};

TEST_P(AsyncRootedTest, Disperses) {
  const auto& [family, n, k, sched] = GetParam();
  const Graph g = makeGraph(family, n, 77);
  RunOut run(g, k, sched, 3);
  EXPECT_TRUE(run.algo.dispersed()) << family << "/" << sched;
  EXPECT_TRUE(isDispersed(run.engine.positionsSnapshot()));
  EXPECT_EQ(run.algo.stats().forwardMoves, k - 1);
}

INSTANTIATE_TEST_SUITE_P(
    FamiliesAndSchedulers, AsyncRootedTest,
    ::testing::Values(Case{"path", 48, 48, "round_robin"},
                      Case{"path", 48, 48, "uniform"},
                      Case{"path", 48, 17, "weighted"},
                      Case{"cycle", 40, 40, "shuffled"},
                      Case{"star", 60, 60, "uniform"},
                      Case{"star", 60, 25, "round_robin"},
                      Case{"complete", 24, 24, "uniform"},
                      Case{"bintree", 63, 63, "shuffled"},
                      Case{"randtree", 60, 60, "uniform"},
                      Case{"grid", 49, 49, "weighted"},
                      Case{"er", 64, 64, "uniform"},
                      Case{"er", 64, 29, "shuffled"},
                      Case{"regular", 48, 48, "uniform"},
                      Case{"lollipop", 30, 30, "shuffled"},
                      Case{"hypercube", 32, 32, "uniform"},
                      Case{"wheel", 36, 36, "weighted"},
                      Case{"barbell", 30, 30, "uniform"},
                      Case{"caterpillar", 48, 48, "uniform"}),
    caseName);

TEST(AsyncRooted, TinyKValues) {
  for (std::uint32_t k = 1; k <= 6; ++k) {
    const Graph g = makeGraph("er", 20, 5);
    RunOut run(g, k, "uniform", k);
    EXPECT_TRUE(run.algo.dispersed()) << "k=" << k;
  }
}

TEST(AsyncRooted, GuestsAreRecruitedOnDenseGraphs) {
  // On a clique every probe of an occupied neighbor recruits a guest; the
  // doubling mechanism must kick in.
  const Graph g = makeComplete(24).build();
  RunOut run(g, 24, "uniform", 9);
  ASSERT_TRUE(run.algo.dispersed());
  EXPECT_GT(run.algo.stats().guestsRecruited, 0u);
  EXPECT_GT(run.algo.stats().seeOffSweeps, 0u);
}

TEST(AsyncRooted, ProbeIterationsLogarithmicOnStar) {
  // At the star hub with j settled leaves, finding an empty leaf takes
  // O(log j) iterations; summed over the run this stays well below the
  // sequential KS cost (which would be Θ(k) probes per step, Θ(k²) total).
  const std::uint32_t k = 64;
  const Graph g = makeStar(4 * k).build();
  RunOut run(g, k, "round_robin", 4);
  ASSERT_TRUE(run.algo.dispersed());
  const double perStep = static_cast<double>(run.algo.stats().probeIterations) /
                         static_cast<double>(run.algo.stats().probes);
  EXPECT_LE(perStep, 2.0 + std::log2(static_cast<double>(k)));
}

TEST(AsyncRooted, EpochsNearKLogK) {
  // Epoch count grows like k·log k (the paper's headline): the ratio
  // epochs/(k·log2 k) must not grow as k doubles.
  const Graph g = makeGraph("er", 400, 13);
  double prev = 0;
  for (std::uint32_t k : {32u, 64u, 128u}) {
    RunOut run(g, k, "round_robin", 6);
    ASSERT_TRUE(run.algo.dispersed()) << k;
    const double ratio = static_cast<double>(run.engine.epochs()) /
                         (k * std::log2(static_cast<double>(k)));
    if (prev > 0) {
      EXPECT_LT(ratio, prev * 1.6) << "k=" << k;
    }
    prev = ratio;
  }
}

TEST(AsyncRooted, MemoryLogarithmic) {
  const Graph g = makeGraph("er", 200, 15);
  RunOut run(g, 128, "uniform", 8);
  ASSERT_TRUE(run.algo.dispersed());
  const auto w = BitWidths::forRun(4ULL * 128, g.maxDegree(), 128);
  EXPECT_LE(run.engine.memory().maxBits(), 32ULL * (w.id + w.port + w.count));
}

TEST(AsyncRooted, DeterministicUnderRoundRobin) {
  const Graph g = makeGraph("grid", 49, 3);
  std::uint64_t first = 0;
  for (int rep = 0; rep < 2; ++rep) {
    RunOut run(g, 40, "round_robin", 11);
    ASSERT_TRUE(run.algo.dispersed());
    if (rep == 0) {
      first = run.engine.epochs();
    } else {
      EXPECT_EQ(run.engine.epochs(), first);
    }
  }
}

TEST(AsyncRooted, ManySchedulerSeeds) {
  // Interleaving fuzz: the uniform scheduler with different seeds produces
  // different activation orders; dispersion must hold for all of them.
  const Graph g = makeGraph("er", 40, 23);
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    RunOut run(g, 32, "uniform", seed);
    EXPECT_TRUE(run.algo.dispersed()) << "seed " << seed;
  }
}

TEST(AsyncRooted, FullOccupancyOnTree) {
  const Graph g = makeRandomTree(40, 3).build();
  RunOut run(g, 40, "shuffled", 2);
  ASSERT_TRUE(run.algo.dispersed());
  auto pos = run.engine.positionsSnapshot();
  std::sort(pos.begin(), pos.end());
  for (NodeId v = 0; v < 40; ++v) EXPECT_EQ(pos[v], v);
}

TEST(AsyncRooted, RejectsGeneralPlacement) {
  const Graph g = makePath(10).build();
  const Placement p = clusteredPlacement(g, 4, 2, 3);
  AsyncEngine engine(g, p.positions, p.ids, makeRoundRobinScheduler(4));
  EXPECT_THROW(RootedAsyncDispersion{engine}, std::invalid_argument);
}

}  // namespace
}  // namespace disp
