// End-to-end tests for the KS group-DFS baseline on both engines:
// dispersion correctness across graph families, k values and schedulers,
// plus the O(min{m, kΔ}) time shape.
#include <gtest/gtest.h>

#include "algo/baseline_ks.hpp"
#include "algo/placement.hpp"
#include "core/metrics.hpp"
#include "graph/generators.hpp"
#include "graph/spec.hpp"

namespace disp {
namespace {

struct Case {
  std::string family;
  std::uint32_t n;
  std::uint32_t k;
};

std::string caseName(const ::testing::TestParamInfo<Case>& info) {
  return info.param.family + "_n" + std::to_string(info.param.n) + "_k" +
         std::to_string(info.param.k);
}

class KsSyncTest : public ::testing::TestWithParam<Case> {};

TEST_P(KsSyncTest, DispersesRooted) {
  const auto& [family, n, k] = GetParam();
  const Graph g = makeGraph(family, n, 42);
  const Placement p = rootedPlacement(g, k, 0, 7);
  SyncEngine engine(g, p.positions, p.ids);
  KsSyncDispersion algo(engine);
  algo.start();
  engine.run(/*maxRounds=*/40ULL * (g.edgeCount() + 16) + 1000);
  EXPECT_TRUE(algo.dispersed()) << family;
  EXPECT_TRUE(isDispersed(engine.positionsSnapshot())) << family;
}

INSTANTIATE_TEST_SUITE_P(
    Families, KsSyncTest,
    ::testing::Values(Case{"path", 64, 64}, Case{"path", 64, 17}, Case{"cycle", 48, 48},
                      Case{"star", 50, 50}, Case{"star", 50, 9},
                      Case{"complete", 24, 24}, Case{"bintree", 63, 40},
                      Case{"randtree", 80, 80}, Case{"grid", 49, 30},
                      Case{"er", 60, 60}, Case{"regular", 48, 48},
                      Case{"lollipop", 30, 30}, Case{"hypercube", 32, 32},
                      Case{"wheel", 30, 12}, Case{"bipartite", 30, 30}),
    caseName);

TEST(KsSync, SingleAgentSettlesInstantly) {
  const Graph g = makePath(5).build();
  const Placement p = rootedPlacement(g, 1, 2, 1);
  SyncEngine engine(g, p.positions, p.ids);
  KsSyncDispersion algo(engine);
  algo.start();
  engine.run(10);
  EXPECT_TRUE(algo.dispersed());
  EXPECT_EQ(engine.round(), 0u);  // no movement needed
}

TEST(KsSync, TwoAgentsOneEdge) {
  const Graph g = makePath(2).build();
  const Placement p = rootedPlacement(g, 2, 0, 1);
  SyncEngine engine(g, p.positions, p.ids);
  KsSyncDispersion algo(engine);
  algo.start();
  engine.run(20);
  EXPECT_TRUE(algo.dispersed());
}

TEST(KsSync, FullOccupancyEqualsNodeCount) {
  // k == n on a tree: every node ends occupied.
  const Graph g = makeRandomTree(40, 9).build();
  const Placement p = rootedPlacement(g, 40, 0, 2);
  SyncEngine engine(g, p.positions, p.ids);
  KsSyncDispersion algo(engine);
  algo.start();
  engine.run(100000);
  EXPECT_TRUE(algo.dispersed());
  auto pos = engine.positionsSnapshot();
  std::sort(pos.begin(), pos.end());
  for (NodeId v = 0; v < 40; ++v) EXPECT_EQ(pos[v], v);
}

TEST(KsSync, TimeLinearInKOnPath) {
  // On a (long) path with k agents at one end the DFS is a straight walk:
  // rounds must scale ~linearly in k, independent of n.
  const Graph g = makePath(600).build();
  std::uint64_t r64 = 0, r256 = 0;
  for (std::uint32_t k : {64u, 256u}) {
    const Placement p = rootedPlacement(g, k, 0, 3);
    SyncEngine engine(g, p.positions, p.ids);
    KsSyncDispersion algo(engine);
    algo.start();
    engine.run(1000000);
    (k == 64 ? r64 : r256) = engine.round();
  }
  EXPECT_GT(r256, r64);
  EXPECT_LT(r256, 6 * r64);  // ~4x expected for 4x agents
}

TEST(KsSync, MemoryIsLogarithmic) {
  const Graph g = makeGraph("er", 128, 5);
  const Placement p = rootedPlacement(g, 128, 0, 5);
  SyncEngine engine(g, p.positions, p.ids);
  KsSyncDispersion algo(engine);
  algo.start();
  engine.run(1000000);
  // O(log(k+Δ)) bits: generous constant of 8 words of log-size.
  const auto w = BitWidths::forRun(4 * 128, g.maxDegree(), 128);
  EXPECT_LE(engine.memory().maxBits(), 8ULL * (w.id + w.port + w.count));
  EXPECT_GT(engine.memory().maxBits(), 0u);
}

TEST(KsSync, RejectsGeneralPlacement) {
  const Graph g = makePath(8).build();
  const Placement p = clusteredPlacement(g, 4, 2, 3);
  SyncEngine engine(g, p.positions, p.ids);
  EXPECT_THROW(KsSyncDispersion{engine}, std::invalid_argument);
}

// ----------------------------------------------------------------- ASYNC

struct AsyncCase {
  std::string family;
  std::uint32_t n;
  std::uint32_t k;
  std::string scheduler;
};

std::string asyncCaseName(const ::testing::TestParamInfo<AsyncCase>& info) {
  return info.param.family + "_k" + std::to_string(info.param.k) + "_" +
         info.param.scheduler;
}

class KsAsyncTest : public ::testing::TestWithParam<AsyncCase> {};

TEST_P(KsAsyncTest, DispersesRootedUnderScheduler) {
  const auto& [family, n, k, sched] = GetParam();
  const Graph g = makeGraph(family, n, 21);
  const Placement p = rootedPlacement(g, k, 0, 13);
  AsyncEngine engine(g, p.positions, p.ids, makeSchedulerByName(sched, k, 77));
  KsAsyncDispersion algo(engine);
  algo.start();
  engine.run(/*maxActivations=*/2000000ULL);
  EXPECT_TRUE(algo.dispersed()) << family << "/" << sched;
  EXPECT_TRUE(isDispersed(engine.positionsSnapshot()));
}

INSTANTIATE_TEST_SUITE_P(
    FamiliesAndSchedulers, KsAsyncTest,
    ::testing::Values(AsyncCase{"path", 40, 40, "round_robin"},
                      AsyncCase{"path", 40, 40, "uniform"},
                      AsyncCase{"star", 40, 40, "shuffled"},
                      AsyncCase{"star", 40, 17, "weighted"},
                      AsyncCase{"er", 48, 48, "uniform"},
                      AsyncCase{"er", 48, 20, "weighted"},
                      AsyncCase{"complete", 20, 20, "uniform"},
                      AsyncCase{"grid", 36, 36, "shuffled"},
                      AsyncCase{"randtree", 50, 50, "uniform"},
                      AsyncCase{"cycle", 30, 30, "weighted"},
                      AsyncCase{"lollipop", 24, 24, "uniform"},
                      AsyncCase{"bintree", 31, 31, "shuffled"}),
    asyncCaseName);

TEST(KsAsync, SingleAgent) {
  const Graph g = makePath(4).build();
  const Placement p = rootedPlacement(g, 1, 1, 1);
  AsyncEngine engine(g, p.positions, p.ids, makeRoundRobinScheduler(1));
  KsAsyncDispersion algo(engine);
  algo.start();
  engine.run(100);
  EXPECT_TRUE(algo.dispersed());
}

TEST(KsAsync, DeterministicUnderRoundRobin) {
  // Same seed + round-robin scheduler => identical epoch counts.
  const Graph g = makeGraph("er", 40, 31);
  std::uint64_t first = 0;
  for (int rep = 0; rep < 2; ++rep) {
    const Placement p = rootedPlacement(g, 40, 0, 9);
    AsyncEngine engine(g, p.positions, p.ids, makeRoundRobinScheduler(40));
    KsAsyncDispersion algo(engine);
    algo.start();
    engine.run(2000000);
    if (rep == 0) {
      first = engine.epochs();
    } else {
      EXPECT_EQ(engine.epochs(), first);
    }
  }
}

TEST(KsAsync, EpochsBoundedByEdgeWork) {
  // O(min{m, kΔ}) epochs with a moderate constant.
  const Graph g = makeGraph("er", 64, 3);
  const std::uint32_t k = 64;
  const Placement p = rootedPlacement(g, k, 0, 3);
  AsyncEngine engine(g, p.positions, p.ids, makeShuffledSweepScheduler(k, 5));
  KsAsyncDispersion algo(engine);
  algo.start();
  engine.run(20000000ULL);
  const std::uint64_t bound =
      std::min<std::uint64_t>(g.edgeCount(), std::uint64_t{k} * g.maxDegree());
  EXPECT_LE(engine.epochs(), 30 * bound + 100);
}

}  // namespace
}  // namespace disp
