// Tests for the graph substrate: CSR integrity, generators, the parsed
// GraphSpec grammar + family registry, port labelings (including the §8.2
// constrained labeling), file I/O (dpg / edge-list / Graphalytics, with
// path:line error context), algorithms.
#include <gtest/gtest.h>

#include <fstream>
#include <set>
#include <sstream>

#include "util/rng.hpp"

#include "graph/generators.hpp"
#include "graph/spec.hpp"
#include "graph/graph.hpp"
#include "graph/graph_algos.hpp"
#include "graph/graph_io.hpp"

namespace disp {
namespace {

TEST(GraphBuilder, RejectsSelfLoop) {
  GraphBuilder b(3);
  EXPECT_THROW(b.addEdge(1, 1), std::invalid_argument);
}

TEST(GraphBuilder, RejectsDuplicateEdge) {
  GraphBuilder b(3);
  b.addEdge(0, 1).addEdge(1, 2).addEdge(1, 0);
  EXPECT_THROW((void)b.build(), std::invalid_argument);
}

TEST(GraphBuilder, RejectsOutOfRange) {
  GraphBuilder b(2);
  EXPECT_THROW(b.addEdge(0, 5), std::invalid_argument);
}

TEST(Graph, TriangleStructure) {
  const Graph g = makeCycle(3).build();
  EXPECT_EQ(g.nodeCount(), 3u);
  EXPECT_EQ(g.edgeCount(), 3u);
  EXPECT_EQ(g.maxDegree(), 2u);
  for (NodeId v = 0; v < 3; ++v) {
    EXPECT_EQ(g.degree(v), 2u);
    // reverse ports return
    for (Port p = 1; p <= 2; ++p) {
      const NodeId u = g.neighbor(v, p);
      EXPECT_EQ(g.neighbor(u, g.reversePort(v, p)), v);
    }
  }
}

TEST(Graph, PortToFindsAndMisses) {
  const Graph g = makePath(4).build();
  EXPECT_NE(g.portTo(1, 2), kNoPort);
  EXPECT_EQ(g.portTo(0, 3), kNoPort);
}

TEST(Graph, EdgesListedOnce) {
  const Graph g = makeComplete(6).build();
  const auto es = g.edges();
  EXPECT_EQ(es.size(), 15u);
  std::set<std::pair<NodeId, NodeId>> seen;
  for (const auto& e : es) {
    EXPECT_LE(e.u, e.v);
    EXPECT_TRUE(seen.insert({e.u, e.v}).second);
  }
}

// ---------------------------------------------------------------- families

struct FamilyCase {
  std::string family;
  std::uint32_t n;
};

class FamilyTest : public ::testing::TestWithParam<FamilyCase> {};

TEST_P(FamilyTest, ConnectedAndValid) {
  const auto& [family, n] = GetParam();
  const Graph g = makeGraph(family, n, /*seed=*/12345);
  EXPECT_GE(g.nodeCount(), 2u) << family;
  EXPECT_TRUE(isConnected(g)) << family;
  EXPECT_NO_THROW(validateGraph(g)) << family;
}

TEST_P(FamilyTest, RandomLabelingPreservesStructure) {
  const auto& [family, n] = GetParam();
  const Graph a = makeGraph(family, n, 7, PortLabeling::InsertionOrder);
  const Graph b = makeGraph(family, n, 7, PortLabeling::RandomPermutation);
  EXPECT_EQ(a.nodeCount(), b.nodeCount());
  EXPECT_EQ(a.edgeCount(), b.edgeCount());
  for (NodeId v = 0; v < a.nodeCount(); ++v) {
    EXPECT_EQ(a.degree(v), b.degree(v));
    // Same neighbor multiset, possibly different port order.
    std::multiset<NodeId> na(a.neighbors(v).begin(), a.neighbors(v).end());
    std::multiset<NodeId> nb(b.neighbors(v).begin(), b.neighbors(v).end());
    EXPECT_EQ(na, nb);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllFamilies, FamilyTest,
    ::testing::Values(FamilyCase{"path", 50}, FamilyCase{"cycle", 50},
                      FamilyCase{"star", 50}, FamilyCase{"wheel", 50},
                      FamilyCase{"complete", 24}, FamilyCase{"bipartite", 30},
                      FamilyCase{"bintree", 63}, FamilyCase{"randtree", 80},
                      FamilyCase{"caterpillar", 60}, FamilyCase{"grid", 49},
                      FamilyCase{"hypercube", 32}, FamilyCase{"er", 100},
                      FamilyCase{"regular", 60}, FamilyCase{"lollipop", 40},
                      FamilyCase{"barbell", 36}),
    [](const auto& tpi) { return tpi.param.family; });

TEST(Generators, PathEndpointsDegreeOne) {
  const Graph g = makePath(10).build();
  EXPECT_EQ(g.degree(0), 1u);
  EXPECT_EQ(g.degree(9), 1u);
  for (NodeId v = 1; v < 9; ++v) EXPECT_EQ(g.degree(v), 2u);
}

TEST(Generators, StarDegrees) {
  const Graph g = makeStar(11).build();
  EXPECT_EQ(g.degree(0), 10u);
  EXPECT_EQ(g.maxDegree(), 10u);
  for (NodeId v = 1; v < 11; ++v) EXPECT_EQ(g.degree(v), 1u);
}

TEST(Generators, GridSizes) {
  const Graph g = makeGrid(4, 5).build();
  EXPECT_EQ(g.nodeCount(), 20u);
  EXPECT_EQ(g.edgeCount(), 4u * 4 + 5u * 3);  // 31 edges
  EXPECT_EQ(g.maxDegree(), 4u);
}

TEST(Generators, HypercubeRegular) {
  const Graph g = makeHypercube(4).build();
  EXPECT_EQ(g.nodeCount(), 16u);
  for (NodeId v = 0; v < 16; ++v) EXPECT_EQ(g.degree(v), 4u);
}

TEST(Generators, RandomRegularDegrees) {
  const Graph g = makeRandomRegular(30, 4, 99).build();
  for (NodeId v = 0; v < 30; ++v) EXPECT_EQ(g.degree(v), 4u);
  EXPECT_TRUE(isConnected(g));
}

TEST(Generators, RandomTreeIsTree) {
  const Graph g = makeRandomTree(200, 5).build();
  EXPECT_EQ(g.edgeCount(), 199u);
  EXPECT_TRUE(isConnected(g));
}

TEST(Generators, ErdosRenyiAlwaysConnected) {
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    const Graph g = makeErdosRenyiConnected(60, 0.02, seed).build();
    EXPECT_TRUE(isConnected(g)) << "seed " << seed;
  }
}

TEST(Generators, LollipopShape) {
  const Graph g = makeLollipop(20, 8).build();
  EXPECT_EQ(g.nodeCount(), 20u);
  EXPECT_EQ(g.edgeCount(), 8u * 7 / 2 + 12u);
  EXPECT_TRUE(isConnected(g));
}

TEST(Generators, BarbellShape) {
  const Graph g = makeBarbell(5, 4).build();
  EXPECT_EQ(g.nodeCount(), 14u);
  EXPECT_TRUE(isConnected(g));
  EXPECT_EQ(g.edgeCount(), 2u * 10 + 5u);
}

TEST(Generators, BadParamsThrow) {
  EXPECT_THROW((void)makeCycle(2), std::invalid_argument);
  EXPECT_THROW((void)makeRandomRegular(9, 3, 1), std::invalid_argument);  // odd n*d
  EXPECT_THROW((void)makeGraph("nope", 10, 0), std::invalid_argument);
}

// ------------------------------------------------------------- labelings

TEST(Labeling, RandomPermutationDiffersAcrossSeeds) {
  const GraphBuilder b = makeStar(40);
  const Graph g1 = b.build(PortLabeling::RandomPermutation, 1);
  const Graph g2 = b.build(PortLabeling::RandomPermutation, 2);
  bool differs = false;
  for (Port p = 1; p <= g1.degree(0); ++p) differs |= g1.neighbor(0, p) != g2.neighbor(0, p);
  EXPECT_TRUE(differs);
}

class ConstrainedLabelingTest : public ::testing::TestWithParam<FamilyCase> {};

TEST_P(ConstrainedLabelingTest, SatisfiesSection82) {
  const auto& [family, n] = GetParam();
  const Graph g = makeGraph(family, n, 31337, PortLabeling::Constrained);
  EXPECT_TRUE(satisfiesConstrainedLabeling(g)) << family;
  EXPECT_NO_THROW(validateGraph(g));
}

INSTANTIATE_TEST_SUITE_P(
    Feasible, ConstrainedLabelingTest,
    ::testing::Values(FamilyCase{"path", 40}, FamilyCase{"cycle", 40},
                      FamilyCase{"star", 40}, FamilyCase{"randtree", 60},
                      FamilyCase{"er", 80}, FamilyCase{"bintree", 31},
                      FamilyCase{"caterpillar", 40}, FamilyCase{"lollipop", 30}),
    [](const auto& tpi) { return tpi.param.family; });

TEST(Labeling, K4HasNoConstrainedLabeling) {
  // K4: 4 degree-3 nodes need 8 low-port slots but only 6 edges exist.
  EXPECT_THROW((void)makeComplete(4).build(PortLabeling::Constrained, 1),
               std::invalid_argument);
}

TEST(Labeling, GridHasNoConstrainedLabeling) {
  // Reproduction finding (documented in DESIGN.md): a 6x6 grid has 32 nodes
  // of degree >= 3 needing 64 low-port slots, but only 60 edges — so the
  // §8.2 assumption excludes 2D grids entirely.
  EXPECT_THROW((void)makeGrid(6, 6).build(PortLabeling::Constrained, 1),
               std::invalid_argument);
}

TEST(Labeling, K5ConstrainedIsTightButFeasible) {
  const Graph g = makeComplete(5).build(PortLabeling::Constrained, 1);
  EXPECT_TRUE(satisfiesConstrainedLabeling(g));
}

TEST(Labeling, RandomLabelingUsuallyViolatesConstraint) {
  // Sanity check that the validator actually discriminates: on a clique a
  // random labeling almost surely has some (low, low) edge.
  const Graph g = makeComplete(12).build(PortLabeling::RandomPermutation, 3);
  EXPECT_FALSE(satisfiesConstrainedLabeling(g));
}

// ------------------------------------------------------------------- io

TEST(GraphIo, RoundTripPreservesPorts) {
  const Graph g = makeGraph("er", 50, 77, PortLabeling::RandomPermutation);
  std::stringstream ss;
  writeGraph(ss, g);
  const Graph h = readGraph(ss);
  ASSERT_EQ(g.nodeCount(), h.nodeCount());
  ASSERT_EQ(g.edgeCount(), h.edgeCount());
  for (NodeId v = 0; v < g.nodeCount(); ++v) {
    ASSERT_EQ(g.degree(v), h.degree(v));
    for (Port p = 1; p <= g.degree(v); ++p) {
      EXPECT_EQ(g.neighbor(v, p), h.neighbor(v, p));
      EXPECT_EQ(g.reversePort(v, p), h.reversePort(v, p));
    }
  }
}

// Asserts that parsing fails and the error names source:line (the
// satellite requirement: loader errors must be actionable).
template <typename Fn>
void expectParseError(Fn&& fn, const std::string& needle) {
  try {
    fn();
    FAIL() << "expected std::invalid_argument mentioning '" << needle << "'";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << "message was: " << e.what();
  }
}

TEST(GraphIo, RejectsGarbage) {
  std::stringstream ss("not a graph");
  expectParseError([&] { (void)readGraph(ss, "bad.dpg"); }, "bad.dpg:1");
}

TEST(GraphIo, DpgErrorsNameSourceAndLine) {
  // Duplicate edge on line 3.
  std::stringstream dup("dpg 3 3\n0 1 1 1\n1 2 0 1\n");
  expectParseError([&] { (void)readGraph(dup, "x.dpg"); },
                   "x.dpg:3: duplicate edge 1-0");
  // Port 0 is out of range (ports are 1-based; degree is implied by the
  // max port, so 0 is the only possible out-of-range value).
  std::stringstream badPort("dpg 3 2\n0 1 1 0\n0 2 2 1\n");
  expectParseError([&] { (void)readGraph(badPort, "y.dpg"); },
                   "y.dpg:2: port 0 out of range");
  // A port above the edge count leaves lower ports missing.
  std::stringstream gapPort("dpg 3 2\n0 1 1 3\n0 2 2 1\n");
  expectParseError([&] { (void)readGraph(gapPort, "y2.dpg"); },
                   "node 1 is missing port 1");
  // Duplicate port at one node.
  std::stringstream dupPort("dpg 3 2\n0 1 1 1\n0 1 2 1\n");
  expectParseError([&] { (void)readGraph(dupPort, "z.dpg"); },
                   "z.dpg:3: duplicate port 1 at node 0");
  // Truncated file: header promises 3 edges, body has 1.
  std::stringstream trunc("dpg 3 3\n0 1 1 1\n");
  expectParseError([&] { (void)readGraph(trunc, "t.dpg"); }, "t.dpg: truncated");
  // Node out of range.
  std::stringstream range("dpg 2 1\n0 1 7 1\n");
  expectParseError([&] { (void)readGraph(range, "r.dpg"); }, "r.dpg:2: node out of range");
}

TEST(GraphIo, LoadGraphNamesPathOnMissingFile) {
  expectParseError([] { (void)loadGraph("/nonexistent/g.dpg"); },
                   "/nonexistent/g.dpg");
}

// ------------------------------------------------------------- edge lists

TEST(GraphIo, EdgeListParsesCommentsAndSparseIds) {
  std::stringstream ss(
      "# a 4-cycle with a chord, sparse ids\n"
      "% percent comments too\n"
      "10 20\n"
      "20 400\n"
      "400 7\n"
      "7 10\n"
      "\n"
      "10 400\n");
  const Graph g = readEdgeList(ss, "tiny.el");
  EXPECT_EQ(g.nodeCount(), 4u);  // ids {7,10,20,400} -> 0..3
  EXPECT_EQ(g.edgeCount(), 5u);
  EXPECT_TRUE(isConnected(g));
  EXPECT_NO_THROW(validateGraph(g));
  // Sorted-id remap: id 7 -> node 0 (degree 2), id 400 -> node 3 (degree 3).
  EXPECT_EQ(g.degree(3), 3u);
}

TEST(GraphIo, EdgeListIsDeterministic) {
  const auto load = [](const std::string& text) {
    std::stringstream ss(text);
    return readEdgeList(ss, "x.el");
  };
  // Same edges, different line order -> identical ports.
  const Graph a = load("0 1\n1 2\n2 3\n3 0\n");
  const Graph b = load("3 0\n2 3\n0 1\n1 2\n");
  ASSERT_EQ(a.nodeCount(), b.nodeCount());
  for (NodeId v = 0; v < a.nodeCount(); ++v) {
    ASSERT_EQ(a.degree(v), b.degree(v));
    for (Port p = 1; p <= a.degree(v); ++p) {
      EXPECT_EQ(a.neighbor(v, p), b.neighbor(v, p));
      EXPECT_EQ(a.reversePort(v, p), b.reversePort(v, p));
    }
  }
}

TEST(GraphIo, EdgeListErrorsNameSourceAndLine) {
  std::stringstream selfLoop("0 1\n2 2\n");
  expectParseError([&] { (void)readEdgeList(selfLoop, "a.el"); },
                   "a.el:2: self-loop");
  std::stringstream dup("0 1\n1 2\n# c\n1 0\n");
  expectParseError([&] { (void)readEdgeList(dup, "b.el"); },
                   "b.el:4: duplicate edge");
  std::stringstream arity("0 1 2\n");
  expectParseError([&] { (void)readEdgeList(arity, "c.el"); }, "c.el:1");
  std::stringstream alpha("0 x\n");
  expectParseError([&] { (void)readEdgeList(alpha, "d.el"); },
                   "d.el:1: non-numeric node id 'x'");
  std::stringstream disconnected("0 1\n2 3\n");
  expectParseError([&] { (void)readEdgeList(disconnected, "e.el"); },
                   "e.el: graph is not connected");
  std::stringstream empty("# nothing\n");
  expectParseError([&] { (void)readEdgeList(empty, "f.el"); }, "f.el: no edges");
}

// ------------------------------------------------------------ graphalytics

TEST(GraphIo, GraphalyticsPairMapsVertexFileOrder) {
  std::stringstream vs("100\n200\n300\n400\n");
  std::stringstream es("100 200 1.5\n200 300\n300 400 0.25\n400 100\n");
  const Graph g = readGraphalytics(vs, es, "t.v", "t.e");
  EXPECT_EQ(g.nodeCount(), 4u);
  EXPECT_EQ(g.edgeCount(), 4u);
  EXPECT_TRUE(isConnected(g));
  for (NodeId v = 0; v < 4; ++v) EXPECT_EQ(g.degree(v), 2u);
}

TEST(GraphIo, GraphalyticsErrorsNameSourceAndLine) {
  {
    std::stringstream vs("100\n100\n");
    std::stringstream es("");
    expectParseError([&] { (void)readGraphalytics(vs, es, "v.v", "v.e"); },
                     "v.v:2: duplicate vertex id 100");
  }
  {
    std::stringstream vs("1\n2\n");
    std::stringstream es("1 9\n");
    expectParseError([&] { (void)readGraphalytics(vs, es, "w.v", "w.e"); },
                     "w.e:1: unknown vertex id '9'");
  }
  {
    std::stringstream vs("1\n2\n3\n");
    std::stringstream es("1 2\n1 2\n");
    expectParseError([&] { (void)readGraphalytics(vs, es, "x.v", "x.e"); },
                     "x.e:2: duplicate edge");
  }
}

TEST(GraphIo, FixtureFilesLoadThroughSniffer) {
  const std::string dir = std::string(DISP_SOURCE_DIR) + "/tests/data/";
  const Graph el = loadAnyGraph(dir + "tiny.el");
  EXPECT_EQ(el.nodeCount(), 16u);
  EXPECT_TRUE(isConnected(el));
  EXPECT_NO_THROW(validateGraph(el));

  // Either half of the .v/.e pair addresses the same graph.
  const Graph viaV = loadAnyGraph(dir + "tiny.v");
  const Graph viaE = loadAnyGraph(dir + "tiny.e");
  EXPECT_EQ(viaV.nodeCount(), 10u);
  EXPECT_EQ(viaV.nodeCount(), viaE.nodeCount());
  EXPECT_EQ(viaV.edgeCount(), viaE.edgeCount());
  EXPECT_TRUE(isConnected(viaV));

  // dpg sniffing: save a generator graph, reload through loadAnyGraph.
  const Graph er = makeGraph("er", 40, 11);
  const std::string path = ::testing::TempDir() + "sniff.dpg";
  saveGraph(path, er);
  const Graph back = loadAnyGraph(path);
  EXPECT_EQ(back.nodeCount(), er.nodeCount());
  EXPECT_EQ(back.edgeCount(), er.edgeCount());
}

// -------------------------------------------------------------- GraphSpec

TEST(GraphSpec, LegacyFamilyNamesAreAliases) {
  for (const std::string& family : graphFamilyKeys()) {
    const GraphSpec spec = GraphSpec::parse(family);
    EXPECT_EQ(spec.family(), family);
    EXPECT_EQ(spec.toString(), family);
    EXPECT_FALSE(spec.isFile());
    EXPECT_FALSE(spec.sizeBound());  // bare aliases take their size from context
  }
}

TEST(GraphSpec, ExplicitParametersDriveGenerators) {
  const Graph grid = makeGraph("grid:rows=4,cols=5", 0, 1,
                               PortLabeling::InsertionOrder);
  EXPECT_EQ(grid.nodeCount(), 20u);
  EXPECT_EQ(grid.maxDegree(), 4u);

  const Graph er = makeGraph("er:n=64,p=0.2", 0, 3);
  EXPECT_EQ(er.nodeCount(), 64u);
  EXPECT_TRUE(isConnected(er));

  const Graph lolly = makeGraph("lollipop:n=32,clique=8", 0, 1);
  EXPECT_EQ(lolly.nodeCount(), 32u);

  // n= pins the size regardless of the context argument.
  EXPECT_EQ(makeGraph("path:n=9", 50, 1).nodeCount(), 9u);
  EXPECT_TRUE(GraphSpec::parse("grid:rows=4,cols=5").sizeBound());
  EXPECT_TRUE(GraphSpec::parse("er:n=64").sizeBound());
  EXPECT_FALSE(GraphSpec::parse("er:p=0.1").sizeBound());
}

TEST(GraphSpec, ParseRejectsMalformedSpecs) {
  expectParseError([] { (void)GraphSpec::parse("nope"); }, "unknown graph family");
  expectParseError([] { (void)GraphSpec::parse("er:q=1"); }, "no parameter 'q'");
  expectParseError([] { (void)GraphSpec::parse("er:n=abc"); }, "not a number");
  // strtod-accepted forms that are not plain integers must fail at use, not
  // silently truncate ("1e3" -> 1).
  expectParseError([] { (void)makeGraph("er:n=1e3", 0, 1); },
                   "not a 32-bit unsigned integer");
  expectParseError([] { (void)makeGraph("grid:rows=1e1,cols=10", 0, 1); },
                   "not a 32-bit unsigned integer");
  expectParseError([] { (void)GraphSpec::parse("er:n"); }, "not key=value");
  expectParseError([] { (void)GraphSpec::parse("er:n=1,n=2"); }, "duplicate");
  expectParseError([] { (void)GraphSpec::parse("grid:rows=4"); },
                   "must be given together");
  expectParseError([] { (void)GraphSpec::parse("file:"); }, "needs a path");
  expectParseError([] { (void)GraphSpec::parse(""); }, "empty spec");
}

namespace {
/// True iff {u, v} is an edge (port scan; fine for test-sized graphs).
bool adjacent(const Graph& g, NodeId u, NodeId v) {
  for (Port p = 1; p <= g.degree(u); ++p) {
    if (g.neighbor(u, p) == v) return true;
  }
  return false;
}
}  // namespace

TEST(GraphSpec, LollipopRoundTripsAndHasCliquePlusPath) {
  const std::string canon = GraphSpec::parse("lollipop:n=032,clique=8").toString();
  EXPECT_EQ(canon, "lollipop:clique=8,n=32");
  EXPECT_EQ(GraphSpec::parse(canon).toString(), canon);

  const std::uint32_t n = 32, c = 8;
  const Graph g = makeGraph("lollipop:clique=8,n=32", 0, 1);
  EXPECT_EQ(g.nodeCount(), n);
  // m = C(c,2) clique edges + (n - c) path edges.
  EXPECT_EQ(g.edgeCount(), std::uint64_t{c} * (c - 1) / 2 + (n - c));
  EXPECT_TRUE(isConnected(g));
  // Clique nodes are pairwise adjacent; the glue node c-1 also starts the
  // path, so its degree is c, the rest c-1.
  for (NodeId u = 0; u < c; ++u) {
    for (NodeId v = u + 1; v < c; ++v) EXPECT_TRUE(adjacent(g, u, v)) << u << "," << v;
    EXPECT_EQ(g.degree(u), u == c - 1 ? c : c - 1) << u;
  }
  // Path chain c-1 — c — ... — n-1; interior degree 2, tail degree 1.
  for (NodeId i = c; i < n; ++i) {
    EXPECT_TRUE(adjacent(g, i - 1, i)) << i;
    EXPECT_EQ(g.degree(i), i == n - 1 ? 1u : 2u) << i;
  }
}

TEST(GraphSpec, ExpanderRoundTripsAndIsRegularConnected) {
  EXPECT_EQ(GraphSpec::parse("expander").toString(), "expander");
  const std::string canon = GraphSpec::parse("expander:d=06").toString();
  EXPECT_EQ(canon, "expander:d=6");
  EXPECT_EQ(GraphSpec::parse(canon).toString(), canon);
  expectParseError([] { (void)GraphSpec::parse("expander:q=1"); },
                   "no parameter 'q'");

  // Structure invariants: exactly d-regular, simple (CSR validation), and
  // connected via the built-in Hamiltonian shift-1 cycle.
  const Graph g = makeGraph("expander:d=6", 60, 5);
  EXPECT_EQ(g.nodeCount(), 60u);
  EXPECT_EQ(g.edgeCount(), std::uint64_t{60} * 6 / 2);
  for (NodeId v = 0; v < g.nodeCount(); ++v) EXPECT_EQ(g.degree(v), 6u) << v;
  EXPECT_TRUE(isConnected(g));
  for (NodeId v = 0; v < g.nodeCount(); ++v) {
    EXPECT_TRUE(adjacent(g, v, (v + 1) % 60)) << v;  // the cycle shift
  }

  // Bare family name: default d = 8, size from context; tiny contexts are
  // padded up to the n >= 2d feasibility floor.
  const Graph dflt = makeGraph("expander", 64, 9);
  EXPECT_EQ(dflt.nodeCount(), 64u);
  EXPECT_EQ(dflt.maxDegree(), 8u);
  EXPECT_EQ(makeGraph("expander", 4, 9).nodeCount(), 16u);

  // Seed-deterministic: the same seed reproduces the same shift set.
  const Graph a = makeGraph("expander:d=6", 40, 7);
  const Graph b = makeGraph("expander:d=6", 40, 7);
  for (NodeId u = 0; u < 40; ++u) {
    for (NodeId v = u + 1; v < 40; ++v) {
      EXPECT_EQ(adjacent(a, u, v), adjacent(b, u, v)) << u << "," << v;
    }
  }
}

TEST(Generators, ExpanderRejectsInfeasibleParameters) {
  EXPECT_THROW((void)makeExpander(10, 6, 1), std::invalid_argument);  // n < 2d
  EXPECT_THROW((void)makeExpander(20, 5, 1), std::invalid_argument);  // d odd
  EXPECT_THROW((void)makeExpander(20, 2, 1), std::invalid_argument);  // d < 4
}

TEST(GraphSpec, BarbellRoundTripsAndHasTwoCliquesJoinedByAPath) {
  const std::string canon = GraphSpec::parse("barbell:path=04,clique=6").toString();
  EXPECT_EQ(canon, "barbell:clique=6,path=4");
  EXPECT_EQ(GraphSpec::parse(canon).toString(), canon);

  const std::uint32_t c = 6, len = 4;
  const Graph g = makeGraph(canon, 0, 1);
  const std::uint32_t c2 = c + len;  // start of the second clique
  EXPECT_EQ(g.nodeCount(), 2 * c + len);
  // m = 2 C(c,2) + the path's len+1 connecting edges.
  EXPECT_EQ(g.edgeCount(), 2ULL * c * (c - 1) / 2 + len + 1);
  EXPECT_TRUE(isConnected(g));
  for (NodeId u = 0; u < c; ++u) {
    for (NodeId v = u + 1; v < c; ++v) {
      EXPECT_TRUE(adjacent(g, u, v)) << "clique1 " << u << "," << v;
      EXPECT_TRUE(adjacent(g, c2 + u, c2 + v)) << "clique2 " << u << "," << v;
    }
  }
  // Bridge chain: c-1 — c — ... — c+len-1 — c2; every interior bridge node
  // has degree 2 and removing any bridge edge disconnects the cliques.
  EXPECT_TRUE(adjacent(g, c - 1, c));
  for (NodeId i = c; i + 1 < c2; ++i) {
    EXPECT_TRUE(adjacent(g, i, i + 1)) << i;
    EXPECT_EQ(g.degree(i), 2u) << i;
  }
  EXPECT_TRUE(adjacent(g, c2 - 1, c2));
  // Clique anchors carry the one extra bridge port.
  EXPECT_EQ(g.degree(c - 1), c);
  EXPECT_EQ(g.degree(c2), c);
}

TEST(GraphSpec, CanonicalFormSortsAndNormalizes) {
  EXPECT_EQ(GraphSpec::parse("grid:rows=08,cols=4").toString(),
            "grid:cols=4,rows=8");
  EXPECT_EQ(GraphSpec::parse("er:p=0.25,n=64").toString(), "er:n=64,p=0.25");
  EXPECT_EQ(GraphSpec::parse("file:/data/g.e").toString(), "file:/data/g.e");
}

TEST(GraphSpec, InstanceKeyTracksWhatTheSpecConsumes) {
  const GraphSpec unbound = GraphSpec::parse("er");
  EXPECT_NE(unbound.instanceKey(64, 1), unbound.instanceKey(128, 1));
  EXPECT_NE(unbound.instanceKey(64, 1), unbound.instanceKey(64, 2));
  const GraphSpec pinned = GraphSpec::parse("grid:rows=8,cols=8");
  EXPECT_EQ(pinned.instanceKey(64, 1), pinned.instanceKey(128, 1));  // no context n
  EXPECT_NE(pinned.instanceKey(64, 1), pinned.instanceKey(64, 2));   // labeling seed
  const GraphSpec file = GraphSpec::parse("file:x.el");
  EXPECT_EQ(file.instanceKey(64, 1), file.instanceKey(128, 2));  // fully pinned
}

// parse ↔ print round-trip fuzz over the whole registry: random parameter
// subsets in random order must reach a canonical fixpoint.
TEST(GraphSpec, RoundTripFuzz) {
  Rng rng(20260729);
  for (int iter = 0; iter < 400; ++iter) {
    const auto& defs = graphFamilyRegistry();
    const GraphFamilyDef& def = defs[rng.below(defs.size())];
    std::vector<std::string> parts;
    const bool useSizeGroup = !def.sizeParams.empty() && rng.chance(0.5);
    for (const std::string& param : def.params) {
      const bool isSize = std::find(def.sizeParams.begin(), def.sizeParams.end(),
                                    param) != def.sizeParams.end();
      if (isSize ? useSizeGroup : rng.chance(0.5)) {
        const std::string value =
            param == "p" ? "0.25" : std::to_string(1 + rng.below(512));
        parts.push_back(param + "=" + value);
      }
    }
    if (rng.chance(0.5)) parts.push_back("n=" + std::to_string(8 + rng.below(1024)));
    rng.shuffle(parts);
    std::string text = def.key;
    for (std::size_t i = 0; i < parts.size(); ++i) {
      text += (i == 0 ? ":" : ",") + parts[i];
    }
    const std::string canon = GraphSpec::parse(text).toString();
    EXPECT_EQ(GraphSpec::parse(canon).toString(), canon) << "from: " << text;
    EXPECT_EQ(GraphSpec::parse(canon).family(), def.key);
  }
}

TEST(GraphSpec, RegisterGraphFamilyExtensionPoint) {
  static bool registered = false;
  if (!registered) {
    registered = true;
    registerGraphFamily(
        {"doublestar",
         "two stars joined at their hubs (test-only)",
         {"left"},
         {},
         [](const GraphSpec& s, std::uint32_t n, std::uint64_t) {
           const std::uint32_t left = s.u32("left", n / 2);
           GraphBuilder b(n);
           for (std::uint32_t i = 2; i < n; ++i) b.addEdge(i < left ? 0 : 1, i);
           b.addEdge(0, 1);
           return b;
         }});
  }
  const Graph g = makeGraph("doublestar:left=6", 12, 5);
  EXPECT_EQ(g.nodeCount(), 12u);
  EXPECT_TRUE(isConnected(g));
  // Duplicate / reserved keys are rejected.
  EXPECT_THROW(registerGraphFamily({"doublestar", "", {}, {}, nullptr}),
               std::invalid_argument);
  EXPECT_THROW(registerGraphFamily(
                   {"file", "", {}, {},
                    [](const GraphSpec&, std::uint32_t n, std::uint64_t) {
                      return GraphBuilder(n);
                    }}),
               std::invalid_argument);
}

// ------------------------------------------------------------ algorithms

TEST(GraphAlgos, BfsDistancesOnPath) {
  const Graph g = makePath(6).build();
  const auto d = bfsDistances(g, 0);
  for (NodeId v = 0; v < 6; ++v) EXPECT_EQ(d[v], v);
}

TEST(GraphAlgos, DiameterKnownValues) {
  EXPECT_EQ(diameter(makePath(10).build()), 9u);
  EXPECT_EQ(diameter(makeCycle(10).build()), 5u);
  EXPECT_EQ(diameter(makeStar(10).build()), 2u);
  EXPECT_EQ(diameter(makeComplete(10).build()), 1u);
  EXPECT_EQ(diameter(makeHypercube(5).build()), 5u);
}

TEST(GraphAlgos, PeripheralNodeOnPathIsEndpoint) {
  const NodeId p = peripheralNode(makePath(9).build());
  EXPECT_TRUE(p == 0 || p == 8);
}

TEST(GraphAlgos, PortOrderDfsSpans) {
  const Graph g = makeGraph("er", 40, 3);
  const auto parent = portOrderDfsTree(g, 0);
  for (NodeId v = 0; v < g.nodeCount(); ++v) {
    EXPECT_NE(parent[v], kInvalidNode) << "unreached node " << v;
  }
  EXPECT_EQ(parent[0], 0u);
}

}  // namespace
}  // namespace disp
