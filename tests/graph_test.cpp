// Tests for the graph substrate: CSR integrity, generators, port labelings
// (including the §8.2 constrained labeling), I/O round-trips, algorithms.
#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "graph/graph_algos.hpp"
#include "graph/graph_io.hpp"

namespace disp {
namespace {

TEST(GraphBuilder, RejectsSelfLoop) {
  GraphBuilder b(3);
  EXPECT_THROW(b.addEdge(1, 1), std::invalid_argument);
}

TEST(GraphBuilder, RejectsDuplicateEdge) {
  GraphBuilder b(3);
  b.addEdge(0, 1).addEdge(1, 2).addEdge(1, 0);
  EXPECT_THROW((void)b.build(), std::invalid_argument);
}

TEST(GraphBuilder, RejectsOutOfRange) {
  GraphBuilder b(2);
  EXPECT_THROW(b.addEdge(0, 5), std::invalid_argument);
}

TEST(Graph, TriangleStructure) {
  const Graph g = makeCycle(3).build();
  EXPECT_EQ(g.nodeCount(), 3u);
  EXPECT_EQ(g.edgeCount(), 3u);
  EXPECT_EQ(g.maxDegree(), 2u);
  for (NodeId v = 0; v < 3; ++v) {
    EXPECT_EQ(g.degree(v), 2u);
    // reverse ports return
    for (Port p = 1; p <= 2; ++p) {
      const NodeId u = g.neighbor(v, p);
      EXPECT_EQ(g.neighbor(u, g.reversePort(v, p)), v);
    }
  }
}

TEST(Graph, PortToFindsAndMisses) {
  const Graph g = makePath(4).build();
  EXPECT_NE(g.portTo(1, 2), kNoPort);
  EXPECT_EQ(g.portTo(0, 3), kNoPort);
}

TEST(Graph, EdgesListedOnce) {
  const Graph g = makeComplete(6).build();
  const auto es = g.edges();
  EXPECT_EQ(es.size(), 15u);
  std::set<std::pair<NodeId, NodeId>> seen;
  for (const auto& e : es) {
    EXPECT_LE(e.u, e.v);
    EXPECT_TRUE(seen.insert({e.u, e.v}).second);
  }
}

// ---------------------------------------------------------------- families

struct FamilyCase {
  std::string family;
  std::uint32_t n;
};

class FamilyTest : public ::testing::TestWithParam<FamilyCase> {};

TEST_P(FamilyTest, ConnectedAndValid) {
  const auto& [family, n] = GetParam();
  const Graph g = makeFamily({family, n, /*seed=*/12345});
  EXPECT_GE(g.nodeCount(), 2u) << family;
  EXPECT_TRUE(isConnected(g)) << family;
  EXPECT_NO_THROW(validateGraph(g)) << family;
}

TEST_P(FamilyTest, RandomLabelingPreservesStructure) {
  const auto& [family, n] = GetParam();
  const Graph a = makeFamily({family, n, 7, PortLabeling::InsertionOrder});
  const Graph b = makeFamily({family, n, 7, PortLabeling::RandomPermutation});
  EXPECT_EQ(a.nodeCount(), b.nodeCount());
  EXPECT_EQ(a.edgeCount(), b.edgeCount());
  for (NodeId v = 0; v < a.nodeCount(); ++v) {
    EXPECT_EQ(a.degree(v), b.degree(v));
    // Same neighbor multiset, possibly different port order.
    std::multiset<NodeId> na(a.neighbors(v).begin(), a.neighbors(v).end());
    std::multiset<NodeId> nb(b.neighbors(v).begin(), b.neighbors(v).end());
    EXPECT_EQ(na, nb);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllFamilies, FamilyTest,
    ::testing::Values(FamilyCase{"path", 50}, FamilyCase{"cycle", 50},
                      FamilyCase{"star", 50}, FamilyCase{"wheel", 50},
                      FamilyCase{"complete", 24}, FamilyCase{"bipartite", 30},
                      FamilyCase{"bintree", 63}, FamilyCase{"randtree", 80},
                      FamilyCase{"caterpillar", 60}, FamilyCase{"grid", 49},
                      FamilyCase{"hypercube", 32}, FamilyCase{"er", 100},
                      FamilyCase{"regular", 60}, FamilyCase{"lollipop", 40},
                      FamilyCase{"barbell", 36}),
    [](const auto& tpi) { return tpi.param.family; });

TEST(Generators, PathEndpointsDegreeOne) {
  const Graph g = makePath(10).build();
  EXPECT_EQ(g.degree(0), 1u);
  EXPECT_EQ(g.degree(9), 1u);
  for (NodeId v = 1; v < 9; ++v) EXPECT_EQ(g.degree(v), 2u);
}

TEST(Generators, StarDegrees) {
  const Graph g = makeStar(11).build();
  EXPECT_EQ(g.degree(0), 10u);
  EXPECT_EQ(g.maxDegree(), 10u);
  for (NodeId v = 1; v < 11; ++v) EXPECT_EQ(g.degree(v), 1u);
}

TEST(Generators, GridSizes) {
  const Graph g = makeGrid(4, 5).build();
  EXPECT_EQ(g.nodeCount(), 20u);
  EXPECT_EQ(g.edgeCount(), 4u * 4 + 5u * 3);  // 31 edges
  EXPECT_EQ(g.maxDegree(), 4u);
}

TEST(Generators, HypercubeRegular) {
  const Graph g = makeHypercube(4).build();
  EXPECT_EQ(g.nodeCount(), 16u);
  for (NodeId v = 0; v < 16; ++v) EXPECT_EQ(g.degree(v), 4u);
}

TEST(Generators, RandomRegularDegrees) {
  const Graph g = makeRandomRegular(30, 4, 99).build();
  for (NodeId v = 0; v < 30; ++v) EXPECT_EQ(g.degree(v), 4u);
  EXPECT_TRUE(isConnected(g));
}

TEST(Generators, RandomTreeIsTree) {
  const Graph g = makeRandomTree(200, 5).build();
  EXPECT_EQ(g.edgeCount(), 199u);
  EXPECT_TRUE(isConnected(g));
}

TEST(Generators, ErdosRenyiAlwaysConnected) {
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    const Graph g = makeErdosRenyiConnected(60, 0.02, seed).build();
    EXPECT_TRUE(isConnected(g)) << "seed " << seed;
  }
}

TEST(Generators, LollipopShape) {
  const Graph g = makeLollipop(20, 8).build();
  EXPECT_EQ(g.nodeCount(), 20u);
  EXPECT_EQ(g.edgeCount(), 8u * 7 / 2 + 12u);
  EXPECT_TRUE(isConnected(g));
}

TEST(Generators, BarbellShape) {
  const Graph g = makeBarbell(5, 4).build();
  EXPECT_EQ(g.nodeCount(), 14u);
  EXPECT_TRUE(isConnected(g));
  EXPECT_EQ(g.edgeCount(), 2u * 10 + 5u);
}

TEST(Generators, BadParamsThrow) {
  EXPECT_THROW((void)makeCycle(2), std::invalid_argument);
  EXPECT_THROW((void)makeRandomRegular(9, 3, 1), std::invalid_argument);  // odd n*d
  EXPECT_THROW((void)makeFamily({"nope", 10, 0}), std::invalid_argument);
}

// ------------------------------------------------------------- labelings

TEST(Labeling, RandomPermutationDiffersAcrossSeeds) {
  const GraphBuilder b = makeStar(40);
  const Graph g1 = b.build(PortLabeling::RandomPermutation, 1);
  const Graph g2 = b.build(PortLabeling::RandomPermutation, 2);
  bool differs = false;
  for (Port p = 1; p <= g1.degree(0); ++p) differs |= g1.neighbor(0, p) != g2.neighbor(0, p);
  EXPECT_TRUE(differs);
}

class ConstrainedLabelingTest : public ::testing::TestWithParam<FamilyCase> {};

TEST_P(ConstrainedLabelingTest, SatisfiesSection82) {
  const auto& [family, n] = GetParam();
  const Graph g = makeFamily({family, n, 31337, PortLabeling::Constrained});
  EXPECT_TRUE(satisfiesConstrainedLabeling(g)) << family;
  EXPECT_NO_THROW(validateGraph(g));
}

INSTANTIATE_TEST_SUITE_P(
    Feasible, ConstrainedLabelingTest,
    ::testing::Values(FamilyCase{"path", 40}, FamilyCase{"cycle", 40},
                      FamilyCase{"star", 40}, FamilyCase{"randtree", 60},
                      FamilyCase{"er", 80}, FamilyCase{"bintree", 31},
                      FamilyCase{"caterpillar", 40}, FamilyCase{"lollipop", 30}),
    [](const auto& tpi) { return tpi.param.family; });

TEST(Labeling, K4HasNoConstrainedLabeling) {
  // K4: 4 degree-3 nodes need 8 low-port slots but only 6 edges exist.
  EXPECT_THROW((void)makeComplete(4).build(PortLabeling::Constrained, 1),
               std::invalid_argument);
}

TEST(Labeling, GridHasNoConstrainedLabeling) {
  // Reproduction finding (documented in DESIGN.md): a 6x6 grid has 32 nodes
  // of degree >= 3 needing 64 low-port slots, but only 60 edges — so the
  // §8.2 assumption excludes 2D grids entirely.
  EXPECT_THROW((void)makeGrid(6, 6).build(PortLabeling::Constrained, 1),
               std::invalid_argument);
}

TEST(Labeling, K5ConstrainedIsTightButFeasible) {
  const Graph g = makeComplete(5).build(PortLabeling::Constrained, 1);
  EXPECT_TRUE(satisfiesConstrainedLabeling(g));
}

TEST(Labeling, RandomLabelingUsuallyViolatesConstraint) {
  // Sanity check that the validator actually discriminates: on a clique a
  // random labeling almost surely has some (low, low) edge.
  const Graph g = makeComplete(12).build(PortLabeling::RandomPermutation, 3);
  EXPECT_FALSE(satisfiesConstrainedLabeling(g));
}

// ------------------------------------------------------------------- io

TEST(GraphIo, RoundTripPreservesPorts) {
  const Graph g = makeFamily({"er", 50, 77, PortLabeling::RandomPermutation});
  std::stringstream ss;
  writeGraph(ss, g);
  const Graph h = readGraph(ss);
  ASSERT_EQ(g.nodeCount(), h.nodeCount());
  ASSERT_EQ(g.edgeCount(), h.edgeCount());
  for (NodeId v = 0; v < g.nodeCount(); ++v) {
    ASSERT_EQ(g.degree(v), h.degree(v));
    for (Port p = 1; p <= g.degree(v); ++p) {
      EXPECT_EQ(g.neighbor(v, p), h.neighbor(v, p));
      EXPECT_EQ(g.reversePort(v, p), h.reversePort(v, p));
    }
  }
}

TEST(GraphIo, RejectsGarbage) {
  std::stringstream ss("not a graph");
  EXPECT_THROW((void)readGraph(ss), std::invalid_argument);
}

// ------------------------------------------------------------ algorithms

TEST(GraphAlgos, BfsDistancesOnPath) {
  const Graph g = makePath(6).build();
  const auto d = bfsDistances(g, 0);
  for (NodeId v = 0; v < 6; ++v) EXPECT_EQ(d[v], v);
}

TEST(GraphAlgos, DiameterKnownValues) {
  EXPECT_EQ(diameter(makePath(10).build()), 9u);
  EXPECT_EQ(diameter(makeCycle(10).build()), 5u);
  EXPECT_EQ(diameter(makeStar(10).build()), 2u);
  EXPECT_EQ(diameter(makeComplete(10).build()), 1u);
  EXPECT_EQ(diameter(makeHypercube(5).build()), 5u);
}

TEST(GraphAlgos, PeripheralNodeOnPathIsEndpoint) {
  const NodeId p = peripheralNode(makePath(9).build());
  EXPECT_TRUE(p == 0 || p == 8);
}

TEST(GraphAlgos, PortOrderDfsSpans) {
  const Graph g = makeFamily({"er", 40, 3});
  const auto parent = portOrderDfsTree(g, 0);
  for (NodeId v = 0; v < g.nodeCount(); ++v) {
    EXPECT_NE(parent[v], kInvalidNode) << "unreached node " << v;
  }
  EXPECT_EQ(parent[0], 0u);
}

}  // namespace
}  // namespace disp
