// Guard rails for the simulator hot-path data structures (see DESIGN.md
// "Hot-path data structures"):
//  * a randomized occupancy fuzz test replaying thousands of moves against
//    a naive reference model — positions, pins, sorted agentsAt() views,
//    O(1) counts and totalMoves must match after every step;
//  * an AsyncEngine epoch regression pinned to the values the epoch-stamp
//    accounting must reproduce exactly (epochs are simulation facts).
#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <vector>

#include "algo/placement.hpp"
#include "algo/runner.hpp"
#include "core/world.hpp"
#include "graph/generators.hpp"
#include "graph/spec.hpp"

namespace disp {
namespace {

// ------------------------------------------------- occupancy fuzz

/// The obviously-correct model the optimized World must agree with.
struct NaiveOccupancy {
  std::vector<NodeId> pos;
  std::vector<Port> pin;
  std::vector<std::vector<AgentIx>> at;
  std::uint64_t moves = 0;

  NaiveOccupancy(const Graph& g, const std::vector<NodeId>& start)
      : pos(start), pin(start.size(), kNoPort), at(g.nodeCount()) {
    for (AgentIx a = 0; a < pos.size(); ++a) at[pos[a]].push_back(a);
    for (auto& v : at) std::sort(v.begin(), v.end());
  }

  void move(const Graph& g, AgentIx a, Port p) {
    const NodeId from = pos[a];
    const NodeId to = g.neighbor(from, p);
    auto& f = at[from];
    f.erase(std::find(f.begin(), f.end(), a));
    auto& t = at[to];
    t.insert(std::upper_bound(t.begin(), t.end(), a), a);
    pos[a] = to;
    pin[a] = g.reversePort(from, p);
    ++moves;
  }
};

std::vector<AgentId> seqIds(std::uint32_t k) {
  std::vector<AgentId> ids(k);
  for (std::uint32_t i = 0; i < k; ++i) ids[i] = i + 1;
  return ids;
}

void fuzzWorld(const Graph& g, std::uint32_t k, std::uint32_t steps,
               std::uint32_t querySkip, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::vector<NodeId> start(k);
  for (auto& v : start) v = static_cast<NodeId>(rng() % g.nodeCount());

  World world(g, start, seqIds(k));
  NaiveOccupancy ref(g, start);

  for (std::uint32_t step = 0; step < steps; ++step) {
    const auto a = static_cast<AgentIx>(rng() % k);
    const Port deg = g.degree(world.positionOf(a));
    ASSERT_GE(deg, 1u);  // families used here are connected
    const Port p = 1 + static_cast<Port>(rng() % deg);
    world.applyMove(a, p);
    ref.move(g, a, p);

    ASSERT_EQ(world.totalMoves(), ref.moves);
    ASSERT_EQ(world.positionOf(a), ref.pos[a]);
    ASSERT_EQ(world.pinOf(a), ref.pin[a]);
    // Exercise the lazy view machinery under every access pattern: query
    // only an occasional node most steps (so pending logs pile up and
    // overflow into full rebuilds), and everything every querySkip steps.
    const NodeId touched = ref.pos[a];
    ASSERT_EQ(world.countAt(touched), ref.at[touched].size());
    if (step % querySkip == querySkip - 1) {
      for (NodeId v = 0; v < g.nodeCount(); ++v) {
        ASSERT_EQ(world.countAt(v), ref.at[v].size()) << "node " << v;
        const std::vector<AgentIx>& view = world.agentsAt(v);
        ASSERT_TRUE(std::is_sorted(view.begin(), view.end())) << "node " << v;
        ASSERT_EQ(view, ref.at[v]) << "node " << v;
      }
    }
  }
  // Final full sweep regardless of step count.
  for (NodeId v = 0; v < g.nodeCount(); ++v) {
    ASSERT_EQ(world.agentsAt(v), ref.at[v]) << "node " << v;
  }
}

TEST(WorldOccupancyFuzz, DenseGraphManyCollisions) {
  const Graph g = makeGraph("complete", 12, 3);
  fuzzWorld(g, 12, 6000, 7, 0xfeedULL);
}

TEST(WorldOccupancyFuzz, SparsePathLongChains) {
  const Graph g = makeGraph("path", 40, 5);
  fuzzWorld(g, 25, 6000, 13, 0xbeefULL);
}

TEST(WorldOccupancyFuzz, ErMidDensityEveryStepChecked) {
  const Graph g = makeGraph("er", 64, 11);
  // querySkip=1: the sorted views are validated after every single move,
  // so the log-replay path (small pending batches) is covered too.
  fuzzWorld(g, 48, 2500, 1, 0x1234ULL);
}

TEST(WorldOccupancyFuzz, BurstyGroupMoves) {
  // Group bursts: many agents funneled through the same node, stressing
  // log overflow -> full rebuild -> reverse-detection.
  const Graph g = makeGraph("star", 24, 9);
  fuzzWorld(g, 24, 8000, 11, 0x5eedULL);
}

// --------------------------------------------- epoch regression

struct EpochCase {
  Algorithm algo;
  const char* family;
  std::uint32_t k;
  std::uint32_t clusters;
  const char* scheduler;
  std::uint64_t seed;
  std::uint64_t epochs;
  std::uint64_t activations;
  std::uint64_t moves;
};

// Pinned to the values produced by the pre-overhaul engine (std::fill epoch
// accounting, vector-of-vectors occupancy).  Epochs / activations / moves
// are simulation facts: any drift here is a correctness bug, not a perf
// regression.
constexpr EpochCase kEpochCases[] = {
    {Algorithm::RootedAsync, "er", 64, 1, "round_robin", 5, 707ULL, 45202ULL, 3948ULL},
    {Algorithm::RootedAsync, "er", 96, 1, "uniform", 23, 428ULL, 212222ULL, 7726ULL},
    {Algorithm::KsAsync, "star", 32, 1, "round_robin", 11, 62ULL, 1958ULL, 961ULL},
    {Algorithm::GeneralAsync, "er", 64, 4, "weighted", 9, 219ULL, 131341ULL, 4662ULL},
    {Algorithm::GeneralAsync, "grid", 128, 16, "shuffled", 9, 2262ULL, 289524ULL,
     21931ULL},
    {Algorithm::KsAsync, "complete", 64, 1, "uniform", 5, 101ULL, 29190ULL, 2588ULL},
};

TEST(AsyncEpochRegression, EpochStampAccountingMatchesPinnedValues) {
  for (const EpochCase& c : kEpochCases) {
    const Graph g = makeGraph(c.family, 2 * c.k, c.seed);
    const Placement p = c.clusters == 1
                            ? rootedPlacement(g, c.k, 0, c.seed)
                            : clusteredPlacement(g, c.k, c.clusters, c.seed);
    const RunResult r = runDispersion(g, p, {c.algo, c.scheduler, c.seed});
    const std::string what = std::string(algorithmName(c.algo)) + " " + c.family +
                             " k=" + std::to_string(c.k) + " sched=" + c.scheduler;
    EXPECT_TRUE(r.dispersed) << what;
    EXPECT_EQ(r.time, c.epochs) << what;
    EXPECT_EQ(r.activations, c.activations) << what;
    EXPECT_EQ(r.totalMoves, c.moves) << what;
  }
}

}  // namespace
}  // namespace disp
