// Tests for the fault-injection axis (core/faults.hpp, DESIGN.md §11):
// FaultSpec grammar round-trips, seed-deterministic schedules, engine
// integration verdicts (recovery, cap-as-verdict, protocol-error capture)
// and the faults="none" zero-overhead parity contract.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <stdexcept>
#include <vector>

#include "algo/runner.hpp"
#include "core/faults.hpp"
#include "graph/generators.hpp"
#include "graph/spec.hpp"
#include "util/rng.hpp"

namespace disp {
namespace {

// ------------------------------------------------------------ spec grammar

TEST(FaultSpec, ParsesEveryKind) {
  EXPECT_EQ(FaultSpec::parse("none").kind(), FaultSpec::Kind::None);
  EXPECT_FALSE(FaultSpec::parse("none").any());

  const FaultSpec crash = FaultSpec::parse("crash:rate=0.25,restart=64");
  EXPECT_EQ(crash.kind(), FaultSpec::Kind::Crash);
  EXPECT_DOUBLE_EQ(crash.rate(), 0.25);
  EXPECT_EQ(crash.restart(), 64u);
  EXPECT_EQ(crash.window(), 0u);  // auto

  const FaultSpec churn = FaultSpec::parse("churn:edges=4,every=32,count=3");
  EXPECT_EQ(churn.kind(), FaultSpec::Kind::Churn);
  EXPECT_EQ(churn.edges(), 4u);
  EXPECT_EQ(churn.every(), 32u);
  EXPECT_EQ(churn.count(), 3u);
  EXPECT_EQ(FaultSpec::parse("churn:edges=1,every=5").count(), 8u);  // default

  const FaultSpec silent = FaultSpec::parse("silent:count=2");
  EXPECT_EQ(silent.kind(), FaultSpec::Kind::Silent);
  EXPECT_EQ(silent.count(), 2u);
}

TEST(FaultSpec, ToStringIsCanonicalAndRoundTrips) {
  // Parameters print in sorted key order; integer values normalize.
  EXPECT_EQ(FaultSpec::parse("crash:restart=064,rate=0.25").toString(),
            "crash:rate=0.25,restart=64");
  EXPECT_EQ(FaultSpec::parse("churn:count=3,every=32,edges=4").toString(),
            "churn:count=3,edges=4,every=32");
  EXPECT_EQ(FaultSpec::parse("none").toString(), "none");
  for (const char* s : {"none", "crash:rate=0.5", "crash:rate=1,restart=2",
                        "crash:rate=0.1,window=100", "churn:edges=2,every=7",
                        "silent:count=5"}) {
    const std::string canon = FaultSpec::parse(s).toString();
    EXPECT_EQ(FaultSpec::parse(canon).toString(), canon) << s;
    EXPECT_EQ(FaultSpec::parse(canon), FaultSpec::parse(s)) << s;
  }
}

TEST(FaultSpec, RejectsMalformedSpecs) {
  const char* bad[] = {
      "",                            // empty
      "meteor:rate=1",               // unknown kind
      "none:x=1",                    // none takes no parameters
      "crash",                       // missing required rate
      "crash:restart=4",             // missing required rate
      "crash:rate=0",                // rate out of (0, 1]
      "crash:rate=1.5",              // rate out of (0, 1]
      "crash:rate=abc",              // non-numeric
      "crash:rate=0.5,rate=0.5",     // duplicate
      "crash:rate=0.5,bogus=1",      // unknown parameter
      "crash:rate=0.5,restart=0",    // restart must be >= 1
      "crash:rate=0.5,window=0",     // window must be >= 1
      "churn:edges=4",               // missing every
      "churn:every=4",               // missing edges
      "churn:edges=0,every=4",       // edges must be >= 1
      "churn:edges=4,every=0",       // every must be >= 1
      "churn:edges=4,every=4,count=0",     // count must be >= 1
      "churn:edges=4,every=4,count=5000",  // count capped at 4096
      "silent",                      // missing count
      "silent:count=0",              // count must be >= 1
  };
  for (const char* s : bad) {
    EXPECT_THROW((void)FaultSpec::parse(s), std::invalid_argument) << "'" << s << "'";
  }
}

// parse ↔ print round-trip fuzz (mirrors GraphSpec::RoundTripFuzz): random
// parameter subsets in random order must reach a canonical fixpoint.
TEST(FaultSpec, RoundTripFuzz) {
  Rng rng(20260807);
  const char* rates[] = {"0.1", "0.25", "0.5", "0.75", "1"};
  for (int iter = 0; iter < 400; ++iter) {
    std::vector<std::string> parts;
    std::string head;
    switch (rng.below(3)) {
      case 0:
        head = "crash";
        parts.push_back(std::string("rate=") + rates[rng.below(5)]);
        if (rng.chance(0.5)) {
          parts.push_back("restart=" + std::to_string(1 + rng.below(512)));
        }
        if (rng.chance(0.5)) {
          parts.push_back("window=" + std::to_string(1 + rng.below(512)));
        }
        break;
      case 1:
        head = "churn";
        parts.push_back("edges=" + std::to_string(1 + rng.below(64)));
        parts.push_back("every=" + std::to_string(1 + rng.below(128)));
        if (rng.chance(0.5)) {
          parts.push_back("count=" + std::to_string(1 + rng.below(32)));
        }
        break;
      default:
        head = "silent";
        parts.push_back("count=" + std::to_string(1 + rng.below(64)));
        break;
    }
    rng.shuffle(parts);
    std::string text = head;
    for (std::size_t i = 0; i < parts.size(); ++i) {
      text += (i == 0 ? ":" : ",") + parts[i];
    }
    const std::string canon = FaultSpec::parse(text).toString();
    EXPECT_EQ(FaultSpec::parse(canon).toString(), canon) << "from: " << text;
    EXPECT_EQ(FaultSpec::parse(canon), FaultSpec::parse(text)) << "from: " << text;
  }
}

// ------------------------------------------------------- schedule material

TEST(FaultInjector, ScheduleIsSeedDeterministic) {
  const Graph g = makeGraph("er:n=64,p=0.1", 0, 7);
  const FaultSpec spec = FaultSpec::parse("crash:rate=0.5,restart=16");
  const FaultInjector a(spec, g, 32, 42, /*async=*/false);
  const FaultInjector b(spec, g, 32, 42, /*async=*/false);
  ASSERT_FALSE(a.schedule().empty());
  EXPECT_EQ(a.schedule(), b.schedule());

  const FaultInjector c(spec, g, 32, 43, /*async=*/false);
  EXPECT_NE(a.schedule(), c.schedule());  // seed drives the schedule
}

TEST(FaultInjector, ScheduleIsTimeSortedAndCrashPairsWithRestart) {
  const Graph g = makeGraph("er:n=64,p=0.1", 0, 7);
  const FaultSpec spec = FaultSpec::parse("crash:rate=1,restart=20,window=10");
  const FaultInjector inj(spec, g, 16, 5, /*async=*/false);
  const auto& sched = inj.schedule();
  // rate=1: every agent crashes exactly once and restarts 20 units later.
  ASSERT_EQ(sched.size(), 32u);
  for (std::size_t i = 1; i < sched.size(); ++i) {
    EXPECT_LE(sched[i - 1].time, sched[i].time) << i;
  }
  std::uint64_t crashAt[16] = {};
  int crashes = 0, restarts = 0;
  for (const FaultEvent& e : sched) {
    if (e.type == FaultEvent::Type::Crash) {
      ++crashes;
      crashAt[e.agent] = e.time;
      EXPECT_GE(e.time, 1u);
      EXPECT_LE(e.time, 10u);  // inside the explicit window
    } else {
      ASSERT_EQ(e.type, FaultEvent::Type::Restart);
      ++restarts;
      EXPECT_EQ(e.time, crashAt[e.agent] + 20);
    }
  }
  EXPECT_EQ(crashes, 16);
  EXPECT_EQ(restarts, 16);
}

TEST(FaultInjector, AsyncScheduleScalesTimesByK) {
  const Graph g = makeGraph("er:n=64,p=0.1", 0, 7);
  const FaultSpec spec = FaultSpec::parse("crash:rate=1,restart=3,window=4");
  const std::uint32_t k = 16;
  const FaultInjector inj(spec, g, k, 5, /*async=*/true);
  for (const FaultEvent& e : inj.schedule()) {
    if (e.type == FaultEvent::Type::Crash) {
      EXPECT_LE(e.time, 1 + 4u * k);  // window scaled by k
    }
  }
}

TEST(FaultInjector, ChurnRestoresEveryEdgeAtTheEnd) {
  const Graph g = makeGraph("er:n=64,p=0.1", 0, 7);
  const FaultSpec spec = FaultSpec::parse("churn:edges=4,every=10,count=3");
  const FaultInjector inj(spec, g, 16, 9, /*async=*/false);
  const auto& sched = inj.schedule();
  ASSERT_EQ(sched.size(), 3u);
  for (std::uint32_t i = 0; i < 3; ++i) {
    EXPECT_EQ(sched[i].type, FaultEvent::Type::ChurnSet);
    EXPECT_EQ(sched[i].time, (i + 1) * 10u);
    EXPECT_EQ(sched[i].churnIndex, i);
  }
  EXPECT_FALSE(inj.churnSet(0).empty());
  EXPECT_TRUE(inj.churnSet(2).empty());  // final event restores all edges
}

TEST(FaultInjector, SilentRequiresFewerVictimsThanAgents) {
  const Graph g = makeGraph("er:n=16,p=0.3", 0, 7);
  const FaultSpec spec = FaultSpec::parse("silent:count=8");
  const FaultInjector ok(spec, g, 9, 1, /*async=*/false);
  std::set<AgentIx> victims;
  for (const FaultEvent& e : ok.schedule()) {
    EXPECT_EQ(e.type, FaultEvent::Type::Silent);
    EXPECT_EQ(e.time, 0u);
    victims.insert(e.agent);
  }
  EXPECT_EQ(victims.size(), 8u);  // distinct
  EXPECT_THROW((FaultInjector(spec, g, 8, 1, false)), std::invalid_argument);
}

// --------------------------------------------------------- session verdicts

TEST(FaultSession, AsyncCrashRestartSelfStabilizes) {
  RunOptions opts;
  opts.algorithm = "rooted_async";
  opts.seed = 17;
  opts.limit = 200000;
  opts.faults = "crash:rate=0.25,restart=64";
  const RunResult r = runScenario("er", "rooted", 24, opts);
  EXPECT_TRUE(r.dispersed);
  EXPECT_TRUE(r.recovered);
  EXPECT_FALSE(r.limitHit);
  EXPECT_GT(r.faultsInjected, 0u);
  EXPECT_GE(r.recoveredAt, 1u);
  EXPECT_TRUE(r.protocolError.empty());
}

TEST(FaultSession, CrashStopHitsTheCapAsAVerdictNotAnError) {
  RunOptions opts;
  opts.algorithm = "rooted_async";
  opts.seed = 17;
  opts.limit = 50000;
  opts.faults = "crash:rate=0.25";  // no restart: crash-stop
  const RunResult r = runScenario("er", "rooted", 24, opts);
  EXPECT_TRUE(r.limitHit);  // reported, not thrown
  EXPECT_FALSE(r.recovered);
  EXPECT_FALSE(r.dispersed);
  EXPECT_GT(r.faultsInjected, 0u);
}

TEST(FaultSession, SyncProtocolInvariantViolationIsReported) {
  // SYNC group protocols desync their belief when staged moves are dropped;
  // their internal invariants trip.  Under faults that is a robustness
  // verdict (protocolError), never a throw.
  RunOptions opts;
  opts.algorithm = "rooted_sync";
  opts.seed = 17;
  opts.limit = 4000;
  opts.faults = "crash:rate=0.25,restart=64";
  const RunResult r = runScenario("er", "rooted", 24, opts);
  EXPECT_FALSE(r.protocolError.empty());
  EXPECT_FALSE(r.recovered);
  EXPECT_FALSE(r.dispersed);
}

TEST(FaultSession, SilentAgentsPreventDispersionButNotTheRun) {
  RunOptions opts;
  opts.algorithm = "rooted_async";
  opts.seed = 17;
  opts.limit = 50000;
  opts.faults = "silent:count=2";
  const RunResult r = runScenario("er", "rooted", 24, opts);
  EXPECT_EQ(r.faultsInjected, 2u);
  EXPECT_TRUE(r.limitHit);
  EXPECT_FALSE(r.recovered);
}

TEST(FaultSession, FaultRunsAreSeedDeterministic) {
  const auto runOnce = [](const char* algo) {
    RunOptions opts;
    opts.algorithm = algo;
    opts.seed = 11;
    opts.limit = 200000;
    opts.faults = "crash:rate=0.3,restart=32";
    return runScenario("er", "rooted", 20, opts);
  };
  for (const char* algo : {"rooted_async", "ks_async"}) {
    const RunResult a = runOnce(algo);
    const RunResult b = runOnce(algo);
    EXPECT_EQ(a.dispersed, b.dispersed) << algo;
    EXPECT_EQ(a.time, b.time) << algo;
    EXPECT_EQ(a.totalMoves, b.totalMoves) << algo;
    EXPECT_EQ(a.finalPositions, b.finalPositions) << algo;
    EXPECT_EQ(a.recovered, b.recovered) << algo;
    EXPECT_EQ(a.recoveredAt, b.recoveredAt) << algo;
    EXPECT_EQ(a.faultsInjected, b.faultsInjected) << algo;
  }
}

TEST(FaultSession, FaultTraceEventsAreEmittedAndTimeSorted) {
  RunOptions opts;
  opts.algorithm = "rooted_async";
  opts.seed = 17;
  opts.limit = 200000;
  opts.faults = "crash:rate=0.5,restart=32";
  std::vector<TraceEvent> events;
  opts.onEvent = [&events](const TraceEvent& e) { events.push_back(e); };
  const RunResult r = runScenario("er", "rooted", 24, opts);
  std::uint64_t crashes = 0, restarts = 0, lastT = 0;
  for (const TraceEvent& e : events) {
    EXPECT_GE(e.time, lastT);
    lastT = e.time;
    if (e.kind == TraceEventKind::FaultCrash) ++crashes;
    if (e.kind == TraceEventKind::FaultRestart) ++restarts;
  }
  EXPECT_EQ(crashes + restarts, r.faultsInjected);
  EXPECT_EQ(crashes, restarts);  // every crash-restart pair fired
  EXPECT_GT(crashes, 0u);
}

// -------------------------------------------------- zero-overhead parity

TEST(FaultSession, NoneIsByteIdenticalToDefaultOptions) {
  for (const char* algo : {"rooted_sync", "general_sync", "ks_sync",
                           "rooted_async", "general_async", "ks_async"}) {
    RunOptions plain;
    plain.algorithm = algo;
    plain.seed = 9;
    const RunResult a = runScenario("er", "rooted", 24, plain);

    RunOptions none = plain;
    none.faults = "none";
    const RunResult b = runScenario("er", "rooted", 24, none);

    EXPECT_EQ(a.dispersed, b.dispersed) << algo;
    EXPECT_EQ(a.time, b.time) << algo;
    EXPECT_EQ(a.activations, b.activations) << algo;
    EXPECT_EQ(a.totalMoves, b.totalMoves) << algo;
    EXPECT_EQ(a.maxMemoryBits, b.maxMemoryBits) << algo;
    EXPECT_EQ(a.finalPositions, b.finalPositions) << algo;
    // Fault-free verdicts: recovery mirrors dispersal, nothing injected.
    EXPECT_EQ(b.recovered, b.dispersed) << algo;
    EXPECT_EQ(b.recoveredAt, 0u) << algo;
    EXPECT_EQ(b.faultsInjected, 0u) << algo;
    EXPECT_FALSE(b.limitHit) << algo;
  }
}

}  // namespace
}  // namespace disp
