// Tests for GeneralSyncDispersion: general initial configurations (ℓ
// groups) with KS subsumption, plus the ℓ = 1 rooted mode that doubles as
// the Sudo-style O(k log k) baseline.
#include <gtest/gtest.h>

#include <cmath>

#include "algo/general_sync.hpp"
#include "algo/placement.hpp"
#include "core/metrics.hpp"
#include "graph/generators.hpp"
#include "graph/spec.hpp"

namespace disp {
namespace {

struct Case {
  std::string family;
  std::uint32_t n;
  std::uint32_t k;
  std::uint32_t clusters;
};

std::string caseName(const ::testing::TestParamInfo<Case>& info) {
  return info.param.family + "_k" + std::to_string(info.param.k) + "_l" +
         std::to_string(info.param.clusters);
}

struct RunOut {
  RunOut(const Graph& g, std::uint32_t k, std::uint32_t clusters, std::uint64_t seed)
      : placement(clusteredPlacement(g, k, clusters, seed)),
        engine(g, placement.positions, placement.ids),
        algo(engine) {
    algo.start();
    engine.run(/*maxRounds=*/5000ULL * k * 2 + 400000);
  }
  Placement placement;
  SyncEngine engine;
  GeneralSyncDispersion algo;
};

class GeneralSyncTest : public ::testing::TestWithParam<Case> {};

TEST_P(GeneralSyncTest, Disperses) {
  const auto& [family, n, k, clusters] = GetParam();
  const Graph g = makeGraph(family, n, 51);
  RunOut run(g, k, clusters, 13);
  EXPECT_TRUE(run.algo.dispersed()) << family << " l=" << clusters;
  EXPECT_TRUE(isDispersed(run.engine.positionsSnapshot()));
  EXPECT_EQ(run.algo.groupCount(), clusters);
}

INSTANTIATE_TEST_SUITE_P(
    Configurations, GeneralSyncTest,
    ::testing::Values(Case{"path", 64, 48, 1}, Case{"path", 64, 48, 2},
                      Case{"path", 64, 48, 4}, Case{"er", 64, 48, 2},
                      Case{"er", 64, 48, 6}, Case{"er", 64, 48, 12},
                      Case{"star", 60, 40, 3}, Case{"grid", 64, 48, 4},
                      Case{"randtree", 70, 50, 5}, Case{"cycle", 48, 36, 3},
                      Case{"complete", 24, 20, 4}, Case{"bintree", 63, 44, 4},
                      Case{"regular", 48, 40, 8}, Case{"lollipop", 36, 28, 2},
                      Case{"hypercube", 64, 48, 4}, Case{"caterpillar", 60, 40, 6}),
    caseName);

TEST(GeneralSync, AlreadyDispersedConfigurationTerminatesImmediately) {
  const Graph g = makeGraph("er", 50, 7);
  const Placement p = scatteredPlacement(g, 30, 5);
  SyncEngine engine(g, p.positions, p.ids);
  GeneralSyncDispersion algo(engine);
  algo.start();
  engine.run(10000);
  EXPECT_TRUE(algo.dispersed());
  EXPECT_LE(engine.round(), 2u);  // nothing to do
}

TEST(GeneralSync, TwoSingletonGroups) {
  const Graph g = makePath(6).build();
  const Placement p = clusteredPlacement(g, 2, 2, 9);
  SyncEngine engine(g, p.positions, p.ids);
  GeneralSyncDispersion algo(engine);
  algo.start();
  engine.run(10000);
  EXPECT_TRUE(algo.dispersed());
}

TEST(GeneralSync, MeetingsHappenWhenGroupsCollide) {
  // Two groups starting on different leaves of a star must both route
  // through the hub, so whichever settles it second meets the other tree;
  // one tree subsumes the other and dispersion still completes.
  const Graph g = makeStar(40).build();
  Placement p;
  for (std::uint32_t i = 0; i < 40; ++i) {
    p.positions.push_back(i < 26 ? 1 : 2);
  }
  p.ids = randomIds(40, 3);
  SyncEngine engine(g, p.positions, p.ids);
  GeneralSyncDispersion algo(engine);
  algo.start();
  engine.run(1000000);
  EXPECT_TRUE(algo.dispersed());
  EXPECT_GE(algo.stats().meetings, 1u);
  EXPECT_GE(algo.stats().subsumptions, 1u);
}

TEST(GeneralSync, RootedModeIsKLogKShaped) {
  // ℓ = 1: the helper-doubling baseline.  epochs/(k log k) must stay
  // roughly flat as k doubles (this is the Sudo-style bound).
  const Graph g = makeGraph("er", 500, 3);
  double prev = 0;
  for (std::uint32_t k : {64u, 128u, 256u}) {
    const Placement p = rootedPlacement(g, k, 0, 5);
    SyncEngine engine(g, p.positions, p.ids);
    GeneralSyncDispersion algo(engine);
    algo.start();
    engine.run(50000000ULL);
    ASSERT_TRUE(algo.dispersed()) << k;
    const double ratio = static_cast<double>(engine.round()) /
                         (k * std::log2(static_cast<double>(k)));
    if (prev > 0) {
      EXPECT_LT(ratio, prev * 1.6) << k;
    }
    prev = ratio;
  }
}

TEST(GeneralSync, ManySeeds) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const Graph g = makeGraph("er", 48, seed);
    RunOut run(g, 36, 3, seed);
    EXPECT_TRUE(run.algo.dispersed()) << "seed " << seed;
  }
}

TEST(GeneralSync, ClusterSweepOnOneGraph) {
  const Graph g = makeGraph("er", 60, 17);
  for (std::uint32_t l : {1u, 2u, 3u, 5u, 8u, 16u, 40u}) {
    RunOut run(g, 40, l, 23);
    EXPECT_TRUE(run.algo.dispersed()) << "l=" << l;
  }
}

TEST(GeneralSync, Seed3GridFrozenAbsorbRegression) {
  // Pinned repro of the seed-dependent round-cap divergence the exp driver
  // surfaced (`disp_bench table1_sync_general --seeds=3`, grid k=64 ℓ=8):
  // a fully dispersed group absorbed a marcher group *while frozen* by a
  // winner, whose collapse walk collects only tree settlers — the absorbed
  // members were orphaned unsettled when the frozen fiber parked, and the
  // surviving group waited on them forever.  absorbMarchers now refuses to
  // absorb while frozen/dissolved (the §4.7 junction-locking discipline;
  // DESIGN.md §4.7) and the marchers re-route to the eventual winner.
  const Graph g = makeGraph("grid", 128, 3);
  RunOut run(g, 64, 8, 3);
  EXPECT_TRUE(run.algo.dispersed());
  EXPECT_EQ(run.engine.settledCount(), 64u);
}

TEST(GeneralSync, MemoryLogarithmic) {
  const Graph g = makeGraph("er", 120, 29);
  RunOut run(g, 96, 4, 7);
  ASSERT_TRUE(run.algo.dispersed());
  const auto w = BitWidths::forRun(4ULL * 96, g.maxDegree(), 96);
  EXPECT_LE(run.engine.memory().maxBits(), 32ULL * (w.id + w.port + w.count));
}

}  // namespace
}  // namespace disp
