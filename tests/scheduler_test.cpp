// Scheduler tests: fairness windows for every activation policy (each
// agent must keep being activated — the ASYNC model's fairness assumption),
// and the parametrized weighted-policy factory syntax.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/scheduler.hpp"

namespace disp {
namespace {

// Longest gap (in draws) between consecutive activations of any agent,
// counting the warm-up gap from draw 0 to an agent's first activation.
std::uint64_t maxActivationGap(Scheduler& sched, std::uint32_t k,
                               std::uint64_t draws) {
  std::vector<std::uint64_t> last(k, 0);
  std::uint64_t maxGap = 0;
  for (std::uint64_t t = 1; t <= draws; ++t) {
    const std::uint32_t a = sched.next();
    EXPECT_LT(a, k);
    maxGap = std::max(maxGap, t - last[a]);
    last[a] = t;
  }
  for (std::uint32_t a = 0; a < k; ++a) {
    EXPECT_GT(last[a], 0u) << "agent " << a << " never activated";
    maxGap = std::max(maxGap, draws + 1 - last[a]);
  }
  return maxGap;
}

struct FairnessCase {
  const char* name;
  std::uint64_t bound;  // max tolerated activation gap at k = 16
};

TEST(Scheduler, EveryPolicyActivatesEveryAgentWithinBoundedWindow) {
  constexpr std::uint32_t k = 16;
  constexpr std::uint64_t draws = 200000;
  // Deterministic given the fixed seed; bounds sit far above the expected
  // maximum gap (k for round_robin, <2k for shuffled, ~k·ln(draws) for
  // uniform, ~pool·ln(draws) for weighted with pool = skew·(k-slow)+slow).
  const std::vector<FairnessCase> cases{
      {"round_robin", 16},
      {"shuffled", 31},
      {"uniform", 2000},
      {"weighted", 8000},       // pool 121, slow agent rate 1/121
      {"weighted:16", 16000},   // pool 241
      {"weighted:4:2", 4000},   // pool 58
  };
  for (const FairnessCase& c : cases) {
    const auto sched = makeSchedulerByName(c.name, k, /*seed=*/99);
    const std::uint64_t gap = maxActivationGap(*sched, k, draws);
    EXPECT_LE(gap, c.bound) << "policy " << c.name;
    EXPECT_GE(gap, 1u);
  }
}

TEST(Scheduler, RoundRobinGapIsExactlyK) {
  constexpr std::uint32_t k = 9;
  const auto sched = makeSchedulerByName("round_robin", k, 1);
  EXPECT_EQ(maxActivationGap(*sched, k, 900), k);
}

TEST(Scheduler, WeightedSuffixConfiguresSkew) {
  // With skew s and one slow agent among k, agent 0 receives a 1/(s(k-1)+1)
  // share of activations; check the empirical share tracks the parameter.
  constexpr std::uint32_t k = 8;
  constexpr std::uint64_t draws = 200000;
  for (const std::uint32_t skew : {2u, 16u}) {
    const auto sched =
        makeSchedulerByName("weighted:" + std::to_string(skew), k, 7);
    std::uint64_t slowHits = 0;
    for (std::uint64_t t = 0; t < draws; ++t) slowHits += sched->next() == 0;
    const double expected = double(draws) / double(skew * (k - 1) + 1);
    EXPECT_NEAR(double(slowHits), expected, expected * 0.2) << "skew " << skew;
  }
}

TEST(Scheduler, WeightedSuffixConfiguresSlowSetSize) {
  constexpr std::uint32_t k = 8;
  constexpr std::uint64_t draws = 200000;
  const auto sched = makeSchedulerByName("weighted:4:3", k, 7);
  // Agents 0-2 are slow (weight 1); 3-7 fast (weight 4): pool = 23.
  std::vector<std::uint64_t> hits(k, 0);
  for (std::uint64_t t = 0; t < draws; ++t) ++hits[sched->next()];
  for (std::uint32_t a = 0; a < 3; ++a) {
    EXPECT_NEAR(double(hits[a]), draws / 23.0, draws / 23.0 * 0.2);
  }
  for (std::uint32_t a = 3; a < k; ++a) {
    EXPECT_NEAR(double(hits[a]), draws * 4 / 23.0, draws * 4 / 23.0 * 0.2);
  }
}

TEST(Scheduler, DefaultWeightedMatchesHistoricalEightXOnAgentZero) {
  // "weighted" must stay equivalent to "weighted:8:1" so existing sweep
  // results remain reproducible.
  const auto a = makeSchedulerByName("weighted", 12, 123);
  const auto b = makeSchedulerByName("weighted:8:1", 12, 123);
  for (int i = 0; i < 10000; ++i) EXPECT_EQ(a->next(), b->next());
}

TEST(Scheduler, RejectsMalformedNames) {
  EXPECT_THROW((void)makeSchedulerByName("weighted:", 4, 1), std::invalid_argument);
  EXPECT_THROW((void)makeSchedulerByName("weighted:0", 4, 1), std::invalid_argument);
  EXPECT_THROW((void)makeSchedulerByName("weighted:8:0", 4, 1), std::invalid_argument);
  EXPECT_THROW((void)makeSchedulerByName("weighted:8:9", 4, 1), std::invalid_argument);
  EXPECT_THROW((void)makeSchedulerByName("weighted:x", 4, 1), std::invalid_argument);
  EXPECT_THROW((void)makeSchedulerByName("weighted:8:1:2", 4, 1),
               std::invalid_argument);
  EXPECT_THROW((void)makeSchedulerByName("nope", 4, 1), std::invalid_argument);
}

TEST(Scheduler, KnownSchedulersAllConstruct) {
  for (const std::string& name : knownSchedulers()) {
    EXPECT_NE(makeSchedulerByName(name, 5, 3), nullptr) << name;
  }
}

}  // namespace
}  // namespace disp
