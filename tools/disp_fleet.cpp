// disp_fleet — multi-worker sweep fabric (DESIGN.md §13).
//
//   disp_fleet run scale_real --fleet=local:8 --dir=campaign --resume
//   disp_fleet merge --out=all.jsonl shard_0of4.attempt1.jsonl ...
//   disp_fleet status --dir=campaign
//
// `run` enumerates the selected sweeps' cells (disp_bench --list-cells
// semantics, in-process), sizes a shard partition, records it in a durable
// manifest, and supervises one disp_bench worker per shard through the
// configured transport.  Unrecognized flags are forwarded verbatim to every
// worker, so the full disp_bench axis-override surface (--graphs,
// --placements, --ks, --seeds, --threads, ...) works unchanged.
#include <algorithm>
#include <filesystem>
#include <iostream>
#include <set>
#include <string>
#include <vector>

#include "exp/bench_registry.hpp"
#include "fleet/collector.hpp"
#include "fleet/manifest.hpp"
#include "fleet/supervisor.hpp"
#include "fleet/transport.hpp"
#include "util/cli.hpp"

namespace {

namespace fs = std::filesystem;
using disp::Cli;

void printUsage(std::ostream& os) {
  os << "usage: disp_fleet run <sweep>... [--fleet=local:P|ssh:h1,h2]\n"
        "                   [--dir=DIR] [--shards=N | --cells-per-shard=C]\n"
        "                   [--max-attempts=A] [--stall-timeout=SEC]\n"
        "                   [--backoff=SEC] [--poll-interval=SEC]\n"
        "                   [--bench=PATH] [--resume] [--chaos-kill-rows=R]\n"
        "                   [any disp_bench flag — forwarded to every worker]\n"
        "       disp_fleet merge --out=PATH [--dup=error|dedup] [--partial-tail]\n"
        "                   <shard.jsonl>...\n"
        "       disp_fleet status [--dir=DIR]\n\n"
        "run writes DIR/fleet_manifest.json (durable shard states),\n"
        "DIR/fleet_events.jsonl (spawn/exit/retry/resume/merge log,\n"
        "monotonic seq) and, on success, DIR/merged.jsonl with telemetry-\n"
        "exempt divergence auditing.  --resume rescans flushed shard rows\n"
        "and relaunches only unfinished shards.  A worker whose JSONL\n"
        "stops growing for --stall-timeout seconds is killed and retried\n"
        "(exponential backoff); --max-attempts failures poison the shard.\n";
}

int usageError(const std::string& what) {
  std::cerr << "error: " << what << "\n\n";
  printUsage(std::cerr);
  return 2;
}

// Flags the coordinator owns (never forwarded to workers).
bool fleetOwnedFlag(const std::string& key) {
  static const std::set<std::string> kOwned{
      "fleet",        "dir",           "shards",  "cells-per-shard",
      "max-attempts", "stall-timeout", "backoff", "poll-interval",
      "bench",        "resume",        "chaos-kill-rows",
      "out",          "dup",           "partial-tail",
  };
  return kOwned.count(key) > 0;
}

// Flags whose per-worker values the coordinator computes itself; a user
// value would silently fight the fabric, so refuse loudly.
const char* forbiddenForward(const std::string& key) {
  static const std::set<std::string> kForbidden{
      "jsonl", "shard", "stream-cells", "list-cells", "trace", "trajectory",
  };
  return kForbidden.count(key) > 0 ? key.c_str() : nullptr;
}

std::string siblingBench(const std::string& program) {
  // Default worker binary: the disp_bench next to this disp_fleet, so
  // `build/disp_fleet run ...` finds `build/disp_bench` without PATH games.
  const fs::path p(program);
  if (!p.has_parent_path()) return "disp_bench";
  return (p.parent_path() / "disp_bench").string();
}

int cmdRun(const Cli& cli) {
  std::vector<std::string> sweeps(cli.positional().begin() + 1,
                                  cli.positional().end());
  if (sweeps.empty()) return usageError("run wants at least one sweep name");
  if (sweeps.size() == 1 && sweeps[0] == "all") {
    sweeps.clear();
    for (const auto& def : disp::exp::benchRegistry()) {
      if (!def.heavy && def.shardable) sweeps.push_back(def.name);
    }
  }
  for (const std::string& s : sweeps) {
    const auto* def = disp::exp::findBench(s);
    if (def == nullptr) return usageError("unknown sweep '" + s + "'");
    if (!def->shardable) {
      return usageError("sweep '" + s +
                        "' is not shardable (hand-rolled loop outside the "
                        "canonical cell enumeration) — run it with disp_bench "
                        "directly");
    }
  }

  std::vector<std::string> benchArgs;
  for (const auto& [key, value] : cli.flags()) {
    if (fleetOwnedFlag(key)) continue;
    if (const char* f = forbiddenForward(key)) {
      return usageError("--" + std::string(f) +
                        " is coordinator-owned (disp_fleet computes per-worker "
                        "values); drop it");
    }
    benchArgs.push_back(value.empty() ? "--" + key : "--" + key + "=" + value);
  }

  disp::fleet::FleetOptions opt;
  opt.sweeps = sweeps;
  opt.benchArgs = benchArgs;
  opt.fleetSpec = cli.str("fleet", "local:2");
  opt.dir = cli.str("dir", ".");
  opt.benchBinary = cli.str("bench", siblingBench(cli.program()));
  opt.resume = cli.has("resume");

  const std::int64_t maxAttempts = cli.integer("max-attempts", 3);
  if (maxAttempts < 1 || maxAttempts > 100) {
    return usageError("--max-attempts must be in [1, 100]");
  }
  opt.maxAttempts = static_cast<std::uint32_t>(maxAttempts);
  opt.stallTimeoutSec = cli.real("stall-timeout", 300.0);
  opt.backoffBaseSec = cli.real("backoff", 0.5);
  opt.pollIntervalSec = cli.real("poll-interval", 0.05);
  if (opt.stallTimeoutSec <= 0 || opt.backoffBaseSec < 0 ||
      opt.pollIntervalSec <= 0) {
    return usageError("--stall-timeout/--poll-interval must be > 0 and "
                      "--backoff >= 0");
  }
  const std::int64_t chaos = cli.integer("chaos-kill-rows", 0);
  if (chaos < 0) return usageError("--chaos-kill-rows must be >= 0");
  opt.chaosKillRows = static_cast<std::uint64_t>(chaos);

  // Shard sizing: enumerate the exact cells the workers will partition
  // (ownership of cell `index` under I/N is index % N == I, per BatchRunner
  // invocation — the same arithmetic disp_bench --shard applies).
  std::uint32_t slots = 0;
  try {
    slots = disp::fleet::makeTransport(opt.fleetSpec)->slots();
  } catch (const std::exception& e) {
    return usageError(e.what());
  }
  std::vector<disp::exp::ListedCell> cells;
  try {
    cells = disp::exp::listBenchCells(sweeps, cli);
  } catch (const std::exception& e) {
    return usageError(e.what());
  }
  const std::uint64_t total = cells.size();
  if (total == 0) {
    return usageError("the selected sweeps enumerate zero cells (check the "
                      "--graphs/--ks/... overrides)");
  }
  std::uint64_t shardCount = 0;
  const std::int64_t explicitShards = cli.integer("shards", 0);
  if (explicitShards < 0 || explicitShards > 4096) {
    return usageError("--shards must be in [1, 4096]");
  }
  if (explicitShards > 0) {
    shardCount = static_cast<std::uint64_t>(explicitShards);
  } else {
    const std::int64_t cellsPer = cli.integer("cells-per-shard", 4);
    if (cellsPer < 1) return usageError("--cells-per-shard must be >= 1");
    shardCount = (total + static_cast<std::uint64_t>(cellsPer) - 1) /
                 static_cast<std::uint64_t>(cellsPer);
    // At least one shard per worker (while shards still have cells), so a
    // default-sized small sweep still exercises the whole fleet.
    shardCount = std::max(shardCount, std::min<std::uint64_t>(slots, total));
  }
  shardCount = std::min<std::uint64_t>({shardCount, total, 4096});
  shardCount = std::max<std::uint64_t>(shardCount, 1);
  opt.shardCount = static_cast<std::uint32_t>(shardCount);
  opt.totalCells = total;
  opt.shardCells.assign(opt.shardCount, 0);
  for (const auto& c : cells) opt.shardCells[c.index % opt.shardCount] += 1;
  opt.log = &std::cout;

  std::cout << "fleet: " << total << " cells across " << opt.shardCount
            << " shards (" << opt.fleetSpec << ", bench " << opt.benchBinary
            << ")\n";
  try {
    return disp::fleet::runFleet(opt);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
}

int cmdMerge(const Cli& cli) {
  const std::string out = cli.str("out", "");
  if (out.empty()) return usageError("merge wants --out=PATH");
  const std::string dup = cli.str("dup", "error");
  if (dup != "error" && dup != "dedup") {
    return usageError("--dup must be 'error' or 'dedup'");
  }
  const bool partialTail = cli.has("partial-tail");
  std::vector<disp::fleet::MergeInput> inputs;
  for (std::size_t i = 1; i < cli.positional().size(); ++i) {
    inputs.push_back({cli.positional()[i], partialTail});
  }
  if (inputs.empty()) return usageError("merge wants at least one input file");
  const disp::fleet::MergeResult res = disp::fleet::mergeJsonl(
      inputs,
      dup == "error" ? disp::fleet::DupPolicy::Error
                     : disp::fleet::DupPolicy::Dedup,
      out);
  for (const auto& d : res.divergences) {
    std::cerr << "DIVERGENCE [" << d.identity << "] column '" << d.column
              << "': " << d.whereA << " says '" << d.valueA << "', "
              << d.whereB << " says '" << d.valueB << "'\n";
  }
  for (const std::string& e : res.errors) std::cerr << "error: " << e << "\n";
  if (!res.ok) return 1;
  std::cout << "merged " << res.rowsOut << " rows from " << inputs.size()
            << " files into " << out;
  if (res.dupsDropped > 0) std::cout << " (" << res.dupsDropped << " duplicates dropped)";
  if (res.partialTails > 0) std::cout << " (" << res.partialTails << " torn tails dropped)";
  std::cout << "\n";
  return 0;
}

int cmdStatus(const Cli& cli) {
  const std::string dir = cli.str("dir", ".");
  const std::string path = (fs::path(dir) / disp::fleet::kManifestFile).string();
  if (!fs::exists(path)) {
    std::cerr << "error: no fleet manifest at " << path << "\n";
    return 1;
  }
  disp::fleet::Manifest m;
  try {
    m = disp::fleet::Manifest::load(path);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  std::cout << "sweeps:";
  for (const std::string& s : m.sweeps) std::cout << " " << s;
  std::cout << "\nfleet: " << m.fleetSpec << "   shards: " << m.shardCount
            << "   cells: " << m.totalCells << "\n";
  std::uint32_t done = 0;
  for (const auto& sh : m.shards) {
    if (sh.state == disp::fleet::ShardState::Done) ++done;
    std::cout << "  shard " << sh.index << ": " << shardStateName(sh.state)
              << "  attempts=" << sh.attempts << "  cells=" << sh.cellsDone
              << "/" << sh.cells;
    if (!sh.worker.empty()) std::cout << "  worker=" << sh.worker;
    if (!sh.outputs.empty()) std::cout << "  output=" << sh.output();
    std::cout << "\n";
  }
  std::cout << done << "/" << m.shardCount << " shards done\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const Cli cli(argc, argv);
    if (cli.positional().empty() || cli.has("help")) {
      printUsage(cli.has("help") ? std::cout : std::cerr);
      return cli.has("help") ? 0 : 2;
    }
    const std::string& cmd = cli.positional().front();
    if (cmd == "run") return cmdRun(cli);
    if (cmd == "merge") return cmdMerge(cli);
    if (cmd == "status") return cmdStatus(cli);
    return usageError("unknown subcommand '" + cmd +
                      "' (run | merge | status)");
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
}
