// disp_datagen — materializes GraphSpec workloads as Graphalytics `.v`/`.e`
// pairs for the scale campaign (scripts/make_scale_data.sh, CI scale-smoke).
//
//   disp_datagen --spec='ba:n=1000000,d=4' --seed=7 --out=bench/data/ba_1e6
//
// writes bench/data/ba_1e6.v and bench/data/ba_1e6.e.  `--n` supplies the
// node count for size-unbound specs (e.g. --spec=er --n=65536).  Reloading
// through `file:OUT.e` applies the deterministic file labeling, so a
// materialized dataset is a stable workload identity independent of the
// generator's seeded port permutation.
#include <chrono>
#include <iostream>

#include "graph/graph_io.hpp"
#include "graph/spec.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  try {
    const disp::Cli cli(argc, argv);
    const std::string spec = cli.str("spec", "");
    const std::string out = cli.str("out", "");
    if (cli.has("help") || spec.empty() || out.empty()) {
      std::cerr << "usage: disp_datagen --spec=GRAPHSPEC --out=BASE"
                   " [--seed=S] [--n=N]\n"
                   "  writes BASE.v / BASE.e (Graphalytics pair)\n";
      return spec.empty() || out.empty() ? 2 : 0;
    }
    const auto seed = static_cast<std::uint64_t>(cli.integer("seed", 7));
    const auto n = static_cast<std::uint32_t>(cli.integer("n", 0));
    const disp::GraphSpec gs = disp::GraphSpec::parse(spec);
    if (!gs.sizeBound() && n == 0) {
      std::cerr << "error: spec '" << spec
                << "' does not pin its size — pass --n or an n= parameter\n";
      return 2;
    }

    // displint: allow(DL002) — generation wallclock telemetry only; the
    // dataset bytes are a pure function of (spec, seed).
    const auto t0 = std::chrono::steady_clock::now();
    const disp::Graph g =
        gs.instantiate(n, seed, disp::PortLabeling::InsertionOrder);
    const double genMs = std::chrono::duration<double, std::milli>(
                             std::chrono::steady_clock::now() -  // displint: allow(DL002) — telemetry
                             t0)
                             .count();
    disp::writeGraphalytics(out, g);
    std::cout << "wrote " << out << ".v/.e: n=" << g.nodeCount()
              << " m=" << g.edgeCount() << " maxdeg=" << g.maxDegree()
              << " (generated in " << genMs << " ms)\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
