// displint selftest fixture: DL005 (mutable-static) shapes — a
// namespace-scope mutable global, a function-local mutable static and a
// mutable static data member.  Expect exactly 3 × DL005 under --assume=fact.
#include <cstdint>
#include <vector>

namespace fixture {

std::uint32_t callCount = 0;  // DL005: namespace-scope global

inline std::uint32_t bump() {
  static std::uint32_t hits = 0;  // DL005: function-local static
  return ++hits + callCount;
}

struct Cache {
  static std::vector<std::uint32_t> shared;  // DL005: static data member
};

}  // namespace fixture
