// displint selftest fixture: a COMPLIANT fact-path file.  Exercises the
// allowed form next to each rule's hazard — suppressed keyed-lookup-only
// maps, end()-compare lookups, constexpr/thread_local state, observation-only
// checks — and must produce zero findings with both suppressions counted
// as used.  (Never compiled; token-level fixture only.)
#include <cstdint>
#include <unordered_map>  // displint: allow(DL001) — keyed-lookup-only cache below
#include <vector>

namespace fixture {

inline constexpr std::uint32_t kLimit = 64;  // constexpr global: allowed

struct Index {
  // displint: allow(DL001) — find()/erase() only; never iterated, so hash
  // order cannot reach facts.
  std::unordered_map<std::uint32_t, std::uint32_t> at;

  [[nodiscard]] std::uint32_t countAt(std::uint32_t v) const {
    const auto it = at.find(v);
    return it == at.end() ? 0u : it->second;  // end() compare = lookup, legal
  }
};

inline std::uint32_t nextId() {
  static constexpr std::uint32_t kBase = 7;   // constexpr local: allowed
  thread_local std::uint32_t scratch = kBase;  // thread_local: allowed
  return ++scratch;
}

inline void checkedStep(std::vector<std::uint32_t>& xs) {
  DISP_CHECK(xs.size() < kLimit, "observation-only argument");
  xs.push_back(nextId());
}

}  // namespace fixture
