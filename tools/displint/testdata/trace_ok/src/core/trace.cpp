// displint selftest fixture (DL006): a miniature trace.cpp whose kind
// names all have schema entries in the sibling scripts/check_trace.sh.
#include "core/trace.hpp"

namespace disp {

const char* traceEventKindName(TraceEventKind k) {
  switch (k) {
    case TraceEventKind::Move: return "move";
    case TraceEventKind::Settle: return "settle";
  }
  return "?";
}

}  // namespace disp
