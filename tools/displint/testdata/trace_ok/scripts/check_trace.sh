#!/usr/bin/env bash
# displint selftest fixture (DL006): schema in sync with ../src/core/trace.cpp
# ("sample" is the engine-level snapshot line, not a TraceEvent kind).
python3 - "$1" <<'EOF'
KINDS = {"move", "settle", "sample"}
EOF
