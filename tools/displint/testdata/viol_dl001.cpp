// displint selftest fixture: every DL001 (unordered-iteration) shape —
// the include, the unsuppressed declaration, a range-for and an explicit
// begin().  Expect exactly 4 × DL001 under --assume=fact.
#include <cstdint>
#include <unordered_map>

namespace fixture {

inline std::uint32_t sum() {
  std::unordered_map<std::uint32_t, std::uint32_t> counts;
  std::uint32_t total = 0;
  for (const auto& kv : counts) total += kv.second;
  auto it = counts.begin();
  (void)it;
  return total;
}

}  // namespace fixture
