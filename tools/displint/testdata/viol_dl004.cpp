// displint selftest fixture: DL004 (check-side-effect) shapes — an
// increment, an assignment and a mutating member call inside DISP_* check
// arguments.  Expect exactly 3 × DL004 (any scope).
#include <cstdint>
#include <vector>

namespace fixture {

inline void hiddenMutation(std::vector<std::uint32_t>& xs, std::uint32_t x) {
  DISP_CHECK(++x > 0, "increment in an always-on check");
  DISP_REQUIRE(x = static_cast<std::uint32_t>(xs.size()), "assignment");
  DISP_DCHECK((xs.erase(xs.begin()), !xs.empty()), "Debug-only mutation");
}

}  // namespace fixture
