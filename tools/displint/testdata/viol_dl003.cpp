// displint selftest fixture: DL003 (pointer-order) shapes — address
// comparison, pointer-to-integer cast, pointer-keyed containers and a
// pointer hash.  Expect exactly 5 × DL003 under --assume=fact.
#include <cstdint>
#include <functional>
#include <map>
#include <set>

namespace fixture {

struct Agent {
  std::uint32_t id;
};

inline bool before(const Agent& a, const Agent& b) {
  return &a < &b;  // DL003: address order
}

inline std::size_t key(const Agent* p) {
  return reinterpret_cast<std::uintptr_t>(p);  // DL003: address-derived value
}

inline void containers() {
  std::map<Agent*, std::uint32_t> rankByAddress;  // DL003: pointer key
  std::set<const Agent*> seen;                    // DL003: pointer key
  std::hash<Agent*> addressHash;                  // DL003: pointer hash
  (void)rankByAddress;
  (void)seen;
  (void)addressHash;
}

}  // namespace fixture
