#!/usr/bin/env bash
# displint selftest fixture (DL006): out of sync with ../src/core/trace.cpp —
# "vanish" is absent and "ghost" is stale.
python3 - "$1" <<'EOF'
KINDS = {"move", "ghost", "sample"}
EOF
