// displint selftest fixture (DL006): "vanish" is emitted but missing from
// the schema, and the schema's "ghost" matches no kind here.  Expect 2 × DL006.
#include "core/trace.hpp"

namespace disp {

const char* traceEventKindName(TraceEventKind k) {
  switch (k) {
    case TraceEventKind::Move: return "move";
    case TraceEventKind::Vanish: return "vanish";
  }
  return "?";
}

}  // namespace disp
