// displint selftest fixture: DL002 (wallclock-entropy) sources.  Expect
// exactly 5 × DL002 in a non-exempt scope and zero under --assume=exempt.
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <random>

namespace fixture {

inline std::uint64_t entropySoup() {
  std::random_device rd;                                     // DL002
  const auto t = std::chrono::steady_clock::now();           // DL002
  const auto c = std::chrono::high_resolution_clock::now();  // DL002
  std::uint64_t x = static_cast<std::uint64_t>(rand());      // DL002
  x += static_cast<std::uint64_t>(time(nullptr));            // DL002
  (void)t;
  (void)c;
  (void)rd;
  return x;
}

}  // namespace fixture
