// displint selftest fixture: suppression hygiene.  Every allow() here is
// defective — unused (nothing flagged on the covered line), wrong rule,
// unknown rule, or missing its justification — so the underlying DL005
// findings must survive and each defect must surface as DL000.
// Expect under --assume=fact: 4 × DL000 and 3 × DL005, exit 1.
#include <cstdint>

namespace fixture {

// displint: allow(DL001) — covers the next line, where nothing is flagged
std::uint32_t liveCounter = 0;    // displint: allow(DL002) — wrong rule for this line
static std::uint32_t hidden = 1;  // displint: allow(DL999) — no such rule
std::uint32_t noWhy = 2;          // displint: allow(DL005)

}  // namespace fixture
