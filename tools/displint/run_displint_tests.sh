#!/usr/bin/env bash
# displint selftest: drives the built displint binary over the fixture files
# in testdata/, asserting exact rule IDs, finding counts, suppression
# accounting and exit codes.  Registered as the `displint_selftest` ctest
# entry (CMakeLists.txt) and run by the static-analysis CI job.
#
#   run_displint_tests.sh <displint-binary> <testdata-dir>
set -uo pipefail

DISPLINT="${1:?usage: run_displint_tests.sh <displint-binary> <testdata-dir>}"
TD="${2:?usage: run_displint_tests.sh <displint-binary> <testdata-dir>}"

fails=0
note() { printf '%s\n' "$*"; }
fail() {
  note "FAIL: $*"
  fails=$((fails + 1))
}

# run <expected-exit> <args...>  — captures output in $OUT
run() {
  local want="$1"
  shift
  OUT="$("$DISPLINT" "$@" 2>&1)"
  local got=$?
  if [[ "$got" != "$want" ]]; then
    fail "exit $got (want $want) for: $DISPLINT $*"
    note "$OUT"
  fi
}

# count <rule> — occurrences of "[RULE]" in $OUT
count() { grep -cF "[$1]" <<<"$OUT" || true; }

# only_rules <rule...> — no OTHER rule id may appear in $OUT
only_rules() {
  local seen
  seen="$(grep -oE '\[DL[0-9]{3}\]' <<<"$OUT" | sort -u | tr -d '[]' | tr '\n' ' ')"
  local id ok
  for id in $seen; do
    ok=no
    for want in "$@"; do [[ "$id" == "$want" ]] && ok=yes; done
    [[ "$ok" == yes ]] || fail "unexpected rule $id in output: $OUT"
  done
}

# --- clean fixture: zero findings, both suppressions counted as used -------
run 0 --root="$TD" --assume=fact "$TD/clean.cpp"
grep -q '0 findings, 2 suppressed' <<<"$OUT" ||
  fail "clean.cpp: want '0 findings, 2 suppressed', got: $OUT"

# --- one violating fixture per rule, exact IDs and counts ------------------
run 1 --root="$TD" --assume=fact "$TD/viol_dl001.cpp"
[[ "$(count DL001)" == 4 ]] || fail "viol_dl001: want 4 DL001, got: $OUT"
only_rules DL001

run 1 --root="$TD" --assume=fact "$TD/viol_dl002.cpp"
[[ "$(count DL002)" == 5 ]] || fail "viol_dl002: want 5 DL002, got: $OUT"
only_rules DL002

# the same entropy soup is legal in a telemetry-exempt scope
run 0 --root="$TD" --assume=exempt "$TD/viol_dl002.cpp"

run 1 --root="$TD" --assume=fact "$TD/viol_dl003.cpp"
[[ "$(count DL003)" == 5 ]] || fail "viol_dl003: want 5 DL003, got: $OUT"
only_rules DL003

run 1 --root="$TD" --assume=fact "$TD/viol_dl004.cpp"
[[ "$(count DL004)" == 3 ]] || fail "viol_dl004: want 3 DL004, got: $OUT"
only_rules DL004

# DL004 is not scope-gated: same findings outside fact paths
run 1 --root="$TD" --assume=exempt "$TD/viol_dl004.cpp"
[[ "$(count DL004)" == 3 ]] || fail "viol_dl004 (exempt): want 3 DL004, got: $OUT"

run 1 --root="$TD" --assume=fact "$TD/viol_dl005.cpp"
[[ "$(count DL005)" == 3 ]] || fail "viol_dl005: want 3 DL005, got: $OUT"
only_rules DL005

# --- suppression hygiene: defective allows surface as DL000 ----------------
run 1 --root="$TD" --assume=fact "$TD/suppress_partial.cpp"
[[ "$(count DL000)" == 4 ]] || fail "suppress_partial: want 4 DL000, got: $OUT"
[[ "$(count DL005)" == 3 ]] || fail "suppress_partial: want 3 DL005, got: $OUT"
only_rules DL000 DL005
grep -q 'unknown rule' <<<"$OUT" || fail "suppress_partial: missing unknown-rule diagnostic"
grep -q 'justification' <<<"$OUT" || fail "suppress_partial: missing justification diagnostic"
grep -q 'unused suppression' <<<"$OUT" || fail "suppress_partial: missing unused diagnostic"

# --- DL006 cross-check over fixture trees ----------------------------------
run 0 --root="$TD/trace_ok"

run 1 --root="$TD/trace_bad"
[[ "$(count DL006)" == 2 ]] || fail "trace_bad: want 2 DL006, got: $OUT"
only_rules DL006
grep -q 'vanish' <<<"$OUT" || fail "trace_bad: missing-kind finding absent"
grep -q 'ghost' <<<"$OUT" || fail "trace_bad: stale-schema finding absent"

# --- catalog & usage surface ----------------------------------------------
run 0 --list-rules
for id in DL000 DL001 DL002 DL003 DL004 DL005 DL006; do
  grep -q "^$id" <<<"$OUT" || fail "--list-rules missing $id"
done

run 2 --no-such-flag

if [[ "$fails" -gt 0 ]]; then
  note "displint selftest: $fails failure(s)"
  exit 1
fi
note "displint selftest: all checks passed"
