#pragma once
// displint rule framework (DESIGN.md §12).
//
// A rule is a named check over one lexed file (FileRule) or over the whole
// scanned tree (CrossRule).  Adding a rule means appending one entry to the
// tables in rules.cpp — the driver, suppression matching, output formatting
// and the selftest harness all key off the catalog and need no changes.
//
// Scope model: every scanned file carries a Scope describing which rule
// families apply.
//   * fact paths (src/core/, src/algo/)   — DL001/DL003/DL005 enforced
//   * telemetry-exempt (src/exp/, src/fleet/, src/util/mem.*) — DL002 waived
//   * everything scanned                  — DL002 (unless exempt), DL004
// Suppressions (`// displint: allow(RULE) — justification`, lexer.hpp)
// silence a finding on their line (trailing) or the next code line
// (standalone); unused or malformed suppressions are themselves findings
// (DL000), so stale annotations cannot rot in place.

#include <string>
#include <vector>

#include "lexer.hpp"

namespace displint {

struct Scope {
  bool factPath = false;         ///< src/core/ or src/algo/
  bool telemetryExempt = false;  ///< src/exp/, src/fleet/ or src/util/mem.*
};

struct FileInput {
  std::string path;  ///< as reported in findings (root-relative when scanned)
  Scope scope;
  LexedFile lex;
};

struct Finding {
  std::string file;
  int line = 0;
  std::string rule;
  std::string message;
};

struct RuleInfo {
  const char* id;       ///< "DL001"
  const char* name;     ///< short kebab-case handle
  const char* summary;  ///< one-line catalog entry (--list-rules, DESIGN.md)
};

/// The full rule catalog, DL000 first.  Order is the documentation order.
[[nodiscard]] const std::vector<RuleInfo>& ruleCatalog();

/// True iff `id` names a rule in the catalog (suppression validation).
[[nodiscard]] bool knownRule(const std::string& id);

/// Runs every per-file rule applicable to `in.scope`, appending raw
/// (pre-suppression) findings.
void runFileRules(const FileInput& in, std::vector<Finding>& findings);

/// Cross-tree rules.  `root` is the scan root; DL006 reads
/// src/core/trace.cpp and scripts/check_trace.sh beneath it and silently
/// skips when either file is absent (fixture trees, partial checkouts).
void runCrossRules(const std::string& root, std::vector<Finding>& findings);

/// Applies suppressions in place: removes findings covered by a matching
/// allow() comment (marking it used), then appends DL000 findings for
/// malformed, unknown-rule and unused suppressions.  DL000 itself cannot
/// be suppressed.
void applySuppressions(FileInput& in, std::vector<Finding>& findings);

}  // namespace displint
