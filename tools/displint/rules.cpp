#include "rules.hpp"

#include <algorithm>
#include <array>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <utility>

namespace displint {

namespace {

constexpr std::size_t npos = static_cast<std::size_t>(-1);

// ---------------------------------------------------------------- helpers

/// Bounds-safe view over a token stream.
struct Toks {
  const std::vector<Token>& t;

  [[nodiscard]] std::size_t size() const { return t.size(); }
  [[nodiscard]] bool has(std::size_t i) const { return i < t.size(); }
  [[nodiscard]] TokKind kind(std::size_t i) const {
    return has(i) ? t[i].kind : TokKind::Punct;
  }
  [[nodiscard]] const std::string& text(std::size_t i) const {
    static const std::string empty;
    return has(i) ? t[i].text : empty;
  }
  [[nodiscard]] int line(std::size_t i) const { return has(i) ? t[i].line : 0; }
  [[nodiscard]] bool ident(std::size_t i, const char* s) const {
    return has(i) && t[i].kind == TokKind::Identifier && t[i].text == s;
  }
  [[nodiscard]] bool isIdent(std::size_t i) const {
    return has(i) && t[i].kind == TokKind::Identifier;
  }
  [[nodiscard]] bool punct(std::size_t i, const char* s) const {
    return has(i) && t[i].kind == TokKind::Punct && t[i].text == s;
  }
  [[nodiscard]] bool isPunct(std::size_t i) const {
    return has(i) && t[i].kind == TokKind::Punct;
  }
};

void report(const FileInput& in, std::vector<Finding>& out, int line,
            const char* rule, std::string message) {
  out.push_back({in.path, line, rule, std::move(message)});
}

/// `i` points at a '<'.  Returns the index one past the matching close, or
/// npos when the '<' is a comparison (no close before ';', '{' or EOF).
/// '>>' closes two levels; parenthesized subexpressions are skipped whole.
std::size_t skipAngles(const Toks& ts, std::size_t i) {
  int depth = 0;
  int parens = 0;
  const std::size_t limit = std::min(ts.size(), i + 400);
  for (std::size_t j = i; j < limit; ++j) {
    if (ts.punct(j, "(") || ts.punct(j, "[")) {
      ++parens;
      continue;
    }
    if (ts.punct(j, ")") || ts.punct(j, "]")) {
      if (parens > 0) --parens;
      continue;
    }
    if (parens > 0) continue;
    if (ts.punct(j, "<")) {
      ++depth;
    } else if (ts.punct(j, ">")) {
      if (--depth == 0) return j + 1;
    } else if (ts.punct(j, ">>")) {
      depth -= 2;
      if (depth <= 0) return j + 1;
    } else if (ts.punct(j, ";") || ts.punct(j, "{")) {
      return npos;
    }
  }
  return npos;
}

/// `open` points at a '('.  Returns the index of the matching ')', or npos.
std::size_t matchParen(const Toks& ts, std::size_t open) {
  int depth = 0;
  for (std::size_t j = open; j < ts.size(); ++j) {
    if (ts.punct(j, "(")) ++depth;
    else if (ts.punct(j, ")") && --depth == 0) return j;
  }
  return npos;
}

[[nodiscard]] bool isUnorderedName(const std::string& s) {
  return s == "unordered_map" || s == "unordered_set" ||
         s == "unordered_multimap" || s == "unordered_multiset";
}

[[nodiscard]] bool isAssocName(const std::string& s) {
  return s == "map" || s == "set" || s == "multimap" || s == "multiset" ||
         s == "flat_map" || s == "flat_set" || isUnorderedName(s);
}

// ------------------------------------------------- DL001 unordered-iteration

// Fact paths only.  Three finding shapes:
//  * `#include <unordered_map>` — the intent marker, suppressible,
//  * any unordered_* type occurrence — the declaration site, suppressible
//    with a keyed-lookup-only justification,
//  * iteration constructs (range-for, begin()/end()) over a variable whose
//    declaration statement mentions an unordered container — the actual
//    determinism hazard.
void ruleUnorderedIteration(const FileInput& in, std::vector<Finding>& out) {
  if (!in.scope.factPath) return;
  const Toks ts{in.lex.tokens};

  std::set<std::string> unorderedVars;
  // Variable capture: any statement that mentions an unordered container and
  // declares a name (identifier right before ';', '=' or '{') taints that
  // name.  Over-approximate on purpose: iterating anything hash-adjacent in
  // a fact path deserves a human look (and a suppression if legitimate).
  std::size_t stmtStart = 0;
  bool stmtHasUnordered = false;
  for (std::size_t i = 0; i < ts.size(); ++i) {
    if (ts.kind(i) == TokKind::Preprocessor) {
      stmtStart = i + 1;
      stmtHasUnordered = false;
      continue;
    }
    if (ts.isIdent(i) && isUnorderedName(ts.text(i))) stmtHasUnordered = true;
    if (ts.punct(i, ";") || ts.punct(i, "{") || ts.punct(i, "}")) {
      if (stmtHasUnordered) {
        // declared name: last identifier of the statement head
        for (std::size_t j = i; j > stmtStart; --j) {
          if (ts.isIdent(j - 1) && !isUnorderedName(ts.text(j - 1))) {
            unorderedVars.insert(ts.text(j - 1));
            break;
          }
        }
      }
      stmtStart = i + 1;
      stmtHasUnordered = false;
    }
  }

  for (std::size_t i = 0; i < ts.size(); ++i) {
    if (ts.kind(i) == TokKind::Preprocessor) {
      const std::string& p = ts.text(i);
      if (p.find("<unordered_map>") != std::string::npos ||
          p.find("<unordered_set>") != std::string::npos) {
        report(in, out, ts.line(i), "DL001",
               "include of an unordered container in a fact path — hash "
               "iteration order must never reach facts; keyed-lookup-only use "
               "needs a displint allow");
      }
      continue;
    }
    if (ts.isIdent(i) && isUnorderedName(ts.text(i))) {
      report(in, out, ts.line(i), "DL001",
             "std::" + ts.text(i) +
                 " in a fact path — keyed lookups only; justify with "
                 "// displint: allow(DL001) — ...");
    }
    // range-for over a tainted variable (or a fresh unordered temporary)
    if (ts.ident(i, "for") && ts.punct(i + 1, "(")) {
      const std::size_t close = matchParen(ts, i + 1);
      if (close == npos) continue;
      std::size_t colon = npos;
      int depth = 0;
      for (std::size_t j = i + 1; j < close; ++j) {
        if (ts.punct(j, "(")) ++depth;
        else if (ts.punct(j, ")")) --depth;
        else if (depth == 1 && ts.punct(j, ":") && !ts.punct(j - 1, ":") &&
                 !ts.punct(j + 1, ":")) {
          colon = j;
          break;
        }
      }
      if (colon == npos) continue;
      for (std::size_t j = colon + 1; j < close; ++j) {
        if (ts.isIdent(j) && (unorderedVars.count(ts.text(j)) != 0 ||
                              isUnorderedName(ts.text(j)))) {
          report(in, out, ts.line(i), "DL001",
                 "range-for over unordered container '" + ts.text(j) +
                     "' in a fact path — hash order would reach facts");
          break;
        }
      }
    }
    // Explicit begin() iteration on a tainted variable.  end()-family calls
    // alone are the `find() != end()` keyed-lookup idiom and stay legal —
    // iteration always needs a begin (or a range-for, handled above).
    static const std::array<const char*, 4> iters = {"begin", "cbegin", "rbegin",
                                                     "crbegin"};
    if (ts.isIdent(i) && ts.punct(i + 1, "(") &&
        std::any_of(iters.begin(), iters.end(),
                    [&](const char* s) { return ts.text(i) == s; }) &&
        (ts.punct(i - 1, ".") || ts.punct(i - 1, "->"))) {
      // receiver: ident, or ident[...] — walk back over one bracket group
      std::size_t r = i - 1;  // at '.' / '->'
      if (r > 0 && ts.punct(r - 1, "]")) {
        int depth = 0;
        while (r > 0) {
          --r;
          if (ts.punct(r, "]")) ++depth;
          else if (ts.punct(r, "[") && --depth == 0) break;
        }
      }
      if (r > 0 && ts.isIdent(r - 1) && unorderedVars.count(ts.text(r - 1)) != 0) {
        report(in, out, ts.line(i), "DL001",
               "iteration (" + ts.text(i) + "()) over unordered container '" +
                   ts.text(r - 1) + "' in a fact path");
      }
    }
  }
}

// ------------------------------------------------- DL002 wallclock-entropy

// Everywhere scanned except the telemetry-exempt paths.
void ruleWallclockEntropy(const FileInput& in, std::vector<Finding>& out) {
  if (in.scope.telemetryExempt) return;
  const Toks ts{in.lex.tokens};

  static const std::array<const char*, 11> kAlways = {
      "random_device", "rand_r",       "drand48",  "getentropy",
      "gettimeofday",  "clock_gettime", "localtime", "gmtime",
      "mktime",        "srand",        "srandom"};
  auto flag = [&](std::size_t i) {
    report(in, out, ts.line(i), "DL002",
           "nondeterministic wall-clock/entropy source '" + ts.text(i) +
               "' — facts must be reproducible from the seed (telemetry "
               "belongs in src/exp/, src/fleet/, bench/ or util/mem)");
  };

  for (std::size_t i = 0; i < ts.size(); ++i) {
    if (!ts.isIdent(i)) continue;
    const std::string& s = ts.text(i);
    if (std::any_of(kAlways.begin(), kAlways.end(),
                    [&](const char* a) { return s == a; })) {
      flag(i);
      continue;
    }
    // clock_type::now()
    if (s == "now" && i >= 2 && ts.punct(i - 1, "::") && ts.isIdent(i - 2) &&
        ts.text(i - 2).size() > 6 &&
        ts.text(i - 2).compare(ts.text(i - 2).size() - 6, 6, "_clock") == 0) {
      flag(i);
      continue;
    }
    // rand(...) / random(...) / time(...) / clock(...) in call position:
    // member accesses and declarations (preceding identifier) are excluded.
    if ((s == "rand" || s == "random" || s == "time" || s == "clock") &&
        ts.punct(i + 1, "(")) {
      const bool member = ts.punct(i - 1, ".") || ts.punct(i - 1, "->");
      const bool declOrQualified =
          ts.isIdent(i - 1) ||
          (ts.punct(i - 1, "::") && !(i >= 2 && ts.ident(i - 2, "std")));
      if (!member && !declOrQualified) flag(i);
    }
  }
}

// ---------------------------------------------------- DL003 pointer-order

// Fact paths only: facts derived from addresses differ run to run (ASLR,
// allocation order), so pointers may never be sorted, compared, hashed or
// used as container keys.
void rulePointerOrder(const FileInput& in, std::vector<Finding>& out) {
  if (!in.scope.factPath) return;
  const Toks ts{in.lex.tokens};

  // last token of the first template argument of the group opening at `lt`
  auto firstArgEndsInStar = [&](std::size_t lt) -> bool {
    int depth = 0;
    int parens = 0;
    std::size_t last = npos;
    const std::size_t limit = std::min(ts.size(), lt + 400);
    for (std::size_t j = lt; j < limit; ++j) {
      if (ts.punct(j, "(") || ts.punct(j, "[")) ++parens;
      else if (ts.punct(j, ")") || ts.punct(j, "]")) {
        if (parens > 0) --parens;
      }
      if (parens > 0) continue;
      if (ts.punct(j, "<")) {
        ++depth;
        continue;
      }
      if (ts.punct(j, ">") || ts.punct(j, ">>")) {
        depth -= ts.punct(j, ">>") ? 2 : 1;
        if (depth <= 0) break;  // single-argument group ended
        continue;
      }
      if (ts.punct(j, ";") || ts.punct(j, "{")) return false;  // not a template
      if (depth == 1 && ts.punct(j, ",")) break;
      if (depth >= 1) last = j;
    }
    return last != npos && ts.punct(last, "*");
  };

  for (std::size_t i = 0; i < ts.size(); ++i) {
    if (ts.isIdent(i) && ts.punct(i + 1, "<") &&
        (isAssocName(ts.text(i)) || ts.text(i) == "less" ||
         ts.text(i) == "greater" || ts.text(i) == "hash") &&
        firstArgEndsInStar(i + 1)) {
      const bool assoc = isAssocName(ts.text(i));
      report(in, out, ts.line(i), "DL003",
             assoc ? "std::" + ts.text(i) +
                         " keyed on a pointer — address order/hash is "
                         "nondeterministic and must not reach facts"
                   : "std::" + ts.text(i) +
                         "<T*> orders/hashes addresses — nondeterministic");
      continue;
    }
    if (ts.ident(i, "reinterpret_cast") && ts.punct(i + 1, "<")) {
      const std::size_t close = skipAngles(ts, i + 1);
      if (close != npos) {
        for (std::size_t j = i + 2; j + 1 < close; ++j) {
          if (ts.ident(j, "uintptr_t") || ts.ident(j, "intptr_t")) {
            report(in, out, ts.line(i), "DL003",
                   "pointer-to-integer cast in a fact path — address-derived "
                   "values are nondeterministic");
            break;
          }
        }
      }
      continue;
    }
    // &a < &b — direct address comparison
    if (ts.isPunct(i) && (ts.text(i) == "<" || ts.text(i) == ">" ||
                          ts.text(i) == "<=" || ts.text(i) == ">=")) {
      // `&` is address-of (not bitwise-and) when what precedes it cannot end
      // an expression; `return`/`case` are keywords, not value identifiers.
      const bool lhs =
          i >= 2 && ts.isIdent(i - 1) && ts.punct(i - 2, "&") &&
          !(i >= 3 &&
            ((ts.isIdent(i - 3) && !ts.ident(i - 3, "return") &&
              !ts.ident(i - 3, "case")) ||
             ts.punct(i - 3, ")") || ts.punct(i - 3, "]")));
      const bool rhs = ts.punct(i + 1, "&") && ts.isIdent(i + 2);
      if (lhs && rhs) {
        report(in, out, ts.line(i), "DL003",
               "relational comparison of addresses (&x " + ts.text(i) +
                   " &y) — allocation order is nondeterministic");
      }
    }
  }
}

// ------------------------------------------------ DL004 check-side-effect

// All scanned files.  DISP_DCHECK compiles out under NDEBUG, so a side
// effect there makes Debug and Release facts diverge outright; DISP_CHECK /
// DISP_REQUIRE stay on but an assertion that mutates state hides a fact
// transition inside error handling.  Mutation is detected heuristically:
// ++/--, assignment operators, and calls to well-known mutating members.
void ruleCheckSideEffect(const FileInput& in, std::vector<Finding>& out) {
  const Toks ts{in.lex.tokens};
  static const std::array<const char*, 23> kMutators = {
      "push_back", "pop_back",  "push_front", "pop_front", "insert",
      "erase",     "clear",     "emplace",    "emplace_back",
      "emplace_front", "reset", "release",    "resize",    "reserve",
      "shrink_to_fit", "swap",  "assign",     "splice",    "merge",
      "sort",      "remove",    "unique",     "advance"};

  for (std::size_t i = 0; i < ts.size(); ++i) {
    if (!ts.isIdent(i)) continue;
    const std::string& macro = ts.text(i);
    if (macro != "DISP_CHECK" && macro != "DISP_REQUIRE" && macro != "DISP_DCHECK") {
      continue;
    }
    if (!ts.punct(i + 1, "(")) continue;
    const std::size_t close = matchParen(ts, i + 1);
    if (close == npos) continue;
    const char* why =
        macro == "DISP_DCHECK"
            ? " — DISP_DCHECK compiles out under NDEBUG, so Debug and Release "
              "facts diverge"
            : " — assertions must be observation-only";
    auto flag = [&](std::size_t j, const std::string& what) {
      report(in, out, ts.line(j), "DL004",
             what + " inside a " + macro + " argument" + why);
    };
    for (std::size_t j = i + 2; j < close; ++j) {
      if (!ts.isPunct(j)) {
        if (ts.isIdent(j) && ts.punct(j + 1, "(") &&
            (ts.punct(j - 1, ".") || ts.punct(j - 1, "->")) &&
            std::any_of(kMutators.begin(), kMutators.end(),
                        [&](const char* m) { return ts.text(j) == m; })) {
          flag(j, "mutating call '" + ts.text(j) + "()'");
        }
        continue;
      }
      const std::string& p = ts.text(j);
      if (p == "++" || p == "--") {
        flag(j, "'" + p + "'");
        continue;
      }
      static const std::array<const char*, 11> kAssign = {
          "=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>="};
      if (std::any_of(kAssign.begin(), kAssign.end(),
                      [&](const char* a) { return p == a; })) {
        if (p == "=" && ts.punct(j - 1, "[") && ts.punct(j + 1, "]")) {
          continue;  // [=] lambda capture
        }
        flag(j, "assignment '" + p + "'");
      }
    }
    i = close;
  }
}

// -------------------------------------------------- DL005 mutable-static

// Fact paths only: mutable statics and globals make facts depend on process
// history (and are shared across the BatchRunner's threads).  thread_local,
// const, constexpr and constinit declarations pass; everything else needs a
// justification.
void ruleMutableStatic(const FileInput& in, std::vector<Finding>& out) {
  if (!in.scope.factPath) return;
  const Toks ts{in.lex.tokens};

  enum class SK { Namespace, Class, Enum, Function, Other };
  std::vector<SK> stack;
  auto current = [&] { return stack.empty() ? SK::Namespace : stack.back(); };

  auto headContains = [&](std::size_t from, std::size_t to, const char* word) {
    for (std::size_t j = from; j < to; ++j) {
      if (ts.ident(j, word)) return true;
    }
    return false;
  };
  auto headContainsPunct = [&](std::size_t from, std::size_t to, const char* p) {
    for (std::size_t j = from; j < to; ++j) {
      if (ts.punct(j, p)) return true;
    }
    return false;
  };

  std::size_t stmtStart = 0;
  int parens = 0;
  for (std::size_t i = 0; i < ts.size(); ++i) {
    if (ts.kind(i) == TokKind::Preprocessor) {
      stmtStart = i + 1;
      continue;
    }
    if (ts.punct(i, "(")) {
      ++parens;
      continue;
    }
    if (ts.punct(i, ")")) {
      if (parens > 0) --parens;
      continue;
    }
    if (parens > 0) continue;

    if (ts.punct(i, "{")) {
      SK kind;
      if (headContains(stmtStart, i, "namespace") || headContains(stmtStart, i, "extern")) {
        kind = SK::Namespace;
      } else if (headContains(stmtStart, i, "enum")) {
        kind = SK::Enum;
      } else if (headContainsPunct(stmtStart, i, "(")) {
        kind = SK::Function;  // function/lambda body, or a control block
      } else if (headContains(stmtStart, i, "class") ||
                 headContains(stmtStart, i, "struct") ||
                 headContains(stmtStart, i, "union")) {
        kind = SK::Class;
      } else if (stmtStart == i) {
        kind = current() == SK::Function ? SK::Function : SK::Other;
      } else {
        kind = current();  // brace initializer / try / do / else …
      }
      stack.push_back(kind);
      stmtStart = i + 1;
      continue;
    }
    if (ts.punct(i, "}")) {
      if (!stack.empty()) stack.pop_back();
      stmtStart = i + 1;
      continue;
    }

    // `static` declarations at any scope.
    if (ts.ident(i, "static") && current() != SK::Enum) {
      bool allowed = false;
      bool isFunctionDecl = false;
      std::size_t j = i + 1;
      const std::size_t limit = std::min(ts.size(), i + 200);
      while (j < limit) {
        if (ts.ident(j, "const") || ts.ident(j, "constexpr") ||
            ts.ident(j, "constinit") || ts.ident(j, "thread_local")) {
          allowed = true;
        }
        if (ts.punct(j, "<")) {
          const std::size_t past = skipAngles(ts, j);
          if (past != npos) {
            j = past;
            continue;
          }
        }
        if (ts.punct(j, "(")) {
          isFunctionDecl = true;  // member/free function, not a variable
          break;
        }
        if (ts.punct(j, ";") || ts.punct(j, "=") || ts.punct(j, "{")) break;
        ++j;
      }
      if (!allowed && !isFunctionDecl && j < limit) {
        const char* where = current() == SK::Function
                                ? "function-local static mutable state"
                            : current() == SK::Class
                                ? "mutable static data member"
                                : "file-scope mutable static";
        report(in, out, ts.line(i), "DL005",
               std::string(where) +
                   " in a fact path — facts must not depend on process-wide "
                   "mutable state (const/constexpr/thread_local pass)");
      }
      continue;
    }

    // Namespace-scope mutable globals declared without `static`.
    if (ts.punct(i, ";") && current() == SK::Namespace) {
      const std::size_t from = stmtStart;
      stmtStart = i + 1;
      if (from >= i) continue;
      static const std::array<const char*, 15> kSkipWords = {
          "using",  "typedef",   "extern",        "friend",   "template",
          "static", "constexpr", "constinit",     "const",    "thread_local",
          "namespace", "class",  "struct",        "union",    "static_assert"};
      bool skip = false;
      for (const char* w : kSkipWords) {
        if (headContains(from, i, w)) {
          skip = true;
          break;
        }
      }
      if (skip || headContains(from, i, "enum") || headContains(from, i, "operator")) {
        continue;
      }
      // A '(' before any '=' means a function declaration, not a variable.
      std::size_t eq = npos;
      bool parenBeforeEq = false;
      for (std::size_t j = from; j < i; ++j) {
        if (ts.punct(j, "=")) {
          eq = j;
          break;
        }
        if (ts.punct(j, "(")) {
          parenBeforeEq = true;
          break;
        }
        if (ts.punct(j, "<")) {  // skip template argument lists
          const std::size_t past = skipAngles(ts, j);
          if (past != npos && past <= i) j = past - 1;
        }
      }
      if (parenBeforeEq) continue;
      // Anchor: the declared name (identifier before '=' / the ';').
      const std::size_t endTok = eq == npos ? i : eq;
      if (endTok <= from + 1) continue;  // need at least "Type name"
      if (!ts.isIdent(endTok - 1)) continue;
      report(in, out, ts.line(endTok - 1), "DL005",
             "namespace-scope mutable global '" + ts.text(endTok - 1) +
                 "' in a fact path — facts must not depend on process-wide "
                 "mutable state");
    }
  }
}

// ---------------------------------------------------- DL006 trace-schema

// Cross-file: every stable kind name returned by traceEventKindName
// (src/core/trace.cpp) must appear in the KINDS set of
// scripts/check_trace.sh, and every KINDS entry except the engine-level
// "sample" must be an emitted kind.
struct NamedLine {
  std::string name;
  int line;
};

std::vector<NamedLine> traceKindNames(const std::string& text) {
  std::vector<NamedLine> names;
  std::istringstream is(text);
  std::string lineText;
  int lineNo = 0;
  while (std::getline(is, lineText)) {
    ++lineNo;
    const std::size_t r = lineText.find("return \"");
    if (r == std::string::npos) continue;
    const std::size_t start = r + 8;
    const std::size_t end = lineText.find('"', start);
    if (end == std::string::npos) continue;
    const std::string name = lineText.substr(start, end - start);
    if (name != "?" && !name.empty()) names.push_back({name, lineNo});
  }
  return names;
}

std::vector<NamedLine> schemaKinds(const std::string& text) {
  std::vector<NamedLine> names;
  const std::size_t anchor = text.find("KINDS");
  if (anchor == std::string::npos) return names;
  const std::size_t open = text.find('{', anchor);
  const std::size_t close = text.find('}', anchor);
  if (open == std::string::npos || close == std::string::npos || close < open) {
    return names;
  }
  int lineNo = 1 + static_cast<int>(std::count(text.begin(),
                                               text.begin() + static_cast<std::ptrdiff_t>(open), '\n'));
  std::size_t i = open;
  while (i < close) {
    if (text[i] == '\n') ++lineNo;
    if (text[i] == '"') {
      const std::size_t end = text.find('"', i + 1);
      if (end == std::string::npos || end > close) break;
      names.push_back({text.substr(i + 1, end - i - 1), lineNo});
      i = end + 1;
      continue;
    }
    ++i;
  }
  return names;
}

bool readFile(const std::string& path, std::string& out) {
  std::ifstream f(path, std::ios::binary);
  if (!f) return false;
  std::ostringstream ss;
  ss << f.rdbuf();
  out = ss.str();
  return true;
}

void ruleTraceSchema(const std::string& root, std::vector<Finding>& out) {
  const std::string tracePath = "src/core/trace.cpp";
  const std::string schemaPath = "scripts/check_trace.sh";
  std::string traceText;
  std::string schemaText;
  if (!readFile(root + "/" + tracePath, traceText) ||
      !readFile(root + "/" + schemaPath, schemaText)) {
    return;  // fixture trees / partial checkouts: nothing to cross-check
  }
  const std::vector<NamedLine> kinds = traceKindNames(traceText);
  const std::vector<NamedLine> schema = schemaKinds(schemaText);
  auto inList = [](const std::vector<NamedLine>& v, const std::string& n) {
    return std::any_of(v.begin(), v.end(),
                       [&](const NamedLine& e) { return e.name == n; });
  };
  for (const NamedLine& k : kinds) {
    if (!inList(schema, k.name)) {
      out.push_back({tracePath, k.line, "DL006",
                     "TraceEvent kind \"" + k.name +
                         "\" has no schema entry in scripts/check_trace.sh "
                         "KINDS — traced runs would fail the schema gate"});
    }
  }
  for (const NamedLine& s : schema) {
    if (s.name != "sample" && !inList(kinds, s.name)) {
      out.push_back({schemaPath, s.line, "DL006",
                     "check_trace.sh KINDS entry \"" + s.name +
                         "\" matches no TraceEvent kind in core/trace.cpp — "
                         "stale schema entry"});
    }
  }
}

}  // namespace

// ---------------------------------------------------------------- catalog

const std::vector<RuleInfo>& ruleCatalog() {
  static const std::vector<RuleInfo> catalog = {
      {"DL000", "suppression-hygiene",
       "malformed, unknown-rule or unused displint suppression comments"},
      {"DL001", "unordered-iteration",
       "unordered containers in fact paths: declarations need a keyed-lookup-only "
       "justification; iteration is forbidden"},
      {"DL002", "wallclock-entropy",
       "rand()/std::random_device/<clock>::now()/time() outside the telemetry-"
       "exempt paths (src/exp/, src/fleet/, bench/, util/mem)"},
      {"DL003", "pointer-order",
       "sorting, comparing, hashing or keying on pointer values — address order "
       "is nondeterministic"},
      {"DL004", "check-side-effect",
       "side effects inside DISP_CHECK/DISP_REQUIRE/DISP_DCHECK arguments"},
      {"DL005", "mutable-static",
       "mutable global or static state in fact paths (const/constexpr/"
       "thread_local pass)"},
      {"DL006", "trace-schema",
       "TraceEvent kinds in core/trace.cpp and the scripts/check_trace.sh KINDS "
       "schema must match exactly"},
  };
  return catalog;
}

bool knownRule(const std::string& id) {
  const std::vector<RuleInfo>& cat = ruleCatalog();
  return std::any_of(cat.begin(), cat.end(),
                     [&](const RuleInfo& r) { return id == r.id; });
}

void runFileRules(const FileInput& in, std::vector<Finding>& findings) {
  ruleUnorderedIteration(in, findings);
  ruleWallclockEntropy(in, findings);
  rulePointerOrder(in, findings);
  ruleCheckSideEffect(in, findings);
  ruleMutableStatic(in, findings);
}

void runCrossRules(const std::string& root, std::vector<Finding>& findings) {
  ruleTraceSchema(root, findings);
}

void applySuppressions(FileInput& in, std::vector<Finding>& findings) {
  std::vector<Finding> meta;
  for (const SuppressionError& e : in.lex.suppressionErrors) {
    meta.push_back({in.path, e.line, "DL000", e.message});
  }
  for (Suppression& s : in.lex.suppressions) {
    if (!knownRule(s.rule)) {
      meta.push_back({in.path, s.line, "DL000",
                      "allow(" + s.rule + ") names an unknown rule (see --list-rules)"});
      s.used = true;  // don't double-report as unused
      continue;
    }
    if (s.rule == "DL000") {
      meta.push_back(
          {in.path, s.line, "DL000", "DL000 (suppression hygiene) cannot be suppressed"});
      s.used = true;
      continue;
    }
  }
  findings.erase(
      std::remove_if(findings.begin(), findings.end(),
                     [&](const Finding& f) {
                       if (f.file != in.path || f.rule == "DL000") return false;
                       for (Suppression& s : in.lex.suppressions) {
                         if (s.rule == f.rule && s.coversLine == f.line) {
                           s.used = true;
                           return true;
                         }
                       }
                       return false;
                     }),
      findings.end());
  for (const Suppression& s : in.lex.suppressions) {
    if (!s.used) {
      meta.push_back({in.path, s.line, "DL000",
                      "unused suppression allow(" + s.rule +
                          ") — delete it or move it to the flagged line"});
    }
  }
  findings.insert(findings.end(), meta.begin(), meta.end());
}

}  // namespace displint
