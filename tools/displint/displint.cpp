// displint — the repo's determinism & invariant static-analysis gate.
//
// Enforces the byte-identical-facts contract (DESIGN.md §12) over the fact
// paths (src/core/, src/algo/) and the wider src/ tree: no hash-order
// iteration, no wall-clock/entropy sources, no pointer ordering, no side
// effects in DISP_CHECK arguments, no mutable static state — plus the
// TraceEvent ↔ check_trace.sh schema cross-check.  Token-level by design:
// it runs in milliseconds on every build, needs no compiler front end, and
// over-approximates; `// displint: allow(RULE) — justification` records the
// reviewed exceptions in place.
//
// Usage:
//   displint [--root=DIR] [--compdb=FILE] [--assume=fact|exempt|auto] [files…]
//   displint --list-rules
//
// With no explicit files, scans every *.hpp/*.cpp under ROOT/src plus the
// translation units listed in the compilation database (filtered to ROOT).
// Exit status: 0 clean, 1 findings, 2 usage/IO error.

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "lexer.hpp"
#include "rules.hpp"

namespace fs = std::filesystem;
using displint::FileInput;
using displint::Finding;
using displint::RuleInfo;
using displint::Scope;

namespace {

struct Options {
  std::string root = ".";
  std::string compdb;
  std::string assume = "auto";  // fact | exempt | auto
  bool listRules = false;
  std::vector<std::string> files;
};

int usage(const char* msg) {
  if (msg != nullptr) std::cerr << "displint: " << msg << "\n";
  std::cerr << "usage: displint [--root=DIR] [--compdb=FILE] "
               "[--assume=fact|exempt|auto] [files...]\n"
               "       displint --list-rules\n";
  return 2;
}

bool parseArgs(int argc, char** argv, Options& opt) {
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto value = [&](const char* prefix) -> std::string {
      return a.substr(std::string(prefix).size());
    };
    if (a == "--list-rules") {
      opt.listRules = true;
    } else if (a.rfind("--root=", 0) == 0) {
      opt.root = value("--root=");
    } else if (a.rfind("--compdb=", 0) == 0) {
      opt.compdb = value("--compdb=");
    } else if (a.rfind("--assume=", 0) == 0) {
      opt.assume = value("--assume=");
      if (opt.assume != "fact" && opt.assume != "exempt" && opt.assume != "auto") {
        return false;
      }
    } else if (a.rfind("--", 0) == 0) {
      return false;
    } else {
      opt.files.push_back(a);
    }
  }
  return true;
}

/// Normalizes `path` to a root-relative, forward-slash form when it lives
/// under `root`; otherwise returns it untouched.
std::string relativeTo(const std::string& root, const std::string& path) {
  std::error_code ec;
  const fs::path canonRoot = fs::weakly_canonical(root, ec);
  const fs::path canonPath = fs::weakly_canonical(path, ec);
  const fs::path rel = canonPath.lexically_relative(canonRoot);
  if (rel.empty() || rel.native().rfind("..", 0) == 0) return path;
  return rel.generic_string();
}

Scope classify(const std::string& relPath, const std::string& assume) {
  if (assume == "fact") return {true, false};
  if (assume == "exempt") return {false, true};
  Scope s;
  s.factPath = relPath.rfind("src/core/", 0) == 0 || relPath.rfind("src/algo/", 0) == 0;
  s.telemetryExempt = relPath.rfind("src/exp/", 0) == 0 ||
                      relPath.rfind("src/fleet/", 0) == 0 ||
                      relPath.rfind("src/util/mem.", 0) == 0 ||
                      relPath.rfind("bench/", 0) == 0;
  return s;
}

/// Minimal compile_commands.json reader: collects the values of every
/// "file" key.  Tolerates any formatting clang/cmake emit; handles the
/// standard JSON string escapes.
std::vector<std::string> compdbFiles(const std::string& path, std::string& err) {
  std::ifstream f(path, std::ios::binary);
  if (!f) {
    err = "cannot read compilation database: " + path;
    return {};
  }
  std::stringstream ss;
  ss << f.rdbuf();
  const std::string text = ss.str();
  std::vector<std::string> files;
  std::size_t i = 0;
  auto readString = [&](std::size_t start, std::string& out) -> std::size_t {
    std::size_t j = start;
    for (; j < text.size(); ++j) {
      if (text[j] == '\\' && j + 1 < text.size()) {
        const char e = text[j + 1];
        out += e == 'n' ? '\n' : e == 't' ? '\t' : e;
        ++j;
        continue;
      }
      if (text[j] == '"') return j + 1;
      out += text[j];
    }
    return j;
  };
  while ((i = text.find("\"file\"", i)) != std::string::npos) {
    i += 6;
    while (i < text.size() && (text[i] == ' ' || text[i] == ':' || text[i] == '\n')) ++i;
    if (i >= text.size() || text[i] != '"') continue;
    std::string value;
    i = readString(i + 1, value);
    files.push_back(std::move(value));
  }
  return files;
}

bool isSourceFile(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".hpp" || ext == ".cpp" || ext == ".h" || ext == ".cc";
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!parseArgs(argc, argv, opt)) return usage("bad argument");
  if (opt.listRules) {
    for (const RuleInfo& r : displint::ruleCatalog()) {
      std::cout << r.id << "  " << r.name << "\n    " << r.summary << "\n";
    }
    return 0;
  }

  // ------------------------------------------------------- file discovery
  std::vector<std::string> paths;  // as given / discovered
  if (!opt.files.empty()) {
    paths = opt.files;
  } else {
    std::error_code ec;
    const fs::path srcDir = fs::path(opt.root) / "src";
    if (fs::is_directory(srcDir, ec)) {
      for (const auto& entry : fs::recursive_directory_iterator(srcDir, ec)) {
        if (entry.is_regular_file() && isSourceFile(entry.path())) {
          paths.push_back(entry.path().string());
        }
      }
    }
    if (!opt.compdb.empty()) {
      std::string err;
      std::vector<std::string> tu = compdbFiles(opt.compdb, err);
      if (!err.empty()) {
        std::cerr << "displint: " << err << "\n";
        return 2;
      }
      for (std::string& f : tu) {
        // Only lint sources owned by the tree being scanned (the database
        // also lists third-party TUs, e.g. a vendored gtest).  displint's
        // own implementation is exempt: it quotes the suppression grammar
        // and rule trigger patterns as string/comment literals throughout.
        const std::string rel = relativeTo(opt.root, f);
        if (rel.rfind("tools/displint/", 0) == 0) continue;
        if (rel.rfind("src/", 0) == 0 || rel.rfind("bench/", 0) == 0 ||
            rel.rfind("tools/", 0) == 0) {
          paths.push_back(f);
        }
      }
    }
    if (paths.empty()) {
      std::cerr << "displint: nothing to scan under " << opt.root
                << " (no src/ directory and no --compdb files)\n";
      return 2;
    }
  }

  // Normalize, dedupe, fixed order — output must be deterministic.
  std::vector<std::string> relPaths;
  relPaths.reserve(paths.size());
  for (const std::string& p : paths) relPaths.push_back(relativeTo(opt.root, p));
  std::sort(relPaths.begin(), relPaths.end());
  relPaths.erase(std::unique(relPaths.begin(), relPaths.end()), relPaths.end());

  // ------------------------------------------------------------- analysis
  std::vector<FileInput> inputs;
  std::vector<Finding> findings;
  for (const std::string& rel : relPaths) {
    const fs::path full = fs::path(rel).is_absolute() ? fs::path(rel)
                                                      : fs::path(opt.root) / rel;
    std::ifstream f(full, std::ios::binary);
    if (!f) {
      std::cerr << "displint: cannot read " << full.string() << "\n";
      return 2;
    }
    std::stringstream ss;
    ss << f.rdbuf();
    FileInput in;
    in.path = rel;
    in.scope = classify(rel, opt.assume);
    in.lex = displint::lex(ss.str());
    displint::runFileRules(in, findings);
    inputs.push_back(std::move(in));
  }
  displint::runCrossRules(opt.root, findings);

  std::size_t suppressed = 0;
  for (FileInput& in : inputs) {
    displint::applySuppressions(in, findings);
    for (const displint::Suppression& s : in.lex.suppressions) {
      if (s.used && displint::knownRule(s.rule) && s.rule != "DL000") ++suppressed;
    }
  }

  std::sort(findings.begin(), findings.end(), [](const Finding& a, const Finding& b) {
    if (a.file != b.file) return a.file < b.file;
    if (a.line != b.line) return a.line < b.line;
    if (a.rule != b.rule) return a.rule < b.rule;
    return a.message < b.message;
  });

  for (const Finding& f : findings) {
    std::cout << f.file << ":" << f.line << ": [" << f.rule << "] " << f.message
              << "\n";
  }
  std::cout << "displint: " << findings.size() << " finding"
            << (findings.size() == 1 ? "" : "s") << ", " << suppressed
            << " suppressed, " << relPaths.size() << " files scanned\n";
  return findings.empty() ? 0 : 1;
}
