#pragma once
// displint lexer: a determinism-lint-grade C++ tokenizer.
//
// This is not a compiler front end.  It produces exactly what the displint
// rules (rules.hpp) need and nothing more: a comment-free code token stream
// with line numbers, preprocessor directives folded into single tokens, and
// the `// displint: allow(RULE) — justification` suppression comments parsed
// out as structured records.  Strings, raw strings, char literals and
// line splices are handled so rule scans never misfire inside literal text.

#include <cstdint>
#include <string>
#include <vector>

namespace displint {

enum class TokKind : std::uint8_t {
  Identifier,    // identifiers and keywords (no distinction needed)
  Number,        // numeric literal, including separators/suffixes
  String,        // "..." or R"(...)" — text is the literal without quotes
  CharLit,       // '...'
  Punct,         // operator/punctuator, maximal munch (e.g. "<<=", "::")
  Preprocessor,  // one whole logical directive line, splices joined
};

struct Token {
  TokKind kind = TokKind::Punct;
  std::string text;
  int line = 0;
};

/// A parsed `displint: allow(...)` comment.  `standalone` comments sit on a
/// line of their own and cover the next line that carries code; trailing
/// comments cover their own line.
struct Suppression {
  int line = 0;           ///< line the comment starts on
  int coversLine = 0;     ///< resolved line the suppression applies to
  std::string rule;       ///< e.g. "DL001"
  std::string justification;
  bool standalone = false;
  bool used = false;
};

/// A malformed displint comment (missing justification, bad syntax).
struct SuppressionError {
  int line = 0;
  std::string message;
};

struct LexedFile {
  std::vector<Token> tokens;
  std::vector<Suppression> suppressions;
  std::vector<SuppressionError> suppressionErrors;
};

/// Tokenizes `source`.  Never throws on malformed input — an unterminated
/// literal simply ends the token at end of file; lint rules degrade, the
/// tool does not crash on code the compiler would reject anyway.
[[nodiscard]] LexedFile lex(const std::string& source);

}  // namespace displint
