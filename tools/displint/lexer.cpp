#include "lexer.hpp"

#include <array>
#include <cctype>
#include <cstddef>

namespace displint {

namespace {

[[nodiscard]] bool isIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}
[[nodiscard]] bool isIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

// Multi-character punctuators, longest first so maximal munch is a simple
// first-match scan.
constexpr std::array<const char*, 22> kPuncts = {
    "<<=", ">>=", "...", "->*", "::", "->", "++", "--", "<<", ">>", "<=",
    ">=",  "==",  "!=",  "&&",  "||", "+=", "-=", "*=", "/=", "%=", "^=",
};

struct Lexer {
  const std::string& src;
  std::size_t i = 0;
  int line = 1;
  int lastCodeLine = 0;  // line of the most recent non-comment token
  LexedFile out;

  explicit Lexer(const std::string& s) : src(s) {}

  [[nodiscard]] char at(std::size_t k) const { return k < src.size() ? src[k] : '\0'; }
  [[nodiscard]] char cur() const { return at(i); }
  [[nodiscard]] char next() const { return at(i + 1); }

  void push(TokKind kind, std::string text, int tokLine) {
    lastCodeLine = tokLine;
    out.tokens.push_back({kind, std::move(text), tokLine});
  }

  // --- literal scanners --------------------------------------------------

  void scanString() {
    const int start = line;
    std::string text;
    ++i;  // opening quote
    while (i < src.size() && src[i] != '"') {
      if (src[i] == '\\' && i + 1 < src.size()) {
        if (src[i + 1] == '\n') ++line;
        text += src[i];
        text += src[i + 1];
        i += 2;
        continue;
      }
      if (src[i] == '\n') ++line;  // compiler would reject; keep line counts sane
      text += src[i++];
    }
    if (i < src.size()) ++i;  // closing quote
    push(TokKind::String, std::move(text), start);
  }

  void scanRawString() {
    const int start = line;
    // at 'R', next is '"': R"delim( ... )delim"
    i += 2;
    std::string delim;
    while (i < src.size() && src[i] != '(') delim += src[i++];
    if (i < src.size()) ++i;  // '('
    const std::string closer = ")" + delim + "\"";
    std::string text;
    while (i < src.size() && src.compare(i, closer.size(), closer) != 0) {
      if (src[i] == '\n') ++line;
      text += src[i++];
    }
    if (i < src.size()) i += closer.size();
    push(TokKind::String, std::move(text), start);
  }

  void scanCharLit() {
    const int start = line;
    std::string text;
    ++i;  // opening quote
    while (i < src.size() && src[i] != '\'') {
      if (src[i] == '\\' && i + 1 < src.size()) {
        text += src[i];
        text += src[i + 1];
        i += 2;
        continue;
      }
      if (src[i] == '\n') ++line;
      text += src[i++];
    }
    if (i < src.size()) ++i;  // closing quote
    push(TokKind::CharLit, std::move(text), start);
  }

  void scanNumber() {
    const int start = line;
    std::string text;
    while (i < src.size() &&
           (isIdentChar(src[i]) || src[i] == '\'' || src[i] == '.' ||
            ((src[i] == '+' || src[i] == '-') && !text.empty() &&
             (text.back() == 'e' || text.back() == 'E' || text.back() == 'p' ||
              text.back() == 'P')))) {
      if (src[i] == '\'' && !isIdentChar(at(i + 1))) break;  // char literal follows
      text += src[i++];
    }
    push(TokKind::Number, std::move(text), start);
  }

  // --- comments & suppressions -------------------------------------------

  // Parses `displint: allow(DL001[, DL005]) — justification` out of a
  // comment body.  Non-displint comments are ignored.
  void handleComment(const std::string& body, int commentLine, bool standalone) {
    const std::size_t tag = body.find("displint:");
    if (tag == std::string::npos) return;
    std::size_t p = tag + 9;
    auto skipWs = [&] {
      while (p < body.size() && std::isspace(static_cast<unsigned char>(body[p])) != 0) ++p;
    };
    skipWs();
    if (body.compare(p, 5, "allow") != 0) {
      out.suppressionErrors.push_back(
          {commentLine, "displint comment without allow(RULE)"});
      return;
    }
    p += 5;
    skipWs();
    if (p >= body.size() || body[p] != '(') {
      out.suppressionErrors.push_back({commentLine, "expected '(' after allow"});
      return;
    }
    ++p;
    std::vector<std::string> rules;
    std::string rule;
    bool closed = false;
    for (; p < body.size(); ++p) {
      const char c = body[p];
      if (c == ')') {
        closed = true;
        ++p;
        break;
      }
      if (c == ',') {
        rules.push_back(rule);
        rule.clear();
      } else if (std::isspace(static_cast<unsigned char>(c)) == 0) {
        rule += c;
      }
    }
    rules.push_back(rule);
    if (!closed) {
      out.suppressionErrors.push_back({commentLine, "unterminated allow(...) list"});
      return;
    }
    // A justification is mandatory: skip the separator (em dash, '-' or ':')
    // and require non-empty text after it.
    skipWs();
    while (p < body.size() &&
           (body[p] == '-' || body[p] == ':' ||
            static_cast<unsigned char>(body[p]) >= 0x80)) {
      ++p;  // em dash is a multi-byte UTF-8 sequence; consume it wholesale
    }
    skipWs();
    std::string justification = body.substr(p);
    while (!justification.empty() &&
           std::isspace(static_cast<unsigned char>(justification.back())) != 0) {
      justification.pop_back();
    }
    if (justification.empty()) {
      out.suppressionErrors.push_back(
          {commentLine,
           "suppression needs a justification: // displint: allow(RULE) — why"});
      return;
    }
    for (const std::string& r : rules) {
      if (r.empty()) {
        out.suppressionErrors.push_back({commentLine, "empty rule id in allow(...)"});
        continue;
      }
      Suppression s;
      s.line = commentLine;
      s.coversLine = standalone ? -1 : commentLine;  // resolved after lexing
      s.rule = r;
      s.justification = justification;
      s.standalone = standalone;
      out.suppressions.push_back(std::move(s));
    }
  }

  void scanLineComment() {
    const int start = line;
    const bool standalone = lastCodeLine != line;
    i += 2;
    std::string body;
    while (i < src.size() && src[i] != '\n') {
      if (src[i] == '\\' && at(i + 1) == '\n') {  // spliced comment continues
        ++line;
        i += 2;
        body += ' ';
        continue;
      }
      body += src[i++];
    }
    handleComment(body, start, standalone);
  }

  void scanBlockComment() {
    const int start = line;
    const bool standalone = lastCodeLine != line;
    i += 2;
    std::string body;
    while (i < src.size() && !(src[i] == '*' && at(i + 1) == '/')) {
      if (src[i] == '\n') ++line;
      body += src[i++];
    }
    if (i < src.size()) i += 2;
    handleComment(body, start, standalone);
  }

  // --- preprocessor -------------------------------------------------------

  // One logical directive line becomes one token; backslash continuations
  // are joined so macro bodies (e.g. DISP_CHECK's definition) never leak
  // into the code token stream.
  void scanPreprocessor() {
    const int start = line;
    lastCodeLine = start;  // a trailing suppression covers the directive line
    std::string text;
    while (i < src.size() && src[i] != '\n') {
      if (src[i] == '\\' && at(i + 1) == '\n') {
        ++line;
        i += 2;
        text += ' ';
        continue;
      }
      if (src[i] == '/' && at(i + 1) == '/') {  // trailing comment on directive
        scanLineComment();
        break;
      }
      if (src[i] == '/' && at(i + 1) == '*') {
        scanBlockComment();
        text += ' ';
        continue;
      }
      text += src[i++];
    }
    push(TokKind::Preprocessor, std::move(text), start);
  }

  // --- main loop ----------------------------------------------------------

  void run() {
    bool onlyWsOnLine = true;
    while (i < src.size()) {
      const char c = src[i];
      if (c == '\n') {
        ++line;
        ++i;
        onlyWsOnLine = true;
        continue;
      }
      if (std::isspace(static_cast<unsigned char>(c)) != 0) {
        ++i;
        continue;
      }
      if (c == '\\' && next() == '\n') {
        ++line;
        i += 2;
        continue;
      }
      if (c == '/' && next() == '/') {
        scanLineComment();
        continue;
      }
      if (c == '/' && next() == '*') {
        scanBlockComment();
        // a block comment does not make the rest of the line "code yet"
        continue;
      }
      if (c == '#' && onlyWsOnLine) {
        scanPreprocessor();
        onlyWsOnLine = true;  // directive consumed its whole line
        continue;
      }
      onlyWsOnLine = false;
      if (c == '"') {
        scanString();
        continue;
      }
      if (c == 'R' && next() == '"') {
        scanRawString();
        continue;
      }
      if (c == '\'') {
        scanCharLit();
        continue;
      }
      if (isIdentStart(c)) {
        const int start = line;
        std::string text;
        while (i < src.size() && isIdentChar(src[i])) text += src[i++];
        // String-literal prefixes (u8"...", L"...") — treat as the string.
        if ((text == "u8" || text == "u" || text == "U" || text == "L") && cur() == '"') {
          scanString();
          continue;
        }
        push(TokKind::Identifier, std::move(text), start);
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c)) != 0 ||
          (c == '.' && std::isdigit(static_cast<unsigned char>(next())) != 0)) {
        scanNumber();
        continue;
      }
      // Punctuator: maximal munch against the multi-char table.
      bool matched = false;
      for (const char* p : kPuncts) {
        const std::size_t len = p[2] == '\0' ? 2 : 3;
        if (src.compare(i, len, p) == 0) {
          push(TokKind::Punct, p, line);
          i += len;
          matched = true;
          break;
        }
      }
      if (matched) continue;
      push(TokKind::Punct, std::string(1, c), line);
      ++i;
    }
    resolveStandaloneSuppressions();
  }

  // A standalone suppression covers the next line that carries a code token.
  void resolveStandaloneSuppressions() {
    for (Suppression& s : out.suppressions) {
      if (!s.standalone) continue;
      for (const Token& t : out.tokens) {
        if (t.line > s.line) {
          s.coversLine = t.line;
          break;
        }
      }
    }
  }
};

}  // namespace

LexedFile lex(const std::string& source) {
  Lexer lx(source);
  lx.run();
  return std::move(lx.out);
}

}  // namespace displint
