#!/usr/bin/env bash
# Validates a disp_fleet run's fleet_events.jsonl against the event schema
# (src/fleet/events.hpp / DESIGN.md §13):
#
#   scripts/check_fleet_events.sh fleet_events.jsonl
#
# Checks, per line: valid JSON, a known "event" kind, exactly the required
# keys for that kind (plus seq/t_ms), and numeric payloads where the schema
# demands them.  Checks, per file: "seq" strictly increasing across the
# whole file (a resumed coordinator continues the sequence), "t_ms"
# non-decreasing within each coordinator run (it resets at run_start), at
# least one run_start, and a terminal run_done.  Exits nonzero with a
# diagnostic on the first violation.
set -euo pipefail

EVENTS="${1:?usage: scripts/check_fleet_events.sh <fleet_events.jsonl>}"

python3 - "${EVENTS}" <<'EOF'
import json, sys

path = sys.argv[1]
REQUIRED = {
    "run_start": {"sweeps", "fleet", "shards", "workers", "cells", "resumed"},
    "resume": {"shard", "state", "cells_done", "cells", "complete"},
    "spawn": {"shard", "attempt", "pid", "worker", "output"},
    "exit": {"shard", "attempt", "pid", "code", "signal"},
    "stall": {"shard", "attempt", "idle_ms"},
    "chaos_kill": {"shard", "attempt", "rows"},
    "retry": {"shard", "attempt", "delay_ms"},
    "poison": {"shard", "attempts"},
    "shard_done": {"shard", "attempts", "rows", "cells", "empty"},
    "merge": {"files", "rows_in", "rows_out", "dups", "partial_tails",
              "output"},
    "divergence": {"cells"},
    "run_done": {"ok", "failed_shards"},
}
NUMERIC = {"seq", "t_ms", "shard", "attempt", "attempts", "cells",
           "cells_done", "workers", "shards", "rows", "rows_in", "rows_out",
           "dups", "partial_tails", "files", "idle_ms", "delay_ms", "pid"}
YESNO = {"resumed", "complete", "empty", "ok"}

last_seq = 0
last_t = 0
counts = dict.fromkeys(REQUIRED, 0)
last_kind = None

with open(path) as f:
    for lineno, line in enumerate(f, 1):
        line = line.strip()
        if not line:
            continue
        try:
            rec = json.loads(line)
        except json.JSONDecodeError as e:
            sys.exit(f"{path}:{lineno}: invalid JSON: {e}")
        kind = rec.get("event")
        if kind not in REQUIRED:
            sys.exit(f"{path}:{lineno}: unknown event kind {kind!r}")
        counts[kind] += 1
        last_kind = kind
        want = {"seq", "t_ms", "event"} | REQUIRED[kind]
        if set(rec) != want:
            sys.exit(f"{path}:{lineno}: {kind} line has keys {sorted(rec)}, "
                     f"expected {sorted(want)}")
        for key in set(rec) & NUMERIC:
            if not str(rec[key]).isdigit():
                sys.exit(f"{path}:{lineno}: field {key!r} = {rec[key]!r} is "
                         f"not a non-negative integer")
        for key in set(rec) & YESNO:
            if rec[key] not in ("yes", "no"):
                sys.exit(f"{path}:{lineno}: field {key!r} = {rec[key]!r} is "
                         f"not yes/no")
        seq = int(rec["seq"])
        if seq <= last_seq:
            sys.exit(f"{path}:{lineno}: seq not strictly increasing: "
                     f"{last_seq} -> {seq}")
        last_seq = seq
        t = int(rec["t_ms"])
        if kind == "run_start":
            last_t = 0  # t_ms is per-coordinator-run wall clock
        if t < last_t:
            sys.exit(f"{path}:{lineno}: t_ms went backwards within a run: "
                     f"{last_t} -> {t}")
        last_t = t

if counts["run_start"] == 0:
    sys.exit(f"{path}: no run_start event — not a fleet event stream")
if last_kind != "run_done":
    sys.exit(f"{path}: stream does not end with run_done (last: {last_kind})")
# A coordinator SIGKILL'd between spawn and exit legitimately leaves an
# unmatched spawn behind (resume re-dispatches the shard), but an exit
# without a spawn is impossible history.
if counts["exit"] > counts["spawn"]:
    sys.exit(f"{path}: {counts['exit']} exits exceed {counts['spawn']} spawns")

summary = ", ".join(f"{k}={counts[k]}" for k in sorted(counts) if counts[k])
print(f"OK {path}: seq {last_seq}, {summary}")
EOF
