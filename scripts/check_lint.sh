#!/usr/bin/env bash
# Static-analysis gate: displint (always) + clang-tidy (when installed).
#
#   scripts/check_lint.sh [build-dir]
#
# Builds displint in the given build tree (default: build/), then runs it
# over src/ + bench/ + tools/ using the exported compilation database.
# Exit is nonzero on any unsuppressed displint finding.
#
# clang-tidy runs over the library TUs with the repo's .clang-tidy when the
# binary is available.  The container image ships no clang, so locally this
# step is skipped; in CI it is installed and runs.  Tidy findings are
# advisory unless LINT_TIDY_STRICT=1 (the curated check set still has known
# noise on generated/test code we don't want blocking local work).
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD="${1:-build}"

if [[ ! -f "$BUILD/CMakeCache.txt" ]]; then
  cmake -B "$BUILD" -S . >/dev/null
fi
cmake --build "$BUILD" --target displint -j"$(nproc)" >/dev/null

if [[ ! -f "$BUILD/compile_commands.json" ]]; then
  echo "check_lint: $BUILD/compile_commands.json missing (re-run cmake)" >&2
  exit 2
fi

echo "== displint =="
"$BUILD/displint" --root=. --compdb="$BUILD/compile_commands.json"

if command -v clang-tidy >/dev/null 2>&1; then
  echo "== clang-tidy =="
  # Library TUs only: tests/benches inherit the same headers, and tidy over
  # GTest macro expansions is all noise.
  mapfile -t tus < <(find src -name '*.cpp' | sort)
  if clang-tidy -p "$BUILD" --quiet "${tus[@]}"; then
    echo "clang-tidy: clean"
  else
    if [[ "${LINT_TIDY_STRICT:-0}" == "1" ]]; then
      echo "check_lint: clang-tidy findings (LINT_TIDY_STRICT=1)" >&2
      exit 1
    fi
    echo "check_lint: clang-tidy findings above are advisory" \
         "(set LINT_TIDY_STRICT=1 to gate)" >&2
  fi
else
  echo "== clang-tidy == (not installed; skipped)"
fi

echo "check_lint: OK"
