#!/usr/bin/env python3
"""Asserts two JSONL result streams agree on every fact column.

    python3 scripts/ci_compare_facts.py REFERENCE.jsonl CANDIDATE.jsonl

Telemetry columns (timings, rates, RSS probes, host shape — the set the
collector's divergence auditor exempts, see src/fleet/collector.cpp) are
stripped; everything else must match as an unordered multiset of rows.
Used by the fleet-smoke CI job to pin `disp_fleet run` merges against an
unsharded single-process run at tolerance 0.
"""
import json
import sys

TELEMETRY = {"ms", "speedup", "Mact/s", "Mmoves/s", "load_ms", "peak_rss_mb",
             "rss_lb_mb", "rss_ratio", "hardware_threads", "oversubscribed",
             "lanes"}


def facts(path):
    rows = []
    for lineno, line in enumerate(open(path), 1):
        line = line.strip()
        if not line:
            continue
        try:
            rec = json.loads(line)
        except json.JSONDecodeError as e:
            sys.exit(f"{path}:{lineno}: invalid JSON: {e}")
        rows.append(tuple(sorted((k, v) for k, v in rec.items()
                                 if k not in TELEMETRY)))
    if not rows:
        sys.exit(f"{path}: no rows")
    return sorted(rows)


def main():
    if len(sys.argv) != 3:
        sys.exit(__doc__)
    ref, cand = facts(sys.argv[1]), facts(sys.argv[2])
    if ref != cand:
        only_ref = [r for r in ref if r not in cand]
        only_cand = [r for r in cand if r not in ref]
        for r in only_ref[:5]:
            print(f"only in {sys.argv[1]}: {dict(r)}", file=sys.stderr)
        for r in only_cand[:5]:
            print(f"only in {sys.argv[2]}: {dict(r)}", file=sys.stderr)
        sys.exit(f"fact divergence: {len(ref)} reference rows vs "
                 f"{len(cand)} candidate rows, "
                 f"{len(only_ref)}+{len(only_cand)} differ")
    print(f"{len(ref)} rows fact-identical")


if __name__ == "__main__":
    main()
