#!/usr/bin/env bash
# Snapshots the Table 1 sweeps into BENCH_table1.json so future PRs have a
# perf trajectory to compare against.  Shells the unified disp_bench driver
# once with a JSON-lines sink and repackages the records into the snapshot
# layout (rows keyed by table column, fit lines).  Run from the repo root
# after a Release build in ./build; pass a build dir to override.
#
# Also runs the `scaling` sweep (E18: single-run wallclock vs --run-threads
# lanes) into BENCH_scaling.json.  Scaling rows are wallclock telemetry
# stamped with hardware_threads — they document the machine they came from
# and are NOT compared by compare_bench_baseline.sh (only the simulation
# facts inside them are guarded, by the bench's own lane-invariance checks).
#
# And the `scale_real` campaign (E19: web-scale ingest + peak RSS) into
# BENCH_scale_real.json.  Its memory/wallclock columns are telemetry too;
# run scripts/make_scale_data.sh first so the 10^7-node file cells are
# included (they are skipped with a note otherwise).
#
# And the `faults` campaign (E20: fault loads vs protocols) into
# BENCH_faults.json — the self-stabilization scorecard, with per-cell
# recovered / recovered_at verdict columns.  Its rows are seed-deterministic
# facts (like Table 1), so re-recording on any machine reproduces them
# byte-identically.
set -euo pipefail

BUILD_DIR="${1:-build}"
REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
OUT="${REPO_ROOT}/BENCH_table1.json"
SCALING_OUT="${REPO_ROOT}/BENCH_scaling.json"
SCALE_REAL_OUT="${REPO_ROOT}/BENCH_scale_real.json"
FAULTS_OUT="${REPO_ROOT}/BENCH_faults.json"

SWEEPS=(table1_sync_rooted table1_sync_general table1_async_rooted
        table1_async_general table1_memory)

cd "${REPO_ROOT}"
if [ ! -x "${BUILD_DIR}/disp_bench" ]; then
  echo "error: ${BUILD_DIR}/disp_bench not found — build first" \
       "(cmake -B ${BUILD_DIR} -S . && cmake --build ${BUILD_DIR} -j)" >&2
  exit 1
fi

JSONL="$(mktemp)"
trap 'rm -f "${JSONL}"' EXIT
"${BUILD_DIR}/disp_bench" "${SWEEPS[@]}" --jsonl="${JSONL}" > /dev/null

python3 - "${JSONL}" "${OUT}" "${SWEEPS[@]}" <<'EOF'
import json, sys

jsonl_path, out_path, sweeps = sys.argv[1], sys.argv[2], sys.argv[3:]
benches = {f"bench_{name}": {"rows": [], "fits": []} for name in sweeps}
with open(jsonl_path) as f:
    for line in f:
        rec = json.loads(line)
        key = f"bench_{rec.pop('sweep')}"
        if "fit" in rec:
            benches[key]["fits"].append(rec["fit"])
        else:
            rec.pop("table", None)
            benches[key]["rows"].append(rec)

snapshot = {"scale": 1.0, "benches": benches}
with open(out_path, "w") as f:
    json.dump(snapshot, f, indent=1)
    f.write("\n")
for name, bench in benches.items():
    print(f"{name}: {len(bench['rows'])} rows")
print(f"wrote {out_path}")
EOF

# Single-run scaling telemetry (facts are lane-invariant — the bench
# DISP_CHECKs that itself; ms/speedup are machine-dependent telemetry).
SCALING_JSONL="$(mktemp)"
trap 'rm -f "${JSONL}" "${SCALING_JSONL}"' EXIT
"${BUILD_DIR}/disp_bench" scaling --threads=1 --jsonl="${SCALING_JSONL}" > /dev/null

python3 - "${SCALING_JSONL}" "${SCALING_OUT}" scaling <<'EOF'
import json, sys

jsonl_path, out_path, sweeps = sys.argv[1], sys.argv[2], sys.argv[3:]
benches = {f"bench_{name}": {"rows": [], "fits": []} for name in sweeps}
with open(jsonl_path) as f:
    for line in f:
        rec = json.loads(line)
        key = f"bench_{rec.pop('sweep')}"
        # Keep only the per-lane telemetry records ("table": "cell", which
        # carry family + hardware_threads); emitTable additionally mirrors
        # the markdown rows under per-family titles — skip those.
        if rec.pop("table", None) == "cell":
            benches[key]["rows"].append(rec)

snapshot = {"scale": 1.0, "benches": benches}
with open(out_path, "w") as f:
    json.dump(snapshot, f, indent=1)
    f.write("\n")
for name, bench in benches.items():
    print(f"{name}: {len(bench['rows'])} rows")
print(f"wrote {out_path}")
EOF

# Web-scale memory campaign (E19).  All of its columns are telemetry
# (peak RSS, ingest wallclock) or already guarded by the engine's own
# invariants; the snapshot documents the machine + datasets it came from.
#
# One disp_bench process per graph: a k = 2^20 campaign leaves the heap too
# fragmented for the probe's malloc_trim to compact (a million freed fiber
# frames), so in a shared process the first graph's slack floors every later
# graph's watermark.  Keep the list in sync with the benches_scale.cpp
# defaults.
SCALE_REAL_JSONL="$(mktemp)"
SCALE_REAL_PART="$(mktemp)"
FAULTS_JSONL="$(mktemp)"
trap 'rm -f "${JSONL}" "${SCALING_JSONL}" "${SCALE_REAL_JSONL}" "${SCALE_REAL_PART}" "${FAULTS_JSONL}"' EXIT
for spec in "er:fast=1,n=1048576" "ba:n=1048576" "rmat:n=1048576" \
            "file:bench/data/ba_1e7.e"; do
  "${BUILD_DIR}/disp_bench" scale_real --graphs="${spec}" --threads=1 \
      --jsonl="${SCALE_REAL_PART}" > /dev/null
  cat "${SCALE_REAL_PART}" >> "${SCALE_REAL_JSONL}"
done

python3 - "${SCALE_REAL_JSONL}" "${SCALE_REAL_OUT}" scale_real <<'EOF'
import json, sys

jsonl_path, out_path, sweeps = sys.argv[1], sys.argv[2], sys.argv[3:]
benches = {f"bench_{name}": {"rows": [], "notes": []} for name in sweeps}
with open(jsonl_path) as f:
    for line in f:
        rec = json.loads(line)
        key = f"bench_{rec.pop('sweep')}"
        if "note" in rec:
            # Skipped datasets (missing bench/data files) — keep the note so
            # the snapshot says what was absent when it was recorded.
            benches[key]["notes"].append(rec["note"])
            continue
        table = rec.pop("table", None)
        # Keep the per-cell telemetry rows plus the ingest-timing rows
        # (mirrored by emitTable under "ingest: PATH" titles); drop the
        # markdown mirrors of the per-graph cell tables.
        if table == "cell":
            benches[key]["rows"].append(rec)
        elif isinstance(table, str) and table.startswith("ingest:"):
            rec["table"] = table
            benches[key]["rows"].append(rec)

snapshot = {"scale": 1.0, "benches": benches}
with open(out_path, "w") as f:
    json.dump(snapshot, f, indent=1)
    f.write("\n")
for name, bench in benches.items():
    print(f"{name}: {len(bench['rows'])} rows, {len(bench['notes'])} notes")
print(f"wrote {out_path}")
EOF

# Fault campaign (E20): the self-stabilization scorecard.  Every column is
# a seed-deterministic fact (verdicts, fault counts, recovery times), so
# the snapshot is reproducible byte-for-byte like the Table 1 sweeps.
"${BUILD_DIR}/disp_bench" faults --jsonl="${FAULTS_JSONL}" > /dev/null

python3 - "${FAULTS_JSONL}" "${FAULTS_OUT}" faults <<'EOF'
import json, sys

jsonl_path, out_path, sweeps = sys.argv[1], sys.argv[2], sys.argv[3:]
benches = {f"bench_{name}": {"rows": [], "fits": []} for name in sweeps}
with open(jsonl_path) as f:
    for line in f:
        rec = json.loads(line)
        key = f"bench_{rec.pop('sweep')}"
        rec.pop("table", None)
        benches[key]["rows"].append(rec)

snapshot = {"scale": 1.0, "benches": benches}
with open(out_path, "w") as f:
    json.dump(snapshot, f, indent=1)
    f.write("\n")
for name, bench in benches.items():
    rows = bench["rows"]
    recovered = sum(1 for r in rows if r.get("recovered") == "yes")
    print(f"{name}: {len(rows)} rows ({recovered} recovered)")
print(f"wrote {out_path}")
EOF
