#!/usr/bin/env bash
# Snapshots the bench_table1_* binaries into BENCH_table1.json so future
# PRs have a perf trajectory to compare against.  Run from the repo root
# after a Release build in ./build; pass a build dir to override.
set -euo pipefail

BUILD_DIR="${1:-build}"
REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
OUT="${REPO_ROOT}/BENCH_table1.json"

cd "${REPO_ROOT}"
python3 - "$BUILD_DIR" "$OUT" <<'EOF'
import json, re, subprocess, sys

build_dir, out_path = sys.argv[1], sys.argv[2]
benches = [
    "bench_table1_sync_rooted",
    "bench_table1_sync_general",
    "bench_table1_async_rooted",
    "bench_table1_async_general",
    "bench_table1_memory",
]

def parse_markdown_tables(text):
    """Returns rows from every GitHub-markdown table in the bench output."""
    rows, header = [], None
    for line in text.splitlines():
        line = line.strip()
        if not (line.startswith("|") and line.endswith("|")):
            header = None
            continue
        cells = [c.strip() for c in line.strip("|").split("|")]
        if all(re.fullmatch(r":?-+:?", c) for c in cells):
            continue  # separator row
        if header is None:
            header = cells
            continue
        rows.append(dict(zip(header, cells)))
    return rows

snapshot = {"scale": 1.0, "benches": {}}
for name in benches:
    try:
        proc = subprocess.run([f"{build_dir}/{name}"], capture_output=True, text=True)
    except FileNotFoundError:
        sys.exit(f"error: {build_dir}/{name} not found — build first "
                 f"(cmake -B {build_dir} -S . && cmake --build {build_dir} -j)")
    if proc.returncode != 0:
        print(f"warning: {name} exited {proc.returncode}; skipped", file=sys.stderr)
        continue
    fits = re.findall(r"^fit\[.*$", proc.stdout, flags=re.M)
    snapshot["benches"][name] = {
        "rows": parse_markdown_tables(proc.stdout),
        "fits": fits,
    }
    print(f"{name}: {len(snapshot['benches'][name]['rows'])} rows")

with open(out_path, "w") as f:
    json.dump(snapshot, f, indent=1)
    f.write("\n")
print(f"wrote {out_path}")
EOF
