#!/usr/bin/env bash
# Validates a `disp_bench --trace=...` JSON-lines file against the trace
# schema (exp/sink.hpp / DESIGN.md §7):
#
#   scripts/check_trace.sh events.jsonl
#
# Checks, per line: valid JSON, a known "event" kind, the required keys for
# that kind, and numeric-or-"-" payload fields.  Checks, per (cell, seed)
# stream: event times non-decreasing, settle/collapse balance never
# negative, and — for streams that close cleanly (engines always end a
# completed run with a terminal "sample" line; a limit-hit replicate's
# stream ends mid-events instead, except under fault injection where the
# limit is a reported verdict and the stream still closes) — the final
# sampled settled count equals the stream's settle-collapse balance.
# Exits nonzero with a diagnostic on the first violation.
set -euo pipefail

TRACE="${1:?usage: scripts/check_trace.sh <trace.jsonl>}"

python3 - "${TRACE}" <<'EOF'
import json, sys

path = sys.argv[1]
KINDS = {"move", "settle", "meeting", "subsume", "collapse", "freeze",
         "oscillation_duty", "fault_crash", "fault_restart", "fault_edge",
         "fault_silent", "sample"}
EVENT_KEYS = {"cell", "seed", "event", "t", "agent", "node", "a", "b"}
SAMPLE_KEYS = {"cell", "seed", "event", "t", "epochs", "settled", "moves"}

def num(rec, key, lineno):
    v = rec[key]
    if v != "-" and not v.isdigit():
        sys.exit(f"{path}:{lineno}: field {key!r} = {v!r} is neither a "
                 f"number nor '-'")
    return None if v == "-" else int(v)

last_t = {}      # (cell, seed) -> last event time
balance = {}     # (cell, seed) -> settles - collapses
last_sample = {} # (cell, seed) -> last sampled settled count
last_kind = {}   # (cell, seed) -> kind of the stream's final line
counts = dict.fromkeys(KINDS, 0)

with open(path) as f:
    for lineno, line in enumerate(f, 1):
        line = line.strip()
        if not line:
            continue
        try:
            rec = json.loads(line)
        except json.JSONDecodeError as e:
            sys.exit(f"{path}:{lineno}: invalid JSON: {e}")
        kind = rec.get("event")
        if kind not in KINDS:
            sys.exit(f"{path}:{lineno}: unknown event kind {kind!r}")
        counts[kind] += 1
        want = SAMPLE_KEYS if kind == "sample" else EVENT_KEYS
        if set(rec) != want:
            sys.exit(f"{path}:{lineno}: {kind} line has keys "
                     f"{sorted(rec)}, expected {sorted(want)}")
        stream = (rec["cell"], rec["seed"])
        last_kind[stream] = kind
        t = num(rec, "t", lineno)
        if t is None:
            sys.exit(f"{path}:{lineno}: t must be numeric")
        if t < last_t.get(stream, 0):
            sys.exit(f"{path}:{lineno}: time went backwards within "
                     f"{stream}: {last_t[stream]} -> {t}")
        last_t[stream] = t
        if kind == "sample":
            for key in ("epochs", "settled", "moves"):
                if num(rec, key, lineno) is None:
                    sys.exit(f"{path}:{lineno}: {key} must be numeric")
            last_sample[stream] = int(rec["settled"])
            continue
        for key in ("agent", "node", "a", "b"):
            num(rec, key, lineno)
        if kind == "settle":
            balance[stream] = balance.get(stream, 0) + 1
        elif kind == "collapse":
            balance[stream] = balance.get(stream, 0) - 1
            if balance[stream] < 0:
                sys.exit(f"{path}:{lineno}: collapse before matching "
                         f"settle in {stream}")

if not last_t:
    sys.exit(f"{path}: empty trace")
if counts["settle"] == 0 or counts["move"] == 0:
    sys.exit(f"{path}: no settle/move events — not a dispersion trace")
for stream, settled in last_sample.items():
    # Only cleanly-closed streams (ending on the engines' terminal sample)
    # carry the invariant; a limit-hit replicate ends mid-events.
    if last_kind.get(stream) != "sample":
        continue
    if stream in balance and settled != balance[stream]:
        sys.exit(f"{path}: stream {stream}: final sampled settled count "
                 f"{settled} != settle-collapse balance {balance[stream]}")

summary = ", ".join(f"{k}={counts[k]}" for k in sorted(counts) if counts[k])
print(f"OK {path}: {len(last_t)} streams, {summary}")
EOF
