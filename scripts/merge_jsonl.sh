#!/usr/bin/env bash
# Merges the JSONL outputs of sharded disp_bench runs (--shard=I/N) into
# one stream.  Thin wrapper over `disp_fleet merge --dup=error`, which owns
# the real collector (src/fleet/collector.cpp): every line must parse as
# JSON, a row repeated across inputs is rejected ("overlapping shards?"),
# and two rows for the same cell that disagree on a fact column fail the
# merge with a cell-level diff (telemetry columns are exempt).
#
#   scripts/merge_jsonl.sh OUT SHARD1.jsonl SHARD2.jsonl [...]
#
# Rows are concatenated in argument order, which preserves per-shard
# streaming order; consumers key on the self-describing row fields
# (sweep/table/family/k/...), not on line position.  DISP_FLEET points at
# the disp_fleet binary (default: build/disp_fleet).
set -euo pipefail

if [ $# -lt 2 ]; then
  echo "usage: $0 OUT SHARD1.jsonl SHARD2.jsonl [...]" >&2
  exit 2
fi
OUT="$1"
shift

exec "${DISP_FLEET:-build/disp_fleet}" merge --dup=error --out="$OUT" "$@"
