#!/usr/bin/env bash
# Merges the JSONL outputs of sharded disp_bench runs (--shard=I/N) into
# one stream, validating that every line parses as JSON and that no row
# appears in more than one shard (identical rows across shards mean the
# shards overlapped — e.g. two processes run with the same --shard index).
#
#   scripts/merge_jsonl.sh OUT SHARD1.jsonl SHARD2.jsonl [...]
#
# Rows are concatenated in argument order, which preserves per-shard
# streaming order; consumers key on the self-describing row fields
# (sweep/table/family/k/...), not on line position.
set -euo pipefail

if [ $# -lt 2 ]; then
  echo "usage: $0 OUT SHARD1.jsonl SHARD2.jsonl [...]" >&2
  exit 2
fi
OUT="$1"
shift

python3 - "$OUT" "$@" <<'EOF'
import json, sys

out, shards = sys.argv[1], sys.argv[2:]
seen = {}
lines = []
failures = 0
for path in shards:
    with open(path) as f:
        for lineno, line in enumerate(f, 1):
            line = line.rstrip("\n")
            if not line:
                continue
            try:
                json.loads(line)
            except json.JSONDecodeError as e:
                print(f"FAIL {path}:{lineno}: not JSON ({e})", file=sys.stderr)
                failures += 1
                continue
            if line in seen:
                print(f"FAIL {path}:{lineno}: duplicate row (also in "
                      f"{seen[line][0]}:{seen[line][1]}) — overlapping shards?",
                      file=sys.stderr)
                failures += 1
                continue
            seen[line] = (path, lineno)
            lines.append(line)
if failures:
    sys.exit(1)
with open(out, "w") as f:
    for line in lines:
        f.write(line + "\n")
print(f"merged {len(lines)} rows from {len(shards)} shard(s) into {out}")
EOF
