#!/usr/bin/env bash
# Fetch-or-generate the scale-campaign datasets under bench/data/ (the
# directory is gitignored: these are hundreds of MB).  Everything is
# generated locally with disp_datagen from seeded specs, so "fetch" is just
# a cache check — a dataset that already exists is left untouched and two
# machines running this script materialize byte-identical files.
#
#   scripts/make_scale_data.sh [build_dir]
#
# Datasets (Graphalytics .v/.e pairs, consumed as `file:bench/data/NAME.e`):
#   ba_1e6   Barabási–Albert, n = 10^6, d = 4   (CI scale-smoke + tests)
#   ba_1e7   Barabási–Albert, n = 10^7, d = 4   (scale_real ingest cell)
set -euo pipefail

BUILD_DIR="${1:-build}"
REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
DATA_DIR="${REPO_ROOT}/bench/data"

cd "${REPO_ROOT}"
if [ ! -x "${BUILD_DIR}/disp_datagen" ]; then
  echo "error: ${BUILD_DIR}/disp_datagen not found — build first" \
       "(cmake -B ${BUILD_DIR} -S . && cmake --build ${BUILD_DIR} -j)" >&2
  exit 1
fi

mkdir -p "${DATA_DIR}"

materialize() {
  local name="$1" spec="$2" seed="$3"
  if [ -f "${DATA_DIR}/${name}.v" ] && [ -f "${DATA_DIR}/${name}.e" ]; then
    echo "${name}: cached"
    return
  fi
  echo "${name}: generating (${spec}, seed=${seed})"
  # Write to a temp base then rename, so a killed run never leaves a
  # truncated pair that loadGraphalytics would half-parse.
  rm -f "${DATA_DIR}/.${name}.tmp.v" "${DATA_DIR}/.${name}.tmp.e"
  "${BUILD_DIR}/disp_datagen" --spec="${spec}" --seed="${seed}" \
      --out="${DATA_DIR}/.${name}.tmp"
  mv "${DATA_DIR}/.${name}.tmp.v" "${DATA_DIR}/${name}.v"
  mv "${DATA_DIR}/.${name}.tmp.e" "${DATA_DIR}/${name}.e"
}

materialize ba_1e6 "ba:n=1000000,d=4" 7
materialize ba_1e7 "ba:n=10000000,d=4" 7

ls -lh "${DATA_DIR}"
