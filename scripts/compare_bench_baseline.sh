#!/usr/bin/env bash
# Diffs a fresh JSON-lines run of the Table 1 sweeps against the committed
# BENCH_table1.json and exits nonzero on epoch/round/bits regressions
# beyond a tolerance (DISP_BENCH_TOLERANCE, default 0.10 = +10%).
#
#   scripts/compare_bench_baseline.sh [build_dir] [run.jsonl]
#
# Without a JSONL argument the script runs `disp_bench` itself (at the
# baseline's scale).  Identity columns (k, n, family, sched, ...) must
# match exactly; metric columns may improve freely but may not regress
# past the tolerance; machine-dependent telemetry columns (wallclock,
# peak RSS) and derived ratio columns are ignored.
set -euo pipefail

BUILD_DIR="${1:-build}"
JSONL="${2:-}"
TOL="${DISP_BENCH_TOLERANCE:-0.10}"
REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BASELINE="${REPO_ROOT}/BENCH_table1.json"

SWEEPS=(table1_sync_rooted table1_sync_general table1_async_rooted
        table1_async_general table1_memory)

cd "${REPO_ROOT}"
if [ -z "${JSONL}" ]; then
  if [ ! -x "${BUILD_DIR}/disp_bench" ]; then
    echo "error: ${BUILD_DIR}/disp_bench not found — build first" \
         "(cmake -B ${BUILD_DIR} -S . && cmake --build ${BUILD_DIR} -j)" >&2
    exit 1
  fi
  if [ -n "${DISP_BENCH_SCALE:-}" ] && [ "${DISP_BENCH_SCALE}" != "1" ]; then
    echo "error: DISP_BENCH_SCALE=${DISP_BENCH_SCALE} but the baseline was" \
         "recorded at scale 1 — unset it or pass a JSONL file" >&2
    exit 1
  fi
  JSONL="$(mktemp)"
  trap 'rm -f "${JSONL}"' EXIT
  "${BUILD_DIR}/disp_bench" "${SWEEPS[@]}" --jsonl="${JSONL}" > /dev/null
fi

python3 - "${JSONL}" "${BASELINE}" "${TOL}" <<'EOF'
import json, sys

jsonl_path, baseline_path, tol = sys.argv[1], sys.argv[2], float(sys.argv[3])

# Lower-is-better metric columns, compared under the tolerance.
METRICS = {"RootedSync(ours)", "Sudo-style", "KS-baseline", "RootedAsync(ours)",
           "KS-async", "rounds", "epochs", "bits"}
# Experiment-identity columns, compared exactly.
IDENTITY = {"k", "n", "m", "Delta", "family", "l", "sched", "algo", "dispersed"}
# Machine-dependent telemetry: never compared, never a failure.  Wallclock
# and memory numbers document the recording machine; the simulation facts
# they ride alongside are covered by IDENTITY/METRICS above.
TELEMETRY = {"ms", "speedup", "Mact/s", "Mmoves/s", "load_ms", "peak_rss_mb",
             "rss_lb_mb", "rss_ratio", "hardware_threads", "oversubscribed",
             "lanes"}

fresh = {}
with open(jsonl_path) as f:
    for line in f:
        rec = json.loads(line)
        if "fit" in rec:
            continue
        rec.pop("table", None)
        fresh.setdefault(f"bench_{rec.pop('sweep')}", []).append(rec)

baseline = json.load(open(baseline_path))
failures = regressions = improvements = 0

def fail(msg):
    global failures
    failures += 1
    print(f"FAIL {msg}")

for name, bench in baseline["benches"].items():
    rows = fresh.get(name)
    if rows is None:
        fail(f"{name}: sweep missing from fresh run")
        continue
    if len(rows) != len(bench["rows"]):
        fail(f"{name}: {len(rows)} rows vs {len(bench['rows'])} in baseline")
        continue
    for i, (b, f) in enumerate(zip(bench["rows"], rows)):
        ident = " ".join(f"{k}={b[k]}" for k in ("algo", "family", "k", "l", "sched")
                         if k in b)
        for key, bval in b.items():
            if key in TELEMETRY:
                continue
            if key in IDENTITY:
                if f.get(key) != bval:
                    fail(f"{name} row {i} ({ident}): {key} = {f.get(key)!r}, "
                         f"baseline {bval!r}")
            elif key in METRICS:
                try:
                    bnum, fnum = float(bval), float(f[key])
                except (KeyError, ValueError):
                    fail(f"{name} row {i} ({ident}): unreadable metric {key}")
                    continue
                if fnum > bnum * (1.0 + tol) + 1e-9:
                    regressions += 1
                    fail(f"{name} row {i} ({ident}): {key} regressed "
                         f"{bnum:g} -> {fnum:g} (tolerance +{tol:.0%})")
                elif fnum < bnum * (1.0 - tol):
                    improvements += 1

total = sum(len(b["rows"]) for b in baseline["benches"].values())
print(f"compared {total} baseline rows: {failures} failures "
      f"({regressions} regressions), {improvements} improvements beyond {tol:.0%}")
sys.exit(1 if failures else 0)
EOF
