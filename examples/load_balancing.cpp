// Load balancing — the paper's second motivation: k jobs (agents) arrive
// at one ingress server of a cluster and must spread so each server runs
// one job.  The cluster is a random-regular overlay network; we compare
// the paper's algorithm against the classic group-DFS baseline, counting
// both time (rounds) and total network hops.
//
//   ./load_balancing [--jobs=96] [--servers=192] [--degree=4] [--seed=11]
#include <iostream>

#include "algo/runner.hpp"
#include "graph/generators.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace disp;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const auto jobs = static_cast<std::uint32_t>(cli.integer("jobs", 96));
  const auto servers = static_cast<std::uint32_t>(cli.integer("servers", 192));
  const auto degree = static_cast<std::uint32_t>(cli.integer("degree", 4));
  const auto seed = static_cast<std::uint64_t>(cli.integer("seed", 11));

  const Graph overlay =
      makeRandomRegular(servers, degree, seed).build(PortLabeling::RandomPermutation, seed);
  const Placement p = rootedPlacement(overlay, jobs, 0, seed);
  std::cout << jobs << " jobs at one ingress of a " << servers << "-server "
            << degree << "-regular overlay\n\n";

  Table t({"algorithm", "model", "time", "hops", "hops/job", "memory bits"});
  for (const Algorithm algo :
       {Algorithm::RootedSync, Algorithm::GeneralSync, Algorithm::KsSync,
        Algorithm::RootedAsync, Algorithm::KsAsync}) {
    const RunResult r = runDispersion(overlay, p, {algo, "uniform", seed});
    t.row()
        .cell(algorithmName(algo))
        .cell(std::string(isAsync(algo) ? "ASYNC(epochs)" : "SYNC(rounds)"))
        .cell(r.time)
        .cell(r.totalMoves)
        .cell(double(r.totalMoves) / jobs, 1)
        .cell(r.maxMemoryBits);
    if (!r.dispersed) {
      std::cout << "!! " << algorithmName(algo) << " failed to balance\n";
      return 1;
    }
  }
  t.print(std::cout, "one job per server, five ways");
  return 0;
}
