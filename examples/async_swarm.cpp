// Asynchronous robot swarm — exploration-flavoured demo of Theorem 7.1:
// robots with no common clock (each activated by an adversarial scheduler)
// spread over an unknown cave system (random tree + extra tunnels).  Shows
// how epoch-measured time stays stable across schedulers while raw
// activation counts vary wildly.
//
//   ./async_swarm [--robots=64] [--caves=160] [--seed=21]
#include <iostream>

#include "algo/runner.hpp"
#include "core/scheduler.hpp"
#include "graph/generators.hpp"
#include "graph/spec.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace disp;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const auto robots = static_cast<std::uint32_t>(cli.integer("robots", 64));
  const auto caves = static_cast<std::uint32_t>(cli.integer("caves", 160));
  const auto seed = static_cast<std::uint64_t>(cli.integer("seed", 21));

  const Graph cavern = makeGraph("er", caves, seed);
  const Placement p = rootedPlacement(cavern, robots, 0, seed);
  std::cout << robots << " unsynchronized robots entering a " << caves
            << "-chamber cave system\n\n";

  Table t({"scheduler", "epochs", "activations", "moves", "dispersed"});
  for (const auto& sched : knownSchedulers()) {
    const RunResult r = runDispersion(cavern, p, {Algorithm::RootedAsync, sched, seed});
    t.row()
        .cell(sched)
        .cell(r.time)
        .cell(r.activations)
        .cell(r.totalMoves)
        .cell(std::string(r.dispersed ? "yes" : "NO"));
  }
  t.print(std::cout, "scheduler adversaries vs epoch-measured time");
  std::cout << "Epochs stay in one band while activations differ: the paper's\n"
               "O(k log k)-epoch bound is scheduler-independent.\n";
  return 0;
}
