// EV-charging relocation — the paper's motivating application: self-driven
// electric cars (agents) must spread over charging stations (nodes) so
// that each car gets its own station.  Cars start clustered at a few
// depots (a *general* initial configuration); the road network is a city
// grid.  GeneralSync runs ℓ concurrent DFSs that merge via subsumption
// when they meet.
//
//   ./ev_charging [--cars=60] [--depots=4] [--side=10] [--seed=3]
//                 [--placement=clusters:l=DEPOTS]
//
// --placement accepts any PlacementSpec — try "adversarial:far,l=4" for
// depots pushed to opposite corners of the city, or "adversarial:hot" for
// every car jammed at the central interchange.
#include <iostream>

#include "algo/runner.hpp"
#include "graph/generators.hpp"
#include "util/cli.hpp"

using namespace disp;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const auto cars = static_cast<std::uint32_t>(cli.integer("cars", 60));
  const auto depots = static_cast<std::uint32_t>(cli.integer("depots", 4));
  const auto side = static_cast<std::uint32_t>(cli.integer("side", 10));
  const auto seed = static_cast<std::uint64_t>(cli.integer("seed", 3));

  const Graph city = makeGrid(side, side).build(PortLabeling::RandomPermutation, seed);
  std::cout << "city grid: " << side << "x" << side << " (" << city.nodeCount()
            << " stations), " << cars << " cars at " << depots << " depots\n";

  const std::string placement =
      cli.str("placement", "clusters:l=" + std::to_string(depots));
  const Placement p = PlacementSpec::parse(placement).place(city, cars, seed);
  const RunResult r = runDispersion(city, p, {Algorithm::GeneralSync});

  std::cout << "relocation " << (r.dispersed ? "succeeded" : "FAILED") << " in "
            << r.time << " rounds; total driving: " << r.totalMoves
            << " road segments (" << double(r.totalMoves) / cars << " per car)\n";
  std::cout << "per-car controller memory: " << r.maxMemoryBits << " bits\n";

  // Occupancy check: every car on its own station.
  std::vector<int> occ(city.nodeCount(), 0);
  for (const NodeId v : r.finalPositions) ++occ[v];
  int collisions = 0;
  for (const int c : occ) collisions += c > 1;
  std::cout << "stations double-booked: " << collisions << "\n";
  return r.dispersed ? 0 : 1;
}
