// Quickstart: build a graph, drop k agents on one node, run the paper's
// O(k)-round SYNC dispersion as an *observable session* — watch the settle
// trajectory live, then inspect the result.
//
//   ./quickstart [--graph=er] [--placement=rooted] [--n=64] [--k=48]
//                [--seed=7] [--sample=32]
//
// --graph takes any GraphSpec string (graph/spec.hpp): a legacy family
// name ("er"), a parameterized generator ("grid:rows=8,cols=8",
// "er:n=256,p=0.05") or a file ("file:data/roads.e"); --placement any
// PlacementSpec ("rooted", "clusters:l=4", "adversarial:far", ...).
#include <algorithm>
#include <iostream>

#include "algo/registry.hpp"
#include "algo/runner.hpp"
#include "graph/generators.hpp"
#include "graph/spec.hpp"
#include "util/cli.hpp"

using namespace disp;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const std::string graphSpec = cli.str("graph", cli.str("family", "er"));
  const std::string placementSpec = cli.str("placement", "rooted");
  const auto n = static_cast<std::uint32_t>(cli.integer("n", 64));
  const auto k = static_cast<std::uint32_t>(cli.integer("k", 48));
  const auto seed = static_cast<std::uint64_t>(cli.integer("seed", 7));
  const auto sample =
      static_cast<std::uint64_t>(std::max<std::int64_t>(1, cli.integer("sample", 32)));

  // 1. An anonymous port-labeled graph, from a parsed workload spec.
  const Graph g = makeGraph(graphSpec, n, seed);
  std::cout << "graph: " << graphSpec << " n=" << g.nodeCount()
            << " m=" << g.edgeCount() << " Delta=" << g.maxDegree() << "\n";

  // 2. An initial configuration from a parsed placement spec (the default
  //    "rooted" stacks all k agents on node 0).
  const Placement p = PlacementSpec::parse(placementSpec).place(g, k, seed);

  // 3. Run RootedSyncDisp (Theorem 6.1) as a session: algorithms are
  //    registry keys (algo/registry.hpp), and the observer hooks stream the
  //    run — here a settled-count trajectory plus an event tally.
  RunOptions opts;
  opts.algorithm = "rooted_sync";
  opts.sampleEvery = sample;
  opts.captureTrajectory = true;
  std::uint64_t settles = 0, dutyChanges = 0;
  opts.onEvent = [&](const TraceEvent& e) {
    settles += e.kind == TraceEventKind::Settle;
    dutyChanges += e.kind == TraceEventKind::OscillationDuty;
  };
  const RunResult r = runSession(g, p, opts);
  std::cout << "RootedSyncDisp: " << r.summary() << "\n";
  std::cout << "rounds/k = " << double(r.time) / k
            << "  (the paper's bound is O(k) rounds total)\n";
  std::cout << "trajectory (every " << sample << " rounds):";
  for (const TrajectoryPoint& pt : r.trajectory) {
    std::cout << " " << pt.time << ":" << pt.settled;
  }
  std::cout << "\nevents: " << settles << " settles, " << dutyChanges
            << " oscillation duty changes\n";

  // 4. Compare with the asynchronous algorithm under an adversarial
  //    scheduler (Theorem 7.1, O(k log k) epochs) — no observers attached;
  //    a zero-observer session is exactly the historical fire-and-forget run.
  RunOptions async;
  async.algorithm = "rooted_async";
  async.scheduler = "uniform";
  async.seed = seed;
  const RunResult ra = runSession(g, p, async);
  std::cout << "RootedAsyncDisp: " << ra.summary() << "\n";
  return r.dispersed && ra.dispersed ? 0 : 1;
}
