// Quickstart: build a graph, drop k agents on one node, run the paper's
// O(k)-round SYNC dispersion, inspect the result.
//
//   ./quickstart [--family=er] [--n=64] [--k=48] [--seed=7]
#include <iostream>

#include "algo/runner.hpp"
#include "graph/generators.hpp"
#include "util/cli.hpp"

using namespace disp;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const std::string family = cli.str("family", "er");
  const auto n = static_cast<std::uint32_t>(cli.integer("n", 64));
  const auto k = static_cast<std::uint32_t>(cli.integer("k", 48));
  const auto seed = static_cast<std::uint64_t>(cli.integer("seed", 7));

  // 1. An anonymous port-labeled graph.
  const Graph g = makeFamily({family, n, seed});
  std::cout << "graph: " << family << " n=" << g.nodeCount() << " m=" << g.edgeCount()
            << " Delta=" << g.maxDegree() << "\n";

  // 2. A rooted initial configuration: k agents stacked on node 0.
  const Placement p = rootedPlacement(g, k, /*root=*/0, seed);

  // 3. Run RootedSyncDisp (Theorem 6.1).
  const RunResult r = runDispersion(g, p, {Algorithm::RootedSync});
  std::cout << "RootedSyncDisp: " << r.summary() << "\n";
  std::cout << "rounds/k = " << double(r.time) / k
            << "  (the paper's bound is O(k) rounds total)\n";

  // 4. Compare with the asynchronous algorithm under an adversarial
  //    scheduler (Theorem 7.1, O(k log k) epochs).
  const RunResult ra = runDispersion(g, p, {Algorithm::RootedAsync, "uniform", seed});
  std::cout << "RootedAsyncDisp: " << ra.summary() << "\n";
  return r.dispersed && ra.dispersed ? 0 : 1;
}
