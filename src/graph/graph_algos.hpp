#pragma once
// Centralized graph algorithms used by tests, workload generation and the
// experiment harness (these are *not* part of the agent protocols — agents
// never get global views).

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace disp {

/// BFS distances from src; unreachable nodes get kUnreachable.
inline constexpr std::uint32_t kUnreachable = static_cast<std::uint32_t>(-1);
[[nodiscard]] std::vector<std::uint32_t> bfsDistances(const Graph& g, NodeId src);

/// Graph diameter (max eccentricity); O(n·m) — fine at experiment scale.
[[nodiscard]] std::uint32_t diameter(const Graph& g);

/// A node of maximum eccentricity (one end of a "longest shortest path").
[[nodiscard]] NodeId peripheralNode(const Graph& g);

/// Parent array of a DFS tree rooted at src following increasing port
/// numbers (the traversal order every protocol in the paper induces on a
/// fresh graph).  parent[src] = src.
[[nodiscard]] std::vector<NodeId> portOrderDfsTree(const Graph& g, NodeId src);

}  // namespace disp
