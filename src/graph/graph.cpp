#include "graph/graph.hpp"

#include <algorithm>

#include "graph/labeling.hpp"
#include "util/rng.hpp"

namespace disp {

Port Graph::portTo(NodeId v, NodeId u) const {
  const Port d = degree(v);
  if (d > kPortToIndexThreshold && !portIndexNodes_.empty()) {
    const auto it =
        std::lower_bound(portIndexNodes_.begin(), portIndexNodes_.end(), v);
    if (it != portIndexNodes_.end() && *it == v) {
      const auto ix = static_cast<std::size_t>(it - portIndexNodes_.begin());
      const std::uint32_t* first = portIndexSlots_.data() + portIndexOffsets_[ix];
      const std::uint32_t* last =
          portIndexSlots_.data() + portIndexOffsets_[ix + 1];
      const std::uint32_t* slot = std::lower_bound(
          first, last, u,
          [this](std::uint32_t s, NodeId t) { return targets_[s] < t; });
      if (slot != last && targets_[*slot] == u) {
        return static_cast<Port>(*slot - offsets_[v] + 1);
      }
      return kNoPort;
    }
  }
  for (Port p = 1; p <= d; ++p) {
    if (neighbor(v, p) == u) return p;
  }
  return kNoPort;
}

void Graph::buildPortToIndex() {
  portIndexNodes_.clear();
  portIndexOffsets_.clear();
  portIndexSlots_.clear();
  const std::uint32_t n = nodeCount();
  std::uint64_t slots = 0;
  for (NodeId v = 0; v < n; ++v) {
    if (degree(v) > kPortToIndexThreshold) {
      portIndexNodes_.push_back(v);
      slots += degree(v);
    }
  }
  if (portIndexNodes_.empty()) return;
  portIndexOffsets_.reserve(portIndexNodes_.size() + 1);
  portIndexOffsets_.push_back(0);
  portIndexSlots_.reserve(slots);
  for (const NodeId v : portIndexNodes_) {
    for (std::uint32_t s = offsets_[v]; s < offsets_[v + 1]; ++s) {
      portIndexSlots_.push_back(s);
    }
    const auto first = portIndexSlots_.begin() +
                       static_cast<std::ptrdiff_t>(portIndexOffsets_.back());
    std::sort(first, portIndexSlots_.end(),
              [this](std::uint32_t a, std::uint32_t b) {
                return targets_[a] < targets_[b];
              });
    portIndexOffsets_.push_back(portIndexSlots_.size());
  }
}

std::vector<Edge> Graph::edges() const {
  std::vector<Edge> out;
  out.reserve(edgeCount_);
  for (NodeId v = 0; v < nodeCount(); ++v) {
    for (Port p = 1; p <= degree(v); ++p) {
      const NodeId u = neighbor(v, p);
      if (v <= u) out.push_back({v, u});
    }
  }
  return out;
}

GraphBuilder& GraphBuilder::addEdge(NodeId u, NodeId v) {
  DISP_REQUIRE(u < n_ && v < n_, "edge endpoint out of range");
  DISP_REQUIRE(u != v, "self-loops are not allowed (graph is simple)");
  edges_.push_back({u, v});
  return *this;
}

Graph GraphBuilder::build(PortLabeling labeling, std::uint64_t seed) const {
  std::vector<Port> deg(n_, 0);
  for (const Edge& e : edges_) {
    ++deg[e.u];
    ++deg[e.v];
  }
  return buildWithPorts(assignPorts(n_, edges_, deg, labeling, seed));
}

Graph GraphBuilder::buildWithPorts(const std::vector<std::pair<Port, Port>>& ports) const {
  DISP_REQUIRE(ports.size() == edges_.size(), "one port pair per edge required");
  // Reject duplicate edges (simple graph).  Sort-based instead of a
  // std::set: ~5x less transient memory and no node churn on large inputs.
  {
    std::vector<std::pair<NodeId, NodeId>> seen;
    seen.reserve(edges_.size());
    for (const Edge& e : edges_) {
      const auto key = std::minmax(e.u, e.v);
      seen.emplace_back(key.first, key.second);
    }
    std::sort(seen.begin(), seen.end());
    DISP_REQUIRE(std::adjacent_find(seen.begin(), seen.end()) == seen.end(),
                 "duplicate edge (graph is simple)");
  }

  Graph g;
  const std::uint32_t n = n_;
  g.edgeCount_ = edges_.size();

  std::vector<Port> deg(n, 0);
  for (const Edge& e : edges_) {
    ++deg[e.u];
    ++deg[e.v];
  }

  g.offsets_.assign(n + 1, 0);
  for (NodeId v = 0; v < n; ++v) g.offsets_[v + 1] = g.offsets_[v] + deg[v];
  g.targets_.assign(2 * edges_.size(), kInvalidNode);
  g.reverse_.assign(2 * edges_.size(), kNoPort);
  g.maxDegree_ = deg.empty() ? 0 : *std::max_element(deg.begin(), deg.end());

  for (std::size_t i = 0; i < edges_.size(); ++i) {
    const Edge& e = edges_[i];
    const auto [pu, pv] = ports[i];
    DISP_REQUIRE(pu >= 1 && pu <= deg[e.u] && pv >= 1 && pv <= deg[e.v],
                 "explicit port out of range");
    DISP_REQUIRE(g.targets_[g.offsets_[e.u] + pu - 1] == kInvalidNode &&
                     g.targets_[g.offsets_[e.v] + pv - 1] == kInvalidNode,
                 "explicit ports collide");
    g.targets_[g.offsets_[e.u] + pu - 1] = e.v;
    g.targets_[g.offsets_[e.v] + pv - 1] = e.u;
    g.reverse_[g.offsets_[e.u] + pu - 1] = pv;
    g.reverse_[g.offsets_[e.v] + pv - 1] = pu;
  }

  validateGraph(g);
  g.buildPortToIndex();
  return g;
}

TwoPassBuilder::TwoPassBuilder(std::uint32_t nodeCount) {
  g_.offsets_.assign(static_cast<std::size_t>(nodeCount) + 1, 0);
}

void TwoPassBuilder::countEdge(NodeId u, NodeId v) {
  const auto n = static_cast<std::uint32_t>(g_.offsets_.size() - 1);
  DISP_REQUIRE(u < n && v < n, "edge endpoint out of range");
  DISP_REQUIRE(u != v, "self-loops are not allowed (graph is simple)");
  DISP_DCHECK(!sealed_, "countEdge after beginEdges");
  ++g_.offsets_[u + 1];
  ++g_.offsets_[v + 1];
  ++counted_;
}

void TwoPassBuilder::beginEdges() {
  DISP_DCHECK(!sealed_, "beginEdges called twice");
  sealed_ = true;
  const auto n = static_cast<std::uint32_t>(g_.offsets_.size() - 1);
  Port maxDeg = 0;
  for (NodeId v = 0; v < n; ++v) {
    maxDeg = std::max(maxDeg, g_.offsets_[v + 1]);
    g_.offsets_[v + 1] += g_.offsets_[v];
  }
  g_.maxDegree_ = maxDeg;
  g_.targets_.assign(2 * counted_, kInvalidNode);
  g_.reverse_.assign(2 * counted_, kNoPort);
  cursor_.assign(g_.offsets_.begin(), g_.offsets_.end() - 1);
}

void TwoPassBuilder::addEdge(NodeId u, NodeId v) {
  DISP_DCHECK(sealed_, "addEdge before beginEdges");
  const std::uint32_t su = cursor_[u]++;
  const std::uint32_t sv = cursor_[v]++;
  DISP_REQUIRE(su < g_.offsets_[u + 1] && sv < g_.offsets_[v + 1],
               "pass-two edge stream diverged from pass one");
  g_.targets_[su] = v;
  g_.targets_[sv] = u;
  g_.reverse_[su] = sv - g_.offsets_[v] + 1;
  g_.reverse_[sv] = su - g_.offsets_[u] + 1;
  ++added_;
}

Graph TwoPassBuilder::finish() {
  DISP_REQUIRE(sealed_ && added_ == counted_,
               "pass-two edge stream diverged from pass one");
  g_.edgeCount_ = counted_;
  g_.buildPortToIndex();
  return std::move(g_);
}

bool satisfiesConstrainedLabeling(const Graph& g) {
  for (NodeId v = 0; v < g.nodeCount(); ++v) {
    const Port dv = g.degree(v);
    for (Port p = 1; p <= dv; ++p) {
      const NodeId u = g.neighbor(v, p);
      if (v > u) continue;  // each edge once
      const Port q = g.reversePort(v, p);
      const Port du = g.degree(u);
      // A low port (1 or 2) is "exempt" when forced by degree: the paper
      // permits port 1 when it is the only port, and ports 1-2 when there
      // are only two ports at the node.
      const bool lowAtV = p <= 2 && dv >= 3;
      const bool lowAtU = q <= 2 && du >= 3;
      if (lowAtV && lowAtU) return false;
    }
  }
  return true;
}

void validateGraph(const Graph& g) {
  const std::uint32_t n = g.nodeCount();
  std::uint64_t halfEdges = 0;
  std::vector<NodeId> scratch;
  for (NodeId v = 0; v < n; ++v) {
    const Port d = g.degree(v);
    halfEdges += d;
    for (Port p = 1; p <= d; ++p) {
      const NodeId u = g.neighbor(v, p);
      DISP_CHECK(u < n, "dangling neighbor");
      DISP_CHECK(u != v, "self-loop");
      const Port q = g.reversePort(v, p);
      DISP_CHECK(q >= 1 && q <= g.degree(u), "reverse port out of range");
      DISP_CHECK(g.neighbor(u, q) == v, "reverse port does not return");
      DISP_CHECK(g.reversePort(u, q) == p, "reverse port not symmetric");
    }
    const std::span<const NodeId> row = g.neighbors(v);
    scratch.assign(row.begin(), row.end());
    std::sort(scratch.begin(), scratch.end());
    DISP_CHECK(std::adjacent_find(scratch.begin(), scratch.end()) ==
                   scratch.end(),
               "parallel edge");
  }
  DISP_CHECK(halfEdges == 2 * g.edgeCount(), "edge count mismatch");
}

}  // namespace disp
