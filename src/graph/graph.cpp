#include "graph/graph.hpp"

#include <algorithm>
#include <set>

#include "graph/labeling.hpp"
#include "util/rng.hpp"

namespace disp {

Port Graph::portTo(NodeId v, NodeId u) const {
  const Port d = degree(v);
  for (Port p = 1; p <= d; ++p) {
    if (neighbor(v, p) == u) return p;
  }
  return kNoPort;
}

std::vector<Edge> Graph::edges() const {
  std::vector<Edge> out;
  out.reserve(edgeCount_);
  for (NodeId v = 0; v < nodeCount(); ++v) {
    for (Port p = 1; p <= degree(v); ++p) {
      const NodeId u = neighbor(v, p);
      if (v <= u) out.push_back({v, u});
    }
  }
  return out;
}

GraphBuilder& GraphBuilder::addEdge(NodeId u, NodeId v) {
  DISP_REQUIRE(u < n_ && v < n_, "edge endpoint out of range");
  DISP_REQUIRE(u != v, "self-loops are not allowed (graph is simple)");
  edges_.push_back({u, v});
  return *this;
}

Graph GraphBuilder::build(PortLabeling labeling, std::uint64_t seed) const {
  std::vector<Port> deg(n_, 0);
  for (const Edge& e : edges_) {
    ++deg[e.u];
    ++deg[e.v];
  }
  return buildWithPorts(assignPorts(n_, edges_, deg, labeling, seed));
}

Graph GraphBuilder::buildWithPorts(const std::vector<std::pair<Port, Port>>& ports) const {
  DISP_REQUIRE(ports.size() == edges_.size(), "one port pair per edge required");
  // Reject duplicate edges (simple graph).
  {
    std::set<std::pair<NodeId, NodeId>> seen;
    for (const Edge& e : edges_) {
      const auto key = std::minmax(e.u, e.v);
      DISP_REQUIRE(seen.insert({key.first, key.second}).second,
                   "duplicate edge (graph is simple)");
    }
  }

  Graph g;
  const std::uint32_t n = n_;
  g.edgeCount_ = edges_.size();

  std::vector<Port> deg(n, 0);
  for (const Edge& e : edges_) {
    ++deg[e.u];
    ++deg[e.v];
  }

  g.offsets_.assign(n + 1, 0);
  for (NodeId v = 0; v < n; ++v) g.offsets_[v + 1] = g.offsets_[v] + deg[v];
  g.targets_.assign(2 * edges_.size(), kInvalidNode);
  g.reverse_.assign(2 * edges_.size(), kNoPort);
  g.maxDegree_ = deg.empty() ? 0 : *std::max_element(deg.begin(), deg.end());

  for (std::size_t i = 0; i < edges_.size(); ++i) {
    const Edge& e = edges_[i];
    const auto [pu, pv] = ports[i];
    DISP_REQUIRE(pu >= 1 && pu <= deg[e.u] && pv >= 1 && pv <= deg[e.v],
                 "explicit port out of range");
    DISP_REQUIRE(g.targets_[g.offsets_[e.u] + pu - 1] == kInvalidNode &&
                     g.targets_[g.offsets_[e.v] + pv - 1] == kInvalidNode,
                 "explicit ports collide");
    g.targets_[g.offsets_[e.u] + pu - 1] = e.v;
    g.targets_[g.offsets_[e.v] + pv - 1] = e.u;
    g.reverse_[g.offsets_[e.u] + pu - 1] = pv;
    g.reverse_[g.offsets_[e.v] + pv - 1] = pu;
  }

  validateGraph(g);
  return g;
}

bool satisfiesConstrainedLabeling(const Graph& g) {
  for (NodeId v = 0; v < g.nodeCount(); ++v) {
    const Port dv = g.degree(v);
    for (Port p = 1; p <= dv; ++p) {
      const NodeId u = g.neighbor(v, p);
      if (v > u) continue;  // each edge once
      const Port q = g.reversePort(v, p);
      const Port du = g.degree(u);
      // A low port (1 or 2) is "exempt" when forced by degree: the paper
      // permits port 1 when it is the only port, and ports 1-2 when there
      // are only two ports at the node.
      const bool lowAtV = p <= 2 && dv >= 3;
      const bool lowAtU = q <= 2 && du >= 3;
      if (lowAtV && lowAtU) return false;
    }
  }
  return true;
}

void validateGraph(const Graph& g) {
  const std::uint32_t n = g.nodeCount();
  std::uint64_t halfEdges = 0;
  for (NodeId v = 0; v < n; ++v) {
    const Port d = g.degree(v);
    halfEdges += d;
    std::set<NodeId> seen;
    for (Port p = 1; p <= d; ++p) {
      const NodeId u = g.neighbor(v, p);
      DISP_CHECK(u < n, "dangling neighbor");
      DISP_CHECK(u != v, "self-loop");
      DISP_CHECK(seen.insert(u).second, "parallel edge");
      const Port q = g.reversePort(v, p);
      DISP_CHECK(q >= 1 && q <= g.degree(u), "reverse port out of range");
      DISP_CHECK(g.neighbor(u, q) == v, "reverse port does not return");
      DISP_CHECK(g.reversePort(u, q) == p, "reverse port not symmetric");
    }
  }
  DISP_CHECK(halfEdges == 2 * g.edgeCount(), "edge count mismatch");
}

}  // namespace disp
