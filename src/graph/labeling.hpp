#pragma once
// Port-label assignment strategies (see Graph::PortLabeling).
//
// The Constrained strategy implements the §8.2 model assumption needed by
// the ASYNC general algorithm: for any edge (u,v), the two ports must not be
// labelled (1,1), (1,2), (2,1) or (2,2), except where low degree forces a
// low port (degree-1 nodes only have port 1; degree-2 nodes only ports 1,2).

#include <cstdint>
#include <utility>
#include <vector>

#include "graph/graph.hpp"

namespace disp {

/// For each edge i, returns (port at edges[i].u, port at edges[i].v).
/// deg[v] is the degree of v (consistent with `edges`).
[[nodiscard]] std::vector<std::pair<Port, Port>> assignPorts(
    std::uint32_t nodeCount, const std::vector<Edge>& edges,
    const std::vector<Port>& deg, PortLabeling labeling, std::uint64_t seed);

}  // namespace disp
