#include "graph/labeling.hpp"

#include <algorithm>
#include <functional>
#include <numeric>
#include <span>
#include <stdexcept>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace disp {

namespace {

/// Incidence in CSR form: for each node, the indices of its incident edges
/// in ascending edge order (the same per-node order the historical
/// vector-of-vectors produced, so every labeling below draws identical Rng
/// streams).  Two flat arrays instead of n vector headers — at web scale
/// the headers alone were ~24 bytes per node of pure overhead.
struct IncidenceCsr {
  std::vector<std::uint32_t> offsets;  // n + 1
  std::vector<std::uint32_t> slots;    // 2m edge indices

  [[nodiscard]] std::span<const std::uint32_t> at(std::uint32_t v) const {
    return {slots.data() + offsets[v], slots.data() + offsets[v + 1]};
  }
};

IncidenceCsr incidence(std::uint32_t n, const std::vector<Edge>& edges) {
  IncidenceCsr inc;
  inc.offsets.assign(n + 1, 0);
  for (const Edge& e : edges) {
    ++inc.offsets[e.u + 1];
    ++inc.offsets[e.v + 1];
  }
  for (std::uint32_t v = 0; v < n; ++v) inc.offsets[v + 1] += inc.offsets[v];
  inc.slots.resize(2 * edges.size());
  std::vector<std::uint32_t> cursor(inc.offsets.begin(), inc.offsets.end() - 1);
  for (std::uint32_t i = 0; i < edges.size(); ++i) {
    inc.slots[cursor[edges[i].u]++] = i;
    inc.slots[cursor[edges[i].v]++] = i;
  }
  return inc;
}

std::vector<std::pair<Port, Port>> insertionOrderPorts(std::uint32_t n,
                                                       const std::vector<Edge>& edges) {
  std::vector<Port> nextPort(n, 1);
  std::vector<std::pair<Port, Port>> out(edges.size());
  for (std::size_t i = 0; i < edges.size(); ++i) {
    out[i] = {nextPort[edges[i].u]++, nextPort[edges[i].v]++};
  }
  return out;
}

std::vector<std::pair<Port, Port>> randomPorts(std::uint32_t n,
                                               const std::vector<Edge>& edges,
                                               const std::vector<Port>& deg,
                                               std::uint64_t seed) {
  Rng rng(seed ^ 0xbadc0ffee0ddf00dULL);
  std::vector<std::pair<Port, Port>> out(edges.size());
  const auto inc = incidence(n, edges);
  for (std::uint32_t v = 0; v < n; ++v) {
    const auto perm = rng.permutation(deg[v]);
    const auto iv = inc.at(v);
    for (std::size_t slot = 0; slot < iv.size(); ++slot) {
      const std::uint32_t e = iv[slot];
      const Port p = perm[slot] + 1;
      if (edges[e].u == v) {
        out[e].first = p;
      } else {
        out[e].second = p;
      }
    }
  }
  return out;
}

/// Matches two distinct incident edges to every node of degree >= 3 such
/// that no edge is chosen by both endpoints (Kuhn's augmenting paths; left
/// side = "low-port slots", two per high-degree node; right side = edges).
/// Returns, per node, the chosen edge indices (empty for low-degree nodes).
/// Throws if infeasible — e.g. K4 admits no §8.2 labeling: 4 nodes need 8
/// low slots but only 6 edges exist.
std::vector<std::vector<std::uint32_t>> matchLowSlots(
    std::uint32_t n, const std::vector<Edge>& edges, const IncidenceCsr& inc,
    const std::vector<Port>& deg, std::uint64_t seed) {
  Rng rng(seed ^ 0x51077ca7c4e5ULL);

  std::vector<std::uint32_t> leftNode;  // left index -> node (two slots/node)
  for (std::uint32_t v = 0; v < n; ++v) {
    if (deg[v] >= 3) {
      leftNode.push_back(v);
      leftNode.push_back(v);
    }
  }

  std::vector<std::int64_t> edgeOwner(edges.size(), -1);  // left index or -1
  std::vector<std::uint8_t> visited(edges.size(), 0);

  // Randomized per-node preference order so different seeds give different
  // (still valid) labelings.
  std::vector<std::vector<std::uint32_t>> pref(n);
  for (std::uint32_t v = 0; v < n; ++v) {
    if (deg[v] >= 3) {
      const auto iv = inc.at(v);
      pref[v].assign(iv.begin(), iv.end());
      rng.shuffle(pref[v]);
    }
  }

  std::function<bool(std::uint32_t)> tryAugment = [&](std::uint32_t left) -> bool {
    const std::uint32_t v = leftNode[left];
    for (const std::uint32_t e : pref[v]) {
      if (visited[e]) continue;
      visited[e] = 1;
      // A node must not take the same edge for both of its slots.
      if (edgeOwner[e] >= 0 && leftNode[static_cast<std::size_t>(edgeOwner[e])] == v)
        continue;
      if (edgeOwner[e] < 0 || tryAugment(static_cast<std::uint32_t>(edgeOwner[e]))) {
        edgeOwner[e] = left;
        return true;
      }
    }
    return false;
  };

  for (std::uint32_t left = 0; left < leftNode.size(); ++left) {
    std::fill(visited.begin(), visited.end(), 0);
    if (!tryAugment(left)) {
      throw std::invalid_argument(
          "graph admits no constrained (section 8.2) port labeling: "
          "cannot reserve two low ports per degree>=3 node without a clash");
    }
  }

  std::vector<std::vector<std::uint32_t>> marks(n);
  for (std::uint32_t e = 0; e < edges.size(); ++e) {
    if (edgeOwner[e] >= 0) {
      marks[leftNode[static_cast<std::size_t>(edgeOwner[e])]].push_back(e);
    }
  }
  for (std::uint32_t v = 0; v < n; ++v) {
    DISP_CHECK(deg[v] < 3 || marks[v].size() == 2, "low-slot matching incomplete");
  }
  return marks;
}

std::vector<std::pair<Port, Port>> constrainedPorts(std::uint32_t n,
                                                    const std::vector<Edge>& edges,
                                                    const std::vector<Port>& deg,
                                                    std::uint64_t seed) {
  Rng rng(seed ^ 0xc057a17edULL);
  const auto inc = incidence(n, edges);
  const auto marks = matchLowSlots(n, edges, inc, deg, seed);

  std::vector<std::pair<Port, Port>> out(edges.size());
  for (std::uint32_t v = 0; v < n; ++v) {
    auto put = [&](std::uint32_t e, Port p) {
      if (edges[e].u == v) {
        out[e].first = p;
      } else {
        out[e].second = p;
      }
    };

    const auto iv = inc.at(v);
    if (deg[v] >= 3) {
      // Ports 1..2 go to the two marked edges; the rest get a random
      // permutation of ports 3..deg.
      std::vector<std::uint32_t> low = marks[v];
      rng.shuffle(low);
      put(low[0], 1);
      put(low[1], 2);
      std::vector<std::uint32_t> rest;
      rest.reserve(iv.size() - 2);
      for (const std::uint32_t e : iv) {
        if (e != low[0] && e != low[1]) rest.push_back(e);
      }
      const auto perm = rng.permutation(static_cast<std::uint32_t>(rest.size()));
      for (std::size_t i = 0; i < rest.size(); ++i) put(rest[i], perm[i] + 3);
    } else {
      const auto perm = rng.permutation(static_cast<std::uint32_t>(iv.size()));
      for (std::size_t i = 0; i < iv.size(); ++i) put(iv[i], perm[i] + 1);
    }
  }
  return out;
}

}  // namespace

std::vector<std::pair<Port, Port>> assignPorts(std::uint32_t nodeCount,
                                               const std::vector<Edge>& edges,
                                               const std::vector<Port>& deg,
                                               PortLabeling labeling,
                                               std::uint64_t seed) {
  switch (labeling) {
    case PortLabeling::InsertionOrder:
      return insertionOrderPorts(nodeCount, edges);
    case PortLabeling::RandomPermutation:
      return randomPorts(nodeCount, edges, deg, seed);
    case PortLabeling::Constrained:
      return constrainedPorts(nodeCount, edges, deg, seed);
  }
  DISP_CHECK(false, "unknown labeling");
  return {};
}

}  // namespace disp
