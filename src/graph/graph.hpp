#pragma once
// Anonymous, port-labeled, simple undirected graph (the paper's §2 model).
//
// Nodes carry no identifiers visible to agents and store nothing.  The only
// structure an agent may use is: the degree of its current node, and the
// locally distinct port numbers 1..δ_v on the incident edges.  NodeId exists
// purely as engine bookkeeping; protocol code never branches on it.
//
// Storage is CSR: neighbor(v, p) is an O(1) lookup, and reversePort(v, p)
// precomputes p_u(v) so the engine can set an arriving agent's `pin`.

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "util/check.hpp"

namespace disp {

using NodeId = std::uint32_t;
using Port = std::uint32_t;

/// The paper's ⊥ port (no port / root parent / unset).
inline constexpr Port kNoPort = 0;
inline constexpr NodeId kInvalidNode = static_cast<NodeId>(-1);

/// An undirected edge between two node indices (u < v is not required).
struct Edge {
  NodeId u;
  NodeId v;
};

class GraphBuilder;

class Graph {
 public:
  Graph() = default;

  [[nodiscard]] std::uint32_t nodeCount() const noexcept {
    return static_cast<std::uint32_t>(offsets_.empty() ? 0 : offsets_.size() - 1);
  }
  [[nodiscard]] std::uint64_t edgeCount() const noexcept { return edgeCount_; }

  [[nodiscard]] Port degree(NodeId v) const {
    DISP_DCHECK(v < nodeCount(), "node out of range");
    return offsets_[v + 1] - offsets_[v];
  }

  [[nodiscard]] Port maxDegree() const noexcept { return maxDegree_; }

  /// Neighbor N(v, p) for p in [1, degree(v)].
  [[nodiscard]] NodeId neighbor(NodeId v, Port p) const {
    DISP_DCHECK(v < nodeCount(), "node out of range");
    DISP_DCHECK(p >= 1 && p <= degree(v), "port out of range");
    return targets_[offsets_[v] + p - 1];
  }

  /// The port at neighbor(v, p) that leads back to v, i.e. p_u(v).
  [[nodiscard]] Port reversePort(NodeId v, Port p) const {
    DISP_DCHECK(v < nodeCount(), "node out of range");
    DISP_DCHECK(p >= 1 && p <= degree(v), "port out of range");
    return reverse_[offsets_[v] + p - 1];
  }

  /// All neighbors of v in port order (port p = index + 1).
  [[nodiscard]] std::span<const NodeId> neighbors(NodeId v) const {
    DISP_DCHECK(v < nodeCount(), "node out of range");
    return {targets_.data() + offsets_[v], static_cast<std::size_t>(degree(v))};
  }

  /// Port at v leading to u, or kNoPort if not adjacent.  O(δ_v).
  [[nodiscard]] Port portTo(NodeId v, NodeId u) const;

  /// Undirected edge list (each edge once, u <= v).
  [[nodiscard]] std::vector<Edge> edges() const;

 private:
  friend class GraphBuilder;
  std::vector<std::uint32_t> offsets_;  // size n+1
  std::vector<NodeId> targets_;         // size 2m, port-ordered
  std::vector<Port> reverse_;           // size 2m
  std::uint64_t edgeCount_ = 0;
  Port maxDegree_ = 0;
};

/// How ports are assigned when a Graph is materialized from an edge list.
enum class PortLabeling {
  InsertionOrder,  ///< ports follow edge-list order (deterministic, simple)
  RandomPermutation,  ///< independent uniform permutation per node (default in experiments)
  Constrained,  ///< §8.2 assumption: no edge may have port pair in {1,2}×{1,2}
};

class GraphBuilder {
 public:
  explicit GraphBuilder(std::uint32_t nodeCount) : n_(nodeCount) {}

  /// Adds an undirected edge; rejects self-loops and duplicates.
  GraphBuilder& addEdge(NodeId u, NodeId v);

  [[nodiscard]] std::uint32_t nodeCount() const noexcept { return n_; }
  [[nodiscard]] const std::vector<Edge>& edges() const noexcept { return edges_; }

  /// Materializes the CSR graph with the requested labeling. `seed` drives
  /// the permutations for RandomPermutation / Constrained.
  [[nodiscard]] Graph build(PortLabeling labeling = PortLabeling::InsertionOrder,
                            std::uint64_t seed = 0) const;

  /// Materializes the CSR graph with explicit ports: ports[i] = (port at
  /// edges()[i].u, port at edges()[i].v).  Ports must form the permutation
  /// 1..δ at every node.  Used by graph I/O to reproduce labelings exactly
  /// (not every valid labeling is reachable by insertion order).
  [[nodiscard]] Graph buildWithPorts(
      const std::vector<std::pair<Port, Port>>& ports) const;

 private:
  std::uint32_t n_;
  std::vector<Edge> edges_;
};

/// True iff the port labeling satisfies the §8.2 assumption: for every edge
/// (u,v), the pair (p_u(v), p_v(u)) is not in {1,2}×{1,2} — except that a
/// port is exempt when it is forced by low degree (port 1 at a degree-1
/// node; ports 1-2 at a degree-2 node).
[[nodiscard]] bool satisfiesConstrainedLabeling(const Graph& g);

/// Structural sanity: CSR consistency, symmetric reverse ports, simplicity.
/// Throws std::logic_error on violation; used by tests.
void validateGraph(const Graph& g);

}  // namespace disp
