#pragma once
// Anonymous, port-labeled, simple undirected graph (the paper's §2 model).
//
// Nodes carry no identifiers visible to agents and store nothing.  The only
// structure an agent may use is: the degree of its current node, and the
// locally distinct port numbers 1..δ_v on the incident edges.  NodeId exists
// purely as engine bookkeeping; protocol code never branches on it.
//
// Storage is CSR: neighbor(v, p) is an O(1) lookup, and reversePort(v, p)
// precomputes p_u(v) so the engine can set an arriving agent's `pin`.

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "util/check.hpp"

namespace disp {

using NodeId = std::uint32_t;
using Port = std::uint32_t;

/// The paper's ⊥ port (no port / root parent / unset).
inline constexpr Port kNoPort = 0;
inline constexpr NodeId kInvalidNode = static_cast<NodeId>(-1);

/// An undirected edge between two node indices (u < v is not required).
struct Edge {
  NodeId u;
  NodeId v;
};

class GraphBuilder;
class TwoPassBuilder;

class Graph {
 public:
  Graph() = default;

  [[nodiscard]] std::uint32_t nodeCount() const noexcept {
    return static_cast<std::uint32_t>(offsets_.empty() ? 0 : offsets_.size() - 1);
  }
  [[nodiscard]] std::uint64_t edgeCount() const noexcept { return edgeCount_; }

  [[nodiscard]] Port degree(NodeId v) const {
    DISP_DCHECK(v < nodeCount(), "node out of range");
    return offsets_[v + 1] - offsets_[v];
  }

  [[nodiscard]] Port maxDegree() const noexcept { return maxDegree_; }

  /// Neighbor N(v, p) for p in [1, degree(v)].
  [[nodiscard]] NodeId neighbor(NodeId v, Port p) const {
    DISP_DCHECK(v < nodeCount(), "node out of range");
    DISP_DCHECK(p >= 1 && p <= degree(v), "port out of range");
    return targets_[offsets_[v] + p - 1];
  }

  /// The port at neighbor(v, p) that leads back to v, i.e. p_u(v).
  [[nodiscard]] Port reversePort(NodeId v, Port p) const {
    DISP_DCHECK(v < nodeCount(), "node out of range");
    DISP_DCHECK(p >= 1 && p <= degree(v), "port out of range");
    return reverse_[offsets_[v] + p - 1];
  }

  /// All neighbors of v in port order (port p = index + 1).
  [[nodiscard]] std::span<const NodeId> neighbors(NodeId v) const {
    DISP_DCHECK(v < nodeCount(), "node out of range");
    return {targets_.data() + offsets_[v], static_cast<std::size_t>(degree(v))};
  }

  /// Port at v leading to u, or kNoPort if not adjacent.  O(δ_v) linear
  /// scan below kPortToIndexThreshold; O(log δ_v) via a per-node sorted
  /// slot index above it (power-law hubs would otherwise pay O(Δ)).
  [[nodiscard]] Port portTo(NodeId v, NodeId u) const;

  /// Undirected edge list (each edge once, u <= v).
  [[nodiscard]] std::vector<Edge> edges() const;

  /// Degrees above this use the sorted portTo index (facts are unchanged:
  /// the index is a pure lookup accelerator over the same CSR slots).
  static constexpr Port kPortToIndexThreshold = 32;

 private:
  friend class GraphBuilder;
  friend class TwoPassBuilder;

  /// Builds the high-degree portTo acceleration index (called by builders).
  void buildPortToIndex();

  std::vector<std::uint32_t> offsets_;  // size n+1
  std::vector<NodeId> targets_;         // size 2m, port-ordered
  std::vector<Port> reverse_;           // size 2m
  std::uint64_t edgeCount_ = 0;
  Port maxDegree_ = 0;
  // portTo fast path: for each node with degree > kPortToIndexThreshold (in
  // ascending NodeId order), the global CSR slot indices of its row sorted
  // by target id.  Empty on low-degree graphs — zero overhead there.
  std::vector<NodeId> portIndexNodes_;
  std::vector<std::uint64_t> portIndexOffsets_;   // size portIndexNodes_+1
  std::vector<std::uint32_t> portIndexSlots_;
};

/// How ports are assigned when a Graph is materialized from an edge list.
enum class PortLabeling {
  InsertionOrder,  ///< ports follow edge-list order (deterministic, simple)
  RandomPermutation,  ///< independent uniform permutation per node (default in experiments)
  Constrained,  ///< §8.2 assumption: no edge may have port pair in {1,2}×{1,2}
};

class GraphBuilder {
 public:
  explicit GraphBuilder(std::uint32_t nodeCount) : n_(nodeCount) {}

  /// Adds an undirected edge; rejects self-loops and duplicates.
  GraphBuilder& addEdge(NodeId u, NodeId v);

  [[nodiscard]] std::uint32_t nodeCount() const noexcept { return n_; }
  [[nodiscard]] const std::vector<Edge>& edges() const noexcept { return edges_; }

  /// Materializes the CSR graph with the requested labeling. `seed` drives
  /// the permutations for RandomPermutation / Constrained.
  [[nodiscard]] Graph build(PortLabeling labeling = PortLabeling::InsertionOrder,
                            std::uint64_t seed = 0) const;

  /// Materializes the CSR graph with explicit ports: ports[i] = (port at
  /// edges()[i].u, port at edges()[i].v).  Ports must form the permutation
  /// 1..δ at every node.  Used by graph I/O to reproduce labelings exactly
  /// (not every valid labeling is reachable by insertion order).
  [[nodiscard]] Graph buildWithPorts(
      const std::vector<std::pair<Port, Port>>& ports) const;

 private:
  std::uint32_t n_;
  std::vector<Edge> edges_;
};

/// Degree-counting two-pass CSR builder for web-scale ingest: stream the
/// edge list twice — countEdge() for every edge, beginEdges(), then
/// addEdge() for the same edges — and the builder emits offsets_/targets_/
/// reverse_ directly with insertion-order ports.  No intermediate edge
/// vector: peak transient memory is the CSR itself plus one u32 cursor per
/// node, versus GraphBuilder's ~3x (edge vector + per-edge port pairs).
///
/// Produces bit-identically the graph GraphBuilder::build(InsertionOrder)
/// produces for the same edge sequence (a port is the per-node arrival
/// index of the edge, which is exactly what the write cursors assign).
/// Self-loops are rejected; duplicate rejection is the caller's job (the
/// streaming loaders detect duplicates on their sorted rows before pass
/// two), so finish() skips the O(m log m) validateGraph pass — the fuzz
/// suite pins equivalence against the validating builder instead.
class TwoPassBuilder {
 public:
  explicit TwoPassBuilder(std::uint32_t nodeCount);

  /// Pass one: accumulate endpoint degrees for one edge.
  void countEdge(NodeId u, NodeId v);

  /// Seals pass one: prefix-sums degrees, allocates the CSR arrays.
  void beginEdges();

  /// Pass two: place one edge; ports follow per-node arrival order.
  void addEdge(NodeId u, NodeId v);

  /// Finalizes and returns the graph (pass-two edge count must match pass
  /// one).  The builder is left empty.
  [[nodiscard]] Graph finish();

 private:
  Graph g_;
  std::vector<std::uint32_t> cursor_;  // next free slot per node (pass two)
  std::uint64_t counted_ = 0;
  std::uint64_t added_ = 0;
  bool sealed_ = false;
};

/// True iff the port labeling satisfies the §8.2 assumption: for every edge
/// (u,v), the pair (p_u(v), p_v(u)) is not in {1,2}×{1,2} — except that a
/// port is exempt when it is forced by low degree (port 1 at a degree-1
/// node; ports 1-2 at a degree-2 node).
[[nodiscard]] bool satisfiesConstrainedLabeling(const Graph& g);

/// Structural sanity: CSR consistency, symmetric reverse ports, simplicity.
/// Throws std::logic_error on violation; used by tests.
void validateGraph(const Graph& g);

}  // namespace disp
