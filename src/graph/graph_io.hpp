#pragma once
// Text serialization for graphs.  Format ("dpg" — dispersion port graph):
//
//   dpg <n> <m>
//   <u> <pu> <v> <pv>      (one line per edge; ports preserved exactly)
//
// Round-tripping preserves the port labeling, which matters: an algorithm's
// trajectory depends on port numbers, so experiments can be archived and
// replayed bit-for-bit.

#include <iosfwd>
#include <string>

#include "graph/graph.hpp"

namespace disp {

void writeGraph(std::ostream& os, const Graph& g);
[[nodiscard]] Graph readGraph(std::istream& is);

void saveGraph(const std::string& path, const Graph& g);
[[nodiscard]] Graph loadGraph(const std::string& path);

}  // namespace disp
