#pragma once
// Graph file I/O.  Three readable formats, one writable:
//
//  * "dpg" (dispersion port graph) — our native archive format:
//
//        dpg <n> <m>
//        <u> <pu> <v> <pv>      (one line per edge; ports preserved exactly)
//
//    Round-tripping preserves the port labeling, which matters: an
//    algorithm's trajectory depends on port numbers, so experiments can be
//    archived and replayed bit-for-bit.
//
//  * plain edge lists — one `u v` pair per line, `#`/`%` comments and blank
//    lines ignored; node ids are arbitrary non-negative integers, remapped
//    to 0..n-1 in sorted-id order.
//
//  * Graphalytics `.v`/`.e` pairs — the `.v` file lists one vertex id per
//    line (extra value columns ignored), the `.e` file one `src dst
//    [weight]` edge per line; ids map to their `.v` line order.
//
// Formats without stored ports get a *deterministic* labeling: edges are
// sorted by remapped endpoints and ports assigned in insertion order, so
// the same file always materializes the identical port-labeled graph (the
// `file:` GraphSpec relies on this for replayability).
//
// Every parse error reports the source name and 1-based line number
// ("path:line: what"); duplicate edges, self-loops, out-of-range nodes and
// bad/duplicate/missing ports are all rejected.  Loaded graphs must be
// connected (the paper's model assumes it).

#include <iosfwd>
#include <string>

#include "graph/graph.hpp"

namespace disp {

void writeGraph(std::ostream& os, const Graph& g);

/// Reads the native "dpg" format.  `source` names the stream in errors.
[[nodiscard]] Graph readGraph(std::istream& is,
                              const std::string& source = "<stream>");

/// Reads a plain edge list (see file header).
[[nodiscard]] Graph readEdgeList(std::istream& is,
                                 const std::string& source = "<stream>");

/// Reads a Graphalytics vertex/edge file pair.
[[nodiscard]] Graph readGraphalytics(std::istream& vs, std::istream& es,
                                     const std::string& vSource = "<v-stream>",
                                     const std::string& eSource = "<e-stream>");

/// Writes `base.v` (ids 0..n-1, one per line) and `base.e` (one `u v` per
/// undirected edge) — the Graphalytics pair the readers above consume.
/// Ports are not stored; reloading applies the deterministic labeling.
void writeGraphalytics(const std::string& basePath, const Graph& g);

void saveGraph(const std::string& path, const Graph& g);
[[nodiscard]] Graph loadGraph(const std::string& path);      // dpg
[[nodiscard]] Graph loadEdgeList(const std::string& path);
/// Accepts `base`, `base.v` or `base.e`; loads the `.v`/`.e` pair.
[[nodiscard]] Graph loadGraphalytics(const std::string& path);

/// Format-sniffing loader (the `file:` GraphSpec entry point): a `.v`/`.e`
/// extension selects the Graphalytics pair, a leading "dpg" magic selects
/// the native format, anything else parses as a plain edge list.
[[nodiscard]] Graph loadAnyGraph(const std::string& path);

}  // namespace disp
