#include "graph/graph_io.hpp"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <map>
#include <optional>
#include <set>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "graph/generators.hpp"  // isConnected
#include "util/check.hpp"

namespace disp {

namespace {

[[noreturn]] void fail(const std::string& source, const std::string& why) {
  throw std::invalid_argument(source + ": " + why);
}

[[noreturn]] void failAt(const std::string& source, std::uint64_t line,
                         const std::string& why) {
  fail(source + ":" + std::to_string(line), why);
}

/// Strict unsigned parse of one token; nullopt on anything non-numeric.
std::optional<std::uint64_t> parseId(const std::string& tok) {
  if (tok.empty() ||
      tok.find_first_not_of("0123456789") != std::string::npos) {
    return std::nullopt;
  }
  return std::strtoull(tok.c_str(), nullptr, 10);
}

std::vector<std::string> tokenize(const std::string& line) {
  std::istringstream is(line);
  std::vector<std::string> toks;
  std::string tok;
  while (is >> tok) toks.push_back(tok);
  return toks;
}

bool isCommentOrBlank(const std::vector<std::string>& toks) {
  return toks.empty() || toks.front()[0] == '#' || toks.front()[0] == '%';
}

/// Shared tail of the port-free formats: canonical edge order (sorted by
/// remapped endpoints) + insertion-order ports = a deterministic labeling,
/// then the model's connectivity requirement.
Graph buildDeterministic(std::uint32_t n, std::vector<Edge> edges,
                         const std::string& source) {
  std::sort(edges.begin(), edges.end(), [](const Edge& a, const Edge& b) {
    return a.u != b.u ? a.u < b.u : a.v < b.v;
  });
  GraphBuilder b(n);
  for (const Edge& e : edges) b.addEdge(e.u, e.v);
  Graph g = b.build(PortLabeling::InsertionOrder, 0);
  if (!isConnected(g)) fail(source, "graph is not connected");
  return g;
}

}  // namespace

void writeGraph(std::ostream& os, const Graph& g) {
  os << "dpg " << g.nodeCount() << ' ' << g.edgeCount() << '\n';
  for (NodeId v = 0; v < g.nodeCount(); ++v) {
    for (Port p = 1; p <= g.degree(v); ++p) {
      const NodeId u = g.neighbor(v, p);
      if (v <= u) {
        os << v << ' ' << p << ' ' << u << ' ' << g.reversePort(v, p) << '\n';
      }
    }
  }
}

Graph readGraph(std::istream& is, const std::string& source) {
  struct Rec {
    NodeId u;
    Port pu;
    NodeId v;
    Port pv;
    std::uint64_t line;
  };
  std::uint64_t lineNo = 0;
  std::string line;
  std::uint32_t n = 0;
  std::uint64_t m = 0;
  bool sawHeader = false;
  std::vector<Rec> recs;
  std::set<std::pair<NodeId, NodeId>> seenEdges;

  while (std::getline(is, line)) {
    ++lineNo;
    const std::vector<std::string> toks = tokenize(line);
    if (toks.empty()) continue;
    if (!sawHeader) {
      if (toks.size() != 3 || toks[0] != "dpg") {
        failAt(source, lineNo, "bad graph header (want 'dpg <n> <m>')");
      }
      const auto hn = parseId(toks[1]);
      const auto hm = parseId(toks[2]);
      if (!hn || !hm || *hn > 0xffffffffULL) {
        failAt(source, lineNo, "bad node/edge count in header");
      }
      n = static_cast<std::uint32_t>(*hn);
      m = *hm;
      sawHeader = true;
      continue;
    }
    if (recs.size() == m) failAt(source, lineNo, "trailing content after the last edge");
    if (toks.size() != 4) failAt(source, lineNo, "want '<u> <pu> <v> <pv>'");
    std::uint64_t vals[4];
    for (int i = 0; i < 4; ++i) {
      const auto v = parseId(toks[static_cast<std::size_t>(i)]);
      if (!v) failAt(source, lineNo, "non-numeric field '" +
                                         toks[static_cast<std::size_t>(i)] + "'");
      vals[i] = *v;
    }
    if (vals[0] >= n || vals[2] >= n) {
      failAt(source, lineNo, "node out of range (n = " + std::to_string(n) + ")");
    }
    if (vals[0] == vals[2]) failAt(source, lineNo, "self-loop");
    Rec r{static_cast<NodeId>(vals[0]), static_cast<Port>(vals[1]),
          static_cast<NodeId>(vals[2]), static_cast<Port>(vals[3]), lineNo};
    const auto key = std::minmax(r.u, r.v);
    if (!seenEdges.insert({key.first, key.second}).second) {
      failAt(source, lineNo,
             "duplicate edge " + std::to_string(r.u) + "-" + std::to_string(r.v));
    }
    recs.push_back(r);
  }
  if (!sawHeader) fail(source, "bad graph header (want 'dpg <n> <m>')");
  if (recs.size() != m) {
    fail(source, "truncated graph file: " + std::to_string(recs.size()) + " of " +
                     std::to_string(m) + " edges");
  }

  // Degrees are implied by the maximum port mentioned at each node; ports
  // must then form exactly the permutation 1..deg at every node.
  std::vector<Port> deg(n, 0);
  for (const Rec& r : recs) {
    deg[r.u] = std::max(deg[r.u], r.pu);
    deg[r.v] = std::max(deg[r.v], r.pv);
  }
  {
    std::vector<std::vector<std::uint8_t>> seen(n);
    for (NodeId v = 0; v < n; ++v) seen[v].assign(deg[v] + 1, 0);
    const auto mark = [&](NodeId at, Port p, std::uint64_t atLine) {
      if (p < 1 || p > deg[at]) {
        failAt(source, atLine,
               "port " + std::to_string(p) + " out of range at node " +
                   std::to_string(at) + " (degree " + std::to_string(deg[at]) + ")");
      }
      if (seen[at][p]) {
        failAt(source, atLine, "duplicate port " + std::to_string(p) +
                                   " at node " + std::to_string(at));
      }
      seen[at][p] = 1;
    };
    for (const Rec& r : recs) {
      mark(r.u, r.pu, r.line);
      mark(r.v, r.pv, r.line);
    }
    for (NodeId v = 0; v < n; ++v) {
      for (Port p = 1; p <= deg[v]; ++p) {
        if (!seen[v][p]) {
          fail(source, "node " + std::to_string(v) + " is missing port " +
                           std::to_string(p));
        }
      }
    }
  }

  GraphBuilder b(n);
  std::vector<std::pair<Port, Port>> ports;
  ports.reserve(recs.size());
  for (const Rec& r : recs) {
    b.addEdge(r.u, r.v);
    ports.emplace_back(r.pu, r.pv);
  }
  Graph g = b.buildWithPorts(ports);
  if (!isConnected(g)) fail(source, "graph is not connected");
  return g;
}

Graph readEdgeList(std::istream& is, const std::string& source) {
  std::uint64_t lineNo = 0;
  std::string line;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> raw;
  std::set<std::pair<std::uint64_t, std::uint64_t>> seen;
  std::vector<std::uint64_t> ids;
  while (std::getline(is, line)) {
    ++lineNo;
    const std::vector<std::string> toks = tokenize(line);
    if (isCommentOrBlank(toks)) continue;
    if (toks.size() != 2) failAt(source, lineNo, "want '<u> <v>' per edge line");
    const auto u = parseId(toks[0]);
    const auto v = parseId(toks[1]);
    if (!u || !v) {
      failAt(source, lineNo,
             "non-numeric node id '" + (!u ? toks[0] : toks[1]) + "'");
    }
    if (*u == *v) failAt(source, lineNo, "self-loop at node " + toks[0]);
    const auto key = std::minmax(*u, *v);
    if (!seen.insert({key.first, key.second}).second) {
      failAt(source, lineNo, "duplicate edge " + toks[0] + " " + toks[1]);
    }
    raw.emplace_back(*u, *v);
    ids.push_back(*u);
    ids.push_back(*v);
  }
  if (raw.empty()) fail(source, "no edges");

  // Remap the (possibly sparse) ids to 0..n-1 in sorted-id order.
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  const auto index = [&ids](std::uint64_t id) {
    return static_cast<NodeId>(
        std::lower_bound(ids.begin(), ids.end(), id) - ids.begin());
  };
  std::vector<Edge> edges;
  edges.reserve(raw.size());
  for (const auto& [u, v] : raw) edges.push_back({index(u), index(v)});
  return buildDeterministic(static_cast<std::uint32_t>(ids.size()),
                            std::move(edges), source);
}

Graph readGraphalytics(std::istream& vs, std::istream& es,
                       const std::string& vSource, const std::string& eSource) {
  std::map<std::uint64_t, NodeId> index;
  std::uint64_t lineNo = 0;
  std::string line;
  while (std::getline(vs, line)) {
    ++lineNo;
    const std::vector<std::string> toks = tokenize(line);
    if (isCommentOrBlank(toks)) continue;
    const auto id = parseId(toks[0]);
    if (!id) failAt(vSource, lineNo, "non-numeric vertex id '" + toks[0] + "'");
    const auto next = static_cast<NodeId>(index.size());
    if (!index.emplace(*id, next).second) {
      failAt(vSource, lineNo, "duplicate vertex id " + toks[0]);
    }
  }
  if (index.empty()) fail(vSource, "no vertices");
  DISP_REQUIRE(index.size() <= 0xffffffffULL, "too many vertices in " + vSource);

  std::vector<Edge> edges;
  std::set<std::pair<NodeId, NodeId>> seen;
  lineNo = 0;
  while (std::getline(es, line)) {
    ++lineNo;
    const std::vector<std::string> toks = tokenize(line);
    if (isCommentOrBlank(toks)) continue;
    if (toks.size() != 2 && toks.size() != 3) {
      failAt(eSource, lineNo, "want '<src> <dst> [weight]' per edge line");
    }
    NodeId mapped[2];
    for (int i = 0; i < 2; ++i) {
      const auto id = parseId(toks[static_cast<std::size_t>(i)]);
      const auto it = id ? index.find(*id) : index.end();
      if (it == index.end()) {
        failAt(eSource, lineNo,
               "unknown vertex id '" + toks[static_cast<std::size_t>(i)] +
                   "' (not in " + vSource + ")");
      }
      mapped[i] = it->second;
    }
    if (mapped[0] == mapped[1]) failAt(eSource, lineNo, "self-loop at id " + toks[0]);
    const auto key = std::minmax(mapped[0], mapped[1]);
    if (!seen.insert({key.first, key.second}).second) {
      failAt(eSource, lineNo, "duplicate edge " + toks[0] + " " + toks[1]);
    }
    edges.push_back({mapped[0], mapped[1]});
  }
  return buildDeterministic(static_cast<std::uint32_t>(index.size()),
                            std::move(edges), eSource);
}

void saveGraph(const std::string& path, const Graph& g) {
  std::ofstream os(path);
  DISP_REQUIRE(os.good(), "cannot open file for writing: " + path);
  writeGraph(os, g);
}

namespace {

std::ifstream openOrFail(const std::string& path) {
  std::ifstream is(path);
  DISP_REQUIRE(is.good(), "cannot open file for reading: " + path);
  return is;
}

}  // namespace

Graph loadGraph(const std::string& path) {
  std::ifstream is = openOrFail(path);
  return readGraph(is, path);
}

Graph loadEdgeList(const std::string& path) {
  std::ifstream is = openOrFail(path);
  return readEdgeList(is, path);
}

Graph loadGraphalytics(const std::string& path) {
  std::string base = path;
  if (base.size() >= 2 &&
      (base.ends_with(".v") || base.ends_with(".e"))) {
    base.resize(base.size() - 2);
  }
  std::ifstream vs = openOrFail(base + ".v");
  std::ifstream es = openOrFail(base + ".e");
  return readGraphalytics(vs, es, base + ".v", base + ".e");
}

Graph loadAnyGraph(const std::string& path) {
  if (path.ends_with(".v") || path.ends_with(".e")) return loadGraphalytics(path);
  {
    std::ifstream sniff = openOrFail(path);
    std::string first;
    sniff >> first;
    if (first == "dpg") return loadGraph(path);
  }
  return loadEdgeList(path);
}

}  // namespace disp
