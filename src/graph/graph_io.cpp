#include "graph/graph_io.hpp"

#include <fstream>
#include <sstream>
#include <vector>

#include "util/check.hpp"

namespace disp {

void writeGraph(std::ostream& os, const Graph& g) {
  os << "dpg " << g.nodeCount() << ' ' << g.edgeCount() << '\n';
  for (NodeId v = 0; v < g.nodeCount(); ++v) {
    for (Port p = 1; p <= g.degree(v); ++p) {
      const NodeId u = g.neighbor(v, p);
      if (v <= u) {
        os << v << ' ' << p << ' ' << u << ' ' << g.reversePort(v, p) << '\n';
      }
    }
  }
}

Graph readGraph(std::istream& is) {
  std::string magic;
  std::uint32_t n = 0;
  std::uint64_t m = 0;
  is >> magic >> n >> m;
  DISP_REQUIRE(magic == "dpg", "bad graph header");

  struct Rec {
    NodeId u;
    Port pu;
    NodeId v;
    Port pv;
  };
  std::vector<Rec> recs;
  recs.reserve(m);
  for (std::uint64_t i = 0; i < m; ++i) {
    Rec r{};
    is >> r.u >> r.pu >> r.v >> r.pv;
    DISP_REQUIRE(static_cast<bool>(is), "truncated graph file");
    DISP_REQUIRE(r.u < n && r.v < n, "node out of range in graph file");
    recs.push_back(r);
  }

  // Degrees are implied by the maximum port mentioned at each node; ports
  // must then form exactly the permutation 1..deg at every node.
  std::vector<Port> deg(n, 0);
  for (const Rec& r : recs) {
    deg[r.u] = std::max(deg[r.u], r.pu);
    deg[r.v] = std::max(deg[r.v], r.pv);
  }
  {
    std::vector<std::vector<std::uint8_t>> seen(n);
    for (NodeId v = 0; v < n; ++v) seen[v].assign(deg[v] + 1, 0);
    auto mark = [&](NodeId at, Port p) {
      DISP_REQUIRE(p >= 1 && p <= deg[at], "port out of range in file");
      DISP_REQUIRE(!seen[at][p], "duplicate port in file");
      seen[at][p] = 1;
    };
    for (const Rec& r : recs) {
      mark(r.u, r.pu);
      mark(r.v, r.pv);
    }
    for (NodeId v = 0; v < n; ++v)
      for (Port p = 1; p <= deg[v]; ++p) DISP_REQUIRE(seen[v][p], "missing port in file");
  }

  GraphBuilder b(n);
  std::vector<std::pair<Port, Port>> ports;
  ports.reserve(recs.size());
  for (const Rec& r : recs) {
    b.addEdge(r.u, r.v);
    ports.emplace_back(r.pu, r.pv);
  }
  return b.buildWithPorts(ports);
}

void saveGraph(const std::string& path, const Graph& g) {
  std::ofstream os(path);
  DISP_REQUIRE(os.good(), "cannot open file for writing: " + path);
  writeGraph(os, g);
}

Graph loadGraph(const std::string& path) {
  std::ifstream is(path);
  DISP_REQUIRE(is.good(), "cannot open file for reading: " + path);
  return readGraph(is);
}

}  // namespace disp
