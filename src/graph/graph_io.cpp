#include "graph/graph_io.hpp"

#include <algorithm>
#include <charconv>
#include <climits>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <functional>
#include <optional>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string_view>
#include <utility>
#include <vector>

#include "graph/generators.hpp"  // isConnected
#include "util/check.hpp"

namespace disp {

namespace {

[[noreturn]] void fail(const std::string& source, const std::string& why) {
  throw std::invalid_argument(source + ": " + why);
}

[[noreturn]] void failAt(const std::string& source, std::uint64_t line,
                         const std::string& why) {
  fail(source + ":" + std::to_string(line), why);
}

/// Strict unsigned parse of one token; nullopt on anything non-numeric.
/// Overflow saturates to ULLONG_MAX (the historical strtoull behavior).
std::optional<std::uint64_t> parseId(std::string_view tok) {
  if (tok.empty()) return std::nullopt;
  for (const char c : tok) {
    if (c < '0' || c > '9') return std::nullopt;
  }
  std::uint64_t v = 0;
  const auto res = std::from_chars(tok.data(), tok.data() + tok.size(), v);
  if (res.ec == std::errc::result_out_of_range) return ULLONG_MAX;
  if (res.ec != std::errc() || res.ptr != tok.data() + tok.size()) {
    return std::nullopt;
  }
  return v;
}

// ---------------------------------------------------------------------------
// Streaming line scanner: reads the stream in 1 MiB chunks and yields
// terminator-free string_view lines over the internal buffer — no per-line
// std::string allocation, no istream::getline small-read churn.  Views stay
// valid until the next next() call.

class LineScanner {
 public:
  explicit LineScanner(std::istream& is) : is_(is), buf_(kChunk) {}

  /// Yields the next line (without '\n') and bumps lineNo(); false at EOF.
  bool next(std::string_view& line) {
    for (;;) {
      const char* base = buf_.data();
      const void* nl = std::memchr(base + pos_, '\n', end_ - pos_);
      if (nl != nullptr) {
        const auto at =
            static_cast<std::size_t>(static_cast<const char*>(nl) - base);
        line = std::string_view(base + pos_, at - pos_);
        pos_ = at + 1;
        ++lineNo_;
        return true;
      }
      if (eof_) {
        if (pos_ == end_) return false;
        line = std::string_view(base + pos_, end_ - pos_);
        pos_ = end_;
        ++lineNo_;
        return true;
      }
      refill();
    }
  }

  [[nodiscard]] std::uint64_t lineNo() const noexcept { return lineNo_; }

 private:
  static constexpr std::size_t kChunk = 1u << 20;

  void refill() {
    if (pos_ > 0) {  // compact the partial tail line to the front
      std::memmove(buf_.data(), buf_.data() + pos_, end_ - pos_);
      end_ -= pos_;
      pos_ = 0;
    }
    if (buf_.size() - end_ < kChunk) {  // a single line longer than a chunk
      buf_.resize(std::max(buf_.size() * 2, end_ + kChunk));
    }
    is_.read(buf_.data() + end_,
             static_cast<std::streamsize>(buf_.size() - end_));
    const auto got = static_cast<std::size_t>(is_.gcount());
    end_ += got;
    if (got == 0) eof_ = true;
  }

  std::istream& is_;
  std::vector<char> buf_;
  std::size_t pos_ = 0;
  std::size_t end_ = 0;
  std::uint64_t lineNo_ = 0;
  bool eof_ = false;
};

/// Matches the whitespace set `istream >> std::string` splits on.
bool isSpaceChar(char c) {
  return c == ' ' || c == '\t' || c == '\r' || c == '\n' || c == '\v' ||
         c == '\f';
}

/// Up to 5 whitespace-separated tokens of a line; count caps at 5, which
/// keeps every exact-arity check (2, 3 or 4 tokens) meaningful.
struct Tokens {
  std::string_view tok[5];
  std::size_t count = 0;
};

Tokens splitLine(std::string_view line) {
  Tokens t;
  std::size_t i = 0;
  const std::size_t len = line.size();
  while (i < len && t.count < 5) {
    while (i < len && isSpaceChar(line[i])) ++i;
    if (i >= len) break;
    std::size_t j = i;
    while (j < len && !isSpaceChar(line[j])) ++j;
    t.tok[t.count++] = line.substr(i, j - i);
    i = j;
  }
  return t;
}

bool isCommentOrBlank(const Tokens& toks) {
  return toks.count == 0 || toks.tok[0][0] == '#' || toks.tok[0][0] == '%';
}

/// The streamed loaders read their input twice (count, then build), so the
/// stream must rewind; every caller hands in an ifstream or a stringstream.
void rewind(std::istream& is, const std::string& source) {
  is.clear();
  is.seekg(0);
  if (!is.good()) {
    fail(source, "stream is not seekable (streaming ingest reads twice)");
  }
}

// Legacy string-based tokenizer, still used by the dpg reader (dpg files
// are small archives; the streaming path is for the web-scale formats).
std::vector<std::string> tokenize(const std::string& line) {
  std::istringstream is(line);
  std::vector<std::string> toks;
  std::string tok;
  while (is >> tok) toks.push_back(tok);
  return toks;
}

/// Cold path: a duplicate edge was detected on the sorted rows.  Rescans
/// the source with the historical per-line set so the error names the same
/// line and tokens the old single-pass loaders reported.  `mapKey` turns a
/// validated edge line into the dedup key (raw or remapped, normalized).
template <typename MapKey>
[[noreturn]] void reportDuplicateEdge(std::istream& is,
                                      const std::string& source,
                                      MapKey mapKey) {
  rewind(is, source);
  LineScanner sc(is);
  std::string_view line;
  std::set<std::pair<std::uint64_t, std::uint64_t>> seen;
  while (sc.next(line)) {
    const Tokens toks = splitLine(line);
    if (isCommentOrBlank(toks)) continue;
    if (!seen.insert(mapKey(toks)).second) {
      failAt(source, sc.lineNo(),
             "duplicate edge " + std::string(toks.tok[0]) + " " +
                 std::string(toks.tok[1]));
    }
  }
  DISP_CHECK(false, source + ": duplicate edge vanished on rescan");
  std::abort();  // unreachable; DISP_CHECK throws
}

/// Shared tail of the port-free formats, streaming edition: sorts the
/// as-written directed pairs into the canonical (u, v) order, rejects
/// duplicates (delegating the error message to `reportDuplicate`, which
/// rescans the source to name the offending line), then feeds the two-pass
/// CSR builder.  Ports are per-node arrival order over the sorted stream —
/// exactly the deterministic insertion-order labeling the historical
/// edge-vector path produced — and connectivity is checked last.  Peak
/// transient memory: the 8-byte pairs plus the CSR itself.
Graph buildFromMappedPairs(std::uint32_t n,
                           std::vector<std::pair<NodeId, NodeId>> pairs,
                           const std::string& source,
                           const std::function<void()>& reportDuplicate) {
  std::sort(pairs.begin(), pairs.end());
  bool dup = std::adjacent_find(pairs.begin(), pairs.end()) != pairs.end();
  if (!dup) {
    // Same-direction duplicates are adjacent; opposite-direction ones need
    // a lookup of the flipped pair (only one orientation must check).
    for (const auto& [u, v] : pairs) {
      if (v < u && std::binary_search(pairs.begin(), pairs.end(),
                                      std::pair<NodeId, NodeId>(v, u))) {
        dup = true;
        break;
      }
    }
  }
  if (dup) reportDuplicate();  // rescans and throws with the line number

  TwoPassBuilder b(n);
  for (const auto& [u, v] : pairs) b.countEdge(u, v);
  b.beginEdges();
  for (const auto& [u, v] : pairs) b.addEdge(u, v);
  pairs.clear();
  pairs.shrink_to_fit();
  Graph g = b.finish();
  if (!isConnected(g)) fail(source, "graph is not connected");
  return g;
}

}  // namespace

void writeGraph(std::ostream& os, const Graph& g) {
  os << "dpg " << g.nodeCount() << ' ' << g.edgeCount() << '\n';
  for (NodeId v = 0; v < g.nodeCount(); ++v) {
    for (Port p = 1; p <= g.degree(v); ++p) {
      const NodeId u = g.neighbor(v, p);
      if (v <= u) {
        os << v << ' ' << p << ' ' << u << ' ' << g.reversePort(v, p) << '\n';
      }
    }
  }
}

Graph readGraph(std::istream& is, const std::string& source) {
  struct Rec {
    NodeId u;
    Port pu;
    NodeId v;
    Port pv;
    std::uint64_t line;
  };
  std::uint64_t lineNo = 0;
  std::string line;
  std::uint32_t n = 0;
  std::uint64_t m = 0;
  bool sawHeader = false;
  std::vector<Rec> recs;
  std::set<std::pair<NodeId, NodeId>> seenEdges;

  while (std::getline(is, line)) {
    ++lineNo;
    const std::vector<std::string> toks = tokenize(line);
    if (toks.empty()) continue;
    if (!sawHeader) {
      if (toks.size() != 3 || toks[0] != "dpg") {
        failAt(source, lineNo, "bad graph header (want 'dpg <n> <m>')");
      }
      const auto hn = parseId(toks[1]);
      const auto hm = parseId(toks[2]);
      if (!hn || !hm || *hn > 0xffffffffULL) {
        failAt(source, lineNo, "bad node/edge count in header");
      }
      n = static_cast<std::uint32_t>(*hn);
      m = *hm;
      sawHeader = true;
      continue;
    }
    if (recs.size() == m) failAt(source, lineNo, "trailing content after the last edge");
    if (toks.size() != 4) failAt(source, lineNo, "want '<u> <pu> <v> <pv>'");
    std::uint64_t vals[4];
    for (int i = 0; i < 4; ++i) {
      const auto v = parseId(toks[static_cast<std::size_t>(i)]);
      if (!v) failAt(source, lineNo, "non-numeric field '" +
                                         toks[static_cast<std::size_t>(i)] + "'");
      vals[i] = *v;
    }
    if (vals[0] >= n || vals[2] >= n) {
      failAt(source, lineNo, "node out of range (n = " + std::to_string(n) + ")");
    }
    if (vals[0] == vals[2]) failAt(source, lineNo, "self-loop");
    Rec r{static_cast<NodeId>(vals[0]), static_cast<Port>(vals[1]),
          static_cast<NodeId>(vals[2]), static_cast<Port>(vals[3]), lineNo};
    const auto key = std::minmax(r.u, r.v);
    if (!seenEdges.insert({key.first, key.second}).second) {
      failAt(source, lineNo,
             "duplicate edge " + std::to_string(r.u) + "-" + std::to_string(r.v));
    }
    recs.push_back(r);
  }
  if (!sawHeader) fail(source, "bad graph header (want 'dpg <n> <m>')");
  if (recs.size() != m) {
    fail(source, "truncated graph file: " + std::to_string(recs.size()) + " of " +
                     std::to_string(m) + " edges");
  }

  // Degrees are implied by the maximum port mentioned at each node; ports
  // must then form exactly the permutation 1..deg at every node.
  std::vector<Port> deg(n, 0);
  for (const Rec& r : recs) {
    deg[r.u] = std::max(deg[r.u], r.pu);
    deg[r.v] = std::max(deg[r.v], r.pv);
  }
  {
    std::vector<std::vector<std::uint8_t>> seen(n);
    for (NodeId v = 0; v < n; ++v) seen[v].assign(deg[v] + 1, 0);
    const auto mark = [&](NodeId at, Port p, std::uint64_t atLine) {
      if (p < 1 || p > deg[at]) {
        failAt(source, atLine,
               "port " + std::to_string(p) + " out of range at node " +
                   std::to_string(at) + " (degree " + std::to_string(deg[at]) + ")");
      }
      if (seen[at][p]) {
        failAt(source, atLine, "duplicate port " + std::to_string(p) +
                                   " at node " + std::to_string(at));
      }
      seen[at][p] = 1;
    };
    for (const Rec& r : recs) {
      mark(r.u, r.pu, r.line);
      mark(r.v, r.pv, r.line);
    }
    for (NodeId v = 0; v < n; ++v) {
      for (Port p = 1; p <= deg[v]; ++p) {
        if (!seen[v][p]) {
          fail(source, "node " + std::to_string(v) + " is missing port " +
                           std::to_string(p));
        }
      }
    }
  }

  GraphBuilder b(n);
  std::vector<std::pair<Port, Port>> ports;
  ports.reserve(recs.size());
  for (const Rec& r : recs) {
    b.addEdge(r.u, r.v);
    ports.emplace_back(r.pu, r.pv);
  }
  Graph g = b.buildWithPorts(ports);
  if (!isConnected(g)) fail(source, "graph is not connected");
  return g;
}

Graph readEdgeList(std::istream& is, const std::string& source) {
  // Pass one: validate every line in order, count edges, and collect the
  // distinct raw ids.  The id pool is compacted (sort + unique) whenever it
  // doubles past the last unique count, so memory stays proportional to
  // the number of *distinct* ids, not the number of edges.
  std::uint64_t m = 0;
  std::vector<std::uint64_t> ids;
  std::size_t compactAt = 1024;
  {
    LineScanner sc(is);
    std::string_view line;
    while (sc.next(line)) {
      const Tokens toks = splitLine(line);
      if (isCommentOrBlank(toks)) continue;
      if (toks.count != 2) {
        failAt(source, sc.lineNo(), "want '<u> <v>' per edge line");
      }
      const auto u = parseId(toks.tok[0]);
      const auto v = parseId(toks.tok[1]);
      if (!u || !v) {
        failAt(source, sc.lineNo(),
               "non-numeric node id '" +
                   std::string(!u ? toks.tok[0] : toks.tok[1]) + "'");
      }
      if (*u == *v) {
        failAt(source, sc.lineNo(),
               "self-loop at node " + std::string(toks.tok[0]));
      }
      ++m;
      ids.push_back(*u);
      ids.push_back(*v);
      if (ids.size() >= compactAt) {
        std::sort(ids.begin(), ids.end());
        ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
        compactAt = std::max<std::size_t>(1024, ids.size() * 2);
      }
    }
  }
  if (m == 0) fail(source, "no edges");
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  ids.shrink_to_fit();
  DISP_REQUIRE(ids.size() <= 0xffffffffULL,
               "too many distinct node ids in " + source);
  DISP_REQUIRE(m <= 0x7fffffffULL, "too many edges in " + source);

  // Pass two: remap the (possibly sparse) ids to 0..n-1 in sorted-id order
  // — the historical contract — keeping the as-written direction.
  rewind(is, source);
  std::vector<std::pair<NodeId, NodeId>> pairs;
  pairs.reserve(m);
  const auto indexOf = [&ids](std::uint64_t id) {
    return static_cast<NodeId>(
        std::lower_bound(ids.begin(), ids.end(), id) - ids.begin());
  };
  {
    LineScanner sc(is);
    std::string_view line;
    while (sc.next(line)) {
      const Tokens toks = splitLine(line);
      if (isCommentOrBlank(toks)) continue;
      pairs.emplace_back(indexOf(*parseId(toks.tok[0])),
                         indexOf(*parseId(toks.tok[1])));
    }
  }
  const auto n = static_cast<std::uint32_t>(ids.size());
  ids.clear();
  ids.shrink_to_fit();
  return buildFromMappedPairs(
      n, std::move(pairs), source, [&is, &source] {
        reportDuplicateEdge(is, source, [](const Tokens& toks) {
          const std::uint64_t a = *parseId(toks.tok[0]);
          const std::uint64_t b = *parseId(toks.tok[1]);
          return std::pair<std::uint64_t, std::uint64_t>(std::min(a, b),
                                                         std::max(a, b));
        });
      });
}

Graph readGraphalytics(std::istream& vs, std::istream& es,
                       const std::string& vSource, const std::string& eSource) {
  // One streamed pass over the .v file; a vertex's NodeId is its id-line
  // order, as before.  The (id, NodeId) table is then sorted once for
  // binary-search lookups instead of a std::map's per-node allocations.
  std::vector<std::pair<std::uint64_t, NodeId>> lookup;
  {
    LineScanner sc(vs);
    std::string_view line;
    while (sc.next(line)) {
      const Tokens toks = splitLine(line);
      if (isCommentOrBlank(toks)) continue;
      const auto id = parseId(toks.tok[0]);
      if (!id) {
        failAt(vSource, sc.lineNo(),
               "non-numeric vertex id '" + std::string(toks.tok[0]) + "'");
      }
      lookup.emplace_back(*id, static_cast<NodeId>(lookup.size()));
    }
  }
  if (lookup.empty()) fail(vSource, "no vertices");
  DISP_REQUIRE(lookup.size() <= 0xffffffffULL, "too many vertices in " + vSource);
  std::sort(lookup.begin(), lookup.end());
  if (std::adjacent_find(lookup.begin(), lookup.end(),
                         [](const auto& a, const auto& b) {
                           return a.first == b.first;
                         }) != lookup.end()) {
    // Cold path: rescan with the historical per-line set so the error
    // names the second occurrence's line, exactly as before.
    rewind(vs, vSource);
    LineScanner sc(vs);
    std::string_view line;
    std::set<std::uint64_t> seen;
    while (sc.next(line)) {
      const Tokens toks = splitLine(line);
      if (isCommentOrBlank(toks)) continue;
      if (!seen.insert(*parseId(toks.tok[0])).second) {
        failAt(vSource, sc.lineNo(),
               "duplicate vertex id " + std::string(toks.tok[0]));
      }
    }
    DISP_CHECK(false, vSource + ": duplicate vertex id vanished on rescan");
  }
  const auto mapId = [&lookup](std::uint64_t id) {
    const auto it = std::lower_bound(
        lookup.begin(), lookup.end(), id,
        [](const std::pair<std::uint64_t, NodeId>& e, std::uint64_t key) {
          return e.first < key;
        });
    return (it != lookup.end() && it->first == id)
               ? std::optional<NodeId>(it->second)
               : std::nullopt;
  };

  // One streamed pass over the .e file straight into mapped pairs.
  std::vector<std::pair<NodeId, NodeId>> pairs;
  {
    LineScanner sc(es);
    std::string_view line;
    while (sc.next(line)) {
      const Tokens toks = splitLine(line);
      if (isCommentOrBlank(toks)) continue;
      if (toks.count != 2 && toks.count != 3) {
        failAt(eSource, sc.lineNo(), "want '<src> <dst> [weight]' per edge line");
      }
      NodeId mapped[2];
      for (int i = 0; i < 2; ++i) {
        const auto id = parseId(toks.tok[static_cast<std::size_t>(i)]);
        const auto at = id ? mapId(*id) : std::nullopt;
        if (!at) {
          failAt(eSource, sc.lineNo(),
                 "unknown vertex id '" +
                     std::string(toks.tok[static_cast<std::size_t>(i)]) +
                     "' (not in " + vSource + ")");
        }
        mapped[i] = *at;
      }
      if (mapped[0] == mapped[1]) {
        failAt(eSource, sc.lineNo(),
               "self-loop at id " + std::string(toks.tok[0]));
      }
      pairs.emplace_back(mapped[0], mapped[1]);
    }
  }
  DISP_REQUIRE(pairs.size() <= 0x7fffffffULL, "too many edges in " + eSource);
  const auto n = static_cast<std::uint32_t>(lookup.size());
  return buildFromMappedPairs(
      n, std::move(pairs), eSource, [&es, &eSource, &mapId] {
        reportDuplicateEdge(es, eSource, [&mapId](const Tokens& toks) {
          const NodeId a = *mapId(*parseId(toks.tok[0]));
          const NodeId b = *mapId(*parseId(toks.tok[1]));
          return std::pair<std::uint64_t, std::uint64_t>(std::min(a, b),
                                                         std::max(a, b));
        });
      });
}

namespace {

void appendNum(std::string& buf, std::uint64_t v) {
  char tmp[20];
  const auto res = std::to_chars(tmp, tmp + sizeof tmp, v);
  buf.append(tmp, res.ptr);
}

void flushIfFull(std::ostream& os, std::string& buf) {
  if (buf.size() >= (1u << 20)) {
    os.write(buf.data(), static_cast<std::streamsize>(buf.size()));
    buf.clear();
  }
}

}  // namespace

void writeGraphalytics(const std::string& basePath, const Graph& g) {
  std::string buf;
  buf.reserve(2u << 20);
  {
    std::ofstream os(basePath + ".v", std::ios::binary);
    DISP_REQUIRE(os.good(), "cannot open file for writing: " + basePath + ".v");
    for (NodeId v = 0; v < g.nodeCount(); ++v) {
      appendNum(buf, v);
      buf.push_back('\n');
      flushIfFull(os, buf);
    }
    os.write(buf.data(), static_cast<std::streamsize>(buf.size()));
    buf.clear();
    DISP_REQUIRE(os.good(), "write failed: " + basePath + ".v");
  }
  {
    std::ofstream os(basePath + ".e", std::ios::binary);
    DISP_REQUIRE(os.good(), "cannot open file for writing: " + basePath + ".e");
    for (NodeId v = 0; v < g.nodeCount(); ++v) {
      for (const NodeId u : g.neighbors(v)) {
        if (v <= u) {
          appendNum(buf, v);
          buf.push_back(' ');
          appendNum(buf, u);
          buf.push_back('\n');
          flushIfFull(os, buf);
        }
      }
    }
    os.write(buf.data(), static_cast<std::streamsize>(buf.size()));
    DISP_REQUIRE(os.good(), "write failed: " + basePath + ".e");
  }
}

void saveGraph(const std::string& path, const Graph& g) {
  std::ofstream os(path);
  DISP_REQUIRE(os.good(), "cannot open file for writing: " + path);
  writeGraph(os, g);
}

namespace {

std::ifstream openOrFail(const std::string& path) {
  std::ifstream is(path);
  DISP_REQUIRE(is.good(), "cannot open file for reading: " + path);
  return is;
}

}  // namespace

Graph loadGraph(const std::string& path) {
  std::ifstream is = openOrFail(path);
  return readGraph(is, path);
}

Graph loadEdgeList(const std::string& path) {
  std::ifstream is = openOrFail(path);
  return readEdgeList(is, path);
}

Graph loadGraphalytics(const std::string& path) {
  std::string base = path;
  if (base.size() >= 2 &&
      (base.ends_with(".v") || base.ends_with(".e"))) {
    base.resize(base.size() - 2);
  }
  std::ifstream vs = openOrFail(base + ".v");
  std::ifstream es = openOrFail(base + ".e");
  return readGraphalytics(vs, es, base + ".v", base + ".e");
}

Graph loadAnyGraph(const std::string& path) {
  if (path.ends_with(".v") || path.ends_with(".e")) return loadGraphalytics(path);
  {
    std::ifstream sniff = openOrFail(path);
    std::string first;
    sniff >> first;
    if (first == "dpg") return loadGraph(path);
  }
  return loadEdgeList(path);
}

}  // namespace disp
