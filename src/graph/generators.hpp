#pragma once
// Graph family generators.  Every generator returns a connected simple
// graph; all randomness is seed-driven.  These families are the workloads
// for the Table-1 scaling experiments:
//
//   * path / cycle          — the Ω(k) lower-bound instances (§1)
//   * star / wheel          — maximum-degree stress (Δ = n-1); separates
//                             O(k) probing from O(Δ)-style probing
//   * complete / bipartite  — dense instances where the KS baseline pays
//                             its O(min{m, kΔ}) price
//   * trees (binary/random/caterpillar) — DFS-tree-shaped instances,
//                             exercising the empty-node selection cases
//   * grid / hypercube      — classic bounded-degree topologies
//   * Erdős–Rényi / random-regular — "arbitrary graph" instances
//   * lollipop / barbell    — mixed dense+sparse, worst-case-ish traversal

#include <cstdint>

#include "graph/graph.hpp"

namespace disp {

[[nodiscard]] GraphBuilder makePath(std::uint32_t n);
[[nodiscard]] GraphBuilder makeCycle(std::uint32_t n);
[[nodiscard]] GraphBuilder makeStar(std::uint32_t n);
[[nodiscard]] GraphBuilder makeWheel(std::uint32_t n);
[[nodiscard]] GraphBuilder makeComplete(std::uint32_t n);
[[nodiscard]] GraphBuilder makeCompleteBipartite(std::uint32_t a, std::uint32_t b);
[[nodiscard]] GraphBuilder makeBinaryTree(std::uint32_t n);
[[nodiscard]] GraphBuilder makeRandomTree(std::uint32_t n, std::uint64_t seed);
/// Caterpillar: a spine path of `spine` nodes, each with `legs` pendant leaves.
[[nodiscard]] GraphBuilder makeCaterpillar(std::uint32_t spine, std::uint32_t legs);
[[nodiscard]] GraphBuilder makeGrid(std::uint32_t rows, std::uint32_t cols);
[[nodiscard]] GraphBuilder makeHypercube(std::uint32_t dims);
/// Erdős–Rényi G(n, p) conditioned on connectivity: sampled, then augmented
/// with a uniform spanning-tree edge per disconnected component pair.
[[nodiscard]] GraphBuilder makeErdosRenyiConnected(std::uint32_t n, double p,
                                                   std::uint64_t seed);
/// Random d-regular graph via the pairing model with resampling (requires
/// n*d even, d < n).
[[nodiscard]] GraphBuilder makeRandomRegular(std::uint32_t n, std::uint32_t d,
                                             std::uint64_t seed);
/// Barabási–Albert preferential attachment: a (d+1)-clique seed, then every
/// new node attaches to `d` distinct existing nodes sampled proportionally
/// to degree (endpoint-list sampling).  Power-law degree tail, connected by
/// construction, O(m) time and memory — the web-scale skewed workload.
[[nodiscard]] GraphBuilder makeBarabasiAlbert(std::uint32_t n, std::uint32_t d,
                                              std::uint64_t seed);
/// R-MAT recursive-quadrant edge sampler (a=0.57, b=c=0.19, d=0.05 — the
/// Graph500 mix), targeting ~n*edgeFactor distinct edges; duplicates are
/// dropped, then components are joined like the ER generator.  O(m).
[[nodiscard]] GraphBuilder makeRmat(std::uint32_t n, std::uint32_t edgeFactor,
                                    std::uint64_t seed);
/// O(m)-expected G(n, p) sampler using geometric skips over the ordered
/// pair sequence — web-scale alternative to makeErdosRenyiConnected's
/// O(n^2) Bernoulli sweep.  Same connectivity augmentation; a *different*
/// random stream, so it is opt-in (GraphSpec `er:fast=1`), never a silent
/// replacement of the baseline-pinned `er` draws.
[[nodiscard]] GraphBuilder makeErdosRenyiFast(std::uint32_t n, double p,
                                              std::uint64_t seed);
/// Lollipop: K_c clique glued to a path of n-c nodes.
[[nodiscard]] GraphBuilder makeLollipop(std::uint32_t n, std::uint32_t cliqueSize);
/// Barbell: two K_c cliques joined by a path.
[[nodiscard]] GraphBuilder makeBarbell(std::uint32_t cliqueSize, std::uint32_t pathLen);
/// Random circulant expander: shift 1 (a Hamiltonian cycle — connected by
/// construction) plus d/2 - 1 further seeded distinct shifts; exactly
/// d-regular and simple.  Requires d even, d >= 4, n >= 2d.  The
/// low-diameter / high-conductance counterpoint to the path and grid
/// workloads.
[[nodiscard]] GraphBuilder makeExpander(std::uint32_t n, std::uint32_t d,
                                        std::uint64_t seed);

// The string-keyed family registry (family name -> one of the generators
// above, with the historical size-derivation rules) lives in graph/spec.hpp:
// GraphSpec::parse / makeGraph / registerGraphFamily.

/// True iff the graph is connected (BFS).
[[nodiscard]] bool isConnected(const Graph& g);

}  // namespace disp
