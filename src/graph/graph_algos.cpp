#include "graph/graph_algos.hpp"

#include <algorithm>
#include <queue>
#include <stack>

#include "util/check.hpp"

namespace disp {

std::vector<std::uint32_t> bfsDistances(const Graph& g, NodeId src) {
  DISP_REQUIRE(src < g.nodeCount(), "source out of range");
  std::vector<std::uint32_t> dist(g.nodeCount(), kUnreachable);
  std::queue<NodeId> q;
  dist[src] = 0;
  q.push(src);
  while (!q.empty()) {
    const NodeId v = q.front();
    q.pop();
    for (const NodeId u : g.neighbors(v)) {
      if (dist[u] == kUnreachable) {
        dist[u] = dist[v] + 1;
        q.push(u);
      }
    }
  }
  return dist;
}

std::uint32_t diameter(const Graph& g) {
  std::uint32_t best = 0;
  for (NodeId v = 0; v < g.nodeCount(); ++v) {
    const auto dist = bfsDistances(g, v);
    for (const std::uint32_t d : dist) {
      DISP_REQUIRE(d != kUnreachable, "diameter of disconnected graph");
      best = std::max(best, d);
    }
  }
  return best;
}

NodeId peripheralNode(const Graph& g) {
  DISP_REQUIRE(g.nodeCount() > 0, "empty graph");
  NodeId best = 0;
  std::uint32_t bestEcc = 0;
  for (NodeId v = 0; v < g.nodeCount(); ++v) {
    const auto dist = bfsDistances(g, v);
    std::uint32_t ecc = 0;
    for (const std::uint32_t d : dist) {
      if (d != kUnreachable) ecc = std::max(ecc, d);
    }
    if (ecc > bestEcc) {
      bestEcc = ecc;
      best = v;
    }
  }
  return best;
}

std::vector<NodeId> portOrderDfsTree(const Graph& g, NodeId src) {
  DISP_REQUIRE(src < g.nodeCount(), "source out of range");
  std::vector<NodeId> parent(g.nodeCount(), kInvalidNode);
  parent[src] = src;
  std::stack<std::pair<NodeId, Port>> stack;  // (node, next port to try)
  stack.push({src, 1});
  while (!stack.empty()) {
    auto& [v, p] = stack.top();
    if (p > g.degree(v)) {
      stack.pop();
      continue;
    }
    const NodeId u = g.neighbor(v, p);
    ++p;
    if (parent[u] == kInvalidNode) {
      parent[u] = v;
      stack.push({u, 1});
    }
  }
  return parent;
}

}  // namespace disp
