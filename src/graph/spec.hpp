#pragma once
// Parsed, printable graph workload specs — the input grammar of the
// Scenario API (DESIGN.md §8).
//
// A GraphSpec names either a registered generator family with optional
// key=value shape parameters, or a graph file on disk:
//
//   er                          legacy alias: n from context, p = 2 ln n / n
//   er:n=2048,p=0.01            explicit size and density
//   grid:rows=64,cols=64        explicit dimensions (n = rows*cols)
//   lollipop:n=1024,clique=64
//   file:data/roads.e           loaded from disk (graph_io.hpp formats)
//
// Specs round-trip: parse(toString(s)) == s, with parameters printed in
// sorted key order, so the canonical string is a stable identity — the
// batch runner keys its graph-sharing cache on instanceKey(), which is the
// canonical string plus whatever context (default size, seed) the spec
// actually consumes.  Every legacy family name parses as an alias whose
// instantiation is byte-identical to the historical makeFamily() rules.
//
// Families live in a string-keyed registry mirroring the algorithm registry
// (algo/registry.hpp): registerGraphFamily() is the extension point, and
// `file:` is a built-in special form (ports come from the file, so neither
// the context size, the seed nor the labeling apply).

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "graph/graph.hpp"

namespace disp {

class GraphSpec;

/// One registered generator family.  `make` receives the parsed spec (for
/// shape parameters), the effective node count n (the spec's own n= if
/// given, else the caller's context size) and the seed.
struct GraphFamilyDef {
  std::string key;      ///< canonical family name (parse head)
  std::string summary;  ///< one-line description for help/errors
  /// Recognized shape parameters besides the universal `n` (unknown keys
  /// are a parse error).
  std::vector<std::string> params;
  /// Subset of `params` that jointly pin the node count without `n`
  /// (e.g. grid rows+cols).  All-or-none: giving some but not all is a
  /// parse error.
  std::vector<std::string> sizeParams;
  GraphBuilder (*make)(const GraphSpec&, std::uint32_t n, std::uint64_t seed);
};

/// A parsed graph workload spec (see file header for the grammar).
class GraphSpec {
 public:
  /// Parses `family[:k=v,...]` or `file:PATH`.  Throws std::invalid_argument
  /// on an unknown family, an unrecognized or malformed parameter, or a
  /// partially-given size-parameter group.
  [[nodiscard]] static GraphSpec parse(const std::string& text);

  /// Canonical form: family name, parameters in sorted key order with
  /// integer values normalized.  parse(toString()) round-trips.
  [[nodiscard]] std::string toString() const;

  [[nodiscard]] const std::string& family() const { return family_; }
  [[nodiscard]] bool isFile() const { return family_ == "file"; }
  [[nodiscard]] const std::string& filePath() const { return filePath_; }

  /// True when the spec itself fixes the node count (an explicit n= or a
  /// complete size-parameter group, or a file) — the context size is then
  /// ignored.
  [[nodiscard]] bool sizeBound() const;

  /// Cache identity of a concrete instance: the canonical string plus the
  /// context size (when the spec doesn't pin one) and the seed (files are
  /// seed-free — their ports are stored on disk).  Two equal instance keys
  /// always materialize byte-identical graphs.
  [[nodiscard]] std::string instanceKey(std::uint32_t contextN,
                                        std::uint64_t seed) const;

  /// Materializes the graph.  `contextN` is the default node count for
  /// specs that don't pin their size (the experiment layer passes
  /// k * nOverK); `seed` drives generator randomness and the port labeling.
  /// `file:` specs load from disk with their stored/deterministic ports and
  /// ignore all three arguments.
  [[nodiscard]] Graph instantiate(std::uint32_t contextN, std::uint64_t seed,
                                  PortLabeling labeling) const;

  // Typed parameter access (used by family `make` callbacks).
  [[nodiscard]] bool has(const std::string& name) const;
  [[nodiscard]] std::uint32_t u32(const std::string& name,
                                  std::uint32_t fallback) const;
  [[nodiscard]] double real(const std::string& name, double fallback) const;

 private:
  std::string family_;
  std::string filePath_;                      // family_ == "file" only
  std::map<std::string, std::string> params_;  // sorted → canonical print
};

/// Parses and materializes in one call — the everyday entry point:
///   Graph g = makeGraph("er", 256, seed);
///   Graph h = makeGraph("grid:rows=8,cols=8", 0, seed);
[[nodiscard]] Graph makeGraph(
    const std::string& spec, std::uint32_t n, std::uint64_t seed,
    PortLabeling labeling = PortLabeling::RandomPermutation);

/// All registered generator families, registration order (built-ins first).
/// Deque storage: registerGraphFamily never invalidates references.
[[nodiscard]] const std::deque<GraphFamilyDef>& graphFamilyRegistry();

/// Lookup by family key; nullptr when unknown (`file` is not a registered
/// family — it is a parse special form).
[[nodiscard]] const GraphFamilyDef* findGraphFamily(std::string_view key);

/// Lookup that throws std::invalid_argument listing the known families.
[[nodiscard]] const GraphFamilyDef& graphFamilyDef(std::string_view key);

/// Canonical family keys in registration order (CLI help, tests).
[[nodiscard]] std::vector<std::string> graphFamilyKeys();

/// Registers an additional generator family.  Throws std::invalid_argument
/// on a duplicate or reserved key or a null factory.
void registerGraphFamily(GraphFamilyDef def);

}  // namespace disp
