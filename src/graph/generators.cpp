#include "graph/generators.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <map>
#include <queue>
#include <set>
#include <stdexcept>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace disp {

GraphBuilder makePath(std::uint32_t n) {
  DISP_REQUIRE(n >= 1, "path needs >= 1 node");
  GraphBuilder b(n);
  for (std::uint32_t i = 0; i + 1 < n; ++i) b.addEdge(i, i + 1);
  return b;
}

GraphBuilder makeCycle(std::uint32_t n) {
  DISP_REQUIRE(n >= 3, "cycle needs >= 3 nodes");
  GraphBuilder b(n);
  for (std::uint32_t i = 0; i < n; ++i) b.addEdge(i, (i + 1) % n);
  return b;
}

GraphBuilder makeStar(std::uint32_t n) {
  DISP_REQUIRE(n >= 2, "star needs >= 2 nodes");
  GraphBuilder b(n);
  for (std::uint32_t i = 1; i < n; ++i) b.addEdge(0, i);
  return b;
}

GraphBuilder makeWheel(std::uint32_t n) {
  DISP_REQUIRE(n >= 4, "wheel needs >= 4 nodes");
  GraphBuilder b(n);
  for (std::uint32_t i = 1; i < n; ++i) b.addEdge(0, i);
  for (std::uint32_t i = 1; i < n; ++i) {
    const std::uint32_t next = (i == n - 1) ? 1 : i + 1;
    b.addEdge(i, next);
  }
  return b;
}

GraphBuilder makeComplete(std::uint32_t n) {
  DISP_REQUIRE(n >= 2, "complete graph needs >= 2 nodes");
  GraphBuilder b(n);
  for (std::uint32_t i = 0; i < n; ++i)
    for (std::uint32_t j = i + 1; j < n; ++j) b.addEdge(i, j);
  return b;
}

GraphBuilder makeCompleteBipartite(std::uint32_t a, std::uint32_t bSize) {
  DISP_REQUIRE(a >= 1 && bSize >= 1, "bipartite sides must be non-empty");
  GraphBuilder b(a + bSize);
  for (std::uint32_t i = 0; i < a; ++i)
    for (std::uint32_t j = 0; j < bSize; ++j) b.addEdge(i, a + j);
  return b;
}

GraphBuilder makeBinaryTree(std::uint32_t n) {
  DISP_REQUIRE(n >= 1, "tree needs >= 1 node");
  GraphBuilder b(n);
  for (std::uint32_t i = 1; i < n; ++i) b.addEdge(i, (i - 1) / 2);
  return b;
}

GraphBuilder makeRandomTree(std::uint32_t n, std::uint64_t seed) {
  DISP_REQUIRE(n >= 1, "tree needs >= 1 node");
  GraphBuilder b(n);
  if (n == 1) return b;
  // Random attachment: node i attaches to a uniform earlier node.  (This is
  // a random recursive tree; depth ~ log n, mixed branching factors — good
  // coverage of the empty-node-selection cases.)
  Rng rng(seed ^ 0x7ee5eedULL);
  for (std::uint32_t i = 1; i < n; ++i) {
    b.addEdge(i, static_cast<NodeId>(rng.below(i)));
  }
  return b;
}

GraphBuilder makeCaterpillar(std::uint32_t spine, std::uint32_t legs) {
  DISP_REQUIRE(spine >= 1, "caterpillar needs a spine");
  const std::uint32_t n = spine + spine * legs;
  GraphBuilder b(n);
  for (std::uint32_t i = 0; i + 1 < spine; ++i) b.addEdge(i, i + 1);
  std::uint32_t next = spine;
  for (std::uint32_t i = 0; i < spine; ++i)
    for (std::uint32_t l = 0; l < legs; ++l) b.addEdge(i, next++);
  return b;
}

GraphBuilder makeGrid(std::uint32_t rows, std::uint32_t cols) {
  DISP_REQUIRE(rows >= 1 && cols >= 1, "grid needs positive dimensions");
  GraphBuilder b(rows * cols);
  const auto id = [cols](std::uint32_t r, std::uint32_t c) { return r * cols + c; };
  for (std::uint32_t r = 0; r < rows; ++r) {
    for (std::uint32_t c = 0; c < cols; ++c) {
      if (c + 1 < cols) b.addEdge(id(r, c), id(r, c + 1));
      if (r + 1 < rows) b.addEdge(id(r, c), id(r + 1, c));
    }
  }
  return b;
}

GraphBuilder makeHypercube(std::uint32_t dims) {
  DISP_REQUIRE(dims >= 1 && dims <= 20, "hypercube dims in [1,20]");
  const std::uint32_t n = 1U << dims;
  GraphBuilder b(n);
  for (std::uint32_t v = 0; v < n; ++v) {
    for (std::uint32_t d = 0; d < dims; ++d) {
      const std::uint32_t u = v ^ (1U << d);
      if (v < u) b.addEdge(v, u);
    }
  }
  return b;
}

GraphBuilder makeErdosRenyiConnected(std::uint32_t n, double p, std::uint64_t seed) {
  DISP_REQUIRE(n >= 2, "ER graph needs >= 2 nodes");
  DISP_REQUIRE(p >= 0.0 && p <= 1.0, "probability out of range");
  Rng rng(seed ^ 0xe7d05ULL);
  GraphBuilder b(n);
  std::set<std::pair<NodeId, NodeId>> present;
  for (std::uint32_t i = 0; i < n; ++i) {
    for (std::uint32_t j = i + 1; j < n; ++j) {
      if (rng.chance(p)) {
        b.addEdge(i, j);
        present.insert({i, j});
      }
    }
  }
  // Connectivity augmentation: union-find over sampled edges, then join
  // components with random cross edges.
  std::vector<NodeId> parent(n);
  for (std::uint32_t i = 0; i < n; ++i) parent[i] = i;
  const std::function<NodeId(NodeId)> find = [&](NodeId x) -> NodeId {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  for (const auto& [u, v] : present) parent[find(u)] = find(v);

  std::map<NodeId, std::vector<NodeId>> comps;
  for (std::uint32_t i = 0; i < n; ++i) comps[find(i)].push_back(i);
  while (comps.size() > 1) {
    auto it = comps.begin();
    auto& first = it->second;
    ++it;
    auto& second = it->second;
    NodeId u = first[rng.below(first.size())];
    NodeId v = second[rng.below(second.size())];
    if (u > v) std::swap(u, v);
    if (!present.count({u, v})) {
      b.addEdge(u, v);
      present.insert({u, v});
    }
    // Merge the two components.
    first.insert(first.end(), second.begin(), second.end());
    comps.erase(it);
  }
  return b;
}

namespace {

/// Joins the builder's connected components with random cross edges, one
/// per merge, components ordered by smallest member (deterministic given
/// the rng state).  Cross-component edges can never duplicate an existing
/// edge, so no membership set is needed.
void connectComponents(GraphBuilder& b, std::uint32_t n, Rng& rng) {
  std::vector<NodeId> parent(n);
  for (std::uint32_t i = 0; i < n; ++i) parent[i] = i;
  const std::function<NodeId(NodeId)> find = [&](NodeId x) -> NodeId {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  for (const Edge& e : b.edges()) parent[find(e.u)] = find(e.v);

  std::vector<std::vector<NodeId>> comps;
  std::vector<std::uint32_t> compIx(n, kInvalidNode);
  for (std::uint32_t i = 0; i < n; ++i) {
    const NodeId r = find(i);
    if (compIx[r] == kInvalidNode) {
      compIx[r] = static_cast<std::uint32_t>(comps.size());
      comps.emplace_back();
    }
    comps[compIx[r]].push_back(i);
  }
  while (comps.size() > 1) {
    std::vector<NodeId>& first = comps[0];
    std::vector<NodeId>& second = comps[1];
    const NodeId u = first[rng.below(first.size())];
    const NodeId v = second[rng.below(second.size())];
    b.addEdge(u, v);
    first.insert(first.end(), second.begin(), second.end());
    comps.erase(comps.begin() + 1);
  }
}

}  // namespace

GraphBuilder makeBarabasiAlbert(std::uint32_t n, std::uint32_t d,
                                std::uint64_t seed) {
  DISP_REQUIRE(d >= 1 && n >= d + 2, "BA needs d >= 1 and n >= d+2");
  Rng rng(seed ^ 0xba0baba5ULL);
  GraphBuilder b(n);
  // Every half-edge endpoint, appended as edges land: sampling a uniform
  // entry is exactly degree-proportional preferential attachment.
  std::vector<NodeId> endpoints;
  endpoints.reserve(2 * static_cast<std::size_t>(d) * n);
  const std::uint32_t seedSize = d + 1;
  for (std::uint32_t i = 0; i < seedSize; ++i) {
    for (std::uint32_t j = i + 1; j < seedSize; ++j) {
      b.addEdge(i, j);
      endpoints.push_back(i);
      endpoints.push_back(j);
    }
  }
  std::vector<NodeId> targets(d);
  for (std::uint32_t v = seedSize; v < n; ++v) {
    std::uint32_t chosen = 0;
    while (chosen < d) {
      const NodeId t = endpoints[rng.below(endpoints.size())];
      bool fresh = true;
      for (std::uint32_t i = 0; i < chosen; ++i) {
        if (targets[i] == t) {
          fresh = false;
          break;
        }
      }
      if (fresh) targets[chosen++] = t;
    }
    for (std::uint32_t i = 0; i < d; ++i) {
      b.addEdge(v, targets[i]);
      endpoints.push_back(v);
      endpoints.push_back(targets[i]);
    }
  }
  return b;  // connected by construction (attachment never leaves the core)
}

GraphBuilder makeRmat(std::uint32_t n, std::uint32_t edgeFactor,
                      std::uint64_t seed) {
  DISP_REQUIRE(n >= 2 && edgeFactor >= 1, "R-MAT needs n >= 2, edgeFactor >= 1");
  Rng rng(seed ^ 0x4a7a7ULL);
  std::uint32_t scale = 0;
  while ((1ULL << scale) < n) ++scale;
  constexpr double kA = 0.57, kB = 0.19, kC = 0.19;  // d = 0.05 (Graph500)
  const std::uint64_t want = static_cast<std::uint64_t>(n) * edgeFactor;
  std::vector<std::pair<NodeId, NodeId>> edges;
  edges.reserve(want);
  // Oversampling cap: duplicates and out-of-range/self draws are inherent
  // to R-MAT; give up gracefully once the quadrant walk has had 16x tries.
  const std::uint64_t maxAttempts = want * 16 + 1024;
  for (std::uint64_t attempt = 0;
       attempt < maxAttempts && edges.size() < want; ++attempt) {
    std::uint64_t u = 0;
    std::uint64_t v = 0;
    for (std::uint32_t bit = 0; bit < scale; ++bit) {
      const double r = rng.real01();
      u <<= 1;
      v <<= 1;
      if (r < kA) {
        // top-left quadrant: no bits set
      } else if (r < kA + kB) {
        v |= 1;
      } else if (r < kA + kB + kC) {
        u |= 1;
      } else {
        u |= 1;
        v |= 1;
      }
    }
    if (u >= n || v >= n || u == v) continue;
    auto x = static_cast<NodeId>(u);
    auto y = static_cast<NodeId>(v);
    if (x > y) std::swap(x, y);
    edges.emplace_back(x, y);
  }
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
  GraphBuilder b(n);
  for (const auto& [x, y] : edges) b.addEdge(x, y);
  connectComponents(b, n, rng);
  return b;
}

GraphBuilder makeErdosRenyiFast(std::uint32_t n, double p, std::uint64_t seed) {
  DISP_REQUIRE(n >= 2, "ER graph needs >= 2 nodes");
  DISP_REQUIRE(p >= 0.0 && p <= 1.0, "probability out of range");
  Rng rng(seed ^ 0xfa57e7d05ULL);
  GraphBuilder b(n);
  if (p > 0.0) {
    // Geometric skips over the row-major upper-triangle pair sequence:
    // expected O(p * n^2) = O(m) draws instead of n^2 Bernoulli trials.
    const double logq = std::log1p(-p);  // -inf at p == 1 -> skip always 0
    const std::uint64_t total = static_cast<std::uint64_t>(n) * (n - 1) / 2;
    std::uint64_t row = 0;
    std::uint64_t rowStart = 0;
    std::uint64_t rowEnd = n - 1;  // pair indices [rowStart, rowEnd) are row 0
    std::uint64_t idx = 0;
    bool firstDraw = true;
    for (;;) {
      const double skip =
          p >= 1.0 ? 0.0 : std::floor(std::log1p(-rng.real01()) / logq);
      if (skip >= static_cast<double>(total)) break;  // cast would overflow
      idx += static_cast<std::uint64_t>(skip) + (firstDraw ? 0 : 1);
      firstDraw = false;
      if (idx >= total) break;
      while (idx >= rowEnd) {  // advance rows monotonically: O(n) overall
        ++row;
        rowStart = rowEnd;
        rowEnd += n - 1 - row;
      }
      const std::uint64_t col = row + 1 + (idx - rowStart);
      b.addEdge(static_cast<NodeId>(row), static_cast<NodeId>(col));
    }
  }
  connectComponents(b, n, rng);
  return b;
}

GraphBuilder makeRandomRegular(std::uint32_t n, std::uint32_t d, std::uint64_t seed) {
  DISP_REQUIRE(d >= 2 && d < n, "degree must be in [2, n)");
  DISP_REQUIRE(n * d % 2 == 0, "n*d must be even");
  Rng rng(seed ^ 0x4e91a4ULL);
  // Pairing model with full resampling on self-loop / multi-edge / disconnect.
  for (int attempt = 0; attempt < 1000; ++attempt) {
    std::vector<NodeId> stubs;
    stubs.reserve(static_cast<std::size_t>(n) * d);
    for (std::uint32_t v = 0; v < n; ++v)
      for (std::uint32_t i = 0; i < d; ++i) stubs.push_back(v);
    rng.shuffle(stubs);
    std::set<std::pair<NodeId, NodeId>> seen;
    bool ok = true;
    for (std::size_t i = 0; i < stubs.size(); i += 2) {
      NodeId u = stubs[i], v = stubs[i + 1];
      if (u == v) {
        ok = false;
        break;
      }
      if (u > v) std::swap(u, v);
      if (!seen.insert({u, v}).second) {
        ok = false;
        break;
      }
    }
    if (!ok) continue;
    GraphBuilder b(n);
    for (const auto& [u, v] : seen) b.addEdge(u, v);
    // Regular graphs from the pairing model are connected w.h.p. for d>=3;
    // verify and resample otherwise (d=2 can give disjoint cycles).
    if (isConnected(b.build())) return b;
  }
  throw std::runtime_error("random regular sampling did not converge");
}

GraphBuilder makeLollipop(std::uint32_t n, std::uint32_t cliqueSize) {
  DISP_REQUIRE(cliqueSize >= 2 && cliqueSize <= n, "bad lollipop parameters");
  GraphBuilder b(n);
  for (std::uint32_t i = 0; i < cliqueSize; ++i)
    for (std::uint32_t j = i + 1; j < cliqueSize; ++j) b.addEdge(i, j);
  for (std::uint32_t i = cliqueSize; i < n; ++i) b.addEdge(i - 1, i);
  return b;
}

GraphBuilder makeBarbell(std::uint32_t cliqueSize, std::uint32_t pathLen) {
  DISP_REQUIRE(cliqueSize >= 2, "barbell cliques need >= 2 nodes");
  const std::uint32_t n = 2 * cliqueSize + pathLen;
  GraphBuilder b(n);
  const std::uint32_t c2 = cliqueSize + pathLen;  // start of second clique
  for (std::uint32_t i = 0; i < cliqueSize; ++i)
    for (std::uint32_t j = i + 1; j < cliqueSize; ++j) {
      b.addEdge(i, j);
      b.addEdge(c2 + i, c2 + j);
    }
  // Path connecting clique 1 (node cliqueSize-1) to clique 2 (node c2).
  std::uint32_t prev = cliqueSize - 1;
  for (std::uint32_t i = 0; i < pathLen; ++i) {
    b.addEdge(prev, cliqueSize + i);
    prev = cliqueSize + i;
  }
  b.addEdge(prev, c2);
  return b;
}

GraphBuilder makeExpander(std::uint32_t n, std::uint32_t d, std::uint64_t seed) {
  DISP_REQUIRE(d >= 4 && d % 2 == 0, "expander degree must be even and >= 4");
  DISP_REQUIRE(n >= 2 * d, "expander needs n >= 2d");
  // Random circulant: every shift s <= (n-1)/2 links v to v±s, so distinct
  // shifts make the graph simple and exactly d-regular; shift 1 is always
  // included (a Hamiltonian cycle — connected by construction) and the
  // remaining d/2 - 1 shifts are a seeded sample of [2, (n-1)/2].
  std::vector<std::uint32_t> pool;
  for (std::uint32_t s = 2; s <= (n - 1) / 2; ++s) pool.push_back(s);
  Rng rng(seed ^ 0xe8bad5e7ULL);
  rng.shuffle(pool);
  std::vector<std::uint32_t> shifts{1};
  shifts.insert(shifts.end(), pool.begin(), pool.begin() + (d / 2 - 1));
  GraphBuilder b(n);
  for (std::uint32_t v = 0; v < n; ++v) {
    // {v, v+s} appears exactly once over the v loop: its other spelling
    // would need the shift n-s > (n-1)/2, which is never in the set.
    for (const std::uint32_t s : shifts) b.addEdge(v, (v + s) % n);
  }
  return b;
}

bool isConnected(const Graph& g) {
  const std::uint32_t n = g.nodeCount();
  if (n == 0) return true;
  std::vector<std::uint8_t> seen(n, 0);
  std::queue<NodeId> q;
  q.push(0);
  seen[0] = 1;
  std::uint32_t visited = 1;
  while (!q.empty()) {
    const NodeId v = q.front();
    q.pop();
    for (const NodeId u : g.neighbors(v)) {
      if (!seen[u]) {
        seen[u] = 1;
        ++visited;
        q.push(u);
      }
    }
  }
  return visited == n;
}

}  // namespace disp
