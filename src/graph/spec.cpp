#include "graph/spec.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <stdexcept>

#include "graph/generators.hpp"
#include "graph/graph_io.hpp"
#include "util/check.hpp"

namespace disp {

namespace {

[[noreturn]] void parseFail(const std::string& text, const std::string& why) {
  throw std::invalid_argument("bad graph spec '" + text + "': " + why);
}

/// Full-token numeric check (sign-free); parse-time validation so a typo'd
/// value fails when the spec is read, not deep inside a sweep.
bool isNumber(const std::string& v) {
  if (v.empty()) return false;
  char* end = nullptr;
  const double d = std::strtod(v.c_str(), &end);
  return end == v.c_str() + v.size() && std::isfinite(d) && v[0] != '-' &&
         v[0] != '+';
}

/// Canonical value form: integers lose leading zeros ("064" -> "64") so the
/// canonical string is a usable cache identity; non-integers stay as
/// written.
std::string normalizeValue(const std::string& v) {
  if (v.find_first_not_of("0123456789") != std::string::npos) return v;
  return std::to_string(std::strtoull(v.c_str(), nullptr, 10));
}

// ------------------------------------------------- built-in family factory
// Each `make` reproduces the historical makeFamily() derivation rules
// byte-for-byte when no shape parameter is given, so legacy family strings
// stay exact aliases (the bench baseline depends on it).

GraphBuilder makeFamPath(const GraphSpec&, std::uint32_t n, std::uint64_t) {
  return makePath(n);
}
GraphBuilder makeFamCycle(const GraphSpec&, std::uint32_t n, std::uint64_t) {
  return makeCycle(n);
}
GraphBuilder makeFamStar(const GraphSpec&, std::uint32_t n, std::uint64_t) {
  return makeStar(n);
}
GraphBuilder makeFamWheel(const GraphSpec&, std::uint32_t n, std::uint64_t) {
  return makeWheel(n);
}
GraphBuilder makeFamComplete(const GraphSpec&, std::uint32_t n, std::uint64_t) {
  return makeComplete(n);
}
GraphBuilder makeFamBipartite(const GraphSpec& s, std::uint32_t n, std::uint64_t) {
  const std::uint32_t a = s.u32("a", n / 2);
  const std::uint32_t b = s.u32("b", n - n / 2);
  return makeCompleteBipartite(a, b);
}
GraphBuilder makeFamBintree(const GraphSpec&, std::uint32_t n, std::uint64_t) {
  return makeBinaryTree(n);
}
GraphBuilder makeFamRandtree(const GraphSpec&, std::uint32_t n, std::uint64_t seed) {
  return makeRandomTree(n, seed);
}
GraphBuilder makeFamCaterpillar(const GraphSpec& s, std::uint32_t n, std::uint64_t) {
  const std::uint32_t spine = s.u32("spine", std::max(1U, n / 4));
  const std::uint32_t legs = s.u32("legs", (n - spine) / std::max(1U, spine));
  return makeCaterpillar(spine, legs);
}
GraphBuilder makeFamGrid(const GraphSpec& s, std::uint32_t n, std::uint64_t) {
  const auto side = static_cast<std::uint32_t>(std::lround(std::sqrt(double(n))));
  const std::uint32_t rows = s.u32("rows", std::max(1U, side));
  const std::uint32_t cols = s.u32("cols", std::max(1U, side));
  return makeGrid(rows, cols);
}
GraphBuilder makeFamHypercube(const GraphSpec& s, std::uint32_t n, std::uint64_t) {
  std::uint32_t dims = 1;
  while ((1U << (dims + 1)) <= n) ++dims;
  return makeHypercube(s.u32("dims", dims));
}
GraphBuilder makeFamEr(const GraphSpec& s, std::uint32_t n, std::uint64_t seed) {
  // Expected degree ~ 2 ln n: safely above the connectivity threshold.
  const double p = s.real(
      "p", std::min(1.0, 2.0 * std::log(std::max(2.0, double(n))) / double(n)));
  // fast=1 opts into the O(m) geometric-skip sampler for web-scale n.  It
  // draws a different random stream, so the bare `er` baseline cells are
  // untouched by construction.
  if (s.u32("fast", 0) != 0) return makeErdosRenyiFast(n, p, seed);
  return makeErdosRenyiConnected(n, p, seed);
}
GraphBuilder makeFamBa(const GraphSpec& s, std::uint32_t n, std::uint64_t seed) {
  return makeBarabasiAlbert(n, s.u32("d", 4), seed);
}
GraphBuilder makeFamRmat(const GraphSpec& s, std::uint32_t n, std::uint64_t seed) {
  return makeRmat(n, s.u32("ef", 8), seed);
}
GraphBuilder makeFamRegular(const GraphSpec& s, std::uint32_t n, std::uint64_t seed) {
  const std::uint32_t d = s.u32("d", (n * 4 % 2 == 0) ? 4 : 3);
  return makeRandomRegular(std::max(6U, n), d, seed);
}
GraphBuilder makeFamLollipop(const GraphSpec& s, std::uint32_t n, std::uint64_t) {
  return makeLollipop(n, s.u32("clique", std::max(2U, n / 2)));
}
GraphBuilder makeFamBarbell(const GraphSpec& s, std::uint32_t n, std::uint64_t) {
  const std::uint32_t c = s.u32("clique", std::max(2U, n / 3));
  return makeBarbell(c, s.u32("path", n - 2 * c));
}
GraphBuilder makeFamExpander(const GraphSpec& s, std::uint32_t n, std::uint64_t seed) {
  const std::uint32_t d = s.u32("d", 8);
  // The generator wants n >= 2d; small context sizes are padded up like
  // `regular` pads to its feasibility floor.
  return makeExpander(std::max(n, 2 * d), d, seed);
}

std::deque<GraphFamilyDef>& mutableRegistry() {
  static std::deque<GraphFamilyDef> registry{
      {"path", "path graph (the Ω(k) lower-bound instance)", {}, {}, &makeFamPath},
      {"cycle", "cycle graph", {}, {}, &makeFamCycle},
      {"star", "star K_{1,n-1} (max-degree stress)", {}, {}, &makeFamStar},
      {"wheel", "wheel graph", {}, {}, &makeFamWheel},
      {"complete", "complete graph K_n", {}, {}, &makeFamComplete},
      {"bipartite", "complete bipartite K_{a,b}", {"a", "b"}, {"a", "b"},
       &makeFamBipartite},
      {"bintree", "complete binary tree", {}, {}, &makeFamBintree},
      {"randtree", "random recursive tree (seeded)", {}, {}, &makeFamRandtree},
      {"caterpillar", "spine path with pendant legs", {"spine", "legs"},
       {"spine", "legs"}, &makeFamCaterpillar},
      {"grid", "2D grid", {"rows", "cols"}, {"rows", "cols"}, &makeFamGrid},
      {"hypercube", "hypercube Q_dims", {"dims"}, {"dims"}, &makeFamHypercube},
      {"er",
       "Erdős–Rényi G(n,p) conditioned on connectivity (seeded; fast=1 "
       "selects the O(m) web-scale sampler)",
       {"p", "fast"},
       {},
       &makeFamEr},
      {"ba", "Barabási–Albert preferential attachment (power-law, seeded)",
       {"d"},
       {},
       &makeFamBa},
      {"rmat", "R-MAT recursive-quadrant sampler (Graph500 mix, seeded)",
       {"ef"},
       {},
       &makeFamRmat},
      {"regular", "random d-regular graph (seeded)", {"d"}, {}, &makeFamRegular},
      {"lollipop", "clique glued to a path", {"clique"}, {}, &makeFamLollipop},
      {"barbell", "two cliques joined by a path", {"clique", "path"}, {},
       &makeFamBarbell},
      {"expander", "random circulant expander (d-regular, seeded)", {"d"}, {},
       &makeFamExpander},
  };
  return registry;
}

}  // namespace

const std::deque<GraphFamilyDef>& graphFamilyRegistry() { return mutableRegistry(); }

const GraphFamilyDef* findGraphFamily(std::string_view key) {
  for (const GraphFamilyDef& def : graphFamilyRegistry()) {
    if (key == def.key) return &def;
  }
  return nullptr;
}

const GraphFamilyDef& graphFamilyDef(std::string_view key) {
  if (const GraphFamilyDef* def = findGraphFamily(key)) return *def;
  std::string known = "file";
  for (const GraphFamilyDef& def : graphFamilyRegistry()) known += ", " + def.key;
  throw std::invalid_argument("unknown graph family: " + std::string(key) +
                              " (known: " + known + ")");
}

std::vector<std::string> graphFamilyKeys() {
  std::vector<std::string> keys;
  keys.reserve(graphFamilyRegistry().size());
  for (const GraphFamilyDef& def : graphFamilyRegistry()) keys.push_back(def.key);
  return keys;
}

void registerGraphFamily(GraphFamilyDef def) {
  DISP_REQUIRE(!def.key.empty() && def.key != "file",
               "graph family key empty or reserved");
  DISP_REQUIRE(def.make != nullptr, "graph family '" + def.key + "' has no factory");
  DISP_REQUIRE(findGraphFamily(def.key) == nullptr,
               "graph family '" + def.key + "' already registered");
  for (const std::string& sp : def.sizeParams) {
    DISP_REQUIRE(std::find(def.params.begin(), def.params.end(), sp) !=
                     def.params.end(),
                 "size param '" + sp + "' of family '" + def.key +
                     "' missing from params");
  }
  mutableRegistry().push_back(std::move(def));
}

GraphSpec GraphSpec::parse(const std::string& text) {
  if (text.empty()) parseFail(text, "empty spec");
  GraphSpec spec;
  const auto colon = text.find(':');
  spec.family_ = text.substr(0, colon);

  if (spec.family_ == "file") {
    if (colon == std::string::npos || colon + 1 == text.size()) {
      parseFail(text, "file spec needs a path (file:PATH)");
    }
    spec.filePath_ = text.substr(colon + 1);
    return spec;
  }

  const GraphFamilyDef& def = graphFamilyDef(spec.family_);
  if (colon == std::string::npos) return spec;  // bare legacy alias

  std::string args = text.substr(colon + 1);
  std::string::size_type from = 0;
  while (from <= args.size()) {
    const auto comma = args.find(',', from);
    const auto to = comma == std::string::npos ? args.size() : comma;
    const std::string tok = args.substr(from, to - from);
    if (!tok.empty()) {
      const auto eq = tok.find('=');
      if (eq == std::string::npos || eq == 0 || eq + 1 == tok.size()) {
        parseFail(text, "parameter '" + tok + "' is not key=value");
      }
      const std::string key = tok.substr(0, eq);
      const std::string value = tok.substr(eq + 1);
      if (key != "n" && std::find(def.params.begin(), def.params.end(), key) ==
                            def.params.end()) {
        std::string known = "n";
        for (const std::string& p : def.params) known += ", " + p;
        parseFail(text, "family '" + def.key + "' has no parameter '" + key +
                            "' (known: " + known + ")");
      }
      if (!isNumber(value)) parseFail(text, "parameter '" + key + "' value '" +
                                                value + "' is not a number");
      if (!spec.params_.emplace(key, normalizeValue(value)).second) {
        parseFail(text, "duplicate parameter '" + key + "'");
      }
    }
    if (comma == std::string::npos) break;
    from = comma + 1;
  }

  // Size-parameter groups are all-or-none: a half-specified grid would
  // silently fall back to the sqrt(n) rule for the missing dimension.
  if (!def.sizeParams.empty()) {
    std::size_t given = 0;
    for (const std::string& sp : def.sizeParams) given += spec.has(sp);
    if (given != 0 && given != def.sizeParams.size()) {
      std::string group;
      for (const std::string& sp : def.sizeParams) {
        if (!group.empty()) group += ",";
        group += sp;
      }
      parseFail(text, "size parameters {" + group + "} must be given together");
    }
  }
  return spec;
}

std::string GraphSpec::toString() const {
  if (isFile()) return "file:" + filePath_;
  std::string out = family_;
  bool first = true;
  for (const auto& [key, value] : params_) {
    out += first ? ':' : ',';
    first = false;
    out += key + '=' + value;
  }
  return out;
}

bool GraphSpec::sizeBound() const {
  if (isFile() || has("n")) return true;
  const GraphFamilyDef* def = findGraphFamily(family_);
  if (def == nullptr || def->sizeParams.empty()) return false;
  for (const std::string& sp : def->sizeParams) {
    if (!has(sp)) return false;
  }
  return true;
}

std::string GraphSpec::instanceKey(std::uint32_t contextN, std::uint64_t seed) const {
  if (isFile()) return toString();
  std::string key = toString();
  if (!sizeBound()) key += "|n=" + std::to_string(contextN);
  key += "|seed=" + std::to_string(seed);
  return key;
}

Graph GraphSpec::instantiate(std::uint32_t contextN, std::uint64_t seed,
                             PortLabeling labeling) const {
  if (isFile()) return loadAnyGraph(filePath_);
  const GraphFamilyDef& def = graphFamilyDef(family_);
  const std::uint32_t n = u32("n", contextN);
  return def.make(*this, n, seed).build(labeling, seed);
}

bool GraphSpec::has(const std::string& name) const {
  return params_.count(name) > 0;
}

std::uint32_t GraphSpec::u32(const std::string& name, std::uint32_t fallback) const {
  const auto it = params_.find(name);
  if (it == params_.end()) return fallback;
  // Digits only: parse-time isNumber() also admits strtod forms ("1e3",
  // "0.5") that strtoull would silently truncate to the wrong size.
  const bool digits =
      it->second.find_first_not_of("0123456789") == std::string::npos;
  const unsigned long long v =
      digits ? std::strtoull(it->second.c_str(), nullptr, 10) : 0;
  DISP_REQUIRE(digits && v <= 0xffffffffULL,
               "spec parameter '" + name + "' = '" + it->second +
                   "' is not a 32-bit unsigned integer");
  return static_cast<std::uint32_t>(v);
}

double GraphSpec::real(const std::string& name, double fallback) const {
  const auto it = params_.find(name);
  if (it == params_.end()) return fallback;
  return std::strtod(it->second.c_str(), nullptr);
}

Graph makeGraph(const std::string& spec, std::uint32_t n, std::uint64_t seed,
                PortLabeling labeling) {
  return GraphSpec::parse(spec).instantiate(n, seed, labeling);
}

}  // namespace disp
