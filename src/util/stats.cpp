#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/check.hpp"

namespace disp {

Summary summarize(std::span<const double> sample) {
  Summary s;
  s.count = sample.size();
  if (sample.empty()) return s;

  std::vector<double> sorted(sample.begin(), sample.end());
  std::sort(sorted.begin(), sorted.end());
  s.min = sorted.front();
  s.max = sorted.back();
  const std::size_t mid = sorted.size() / 2;
  s.median = (sorted.size() % 2 == 1) ? sorted[mid] : 0.5 * (sorted[mid - 1] + sorted[mid]);

  double sum = 0.0;
  for (double v : sorted) sum += v;
  s.mean = sum / static_cast<double>(sorted.size());

  double ss = 0.0;
  for (double v : sorted) ss += (v - s.mean) * (v - s.mean);
  s.stddev = sorted.size() > 1 ? std::sqrt(ss / static_cast<double>(sorted.size() - 1)) : 0.0;
  return s;
}

LinearFit fitLinear(std::span<const double> x, std::span<const double> y) {
  DISP_REQUIRE(x.size() == y.size(), "x/y size mismatch");
  DISP_REQUIRE(x.size() >= 2, "need at least two points");
  const auto n = static_cast<double>(x.size());
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sx += x[i];
    sy += y[i];
    sxx += x[i] * x[i];
    sxy += x[i] * y[i];
  }
  const double denom = n * sxx - sx * sx;
  LinearFit f;
  if (denom == 0.0) return f;  // degenerate: vertical line
  f.slope = (n * sxy - sx * sy) / denom;
  f.intercept = (sy - f.slope * sx) / n;

  const double meanY = sy / n;
  double ssRes = 0, ssTot = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double pred = f.intercept + f.slope * x[i];
    ssRes += (y[i] - pred) * (y[i] - pred);
    ssTot += (y[i] - meanY) * (y[i] - meanY);
  }
  f.r2 = ssTot > 0 ? 1.0 - ssRes / ssTot : 1.0;
  return f;
}

PowerFit fitPower(std::span<const double> x, std::span<const double> y) {
  DISP_REQUIRE(x.size() == y.size(), "x/y size mismatch");
  std::vector<double> lx, ly;
  lx.reserve(x.size());
  ly.reserve(y.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    if (x[i] > 0 && y[i] > 0) {
      lx.push_back(std::log(x[i]));
      ly.push_back(std::log(y[i]));
    }
  }
  PowerFit p;
  if (lx.size() < 2) return p;
  const LinearFit f = fitLinear(lx, ly);
  p.coeff = std::exp(f.intercept);
  p.exponent = f.slope;
  p.r2 = f.r2;
  return p;
}

GrowthDiagnosis diagnoseGrowth(std::span<const double> k, std::span<const double> y) {
  DISP_REQUIRE(k.size() == y.size() && !k.empty(), "bad growth sample");
  GrowthDiagnosis d;
  d.power = fitPower(k, y);
  const auto klogk = [](double kk) { return kk * std::log2(std::max(2.0, kk)); };
  d.ratioLinearSmall = y.front() / k.front();
  d.ratioLinearLarge = y.back() / k.back();
  d.ratioKLogKSmall = y.front() / klogk(k.front());
  d.ratioKLogKLarge = y.back() / klogk(k.back());
  return d;
}

std::string fmt(double v, int precision) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(precision);
  os << v;
  return os.str();
}

}  // namespace disp
