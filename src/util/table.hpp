#pragma once
// Markdown / CSV table emitter for the benchmark harness.  Every bench
// binary prints its results as a GitHub-flavoured markdown table (the same
// "rows" the paper's Table 1 / figures report) plus optional CSV for
// downstream plotting.

#include <iosfwd>
#include <string>
#include <vector>

namespace disp {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Starts a new row; subsequent cell() calls fill it left to right.
  Table& row();
  Table& cell(const std::string& value);
  Table& cell(double value, int precision = 2);
  Table& cell(std::uint64_t value);
  Table& cell(std::int64_t value);
  Table& cell(int value);

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }
  [[nodiscard]] const std::vector<std::string>& header() const { return header_; }
  /// Rendered cell strings, row-major (what markdown()/csv() emit).  Sinks
  /// use this to mirror rows into machine-readable formats.
  [[nodiscard]] const std::vector<std::vector<std::string>>& data() const {
    return rows_;
  }
  [[nodiscard]] std::string markdown() const;
  [[nodiscard]] std::string csv() const;

  /// Prints the markdown rendering preceded by `# title`.
  void print(std::ostream& os, const std::string& title) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace disp
