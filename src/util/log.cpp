#include "util/log.hpp"

#include <atomic>
#include <iostream>

namespace disp {

namespace {
std::atomic<int> gLevel{static_cast<int>(LogLevel::Warn)};

const char* levelName(LogLevel level) {
  switch (level) {
    case LogLevel::Trace: return "TRACE";
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO";
    case LogLevel::Warn: return "WARN";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF";
  }
  return "?";
}
}  // namespace

void setLogLevel(LogLevel level) noexcept { gLevel.store(static_cast<int>(level)); }
LogLevel logLevel() noexcept { return static_cast<LogLevel>(gLevel.load()); }

namespace detail {
void emit(LogLevel level, const std::string& message) {
  std::cerr << "[disp:" << levelName(level) << "] " << message << '\n';
}
}  // namespace detail

}  // namespace disp
