#include "util/mem.hpp"

#include <cstdio>
#include <cstring>

#if defined(__linux__) || defined(__APPLE__)
#include <sys/resource.h>
#endif
#if defined(__GLIBC__)
#include <malloc.h>
#endif

namespace disp {
namespace {

// Reads a "VmXXX:  12345 kB" line from /proc/self/status; returns kB or -1.
#if defined(__linux__)
long readProcStatusKb(const char* key) {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return -1;
  char line[256];
  const std::size_t keyLen = std::strlen(key);
  long kb = -1;
  while (std::fgets(line, sizeof line, f) != nullptr) {
    if (std::strncmp(line, key, keyLen) == 0 && line[keyLen] == ':') {
      if (std::sscanf(line + keyLen + 1, "%ld", &kb) != 1) kb = -1;
      break;
    }
  }
  std::fclose(f);
  return kb;
}
#endif

double rusageMaxRssMb() {
#if defined(__linux__) || defined(__APPLE__)
  struct rusage ru {};
  if (getrusage(RUSAGE_SELF, &ru) != 0) return 0.0;
#if defined(__APPLE__)
  return static_cast<double>(ru.ru_maxrss) / (1024.0 * 1024.0);  // bytes
#else
  return static_cast<double>(ru.ru_maxrss) / 1024.0;  // kilobytes
#endif
#else
  return 0.0;
#endif
}

}  // namespace

double currentRssMb() {
#if defined(__linux__)
  const long kb = readProcStatusKb("VmRSS");
  if (kb >= 0) return static_cast<double>(kb) / 1024.0;
#endif
  return 0.0;
}

double peakRssMb() {
#if defined(__linux__)
  const long kb = readProcStatusKb("VmHWM");
  if (kb >= 0) return static_cast<double>(kb) / 1024.0;
#endif
  return rusageMaxRssMb();
}

bool resetPeakRss() {
#if defined(__GLIBC__)
  // Freed-but-retained allocator pages stay resident, so without a trim the
  // cleared watermark floors at the *previous* phase's footprint and every
  // later peak reads as that slack (one sweep's big graph contaminates the
  // next graph's numbers in the same process).  Return them to the OS first:
  // the reset watermark then starts from live bytes.
  (void)malloc_trim(0);
#endif
#if defined(__linux__)
  std::FILE* f = std::fopen("/proc/self/clear_refs", "w");
  if (f == nullptr) return false;
  const bool ok = std::fputs("5", f) >= 0;
  return (std::fclose(f) == 0) && ok;
#else
  return false;
#endif
}

}  // namespace disp
