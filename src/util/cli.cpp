#include "util/cli.hpp"

#include <stdexcept>

namespace disp {

Cli::Cli(int argc, const char* const* argv) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) == 0) {
      const auto eq = arg.find('=');
      if (eq == std::string::npos) {
        flags_[arg.substr(2)] = "1";
      } else {
        flags_[arg.substr(2, eq - 2)] = arg.substr(eq + 1);
      }
    } else {
      positional_.push_back(std::move(arg));
    }
  }
}

bool Cli::has(const std::string& key) const { return flags_.count(key) > 0; }

std::string Cli::str(const std::string& key, const std::string& fallback) const {
  const auto it = flags_.find(key);
  return it == flags_.end() ? fallback : it->second;
}

std::int64_t Cli::integer(const std::string& key, std::int64_t fallback) const {
  const auto it = flags_.find(key);
  if (it == flags_.end()) return fallback;
  return std::stoll(it->second);
}

double Cli::real(const std::string& key, double fallback) const {
  const auto it = flags_.find(key);
  if (it == flags_.end()) return fallback;
  return std::stod(it->second);
}

}  // namespace disp
