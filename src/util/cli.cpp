#include "util/cli.hpp"

#include <stdexcept>

namespace disp {

Cli::Cli(int argc, const char* const* argv) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) == 0) {
      const auto eq = arg.find('=');
      const std::string key =
          eq == std::string::npos ? arg.substr(2) : arg.substr(2, eq - 2);
      // Bare `--` and `--=value` would mint an empty flag key that no
      // lookup can ever reach; reject instead of storing it silently.
      if (key.empty()) {
        throw std::invalid_argument("malformed flag '" + arg +
                                    "': expected --name or --name=value");
      }
      flags_[key] = eq == std::string::npos ? "1" : arg.substr(eq + 1);
    } else {
      positional_.push_back(std::move(arg));
    }
  }
}

bool Cli::has(const std::string& key) const { return flags_.count(key) > 0; }

std::string Cli::str(const std::string& key, const std::string& fallback) const {
  const auto it = flags_.find(key);
  return it == flags_.end() ? fallback : it->second;
}

namespace {

[[noreturn]] void badNumber(const std::string& key, const std::string& token,
                            const char* kind) {
  throw std::invalid_argument("--" + key + ": not " + kind + ": '" + token + "'");
}

bool isDigit(char c) { return c >= '0' && c <= '9'; }

}  // namespace

std::int64_t Cli::integer(const std::string& key, std::int64_t fallback) const {
  const auto it = flags_.find(key);
  if (it == flags_.end()) return fallback;
  const std::string& token = it->second;
  // Full-token match only: raw std::stoll skips leading whitespace,
  // accepts a '+' sign and ignores trailing garbage ("4x" -> 4) —
  // inconsistent with parseU64 below.
  const std::size_t lead = token.rfind('-', 0) == 0 ? 1 : 0;
  if (token.size() == lead || !isDigit(token[lead])) {
    badNumber(key, token, "an integer");
  }
  std::size_t used = 0;
  std::int64_t v = 0;
  try {
    v = std::stoll(token, &used);
  } catch (const std::exception&) {
    badNumber(key, token, "an integer");
  }
  if (used != token.size()) badNumber(key, token, "an integer");
  return v;
}

double Cli::real(const std::string& key, double fallback) const {
  const auto it = flags_.find(key);
  if (it == flags_.end()) return fallback;
  const std::string& token = it->second;
  // Full-token match only; the first-character gate also rejects the
  // "nan"/"inf" spellings std::stod would accept.
  const std::size_t lead = token.rfind('-', 0) == 0 ? 1 : 0;
  if (token.size() == lead || !(isDigit(token[lead]) || token[lead] == '.')) {
    badNumber(key, token, "a number");
  }
  std::size_t used = 0;
  double v = 0.0;
  try {
    v = std::stod(token, &used);
  } catch (const std::exception&) {
    badNumber(key, token, "a number");
  }
  if (used != token.size()) badNumber(key, token, "a number");
  return v;
}

namespace {

std::vector<std::string> splitOn(const std::string& value, char sep) {
  std::vector<std::string> out;
  std::string::size_type from = 0;
  while (from <= value.size()) {
    const auto at = value.find(sep, from);
    const auto to = at == std::string::npos ? value.size() : at;
    if (to > from) out.push_back(value.substr(from, to - from));
    if (at == std::string::npos) break;
    from = at + 1;
  }
  return out;
}

}  // namespace

std::vector<std::string> Cli::list(const std::string& key) const {
  const auto it = flags_.find(key);
  return it == flags_.end() ? std::vector<std::string>{} : splitOn(it->second, ',');
}

std::vector<std::string> Cli::specList(const std::string& key) const {
  const auto it = flags_.find(key);
  return it == flags_.end() ? std::vector<std::string>{} : splitOn(it->second, ';');
}

std::vector<std::uint64_t> Cli::u64list(const std::string& key) const {
  std::vector<std::uint64_t> out;
  for (const std::string& tok : list(key)) {
    out.push_back(parseU64(tok, "--" + key));
  }
  return out;
}

std::uint64_t parseU64(const std::string& token, const std::string& what) {
  // Reject sign/whitespace prefixes up front: std::stoull would accept a
  // leading '-' and wrap modulo 2^64.
  if (token.empty() || token[0] < '0' || token[0] > '9') {
    throw std::invalid_argument(what + ": not a number: " + token);
  }
  std::size_t used = 0;
  unsigned long long v = 0;
  try {
    v = std::stoull(token, &used);
  } catch (const std::exception&) {
    throw std::invalid_argument(what + ": not a number: " + token);
  }
  if (used != token.size()) {
    throw std::invalid_argument(what + ": not a number: " + token);
  }
  return v;
}

}  // namespace disp
