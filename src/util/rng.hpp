#pragma once
// Deterministic, seedable pseudo-random generation.
//
// All randomness in the library flows through Rng so that every experiment
// is reproducible from a single 64-bit seed.  The generator is
// xoshiro256** seeded via splitmix64 (the reference seeding procedure).

#include <cstdint>
#include <numeric>
#include <vector>

#include "util/check.hpp"

namespace disp {

/// splitmix64 step; used for seeding and cheap hash-mixing.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** PRNG.  Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x5eed5eed5eedULL) noexcept { reseed(seed); }

  void reseed(std::uint64_t seed) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ULL; }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound).  bound must be positive.
  [[nodiscard]] std::uint64_t below(std::uint64_t bound) {
    DISP_REQUIRE(bound > 0, "bound must be positive");
    // Lemire-style rejection to avoid modulo bias.
    const std::uint64_t threshold = (~bound + 1) % bound;  // (2^64 - bound) mod bound
    for (;;) {
      const std::uint64_t r = (*this)();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform integer in [lo, hi] inclusive.
  [[nodiscard]] std::int64_t intIn(std::int64_t lo, std::int64_t hi) {
    DISP_REQUIRE(lo <= hi, "empty range");
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(span == 0 ? (*this)() : below(span));
  }

  /// Uniform double in [0, 1).
  [[nodiscard]] double real01() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// true with probability p.
  [[nodiscard]] bool chance(double p) { return real01() < p; }

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(below(i));
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

  /// Random permutation of [0, n).
  [[nodiscard]] std::vector<std::uint32_t> permutation(std::uint32_t n) {
    std::vector<std::uint32_t> p(n);
    std::iota(p.begin(), p.end(), 0U);
    shuffle(p);
    return p;
  }

  /// Derive an independent child generator (for per-component streams).
  [[nodiscard]] Rng fork() noexcept { return Rng((*this)()); }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int s) noexcept {
    return (x << s) | (x >> (64 - s));
  }
  std::uint64_t state_[4]{};
};

}  // namespace disp
