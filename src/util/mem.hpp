#pragma once
// Process-memory probe: resident-set telemetry for the scale campaign.
//
// Linux exposes the current resident set (VmRSS) and its high-water mark
// (VmHWM) in /proc/self/status; VmHWM can be reset by writing "5" to
// /proc/self/clear_refs, which is what lets a sweep attribute a peak to one
// cell instead of to everything that ran before it.  Where /proc is not
// available we fall back to getrusage(RU_MAXRSS), which cannot be reset.
//
// All values are reported in MiB as doubles; 0.0 means "unavailable".

namespace disp {

/// Current resident set size in MiB (VmRSS), or 0.0 if unavailable.
[[nodiscard]] double currentRssMb();

/// Peak resident set size in MiB (VmHWM, falling back to getrusage
/// ru_maxrss), or 0.0 if unavailable.
[[nodiscard]] double peakRssMb();

/// Resets the kernel's peak-RSS watermark to the current RSS so a
/// subsequent peakRssMb() attributes the high water to work done after this
/// call.  Returns false when the platform cannot reset (the watermark then
/// stays monotone over the whole process lifetime).
bool resetPeakRss();

}  // namespace disp
