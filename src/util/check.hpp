#pragma once
// Runtime contract checking.
//
// DISP_REQUIRE  — precondition on public API input; always on; throws
//                 std::invalid_argument so callers can test misuse.
// DISP_CHECK    — internal invariant; always on; throws std::logic_error.
//                 These guard protocol invariants (e.g. "every empty tree
//                 node has a coverer") that must hold for the simulation to
//                 be meaningful, so they stay on in release builds.
// DISP_DCHECK   — heavyweight invariant only checked in debug builds.

#include <sstream>
#include <stdexcept>
#include <string>

namespace disp::detail {

[[noreturn]] inline void failRequire(const char* expr, const char* file, int line,
                                     const std::string& msg) {
  std::ostringstream os;
  os << "precondition failed: " << expr << " at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw std::invalid_argument(os.str());
}

[[noreturn]] inline void failCheck(const char* expr, const char* file, int line,
                                   const std::string& msg) {
  std::ostringstream os;
  os << "invariant violated: " << expr << " at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw std::logic_error(os.str());
}

}  // namespace disp::detail

#define DISP_REQUIRE(expr, msg)                                              \
  do {                                                                       \
    if (!(expr)) ::disp::detail::failRequire(#expr, __FILE__, __LINE__, msg); \
  } while (false)

#define DISP_CHECK(expr, msg)                                              \
  do {                                                                     \
    if (!(expr)) ::disp::detail::failCheck(#expr, __FILE__, __LINE__, msg); \
  } while (false)

#ifdef NDEBUG
#define DISP_DCHECK(expr, msg) \
  do {                         \
  } while (false)
#else
#define DISP_DCHECK(expr, msg) DISP_CHECK(expr, msg)
#endif
