#include "util/rng.hpp"

// Header-only; this TU exists so the component owns a translation unit and
// odr-uses the inline definitions once.
namespace disp {
static_assert(Rng::min() == 0);
static_assert(Rng::max() == ~0ULL);
}  // namespace disp
