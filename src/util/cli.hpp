#pragma once
// Minimal command-line flag parsing for benches and examples.
// Accepts `--key=value` and `--flag`; anything else is a positional.
// Malformed flags (`--`, `--=value`) and non-numeric values for the typed
// accessors throw std::invalid_argument naming the offending flag.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace disp {

class Cli {
 public:
  Cli(int argc, const char* const* argv);

  [[nodiscard]] bool has(const std::string& key) const;
  [[nodiscard]] std::string str(const std::string& key, const std::string& fallback) const;
  /// Strict full-token signed integer ("-12" ok; "4x", " 4", "+4" throw).
  [[nodiscard]] std::int64_t integer(const std::string& key, std::int64_t fallback) const;
  /// Strict full-token real ("0.5", ".5", "1e3", "-0.25" ok; "0.5x",
  /// " 1", "+1", "nan", "inf" throw).
  [[nodiscard]] double real(const std::string& key, double fallback) const;
  /// Comma-separated list value; empty vector when the flag is absent.
  [[nodiscard]] std::vector<std::string> list(const std::string& key) const;
  /// Semicolon-separated list value (for workload specs, whose own
  /// parameters use commas: --graphs='er;grid:rows=8,cols=8').
  [[nodiscard]] std::vector<std::string> specList(const std::string& key) const;
  /// Comma-separated unsigned list (e.g. --seeds=1,2,3); empty when absent.
  /// Throws std::invalid_argument on non-numeric elements.
  [[nodiscard]] std::vector<std::uint64_t> u64list(const std::string& key) const;
  [[nodiscard]] const std::vector<std::string>& positional() const { return positional_; }
  [[nodiscard]] const std::string& program() const { return program_; }
  /// All parsed flags in sorted key order (bare flags map to "").  Lets a
  /// wrapper (disp_fleet) forward unrecognized flags verbatim and
  /// deterministically.
  [[nodiscard]] const std::map<std::string, std::string>& flags() const { return flags_; }

 private:
  std::string program_;
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
};

/// Strict unsigned parse of a whole token: digits only (no sign, space or
/// trailing junk).  Throws std::invalid_argument prefixed with `what`.
[[nodiscard]] std::uint64_t parseU64(const std::string& token, const std::string& what);

}  // namespace disp
