#pragma once
// Minimal command-line flag parsing for benches and examples.
// Accepts `--key=value` and `--flag`; anything else is a positional.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace disp {

class Cli {
 public:
  Cli(int argc, const char* const* argv);

  [[nodiscard]] bool has(const std::string& key) const;
  [[nodiscard]] std::string str(const std::string& key, const std::string& fallback) const;
  [[nodiscard]] std::int64_t integer(const std::string& key, std::int64_t fallback) const;
  [[nodiscard]] double real(const std::string& key, double fallback) const;
  [[nodiscard]] const std::vector<std::string>& positional() const { return positional_; }
  [[nodiscard]] const std::string& program() const { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
};

}  // namespace disp
