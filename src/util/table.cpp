#include "util/table.hpp"

#include <algorithm>
#include <cstdint>
#include <ostream>
#include <sstream>

#include "util/check.hpp"
#include "util/stats.hpp"

namespace disp {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  DISP_REQUIRE(!header_.empty(), "table needs at least one column");
}

Table& Table::row() {
  rows_.emplace_back();
  rows_.back().reserve(header_.size());
  return *this;
}

Table& Table::cell(const std::string& value) {
  DISP_REQUIRE(!rows_.empty(), "call row() before cell()");
  DISP_REQUIRE(rows_.back().size() < header_.size(), "row has too many cells");
  rows_.back().push_back(value);
  return *this;
}

Table& Table::cell(double value, int precision) { return cell(fmt(value, precision)); }
Table& Table::cell(std::uint64_t value) { return cell(std::to_string(value)); }
Table& Table::cell(std::int64_t value) { return cell(std::to_string(value)); }
Table& Table::cell(int value) { return cell(std::to_string(value)); }

std::string Table::markdown() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& r : rows_)
    for (std::size_t c = 0; c < r.size(); ++c) width[c] = std::max(width[c], r[c].size());

  std::ostringstream os;
  auto emitRow = [&](const std::vector<std::string>& cells) {
    os << '|';
    for (std::size_t c = 0; c < header_.size(); ++c) {
      const std::string& v = c < cells.size() ? cells[c] : std::string{};
      os << ' ' << v << std::string(width[c] - v.size(), ' ') << " |";
    }
    os << '\n';
  };
  emitRow(header_);
  os << '|';
  for (std::size_t c = 0; c < header_.size(); ++c) os << std::string(width[c] + 2, '-') << '|';
  os << '\n';
  for (const auto& r : rows_) emitRow(r);
  return os.str();
}

std::string Table::csv() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c) os << ',';
      os << cells[c];
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& r : rows_) emit(r);
  return os.str();
}

void Table::print(std::ostream& os, const std::string& title) const {
  os << "\n## " << title << "\n\n" << markdown() << '\n';
}

}  // namespace disp
