#pragma once
// Leveled stderr logging.  Default level is Warn so simulations stay quiet;
// tests and debugging sessions can raise it.

#include <sstream>
#include <string>

namespace disp {

enum class LogLevel : int { Trace = 0, Debug = 1, Info = 2, Warn = 3, Error = 4, Off = 5 };

/// Global threshold; messages below it are discarded.
void setLogLevel(LogLevel level) noexcept;
[[nodiscard]] LogLevel logLevel() noexcept;

namespace detail {
void emit(LogLevel level, const std::string& message);
}

#define DISP_LOG(level, expr)                                            \
  do {                                                                   \
    if (static_cast<int>(level) >= static_cast<int>(::disp::logLevel())) { \
      std::ostringstream _disp_os;                                       \
      _disp_os << expr;                                                  \
      ::disp::detail::emit(level, _disp_os.str());                       \
    }                                                                    \
  } while (false)

#define DISP_INFO(expr) DISP_LOG(::disp::LogLevel::Info, expr)
#define DISP_WARN(expr) DISP_LOG(::disp::LogLevel::Warn, expr)
#define DISP_DEBUG(expr) DISP_LOG(::disp::LogLevel::Debug, expr)

}  // namespace disp
