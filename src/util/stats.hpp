#pragma once
// Small statistics toolkit used by the experiment harness: summary
// statistics and least-squares fits against the growth models the paper's
// Table 1 predicts (linear k, k·log k, and min{m, kΔ}).

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace disp {

/// Five-number-ish summary of a sample.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double median = 0.0;
  double max = 0.0;
};

[[nodiscard]] Summary summarize(std::span<const double> sample);

/// Ordinary least squares fit y ≈ a + b·x. r2 is the coefficient of
/// determination (1 = perfect fit).
struct LinearFit {
  double intercept = 0.0;
  double slope = 0.0;
  double r2 = 0.0;
};

[[nodiscard]] LinearFit fitLinear(std::span<const double> x, std::span<const double> y);

/// Fit y ≈ c · x^p by regressing log y on log x; returns (c, p, r2).
struct PowerFit {
  double coeff = 0.0;
  double exponent = 0.0;
  double r2 = 0.0;
};

[[nodiscard]] PowerFit fitPower(std::span<const double> x, std::span<const double> y);

/// Growth-model diagnosis used by EXPERIMENTS.md: given (k, y) pairs,
/// report the fitted exponent of y ~ k^p, and the ratios y/k and
/// y/(k·log2 k) at the largest k (flat ratios indicate the matching model).
struct GrowthDiagnosis {
  PowerFit power;
  double ratioLinearSmall = 0.0;  ///< y/k at smallest k
  double ratioLinearLarge = 0.0;  ///< y/k at largest k
  double ratioKLogKSmall = 0.0;   ///< y/(k log2 k) at smallest k
  double ratioKLogKLarge = 0.0;   ///< y/(k log2 k) at largest k
};

[[nodiscard]] GrowthDiagnosis diagnoseGrowth(std::span<const double> k,
                                             std::span<const double> y);

/// Convenience: format a double with fixed precision (no locale surprises).
[[nodiscard]] std::string fmt(double v, int precision = 2);

}  // namespace disp
