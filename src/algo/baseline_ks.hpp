#pragma once
// Baseline: Kshemkalyani–Sharma-style group DFS (the OPODIS'21 / classic
// Kshemkalyani–Ali approach the paper improves on; Table 1 rows
// "O(min{m, kΔ})").
//
// All unsettled agents travel together as one group led by the largest-ID
// agent.  At each node the group probes ports sequentially by physically
// moving across the edge and back when the neighbor turns out settled —
// each probed edge costs Θ(1) rounds/epochs, giving O(min{m, kΔ}) total.
// A settler stores {parentPort, checked} so a revisited node resumes where
// it left off; memory is O(log(k+Δ)) bits per agent.
//
// Both engines are supported; the protocol logic is identical, only the
// synchronization fabric differs (lock-step staging vs. leader-ordered
// per-activation moves with reassembly waits).

#include <cstdint>
#include <memory>
#include <vector>

#include "core/async_engine.hpp"
#include "core/metrics.hpp"
#include "core/sync_engine.hpp"
#include "graph/graph.hpp"

namespace disp {

/// Runs the SYNC KS baseline to completion on agents placed per `engine`'s
/// initial world (rooted configuration: all agents on one node).
/// Returns once dispersion is achieved.
class KsSyncDispersion {
 public:
  explicit KsSyncDispersion(SyncEngine& engine);

  /// Installs the protocol fiber; call engine.run() afterwards.
  void start();

  [[nodiscard]] bool dispersed() const;

  /// Per-agent persistent bits currently held (for the memory ledger).
  [[nodiscard]] std::uint64_t agentBits(AgentIx a) const;

 private:
  struct AgentState {
    bool settled = false;
    Port parentPort = kNoPort;  // settler: port toward DFS-tree parent
    Port checked = 0;           // settler: ports probed so far
  };

  Task protocol();
  Task moveGroup(Port p);
  void recordMemory();

  SyncEngine& engine_;
  std::vector<AgentState> st_;
  std::vector<AgentIx> group_;  // unsettled agents, ascending ID; leader = back
  BitWidths widths_;
};

/// Runs the ASYNC KS baseline (per-agent fibers; leader coordinates via
/// co-located memory writes).
class KsAsyncDispersion {
 public:
  explicit KsAsyncDispersion(AsyncEngine& engine);

  void start();

  [[nodiscard]] bool dispersed() const;
  [[nodiscard]] std::uint64_t agentBits(AgentIx a) const;

 private:
  struct AgentState {
    bool settled = false;
    Port parentPort = kNoPort;
    Port checked = 0;
    Port orderPort = kNoPort;  // follower: pending leader instruction
  };

  Task leaderFiber(AgentIx self);
  Task followerFiber(AgentIx self);
  Task awaitGroupAssembled(AgentIx self, std::uint32_t expected);
  void orderGroupMove(AgentIx self, Port p, bool usePin);
  void recordMemory();

  AsyncEngine& engine_;
  std::vector<AgentState> st_;
  AgentIx leader_ = kNoAgent;
  std::uint32_t groupSize_ = 0;  // leader's view of remaining unsettled
  BitWidths widths_;
};

}  // namespace disp
