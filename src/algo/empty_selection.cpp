#include "algo/empty_selection.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace disp {

RootedTree RootedTree::fromParentArray(const std::vector<std::int64_t>& parent,
                                       std::uint32_t root) {
  const auto n = static_cast<std::uint32_t>(parent.size());
  DISP_REQUIRE(root < n, "root out of range");
  DISP_REQUIRE(parent[root] < 0 || parent[root] == root, "root must have no parent");

  RootedTree t;
  t.root = root;
  t.parent = parent;
  t.parent[root] = -1;
  t.children.assign(n, {});
  for (std::uint32_t v = 0; v < n; ++v) {
    if (v == root) continue;
    DISP_REQUIRE(t.parent[v] >= 0 && t.parent[v] < n, "dangling parent");
    t.children[static_cast<std::uint32_t>(t.parent[v])].push_back(v);
  }

  // Depths via BFS from the root; also validates acyclicity/connectivity.
  t.depth.assign(n, static_cast<std::uint32_t>(-1));
  t.depth[root] = 0;
  std::vector<std::uint32_t> frontier{root};
  std::uint32_t seen = 1;
  while (!frontier.empty()) {
    std::vector<std::uint32_t> next;
    for (const std::uint32_t v : frontier) {
      for (const std::uint32_t c : t.children[v]) {
        DISP_REQUIRE(t.depth[c] == static_cast<std::uint32_t>(-1), "cycle in tree");
        t.depth[c] = t.depth[v] + 1;
        ++seen;
        next.push_back(c);
      }
    }
    frontier = std::move(next);
  }
  DISP_REQUIRE(seen == n, "parent array is not a single tree");
  return t;
}

std::uint32_t EmptySelection::emptyCount() const {
  std::uint32_t c = 0;
  for (const auto o : occupied) c += (o == 0);
  return c;
}

std::uint32_t EmptySelection::occupiedCount() const {
  return static_cast<std::uint32_t>(occupied.size()) - emptyCount();
}

EmptySelection emptyNodeSelection(const RootedTree& tree) {
  const std::uint32_t n = tree.size();
  EmptySelection sel;
  sel.occupied.assign(n, 0);
  sel.covererOf.assign(n, -1);
  sel.coverType.assign(n, CoverType::None);
  sel.covers.assign(n, {});

  // Line 6: settle an agent on every node at even depth.
  for (std::uint32_t v = 0; v < n; ++v) sel.occupied[v] = (tree.depth[v] % 2 == 0);

  auto assignCover = [&](std::uint32_t coverer, std::uint32_t covered, CoverType type) {
    DISP_CHECK(sel.occupied[coverer], "coverer must be occupied");
    DISP_CHECK(!sel.occupied[covered], "covered node must be empty");
    DISP_CHECK(sel.coverType[coverer] == CoverType::None ||
                   sel.coverType[coverer] == type,
               "a settler covers either children or siblings, never both");
    sel.coverType[coverer] = type;
    sel.covers[coverer].push_back(covered);
    sel.covererOf[covered] = coverer;
  };

  for (std::uint32_t v = 0; v < n; ++v) {
    if (tree.depth[v] % 2 == 0) {
      // v occupied.  Case B: v non-leaf with x children (all odd depth,
      // currently empty): children 4, 7, ... get settlers; v covers 1..3;
      // each placed settler covers the <= 2 following siblings.
      const auto& kids = tree.children[v];
      const auto x = static_cast<std::uint32_t>(kids.size());
      for (std::uint32_t j = 0; j < x; ++j) {
        if (j >= 3 && (j % 3 == 0)) sel.occupied[kids[j]] = 1;  // children 4,7,... (1-based)
      }
      for (std::uint32_t j = 0; j < x; ++j) {
        if (sel.occupied[kids[j]]) continue;
        if (j < 3) {
          assignCover(v, kids[j], CoverType::Children);
        } else {
          const std::uint32_t anchor = kids[(j / 3) * 3];  // preceding settled sibling
          assignCover(anchor, kids[j], CoverType::Siblings);
        }
      }
    } else {
      // v empty (odd depth).  Case A: among v's children that are leaves
      // (even depth, settled by line 6), keep settlers on leaves 1, 4, 7,
      // ... and remove the rest; each kept leaf covers the <= 2 removed
      // leaves after it.
      std::vector<std::uint32_t> leaves;
      for (const std::uint32_t c : tree.children[v]) {
        if (tree.isLeaf(c)) leaves.push_back(c);
      }
      for (std::uint32_t j = 0; j < leaves.size(); ++j) {
        if (j % 3 != 0) sel.occupied[leaves[j]] = 0;  // removed
      }
      for (std::uint32_t j = 0; j < leaves.size(); ++j) {
        if (j % 3 != 0) assignCover(leaves[(j / 3) * 3], leaves[j], CoverType::Siblings);
      }
    }
  }
  return sel;
}

void validateSelection(const RootedTree& tree, const EmptySelection& sel) {
  const std::uint32_t n = tree.size();
  DISP_CHECK(sel.occupied.size() == n, "selection size mismatch");

  // Lemma 1 bound.
  if (n >= 3) {
    DISP_CHECK(sel.emptyCount() >= (n + 2) / 3,
               "Lemma 1 violated: fewer than ceil(k/3) empty nodes");
  }

  for (std::uint32_t v = 0; v < n; ++v) {
    if (sel.occupied[v]) {
      DISP_CHECK(sel.covererOf[v] == -1, "occupied node must not be covered");
      const auto covered = static_cast<std::uint32_t>(sel.covers[v].size());
      switch (sel.coverType[v]) {
        case CoverType::None:
          DISP_CHECK(covered == 0, "None-type settler covering nodes");
          break;
        case CoverType::Children:
          DISP_CHECK(covered >= 1 && covered <= 3, "children cover count out of range");
          for (const std::uint32_t c : sel.covers[v]) {
            DISP_CHECK(tree.parent[c] == static_cast<std::int64_t>(v),
                       "children-cover target is not a child");
          }
          break;
        case CoverType::Siblings:
          DISP_CHECK(covered >= 1 && covered <= 2, "sibling cover count out of range");
          for (const std::uint32_t c : sel.covers[v]) {
            DISP_CHECK(tree.parent[c] == tree.parent[v],
                       "sibling-cover target is not a sibling");
          }
          break;
      }
      DISP_CHECK(oscillationTripRounds(sel.coverType[v], covered) <= 6,
                 "Lemma 2 violated: oscillation trip exceeds 6 rounds");
    } else {
      DISP_CHECK(sel.covererOf[v] >= 0, "empty node without coverer");
      const auto coverer = static_cast<std::uint32_t>(sel.covererOf[v]);
      DISP_CHECK(sel.occupied[coverer], "coverer is empty");
      DISP_CHECK(std::find(sel.covers[coverer].begin(), sel.covers[coverer].end(), v) !=
                     sel.covers[coverer].end(),
                 "cover lists inconsistent");
    }
  }
}

std::uint32_t oscillationTripRounds(CoverType type, std::uint32_t coveredCount) {
  switch (type) {
    case CoverType::None:
      return 0;
    case CoverType::Children:
      return 2 * coveredCount;  // home–c_i–home per child
    case CoverType::Siblings:
      return 2 + 2 * coveredCount;  // home–parent …siblings… parent–home
  }
  return 0;
}

}  // namespace disp
