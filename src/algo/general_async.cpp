#include "algo/general_async.hpp"

#include <algorithm>
#include <set>
#include <string>

#include "algo/protocol_common.hpp"
#include "graph/graph_algos.hpp"
#include "util/check.hpp"

namespace disp {

namespace {
/// Guard bound for "eventually" wait loops; generous so only true deadlocks
/// (protocol bugs) trip it before the engine's own activation cap does.
constexpr std::uint64_t kWaitGuard = 1ULL << 26;
}  // namespace

GeneralAsyncDispersion::GeneralAsyncDispersion(AsyncEngine& engine)
    : engine_(engine),
      st_(engine.agentCount()),
      proberIdx_(engine.agentCount(), engine.graph().nodeCount()),
      posIdx_(0),  // resized below once the group count is known
      widths_(BitWidths::forRun(4ULL * engine.agentCount(), engine.graph().maxDegree(),
                                engine.agentCount())),
      leadQueued_(engine.agentCount(), kNoGroup),
      anchorOf_(engine.agentCount(), kNoGroup) {
  // One group per initially occupied node.
  std::set<NodeId> startNodes;
  for (AgentIx a = 0; a < engine_.agentCount(); ++a) {
    startNodes.insert(engine_.positionOf(a));
  }
  for (const NodeId s : startNodes) {
    GroupCtx ctx;
    ctx.label = static_cast<Label>(groups_.size());
    for (const AgentIx a : engine_.agentsAt(s)) {
      st_[a].label = ctx.label;
      ++ctx.total;
      if (ctx.leader == kNoAgent || engine_.idOf(a) > engine_.idOf(ctx.leader)) {
        ctx.leader = a;
      }
    }
    ctx.unsettled = ctx.total;
    groups_.push_back(ctx);
  }
  for (const GroupCtx& ctx : groups_) leadQueued_[ctx.leader] = ctx.label;
  probeNext_.assign(groups_.size(), kNoPort);
  probeMet_.assign(groups_.size(), {});
  rescanFound_.assign(groups_.size(), 0);

  // Seed the probe indexes (everyone starts unsettled) and keep them in
  // lock-step with the world through the engine's move hook; membership
  // and label transitions are maintained at the protocol sites.
  posIdx_ = GroupPositionIndex(static_cast<std::uint32_t>(groups_.size()));
  for (AgentIx a = 0; a < engine_.agentCount(); ++a) {
    proberIdx_.insert(a, engine_.positionOf(a));
    posIdx_.add(st_[a].label, engine_.positionOf(a));
  }
  engine_.setMoveHook([this](AgentIx a, NodeId from, NodeId to) {
    proberIdx_.relocate(a, to);
    if (!st_[a].settled) posIdx_.move(st_[a].label, from, to);
  });
}

void GeneralAsyncDispersion::start() {
  for (AgentIx a = 0; a < engine_.agentCount(); ++a) {
    engine_.setAgentFiber(a, agentFiber(a));
  }
}

bool GeneralAsyncDispersion::dispersed() const {
  std::vector<NodeId> where;
  for (AgentIx a = 0; a < engine_.agentCount(); ++a) {
    if (!st_[a].settled || st_[a].isGuest) return false;
    if (engine_.positionOf(a) != st_[a].settledAt) return false;
    where.push_back(engine_.positionOf(a));
  }
  return isDispersed(where);
}

std::uint64_t GeneralAsyncDispersion::agentBits(AgentIx a) const {
  // id + 2 labels (label, reportMet) + 7 flags (settled, isGuest,
  // orderGoHome, needRegister, needReport, reportEmpty, reportGuest) +
  // 12 ports (tree record: parent + 3 child-chain; blackboard: checked,
  // nextFound; orders: probe, guestGoTo, chaperone, escort, follow; guest
  // entry) + 6 counters (probe/guest/see-off blackboard).
  std::uint64_t bits = widths_.id + 2ULL * widths_.count + 7 +
                       12ULL * widths_.port + 6ULL * widths_.count;
  for (const auto& g : groups_) {
    if (g.leader == a) bits += 2ULL * widths_.count + widths_.port;
  }
  return bits;
}

void GeneralAsyncDispersion::recordMemory() {
  for (AgentIx a = 0; a < engine_.agentCount(); ++a) {
    engine_.memory().record(a, agentBits(a));
  }
}

// ------------------------------------------------------------- helpers

std::uint32_t GeneralAsyncDispersion::resolveGroup(std::uint32_t g) const {
  while (groups_[g].dissolved) g = groups_[g].absorbedBy;
  return g;
}

AgentIx GeneralAsyncDispersion::homeSettlerAt(NodeId v, Label label) const {
  for (const AgentIx a : engine_.agentsAt(v)) {
    if (st_[a].settled && !st_[a].isGuest && st_[a].settledAt == v &&
        st_[a].label == label) {
      return a;
    }
  }
  return kNoAgent;
}

AgentIx GeneralAsyncDispersion::anySettlerAt(NodeId v) const {
  for (const AgentIx a : engine_.agentsAt(v)) {
    if (st_[a].settled && !st_[a].isGuest && st_[a].settledAt == v) return a;
  }
  return kNoAgent;
}

const std::vector<AgentIx>& GeneralAsyncDispersion::availableProbersAt(
    NodeId w, Label label) const {
  // Own-label unsettled agents and guest helpers, idle (no pending orders),
  // ascending by ID so the leader is drafted as late as its ID allows.
  // The index bucket already holds exactly the followers and guests at w;
  // the label and the fast-changing order flags are filtered here
  // (DESIGN.md §9.4).  Scratch reuse is safe: every caller consumes the
  // list before its next co_await (single-threaded engine), so no
  // interleaved call clobbers it.
  std::vector<AgentIx>& avail = probersScratch_;
  avail.clear();
  for (const AgentIx a : proberIdx_.membersAt(w)) {
    const AgentState& s = st_[a];
    if (s.label != label) continue;
    if (s.orderProbePort != kNoPort || s.needReport || s.needRegister) continue;
    if (s.orderGoHome || s.orderChaperone != kNoPort) continue;
    if (s.orderFollow != kNoPort) continue;
    avail.push_back(a);
  }
  std::sort(avail.begin(), avail.end(),
            [&](AgentIx a, AgentIx b) { return engine_.idOf(a) < engine_.idOf(b); });
#ifndef NDEBUG
  // Cross-check the index against the naive occupant scan it replaced.
  std::vector<AgentIx> naive;
  for (const AgentIx a : engine_.agentsAt(w)) {
    const AgentState& s = st_[a];
    if (s.label != label) continue;
    const bool follower = !s.settled;
    const bool guest = s.settled && s.isGuest;
    if (!follower && !guest) continue;
    if (s.orderProbePort != kNoPort || s.needReport || s.needRegister) continue;
    if (s.orderGoHome || s.orderChaperone != kNoPort) continue;
    if (s.orderFollow != kNoPort) continue;
    naive.push_back(a);
  }
  std::sort(naive.begin(), naive.end(),
            [&](AgentIx a, AgentIx b) { return engine_.idOf(a) < engine_.idOf(b); });
  DISP_CHECK(avail == naive, "IdleProberIndex drifted from the world");
#endif
  return avail;
}

bool GeneralAsyncDispersion::groupConsolidatedAt(Label label, NodeId v) const {
  const bool consolidated = posIdx_.consolidatedAt(label, v);
#ifndef NDEBUG
  // Cross-check the fingerprint against the naive all-agent scan.
  bool any = false, naive = true;
  for (AgentIx a = 0; a < engine_.agentCount(); ++a) {
    if (st_[a].label != label || st_[a].settled) continue;
    if (engine_.positionOf(a) != v) naive = false;
    any = true;
  }
  naive = naive && any;
  DISP_CHECK(consolidated == naive, "GroupPositionIndex drifted from the world");
#endif
  return consolidated;
}

std::uint32_t GeneralAsyncDispersion::globalUnsettled() const {
  std::uint32_t n = 0;
  for (const auto& g : groups_) n += g.unsettled;
  return n;
}

void GeneralAsyncDispersion::settle(std::uint32_t gi, AgentIx a, NodeId at,
                                    Port parentPort) {
  AgentState& s = st_[a];
  DISP_CHECK(!s.settled, "double settle");
  s.settled = true;
  s.settledAt = at;
  s.parentPort = parentPort;
  s.checked = 0;
  s.firstChildPort = s.latestChildPort = s.nextSiblingPort = kNoPort;
  proberIdx_.erase(a);  // settlers stop being prober-eligible
  posIdx_.remove(s.label, at);
  --groups_[gi].unsettled;
  engine_.traceSettle(a, groups_[gi].label);
  recordMemory();
}

void GeneralAsyncDispersion::absorbGroup(std::uint32_t gi, std::uint32_t mi) {
  // Takes a fully consolidated marcher group in: relabel every member,
  // move the counts, and dissolve it.  Shared by the active-leader path
  // (absorbMarchers) and the dormant-anchor path (dormantDuties).
  GroupCtx& ctx = groups_[gi];
  GroupCtx& m = groups_[mi];
  const NodeId here = engine_.positionOf(ctx.leader);
  std::uint32_t joined = 0;
  for (AgentIx a = 0; a < engine_.agentCount(); ++a) {
    if (st_[a].label == m.label && !st_[a].settled) {
      DISP_CHECK(engine_.positionOf(a) == here,
                 "marcher group not consolidated at absorb time");
      st_[a].label = ctx.label;
      posIdx_.remove(m.label, here);
      posIdx_.add(ctx.label, here);
      ++joined;
    }
  }
  ctx.total += joined;
  ctx.unsettled += joined;
  m.total -= joined;
  m.unsettled -= joined;
  DISP_CHECK(m.total == 0 && m.unsettled == 0, "marcher left agents behind");
  m.dissolved = true;
  m.absorbedBy = gi;
  m.marching = false;
  recordMemory();
}

GeneralAsyncDispersion::ProbeSight GeneralAsyncDispersion::observeAndRecruit(
    AgentIx self, Label label) {
  // The communicate step of a probe, shared by participant probers and the
  // leader's own trips: classify the probed node and recruit an own-label
  // home settler as a guest helper, routed back through the prober's pin.
  const NodeId ui = engine_.positionOf(self);
  ProbeSight sight;
  sight.settler = homeSettlerAt(ui, label);
  for (const AgentIx b : engine_.agentsAt(ui)) {
    if (b != self && st_[b].label != label) {
      if (sight.met == kNoLabel || st_[b].label < sight.met) sight.met = st_[b].label;
    }
  }
  sight.empty = (engine_.countAt(ui) == 1);
  if (sight.settler != kNoAgent) {
    st_[sight.settler].orderGuestGoTo = engine_.pinOf(self);
    st_[sight.settler].isGuest = true;
    proberIdx_.insert(sight.settler, ui);  // guests are prober-eligible
  }
  return sight;
}

void GeneralAsyncDispersion::adoptAt(std::uint32_t gi, Label fromLabel, NodeId v) {
  if (fromLabel == groups_[gi].label) return;  // self-collapse: already ours
  for (const AgentIx a : engine_.agentsAt(v)) {
    if (st_[a].label == fromLabel && !st_[a].settled) {
      st_[a].label = groups_[gi].label;
      posIdx_.remove(fromLabel, v);
      posIdx_.add(groups_[gi].label, v);
      ++groups_[gi].total;
      ++groups_[gi].unsettled;
      --groups_[fromLabel].total;
      --groups_[fromLabel].unsettled;
    }
  }
}

// ---------------------------------------------------------- participant

Task GeneralAsyncDispersion::participantStep(AgentIx self) {
  AgentState& me = st_[self];

  // --- prober errand (followers and guests) ---
  if (me.orderProbePort != kNoPort) {
    const Port p = me.orderProbePort;
    me.orderProbePort = kNoPort;
    engine_.move(self, p);  // arrive at the neighbor u_i
    co_await engine_.nextActivation(self);
    const ProbeSight sight = observeAndRecruit(self, me.label);
    me.reportEmpty = sight.empty;
    me.reportGuest = (sight.settler != kNoAgent);
    me.reportMet = sight.met;
    engine_.move(self, engine_.pinOf(self));  // return to w
    me.needReport = true;
    co_return;
  }

  // --- report probe results at w (next activation after returning) ---
  if (me.needReport) {
    me.needReport = false;
    const NodeId w = engine_.positionOf(self);
    const AgentIx aw = homeSettlerAt(w, me.label);
    DISP_CHECK(aw != kNoAgent, "probe report: no settler at w");
    AgentState& bb = st_[aw];
    ++bb.retCount;
    if (me.reportEmpty) {
      // The port of w this prober was assigned is recoverable from its own
      // pin: it returned through the same edge.
      const Port portOfW = engine_.pinOf(self);
      if (bb.nextFound == kNoPort || portOfW < bb.nextFound) bb.nextFound = portOfW;
    }
    if (me.reportGuest) ++bb.guestExpected;
    if (me.reportMet != kNoLabel) {
      probeMet_[me.label].emplace_back(me.reportMet, engine_.pinOf(self));
    }
    me.reportEmpty = me.reportGuest = false;
    me.reportMet = kNoLabel;
    co_return;
  }

  // --- settled agent recruited as guest: travel to w ---
  if (me.orderGuestGoTo != kNoPort) {
    const Port p = me.orderGuestGoTo;
    me.orderGuestGoTo = kNoPort;
    me.needRegister = true;
    engine_.move(self, p);
    co_return;
  }
  if (me.needRegister) {
    me.needRegister = false;
    me.guestEntryPort = engine_.pinOf(self);  // port of w back toward home
    const AgentIx aw = homeSettlerAt(engine_.positionOf(self), me.label);
    DISP_CHECK(aw != kNoAgent, "guest registration: no settler at w");
    ++st_[aw].guestArrived;
    co_return;
  }

  // --- see-off: guest walking home ---
  if (me.orderGoHome) {
    me.orderGoHome = false;
    engine_.move(self, me.guestEntryPort);
    me.guestEntryPort = kNoPort;
    me.isGuest = false;  // home again (position == settledAt)
    proberIdx_.erase(self);
    co_return;
  }

  // --- see-off: guest chaperoning a partner to the partner's home ---
  if (me.orderChaperone != kNoPort) {
    const Port p = me.orderChaperone;
    me.orderChaperone = kNoPort;
    engine_.move(self, p);
    // Wait at the partner's home until the partner (a settled own-label
    // occupant) is present, then return to w and report.
    for (;;) {
      co_await engine_.nextActivation(self);
      const NodeId here = engine_.positionOf(self);
      if (homeSettlerAt(here, me.label) != kNoAgent) {
        engine_.move(self, engine_.pinOf(self));
        break;
      }
    }
    co_await engine_.nextActivation(self);
    const AgentIx aw = homeSettlerAt(engine_.positionOf(self), me.label);
    DISP_CHECK(aw != kNoAgent, "chaperone report: no settler at w");
    ++st_[aw].seeOffReturned;
    co_return;
  }

  // --- settler α(w) escorting the final guest home ---
  if (me.orderEscort != kNoPort) {
    const Port p = me.orderEscort;
    me.orderEscort = kNoPort;
    engine_.move(self, p);
    for (;;) {
      co_await engine_.nextActivation(self);
      const NodeId here = engine_.positionOf(self);
      if (homeSettlerAt(here, me.label) != kNoAgent) {
        engine_.move(self, engine_.pinOf(self));
        break;
      }
    }
    co_return;  // back at w; the leader detects the settler's presence
  }

  // --- plain group move order ---
  if (me.orderFollow != kNoPort) {
    const Port p = me.orderFollow;
    me.orderFollow = kNoPort;
    engine_.move(self, p);
    co_return;
  }
}

// --------------------------------------------------------------- fibers

Task GeneralAsyncDispersion::agentFiber(AgentIx self) {
  for (;;) {
    co_await engine_.nextActivation(self);
    if (leadQueued_[self] != kNoGroup) {
      const std::uint32_t gi = leadQueued_[self];
      leadQueued_[self] = kNoGroup;
      co_await leaderLoop(gi, self);
      continue;  // fall back to participant mode with a fresh activation
    }
    dormantDuties(self);
    co_await participantStep(self);
  }
}

void GeneralAsyncDispersion::dormantDuties(AgentIx self) {
  const std::uint32_t gi = anchorOf_[self];
  if (gi == kNoGroup) return;
  GroupCtx& ctx = groups_[gi];
  if (ctx.dissolved || ctx.leader != self || !st_[self].settled ||
      st_[self].isGuest || st_[self].label != ctx.label) {
    anchorOf_[self] = kNoGroup;  // collapsed away or leadership moved on
    return;
  }
  if (globalUnsettled() == 0) {
    engine_.finish();
    return;
  }
  if (ctx.frozen) return;  // a winner is collapsing this tree: hold still

  // Absorb fully arrived marcher groups aimed at us, then hand leadership
  // to the largest-ID newcomer (the SYNC version's leader re-election).
  const NodeId here = engine_.positionOf(self);
  for (std::uint32_t mi = 0; mi < groups_.size(); ++mi) {
    const GroupCtx& m = groups_[mi];
    if (!m.marching || m.dissolved || resolveGroup(m.marchTarget) != gi) continue;
    if (!groupConsolidatedAt(m.label, here)) continue;
    absorbGroup(gi, mi);
  }
  if (ctx.unsettled > 0) {
    const AgentIx fresh = maxIdAgentAt(engine_, here, [&](AgentIx a) {
      return st_[a].label == ctx.label && !st_[a].settled;
    });
    DISP_CHECK(fresh != kNoAgent, "no co-located candidate for leader handoff");
    ctx.leader = fresh;
    leadQueued_[fresh] = gi;
    anchorOf_[self] = kNoGroup;
    ++stats_.handoffs;
  }
}

// --------------------------------------------------------- leader moves

Task GeneralAsyncDispersion::moveGroup(std::uint32_t gi, Port p) {
  GroupCtx& ctx = groups_[gi];
  const AgentIx self = ctx.leader;
  const NodeId w = engine_.positionOf(self);
  for (const AgentIx a : engine_.agentsAt(w)) {
    if (a != self && !st_[a].settled && st_[a].label == ctx.label) {
      st_[a].orderFollow = p;
    }
  }
  engine_.move(self, p);
  co_await engine_.nextActivation(self);
  // Reassemble fully before anything else: no collision/retreat decision
  // may strand a follower mid-edge.  A marching group can be absorbed by
  // its winner mid-hop (every member relabeled while this fiber sleeps);
  // the dissolved check lets the ex-leader unwind instead of waiting for a
  // label nobody carries any more.
  for (std::uint64_t guard = 0; guard < kWaitGuard; ++guard) {
    if (ctx.dissolved) co_return;
    if (groupConsolidatedAt(ctx.label, engine_.positionOf(self))) {
      ++stats_.collapseHops;  // generic hop counter (collapses and marches)
      co_return;
    }
    co_await engine_.nextActivation(self);
  }
  DISP_CHECK(false, "group move never reassembled");
}

Task GeneralAsyncDispersion::sideTripSetNextSibling(std::uint32_t gi, AgentIx self,
                                                    Port prevChildPort,
                                                    Port newChildPort) {
  // The leader hops to the previous child alone (the group idles at w) and
  // links the sibling chain used by future collapse walks.
  engine_.move(self, prevChildPort);
  co_await engine_.nextActivation(self);
  const AgentIx prev = homeSettlerAt(engine_.positionOf(self), groups_[gi].label);
  DISP_CHECK(prev != kNoAgent, "previous child lost its settler");
  st_[prev].nextSiblingPort = newChildPort;
  engine_.move(self, engine_.pinOf(self));
  co_await engine_.nextActivation(self);
}

// --------------------------------------------------------------- probe

Task GeneralAsyncDispersion::leaderProbeTrip(std::uint32_t gi, AgentIx self,
                                             Port port) {
  engine_.move(self, port);
  co_await engine_.nextActivation(self);
  const ProbeSight sight = observeAndRecruit(self, groups_[gi].label);
  engine_.move(self, engine_.pinOf(self));
  co_await engine_.nextActivation(self);
  // Report (the leader is back at w).
  const AgentIx aw = homeSettlerAt(engine_.positionOf(self), groups_[gi].label);
  DISP_CHECK(aw != kNoAgent, "leader probe report: no settler at w");
  AgentState& bb = st_[aw];
  ++bb.retCount;
  if (sight.empty) {
    const Port portOfW = engine_.pinOf(self);
    if (bb.nextFound == kNoPort || portOfW < bb.nextFound) bb.nextFound = portOfW;
  }
  if (sight.settler != kNoAgent) ++bb.guestExpected;
  if (sight.met != kNoLabel) probeMet_[gi].emplace_back(sight.met, engine_.pinOf(self));
}

Task GeneralAsyncDispersion::probePhase(std::uint32_t gi, AgentIx self) {
  GroupCtx& ctx = groups_[gi];
  ctx.phase = "probe";
  ++stats_.probes;
  const Graph& g = engine_.graph();
  const NodeId w = engine_.positionOf(self);
  const AgentIx aw = homeSettlerAt(w, ctx.label);
  DISP_CHECK(aw != kNoAgent, "probe at a node without an own settler");
  const Port limit =
      static_cast<Port>(std::min<std::uint32_t>(g.degree(w), engine_.agentCount()));

  probeNext_[gi] = kNoPort;
  probeMet_[gi].clear();

  for (;;) {
    AgentState& bb = st_[aw];
    if (bb.checked >= limit) break;  // exhausted: probeNext_ stays ⊥

    const auto& avail = availableProbersAt(w, ctx.label);
    DISP_CHECK(!avail.empty(), "Async_Probe with no available agents");
    const Port delta = static_cast<Port>(std::min<std::uint32_t>(
        static_cast<std::uint32_t>(avail.size()), limit - bb.checked));
    ++stats_.probeIterations;

    bb.outCount = delta;
    bb.retCount = 0;
    bb.guestExpected = 0;
    bb.guestArrived = 0;
    bb.nextFound = kNoPort;

    bool selfProbes = false;
    Port selfPort = kNoPort;
    for (Port i = 0; i < delta; ++i) {
      const Port port = bb.checked + 1 + i;
      if (avail[i] == self) {
        selfProbes = true;
        selfPort = port;
      } else {
        st_[avail[i]].orderProbePort = port;
      }
    }
    if (selfProbes) co_await leaderProbeTrip(gi, self, selfPort);

    // Wait for every prober's report and every recruited guest's arrival.
    for (;;) {
      const AgentState& bbr = st_[aw];
      if (bbr.retCount == bbr.outCount && bbr.guestArrived == bbr.guestExpected) break;
      co_await engine_.nextActivation(self);
    }
    stats_.guestsRecruited += st_[aw].guestArrived;

    if (st_[aw].nextFound != kNoPort) {
      probeNext_[gi] = st_[aw].nextFound;
      break;  // checked intentionally not advanced (Algorithm 3 line 14–15)
    }
    st_[aw].checked = st_[aw].checked + delta;
  }
}

Task GeneralAsyncDispersion::seeOffPhase(std::uint32_t gi, AgentIx self) {
  GroupCtx& ctx = groups_[gi];
  ctx.phase = "seeOff";
  const NodeId w = engine_.positionOf(self);
  for (;;) {
    // Collect co-located own-label guests, ascending by ID (Algorithm 4).
    std::vector<AgentIx> guests;
    for (const AgentIx a : engine_.agentsAt(w)) {
      if (st_[a].label == ctx.label && st_[a].settled && st_[a].isGuest) {
        guests.push_back(a);
      }
    }
    if (guests.empty()) co_return;
    std::sort(guests.begin(), guests.end(),
              [&](AgentIx a, AgentIx b) { return engine_.idOf(a) < engine_.idOf(b); });
    ++stats_.seeOffSweeps;

    if (guests.size() == 1) {
      // α(w) escorts the last guest home (Algorithm 4 lines 2–4).
      const AgentIx g = guests.front();
      const AgentIx aw = homeSettlerAt(w, ctx.label);
      DISP_CHECK(aw != kNoAgent, "see-off without a settler at w");
      st_[aw].orderEscort = st_[g].guestEntryPort;
      st_[g].orderGoHome = true;
      // Wait until the guest is gone and the settler is back *with its
      // escort order consumed*.  Without the order check the guest can walk
      // home on its own before the settler ever leaves, the leader would
      // move on, and the stale escort order would later pull the settler
      // away from w mid-protocol — exactly the §4.3 in-transit hazard.
      for (;;) {
        co_await engine_.nextActivation(self);
        bool guestGone = true;
        for (const AgentIx a : engine_.agentsAt(w)) {
          guestGone &= !(st_[a].label == ctx.label && st_[a].settled && st_[a].isGuest);
        }
        const AgentIx back = homeSettlerAt(w, ctx.label);
        if (guestGone && back != kNoAgent && st_[back].orderEscort == kNoPort) co_return;
      }
    }

    // Pair (g1,g2), (g3,g4), ...: the pair walks to the odd member's home;
    // the even member chaperones and returns.  A trailing unpaired guest
    // waits for the next sweep.
    const AgentIx aw = homeSettlerAt(w, ctx.label);
    DISP_CHECK(aw != kNoAgent, "see-off without a settler at w");
    const auto pairs = static_cast<std::uint32_t>(guests.size() / 2);
    st_[aw].seeOffExpected = pairs;
    st_[aw].seeOffReturned = 0;
    for (std::uint32_t i = 0; i < pairs; ++i) {
      const AgentIx gHome = guests[2 * i];
      const AgentIx gBack = guests[2 * i + 1];
      st_[gBack].orderChaperone = st_[gHome].guestEntryPort;
      st_[gHome].orderGoHome = true;
    }
    for (;;) {
      if (st_[aw].seeOffReturned == st_[aw].seeOffExpected) break;
      co_await engine_.nextActivation(self);
    }
  }
}

// ---------------------------------------------------------- subsumption

Task GeneralAsyncDispersion::awaitParked(std::uint32_t gi, std::uint32_t loser) {
  const AgentIx self = groups_[gi].leader;
  // The loser acknowledges the freeze at its next safe point; a group whose
  // leader already settled everyone (dispersed) counts as parked — its
  // dormant anchor holds still once frozen.
  for (std::uint64_t guard = 0; guard < kWaitGuard; ++guard) {
    const GroupCtx& L = groups_[loser];
    if (L.parked || (L.unsettled == 0 && !L.marching)) co_return;
    co_await engine_.nextActivation(self);
  }
  DISP_CHECK(false, "loser never parked");
}

Task GeneralAsyncDispersion::collapseVisit(std::uint32_t gi, Label loserLabel,
                                           Port exclPort) {
  GroupCtx& ctx = groups_[gi];
  const NodeId cur = engine_.positionOf(ctx.leader);

  // Collect any parked loser-group agents stranded here (including the
  // loser's parked leader): they change allegiance and walk with us.
  adoptAt(gi, loserLabel, cur);

  const AgentIx ls = homeSettlerAt(cur, loserLabel);
  if (ls == kNoAgent) {
    std::string diag = "collapse walk: loser tree node without settler: node=" +
                       std::to_string(cur) + " loser=" + std::to_string(loserLabel) +
                       " walker=" + std::to_string(ctx.label) + " occupants:";
    for (const AgentIx b : engine_.agentsAt(cur)) {
      diag += " a" + std::to_string(b) + "(l" + std::to_string(st_[b].label) +
              (st_[b].settled ? ",s" : ",u") + (st_[b].isGuest ? ",g)" : ")");
    }
    DISP_CHECK(false, diag);
  }
  const Port parentPort = st_[ls].parentPort;
  const Port firstChild = st_[ls].firstChildPort;

  // Children chain (skipping the direction we came from; for that child we
  // only peek its sibling pointer to continue the chain).
  Port c = firstChild;
  while (c != kNoPort) {
    if (c == exclPort) {
      co_await moveGroup(gi, c);
      const AgentIx cs = homeSettlerAt(engine_.positionOf(ctx.leader), loserLabel);
      const Port sib = (cs != kNoAgent) ? st_[cs].nextSiblingPort : kNoPort;
      co_await moveGroup(gi, engine_.pinOf(ctx.leader));
      c = sib;
      continue;
    }
    co_await moveGroup(gi, c);
    const Port backUp = engine_.pinOf(ctx.leader);
    const AgentIx cs = homeSettlerAt(engine_.positionOf(ctx.leader), loserLabel);
    DISP_CHECK(cs != kNoAgent, "collapse walk: child without settler");
    const Port sib = st_[cs].nextSiblingPort;
    co_await collapseVisit(gi, loserLabel, backUp);
    co_await moveGroup(gi, backUp);
    c = sib;
  }

  // Parent direction (when we entered from a child or from outside).
  if (parentPort != kNoPort && parentPort != exclPort) {
    co_await moveGroup(gi, parentPort);
    const Port backDown = engine_.pinOf(ctx.leader);
    co_await collapseVisit(gi, loserLabel, backDown);
    co_await moveGroup(gi, backDown);
  }

  // Finally collect this node's settler; its record dies with it.
  AgentState& s = st_[ls];
  s.settled = false;
  s.settledAt = kInvalidNode;
  s.label = ctx.label;
  proberIdx_.insert(ls, engine_.positionOf(ls));  // unsettled again
  posIdx_.add(ctx.label, engine_.positionOf(ls));
  ++ctx.total;
  ++ctx.unsettled;
  --groups_[loserLabel].total;
  --groups_[loserLabel].treeSize;
  engine_.traceUnsettle(ls, loserLabel, ctx.label);
}

Task GeneralAsyncDispersion::marchToward(std::uint32_t gi, AgentIx anchor) {
  // BFS walk of the whole group toward the anchor agent's (possibly
  // moving) position; every hop is a real group move.
  for (std::uint64_t guard = 0; guard < kWaitGuard; ++guard) {
    const NodeId here = engine_.positionOf(groups_[gi].leader);
    const NodeId there = engine_.positionOf(anchor);
    if (here == there) co_return;
    const auto dist = bfsDistances(engine_.graph(), there);
    Port step = kNoPort;
    for (Port p = 1; p <= engine_.graph().degree(here); ++p) {
      if (dist[engine_.graph().neighbor(here, p)] < dist[here]) {
        step = p;
        break;
      }
    }
    DISP_CHECK(step != kNoPort, "march lost its way");
    co_await moveGroup(gi, step);
  }
  DISP_CHECK(false, "march never arrived");
}

Task GeneralAsyncDispersion::collapseForeign(std::uint32_t gi, std::uint32_t loser,
                                             Port metPort) {
  GroupCtx& ctx = groups_[gi];
  bool usedPort = false;
  if (metPort != kNoPort) {
    // Enter the loser tree through the met port, Euler-walk it collecting
    // everyone, end back at the entry node, and hop home.  The met node may
    // turn out not to be a loser *tree* node (the meeting was with agents
    // in transit); fall back to the march path then.
    co_await moveGroup(gi, metPort);
    const Port backToHead = engine_.pinOf(ctx.leader);
    if (homeSettlerAt(engine_.positionOf(ctx.leader), groups_[loser].label) !=
        kNoAgent) {
      usedPort = true;
      co_await collapseVisit(gi, groups_[loser].label, kNoPort);
    }
    co_await moveGroup(gi, backToHead);
  }
  if (!usedPort) {
    // Pended retry: no fresh adjacency.  March to the loser's parked group
    // (its leader rests on a loser tree node), collapse from there, then
    // march back to our own head to resume the DFS.
    const NodeId myHead = engine_.positionOf(ctx.leader);
    const AgentIx loserAnchor = groups_[loser].leader;
    co_await marchToward(gi, loserAnchor);
    co_await collapseVisit(gi, groups_[loser].label, kNoPort);
    const AgentIx homeAnchor = homeSettlerAt(myHead, ctx.label);
    DISP_CHECK(homeAnchor != kNoAgent, "head lost its settler during collapse");
    co_await marchToward(gi, homeAnchor);
  }
  recordMemory();
}

Task GeneralAsyncDispersion::selfCollapseAndMarch(std::uint32_t gi,
                                                  std::uint32_t winner, Port metPort) {
  GroupCtx& ctx = groups_[gi];
  // Collapse our own tree starting from the head (a tree node), collecting
  // all our settlers into the walking group.
  co_await collapseVisit(gi, ctx.label, kNoPort);
  // Chase the winner's leader (the group anchor: with the group while
  // active, at its settle node when dormant).  The winner idles at its
  // next safe point until we arrive and absorbs us; routing uses
  // engine-side position tracking standing in for KS's head-pointer
  // maintenance, with every hop a real move.
  if (metPort != kNoPort) co_await moveGroup(gi, metPort);
  ctx.marchTarget = winner;
  ctx.marching = true;
  for (std::uint64_t guard = 0; guard < kWaitGuard; ++guard) {
    if (ctx.dissolved) co_return;  // the winner absorbed us
    const std::uint32_t target = resolveGroup(ctx.marchTarget);
    const NodeId here = engine_.positionOf(ctx.leader);
    const NodeId head = engine_.positionOf(groups_[target].leader);
    if (here == head) {
      co_await engine_.nextActivation(ctx.leader);  // co-located: await absorb
      continue;
    }
    const auto dist = bfsDistances(engine_.graph(), head);
    Port step = kNoPort;
    for (Port p = 1; p <= engine_.graph().degree(here); ++p) {
      if (dist[engine_.graph().neighbor(here, p)] < dist[here]) {
        step = p;
        break;
      }
    }
    DISP_CHECK(step != kNoPort, "march lost its way");
    co_await moveGroup(gi, step);
  }
  DISP_CHECK(false, "march never absorbed");
}

Task GeneralAsyncDispersion::absorbMarchers(std::uint32_t gi) {
  GroupCtx& ctx = groups_[gi];
  for (;;) {
    // Junction locking (DESIGN.md §4.7): a frozen/dissolved group must not
    // take marchers in — its winner's collapse walk collects only tree
    // settlers, so members absorbed mid-freeze would be orphaned unsettled
    // when this fiber parks.  The marchers re-resolve their target through
    // the dissolution chain and reach the eventual winner instead.
    if (ctx.frozen || ctx.dissolved) co_return;
    std::int64_t marcher = -1;
    for (std::uint32_t mi = 0; mi < groups_.size(); ++mi) {
      if (groups_[mi].marching && !groups_[mi].dissolved &&
          resolveGroup(groups_[mi].marchTarget) == gi) {
        marcher = mi;
        break;
      }
    }
    if (marcher < 0) co_return;
    ctx.phase = "absorbWait";
    const std::uint32_t mi = static_cast<std::uint32_t>(marcher);
    // Idle until the marcher's group fully reaches our leader, then take
    // them in — unless a winner freezes us first, or the marcher is
    // rerouted meanwhile.
    for (std::uint64_t guard = 0; guard < kWaitGuard; ++guard) {
      if (ctx.frozen || ctx.dissolved || groups_[mi].dissolved) break;
      if (groupConsolidatedAt(groups_[mi].label, engine_.positionOf(ctx.leader))) break;
      co_await engine_.nextActivation(ctx.leader);
    }
    if (ctx.frozen || ctx.dissolved) co_return;
    if (groups_[mi].dissolved) continue;  // absorbed elsewhere; rescan
    absorbGroup(gi, mi);
  }
}

Task GeneralAsyncDispersion::handleMeeting(std::uint32_t gi, Label other,
                                           Port metPort) {
  GroupCtx& ctx = groups_[gi];
  // A group that has itself been frozen (a winner is about to collapse it)
  // must not initiate anything: it parks at its next safe point and gets
  // collected.
  if (ctx.frozen || ctx.dissolved || ctx.marching) co_return;
  const std::uint32_t target = resolveGroup(other);
  if (target == gi) co_return;
  GroupCtx& them = groups_[target];
  if (them.frozen || them.marching) {
    // Busy peer: pend the meeting (dropping it could wall this tree in,
    // since a probed port is never re-probed once `checked` advances).
    if (std::find(ctx.pending.begin(), ctx.pending.end(), them.label) ==
        ctx.pending.end()) {
      ctx.pending.push_back(them.label);
    }
    co_return;
  }
  ++stats_.meetings;
  engine_.traceEvent(TraceEventKind::Meeting, ctx.leader,
                     engine_.positionOf(ctx.leader), ctx.label, them.label);

  // |D2| < |D1| means D1 subsumes D2; ties favour the met tree (§4.2).
  // The peer checks and the freeze below share one activation — no
  // suspension point in between — so two groups can never freeze each
  // other concurrently.
  const bool iWin = them.treeSize < ctx.treeSize;
  ++stats_.subsumptions;
  engine_.traceEvent(TraceEventKind::Subsume,
                     iWin ? ctx.leader : them.leader,
                     engine_.positionOf(ctx.leader),
                     iWin ? ctx.label : them.label,
                     iWin ? them.label : ctx.label);
  if (iWin) {
    them.frozen = true;
    engine_.traceEvent(TraceEventKind::Freeze, them.leader,
                       engine_.positionOf(them.leader), them.label, ctx.label);
    ctx.phase = "awaitParked";
    co_await awaitParked(gi, target);
    ctx.phase = "collapseForeign";
    if (!them.dissolved) {
      co_await collapseForeign(gi, target, metPort);
      them.dissolved = true;
      them.absorbedBy = gi;
    }
  } else {
    ctx.frozen = true;  // others must not target us mid-self-collapse
    engine_.traceEvent(TraceEventKind::Freeze, ctx.leader,
                       engine_.positionOf(ctx.leader), ctx.label, them.label);
    ctx.phase = "selfCollapse";
    co_await selfCollapseAndMarch(gi, target, metPort);
  }
}

Task GeneralAsyncDispersion::retryPending(std::uint32_t gi) {
  GroupCtx& ctx = groups_[gi];
  if (ctx.unsettled == 0) {
    // A dispersed group never needs to initiate a subsumption: if a blocked
    // peer still needs this tree's nodes, it will meet us and act.
    ctx.pending.clear();
    co_return;
  }
  std::vector<Label> todo;
  std::swap(todo, ctx.pending);
  for (const Label label : todo) {
    if (ctx.frozen || ctx.dissolved) {
      // Re-pend what we could not process; a later owner inherits it.
      ctx.pending.push_back(label);
      continue;
    }
    if (resolveGroup(label) == gi) continue;  // merged meanwhile
    co_await handleMeeting(gi, label, kNoPort);
  }
}

Task GeneralAsyncDispersion::rescanVisit(std::uint32_t gi, AgentIx self) {
  // Blocked-DFS recovery: Euler-walk the own tree, resetting probe progress
  // and re-probing at every node, because a collapse can free nodes behind
  // ports this DFS already advanced past (checked is monotone).  Stops at
  // the first node with a finding; the DFS resumes from there.
  GroupCtx& ctx = groups_[gi];
  ctx.phase = "rescan";
  const NodeId cur = engine_.positionOf(self);
  const AgentIx settler = homeSettlerAt(cur, ctx.label);
  DISP_CHECK(settler != kNoAgent, "rescan reached a non-own node");

  st_[settler].checked = 0;
  co_await probePhase(gi, self);
  co_await seeOffPhase(gi, self);
  if (probeNext_[gi] != kNoPort || !probeMet_[gi].empty()) {
    rescanFound_[gi] = 1;  // resume the DFS right here
    co_return;
  }

  Port c = st_[settler].firstChildPort;
  while (c != kNoPort) {
    co_await moveGroup(gi, c);
    const Port backUp = engine_.pinOf(self);
    const AgentIx cs = homeSettlerAt(engine_.positionOf(self), ctx.label);
    DISP_CHECK(cs != kNoAgent, "rescan child without settler");
    const Port sib = st_[cs].nextSiblingPort;
    co_await rescanVisit(gi, self);
    if (rescanFound_[gi]) co_return;  // stay put; frames unwind without moving
    co_await moveGroup(gi, backUp);
    c = sib;
  }
}

// ----------------------------------------------------------------- main

Task GeneralAsyncDispersion::leaderLoop(std::uint32_t gi, AgentIx self) {
  GroupCtx& ctx = groups_[gi];

  // Settle the smallest-ID member at the start node (first lead only).
  if (ctx.treeSize == 0) {
    const NodeId s = engine_.positionOf(self);
    const AgentIx amin = minIdAgentAt(engine_, s, [&](AgentIx a) {
      return st_[a].label == ctx.label && !st_[a].settled;
    });
    DISP_CHECK(amin != kNoAgent, "no agent to settle at the start node");
    settle(gi, amin, s, kNoPort);
    ctx.treeSize = 1;
  }

  for (;;) {
    // Dormant / parked / absorbed handling (safe points).
    if (ctx.dissolved) co_return;
    if (ctx.frozen) {
      ctx.parked = true;
      co_return;  // fall back to participant mode; a winner collects us
    }
    co_await absorbMarchers(gi);
    if (ctx.dissolved || ctx.frozen) continue;
    co_await retryPending(gi);
    if (ctx.dissolved || ctx.frozen) continue;
    if (ctx.unsettled == 0) {
      // Dispersed: become the group's dormant anchor.  Marchers navigate
      // to us; dormantDuties absorbs them and hands leadership on.
      ctx.phase = "dormant";
      anchorOf_[self] = gi;
      if (globalUnsettled() == 0) engine_.finish();
      co_return;
    }

    const NodeId w = engine_.positionOf(self);
    if (rescanFound_[gi]) {
      // A rescan stopped here because its probe found an empty port or a
      // meeting; consume those results directly.  Re-probing would clear
      // probeMet_ and exit at once (this node's `checked` is already
      // exhausted when only a meeting was found), silently discarding the
      // finding and rescanning forever.
      rescanFound_[gi] = 0;
    } else {
      co_await probePhase(gi, self);
      co_await seeOffPhase(gi, self);
    }

    // Meetings discovered by this probe (report order).
    for (const auto& [label, port] : probeMet_[gi]) {
      co_await handleMeeting(gi, label, port);
      if (ctx.frozen || ctx.dissolved) break;
    }
    if (ctx.dissolved || ctx.frozen) continue;

    const Port next = probeNext_[gi];
    const AgentIx aw = homeSettlerAt(w, ctx.label);
    DISP_CHECK(aw != kNoAgent, "head lost its settler");

    if (next != kNoPort) {
      // Sibling-chain bookkeeping for future collapse walks (undone below
      // if the move has to retreat).
      const Port prevFirst = st_[aw].firstChildPort;
      const Port prevLatest = st_[aw].latestChildPort;
      if (st_[aw].firstChildPort == kNoPort) {
        st_[aw].firstChildPort = next;
      } else {
        co_await sideTripSetNextSibling(gi, self, st_[aw].latestChildPort, next);
      }
      st_[aw].latestChildPort = next;

      co_await moveGroup(gi, next);
      const NodeId u = engine_.positionOf(self);
      const AgentIx foreignSettler = anySettlerAt(u);
      bool retreat = false;
      Label metLabel = kNoLabel;
      if (foreignSettler != kNoAgent) {
        retreat = true;
        metLabel = st_[foreignSettler].label;
      } else {
        // Collision with a foreign group on an empty node: the squatting
        // rule — the smaller tree (ties: smaller label) retreats; both
        // sides compute the same comparison.
        for (const AgentIx b : engine_.agentsAt(u)) {
          if (st_[b].label == ctx.label || st_[b].settled) continue;
          const std::uint32_t otherGi = resolveGroup(st_[b].label);
          const auto mine = std::make_pair(ctx.treeSize, ctx.label);
          const auto theirs =
              std::make_pair(groups_[otherGi].treeSize, groups_[otherGi].label);
          if (mine < theirs) retreat = true;
        }
      }
      if (retreat) {
        ++stats_.retreats;
        co_await moveGroup(gi, engine_.pinOf(self));
        // Undo the speculative sibling link: the child was not created.
        st_[aw].firstChildPort = prevFirst;
        st_[aw].latestChildPort = prevLatest;
        if (prevLatest != kNoPort) {
          co_await sideTripSetNextSibling(gi, self, prevLatest, kNoPort);
        }
        if (metLabel != kNoLabel) co_await handleMeeting(gi, metLabel, next);
        continue;
      }

      ++stats_.forwardMoves;
      ++ctx.treeSize;
      // Settle the smallest-ID follower; the leader settles itself only
      // when it is the last unsettled member of its group.
      AgentIx amin = minIdAgentAt(engine_, u, [&](AgentIx a) {
        return a != self && st_[a].label == ctx.label && !st_[a].settled;
      });
      if (amin == kNoAgent) amin = self;
      settle(gi, amin, u, engine_.pinOf(amin));
      if (ctx.unsettled == 0) {
        ctx.phase = "dormant";
        anchorOf_[self] = gi;
        if (globalUnsettled() == 0) engine_.finish();
        co_return;
      }
    } else {
      const Port pp = st_[aw].parentPort;
      if (pp == kNoPort) {
        // Root exhausted while agents remain.  A collapse may have freed
        // nodes behind already-checked ports anywhere along our tree, so
        // sweep the whole tree re-probing (rescanVisit); if that finds
        // nothing every frontier peer is busy — pend/retry after a pause.
        if (ctx.pending.empty()) {
          rescanFound_[gi] = 0;
          co_await rescanVisit(gi, self);
          if (!rescanFound_[gi]) {
            for (int i = 0; i < 16; ++i) co_await engine_.nextActivation(self);
          }
        } else {
          for (int i = 0; i < 16; ++i) co_await engine_.nextActivation(self);
        }
        continue;
      }
      ++stats_.backtracks;
      co_await moveGroup(gi, pp);
    }
  }
}

}  // namespace disp
