#pragma once
// Algorithm 1 (Empty_Node_Selection) and the §5.2 cover/oscillation
// assignment, in centralized form on an explicit rooted tree.
//
// This is the *specification* against which the incremental selection
// embedded in RootedSyncDisp is validated: it settles ≤ ⌊2k/3⌋ agents on a
// k-node tree leaving ≥ ⌈k/3⌉ nodes empty (Lemma 1), and matches every
// empty node to a settled coverer such that a coverer handles at most 3
// empty children or at most 2 empty siblings (Lemma 3), making every
// oscillation trip at most 6 rounds (Lemma 2).
//
// Selection rules (paper Fig. 1):
//  * settle every node at even depth;
//  * Case A — for each parent of settled leaves, keep a settler on leaf
//    children 1, 4, 7, ... (port order) and remove the rest; a kept leaf
//    covers the ≤ 2 removed leaves that follow it;
//  * Case B — for each settled non-leaf with x > 3 children, put a settler
//    on children 4, 7, 10, ...; the parent covers children 1..3 and each
//    placed settler covers the ≤ 2 siblings that follow it.

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace disp {

/// A rooted tree with children kept in discovery (port) order.
struct RootedTree {
  std::vector<std::vector<std::uint32_t>> children;
  std::vector<std::int64_t> parent;  // -1 at the root
  std::vector<std::uint32_t> depth;
  std::uint32_t root = 0;

  [[nodiscard]] std::uint32_t size() const {
    return static_cast<std::uint32_t>(parent.size());
  }
  [[nodiscard]] bool isLeaf(std::uint32_t v) const { return children[v].empty(); }

  /// Builds from a parent array (parent[root] == root or -1).  Children are
  /// ordered by node index order of appearance, which callers arrange to be
  /// port order.
  [[nodiscard]] static RootedTree fromParentArray(const std::vector<std::int64_t>& parent,
                                                  std::uint32_t root);
};

enum class CoverType : std::uint8_t {
  None,      ///< non-oscillating settler
  Children,  ///< covers ≤ 3 empty children (trip home–c–home–…, ≤ 6 rounds)
  Siblings,  ///< covers ≤ 2 empty siblings via the shared parent (≤ 6 rounds)
};

struct EmptySelection {
  std::vector<std::uint8_t> occupied;   ///< per node: settler present
  std::vector<std::int64_t> covererOf;  ///< per node: covering node (-1 if occupied)
  std::vector<CoverType> coverType;     ///< per node: duty of its settler
  std::vector<std::vector<std::uint32_t>> covers;  ///< per node: covered nodes

  [[nodiscard]] std::uint32_t emptyCount() const;
  [[nodiscard]] std::uint32_t occupiedCount() const;
};

/// Runs Algorithm 1 + cover assignment on `tree`.
[[nodiscard]] EmptySelection emptyNodeSelection(const RootedTree& tree);

/// Verifies all selection invariants; throws std::logic_error on violation:
///  * Lemma 1: emptyCount >= ceil(k/3) for k >= 3;
///  * every empty node has exactly one coverer, which is occupied;
///  * Children-coverers cover <= 3 of their own children;
///  * Siblings-coverers cover <= 2 nodes sharing their parent;
///  * occupied + empty == k.
void validateSelection(const RootedTree& tree, const EmptySelection& sel);

/// Length in rounds of the oscillation trip implied by a cover assignment
/// (Lemma 2: always <= 6).
[[nodiscard]] std::uint32_t oscillationTripRounds(CoverType type,
                                                  std::uint32_t coveredCount);

}  // namespace disp
