#pragma once
// Shared protocol vocabulary for the dispersion algorithms.
//
// Each algorithm owns vectors of per-agent state structs — the agents'
// persistent memory.  Protocol discipline (enforced by convention and
// checked in tests): state of agent b is only read/written by code acting
// for an agent co-located with b, which is exactly the paper's local
// communication model.  All state fields are catalogued for the memory
// ledger with explicit bit widths.

#include <cstdint>
#include <vector>

#include "core/memory.hpp"
#include "core/world.hpp"
#include "graph/graph.hpp"

namespace disp {

/// Sentinel treelabel for "no DFS" contexts (rooted runs use label 0).
inline constexpr std::uint32_t kNoTree = static_cast<std::uint32_t>(-1);

/// Finds the settled agent at node v, or kNoAgent.  `settledFlag` is the
/// algorithm's per-agent settled predicate.
template <typename Engine, typename Pred>
[[nodiscard]] AgentIx settlerAt(const Engine& engine, NodeId v, Pred&& isSettler) {
  for (const AgentIx a : engine.agentsAt(v)) {
    if (isSettler(a)) return a;
  }
  return kNoAgent;
}

/// Smallest-ID agent at node v satisfying a predicate, or kNoAgent.
template <typename Engine, typename Pred>
[[nodiscard]] AgentIx minIdAgentAt(const Engine& engine, NodeId v, Pred&& pred) {
  AgentIx best = kNoAgent;
  for (const AgentIx a : engine.agentsAt(v)) {
    if (!pred(a)) continue;
    if (best == kNoAgent || engine.idOf(a) < engine.idOf(best)) best = a;
  }
  return best;
}

/// Largest-ID agent at node v satisfying a predicate, or kNoAgent.
template <typename Engine, typename Pred>
[[nodiscard]] AgentIx maxIdAgentAt(const Engine& engine, NodeId v, Pred&& pred) {
  AgentIx best = kNoAgent;
  for (const AgentIx a : engine.agentsAt(v)) {
    if (!pred(a)) continue;
    if (best == kNoAgent || engine.idOf(a) > engine.idOf(best)) best = a;
  }
  return best;
}

}  // namespace disp
