#pragma once
// RootedAsyncDisp — the paper's Theorem 7.1 algorithm: dispersion of k <= n
// agents from a rooted configuration in O(k log k) epochs with O(log(k+Δ))
// bits per agent, in the ASYNC model, under any fair scheduler.
//
// Structure (paper §5.5, §7):
//  * the largest-ID agent a_max leads a DFS; every forward move settles the
//    smallest-ID agent, so every tree node holds a settler (no oscillation
//    is needed in ASYNC — that is the SYNC-only trick);
//  * Async_Probe (Algorithm 3): available agents probe distinct ports in
//    parallel; each prober that finds a settled neighbor recruits that
//    settler back to w as a *guest helper*, doubling the probing force —
//    O(log k) iterations to find a fully unsettled neighbor;
//  * Guest_See_Off (Algorithm 4): before the group leaves w, guests are
//    escorted home in pairs (one settles, one returns), halving the guest
//    set per sweep — O(log k) epochs; this is what makes "neighbor looks
//    empty" mean "fully unsettled" despite asynchrony (§4.3);
//  * coordination is strictly local: the leader writes orders into
//    co-located agents' memory; transient probe counters live on the
//    settler of the current node (always present), so probers can report
//    even while the leader is itself out probing.
//
// Each agent runs one fiber; one CCM cycle per activation, at most one
// edge traversal per cycle.

#include <cstdint>
#include <vector>

#include "algo/probe_index.hpp"
#include "core/async_engine.hpp"
#include "core/memory.hpp"
#include "core/metrics.hpp"
#include "graph/graph.hpp"

namespace disp {

struct AsyncDispStats {
  std::uint64_t forwardMoves = 0;
  std::uint64_t backtracks = 0;
  std::uint64_t probes = 0;
  std::uint64_t probeIterations = 0;
  std::uint64_t guestsRecruited = 0;
  std::uint64_t seeOffSweeps = 0;
};

class RootedAsyncDispersion {
 public:
  explicit RootedAsyncDispersion(AsyncEngine& engine);

  /// Installs one fiber per agent; call engine.run() afterwards.
  void start();

  [[nodiscard]] bool dispersed() const;
  [[nodiscard]] const AsyncDispStats& stats() const noexcept { return stats_; }
  [[nodiscard]] std::uint64_t agentBits(AgentIx a) const;

  /// Test/debug introspection: (settled, isGuest, settledAt).
  struct AgentSnapshot {
    bool settled;
    bool isGuest;
    NodeId settledAt;
  };
  [[nodiscard]] AgentSnapshot snapshot(AgentIx a) const {
    return {st_[a].settled, st_[a].isGuest, st_[a].settledAt};
  }

 private:
  struct AgentState {
    bool settled = false;
    NodeId settledAt = kInvalidNode;  // simulation-side assertion key
    Port parentPort = kNoPort;        // settler: DFS-tree parent

    // --- settler blackboard (the α(w).* variables + probe counters) ---
    Port checked = 0;          // Async_Probe progress at this node
    Port nextFound = kNoPort;  // smallest empty port reported this iteration
    std::uint32_t outCount = 0;
    std::uint32_t retCount = 0;
    std::uint32_t guestExpected = 0;
    std::uint32_t guestArrived = 0;
    std::uint32_t seeOffExpected = 0;
    std::uint32_t seeOffReturned = 0;

    // --- orders written by the leader / probers (communicate phase) ---
    Port orderProbePort = kNoPort;   // follower/guest: probe this port of w
    Port orderGuestGoTo = kNoPort;   // settler at a probed neighbor: go to w
    bool orderGoHome = false;        // guest: exit w via its own entry port
    Port orderChaperone = kNoPort;   // guest: escort partner via this port
    Port orderEscort = kNoPort;      // settler α(w): escort the last guest
    Port orderFollow = kNoPort;      // follower: group move via this port

    // --- guest bookkeeping ---
    bool isGuest = false;
    Port guestEntryPort = kNoPort;  // port of w through which it entered w
    bool needRegister = false;      // guest must report arrival at w
    bool needReport = false;        // prober must report results at w
    bool reportEmpty = false;
    bool reportGuest = false;
    Port reportPort = kNoPort;
  };

  Task leaderFiber(AgentIx self);
  Task participantFiber(AgentIx self);

  // Leader sub-phases (all run inside leaderFiber).
  Task probePhase(AgentIx self);    // result in leaderNext_
  Task seeOffPhase(AgentIx self);
  Task leaderProbeTrip(AgentIx self, Port port);  // leader probes a port itself

  [[nodiscard]] AgentIx homeSettlerAt(NodeId v) const;  // settled, not guest
  [[nodiscard]] const std::vector<AgentIx>& availableProbersAt(NodeId w,
                                                               AgentIx self) const;
  void recordMemory();

  AsyncEngine& engine_;
  std::vector<AgentState> st_;
  /// Scratch for availableProbersAt (consumed before any co_await).
  mutable std::vector<AgentIx> probersScratch_;
  /// Followers + guest helpers bucketed by node: availableProbersAt reads
  /// the w bucket instead of scanning every occupant of w (DESIGN.md §9.4).
  /// Maintained at settle/recruit/see-off; positions ride the move hook.
  IdleProberIndex proberIdx_;
  AsyncDispStats stats_;
  BitWidths widths_;
  AgentIx leader_ = kNoAgent;
  std::uint32_t groupSize_ = 0;  // leader's count of unsettled agents
  Port leaderNext_ = kNoPort;    // probe outcome cached by the leader
};

}  // namespace disp
