#pragma once
// Probe indexes for the ASYNC protocols: incrementally maintained views
// that replace the per-query O(k) scans in availableProbersAt and
// groupConsolidatedAt (DESIGN.md §9.4).
//
// Both indexes are *membership* structures, not predicate caches: they
// track the slow-changing part of each query (who is unsettled/a guest,
// where the unsettled agents of a label stand) and leave the fast-changing
// part (pending-order flags, label filters) to the caller at query time.
// That split keeps maintenance down to a handful of O(1) updates per
// protocol transition — settle, unsettle, recruit, see-off, relabel, and
// the engine move hook — instead of shadowing every order-flag write.
//
// Determinism: IdleProberIndex buckets are position-ordered only by the
// operation history (swap-erase perturbs order), so callers that need a
// canonical order must sort — exactly what the protocols already do (by
// agent ID).  GroupPositionIndex uses hash maps strictly for keyed
// lookups; no code path iterates them, so hash order never leaks into
// simulation facts.

#include <cstdint>
#include <unordered_map>  // displint: allow(DL001) — GroupPositionIndex keyed lookups only
#include <vector>

#include "core/world.hpp"
#include "graph/graph.hpp"
#include "util/check.hpp"

namespace disp {

/// Per-node buckets of the agents eligible to be drafted as probers: the
/// unsettled followers and the settled guest helpers (`!settled || isGuest`
/// in protocol terms).  availableProbersAt(w) iterates the w bucket and
/// filters pending-order flags instead of scanning every occupant of w.
///
/// The protocol owns the membership transitions (settle/unsettle,
/// recruit/see-off); position changes ride the engine's move hook via
/// relocate(), which ignores non-members (settlers move too — escorts).
class IdleProberIndex {
 public:
  IdleProberIndex(AgentIx agentCount, NodeId nodeCount)
      : members_(nodeCount), where_(agentCount, kInvalidNode), slot_(agentCount, 0) {}

  [[nodiscard]] bool contains(AgentIx a) const { return where_[a] != kInvalidNode; }

  /// The bucket for node v, in maintenance order (NOT sorted; sort by ID
  /// before using the order for anything fact-bearing).
  [[nodiscard]] const std::vector<AgentIx>& membersAt(NodeId v) const {
    return members_[v];
  }

  void insert(AgentIx a, NodeId v) {
    DISP_DCHECK(!contains(a), "IdleProberIndex: double insert");
    where_[a] = v;
    slot_[a] = static_cast<std::uint32_t>(members_[v].size());
    members_[v].push_back(a);
  }

  void erase(AgentIx a) {
    DISP_DCHECK(contains(a), "IdleProberIndex: erasing a non-member");
    std::vector<AgentIx>& bucket = members_[where_[a]];
    const std::uint32_t s = slot_[a];
    bucket[s] = bucket.back();  // swap-erase; fix the moved member's slot
    slot_[bucket[s]] = s;
    bucket.pop_back();
    where_[a] = kInvalidNode;
  }

  /// Move-hook entry point: members follow their agent's position;
  /// non-members (home settlers on escort trips) are ignored.
  void relocate(AgentIx a, NodeId to) {
    if (!contains(a)) return;
    erase(a);
    insert(a, to);
  }

 private:
  std::vector<std::vector<AgentIx>> members_;
  std::vector<NodeId> where_;         // member: current node; else kInvalidNode
  std::vector<std::uint32_t> slot_;   // member: index within its bucket
};

/// Per-label position fingerprint of the *unsettled* agents: a count U of
/// unsettled members plus a node→count map of where they stand.  The
/// consolidation query "is every unsettled agent of this label at v" —
/// previously an O(k) scan on every reassembly-wait activation — becomes
/// two O(1) lookups: U > 0 && countAt(v) == U.
class GroupPositionIndex {
 public:
  explicit GroupPositionIndex(std::uint32_t labelCount)
      : unsettled_(labelCount, 0), at_(labelCount) {}

  /// An agent of `label` became unsettled at v (initial placement, or a
  /// collapse walk collecting a settler).
  void add(std::uint32_t label, NodeId v) {
    ++unsettled_[label];
    ++at_[label][v];
  }

  /// An agent of `label` left the unsettled set at v (settled), or was
  /// relabeled away (pair with add() under the new label).
  void remove(std::uint32_t label, NodeId v) {
    DISP_DCHECK(unsettled_[label] > 0, "GroupPositionIndex: count underflow");
    --unsettled_[label];
    decrementAt(label, v);
  }

  /// Move-hook entry point for an unsettled agent of `label`.
  void move(std::uint32_t label, NodeId from, NodeId to) {
    decrementAt(label, from);
    ++at_[label][to];
  }

  [[nodiscard]] std::uint32_t unsettledCount(std::uint32_t label) const {
    return unsettled_[label];
  }

  [[nodiscard]] std::uint32_t countAt(std::uint32_t label, NodeId v) const {
    const auto it = at_[label].find(v);
    return it == at_[label].end() ? 0 : it->second;
  }

  /// True iff the label has unsettled agents and ALL of them stand at v.
  [[nodiscard]] bool consolidatedAt(std::uint32_t label, NodeId v) const {
    return unsettled_[label] > 0 && countAt(label, v) == unsettled_[label];
  }

 private:
  void decrementAt(std::uint32_t label, NodeId v) {
    const auto it = at_[label].find(v);
    DISP_DCHECK(it != at_[label].end() && it->second > 0,
                "GroupPositionIndex: position count underflow");
    if (--it->second == 0) at_[label].erase(it);
  }

  std::vector<std::uint32_t> unsettled_;
  // displint: allow(DL001) — keyed lookups only (find/erase/operator[]);
  // never iterated, so hash order cannot reach facts.
  std::vector<std::unordered_map<NodeId, std::uint32_t>> at_;
};

}  // namespace disp
