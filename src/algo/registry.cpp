#include "algo/registry.hpp"

#include <deque>
#include <stdexcept>

#include "algo/async_rooted.hpp"
#include "algo/baseline_ks.hpp"
#include "algo/general_async.hpp"
#include "algo/general_sync.hpp"
#include "algo/sync_rooted.hpp"

namespace disp {

namespace {

template <typename Algo, typename Engine>
class Adapter final : public ProtocolHandle {
 public:
  explicit Adapter(Engine& engine) : algo_(engine) {}
  void start() override { algo_.start(); }
  [[nodiscard]] bool dispersed() const override { return algo_.dispersed(); }

 private:
  Algo algo_;
};

template <typename Algo>
std::unique_ptr<ProtocolHandle> makeSyncAlgo(SyncEngine& engine) {
  return std::make_unique<Adapter<Algo, SyncEngine>>(engine);
}

template <typename Algo>
std::unique_ptr<ProtocolHandle> makeAsyncAlgo(AsyncEngine& engine) {
  return std::make_unique<Adapter<Algo, AsyncEngine>>(engine);
}

// RootedSyncDisp's seeker machinery is vacuous below k = 7; the facade has
// always fallen back to the KS baseline there (DESIGN.md §4.5), so the
// factory is where that policy lives now.
std::unique_ptr<ProtocolHandle> makeRootedSync(SyncEngine& engine) {
  if (engine.agentCount() < 7) return makeSyncAlgo<KsSyncDispersion>(engine);
  return makeSyncAlgo<RootedSyncDispersion>(engine);
}

std::deque<AlgorithmDef>& mutableRegistry() {
  // displint: allow(DL005) — append-only Meyers-singleton registration
  // store: mutated only by registerAlgorithm() before runs start, read via
  // keyed lookups in fixed registration order, so facts cannot depend on it.
  static std::deque<AlgorithmDef> registry{
      {{"rooted_sync", "RootedSyncDisp", "Theorem 6.1", false, true},
       &makeRootedSync, nullptr},
      {{"rooted_async", "RootedAsyncDisp", "Theorem 7.1", true, true},
       nullptr, &makeAsyncAlgo<RootedAsyncDispersion>},
      {{"general_sync", "GeneralSync(doubling)", "§8.1 / Table 1 row [36]", false,
        false},
       &makeSyncAlgo<GeneralSyncDispersion>, nullptr},
      {{"general_async", "GeneralAsync(Thm8.2)", "Theorem 8.2", true, false},
       nullptr, &makeAsyncAlgo<GeneralAsyncDispersion>},
      {{"ks_sync", "KS-sync", "baseline [24], O(min{m, kΔ})", false, true},
       &makeSyncAlgo<KsSyncDispersion>, nullptr},
      {{"ks_async", "KS-async", "baseline [24], O(min{m, kΔ})", true, true},
       nullptr, &makeAsyncAlgo<KsAsyncDispersion>},
  };
  return registry;
}

}  // namespace

const std::deque<AlgorithmDef>& algorithmRegistry() { return mutableRegistry(); }

const AlgorithmDef* findAlgorithm(std::string_view name) {
  for (const AlgorithmDef& def : algorithmRegistry()) {
    if (name == def.traits.key || name == def.traits.display) return &def;
  }
  return nullptr;
}

const AlgorithmDef& algorithmDef(std::string_view name) {
  if (const AlgorithmDef* def = findAlgorithm(name)) return *def;
  std::string known;
  for (const AlgorithmDef& def : algorithmRegistry()) {
    if (!known.empty()) known += ", ";
    known += def.traits.key;
  }
  throw std::invalid_argument("unknown algorithm '" + std::string(name) +
                              "' — known: " + known);
}

std::vector<std::string> algorithmKeys() {
  std::vector<std::string> keys;
  keys.reserve(algorithmRegistry().size());
  for (const AlgorithmDef& def : algorithmRegistry()) keys.push_back(def.traits.key);
  return keys;
}

void registerAlgorithm(AlgorithmDef def) {
  if (def.traits.key.empty()) {
    throw std::invalid_argument("algorithm registration needs a key");
  }
  if (findAlgorithm(def.traits.key) != nullptr ||
      (!def.traits.display.empty() && findAlgorithm(def.traits.display) != nullptr)) {
    throw std::invalid_argument("algorithm '" + def.traits.key +
                                "' is already registered");
  }
  const bool hasSync = def.makeSync != nullptr;
  const bool hasAsync = def.makeAsync != nullptr;
  if (hasSync == hasAsync || hasAsync != def.traits.isAsync) {
    throw std::invalid_argument(
        "algorithm '" + def.traits.key +
        "' must provide exactly one factory matching traits.isAsync");
  }
  mutableRegistry().push_back(std::move(def));
}

const std::string& algorithmDisplayName(std::string_view name) {
  return algorithmDef(name).traits.display;
}

}  // namespace disp
