#pragma once
// Observable run sessions over every dispersion algorithm in the library.
// This is the public API examples, benches and the exp/ driver use:
//
//   Graph g = makeGraph("er", 256, seed);
//   Placement p = rootedPlacement(g, 128, 0, seed);
//   RunOptions opts;
//   opts.algorithm = "rooted_sync";          // registry key (algo/registry.hpp)
//   opts.onEvent = [](const TraceEvent& e) { ... };   // typed trace stream
//   opts.captureTrajectory = true;           // settled/moves time series
//   RunResult r = runSession(g, p, opts);
//
// Algorithms are resolved by name through the string-keyed registry
// (algo/registry.hpp); `disp_bench --list` and algorithmKeys() enumerate
// them.  Paper mapping of the six built-ins:
//   rooted_sync   — RootedSyncDisp, Theorem 6.1 (O(k) rounds).  For k < 7
//                   the seeker machinery is vacuous; falls back to ks_sync
//                   (documented in DESIGN.md §4.5).
//   rooted_async  — RootedAsyncDisp, Theorem 7.1 (O(k log k) epochs).
//   general_sync  — §8.1-style multi-source dispersion with KS subsumption
//                   (doubling growing phase; with ℓ=1 this is the Sudo-style
//                   O(k log k) baseline of Table 1).
//   general_async — Theorem 8.2: the RootedAsyncDisp growing phase composed
//                   with KS subsumption, collapse walks and squatting, in
//                   the ASYNC model (O(k log k) epochs).
//   ks_sync/ks_async — the O(min{m, kΔ}) group-DFS baseline (Table 1 rows
//                   [24]); both require rooted placements.
//
// Observability (DESIGN.md §7): RunOptions carries optional observer hooks
// — an onEvent stream of typed TraceEvents (Move, Settle, Meeting, Subsume,
// Collapse, Freeze, OscillationDuty), sampled onRound/onActivation
// snapshots with settled counts and a positions view, an early-stop
// predicate, and a captured trajectory on RunResult.  Observers never
// perturb the run: an observed session reports facts identical to the
// unobserved one at the same seed, and the zero-observer path is the exact
// pre-observer hot path.
//
// The historical enum-keyed facade (Algorithm / RunSpec / runDispersion)
// remains as a thin compatibility wrapper over runSession.

#include <cstdint>
#include <functional>
#include <string>

#include "algo/placement.hpp"
#include "core/metrics.hpp"
#include "core/trace.hpp"
#include "graph/graph.hpp"

namespace disp {

/// Everything a run session needs: the algorithm (registry key or display
/// name), model knobs, and the optional observer hooks.
struct RunOptions {
  std::string algorithm = "rooted_sync";
  /// ASYNC only: round_robin | shuffled | uniform | weighted[:SKEW[:SLOW]].
  std::string scheduler = "round_robin";
  std::uint64_t seed = 1;
  /// Safety cap on rounds (SYNC) / activations (ASYNC); 0 = auto.
  std::uint64_t limit = 0;
  /// Intra-run worker lanes for SYNC round execution (staging + commit):
  /// 1 = serial (default), 0 = hardware concurrency, N = exactly N.  Facts,
  /// traces and snapshots are byte-identical for every value (DESIGN.md
  /// §9).  ASYNC algorithms ignore this — their activation stream is
  /// inherently sequential.
  unsigned runThreads = 1;
  /// Fault load (core/faults.hpp grammar; DESIGN.md §11): "none", or e.g.
  /// "crash:rate=0.25,restart=64", "churn:edges=4,every=32",
  /// "silent:count=2".  The schedule is materialized from this spec, the
  /// instance (graph, k) and `seed` — deterministic and runThreads-
  /// invariant.  Under a fault load the run cannot hard-fail: the
  /// round/activation cap becomes RunResult::limitHit, a protocol
  /// invariant violation becomes RunResult::protocolError, and
  /// RunResult::recovered/recoveredAt score self-stabilization.
  std::string faults = "none";

  // --- observability (all optional; see core/trace.hpp) ---
  /// Typed trace-event stream, emitted by the engine and the protocol.
  std::function<void(const TraceEvent&)> onEvent;
  /// Sampled snapshots: onRound fires for SYNC algorithms, onActivation
  /// for ASYNC ones (every sampleEvery rounds/activations, plus a final
  /// off-cadence snapshot at run end).
  std::function<void(const StepSnapshot&)> onRound;
  std::function<void(const StepSnapshot&)> onActivation;
  /// Snapshot / trajectory cadence; 1 = every round/activation.
  std::uint64_t sampleEvery = 1;
  /// Early-stop predicate, checked at the sampling cadence: return true to
  /// end the run; RunResult::stoppedEarly reports the truncation.
  std::function<bool(const StepSnapshot&)> stopWhen;
  /// Capture a {time, settled, totalMoves} series at the sampling cadence
  /// into RunResult::trajectory.
  bool captureTrajectory = false;
};

/// Runs the named algorithm as an observable session and reports the
/// outcome.  Throws std::invalid_argument on an unknown algorithm or a
/// spec/placement mismatch and std::runtime_error if the limit is hit
/// (protocol bug or too-small cap).
///
/// Thread safety: every piece of mutable state (engine, fibers, scheduler,
/// memory ledger, Rngs) is constructed per call, and Graph is immutable
/// after build, so concurrent calls — including on a shared Graph — are
/// safe and deterministic per seed (the exp/ BatchRunner relies on this;
/// see DESIGN.md §5).  Observer hooks are invoked on the calling thread.
[[nodiscard]] RunResult runSession(const Graph& g, const Placement& placement,
                                   const RunOptions& opts);

// ------------------------------------------------------------ scenario API

/// One-call scenario runner over the parsed spec grammar (DESIGN.md §8):
///
///   RunResult r = runScenario("grid:rows=16,cols=16", "adversarial:far",
///                             /*k=*/128, opts);
///
/// `graphSpec` is a GraphSpec string (graph/spec.hpp: legacy family
/// aliases, parameterized families, or file:PATH); `placementSpec` a
/// PlacementSpec string (algo/placement.hpp).  `n` sizes graph specs that
/// don't pin their own node count; 0 applies the Table 1 default n = 2k.
/// The run seed (opts.seed) also drives graph construction and placement,
/// exactly like the experiment driver's per-replicate seeds.
[[nodiscard]] RunResult runScenario(const std::string& graphSpec,
                                    const std::string& placementSpec,
                                    std::uint32_t k, const RunOptions& opts = {},
                                    std::uint32_t n = 0);

// ------------------------------------------------------------- compat shim

/// Historical enum-keyed algorithm menu; prefer the registry keys.
enum class Algorithm {
  RootedSync,
  RootedAsync,
  GeneralSync,
  GeneralAsync,
  KsSync,
  KsAsync,
};

/// Historical run spec; prefer RunOptions.
struct RunSpec {
  Algorithm algorithm = Algorithm::RootedSync;
  std::string scheduler = "round_robin";
  std::uint64_t seed = 1;
  std::uint64_t limit = 0;
};

/// Thin compatibility wrapper over runSession (no observers).
[[nodiscard]] RunResult runDispersion(const Graph& g, const Placement& placement,
                                      const RunSpec& spec);

/// Registry key of a legacy enum value ("rooted_sync", ...).
[[nodiscard]] const std::string& algorithmKey(Algorithm a);
/// Historical display name ("RootedSyncDisp", ...); registry-backed.
[[nodiscard]] const std::string& algorithmName(Algorithm a);
[[nodiscard]] bool isAsync(Algorithm a);

}  // namespace disp
