#pragma once
// One-call facade over every dispersion algorithm in the library.  This is
// the public API examples and benches use:
//
//   Graph g = makeFamily({"er", 256, seed});
//   Placement p = rootedPlacement(g, 128, 0, seed);
//   RunResult r = runDispersion(g, p, {Algorithm::RootedSync});
//
// Algorithm menu (paper mapping):
//   RootedSync   — RootedSyncDisp, Theorem 6.1 (O(k) rounds).  For k < 7
//                  the seeker machinery is vacuous; falls back to KsSync
//                  (documented in DESIGN.md §4.5).
//   RootedAsync  — RootedAsyncDisp, Theorem 7.1 (O(k log k) epochs).
//   GeneralSync  — §8.1-style multi-source dispersion with KS subsumption
//                  (doubling growing phase; with ℓ=1 this is the Sudo-style
//                  O(k log k) baseline of Table 1).
//   GeneralAsync — Theorem 8.2: the RootedAsyncDisp growing phase composed
//                  with KS subsumption, collapse walks and squatting, in
//                  the ASYNC model (O(k log k) epochs).
//   KsSync/KsAsync — the O(min{m, kΔ}) group-DFS baseline (Table 1 rows
//                  [24]); KsSync/KsAsync require rooted placements.

#include <cstdint>
#include <string>

#include "algo/placement.hpp"
#include "core/metrics.hpp"
#include "graph/graph.hpp"

namespace disp {

enum class Algorithm {
  RootedSync,
  RootedAsync,
  GeneralSync,
  GeneralAsync,
  KsSync,
  KsAsync,
};

struct RunSpec {
  Algorithm algorithm = Algorithm::RootedSync;
  /// ASYNC only: round_robin | shuffled | uniform | weighted.
  std::string scheduler = "round_robin";
  std::uint64_t seed = 1;
  /// Safety cap on rounds (SYNC) / activations (ASYNC); 0 = auto.
  std::uint64_t limit = 0;
};

/// Runs the requested algorithm to completion and reports the outcome.
/// Throws std::invalid_argument on spec/placement mismatch and
/// std::runtime_error if the limit is hit (protocol bug or too-small cap).
///
/// Thread safety: every piece of mutable state (engine, fibers, scheduler,
/// memory ledger, Rngs) is constructed per call, and Graph is immutable
/// after build, so concurrent calls — including on a shared Graph — are
/// safe and deterministic per seed (the exp/ BatchRunner relies on this;
/// see DESIGN.md §5).
[[nodiscard]] RunResult runDispersion(const Graph& g, const Placement& placement,
                                      const RunSpec& spec);

[[nodiscard]] std::string algorithmName(Algorithm a);
[[nodiscard]] bool isAsync(Algorithm a);

}  // namespace disp
