#pragma once
// Initial configurations (paper §2): rooted — all k agents on one node;
// general — agents on at least two nodes.  Placements pair with an agent ID
// assignment; IDs are unique and drawn from [1, k^O(1)] (we use a seeded
// injection into [1, 4k] by default so ID bit-width matches the paper's
// O(log k) assumption).

#include <cstdint>
#include <vector>

#include "core/world.hpp"
#include "graph/graph.hpp"

namespace disp {

struct Placement {
  std::vector<NodeId> positions;  // per agent index
  std::vector<AgentId> ids;       // per agent index, unique
};

/// All k agents on `root`.
[[nodiscard]] Placement rootedPlacement(const Graph& g, std::uint32_t k, NodeId root,
                                        std::uint64_t seed);

/// Agents split across `clusters` distinct random nodes, sizes as equal as
/// possible (the paper's general initial configuration with ℓ = clusters).
[[nodiscard]] Placement clusteredPlacement(const Graph& g, std::uint32_t k,
                                           std::uint32_t clusters, std::uint64_t seed);

/// Each agent on its own random node (already a dispersion configuration —
/// the boundary case algorithms must still terminate on).
[[nodiscard]] Placement scatteredPlacement(const Graph& g, std::uint32_t k,
                                           std::uint64_t seed);

/// Unique IDs for k agents: a random injection into [1, 4k].
[[nodiscard]] std::vector<AgentId> randomIds(std::uint32_t k, std::uint64_t seed);

}  // namespace disp
