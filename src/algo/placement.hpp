#pragma once
// Initial configurations (paper §2): rooted — all k agents on one node;
// general — agents on at least two nodes.  Placements pair with an agent ID
// assignment; IDs are unique and drawn from [1, k^O(1)] (we use a seeded
// injection into [1, 4k] by default so ID bit-width matches the paper's
// O(log k) assumption).
//
// PlacementSpec is the parsed, printable form — the placement half of the
// Scenario API (DESIGN.md §8).  Grammar:
//
//   rooted                all k agents on node 0 (the Table 1 default)
//   rooted:root=5         ... on an explicit node
//   clusters:l=8          ℓ equal clusters on random distinct nodes
//   spread                every agent on its own random node
//   adversarial:far       ℓ (default 2) diameter-separated clusters — the
//                         lower-bound-style "maximally remote sources"
//                         start (adversarial:far,l=4 for more clusters)
//   adversarial:frontier  ℓ (default 2) clusters on the deepest BFS levels
//                         from node 0 — every cluster starts a full
//                         eccentricity away from the id-0 corner the
//                         tree-growing phase expands from
//   adversarial:hot       all k agents co-located on a maximum-degree node
//                         (O(Δ)-probing stress)
//
// The adversarial positions are deterministic functions of the graph
// (farthest-point traversal / argmax degree, lowest node id on ties); the
// seed only drives the agent-ID injection.  parse(toString()) round-trips.

#include <cstdint>
#include <string>
#include <vector>

#include "core/world.hpp"
#include "graph/graph.hpp"

namespace disp {

struct Placement {
  std::vector<NodeId> positions;  // per agent index
  std::vector<AgentId> ids;       // per agent index, unique
};

/// All k agents on `root`.
[[nodiscard]] Placement rootedPlacement(const Graph& g, std::uint32_t k, NodeId root,
                                        std::uint64_t seed);

/// Agents split across `clusters` distinct random nodes, sizes as equal as
/// possible (the paper's general initial configuration with ℓ = clusters).
[[nodiscard]] Placement clusteredPlacement(const Graph& g, std::uint32_t k,
                                           std::uint32_t clusters, std::uint64_t seed);

/// Each agent on its own random node (already a dispersion configuration —
/// the boundary case algorithms must still terminate on).
[[nodiscard]] Placement scatteredPlacement(const Graph& g, std::uint32_t k,
                                           std::uint64_t seed);

/// ℓ clusters on pairwise-remote nodes: the first two centers are the ends
/// of a longest shortest path (distance = diameter), further centers are
/// added by farthest-point traversal.  For l = 2 the centers are exactly
/// diameter apart.  Positions are deterministic; seed drives only the IDs.
[[nodiscard]] Placement adversarialFarPlacement(const Graph& g, std::uint32_t k,
                                                std::uint32_t clusters,
                                                std::uint64_t seed);

/// ℓ clusters on the nodes BFS from node 0 reaches last: candidates are
/// the reachable nodes sorted by (distance from node 0 descending, node id
/// ascending) and the first ℓ become centers.  Positions are deterministic;
/// seed drives only the IDs.
[[nodiscard]] Placement adversarialFrontierPlacement(const Graph& g, std::uint32_t k,
                                                     std::uint32_t clusters,
                                                     std::uint64_t seed);

/// All k agents on a maximum-degree node (lowest id on ties).
[[nodiscard]] Placement adversarialHotPlacement(const Graph& g, std::uint32_t k,
                                                std::uint64_t seed);

/// Unique IDs for k agents: a random injection into [1, 4k].
[[nodiscard]] std::vector<AgentId> randomIds(std::uint32_t k, std::uint64_t seed);

/// A parsed placement spec (see file header for the grammar).
class PlacementSpec {
 public:
  enum class Kind {
    Rooted,
    Clusters,
    Spread,
    AdversarialFar,
    AdversarialFrontier,
    AdversarialHot,
  };

  /// Throws std::invalid_argument on an unknown kind or parameter.
  [[nodiscard]] static PlacementSpec parse(const std::string& text);

  /// Canonical form (defaults elided); parse(toString()) round-trips.
  [[nodiscard]] std::string toString() const;

  [[nodiscard]] Kind kind() const { return kind_; }
  /// Start-node count ℓ: 1 for rooted/hot, the l parameter for
  /// clusters/far/frontier, 0 (= k, one per agent) for spread.
  [[nodiscard]] std::uint32_t clusterCount() const;
  /// Short table-cell label; matches the historical ℓ column for the
  /// rooted/clusters kinds ("1", "8", ...), names the others.
  [[nodiscard]] std::string tableLabel() const;

  /// Places k agents on g.  Seed-deterministic like the free functions.
  [[nodiscard]] Placement place(const Graph& g, std::uint32_t k,
                                std::uint64_t seed) const;

 private:
  Kind kind_ = Kind::Rooted;
  std::uint32_t clusters_ = 1;  // Clusters / AdversarialFar / AdversarialFrontier
  NodeId root_ = 0;             // Rooted
};

}  // namespace disp
