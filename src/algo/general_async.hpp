#pragma once
// GeneralAsyncDisp — the paper's Theorem 8.2 algorithm: dispersion of k <= n
// agents from a *general* initial configuration (ℓ occupied nodes) in
// O(k log k) epochs with O(log(k+Δ)) bits per agent, in the ASYNC model,
// under any fair scheduler.
//
// Composition (paper §8.2): each of the ℓ groups runs the RootedAsyncDisp
// growing phase — Async_Probe helper doubling, Guest_See_Off, and the §4.3
// in-transit-helper hazard handling, all label-scoped — while meetings
// between groups are resolved by KS subsumption exactly as in the SYNC
// general algorithm (general_sync.*): sizes are compared, the loser freezes
// and is collapsed by an Euler walk over its DFS tree (or collapses itself
// and marches to the winner), and forward-move collisions on an empty node
// are resolved by the squatting rule (the larger tree squats, the smaller
// retreats).
//
// ASYNC-specific structure (one fiber per agent, as the engine requires):
//  * every agent runs agentFiber(); a group leader's fiber enters
//    leaderLoop() and falls back to plain order-following participant mode
//    when its group parks (frozen), dissolves, or fully disperses;
//  * a dispersed group's settled ex-leader stays its *anchor*: marching
//    loser groups navigate to it, and it absorbs them and hands leadership
//    to the largest-ID newcomer, which resumes the DFS from the anchor's
//    node (the SYNC version's leader re-election, split across fibers);
//  * all freeze decisions (check peer + set frozen) happen within a single
//    activation — no suspension point in between — so two groups can never
//    freeze each other concurrently (the SYNC version gets the same
//    atomicity from its round structure);
//  * group moves reassemble fully before any collision/retreat decision,
//    so no follower can be stranded mid-edge by a retreat order.
//
// Documented simplifications carried over from general_sync.* (DESIGN.md):
// group contexts and size comparison stand in for KS junction-locking, and
// orphan marches route by engine-side BFS toward the winner's anchor with
// every hop charged as a real move.

#include <cstdint>
#include <vector>

#include "algo/probe_index.hpp"
#include "core/async_engine.hpp"
#include "core/memory.hpp"
#include "core/metrics.hpp"
#include "graph/graph.hpp"

namespace disp {

struct GeneralAsyncStats {
  std::uint64_t forwardMoves = 0;
  std::uint64_t backtracks = 0;
  std::uint64_t probes = 0;
  std::uint64_t probeIterations = 0;
  std::uint64_t guestsRecruited = 0;
  std::uint64_t seeOffSweeps = 0;
  std::uint64_t meetings = 0;
  std::uint64_t subsumptions = 0;
  std::uint64_t collapseHops = 0;
  std::uint64_t retreats = 0;  // forward-move collisions resolved by retreat
  std::uint64_t handoffs = 0;  // leadership re-elections after an absorb
};

class GeneralAsyncDispersion {
 public:
  /// Groups are inferred from co-location in the engine's initial world:
  /// one group per occupied node (any ℓ in [1, k]).
  explicit GeneralAsyncDispersion(AsyncEngine& engine);

  /// Installs one fiber per agent; call engine.run() afterwards.
  void start();

  [[nodiscard]] bool dispersed() const;
  [[nodiscard]] const GeneralAsyncStats& stats() const noexcept { return stats_; }
  [[nodiscard]] std::uint64_t agentBits(AgentIx a) const;
  [[nodiscard]] std::uint32_t groupCount() const {
    return static_cast<std::uint32_t>(groups_.size());
  }

  /// Test/debug introspection of an agent's lifecycle state.
  struct AgentSnapshot {
    bool settled;
    bool isGuest;
    NodeId settledAt;
    std::uint32_t label;
  };
  [[nodiscard]] AgentSnapshot snapshot(AgentIx a) const {
    return {st_[a].settled, st_[a].isGuest, st_[a].settledAt, st_[a].label};
  }

  /// Test/debug introspection of a group's lifecycle state.
  struct GroupSnapshot {
    std::uint32_t total, unsettled, treeSize;
    bool frozen, parked, dissolved, marching;
    AgentIx leader;
    const char* phase;
  };
  [[nodiscard]] GroupSnapshot groupSnapshot(std::uint32_t gi) const {
    const auto& g = groups_[gi];
    return {g.total, g.unsettled, g.treeSize, g.frozen, g.parked, g.dissolved,
            g.marching, g.leader, g.phase};
  }

 private:
  using Label = std::uint32_t;
  static constexpr Label kNoLabel = static_cast<Label>(-1);
  static constexpr std::uint32_t kNoGroup = static_cast<std::uint32_t>(-1);

  struct AgentState {
    Label label = kNoLabel;
    bool settled = false;
    bool isGuest = false;
    NodeId settledAt = kInvalidNode;  // simulation-side assertion key
    Port parentPort = kNoPort;        // settler: DFS-tree parent

    // --- settler tree record (collapse-walk child chain, general_sync) ---
    Port firstChildPort = kNoPort;
    Port latestChildPort = kNoPort;
    Port nextSiblingPort = kNoPort;

    // --- settler blackboard (the α(w).* variables + probe counters) ---
    Port checked = 0;          // Async_Probe progress at this node
    Port nextFound = kNoPort;  // smallest empty port reported this iteration
    std::uint32_t outCount = 0;
    std::uint32_t retCount = 0;
    std::uint32_t guestExpected = 0;
    std::uint32_t guestArrived = 0;
    std::uint32_t seeOffExpected = 0;
    std::uint32_t seeOffReturned = 0;

    // --- orders written by the leader / probers (communicate phase) ---
    Port orderProbePort = kNoPort;   // follower/guest: probe this port of w
    Port orderGuestGoTo = kNoPort;   // settler at a probed neighbor: go to w
    bool orderGoHome = false;        // guest: exit w via its own entry port
    Port orderChaperone = kNoPort;   // guest: escort partner via this port
    Port orderEscort = kNoPort;      // settler α(w): escort the last guest
    Port orderFollow = kNoPort;      // follower: group move via this port

    // --- guest / prober bookkeeping ---
    Port guestEntryPort = kNoPort;  // port of w through which it entered w
    bool needRegister = false;      // guest must report arrival at w
    bool needReport = false;        // prober must report results at w
    bool reportEmpty = false;
    bool reportGuest = false;
    Label reportMet = kNoLabel;     // smallest foreign label seen, if any
  };

  struct GroupCtx {
    Label label = 0;
    AgentIx leader = kNoAgent;  // active leader, or the dormant anchor
    std::uint32_t total = 0;    // agents currently belonging to the group
    std::uint32_t unsettled = 0;
    std::uint32_t treeSize = 0;
    bool frozen = false;     // a winner ordered this group to halt
    bool parked = false;     // leader fiber acknowledged the freeze
    bool dissolved = false;  // collapsed into another tree
    std::uint32_t absorbedBy = 0;   // valid once dissolved
    bool marching = false;          // self-collapsed, chasing the winner
    std::uint32_t marchTarget = 0;  // initial winner (chain-resolved live)
    std::vector<Label> pending;     // meetings skipped while the peer was busy
    const char* phase = "init";     // debug/test introspection only
  };

  // --- fibers -----------------------------------------------------------
  Task agentFiber(AgentIx self);
  /// The whole DFS life of group `gi` while `self` leads it.  Returns when
  /// the group parks, dissolves, or disperses; the caller then continues in
  /// participant mode.
  Task leaderLoop(std::uint32_t gi, AgentIx self);
  /// Handles one pending participant order, if any (probe errand, guest
  /// trip, see-off, follow).  May span several activations internally;
  /// returns with the current activation still owned by the caller.
  Task participantStep(AgentIx self);

  // --- leader sub-phases ------------------------------------------------
  Task probePhase(std::uint32_t gi, AgentIx self);  // result in probeNext_ / probeMet_
  Task seeOffPhase(std::uint32_t gi, AgentIx self);
  Task leaderProbeTrip(std::uint32_t gi, AgentIx self, Port port);
  Task moveGroup(std::uint32_t gi, Port p);  // order, move, fully reassemble
  Task sideTripSetNextSibling(std::uint32_t gi, AgentIx self, Port prevChildPort,
                              Port newChildPort);

  // --- subsumption (mirrors general_sync) -------------------------------
  Task handleMeeting(std::uint32_t gi, Label other, Port metPort);
  Task awaitParked(std::uint32_t gi, std::uint32_t loser);
  Task collapseForeign(std::uint32_t gi, std::uint32_t loser, Port metPort);
  Task collapseVisit(std::uint32_t gi, Label loserLabel, Port exclPort);
  Task selfCollapseAndMarch(std::uint32_t gi, std::uint32_t winner, Port metPort);
  Task absorbMarchers(std::uint32_t gi);
  Task marchToward(std::uint32_t gi, AgentIx anchor);
  Task retryPending(std::uint32_t gi);
  Task rescanVisit(std::uint32_t gi, AgentIx self);

  // --- dormant-anchor duties (runs inside participant mode) -------------
  void dormantDuties(AgentIx self);

  /// What a probe saw at the probed node, plus any recruitment performed.
  struct ProbeSight {
    AgentIx settler = kNoAgent;  // own-label home settler (now recruited)
    Label met = kNoLabel;        // smallest foreign label present, if any
    bool empty = false;          // prober stands there alone
  };
  /// Communicate step of a probe at the prober's current node: classify
  /// and recruit.  Shared by participant probers and leader trips.
  ProbeSight observeAndRecruit(AgentIx self, Label label);
  /// Relabel + dissolve a fully consolidated marcher group into gi.
  void absorbGroup(std::uint32_t gi, std::uint32_t mi);

  [[nodiscard]] std::uint32_t resolveGroup(std::uint32_t g) const;
  [[nodiscard]] AgentIx homeSettlerAt(NodeId v, Label label) const;
  [[nodiscard]] AgentIx anySettlerAt(NodeId v) const;  // any label
  [[nodiscard]] const std::vector<AgentIx>& availableProbersAt(NodeId w,
                                                               Label label) const;
  [[nodiscard]] bool groupConsolidatedAt(Label label, NodeId v) const;
  [[nodiscard]] std::uint32_t globalUnsettled() const;
  void settle(std::uint32_t gi, AgentIx a, NodeId at, Port parentPort);
  void adoptAt(std::uint32_t gi, Label fromLabel, NodeId v);  // relabel unsettled
  void recordMemory();

  AsyncEngine& engine_;
  std::vector<AgentState> st_;
  /// Scratch for availableProbersAt (consumed before any co_await).
  mutable std::vector<AgentIx> probersScratch_;
  /// Followers + guest helpers bucketed by node (label-agnostic; the query
  /// filters labels): availableProbersAt reads the w bucket instead of
  /// scanning every occupant of w (DESIGN.md §9.4).
  IdleProberIndex proberIdx_;
  /// Per-label unsettled count + position fingerprint: groupConsolidatedAt
  /// drops from an O(k) all-agent scan (run on every reassembly-wait
  /// activation) to two O(1) lookups.  Labels never outlive the initial
  /// group array, so the index is sized once in the constructor.
  GroupPositionIndex posIdx_;
  std::vector<GroupCtx> groups_;
  GeneralAsyncStats stats_;
  BitWidths widths_;

  // Per-agent: group this fiber must start (or resume) leading, if any.
  std::vector<std::uint32_t> leadQueued_;
  // Per-agent: group this settled ex-leader anchors, if any.
  std::vector<std::uint32_t> anchorOf_;

  // Per-group scratch (protocol-local values surfaced for the fibers).
  std::vector<Port> probeNext_;
  std::vector<std::vector<std::pair<Label, Port>>> probeMet_;
  std::vector<std::uint8_t> rescanFound_;  // per group: two can rescan at once
};

}  // namespace disp
