#include "algo/async_rooted.hpp"

#include <algorithm>

#include "algo/protocol_common.hpp"
#include "util/check.hpp"

namespace disp {

RootedAsyncDispersion::RootedAsyncDispersion(AsyncEngine& engine)
    : engine_(engine),
      st_(engine.agentCount()),
      proberIdx_(engine.agentCount(), engine.graph().nodeCount()),
      widths_(BitWidths::forRun(4ULL * engine.agentCount(), engine.graph().maxDegree(),
                                engine.agentCount())) {
  const NodeId root = engine_.positionOf(0);
  for (AgentIx a = 0; a < engine_.agentCount(); ++a) {
    DISP_REQUIRE(engine_.positionOf(a) == root,
                 "RootedAsyncDisp expects a rooted initial configuration");
    if (leader_ == kNoAgent || engine_.idOf(a) > engine_.idOf(leader_)) leader_ = a;
    proberIdx_.insert(a, root);  // everyone starts unsettled
  }
  groupSize_ = engine_.agentCount();
  engine_.setMoveHook(
      [this](AgentIx a, NodeId /*from*/, NodeId to) { proberIdx_.relocate(a, to); });
}

void RootedAsyncDispersion::start() {
  for (AgentIx a = 0; a < engine_.agentCount(); ++a) {
    engine_.setAgentFiber(a, a == leader_ ? leaderFiber(a) : participantFiber(a));
  }
}

bool RootedAsyncDispersion::dispersed() const {
  std::vector<NodeId> where;
  for (AgentIx a = 0; a < engine_.agentCount(); ++a) {
    if (!st_[a].settled || st_[a].isGuest) return false;
    if (engine_.positionOf(a) != st_[a].settledAt) return false;
    where.push_back(engine_.positionOf(a));
  }
  return isDispersed(where);
}

std::uint64_t RootedAsyncDispersion::agentBits(AgentIx a) const {
  // id + settled + guest flags + parent/checked/next + order slots (ports)
  // + probe counters (bounded by k) + entry port.
  std::uint64_t bits = widths_.id + 4 + 9ULL * widths_.port + 6ULL * widths_.count;
  if (a == leader_) bits += widths_.count + widths_.port;  // groupSize + next
  return bits;
}

void RootedAsyncDispersion::recordMemory() {
  for (AgentIx a = 0; a < engine_.agentCount(); ++a) {
    engine_.memory().record(a, agentBits(a));
  }
}

AgentIx RootedAsyncDispersion::homeSettlerAt(NodeId v) const {
  for (const AgentIx a : engine_.agentsAt(v)) {
    if (st_[a].settled && !st_[a].isGuest && st_[a].settledAt == v) return a;
  }
  return kNoAgent;
}

const std::vector<AgentIx>& RootedAsyncDispersion::availableProbersAt(
    NodeId w, AgentIx self) const {
  // A(w) \ {α(w)}: unsettled agents and guest helpers, idle (no pending
  // orders), ascending by ID so the leader (max ID) is drafted last.
  // The index bucket already holds exactly the followers and guests at w;
  // only the fast-changing order flags are filtered here (DESIGN.md §9.4).
  // Scratch reuse is safe: every caller consumes the list before its next
  // co_await (single-threaded engine), so no interleaved call clobbers it.
  std::vector<AgentIx>& avail = probersScratch_;
  avail.clear();
  for (const AgentIx a : proberIdx_.membersAt(w)) {
    const AgentState& s = st_[a];
    if (s.orderProbePort != kNoPort || s.needReport || s.needRegister) continue;
    if (s.orderGoHome || s.orderChaperone != kNoPort) continue;
    avail.push_back(a);
  }
  std::sort(avail.begin(), avail.end(),
            [&](AgentIx a, AgentIx b) { return engine_.idOf(a) < engine_.idOf(b); });
#ifndef NDEBUG
  // Cross-check the index against the naive occupant scan it replaced.
  std::vector<AgentIx> naive;
  for (const AgentIx a : engine_.agentsAt(w)) {
    const AgentState& s = st_[a];
    const bool follower = !s.settled;
    const bool guest = s.settled && s.isGuest;
    if (!follower && !guest) continue;
    if (s.orderProbePort != kNoPort || s.needReport || s.needRegister) continue;
    if (s.orderGoHome || s.orderChaperone != kNoPort) continue;
    naive.push_back(a);
  }
  std::sort(naive.begin(), naive.end(),
            [&](AgentIx a, AgentIx b) { return engine_.idOf(a) < engine_.idOf(b); });
  DISP_CHECK(avail == naive, "IdleProberIndex drifted from the world");
#endif
  (void)self;
  return avail;
}

// ----------------------------------------------------------- participant

Task RootedAsyncDispersion::participantFiber(AgentIx self) {
  for (;;) {
    co_await engine_.nextActivation(self);
    AgentState& me = st_[self];

    // --- prober errand (followers and guests) ---
    if (me.orderProbePort != kNoPort) {
      const Port p = me.orderProbePort;
      me.orderProbePort = kNoPort;
      engine_.move(self, p);  // arrive at the neighbor u_i
      co_await engine_.nextActivation(self);
      // Communicate at u_i: a settled (non-guest) occupant means "not fully
      // unsettled"; recruit it as a guest helper.
      const NodeId ui = engine_.positionOf(self);
      AgentIx settler = kNoAgent;
      for (const AgentIx b : engine_.agentsAt(ui)) {
        if (st_[b].settled && !st_[b].isGuest && st_[b].settledAt == ui) settler = b;
      }
      me.reportEmpty = (settler == kNoAgent);
      me.reportGuest = (settler != kNoAgent);
      me.reportPort = engine_.pinOf(self);  // not meaningful; port at u_i toward w
      if (settler != kNoAgent) {
        st_[settler].orderGuestGoTo = engine_.pinOf(self);  // route to w
        st_[settler].isGuest = true;
        proberIdx_.insert(settler, ui);  // guests are prober-eligible
      }
      engine_.move(self, engine_.pinOf(self));  // return to w
      me.needReport = true;
      continue;
    }

    // --- report probe results at w (next activation after returning) ---
    if (me.needReport) {
      me.needReport = false;
      const NodeId w = engine_.positionOf(self);
      const AgentIx aw = homeSettlerAt(w);
      DISP_CHECK(aw != kNoAgent, "probe report: no settler at w");
      AgentState& bb = st_[aw];
      ++bb.retCount;
      if (me.reportEmpty) {
        // The port of w this prober was assigned is recoverable from its
        // own pin: it returned through the same edge.
        const Port portOfW = engine_.pinOf(self);
        if (bb.nextFound == kNoPort || portOfW < bb.nextFound) bb.nextFound = portOfW;
      }
      if (me.reportGuest) ++bb.guestExpected;
      me.reportEmpty = me.reportGuest = false;
      continue;
    }

    // --- settled agent recruited as guest: travel to w ---
    if (me.orderGuestGoTo != kNoPort) {
      const Port p = me.orderGuestGoTo;
      me.orderGuestGoTo = kNoPort;
      me.needRegister = true;
      engine_.move(self, p);
      continue;
    }
    if (me.needRegister) {
      me.needRegister = false;
      me.guestEntryPort = engine_.pinOf(self);  // port of w back toward home
      const AgentIx aw = homeSettlerAt(engine_.positionOf(self));
      DISP_CHECK(aw != kNoAgent, "guest registration: no settler at w");
      ++st_[aw].guestArrived;
      continue;
    }

    // --- see-off: guest walking home ---
    if (me.orderGoHome) {
      me.orderGoHome = false;
      engine_.move(self, me.guestEntryPort);
      me.guestEntryPort = kNoPort;
      me.isGuest = false;  // home again (position == settledAt)
      proberIdx_.erase(self);
      continue;
    }

    // --- see-off: guest chaperoning a partner to the partner's home ---
    if (me.orderChaperone != kNoPort) {
      const Port p = me.orderChaperone;
      me.orderChaperone = kNoPort;
      engine_.move(self, p);
      // Wait at the partner's home until the partner (a settled non-guest
      // occupant) is present, then return to w and report.
      for (;;) {
        co_await engine_.nextActivation(self);
        const NodeId here = engine_.positionOf(self);
        if (homeSettlerAt(here) != kNoAgent) {
          engine_.move(self, engine_.pinOf(self));
          break;
        }
      }
      co_await engine_.nextActivation(self);
      const AgentIx aw = homeSettlerAt(engine_.positionOf(self));
      DISP_CHECK(aw != kNoAgent, "chaperone report: no settler at w");
      ++st_[aw].seeOffReturned;
      continue;
    }

    // --- settler α(w) escorting the final guest home ---
    if (me.orderEscort != kNoPort) {
      const Port p = me.orderEscort;
      me.orderEscort = kNoPort;
      engine_.move(self, p);
      for (;;) {
        co_await engine_.nextActivation(self);
        const NodeId here = engine_.positionOf(self);
        if (homeSettlerAt(here) != kNoAgent) {
          engine_.move(self, engine_.pinOf(self));
          break;
        }
      }
      continue;  // back at w; the leader detects the settler's presence
    }

    // --- plain group move order ---
    if (me.orderFollow != kNoPort) {
      const Port p = me.orderFollow;
      me.orderFollow = kNoPort;
      engine_.move(self, p);
      continue;
    }
  }
}

// ---------------------------------------------------------------- leader

Task RootedAsyncDispersion::leaderProbeTrip(AgentIx self, Port port) {
  engine_.move(self, port);
  co_await engine_.nextActivation(self);
  const NodeId ui = engine_.positionOf(self);
  AgentIx settler = kNoAgent;
  for (const AgentIx b : engine_.agentsAt(ui)) {
    if (st_[b].settled && !st_[b].isGuest && st_[b].settledAt == ui) settler = b;
  }
  const bool empty = (settler == kNoAgent);
  if (settler != kNoAgent) {
    st_[settler].orderGuestGoTo = engine_.pinOf(self);
    st_[settler].isGuest = true;
    proberIdx_.insert(settler, ui);  // guests are prober-eligible
  }
  engine_.move(self, engine_.pinOf(self));
  co_await engine_.nextActivation(self);
  // Report (the leader is back at w).
  const AgentIx aw = homeSettlerAt(engine_.positionOf(self));
  DISP_CHECK(aw != kNoAgent, "leader probe report: no settler at w");
  AgentState& bb = st_[aw];
  ++bb.retCount;
  if (empty) {
    const Port portOfW = engine_.pinOf(self);
    if (bb.nextFound == kNoPort || portOfW < bb.nextFound) bb.nextFound = portOfW;
  } else {
    ++bb.guestExpected;
  }
}

Task RootedAsyncDispersion::probePhase(AgentIx self) {
  ++stats_.probes;
  const Graph& g = engine_.graph();
  const NodeId w = engine_.positionOf(self);
  const AgentIx aw = homeSettlerAt(w);
  DISP_CHECK(aw != kNoAgent, "probe at a node without a settler");
  leaderNext_ = kNoPort;

  for (;;) {
    AgentState& bb = st_[aw];
    const Port degW = g.degree(w);
    if (bb.checked >= degW) break;  // exhausted: leaderNext_ stays ⊥

    const auto& avail = availableProbersAt(w, self);
    DISP_CHECK(!avail.empty(), "Async_Probe with no available agents");
    const Port delta = static_cast<Port>(std::min<std::uint32_t>(
        static_cast<std::uint32_t>(avail.size()), degW - bb.checked));
    ++stats_.probeIterations;

    bb.outCount = delta;
    bb.retCount = 0;
    bb.guestExpected = 0;
    bb.guestArrived = 0;
    bb.nextFound = kNoPort;

    bool selfProbes = false;
    Port selfPort = kNoPort;
    for (Port i = 0; i < delta; ++i) {
      const Port port = bb.checked + 1 + i;
      if (avail[i] == self) {
        selfProbes = true;  // leader has the max ID: only drafted last
        selfPort = port;
      } else {
        st_[avail[i]].orderProbePort = port;
      }
    }
    if (selfProbes) co_await leaderProbeTrip(self, selfPort);

    // Wait for every prober's report and every recruited guest's arrival.
    for (;;) {
      const AgentState& bbr = st_[aw];
      if (bbr.retCount == bbr.outCount && bbr.guestArrived == bbr.guestExpected) break;
      co_await engine_.nextActivation(self);
    }
    stats_.guestsRecruited += st_[aw].guestArrived;

    if (st_[aw].nextFound != kNoPort) {
      leaderNext_ = st_[aw].nextFound;
      break;  // checked intentionally not advanced (Algorithm 3 line 14–15)
    }
    st_[aw].checked = st_[aw].checked + delta;
  }
}

Task RootedAsyncDispersion::seeOffPhase(AgentIx self) {
  const NodeId w = engine_.positionOf(self);
  for (;;) {
    // Collect co-located guests, ascending by ID (Algorithm 4 line 6).
    std::vector<AgentIx> guests;
    for (const AgentIx a : engine_.agentsAt(w)) {
      if (st_[a].settled && st_[a].isGuest) guests.push_back(a);
    }
    if (guests.empty()) co_return;
    std::sort(guests.begin(), guests.end(),
              [&](AgentIx a, AgentIx b) { return engine_.idOf(a) < engine_.idOf(b); });
    ++stats_.seeOffSweeps;

    if (guests.size() == 1) {
      // α(w) escorts the last guest home (Algorithm 4 lines 2–4).
      const AgentIx g = guests.front();
      const AgentIx aw = homeSettlerAt(w);
      DISP_CHECK(aw != kNoAgent, "see-off without a settler at w");
      st_[aw].orderEscort = st_[g].guestEntryPort;
      st_[g].orderGoHome = true;
      // Wait until the guest is gone and the settler is back *with its
      // escort order consumed*.  Without the order check the guest can walk
      // home on its own before the settler ever leaves, the leader would
      // move on, and the stale escort order would later pull the settler
      // away from w mid-protocol — exactly the §4.3 in-transit hazard.
      for (;;) {
        co_await engine_.nextActivation(self);
        bool guestGone = true;
        for (const AgentIx a : engine_.agentsAt(w)) {
          guestGone &= !(st_[a].settled && st_[a].isGuest);
        }
        const AgentIx back = homeSettlerAt(w);
        if (guestGone && back != kNoAgent && st_[back].orderEscort == kNoPort) co_return;
      }
    }

    // Pair (g1,g2), (g3,g4), ...: the pair walks to the odd member's home;
    // the even member chaperones and returns.  A trailing unpaired guest
    // waits for the next sweep.
    const AgentIx aw = homeSettlerAt(w);
    DISP_CHECK(aw != kNoAgent, "see-off without a settler at w");
    const auto pairs = static_cast<std::uint32_t>(guests.size() / 2);
    st_[aw].seeOffExpected = pairs;
    st_[aw].seeOffReturned = 0;
    for (std::uint32_t i = 0; i < pairs; ++i) {
      const AgentIx gHome = guests[2 * i];
      const AgentIx gBack = guests[2 * i + 1];
      st_[gBack].orderChaperone = st_[gHome].guestEntryPort;
      st_[gHome].orderGoHome = true;
    }
    for (;;) {
      if (st_[aw].seeOffReturned == st_[aw].seeOffExpected) break;
      co_await engine_.nextActivation(self);
    }
  }
}

Task RootedAsyncDispersion::leaderFiber(AgentIx self) {
  co_await engine_.nextActivation(self);

  // Settle the smallest-ID co-located agent at the root (Algorithm 8 line 1).
  {
    const NodeId s = engine_.positionOf(self);
    const AgentIx amin =
        minIdAgentAt(engine_, s, [this](AgentIx a) { return !st_[a].settled; });
    DISP_CHECK(amin != kNoAgent, "no agent to settle at the root");
    st_[amin].settled = true;
    st_[amin].settledAt = s;
    st_[amin].parentPort = kNoPort;
    proberIdx_.erase(amin);  // settlers stop being prober-eligible
    --groupSize_;
    engine_.traceSettle(amin);
    recordMemory();
    if (groupSize_ == 0) {  // k == 1
      engine_.finish();
      co_return;
    }
  }

  for (;;) {
    const NodeId w = engine_.positionOf(self);

    co_await probePhase(self);
    const Port next = leaderNext_;
    co_await seeOffPhase(self);

    if (next != kNoPort) {
      // Forward move: the whole unsettled group crosses to u.
      for (const AgentIx a : engine_.agentsAt(w)) {
        if (!st_[a].settled && a != self) st_[a].orderFollow = next;
      }
      engine_.move(self, next);
      co_await engine_.nextActivation(self);
      // Reassemble.
      for (;;) {
        const NodeId u = engine_.positionOf(self);
        std::uint32_t present = 0;
        for (const AgentIx a : engine_.agentsAt(u)) present += !st_[a].settled;
        if (present >= groupSize_) break;
        co_await engine_.nextActivation(self);
      }
      ++stats_.forwardMoves;

      const NodeId u = engine_.positionOf(self);
      DISP_CHECK(homeSettlerAt(u) == kNoAgent, "forward move into an occupied node");
      const AgentIx amin =
          minIdAgentAt(engine_, u, [this](AgentIx a) { return !st_[a].settled; });
      st_[amin].settled = true;
      st_[amin].settledAt = u;
      st_[amin].parentPort = engine_.pinOf(amin);
      proberIdx_.erase(amin);  // settlers stop being prober-eligible
      --groupSize_;
      engine_.traceSettle(amin);
      recordMemory();
      if (amin == self || groupSize_ == 0) {
        DISP_CHECK(amin == self, "leader must settle last");
        engine_.finish();
        co_return;
      }
    } else {
      // Backtrack to the parent.
      const AgentIx aw = homeSettlerAt(w);
      DISP_CHECK(aw != kNoAgent, "backtrack from a node without a settler");
      const Port pp = st_[aw].parentPort;
      DISP_CHECK(pp != kNoPort, "DFS exhausted at the root before settling everyone");
      for (const AgentIx a : engine_.agentsAt(w)) {
        if (!st_[a].settled && a != self) st_[a].orderFollow = pp;
      }
      engine_.move(self, pp);
      co_await engine_.nextActivation(self);
      for (;;) {
        const NodeId p = engine_.positionOf(self);
        std::uint32_t present = 0;
        for (const AgentIx a : engine_.agentsAt(p)) present += !st_[a].settled;
        if (present >= groupSize_) break;
        co_await engine_.nextActivation(self);
      }
      ++stats_.backtracks;
    }
  }
}

}  // namespace disp
