#include "algo/oscillation.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace disp {

OscillatorSystem::OscillatorSystem(SyncEngine& engine)
    : engine_(engine),
      ixOf_(engine.agentCount(), kNoAgent),
      duty_(engine.agentCount(), 0) {}

void OscillatorSystem::install() {
  DISP_CHECK(!installed_, "OscillatorSystem installed twice");
  installed_ = true;
  engine_.addRoundHook([this] { stageMoves(); });
}

OscillatorSystem::Osc* OscillatorSystem::find(AgentIx agent) {
  const AgentIx ix = ixOf_[agent];
  return ix == kNoAgent ? nullptr : &oscs_[ix];
}

const OscillatorSystem::Osc* OscillatorSystem::find(AgentIx agent) const {
  const AgentIx ix = ixOf_[agent];
  return ix == kNoAgent ? nullptr : &oscs_[ix];
}

OscillatorSystem::Osc& OscillatorSystem::findOrCreate(AgentIx agent) {
  if (Osc* osc = find(agent)) return *osc;
  Osc fresh;
  fresh.agent = agent;
  fresh.home = engine_.positionOf(agent);
  ixOf_[agent] = static_cast<AgentIx>(oscs_.size());
  oscs_.push_back(fresh);
  return oscs_.back();
}

bool OscillatorSystem::isIdleAtHome(AgentIx agent) const {
  const Osc* osc = find(agent);
  if (osc == nullptr) return true;  // never oscillated: always at home
  return engine_.positionOf(agent) == osc->home && osc->planIx >= osc->plan.size();
}

void OscillatorSystem::addChildStop(AgentIx agent, Port childPort) {
  Osc& osc = findOrCreate(agent);
  DISP_CHECK(isIdleAtHome(agent), "stops may only be added at a cycle boundary at home");
  DISP_CHECK(!osc.siblingType || osc.stops.empty(),
             "an oscillator covers children or siblings, never both (Lemma 3)");
  osc.siblingType = false;
  DISP_CHECK(osc.stops.size() < 3, "children-type oscillator covers at most 3 nodes");
  DISP_CHECK(std::find(osc.stops.begin(), osc.stops.end(), childPort) == osc.stops.end(),
             "duplicate stop");
  osc.stops.push_back(childPort);
  if (duty_[agent] == 0) {
    engine_.traceEvent(TraceEventKind::OscillationDuty, agent, osc.home, 1,
                       static_cast<std::uint32_t>(osc.stops.size()));
  }
  duty_[agent] = 1;
}

void OscillatorSystem::addSiblingStop(AgentIx agent, Port parentPort,
                                      Port siblingPortAtParent) {
  Osc& osc = findOrCreate(agent);
  DISP_CHECK(isIdleAtHome(agent), "stops may only be added at a cycle boundary at home");
  DISP_CHECK(osc.siblingType || osc.stops.empty(),
             "an oscillator covers children or siblings, never both (Lemma 3)");
  DISP_CHECK(osc.stops.empty() || osc.parentPort == parentPort,
             "sibling stops must share the parent");
  osc.siblingType = true;
  osc.parentPort = parentPort;
  DISP_CHECK(osc.stops.size() < 2, "sibling-type oscillator covers at most 2 nodes");
  DISP_CHECK(std::find(osc.stops.begin(), osc.stops.end(), siblingPortAtParent) ==
                 osc.stops.end(),
             "duplicate stop");
  osc.stops.push_back(siblingPortAtParent);
  if (duty_[agent] == 0) {
    engine_.traceEvent(TraceEventKind::OscillationDuty, agent, osc.home, 1,
                       static_cast<std::uint32_t>(osc.stops.size()));
  }
  duty_[agent] = 1;
}

bool OscillatorSystem::isAtHome(AgentIx agent) const {
  const Osc* osc = find(agent);
  if (osc == nullptr) return true;
  return engine_.positionOf(agent) == osc->home;
}

std::optional<Port> OscillatorSystem::currentStopPort(AgentIx agent) const {
  const Osc* osc = find(agent);
  if (osc == nullptr || osc->atStop == kNoPort) return std::nullopt;
  return osc->atStop;
}

void OscillatorSystem::dropCurrentStop(AgentIx agent) {
  Osc* osc = find(agent);
  DISP_CHECK(osc != nullptr && osc->atStop != kNoPort,
             "dropCurrentStop: agent is not standing on a covered stop");
  const auto it = std::find(osc->stops.begin(), osc->stops.end(), osc->atStop);
  DISP_CHECK(it != osc->stops.end(), "stop list desynchronized");
  osc->stops.erase(it);
  // The remaining hops of the current cycle still lead home; the shorter
  // stop list takes effect at the next rebuild.
}

void OscillatorSystem::retire(AgentIx agent) {
  const AgentIx ix = ixOf_[agent];
  if (ix == kNoAgent) return;
  // Erase preserving order — stageMoves() iterates oscs_ and staged-move
  // order is part of the reproducible trace — then reindex the tail.
  oscs_.erase(oscs_.begin() + static_cast<std::ptrdiff_t>(ix));
  ixOf_[agent] = kNoAgent;
  if (duty_[agent] != 0) {
    engine_.traceEvent(TraceEventKind::OscillationDuty, agent,
                       engine_.positionOf(agent), 0, 0);
  }
  duty_[agent] = 0;
  for (AgentIx i = ix; i < oscs_.size(); ++i) ixOf_[oscs_[i].agent] = i;
}

bool OscillatorSystem::allIdleAtHome() const {
  for (const auto& osc : oscs_) {
    if (engine_.positionOf(osc.agent) != osc.home || osc.planIx < osc.plan.size()) {
      return false;
    }
  }
  return true;
}

std::uint32_t OscillatorSystem::maxCycleRounds() const {
  std::uint32_t best = 0;
  for (const auto& osc : oscs_) {
    const auto stops = static_cast<std::uint32_t>(osc.stops.size());
    if (stops == 0) continue;
    best = std::max(best, osc.siblingType ? 2 + 2 * stops : 2 * stops);
  }
  return best;
}

void OscillatorSystem::rebuildPlan(Osc& osc) const {
  osc.plan.clear();
  osc.planIx = 0;
  if (osc.stops.empty()) return;
  if (!osc.siblingType) {
    // home → c_i → home per stop.
    for (const Port p : osc.stops) {
      osc.plan.push_back({Hop::Kind::Literal, p, p});
      osc.plan.push_back({Hop::Kind::Pin, kNoPort, kNoPort});
    }
  } else {
    // home → P → s_1 → P [→ s_2 → P] → home.
    osc.plan.push_back({Hop::Kind::Literal, osc.parentPort, kNoPort});
    for (const Port s : osc.stops) {
      osc.plan.push_back({Hop::Kind::Literal, s, s});
      osc.plan.push_back({Hop::Kind::Pin, kNoPort, kNoPort});
    }
    osc.plan.push_back({Hop::Kind::HomeReturn, kNoPort, kNoPort});
  }
  DISP_CHECK(osc.plan.size() <= 6, "Lemma 2 violated: trip exceeds 6 rounds");
}

template <typename Sink>
void OscillatorSystem::stepOscillator(Osc& osc, Sink& sink) {
  if (osc.planIx >= osc.plan.size()) {
    // Fast path: no duty left (stops dropped) and no trip in flight —
    // skip the per-round plan rebuild for every retired oscillator.
    if (osc.stops.empty()) {
      if (!osc.plan.empty()) {
        osc.plan.clear();
        osc.planIx = 0;
      }
      if (duty_[osc.agent] != 0) {
        sink.duty(osc.agent, osc.home, 0, 0);
      }
      duty_[osc.agent] = 0;
      return;
    }
    // At home between cycles; start a new one if duty remains.
    rebuildPlan(osc);
    if (osc.plan.empty()) return;
  }
  // Sibling trips: right after the first hop landed at the parent, the
  // pin is the port leading home — remember it for the final hop.
  if (osc.siblingType && osc.planIx == 1) osc.homeReturn = engine_.pinOf(osc.agent);

  const Hop& hop = osc.plan[osc.planIx];
  Port via = kNoPort;
  switch (hop.kind) {
    case Hop::Kind::Literal:
      via = hop.port;
      break;
    case Hop::Kind::Pin:
      via = engine_.pinOf(osc.agent);
      break;
    case Hop::Kind::HomeReturn:
      via = osc.homeReturn;
      break;
  }
  DISP_CHECK(via != kNoPort, "oscillator lost its route");
  sink.stageMove(osc.agent, via);
  osc.atStop = hop.stopKey;  // where this hop will land (kNoPort if not a stop)
  ++osc.planIx;
}

namespace {

// Sinks for stepOscillator: straight to the engine (serial) or into a
// per-lane buffer that the engine merges in lane order (parallel).
struct EngineSink {
  SyncEngine& engine;
  void stageMove(AgentIx a, Port p) { engine.stageMove(a, p); }
  void duty(AgentIx agent, NodeId node, std::uint32_t a, std::uint32_t b) {
    engine.traceEvent(TraceEventKind::OscillationDuty, agent, node, a, b);
  }
};

struct LaneSink {
  SyncEngine::LaneStager& lane;
  void stageMove(AgentIx a, Port p) { lane.stageMove(a, p); }
  void duty(AgentIx agent, NodeId node, std::uint32_t a, std::uint32_t b) {
    lane.traceEvent(TraceEventKind::OscillationDuty, agent, node, a, b);
  }
};

// Below this many oscillators the per-round dispatch overhead beats the
// chunked win; step serially.
constexpr std::size_t kParallelStagingMin = 256;

}  // namespace

void OscillatorSystem::stageMoves() {
  const unsigned lanes = engine_.stagingLanes();
  if (lanes > 1 && oscs_.size() >= kParallelStagingMin) {
    // Contiguous chunks of oscs_ per lane + lane-order merge reproduce the
    // serial staging order exactly; each step only touches its own state.
    engine_.stageParallel([this, lanes](unsigned lane, SyncEngine::LaneStager& out) {
      const auto [lo, hi] = RoundExecutor::chunk(oscs_.size(), lanes, lane);
      LaneSink sink{out};
      for (std::size_t i = lo; i < hi; ++i) stepOscillator(oscs_[i], sink);
    });
    return;
  }
  EngineSink sink{engine_};
  for (auto& osc : oscs_) stepOscillator(osc, sink);
}

}  // namespace disp
