#pragma once
// General-initial-configuration dispersion in SYNC (paper §8.1) and, run
// with ℓ = 1, the Sudo-style helper-doubling rooted baseline (Table 1 row
// [36], O(k log k)).
//
// Structure: ℓ groups (one per initially occupied node) each grow a DFS
// with treelabel = its group id.  The growing phase uses the *doubling
// probe*: available agents probe distinct ports in parallel; settled
// own-tree neighbors are recruited as helpers and, in SYNC, walk back with
// the prober in the same round and are all returned home in one round once
// the step resolves (the paper's §4.3 description of [36]).  Every tree
// node holds a settler (no oscillation — that is the Theorem 6.1 machinery,
// implemented in sync_rooted.*; see DESIGN.md §4 for exactly what this
// module does and does not reproduce of Theorem 8.1).
//
// Meetings (KS subsumption, §8): a probe or forward move that encounters a
// foreign-label agent registers a meeting.  Sizes are compared (|D2| < |D1|
// means D1 subsumes D2; ties favour the *met* tree); the loser freezes at a
// safe point and the winner's group performs an Euler collapse walk over
// the loser tree, unsettling and relabelling every loser agent, then
// resumes its own DFS.  A loser that *detected* the meeting collapses
// itself and its agents march to the winner's head and join it.
//
// Implementation notes (documented simplifications, DESIGN.md §4.7):
//  * group contexts / size comparison stand in for KS's junction-locking;
//  * the orphan march after a self-collapse routes toward the winner's
//    current head using engine-side head tracking (standing in for KS's
//    head-pointer maintenance), with every hop charged as a real move.

#include <cstdint>
#include <optional>
#include <vector>

#include "core/memory.hpp"
#include "core/metrics.hpp"
#include "core/sync_engine.hpp"
#include "graph/graph.hpp"

namespace disp {

struct GeneralSyncStats {
  std::uint64_t forwardMoves = 0;
  std::uint64_t backtracks = 0;
  std::uint64_t probeIterations = 0;
  std::uint64_t meetings = 0;
  std::uint64_t subsumptions = 0;
  std::uint64_t collapseHops = 0;
  std::uint64_t retreats = 0;  // forward-move collisions resolved by retreat
};

class GeneralSyncDispersion {
 public:
  /// Groups are inferred from co-location in the engine's initial world:
  /// one group per occupied node (any ℓ in [1, k]).
  explicit GeneralSyncDispersion(SyncEngine& engine);

  void start();

  [[nodiscard]] bool dispersed() const;
  [[nodiscard]] const GeneralSyncStats& stats() const noexcept { return stats_; }
  [[nodiscard]] std::uint64_t agentBits(AgentIx a) const;
  [[nodiscard]] std::uint32_t groupCount() const {
    return static_cast<std::uint32_t>(groups_.size());
  }

  /// Test/debug introspection of a group's lifecycle state.
  struct GroupSnapshot {
    std::uint32_t total, unsettled, treeSize;
    bool frozen, parked, dissolved, marching;
    AgentIx leader;
    const char* phase;
  };
  [[nodiscard]] GroupSnapshot groupSnapshot(std::uint32_t gi) const {
    const auto& g = groups_[gi];
    return {g.total, g.unsettled, g.treeSize, g.frozen, g.parked, g.dissolved,
            g.marching, g.leader, g.phase};
  }

 private:
  using Label = std::uint32_t;
  static constexpr Label kNoLabel = static_cast<Label>(-1);

  struct AgentState {
    Label label = kNoLabel;
    bool settled = false;
    bool isGuest = false;           // recruited helper, temporarily at w
    NodeId settledAt = kInvalidNode;
    Port parentPort = kNoPort;
    Port checked = 0;
    Port firstChildPort = kNoPort;
    Port latestChildPort = kNoPort;
    Port nextSiblingPort = kNoPort;
    Port guestEntryPort = kNoPort;  // port of w back toward home
  };

  struct GroupCtx {
    Label label = 0;
    AgentIx leader = kNoAgent;
    std::uint32_t total = 0;     // agents currently belonging to the group
    std::uint32_t unsettled = 0;
    std::uint32_t treeSize = 0;
    bool frozen = false;   // a winner ordered this group to halt
    bool parked = false;   // fiber acknowledged the freeze / finished
    bool dissolved = false;  // collapsed into another tree
    std::uint32_t absorbedBy = 0;  // valid once dissolved
    bool marching = false;         // self-collapsed, chasing the winner
    std::uint32_t marchTarget = 0;  // initial winner (chain-resolved live)
    NodeId head = kInvalidNode;     // engine-side head tracking (see header)
    std::vector<Label> pending;     // meetings skipped while the peer was busy
    const char* phase = "init";     // debug/test introspection only
  };

 public:
  /// Declared per-agent / per-group footprints, exported so the scale
  /// campaign's RSS lower bound (exp/benches_scale.cpp) tracks the real
  /// structs instead of hand-copied literals.
  static constexpr std::size_t kAgentStateBytes = sizeof(AgentState);
  static constexpr std::size_t kGroupCtxBytes = sizeof(GroupCtx);

 private:
  Task groupFiber(std::uint32_t gi);
  Task probeStep(std::uint32_t gi);   // result in probeNext_[gi] / probeMet_[gi]
  Task returnGuests(std::uint32_t gi);
  Task sideTripSetNextSibling(std::uint32_t gi, NodeId w, Port prevChildPort,
                              Port newChildPort);
  /// metPort == kNoPort means a pended retry: routing falls back to a BFS
  /// march toward the peer (engine-side head tracking, real moves).
  Task handleMeeting(std::uint32_t gi, Label other, Port metPort);
  Task collapseForeign(std::uint32_t gi, std::uint32_t loser, Port metPort);
  Task collapseVisit(std::uint32_t gi, Label loserLabel, Port exclPort);
  Task selfCollapseAndMarch(std::uint32_t gi, std::uint32_t winner, Port metPort);
  Task absorbMarchers(std::uint32_t gi);
  Task awaitParked(std::uint32_t loser);
  Task marchToward(std::uint32_t gi, AgentIx anchor);  // BFS walk, real moves
  Task retryPending(std::uint32_t gi);
  /// Blocked-DFS recovery: Euler-walk the own tree, resetting probe
  /// progress and re-probing at every node.  Needed because a collapse can
  /// free nodes behind ports this DFS already advanced past (checked is
  /// monotone).  Stops at the first node with a finding (rescanFound_);
  /// the DFS resumes from there.
  Task rescanVisit(std::uint32_t gi);
  [[nodiscard]] std::uint32_t resolveGroup(std::uint32_t g) const;

  [[nodiscard]] AgentIx homeSettlerAt(NodeId v, Label label) const;
  [[nodiscard]] AgentIx anySettlerAt(NodeId v) const;  // any label
  [[nodiscard]] std::vector<AgentIx> groupAt(NodeId v, Label label) const;
  Task moveGroup(std::uint32_t gi, Port p);
  void settle(std::uint32_t gi, AgentIx a, NodeId at, Port parentPort);
  void recordMemory();

  SyncEngine& engine_;
  std::vector<AgentState> st_;
  std::vector<GroupCtx> groups_;
  GeneralSyncStats stats_;
  BitWidths widths_;
  std::uint32_t dispersedGroups_ = 0;

  // Per-group scratch (protocol-local values surfaced for the fiber).
  std::vector<Port> probeNext_;
  std::vector<std::vector<std::pair<Label, Port>>> probeMet_;
  bool rescanFound_ = false;

  // Exact O(1)/O(dirty) caches of quantities the protocol only ever derives
  // by scanning all groups or all agents.  At web scale (k = 2^20, ℓ large)
  // those scans turned recordMemory()/globalUnsettled() into the dominant
  // cost; each cache below is maintained at the few mutation sites of the
  // underlying field and is provably equal to the scan it replaces.
  std::vector<std::uint32_t> ledGroups_;  // #groups whose leader field == a
  std::vector<AgentIx> memoryDirty_;      // agents whose bits rose since flush
  bool memoryPrimed_ = false;             // first recordMemory() ran (all k)
  std::uint32_t unsettledTotal_ = 0;      // Σ_g groups_[g].unsettled
  std::uint32_t marchingCount_ = 0;       // #groups with marching == true
};

}  // namespace disp
