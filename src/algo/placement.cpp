#include "algo/placement.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "graph/graph_algos.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace disp {

std::vector<AgentId> randomIds(std::uint32_t k, std::uint64_t seed) {
  DISP_REQUIRE(k >= 1, "need at least one agent");
  Rng rng(seed ^ 0x1d5ULL);
  // Sample k distinct values from [1, 4k] via a partial shuffle.
  std::vector<AgentId> pool(4ULL * k);
  std::iota(pool.begin(), pool.end(), 1U);
  rng.shuffle(pool);
  pool.resize(k);
  return pool;
}

Placement rootedPlacement(const Graph& g, std::uint32_t k, NodeId root,
                          std::uint64_t seed) {
  DISP_REQUIRE(k >= 1 && k <= g.nodeCount(), "k must be in [1, n]");
  DISP_REQUIRE(root < g.nodeCount(), "root out of range");
  Placement p;
  p.positions.assign(k, root);
  p.ids = randomIds(k, seed);
  return p;
}

Placement clusteredPlacement(const Graph& g, std::uint32_t k, std::uint32_t clusters,
                             std::uint64_t seed) {
  DISP_REQUIRE(k >= 1 && k <= g.nodeCount(), "k must be in [1, n]");
  DISP_REQUIRE(clusters >= 1 && clusters <= k, "clusters must be in [1, k]");
  Rng rng(seed ^ 0xc1057e4ULL);
  std::vector<NodeId> nodes(g.nodeCount());
  std::iota(nodes.begin(), nodes.end(), 0U);
  rng.shuffle(nodes);
  nodes.resize(clusters);

  Placement p;
  p.positions.reserve(k);
  for (std::uint32_t a = 0; a < k; ++a) p.positions.push_back(nodes[a % clusters]);
  p.ids = randomIds(k, seed);
  return p;
}

Placement scatteredPlacement(const Graph& g, std::uint32_t k, std::uint64_t seed) {
  return clusteredPlacement(g, k, k, seed);
}

Placement adversarialFarPlacement(const Graph& g, std::uint32_t k,
                                  std::uint32_t clusters, std::uint64_t seed) {
  DISP_REQUIRE(k >= 1 && k <= g.nodeCount(), "k must be in [1, n]");
  DISP_REQUIRE(clusters >= 1 && clusters <= k && clusters <= g.nodeCount(),
               "clusters must be in [1, min(k, n)]");
  // Farthest-point traversal seeded at a peripheral node: center 2 lands a
  // full diameter away, later centers maximize the distance to the chosen
  // set (lowest node id on ties — fully deterministic, no RNG).
  std::vector<NodeId> centers{peripheralNode(g)};
  std::vector<std::uint32_t> minDist = bfsDistances(g, centers.front());
  while (centers.size() < clusters) {
    NodeId best = 0;
    for (NodeId v = 1; v < g.nodeCount(); ++v) {
      if (minDist[v] > minDist[best]) best = v;
    }
    centers.push_back(best);
    const std::vector<std::uint32_t> d = bfsDistances(g, best);
    for (NodeId v = 0; v < g.nodeCount(); ++v) minDist[v] = std::min(minDist[v], d[v]);
  }

  Placement p;
  p.positions.reserve(k);
  for (std::uint32_t a = 0; a < k; ++a) p.positions.push_back(centers[a % clusters]);
  p.ids = randomIds(k, seed);
  return p;
}

Placement adversarialFrontierPlacement(const Graph& g, std::uint32_t k,
                                       std::uint32_t clusters, std::uint64_t seed) {
  DISP_REQUIRE(k >= 1 && k <= g.nodeCount(), "k must be in [1, n]");
  DISP_REQUIRE(clusters >= 1 && clusters <= k, "clusters must be in [1, k]");
  // Deepest BFS levels from node 0 — the corner a lowest-id-rooted
  // tree-growing phase expands from.  Stable sort on a node-id-ordered
  // candidate list keeps equal-depth ties in id order: fully deterministic,
  // no RNG in the positions.
  const std::vector<std::uint32_t> dist = bfsDistances(g, 0);
  std::vector<NodeId> candidates;
  candidates.reserve(g.nodeCount());
  for (NodeId v = 0; v < g.nodeCount(); ++v) {
    if (dist[v] != kUnreachable) candidates.push_back(v);
  }
  DISP_REQUIRE(clusters <= candidates.size(),
               "clusters must be <= the component of node 0");
  std::stable_sort(candidates.begin(), candidates.end(),
                   [&dist](NodeId a, NodeId b) { return dist[a] > dist[b]; });
  candidates.resize(clusters);

  Placement p;
  p.positions.reserve(k);
  for (std::uint32_t a = 0; a < k; ++a) p.positions.push_back(candidates[a % clusters]);
  p.ids = randomIds(k, seed);
  return p;
}

Placement adversarialHotPlacement(const Graph& g, std::uint32_t k,
                                  std::uint64_t seed) {
  DISP_REQUIRE(g.nodeCount() >= 1, "empty graph");
  NodeId hub = 0;
  for (NodeId v = 1; v < g.nodeCount(); ++v) {
    if (g.degree(v) > g.degree(hub)) hub = v;
  }
  return rootedPlacement(g, k, hub, seed);
}

namespace {

[[noreturn]] void placeFail(const std::string& text, const std::string& why) {
  throw std::invalid_argument(
      "bad placement spec '" + text + "': " + why +
      " (known: rooted[:root=R], clusters:l=L, spread, adversarial:far[,l=L], "
      "adversarial:frontier[,l=L], adversarial:hot)");
}

/// Parses the comma-separated `key=value` args of a placement spec; only
/// `allowed` (a single name or empty) is recognized.
std::uint32_t parseOnlyParam(const std::string& text, const std::string& args,
                             const std::string& allowed, std::uint32_t fallback) {
  std::uint32_t out = fallback;
  std::string::size_type from = 0;
  while (from <= args.size()) {
    const auto comma = args.find(',', from);
    const auto to = comma == std::string::npos ? args.size() : comma;
    const std::string tok = args.substr(from, to - from);
    if (!tok.empty()) {
      const auto eq = tok.find('=');
      if (eq == std::string::npos || eq == 0 || eq + 1 == tok.size()) {
        placeFail(text, "parameter '" + tok + "' is not key=value");
      }
      const std::string key = tok.substr(0, eq);
      const std::string value = tok.substr(eq + 1);
      if (allowed.empty() || key != allowed) {
        placeFail(text, "unknown parameter '" + key + "'");
      }
      if (value.empty() ||
          value.find_first_not_of("0123456789") != std::string::npos) {
        placeFail(text, "parameter '" + key + "' value '" + value +
                            "' is not an unsigned integer");
      }
      const unsigned long long v = std::strtoull(value.c_str(), nullptr, 10);
      if (v > 0xffffffffULL) placeFail(text, "parameter '" + key + "' overflows");
      out = static_cast<std::uint32_t>(v);
    }
    if (comma == std::string::npos) break;
    from = comma + 1;
  }
  return out;
}

}  // namespace

PlacementSpec PlacementSpec::parse(const std::string& text) {
  PlacementSpec spec;
  const auto colon = text.find(':');
  const std::string head = text.substr(0, colon);
  const std::string rest =
      colon == std::string::npos ? std::string() : text.substr(colon + 1);

  if (head == "rooted") {
    spec.kind_ = Kind::Rooted;
    spec.root_ = parseOnlyParam(text, rest, "root", 0);
  } else if (head == "clusters") {
    spec.kind_ = Kind::Clusters;
    spec.clusters_ = parseOnlyParam(text, rest, "l", 2);
    if (spec.clusters_ < 1) placeFail(text, "l must be >= 1");
  } else if (head == "spread") {
    if (!rest.empty()) placeFail(text, "spread takes no parameters");
    spec.kind_ = Kind::Spread;
  } else if (head == "adversarial") {
    const auto comma = rest.find(',');
    const std::string mode = rest.substr(0, comma);
    const std::string args =
        comma == std::string::npos ? std::string() : rest.substr(comma + 1);
    if (mode == "far") {
      spec.kind_ = Kind::AdversarialFar;
      spec.clusters_ = parseOnlyParam(text, args, "l", 2);
      if (spec.clusters_ < 1) placeFail(text, "l must be >= 1");
    } else if (mode == "frontier") {
      spec.kind_ = Kind::AdversarialFrontier;
      spec.clusters_ = parseOnlyParam(text, args, "l", 2);
      if (spec.clusters_ < 1) placeFail(text, "l must be >= 1");
    } else if (mode == "hot") {
      if (!args.empty()) placeFail(text, "adversarial:hot takes no parameters");
      spec.kind_ = Kind::AdversarialHot;
    } else {
      placeFail(text, "unknown adversarial mode '" + mode + "'");
    }
  } else {
    placeFail(text, "unknown placement kind '" + head + "'");
  }
  return spec;
}

std::string PlacementSpec::toString() const {
  switch (kind_) {
    case Kind::Rooted:
      return root_ == 0 ? "rooted" : "rooted:root=" + std::to_string(root_);
    case Kind::Clusters:
      return "clusters:l=" + std::to_string(clusters_);
    case Kind::Spread:
      return "spread";
    case Kind::AdversarialFar:
      return clusters_ == 2 ? "adversarial:far"
                            : "adversarial:far,l=" + std::to_string(clusters_);
    case Kind::AdversarialFrontier:
      return clusters_ == 2 ? "adversarial:frontier"
                            : "adversarial:frontier,l=" + std::to_string(clusters_);
    case Kind::AdversarialHot:
      return "adversarial:hot";
  }
  throw std::logic_error("unreachable placement kind");
}

std::uint32_t PlacementSpec::clusterCount() const {
  switch (kind_) {
    case Kind::Rooted:
    case Kind::AdversarialHot:
      return 1;
    case Kind::Clusters:
    case Kind::AdversarialFar:
    case Kind::AdversarialFrontier:
      return clusters_;
    case Kind::Spread:
      return 0;
  }
  throw std::logic_error("unreachable placement kind");
}

std::string PlacementSpec::tableLabel() const {
  switch (kind_) {
    case Kind::Rooted:
    case Kind::Clusters:
      return std::to_string(clusterCount());
    case Kind::Spread:
      return "spread";
    case Kind::AdversarialFar:
      return "far:" + std::to_string(clusters_);
    case Kind::AdversarialFrontier:
      return "frontier:" + std::to_string(clusters_);
    case Kind::AdversarialHot:
      return "hot";
  }
  throw std::logic_error("unreachable placement kind");
}

Placement PlacementSpec::place(const Graph& g, std::uint32_t k,
                               std::uint64_t seed) const {
  switch (kind_) {
    case Kind::Rooted:
      return rootedPlacement(g, k, root_, seed);
    case Kind::Clusters:
      return clusteredPlacement(g, k, clusters_, seed);
    case Kind::Spread:
      return scatteredPlacement(g, k, seed);
    case Kind::AdversarialFar:
      return adversarialFarPlacement(g, k, clusters_, seed);
    case Kind::AdversarialFrontier:
      return adversarialFrontierPlacement(g, k, clusters_, seed);
    case Kind::AdversarialHot:
      return adversarialHotPlacement(g, k, seed);
  }
  throw std::logic_error("unreachable placement kind");
}

}  // namespace disp
