#include "algo/placement.hpp"

#include <algorithm>
#include <numeric>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace disp {

std::vector<AgentId> randomIds(std::uint32_t k, std::uint64_t seed) {
  DISP_REQUIRE(k >= 1, "need at least one agent");
  Rng rng(seed ^ 0x1d5ULL);
  // Sample k distinct values from [1, 4k] via a partial shuffle.
  std::vector<AgentId> pool(4ULL * k);
  std::iota(pool.begin(), pool.end(), 1U);
  rng.shuffle(pool);
  pool.resize(k);
  return pool;
}

Placement rootedPlacement(const Graph& g, std::uint32_t k, NodeId root,
                          std::uint64_t seed) {
  DISP_REQUIRE(k >= 1 && k <= g.nodeCount(), "k must be in [1, n]");
  DISP_REQUIRE(root < g.nodeCount(), "root out of range");
  Placement p;
  p.positions.assign(k, root);
  p.ids = randomIds(k, seed);
  return p;
}

Placement clusteredPlacement(const Graph& g, std::uint32_t k, std::uint32_t clusters,
                             std::uint64_t seed) {
  DISP_REQUIRE(k >= 1 && k <= g.nodeCount(), "k must be in [1, n]");
  DISP_REQUIRE(clusters >= 1 && clusters <= k, "clusters must be in [1, k]");
  Rng rng(seed ^ 0xc1057e4ULL);
  std::vector<NodeId> nodes(g.nodeCount());
  std::iota(nodes.begin(), nodes.end(), 0U);
  rng.shuffle(nodes);
  nodes.resize(clusters);

  Placement p;
  p.positions.reserve(k);
  for (std::uint32_t a = 0; a < k; ++a) p.positions.push_back(nodes[a % clusters]);
  p.ids = randomIds(k, seed);
  return p;
}

Placement scatteredPlacement(const Graph& g, std::uint32_t k, std::uint64_t seed) {
  return clusteredPlacement(g, k, k, seed);
}

}  // namespace disp
