#include "algo/sync_rooted.hpp"

#include <algorithm>

#include "algo/protocol_common.hpp"
#include "util/check.hpp"

namespace disp {

namespace {
/// Longest tolerated wait for a custodian/oscillator rendezvous.  Trips are
/// ≤ 6 rounds (Lemma 2), so 6 always suffices; the slack catches bugs fast.
constexpr std::uint32_t kMaxCustodianWait = 10;
}  // namespace

RootedSyncDispersion::RootedSyncDispersion(SyncEngine& engine)
    : engine_(engine),
      osc_(engine),
      st_(engine.agentCount()),
      widths_(BitWidths::forRun(4ULL * engine.agentCount(), engine.graph().maxDegree(),
                                engine.agentCount())) {
  const std::uint32_t k = engine_.agentCount();
  DISP_REQUIRE(k >= 7,
               "RootedSyncDisp requires k >= 7 (the runner facade uses the KS "
               "baseline below that)");
  const NodeId root = engine_.positionOf(0);
  for (AgentIx a = 0; a < k; ++a) {
    DISP_REQUIRE(engine_.positionOf(a) == root,
                 "RootedSyncDisp expects a rooted initial configuration");
  }

  // Roles: a_max leads; the next ⌈k/3⌉ largest IDs are seekers; the rest
  // (including the global minimum) are explorers.
  std::vector<AgentIx> byId(k);
  for (AgentIx a = 0; a < k; ++a) byId[a] = a;
  std::sort(byId.begin(), byId.end(),
            [&](AgentIx a, AgentIx b) { return engine_.idOf(a) > engine_.idOf(b); });
  leader_ = byId[0];
  st_[leader_].role = Role::Leader;
  const std::uint32_t seekerCount = (k + 2) / 3;  // ⌈k/3⌉
  for (std::uint32_t i = 1; i <= seekerCount; ++i) st_[byId[i]].role = Role::Seeker;
  for (std::uint32_t i = seekerCount + 1; i < k; ++i) st_[byId[i]].role = Role::Explorer;
  // byId is descending; record the seeker pool in ascending-ID order so
  // probe gathering preserves the historical sorted order without sorting.
  seekersById_.assign(byId.begin() + 1, byId.begin() + 1 + seekerCount);
  std::reverse(seekersById_.begin(), seekersById_.end());

  bitsDirtyFlag_.assign(k, 1);
  bitsDirty_.resize(k);
  for (AgentIx a = 0; a < k; ++a) bitsDirty_[a] = a;
}

void RootedSyncDispersion::start() {
  osc_.install();
  engine_.addFiber(protocol());
}

bool RootedSyncDispersion::dispersed() const {
  std::vector<NodeId> where;
  for (AgentIx a = 0; a < engine_.agentCount(); ++a) {
    if (!st_[a].settled) return false;
    where.push_back(engine_.positionOf(a));
  }
  return isDispersed(where);
}

std::uint64_t RootedSyncDispersion::agentBits(AgentIx a) const {
  const std::uint64_t recordBits = 1 + 7ULL * widths_.port + 3ULL * widths_.count;
  const AgentState& s = st_[a];
  // id + role + settled + pin.
  std::uint64_t bits = widths_.id + 2 + 1 + widths_.port;
  if (s.ownRecord) bits += recordBits;
  bits += s.covered.size() * (widths_.port + recordBits);
  if (osc_.isOscillating(a)) bits += 2 + 6ULL * widths_.port;  // trip state
  if (a == leader_) {
    // in-hand record + tree size + settled count + probe cursor.
    bits += recordBits + 2ULL * widths_.count + widths_.port;
  }
  if (s.role == Role::Seeker) bits += 1 + widths_.port;  // met flag + errand port
  return bits;
}

void RootedSyncDispersion::recordMemory() {
  // Only agents whose persistent fields changed since the last checkpoint
  // can raise their high-water mark; unchanged agents would re-record the
  // same value.  Every bit-affecting mutation calls markBits().
  for (const AgentIx a : bitsDirty_) {
    engine_.memory().record(a, agentBits(a));
    bitsDirtyFlag_[a] = 0;
  }
  bitsDirty_.clear();
}

// ------------------------------------------------------------- helpers

AgentIx RootedSyncDispersion::pickSeekerAt(NodeId v) const {
  return minIdAgentAt(engine_, v, [this](AgentIx a) {
    return !st_[a].settled && st_[a].role == Role::Seeker;
  });
}

AgentIx RootedSyncDispersion::settlerAtNode(NodeId v) const {
  for (const AgentIx a : engine_.agentsAt(v)) {
    if (st_[a].settled && st_[a].settledAt == v) return a;
  }
  return kNoAgent;
}

Task RootedSyncDispersion::moveGroup(NodeId from, Port p) {
  // Stage directly off the occupancy view (staging does not move agents,
  // so the view stays valid) — no per-call group vector.
  for (const AgentIx a : engine_.agentsAt(from)) {
    if (!st_[a].settled) engine_.stageMove(a, p);
  }
  co_await engine_.nextRound();
}

void RootedSyncDispersion::settleAgent(AgentIx a, NodeId at) {
  DISP_CHECK(!st_[a].settled, "double settle");
  st_[a].settled = true;
  st_[a].settledAt = at;
  ++settledCount_;
  engine_.traceSettle(a);
}

AgentIx RootedSyncDispersion::chooseSettleCandidate(NodeId at) {
  AgentIx who = minIdAgentAt(engine_, at, [this](AgentIx a) {
    return !st_[a].settled && st_[a].role == Role::Explorer;
  });
  if (who == kNoAgent) {
    // Tight ⌊2k/3⌋ case: borrow (demote) the smallest-ID seeker.
    who = pickSeekerAt(at);
    DISP_CHECK(who != kNoAgent, "no explorer and no seeker left to settle");
    st_[who].role = Role::Explorer;
    markBits(who);
    ++stats_.borrows;
    DISP_CHECK(stats_.borrows <= 2, "more than two seeker borrows (bug)");
  }
  return who;
}

Task RootedSyncDispersion::awaitSettlerIdleAtHome(NodeId v) {
  // The settler of v may be away mid-oscillation; it is idle at home at
  // least once every 6 rounds (cycle boundary).
  for (std::uint32_t i = 0; i <= kMaxCustodianWait; ++i) {
    const AgentIx a = settlerAtNode(v);
    if (a != kNoAgent && osc_.isIdleAtHome(a)) {
      foundSettler_ = a;
      co_return;
    }
    ++stats_.custodianWaitRounds;
    co_await engine_.nextRound();
  }
  DISP_CHECK(false, "settler never idled at home (trip > 6 rounds?)");
}

// -------------------------------------------------------- record custody

NodeRecord* RootedSyncDispersion::holderRecordAt(NodeId v, AgentIx* holder,
                                                 std::size_t* coveredIx) {
  for (const AgentIx a : engine_.agentsAt(v)) {
    AgentState& s = st_[a];
    if (s.settled && s.settledAt == v && s.ownRecord) {
      if (holder) *holder = a;
      if (coveredIx) *coveredIx = static_cast<std::size_t>(-1);
      return &*s.ownRecord;
    }
    for (std::size_t i = 0; i < s.covered.size(); ++i) {
      if (s.covered[i].node == v) {
        if (holder) *holder = a;
        if (coveredIx) *coveredIx = i;
        return &s.covered[i].record;
      }
    }
  }
  return nullptr;
}

Task RootedSyncDispersion::awaitHolderAt(NodeId v) {
  for (std::uint32_t i = 0; i <= kMaxCustodianWait; ++i) {
    if (holderRecordAt(v) != nullptr) co_return;
    ++stats_.custodianWaitRounds;
    co_await engine_.nextRound();
  }
  DISP_CHECK(false, "record holder never visited the node (coverage bug)");
}

Task RootedSyncDispersion::checkInRecord(NodeId v) {
  DISP_CHECK(inHand_.has_value(), "no record in hand");
  if (inHand_->occupied) {
    // Custodian is the settler at v; wait for it to be home (≤ 6 rounds if
    // it is mid-oscillation).
    for (std::uint32_t i = 0; i <= kMaxCustodianWait; ++i) {
      const AgentIx settler = settlerAtNode(v);
      if (settler != kNoAgent) {
        st_[settler].ownRecord = std::move(*inHand_);
        markBits(settler);
        inHand_.reset();
        co_return;
      }
      ++stats_.custodianWaitRounds;
      co_await engine_.nextRound();
    }
    DISP_CHECK(false, "settler never returned home for record check-in");
  }
  // Custodian is the covering oscillator: it stands on v (its stop) at
  // least once every 6 rounds.
  for (std::uint32_t i = 0; i <= kMaxCustodianWait; ++i) {
    for (const AgentIx a : engine_.agentsAt(v)) {
      const auto stop = osc_.currentStopPort(a);
      if (stop.has_value()) {
        st_[a].covered.push_back({*stop, v, std::move(*inHand_)});
        markBits(a);
        inHand_.reset();
        co_return;
      }
    }
    ++stats_.custodianWaitRounds;
    co_await engine_.nextRound();
  }
  DISP_CHECK(false, "coverer never visited the node for record check-in");
}

Task RootedSyncDispersion::checkOutRecord(NodeId v) {
  DISP_CHECK(!inHand_.has_value(), "record already in hand");
  co_await awaitHolderAt(v);
  AgentIx holder = kNoAgent;
  std::size_t coveredIx = static_cast<std::size_t>(-1);
  NodeRecord* rec = holderRecordAt(v, &holder, &coveredIx);
  DISP_CHECK(rec != nullptr, "holder vanished between rounds");
  inHand_ = *rec;
  if (coveredIx == static_cast<std::size_t>(-1)) {
    st_[holder].ownRecord.reset();
  } else {
    st_[holder].covered.erase(st_[holder].covered.begin() +
                              static_cast<std::ptrdiff_t>(coveredIx));
  }
  markBits(holder);
}

// --------------------------------------------------------------- errands

Task RootedSyncDispersion::sideTripSetNextSibling(NodeId w, Port prevChildPort,
                                                  Port newChildPort) {
  const AgentIx m = pickSeekerAt(w);
  DISP_CHECK(m != kNoAgent, "no seeker available for the sibling-pointer trip");
  engine_.stageMove(m, prevChildPort);
  co_await engine_.nextRound();
  const NodeId c = engine_.positionOf(m);
  for (std::uint32_t i = 0; i <= kMaxCustodianWait; ++i) {
    if (NodeRecord* rc = holderRecordAt(c)) {
      rc->nextSiblingPort = newChildPort;
      break;
    }
    DISP_CHECK(i < kMaxCustodianWait, "sibling-pointer trip never met the custodian");
    ++stats_.custodianWaitRounds;
    co_await engine_.nextRound();
  }
  engine_.stageMove(m, engine_.pinOf(m));
  co_await engine_.nextRound();
}

Task RootedSyncDispersion::messengerSiblingCover(NodeId u, Port portBackToParent,
                                                 Port childPortOfU, Port anchorPort) {
  const AgentIx m = pickSeekerAt(u);
  DISP_CHECK(m != kNoAgent, "no seeker available for the cover messenger");
  engine_.stageMove(m, portBackToParent);
  co_await engine_.nextRound();  // at the parent w
  engine_.stageMove(m, anchorPort);
  co_await engine_.nextRound();  // at the anchor sibling u'
  co_await awaitSettlerIdleAtHome(engine_.positionOf(m));
  const AgentIx anchor = foundSettler_;
  DISP_CHECK(st_[anchor].ownRecord.has_value(), "anchor settler without record");
  osc_.addSiblingStop(anchor, st_[anchor].ownRecord->parentPort, childPortOfU);
  markBits(anchor);
  engine_.stageMove(m, engine_.pinOf(m));
  co_await engine_.nextRound();  // back at w
  engine_.stageMove(m, childPortOfU);
  co_await engine_.nextRound();  // back at u
}

Task RootedSyncDispersion::trimLeaf(NodeId pw, Port portToLeaf, Port anchorPort) {
  DISP_CHECK(anchorPort != kNoPort, "leaf trimming without a kept anchor");
  const AgentIx m = pickSeekerAt(pw);
  DISP_CHECK(m != kNoAgent, "no seeker available for leaf trimming");
  engine_.stageMove(m, portToLeaf);
  co_await engine_.nextRound();  // at the trimmed leaf w
  const NodeId w = engine_.positionOf(m);
  const AgentIx aw = settlerAtNode(w);
  DISP_CHECK(aw != kNoAgent, "trim target has no settler");
  DISP_CHECK(!osc_.isOscillating(aw), "trimmed leaf settler should not oscillate");
  DISP_CHECK(st_[aw].ownRecord.has_value(), "trim target record missing");

  NodeRecord recW = std::move(*st_[aw].ownRecord);
  st_[aw].ownRecord.reset();
  markBits(aw);
  recW.occupied = false;
  st_[aw].settled = false;
  st_[aw].settledAt = kInvalidNode;
  st_[aw].role = Role::Explorer;
  --settledCount_;
  ++stats_.trims;
  engine_.traceUnsettle(aw);  // Backtrack_Move leaf trim collects the settler

  // Both return to pw: the collected ex-settler's pin still points to pw
  // (it has not moved since it settled).
  engine_.stageMove(m, engine_.pinOf(m));
  engine_.stageMove(aw, engine_.pinOf(aw));
  co_await engine_.nextRound();  // both at pw

  // Messenger delivers the record + cover duty to the anchor leaf.
  engine_.stageMove(m, anchorPort);
  co_await engine_.nextRound();  // at anchor
  co_await awaitSettlerIdleAtHome(engine_.positionOf(m));
  const AgentIx anchor = foundSettler_;
  DISP_CHECK(st_[anchor].ownRecord.has_value(), "anchor settler without record");
  osc_.addSiblingStop(anchor, st_[anchor].ownRecord->parentPort, portToLeaf);
  st_[anchor].covered.push_back({portToLeaf, w, std::move(recW)});
  markBits(anchor);

  engine_.stageMove(m, engine_.pinOf(m));
  co_await engine_.nextRound();  // back at pw
}

// ------------------------------------------------------------ Sync_Probe

Task RootedSyncDispersion::probeAt(NodeId w) {
  ++stats_.probes;
  const std::uint64_t startRound = engine_.round();
  const Graph& g = engine_.graph();
  const Port limit = static_cast<Port>(
      std::min<std::uint32_t>(g.degree(w), engine_.agentCount() - 1));
  probeResult_ = kNoPort;

  while (inHand_->checked < limit) {
    // Gather co-located seekers (ascending ID for determinism): walk the
    // fixed ID-ordered seeker pool instead of sorting per iteration.
    std::vector<AgentIx>& seekers = probeSeekers_;
    seekers.clear();
    for (const AgentIx a : seekersById_) {
      if (!st_[a].settled && st_[a].role == Role::Seeker &&
          engine_.positionOf(a) == w) {
        seekers.push_back(a);
      }
    }
    DISP_CHECK(!seekers.empty(), "probe without seekers");

    const Port delta = static_cast<Port>(std::min<std::uint32_t>(
        static_cast<std::uint32_t>(seekers.size()), limit - inHand_->checked));
    ++stats_.probeIterations;

    // Move out: seeker i takes port checked + 1 + i.
    for (Port i = 0; i < delta; ++i) {
      engine_.stageMove(seekers[i], inHand_->checked + 1 + i);
    }
    co_await engine_.nextRound();

    // Wait 6 rounds at the neighbor; any co-location there (settler at
    // home, or an oscillating coverer passing through) marks it as a tree
    // node.  7 position snapshots cover a full oscillation period.
    probeMet_.assign(delta, 0);
    std::vector<std::uint8_t>& met = probeMet_;
    for (std::uint32_t snap = 0; snap <= 6; ++snap) {
      for (Port i = 0; i < delta; ++i) {
        if (engine_.countAt(engine_.positionOf(seekers[i])) > 1) met[i] = 1;
      }
      if (snap < 6) co_await engine_.nextRound();
    }

    // Return.
    for (Port i = 0; i < delta; ++i) {
      engine_.stageMove(seekers[i], engine_.pinOf(seekers[i]));
    }
    co_await engine_.nextRound();

    // Evaluate: smallest unvisited port wins (Algorithm 2 line 9); checked
    // does not advance on success so skipped ports are re-examined later.
    Port found = kNoPort;
    for (Port i = 0; i < delta; ++i) {
      if (!met[i]) {
        found = inHand_->checked + 1 + i;
        break;
      }
    }
    if (found != kNoPort) {
      probeResult_ = found;
      break;
    }
    inHand_->checked = inHand_->checked + delta;
  }
  stats_.maxProbeRounds =
      std::max(stats_.maxProbeRounds, engine_.round() - startRound);
}

// ----------------------------------------------------------- DFS moves

Task RootedSyncDispersion::forwardMove(NodeId w, Port p) {
  // Capture everything needed from the record of w before check-in.
  const std::uint32_t x = inHand_->childCount + 1;
  const std::uint32_t parentDepth = inHand_->depth;
  const bool childOdd = ((parentDepth + 1) % 2 == 1);

  // Sibling-pointer maintenance (Forward_Move lines 1–5).
  if (x == 1) {
    inHand_->firstChildPort = p;
  } else {
    co_await sideTripSetNextSibling(w, inHand_->latestChildPort, p);
  }

  // Decide the child's occupancy and arrange coverage (Forward_Move 8–21).
  bool childEmpty = false;
  bool coverBySibling = false;
  if (childOdd) {
    if (x <= 3) {
      co_await awaitSettlerIdleAtHome(w);
      osc_.addChildStop(foundSettler_, p);
      markBits(foundSettler_);
      childEmpty = true;
    } else if (x % 3 == 1) {
      inHand_->anchorChildPort = p;  // new anchor; it will cover x+1, x+2
    } else {
      childEmpty = true;
      coverBySibling = true;
    }
  }
  const Port anchorPort = inHand_->anchorChildPort;
  inHand_->childCount = x;
  inHand_->latestChildPort = p;

  co_await checkInRecord(w);
  co_await moveGroup(w, p);
  const NodeId u = engine_.positionOf(leader_);
  ++stats_.forwardMoves;
  ++stats_.treeSize;

  NodeRecord ru;
  ru.parentPort = engine_.pinOf(leader_);
  ru.depth = parentDepth + 1;
  ru.occupied = !childEmpty;
  inHand_ = ru;

  if (!childEmpty) {
    const AgentIx who = chooseSettleCandidate(u);
    settleAgent(who, u);
  } else if (coverBySibling) {
    co_await messengerSiblingCover(u, ru.parentPort, p, anchorPort);
  }
  recordMemory();
}

Task RootedSyncDispersion::backtrackMove(NodeId w) {
  const bool wasLeaf = (inHand_->childCount == 0);
  const bool wEven = (inHand_->depth % 2 == 0);
  const bool wOccupied = inHand_->occupied;
  const Port pp = inHand_->parentPort;
  DISP_CHECK(pp != kNoPort, "DFS exhausted at the root before k nodes (k > n?)");

  co_await checkInRecord(w);
  co_await moveGroup(w, pp);
  const NodeId pw = engine_.positionOf(leader_);
  const Port portToW = engine_.pinOf(leader_);
  ++stats_.backtracks;

  co_await checkOutRecord(pw);

  // Leaf trimming (Backtrack_Move): only even-depth leaves participate.
  if (wasLeaf && wEven) {
    DISP_CHECK(wOccupied, "even-depth leaf should hold a settler before trimming");
    const std::uint32_t x = ++inHand_->leafChildCount;
    if (x % 3 == 1) {
      inHand_->anchorLeafPort = portToW;  // kept: becomes the sibling anchor
    } else {
      co_await trimLeaf(pw, portToW, inHand_->anchorLeafPort);
    }
  }
  recordMemory();
}

// ----------------------------------------------- final settling phases

Task RootedSyncDispersion::settleRemaining(NodeId last) {
  stats_.emptyAtDfsEnd = stats_.treeSize - settledCount_;
  stats_.dfsEndRound = engine_.round();
  co_await checkInRecord(last);

  // Walk to the root along parent pointers (custodian waits en route).
  NodeId cur = last;
  for (;;) {
    co_await awaitHolderAt(cur);
    const Port pp = holderRecordAt(cur)->parentPort;
    if (pp == kNoPort) break;
    co_await moveGroup(cur, pp);
    cur = engine_.positionOf(leader_);
  }
  co_await retraverse(cur);
}

Task RootedSyncDispersion::retraverse(NodeId root) {
  // Preorder walk along firstChild/nextSibling pointers; settle one agent
  // at every empty node; the leader settles last.
  NodeId cur = root;
  co_await awaitHolderAt(cur);
  Port down = holderRecordAt(cur)->firstChildPort;

  const auto allSettled = [this] { return settledCount_ == engine_.agentCount(); };

  while (!allSettled()) {
    if (down != kNoPort) {
      co_await moveGroup(cur, down);
      cur = engine_.positionOf(leader_);

      // Visit: settle if the node is empty.
      co_await awaitHolderAt(cur);
      AgentIx holder = kNoAgent;
      std::size_t coveredIx = static_cast<std::size_t>(-1);
      NodeRecord* rec = holderRecordAt(cur, &holder, &coveredIx);
      if (!rec->occupied) {
        DISP_CHECK(coveredIx != static_cast<std::size_t>(-1),
                   "empty node record held outside a coverer");
        NodeRecord taken = *rec;
        markBits(holder);
        st_[holder].covered.erase(st_[holder].covered.begin() +
                                  static_cast<std::ptrdiff_t>(coveredIx));
        osc_.dropCurrentStop(holder);
        taken.occupied = true;

        AgentIx who = minIdAgentAt(engine_, cur, [this](AgentIx a) {
          return !st_[a].settled && a != leader_;
        });
        if (who == kNoAgent) who = leader_;  // leader settles last
        settleAgent(who, cur);
        st_[who].ownRecord = std::move(taken);
        markBits(who);
        recordMemory();
        if (allSettled()) co_return;
      }
      co_await awaitHolderAt(cur);
      down = holderRecordAt(cur)->firstChildPort;
    } else {
      // Ascend until a pending next sibling appears.
      for (;;) {
        co_await awaitHolderAt(cur);
        NodeRecord* rec = holderRecordAt(cur);
        const Port sib = rec->nextSiblingPort;
        const Port pp = rec->parentPort;
        DISP_CHECK(pp != kNoPort || allSettled(),
                   "retraversal returned to the root with agents unsettled");
        if (pp == kNoPort) co_return;
        co_await moveGroup(cur, pp);
        cur = engine_.positionOf(leader_);
        if (sib != kNoPort) {
          down = sib;
          break;
        }
      }
    }
  }
}

// ---------------------------------------------------------------- main

Task RootedSyncDispersion::protocol() {
  const std::uint32_t k = engine_.agentCount();
  const NodeId s = engine_.positionOf(leader_);

  // Settle the smallest-ID agent (an explorer by construction) at the root.
  const AgentIx amin = chooseSettleCandidate(s);
  settleAgent(amin, s);
  NodeRecord r0;
  r0.occupied = true;
  r0.parentPort = kNoPort;
  r0.depth = 0;
  inHand_ = r0;
  stats_.treeSize = 1;
  recordMemory();

  NodeId w = s;
  while (stats_.treeSize < k) {
    co_await probeAt(w);
    if (probeResult_ != kNoPort) {
      co_await forwardMove(w, probeResult_);
    } else {
      co_await backtrackMove(w);
    }
    w = engine_.positionOf(leader_);
  }
  co_await settleRemaining(w);
  DISP_CHECK(settledCount_ == k, "protocol ended with unsettled agents");

  // Ex-oscillators finish their final trip home and settle for good (≤ 6
  // rounds; their stop lists are empty so trips end at home).
  for (std::uint32_t i = 0; i <= kMaxCustodianWait; ++i) {
    if (osc_.allIdleAtHome()) {
      // Retire the leftover oscillator bookkeeping: by now every stop was
      // dropped, but a duty flag cleared only by the next round hook may
      // never see one — retiring emits the closing OscillationDuty drop so
      // the trace's duty churn balances.
      for (AgentIx a = 0; a < k; ++a) {
        if (osc_.isOscillating(a)) osc_.retire(a);
      }
      co_return;
    }
    co_await engine_.nextRound();
  }
  DISP_CHECK(false, "an oscillator never returned home after dispersion");
}

}  // namespace disp
