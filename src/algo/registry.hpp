#pragma once
// String-keyed algorithm registry: the library's one extension point for
// dispersion protocols.
//
// Every algorithm is registered under a stable snake_case key ("rooted_sync",
// "general_async", ...) with its traits (model, placement requirements,
// paper reference) and a factory that instantiates the protocol on an
// engine.  The run session (runner.hpp), the experiment driver (exp/sweep),
// `disp_bench`, examples and tests all resolve algorithms here by name —
// adding an algorithm (e.g. the Theorem 8.1 SYNC-general oscillation
// machinery) means one registerAlgorithm() call, not edits to five parallel
// switch statements.
//
// Lookup accepts either the canonical key or the display name (the string
// historically printed in Table 1 rows, e.g. "RootedSyncDisp"), so output
// produced by older runs round-trips back into the API.

#include <deque>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/async_engine.hpp"
#include "core/sync_engine.hpp"

namespace disp {

/// Static facts about a registered algorithm.
struct AlgorithmTraits {
  std::string key;      ///< canonical registry key (snake_case)
  std::string display;  ///< table/display name (historical algorithmName)
  std::string paperRef;  ///< theorem/section the implementation maps to
  bool isAsync = false;
  /// Requires a rooted initial configuration (all agents on one node).
  bool requiresRooted = false;
};

/// Type-erased protocol handle: the registry factories wrap each concrete
/// protocol class (which owns per-agent state and installs its fibers on
/// the engine) behind this minimal run-session interface.
class ProtocolHandle {
 public:
  virtual ~ProtocolHandle() = default;
  /// Installs the protocol's fibers/hooks; call engine.run() afterwards.
  virtual void start() = 0;
  /// Protocol-level termination predicate, valid after engine.run().
  [[nodiscard]] virtual bool dispersed() const = 0;
};

/// One registry entry.  Exactly one of makeSync/makeAsync is non-null,
/// matching traits.isAsync.
struct AlgorithmDef {
  AlgorithmTraits traits;
  std::unique_ptr<ProtocolHandle> (*makeSync)(SyncEngine&) = nullptr;
  std::unique_ptr<ProtocolHandle> (*makeAsync)(AsyncEngine&) = nullptr;
};

/// All registered algorithms, in registration order (the six built-ins
/// first).  Deque storage: registerAlgorithm() never invalidates
/// references to existing entries (runSession and the display-name
/// accessors hold them across whole runs).
[[nodiscard]] const std::deque<AlgorithmDef>& algorithmRegistry();

/// Lookup by canonical key or display name; nullptr when unknown.
[[nodiscard]] const AlgorithmDef* findAlgorithm(std::string_view name);

/// Lookup that throws std::invalid_argument naming the unknown algorithm
/// and listing the known keys.
[[nodiscard]] const AlgorithmDef& algorithmDef(std::string_view name);

/// Canonical keys in registration order (CLI help, test enumeration).
[[nodiscard]] std::vector<std::string> algorithmKeys();

/// Registers an additional algorithm.  Throws std::invalid_argument on a
/// duplicate key/display name or a factory/traits model mismatch.
void registerAlgorithm(AlgorithmDef def);

/// Display name for a registry key ("rooted_sync" -> "RootedSyncDisp");
/// throws on unknown names.  This is the string Table 1 rows print.
[[nodiscard]] const std::string& algorithmDisplayName(std::string_view name);

}  // namespace disp
