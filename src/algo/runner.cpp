#include "algo/runner.hpp"

#include <utility>

#include <memory>

#include "algo/registry.hpp"
#include "core/async_engine.hpp"
#include "core/faults.hpp"
#include "core/scheduler.hpp"
#include "core/sync_engine.hpp"
#include "graph/spec.hpp"
#include "util/check.hpp"

namespace disp {

const std::string& algorithmKey(Algorithm a) {
  static const std::string keys[] = {"rooted_sync", "rooted_async", "general_sync",
                                     "general_async", "ks_sync", "ks_async"};
  const auto ix = static_cast<std::size_t>(a);
  DISP_CHECK(ix < std::size(keys), "unknown algorithm");
  return keys[ix];
}

const std::string& algorithmName(Algorithm a) {
  return algorithmDef(algorithmKey(a)).traits.display;
}

bool isAsync(Algorithm a) { return algorithmDef(algorithmKey(a)).traits.isAsync; }

namespace {

RunResult finishSync(SyncEngine& engine, bool dispersed) {
  RunResult r;
  r.dispersed = dispersed;
  r.time = engine.round();
  // In the SYNC model every agent performs one CCM cycle per round, so the
  // activation count is exactly rounds * k (used for throughput telemetry).
  r.activations = engine.round() * engine.agentCount();
  r.totalMoves = engine.totalMoves();
  r.maxMemoryBits = engine.memory().maxBits();
  r.finalPositions = engine.positionsSnapshot();
  r.stoppedEarly = engine.stopRequested();
  return r;
}

RunResult finishAsync(AsyncEngine& engine, bool dispersed) {
  RunResult r;
  r.dispersed = dispersed;
  r.time = engine.epochs();
  r.activations = engine.activations();
  r.totalMoves = engine.totalMoves();
  r.maxMemoryBits = engine.memory().maxBits();
  r.finalPositions = engine.positionsSnapshot();
  r.stoppedEarly = engine.stopRequested();
  return r;
}

/// Builds the engine-level observer from the session options; when the
/// trajectory is captured, the sampled-step hook tees into `trajectory`
/// before forwarding to the user's callback.
EngineObserver buildObserver(const RunOptions& opts, bool async,
                             std::vector<TrajectoryPoint>* trajectory) {
  EngineObserver obs;
  obs.sampleEvery = opts.sampleEvery;
  obs.onEvent = opts.onEvent;
  obs.stopWhen = opts.stopWhen;
  const auto& userStep = async ? opts.onActivation : opts.onRound;
  if (opts.captureTrajectory) {
    obs.onStep = [trajectory, &userStep](const StepSnapshot& s) {
      trajectory->push_back({s.time, s.settled, s.totalMoves});
      if (userStep) userStep(s);
    };
  } else {
    obs.onStep = userStep;
  }
  return obs;
}

/// Runs the engine.  Under faults a protocol whose belief desynced (vetoed
/// moves, crashed peers) may violate its own DISP_CHECK invariants; that is
/// a robustness verdict, not a harness bug — report the message instead of
/// throwing.  Fault-free runs keep throwing (invariants then mean bugs).
template <typename Engine>
std::string runEngine(Engine& engine, std::uint64_t limit, bool faulted) {
  if (!faulted) {
    engine.run(limit);
    return {};
  }
  try {
    engine.run(limit);
    return {};
  } catch (const std::logic_error& e) {
    return e.what();
  }
}

/// Fills the fault-mode verdict fields.  Under faults the protocol's own
/// dispersed() claim is re-checked against the actual configuration (its
/// belief may have desynced from vetoed moves); without faults, recovery
/// trivially mirrors dispersal.
void fillFaultVerdicts(RunResult& r, const FaultInjector* inj, bool limitHit,
                       std::string protocolError) {
  if (inj == nullptr) {
    r.recovered = r.dispersed;
    return;
  }
  r.dispersed = r.dispersed && protocolError.empty() && isDispersed(r.finalPositions);
  r.limitHit = limitHit;
  r.faultsInjected = inj->applied();
  r.protocolError = std::move(protocolError);
  if (r.protocolError.empty()) {
    r.recovered = inj->recovered();
    r.recoveredAt = inj->recoveredAt();
  }
}

}  // namespace

RunResult runSession(const Graph& g, const Placement& placement,
                     const RunOptions& opts) {
  const AlgorithmDef& def = algorithmDef(opts.algorithm);
  const auto k = static_cast<std::uint32_t>(placement.positions.size());
  DISP_REQUIRE(k >= 1, "placement is empty");
  DISP_REQUIRE(opts.sampleEvery >= 1, "sampleEvery must be >= 1");
  if (def.traits.requiresRooted) {
    for (const NodeId v : placement.positions) {
      DISP_REQUIRE(v == placement.positions.front(),
                   "algorithm '" + def.traits.key +
                       "' requires a rooted placement (all agents on one node)");
    }
  }

  std::vector<TrajectoryPoint> trajectory;

  // Fault load: parse once, materialize the seed-deterministic schedule per
  // engine model (ASYNC time parameters scale by k; see FaultInjector).
  const FaultSpec faultSpec = FaultSpec::parse(opts.faults);

  if (!def.traits.isAsync) {
    const std::uint64_t limit =
        opts.limit ? opts.limit : 20000ULL * k + 40ULL * g.edgeCount() + 400000;
    SyncEngine engine(g, placement.positions, placement.ids);
    if (opts.runThreads != 1) engine.setRunThreads(opts.runThreads);
    EngineObserver obs = buildObserver(opts, /*async=*/false, &trajectory);
    if (obs.any()) engine.installObserver(std::move(obs));
    std::unique_ptr<FaultInjector> inj;
    if (faultSpec.any()) {
      inj = std::make_unique<FaultInjector>(faultSpec, g, k, opts.seed,
                                            /*async=*/false);
      engine.installFaults(inj.get());
    }
    const auto algo = def.makeSync(engine);
    algo->start();
    std::string protoErr = runEngine(engine, limit, inj != nullptr);
    RunResult r = finishSync(engine, protoErr.empty() && algo->dispersed());
    fillFaultVerdicts(r, inj.get(), engine.limitHit(), std::move(protoErr));
    r.trajectory = std::move(trajectory);
    return r;
  }

  const std::uint64_t limit =
      opts.limit ? opts.limit
                 : 4000ULL * k * k + 800ULL * k * g.maxDegree() + 8000000ULL;
  AsyncEngine engine(g, placement.positions, placement.ids,
                     makeSchedulerByName(opts.scheduler, k, opts.seed));
  EngineObserver obs = buildObserver(opts, /*async=*/true, &trajectory);
  if (obs.any()) engine.installObserver(std::move(obs));
  std::unique_ptr<FaultInjector> inj;
  if (faultSpec.any()) {
    inj = std::make_unique<FaultInjector>(faultSpec, g, k, opts.seed,
                                          /*async=*/true);
    engine.installFaults(inj.get());
  }
  const auto algo = def.makeAsync(engine);
  algo->start();
  std::string protoErr = runEngine(engine, limit, inj != nullptr);
  RunResult r = finishAsync(engine, protoErr.empty() && algo->dispersed());
  fillFaultVerdicts(r, inj.get(), engine.limitHit(), std::move(protoErr));
  r.trajectory = std::move(trajectory);
  return r;
}

RunResult runScenario(const std::string& graphSpec, const std::string& placementSpec,
                      std::uint32_t k, const RunOptions& opts, std::uint32_t n) {
  DISP_REQUIRE(k >= 1, "k must be >= 1");
  const Graph g = GraphSpec::parse(graphSpec)
                      .instantiate(n != 0 ? n : 2 * k, opts.seed,
                                   PortLabeling::RandomPermutation);
  const Placement p = PlacementSpec::parse(placementSpec).place(g, k, opts.seed);
  return runSession(g, p, opts);
}

RunResult runDispersion(const Graph& g, const Placement& placement,
                        const RunSpec& spec) {
  RunOptions opts;
  opts.algorithm = algorithmKey(spec.algorithm);
  opts.scheduler = spec.scheduler;
  opts.seed = spec.seed;
  opts.limit = spec.limit;
  return runSession(g, placement, opts);
}

}  // namespace disp
