#include "algo/runner.hpp"

#include "algo/async_rooted.hpp"
#include "algo/baseline_ks.hpp"
#include "algo/general_async.hpp"
#include "algo/general_sync.hpp"
#include "algo/sync_rooted.hpp"
#include "core/async_engine.hpp"
#include "core/scheduler.hpp"
#include "core/sync_engine.hpp"
#include "util/check.hpp"

namespace disp {

std::string algorithmName(Algorithm a) {
  switch (a) {
    case Algorithm::RootedSync: return "RootedSyncDisp";
    case Algorithm::RootedAsync: return "RootedAsyncDisp";
    case Algorithm::GeneralSync: return "GeneralSync(doubling)";
    case Algorithm::GeneralAsync: return "GeneralAsync(Thm8.2)";
    case Algorithm::KsSync: return "KS-sync";
    case Algorithm::KsAsync: return "KS-async";
  }
  return "?";
}

bool isAsync(Algorithm a) {
  return a == Algorithm::RootedAsync || a == Algorithm::GeneralAsync ||
         a == Algorithm::KsAsync;
}

namespace {

RunResult finishSync(SyncEngine& engine, bool dispersed) {
  RunResult r;
  r.dispersed = dispersed;
  r.time = engine.round();
  // In the SYNC model every agent performs one CCM cycle per round, so the
  // activation count is exactly rounds * k (used for throughput telemetry).
  r.activations = engine.round() * engine.agentCount();
  r.totalMoves = engine.totalMoves();
  r.maxMemoryBits = engine.memory().maxBits();
  r.finalPositions = engine.positionsSnapshot();
  return r;
}

RunResult finishAsync(AsyncEngine& engine, bool dispersed) {
  RunResult r;
  r.dispersed = dispersed;
  r.time = engine.epochs();
  r.activations = engine.activations();
  r.totalMoves = engine.totalMoves();
  r.maxMemoryBits = engine.memory().maxBits();
  r.finalPositions = engine.positionsSnapshot();
  return r;
}

}  // namespace

RunResult runDispersion(const Graph& g, const Placement& placement,
                        const RunSpec& spec) {
  const auto k = static_cast<std::uint32_t>(placement.positions.size());
  DISP_REQUIRE(k >= 1, "placement is empty");
  const std::uint64_t syncLimit =
      spec.limit ? spec.limit : 20000ULL * k + 40ULL * g.edgeCount() + 400000;
  const std::uint64_t asyncLimit =
      spec.limit ? spec.limit
                 : 4000ULL * k * k + 800ULL * k * g.maxDegree() + 8000000ULL;

  switch (spec.algorithm) {
    case Algorithm::RootedSync: {
      if (k < 7) {
        SyncEngine engine(g, placement.positions, placement.ids);
        KsSyncDispersion algo(engine);
        algo.start();
        engine.run(syncLimit);
        return finishSync(engine, algo.dispersed());
      }
      SyncEngine engine(g, placement.positions, placement.ids);
      RootedSyncDispersion algo(engine);
      algo.start();
      engine.run(syncLimit);
      return finishSync(engine, algo.dispersed());
    }
    case Algorithm::GeneralSync: {
      SyncEngine engine(g, placement.positions, placement.ids);
      GeneralSyncDispersion algo(engine);
      algo.start();
      engine.run(syncLimit);
      return finishSync(engine, algo.dispersed());
    }
    case Algorithm::KsSync: {
      SyncEngine engine(g, placement.positions, placement.ids);
      KsSyncDispersion algo(engine);
      algo.start();
      engine.run(syncLimit);
      return finishSync(engine, algo.dispersed());
    }
    case Algorithm::GeneralAsync: {
      AsyncEngine engine(g, placement.positions, placement.ids,
                         makeSchedulerByName(spec.scheduler, k, spec.seed));
      GeneralAsyncDispersion algo(engine);
      algo.start();
      engine.run(asyncLimit);
      return finishAsync(engine, algo.dispersed());
    }
    case Algorithm::RootedAsync: {
      AsyncEngine engine(g, placement.positions, placement.ids,
                         makeSchedulerByName(spec.scheduler, k, spec.seed));
      RootedAsyncDispersion algo(engine);
      algo.start();
      engine.run(asyncLimit);
      return finishAsync(engine, algo.dispersed());
    }
    case Algorithm::KsAsync: {
      AsyncEngine engine(g, placement.positions, placement.ids,
                         makeSchedulerByName(spec.scheduler, k, spec.seed));
      KsAsyncDispersion algo(engine);
      algo.start();
      engine.run(asyncLimit);
      return finishAsync(engine, algo.dispersed());
    }
  }
  DISP_CHECK(false, "unknown algorithm");
  return {};
}

}  // namespace disp
