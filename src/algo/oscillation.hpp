#pragma once
// Oscillating settlers (§5.2, Figs. 2–4).
//
// A settler assigned coverage duty loops over its covered empty nodes
// continuously, one edge per round:
//   Children type: home → c1 → home → c2 → home → c3 → home   (≤ 6 rounds)
//   Siblings type: home → P → a → P → b → P → home            (≤ 6 rounds)
// Because the cycle is at most 6 rounds, every covered node (and the home
// node itself) is visited at least once in any window of 7 consecutive
// round commits — which is exactly why Sync_Probe's 6-round wait at a
// neighbor always detects tree membership (Lemma 4), and why "wait for the
// custodian" costs at most 6 rounds anywhere in the SYNC algorithms.
//
// Route knowledge is strictly local: stops are stored as ports (child port
// at home; parent port plus sibling port at the parent); return hops use
// the agent's own pin.  The system stages one move per oscillating agent
// per round through a SyncEngine round hook.
//
// Assignment changes require co-location, mirroring the paper's local
// communication: new stops may only be added while the oscillator is at
// home (callers arrange co-location and at-home-ness first), and a stop may
// only be dropped while the oscillator is standing on it.

#include <cstdint>
#include <optional>
#include <vector>

#include "core/sync_engine.hpp"
#include "graph/graph.hpp"

namespace disp {

class OscillatorSystem {
 public:
  explicit OscillatorSystem(SyncEngine& engine);

  /// Registers the round hook with the engine.  Call once.
  void install();

  /// Adds a covered child: agent (at home) will visit neighbor(home, childPort).
  /// Requires: agent at home; children-type or fresh; at most 3 stops.
  void addChildStop(AgentIx agent, Port childPort);

  /// Adds a covered sibling: agent (at home) will visit it via its parent:
  /// home --parentPort--> P --siblingPortAtParent--> sibling.
  /// Requires: agent at home; sibling-type or fresh; at most 2 stops;
  /// consistent parentPort.
  void addSiblingStop(AgentIx agent, Port parentPort, Port siblingPortAtParent);

  /// True iff the agent currently has coverage duty (stops assigned or a
  /// trip still in flight).  One flat-array byte load: memory accounting
  /// calls this for every agent at every checkpoint.
  [[nodiscard]] bool isOscillating(AgentIx agent) const {
    return duty_[agent] != 0;
  }

  /// True iff the agent is physically at its home node (trivially true for
  /// non-oscillating agents).
  [[nodiscard]] bool isAtHome(AgentIx agent) const;

  /// True iff the agent is at home *between* trips — the only moment new
  /// stops may be added, so that every stop is visited within 6 rounds of
  /// assignment.  Occurs at least once every 6 rounds.
  [[nodiscard]] bool isIdleAtHome(AgentIx agent) const;

  /// If the agent is currently standing on one of its covered stops,
  /// returns that stop's port key (child port / sibling port at parent).
  [[nodiscard]] std::optional<Port> currentStopPort(AgentIx agent) const;

  /// Drops the stop the agent currently stands on (see currentStopPort).
  /// When the last stop is dropped the agent finishes its trip home and
  /// stops oscillating.
  void dropCurrentStop(AgentIx agent);

  /// Removes the agent from the system entirely (e.g. the settler was
  /// collected during subsumption).  Requires the agent holds no stops or
  /// is being forcibly collected with its covered records already moved.
  void retire(AgentIx agent);

  /// Longest cycle length currently assigned (test introspection; Lemma 2
  /// says <= 6).
  [[nodiscard]] std::uint32_t maxCycleRounds() const;

  /// True iff every registered oscillator is idle at its home node (no
  /// pending trip hops).  Protocols wait for this before terminating: an
  /// ex-oscillator must end settled at home.
  [[nodiscard]] bool allIdleAtHome() const;

 private:
  // One planned hop: move via an explicit port, via the agent's pin, or via
  // the remembered port from the parent back home (sibling trips).
  struct Hop {
    enum class Kind : std::uint8_t { Literal, Pin, HomeReturn } kind;
    Port port = kNoPort;        // Literal
    Port stopKey = kNoPort;     // set on hops that ARRIVE at a covered stop
  };

  struct Osc {
    AgentIx agent = kNoAgent;
    bool siblingType = false;
    Port parentPort = kNoPort;       // sibling type only
    Port homeReturn = kNoPort;       // port at parent leading home (learned)
    std::vector<Port> stops;         // child ports / sibling ports at parent
    std::vector<Hop> plan;           // remaining hops of the current cycle
    std::size_t planIx = 0;
    NodeId home = kInvalidNode;      // engine bookkeeping
    Port atStop = kNoPort;           // stop the agent stands on now (else 0)
  };

  [[nodiscard]] Osc* find(AgentIx agent);
  [[nodiscard]] const Osc* find(AgentIx agent) const;
  Osc& findOrCreate(AgentIx agent);
  void rebuildPlan(Osc& osc) const;
  /// One oscillator's per-round step, writing its move/duty-event to
  /// `sink` — directly to the engine on the serial path, to a per-lane
  /// stager on the parallel one.  Each step touches only its own Osc and
  /// duty_ slot and reads frozen engine state, so contiguous chunks of
  /// oscs_ may step concurrently.
  template <typename Sink>
  void stepOscillator(Osc& osc, Sink& sink);
  void stageMoves();

  SyncEngine& engine_;
  std::vector<Osc> oscs_;
  /// Agent -> index into oscs_ (kNoAgent = none): find() is O(1), which
  /// matters because per-agent memory accounting queries isOscillating()
  /// for every agent (O(k * oscillators) per snapshot otherwise).
  std::vector<AgentIx> ixOf_;
  /// Mirror of `!stops.empty() || !plan.empty()` per agent, maintained at
  /// the duty transitions (stop added, retired trip cleared, retire()).
  std::vector<std::uint8_t> duty_;
  bool installed_ = false;
};

}  // namespace disp
