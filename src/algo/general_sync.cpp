#include "algo/general_sync.hpp"

#include <algorithm>

#include "algo/protocol_common.hpp"
#include "graph/graph_algos.hpp"
#include "util/check.hpp"

namespace disp {

GeneralSyncDispersion::GeneralSyncDispersion(SyncEngine& engine)
    : engine_(engine),
      st_(engine.agentCount()),
      widths_(BitWidths::forRun(4ULL * engine.agentCount(), engine.graph().maxDegree(),
                                engine.agentCount())) {
  // One group per initially occupied node (ascending node order, as the
  // historical std::set iteration produced).
  std::vector<NodeId> startNodes;
  startNodes.reserve(engine_.agentCount());
  for (AgentIx a = 0; a < engine_.agentCount(); ++a) {
    startNodes.push_back(engine_.positionOf(a));
  }
  std::sort(startNodes.begin(), startNodes.end());
  startNodes.erase(std::unique(startNodes.begin(), startNodes.end()),
                   startNodes.end());
  ledGroups_.assign(engine_.agentCount(), 0);
  for (const NodeId s : startNodes) {
    GroupCtx ctx;
    ctx.label = static_cast<Label>(groups_.size());
    ctx.head = s;
    for (const AgentIx a : engine_.agentsAt(s)) {
      st_[a].label = ctx.label;
      ++ctx.total;
      if (ctx.leader == kNoAgent || engine_.idOf(a) > engine_.idOf(ctx.leader)) {
        ctx.leader = a;
      }
    }
    ctx.unsettled = ctx.total;
    ++ledGroups_[ctx.leader];
    unsettledTotal_ += ctx.unsettled;
    groups_.push_back(ctx);
  }
  probeNext_.assign(groups_.size(), kNoPort);
  probeMet_.assign(groups_.size(), {});
}

void GeneralSyncDispersion::start() {
  for (std::uint32_t gi = 0; gi < groups_.size(); ++gi) {
    engine_.addFiber(groupFiber(gi));
  }
}

bool GeneralSyncDispersion::dispersed() const {
  std::vector<NodeId> where;
  for (AgentIx a = 0; a < engine_.agentCount(); ++a) {
    if (!st_[a].settled || st_[a].isGuest) return false;
    if (engine_.positionOf(a) != st_[a].settledAt) return false;
    where.push_back(engine_.positionOf(a));
  }
  return isDispersed(where);
}

std::uint64_t GeneralSyncDispersion::agentBits(AgentIx a) const {
  // id + label + flags + settler record (6 ports) + guest entry + checked,
  // plus a constant-size leadership record (two size counters + head port)
  // per group whose leader field is `a`.  ledGroups_ caches the group scan:
  // the leader field changes only at construction and re-election, where
  // the cache is maintained — so this is the historical sum, in O(1).
  return widths_.id + widths_.count + 3 + 7ULL * widths_.port +
         ledGroups_[a] * (2ULL * widths_.count + widths_.port);
}

void GeneralSyncDispersion::recordMemory() {
  // The ledger keeps a running max per agent, and an agent's bits change
  // only when its ledGroups_ count moves (re-election).  So after one full
  // flush, re-recording agents whose bits did not *rise* is a no-op; only
  // re-elected leaders (memoryDirty_) need a fresh record.  This turns the
  // historical O(k·ℓ) sweep per settle into O(k) once plus O(1) amortized.
  if (!memoryPrimed_) {
    for (AgentIx a = 0; a < engine_.agentCount(); ++a) {
      engine_.memory().record(a, agentBits(a));
    }
    memoryPrimed_ = true;
    memoryDirty_.clear();
    return;
  }
  for (const AgentIx a : memoryDirty_) {
    engine_.memory().record(a, agentBits(a));
  }
  memoryDirty_.clear();
}

// ------------------------------------------------------------- helpers

AgentIx GeneralSyncDispersion::homeSettlerAt(NodeId v, Label label) const {
  for (const AgentIx a : engine_.agentsAt(v)) {
    if (st_[a].settled && !st_[a].isGuest && st_[a].settledAt == v &&
        st_[a].label == label) {
      return a;
    }
  }
  return kNoAgent;
}

AgentIx GeneralSyncDispersion::anySettlerAt(NodeId v) const {
  for (const AgentIx a : engine_.agentsAt(v)) {
    if (st_[a].settled && !st_[a].isGuest && st_[a].settledAt == v) return a;
  }
  return kNoAgent;
}

std::vector<AgentIx> GeneralSyncDispersion::groupAt(NodeId v, Label label) const {
  std::vector<AgentIx> g;
  for (const AgentIx a : engine_.agentsAt(v)) {
    if (!st_[a].settled && st_[a].label == label) g.push_back(a);
  }
  return g;
}

Task GeneralSyncDispersion::moveGroup(std::uint32_t gi, Port p) {
  const NodeId at = engine_.positionOf(groups_[gi].leader);
  for (const AgentIx a : groupAt(at, groups_[gi].label)) engine_.stageMove(a, p);
  co_await engine_.nextRound();
  ++stats_.collapseHops;  // re-used as a generic hop counter during collapses
}

void GeneralSyncDispersion::settle(std::uint32_t gi, AgentIx a, NodeId at,
                                   Port parentPort) {
  AgentState& s = st_[a];
  DISP_CHECK(!s.settled, "double settle");
  s.settled = true;
  s.settledAt = at;
  s.parentPort = parentPort;
  s.checked = 0;
  s.firstChildPort = s.latestChildPort = s.nextSiblingPort = kNoPort;
  --groups_[gi].unsettled;
  --unsettledTotal_;
  engine_.traceSettle(a, groups_[gi].label);
  recordMemory();
}

// --------------------------------------------------------------- probe

Task GeneralSyncDispersion::probeStep(std::uint32_t gi) {
  GroupCtx& ctx = groups_[gi];
  ctx.phase = "probe";
  const Graph& g = engine_.graph();
  const NodeId w = engine_.positionOf(ctx.leader);
  const AgentIx aw = homeSettlerAt(w, ctx.label);
  DISP_CHECK(aw != kNoAgent, "probe at a node without an own settler");
  const Port limit =
      static_cast<Port>(std::min<std::uint32_t>(g.degree(w), engine_.agentCount()));

  probeNext_[gi] = kNoPort;
  probeMet_[gi].clear();

  while (st_[aw].checked < limit) {
    std::vector<AgentIx> avail;
    for (const AgentIx a : engine_.agentsAt(w)) {
      if (st_[a].label != ctx.label) continue;
      if (!st_[a].settled || st_[a].isGuest) avail.push_back(a);
    }
    std::sort(avail.begin(), avail.end(),
              [&](AgentIx a, AgentIx b) { return engine_.idOf(a) < engine_.idOf(b); });
    if (avail.empty()) {
      std::string diag = "probe without available agents: label=" +
                         std::to_string(ctx.label) +
                         " unsettled=" + std::to_string(ctx.unsettled) + " strays:";
      for (AgentIx a = 0; a < engine_.agentCount(); ++a) {
        if (st_[a].label == ctx.label && !st_[a].settled) {
          diag += " a" + std::to_string(a) + "@" +
                  std::to_string(engine_.positionOf(a)) +
                  (a == ctx.leader ? "(leader)" : "");
        }
      }
      diag += " head=" + std::to_string(w);
      DISP_CHECK(false, diag);
    }
    const Port delta = static_cast<Port>(std::min<std::uint32_t>(
        static_cast<std::uint32_t>(avail.size()), limit - st_[aw].checked));
    ++stats_.probeIterations;

    // Out (one round): prober i takes port checked+1+i.
    for (Port i = 0; i < delta; ++i) {
      engine_.stageMove(avail[i], st_[aw].checked + 1 + i);
    }
    co_await engine_.nextRound();

    // Observe and recruit; then everyone returns together (one round).
    std::vector<std::uint8_t> empty(delta, 1);
    for (Port i = 0; i < delta; ++i) {
      const Port port = st_[aw].checked + 1 + i;
      const NodeId ui = engine_.positionOf(avail[i]);
      const AgentIx own = homeSettlerAt(ui, ctx.label);
      bool foreign = false;
      Label foreignLabel = kNoLabel;
      for (const AgentIx b : engine_.agentsAt(ui)) {
        if (b != avail[i] && st_[b].label != ctx.label) {
          foreign = true;
          if (foreignLabel == kNoLabel || st_[b].label < foreignLabel) {
            foreignLabel = st_[b].label;
          }
        }
      }
      if (own != kNoAgent) {
        // Recruit the settler as a helper: it walks back with the prober.
        st_[own].isGuest = true;
        st_[own].guestEntryPort = port;  // port of w leading home
        engine_.stageMove(own, engine_.pinOf(avail[i]));
      }
      if (foreign) probeMet_[gi].emplace_back(foreignLabel, port);
      // Fully unsettled iff the prober stands there alone.
      empty[i] = (engine_.countAt(ui) == 1) ? 1 : 0;
      engine_.stageMove(avail[i], engine_.pinOf(avail[i]));
    }
    co_await engine_.nextRound();

    Port found = kNoPort;
    for (Port i = 0; i < delta; ++i) {
      if (empty[i]) {
        found = st_[aw].checked + 1 + i;
        break;
      }
    }
    if (found != kNoPort) {
      probeNext_[gi] = found;
      co_return;  // checked not advanced: skipped ports re-examined later
    }
    st_[aw].checked = st_[aw].checked + delta;
  }
}

Task GeneralSyncDispersion::returnGuests(std::uint32_t gi) {
  GroupCtx& ctx = groups_[gi];
  const NodeId w = engine_.positionOf(ctx.leader);
  bool any = false;
  for (const AgentIx a : engine_.agentsAt(w)) {
    if (st_[a].label == ctx.label && st_[a].isGuest) {
      engine_.stageMove(a, st_[a].guestEntryPort);
      st_[a].isGuest = false;
      st_[a].guestEntryPort = kNoPort;
      any = true;
    }
  }
  if (any) co_await engine_.nextRound();  // all helpers go home in one round
}

Task GeneralSyncDispersion::sideTripSetNextSibling(std::uint32_t gi, NodeId w,
                                                   Port prevChildPort,
                                                   Port newChildPort) {
  // Any unsettled group member (possibly the leader itself) hops to the
  // previous child and links the sibling chain (used by collapse walks).
  const auto members = groupAt(w, groups_[gi].label);
  DISP_CHECK(!members.empty(), "no messenger available");
  const AgentIx m = members.front();
  engine_.stageMove(m, prevChildPort);
  co_await engine_.nextRound();
  const AgentIx prev = homeSettlerAt(engine_.positionOf(m), groups_[gi].label);
  DISP_CHECK(prev != kNoAgent, "previous child lost its settler");
  st_[prev].nextSiblingPort = newChildPort;
  engine_.stageMove(m, engine_.pinOf(m));
  co_await engine_.nextRound();
}

// ---------------------------------------------------------- subsumption

Task GeneralSyncDispersion::awaitParked(std::uint32_t loser) {
  // (caller sets phase)
  // The loser acknowledges the freeze at its next safe point; a group whose
  // fiber already finished (fully settled) counts as parked.
  for (std::uint64_t i = 0; i < 1u << 20; ++i) {
    const GroupCtx& L = groups_[loser];
    if (L.parked || (L.unsettled == 0 && !L.marching)) co_return;
    co_await engine_.nextRound();
  }
  DISP_CHECK(false, "loser never parked");
}

Task GeneralSyncDispersion::collapseVisit(std::uint32_t gi, Label loserLabel,
                                          Port exclPort) {
  GroupCtx& ctx = groups_[gi];
  const NodeId cur = engine_.positionOf(ctx.leader);

  // Collect any parked loser-group agents stranded here (including the
  // loser's leader): they simply change allegiance and walk with us.
  for (const AgentIx a : engine_.agentsAt(cur)) {
    if (st_[a].label == loserLabel && !st_[a].settled) {
      st_[a].label = ctx.label;
      ++ctx.total;
      ++ctx.unsettled;
      --groups_[loserLabel].total;
      --groups_[loserLabel].unsettled;
    }
  }

  const AgentIx ls = homeSettlerAt(cur, loserLabel);
  if (ls == kNoAgent) {
    std::string diag = "collapse walk: loser tree node without settler: node=" +
                       std::to_string(cur) + " loser=" + std::to_string(loserLabel) +
                       " walker=" + std::to_string(ctx.label) + " occupants:";
    for (const AgentIx b : engine_.agentsAt(cur)) {
      diag += " a" + std::to_string(b) + "(l" + std::to_string(st_[b].label) +
              (st_[b].settled ? ",s" : ",u") + (st_[b].isGuest ? ",g)" : ")");
    }
    DISP_CHECK(false, diag);
  }
  const Port parentPort = st_[ls].parentPort;
  const Port firstChild = st_[ls].firstChildPort;

  // Children chain (skipping the direction we came from; for that child we
  // only peek its sibling pointer to continue the chain).
  Port c = firstChild;
  while (c != kNoPort) {
    if (c == exclPort) {
      co_await moveGroup(gi, c);
      const AgentIx cs = homeSettlerAt(engine_.positionOf(ctx.leader), loserLabel);
      const Port sib = (cs != kNoAgent) ? st_[cs].nextSiblingPort : kNoPort;
      co_await moveGroup(gi, engine_.pinOf(ctx.leader));
      c = sib;
      continue;
    }
    co_await moveGroup(gi, c);
    const Port backUp = engine_.pinOf(ctx.leader);
    const AgentIx cs = homeSettlerAt(engine_.positionOf(ctx.leader), loserLabel);
    DISP_CHECK(cs != kNoAgent, "collapse walk: child without settler");
    const Port sib = st_[cs].nextSiblingPort;
    co_await collapseVisit(gi, loserLabel, backUp);
    co_await moveGroup(gi, backUp);
    c = sib;
  }

  // Parent direction (when we entered from a child or from outside).
  if (parentPort != kNoPort && parentPort != exclPort) {
    co_await moveGroup(gi, parentPort);
    const Port backDown = engine_.pinOf(ctx.leader);
    co_await collapseVisit(gi, loserLabel, backDown);
    co_await moveGroup(gi, backDown);
  }

  // Finally collect this node's settler; its record dies with it.
  AgentState& s = st_[ls];
  s.settled = false;
  s.settledAt = kInvalidNode;
  s.label = ctx.label;
  ++ctx.total;
  ++ctx.unsettled;
  ++unsettledTotal_;
  --groups_[loserLabel].total;
  --groups_[loserLabel].treeSize;
  engine_.traceUnsettle(ls, loserLabel, ctx.label);
}

Task GeneralSyncDispersion::marchToward(std::uint32_t gi, AgentIx anchor) {
  // BFS walk of the whole group toward the anchor agent's (possibly
  // moving) position; every hop is a real staged move.
  for (std::uint64_t guard = 0; guard < 1u << 20; ++guard) {
    const NodeId here = engine_.positionOf(groups_[gi].leader);
    const NodeId there = engine_.positionOf(anchor);
    if (here == there) co_return;
    const auto dist = bfsDistances(engine_.graph(), there);
    Port step = kNoPort;
    for (Port p = 1; p <= engine_.graph().degree(here); ++p) {
      if (dist[engine_.graph().neighbor(here, p)] < dist[here]) {
        step = p;
        break;
      }
    }
    DISP_CHECK(step != kNoPort, "march lost its way");
    co_await moveGroup(gi, step);
  }
  DISP_CHECK(false, "march never arrived");
}

Task GeneralSyncDispersion::collapseForeign(std::uint32_t gi, std::uint32_t loser,
                                            Port metPort) {
  bool usedPort = false;
  if (metPort != kNoPort) {
    // Enter the loser tree through the met port, Euler-walk it collecting
    // everyone, end back at the entry node, and hop home.  The met node may
    // turn out not to be a loser *tree* node (the meeting was with agents
    // in transit); fall back to the march path then.
    co_await moveGroup(gi, metPort);
    const Port backToHead = engine_.pinOf(groups_[gi].leader);
    if (homeSettlerAt(engine_.positionOf(groups_[gi].leader), groups_[loser].label) !=
        kNoAgent) {
      usedPort = true;
      co_await collapseVisit(gi, groups_[loser].label, kNoPort);
    }
    co_await moveGroup(gi, backToHead);
  }
  if (!usedPort) {
    // Pended retry: no fresh adjacency.  March to the loser's parked group
    // (its leader rests on a loser tree node), collapse from there, then
    // march back to our own head to resume the DFS.
    const NodeId myHead = engine_.positionOf(groups_[gi].leader);
    const AgentIx loserAnchor = groups_[loser].leader;
    co_await marchToward(gi, loserAnchor);
    co_await collapseVisit(gi, groups_[loser].label, kNoPort);
    // March home: anchor on our own settler at the head (the head always
    // holds one).
    const AgentIx homeAnchor = homeSettlerAt(myHead, groups_[gi].label);
    DISP_CHECK(homeAnchor != kNoAgent, "head lost its settler during collapse");
    co_await marchToward(gi, homeAnchor);
  }
  groups_[gi].head = engine_.positionOf(groups_[gi].leader);
  recordMemory();
}

std::uint32_t GeneralSyncDispersion::resolveGroup(std::uint32_t g) const {
  while (groups_[g].dissolved) g = groups_[g].absorbedBy;
  return g;
}

Task GeneralSyncDispersion::selfCollapseAndMarch(std::uint32_t gi,
                                                 std::uint32_t winner, Port metPort) {
  GroupCtx& ctx = groups_[gi];
  // Collapse our own tree starting from the head (a tree node), collecting
  // all our settlers into the walking group.
  co_await collapseVisit(gi, ctx.label, kNoPort);
  // Chase the winner's leader (the group anchor: with the group while
  // active, at its settle node when dormant).  The winner idles at its
  // next safe point until we arrive and absorbs us (absorbMarchers);
  // routing uses engine-side position tracking standing in for KS's
  // head-pointer maintenance, with every hop a real move.
  if (metPort != kNoPort) co_await moveGroup(gi, metPort);
  ctx.marchTarget = winner;
  ctx.marching = true;
  ++marchingCount_;
  for (std::uint64_t guard = 0; guard < 1u << 20; ++guard) {
    if (ctx.dissolved) co_return;  // the winner absorbed us
    const std::uint32_t target = resolveGroup(ctx.marchTarget);
    const NodeId here = engine_.positionOf(ctx.leader);
    const NodeId head = engine_.positionOf(groups_[target].leader);
    if (here == head) {
      co_await engine_.nextRound();  // co-located: wait for the absorb
      continue;
    }
    const auto dist = bfsDistances(engine_.graph(), head);
    Port step = kNoPort;
    for (Port p = 1; p <= engine_.graph().degree(here); ++p) {
      if (dist[engine_.graph().neighbor(here, p)] < dist[here]) {
        step = p;
        break;
      }
    }
    DISP_CHECK(step != kNoPort, "march lost its way");
    co_await moveGroup(gi, step);
  }
  DISP_CHECK(false, "march never absorbed");
}

Task GeneralSyncDispersion::absorbMarchers(std::uint32_t gi) {
  GroupCtx& ctx = groups_[gi];
  for (;;) {
    // Junction locking (DESIGN.md §4.7): a group that has been frozen or
    // dissolved must not take marchers in.  Its winner's collapse walk
    // collects only tree settlers, so members absorbed mid-freeze would be
    // orphaned unsettled when this fiber parks — the seed-dependent
    // grid/ℓ=8 round-cap divergence.  Bailing out is safe: the marchers'
    // loop re-resolves their target through the dissolution chain and
    // delivers them to the eventual winner instead.
    if (ctx.frozen || ctx.dissolved) co_return;
    // Nothing marching anywhere ⇒ the scan below finds nothing; skip it.
    // marchingCount_ mirrors the `marching` flag's two mutation sites.
    if (marchingCount_ == 0) co_return;
    std::int64_t marcher = -1;
    for (std::uint32_t mi = 0; mi < groups_.size(); ++mi) {
      if (groups_[mi].marching && !groups_[mi].dissolved &&
          resolveGroup(groups_[mi].marchTarget) == gi) {
        marcher = mi;
        break;
      }
    }
    if (marcher < 0) co_return;
    ctx.phase = "absorbWait";
    auto& m = groups_[static_cast<std::uint32_t>(marcher)];
    // Idle until the marcher's group reaches our leader, then take them in
    // — unless a winner freezes us first (see above), or the marcher is
    // rerouted meanwhile.
    while (!ctx.frozen && !ctx.dissolved && !m.dissolved &&
           engine_.positionOf(m.leader) != engine_.positionOf(ctx.leader)) {
      co_await engine_.nextRound();
    }
    if (ctx.frozen || ctx.dissolved) co_return;
    if (m.dissolved) continue;  // absorbed elsewhere; rescan
    std::uint32_t joined = 0;
    for (AgentIx a = 0; a < engine_.agentCount(); ++a) {
      if (st_[a].label == m.label && !st_[a].settled) {
        DISP_CHECK(engine_.positionOf(a) == engine_.positionOf(ctx.leader),
                   "marcher group not consolidated at absorb time");
        st_[a].label = ctx.label;
        ++joined;
      }
    }
    ctx.total += joined;
    ctx.unsettled += joined;
    m.total -= joined;
    m.unsettled -= joined;
    DISP_CHECK(m.total == 0 && m.unsettled == 0, "marcher left agents behind");
    m.dissolved = true;
    m.absorbedBy = gi;
    m.marching = false;
    --marchingCount_;
    recordMemory();
  }
}

Task GeneralSyncDispersion::handleMeeting(std::uint32_t gi, Label other,
                                          Port metPort) {
  GroupCtx& ctx = groups_[gi];
  // A group that has itself been frozen (a winner is about to collapse it)
  // must not initiate anything: it parks at its next safe point and gets
  // collected.  Acting here would let it march away from under the waiting
  // winner.
  if (ctx.frozen || ctx.dissolved || ctx.marching) co_return;
  const std::uint32_t target = resolveGroup(other);
  if (target == gi) co_return;
  GroupCtx& them = groups_[target];
  if (them.frozen || them.marching) {
    // Busy peer: pend the meeting (dropping it could wall this tree in,
    // since a probed port is never re-probed once `checked` advances).
    if (std::find(ctx.pending.begin(), ctx.pending.end(), them.label) ==
        ctx.pending.end()) {
      ctx.pending.push_back(them.label);
    }
    co_return;
  }
  ++stats_.meetings;
  engine_.traceEvent(TraceEventKind::Meeting, ctx.leader,
                     engine_.positionOf(ctx.leader), ctx.label, them.label);

  // |D2| < |D1| means D1 subsumes D2; ties favour the met tree (§4.2).
  const bool iWin = them.treeSize < ctx.treeSize;
  ++stats_.subsumptions;
  engine_.traceEvent(TraceEventKind::Subsume,
                     iWin ? ctx.leader : them.leader,
                     engine_.positionOf(ctx.leader),
                     iWin ? ctx.label : them.label,
                     iWin ? them.label : ctx.label);
  if (iWin) {
    them.frozen = true;
    engine_.traceEvent(TraceEventKind::Freeze, them.leader,
                       engine_.positionOf(them.leader), them.label, ctx.label);
    groups_[gi].phase = "awaitParked";
    co_await awaitParked(target);
    groups_[gi].phase = "collapseForeign";
    if (!them.dissolved) {
      co_await collapseForeign(gi, target, metPort);
      them.dissolved = true;
      them.absorbedBy = gi;
    }
  } else {
    ctx.frozen = true;  // others must not target us mid-self-collapse
    engine_.traceEvent(TraceEventKind::Freeze, ctx.leader,
                       engine_.positionOf(ctx.leader), ctx.label, them.label);
    ctx.phase = "selfCollapse";
    co_await selfCollapseAndMarch(gi, target, metPort);
  }
}

Task GeneralSyncDispersion::rescanVisit(std::uint32_t gi) {
  GroupCtx& ctx = groups_[gi];
  ctx.phase = "rescan";
  const NodeId cur = engine_.positionOf(ctx.leader);
  const AgentIx settler = homeSettlerAt(cur, ctx.label);
  DISP_CHECK(settler != kNoAgent, "rescan reached a non-own node");

  st_[settler].checked = 0;
  co_await probeStep(gi);
  co_await returnGuests(gi);
  if (probeNext_[gi] != kNoPort || !probeMet_[gi].empty()) {
    rescanFound_ = true;  // resume the DFS right here
    co_return;
  }

  Port c = st_[settler].firstChildPort;
  while (c != kNoPort) {
    co_await moveGroup(gi, c);
    const Port backUp = engine_.pinOf(ctx.leader);
    const AgentIx cs = homeSettlerAt(engine_.positionOf(ctx.leader), ctx.label);
    DISP_CHECK(cs != kNoAgent, "rescan child without settler");
    const Port sib = st_[cs].nextSiblingPort;
    co_await rescanVisit(gi);
    if (rescanFound_) co_return;  // stay put; frames unwind without moving
    co_await moveGroup(gi, backUp);
    c = sib;
  }
}

Task GeneralSyncDispersion::retryPending(std::uint32_t gi) {
  GroupCtx& ctx = groups_[gi];
  if (ctx.unsettled == 0) {
    // A dispersed group never needs to initiate a subsumption: if a blocked
    // peer still needs this tree's nodes, it will meet us and act (winning
    // by collapsing us, or losing by marching its agents here).
    ctx.pending.clear();
    co_return;
  }
  std::vector<Label> todo;
  std::swap(todo, ctx.pending);
  for (const Label label : todo) {
    if (ctx.frozen || ctx.dissolved) {
      // Re-pend what we could not process; a later owner inherits it.
      ctx.pending.push_back(label);
      continue;
    }
    if (resolveGroup(label) == gi) continue;  // merged meanwhile
    co_await handleMeeting(gi, label, kNoPort);
  }
}

// ----------------------------------------------------------------- main

Task GeneralSyncDispersion::groupFiber(std::uint32_t gi) {
  GroupCtx& ctx = groups_[gi];

  // Settle the smallest-ID member at the start node.
  {
    const NodeId s = engine_.positionOf(ctx.leader);
    const AgentIx amin = minIdAgentAt(engine_, s, [&](AgentIx a) {
      return st_[a].label == ctx.label && !st_[a].settled;
    });
    settle(gi, amin, s, kNoPort);
    ctx.treeSize = 1;
  }

  for (;;) {
    // Dormant / parked / absorbed handling.
    if (ctx.dissolved) co_return;
    if (ctx.frozen) {
      ctx.parked = true;
      while (!ctx.dissolved) co_await engine_.nextRound();
      co_return;
    }
    co_await absorbMarchers(gi);
    // If the leader settled (it was the last of its own batch) and new
    // agents have since joined, the unsettled co-located agents elect the
    // largest-ID among them as the new leader.  This must precede any
    // meeting work: collapse walks and marches anchor on the leader.
    if (st_[ctx.leader].settled && ctx.unsettled > 0) {
      const NodeId at = engine_.positionOf(ctx.leader);
      const AgentIx fresh = maxIdAgentAt(engine_, at, [&](AgentIx a) {
        return st_[a].label == ctx.label && !st_[a].settled;
      });
      DISP_CHECK(fresh != kNoAgent, "no co-located candidate for leader re-election");
      --ledGroups_[ctx.leader];
      ctx.leader = fresh;
      ++ledGroups_[fresh];
      memoryDirty_.push_back(fresh);  // bits rose; flushed by next recordMemory
    }
    co_await retryPending(gi);
    if (ctx.dissolved || ctx.frozen) continue;
    if (ctx.unsettled == 0) {
      // Dispersed (for now): stay reactive — marchers may still join, or a
      // winner may subsume this tree later.
      if (unsettledTotal_ == 0) co_return;
      co_await engine_.nextRound();
      continue;
    }

    const NodeId w = engine_.positionOf(ctx.leader);
    ctx.head = w;

    co_await probeStep(gi);
    co_await returnGuests(gi);

    // Meetings discovered by this probe (smallest label first).
    for (const auto& [label, port] : probeMet_[gi]) {
      co_await handleMeeting(gi, label, port);
      if (ctx.frozen || ctx.dissolved) break;
    }
    if (ctx.dissolved || ctx.frozen) continue;

    const Port next = probeNext_[gi];
    const AgentIx aw = homeSettlerAt(w, ctx.label);
    DISP_CHECK(aw != kNoAgent, "head lost its settler");

    if (next != kNoPort) {
      // Sibling-chain bookkeeping for future collapse walks (undone below
      // if the move has to retreat).
      const Port prevFirst = st_[aw].firstChildPort;
      const Port prevLatest = st_[aw].latestChildPort;
      if (st_[aw].firstChildPort == kNoPort) {
        st_[aw].firstChildPort = next;
      } else {
        co_await sideTripSetNextSibling(gi, w, st_[aw].latestChildPort, next);
      }
      st_[aw].latestChildPort = next;

      co_await moveGroup(gi, next);
      const NodeId u = engine_.positionOf(ctx.leader);
      const AgentIx foreignSettler = anySettlerAt(u);
      bool retreat = false;
      Label metLabel = kNoLabel;
      if (foreignSettler != kNoAgent) {
        retreat = true;
        metLabel = st_[foreignSettler].label;
      } else {
        // Collision with a foreign group on an empty node: the smaller tree
        // (ties: smaller label) retreats; both sides compute the same rule.
        for (const AgentIx b : engine_.agentsAt(u)) {
          if (st_[b].label == ctx.label || st_[b].settled) continue;
          const std::uint32_t otherGi = resolveGroup(st_[b].label);
          const auto mine = std::make_pair(ctx.treeSize, ctx.label);
          const auto theirs =
              std::make_pair(groups_[otherGi].treeSize, groups_[otherGi].label);
          if (mine < theirs) retreat = true;
        }
      }
      if (retreat) {
        ++stats_.retreats;
        co_await moveGroup(gi, engine_.pinOf(ctx.leader));
        // Undo the speculative sibling link: the child was not created.
        st_[aw].firstChildPort = prevFirst;
        st_[aw].latestChildPort = prevLatest;
        if (prevLatest != kNoPort) {
          co_await sideTripSetNextSibling(gi, w, prevLatest, kNoPort);
        }
        if (metLabel != kNoLabel) co_await handleMeeting(gi, metLabel, next);
        continue;
      }

      ++stats_.forwardMoves;
      ++ctx.treeSize;
      const AgentIx amin = minIdAgentAt(engine_, u, [&](AgentIx a) {
        return st_[a].label == ctx.label && !st_[a].settled;
      });
      settle(gi, amin, u, engine_.pinOf(amin));
    } else {
      const Port pp = st_[aw].parentPort;
      if (pp == kNoPort) {
        // Root exhausted while agents remain.  A collapse may have freed
        // nodes behind already-checked ports anywhere along our tree, so
        // sweep the whole tree re-probing (rescanVisit); if that finds
        // nothing every frontier peer is busy — pend/retry after a pause.
        if (ctx.pending.empty()) {
          rescanFound_ = false;
          co_await rescanVisit(gi);
          if (!rescanFound_) co_await skipRounds(engine_, 8);
        } else {
          co_await skipRounds(engine_, 8);
        }
        continue;
      }
      ++stats_.backtracks;
      co_await moveGroup(gi, pp);
    }
  }
}

}  // namespace disp
