#pragma once
// RootedSyncDisp — the paper's Theorem 6.1 algorithm: dispersion of k <= n
// agents from a rooted configuration in O(k) rounds with O(log(k+Δ)) bits
// per agent, in the SYNC model.
//
// Structure (paper §5–§6):
//  * the largest-ID agent a_max leads a DFS; ⌈k/3⌉ seekers run Sync_Probe
//    (Algorithm 2) so every forward/backtrack step costs O(1) rounds;
//  * nodes are left empty per Empty_Node_Selection (Algorithm 1), realized
//    incrementally by the Forward_Move/Backtrack_Move x-counting rules
//    (Algorithms 6–7); empty nodes are covered by oscillating settlers
//    whose ≤ 6-round trips (Lemmas 2–3) make them detectable by probes;
//  * after the DFS tree reaches k nodes, the remaining agents walk to the
//    root and re-traverse the tree along first-child/next-sibling pointers,
//    settling on the empty nodes (the §6 "memory-efficient re-traversal").
//
// Faithfulness notes (details in DESIGN.md §4):
//  * per-tree-node bookkeeping lives in NodeRecords held by custodians (the
//    settler at the node, or the oscillator covering it); the leader checks
//    records out while the group is at a node and back in before leaving,
//    waiting ≤ 6 rounds for the custodian when needed;
//  * "ask α(u′) to cover u" is delivered by an O(1)-round seeker side trip;
//  * if explorers run out (tight ⌊2k/3⌋ case), up to two seekers are
//    demoted to explorers ("borrowed") — probes stay O(1) rounds;
//  * requires k >= 7 (below that the seeker pool cannot absorb borrows;
//    the runner facade falls back to the KS baseline, whose cost for
//    constant k is O(Δ) — constant with respect to k).

#include <cstdint>
#include <optional>
#include <vector>

#include "algo/oscillation.hpp"
#include "core/memory.hpp"
#include "core/metrics.hpp"
#include "core/sync_engine.hpp"
#include "graph/graph.hpp"

namespace disp {

/// Per-tree-node DFS bookkeeping (the paper's α(w).* variables).  Exactly
/// one copy exists per tree node; it lives with the node's custodian, or
/// "in hand" with the leader while the group is at the node.  All fields
/// are O(log(k+Δ)) bits.
struct NodeRecord {
  bool occupied = false;   ///< settler present at this node
  Port parentPort = kNoPort;  ///< port toward the DFS parent (⊥ at root)
  std::uint32_t depth = 0;
  Port checked = 0;           ///< Sync_Probe progress (α(w).checked)
  std::uint32_t childCount = 0;     ///< x of Forward_Move
  std::uint32_t leafChildCount = 0; ///< x of Backtrack_Move leaf trimming
  Port firstChildPort = kNoPort;    ///< α(w).firstchild
  Port latestChildPort = kNoPort;   ///< α(w).latestchild
  Port anchorChildPort = kNoPort;   ///< latest x≡1 (x≥4) settled odd child
  Port anchorLeafPort = kNoPort;    ///< latest x≡1 kept leaf child
  Port nextSiblingPort = kNoPort;   ///< sibling pointer (port at the parent)
};

/// Execution statistics exposed for tests and the experiment harness.
struct SyncDispStats {
  std::uint64_t forwardMoves = 0;
  std::uint64_t backtracks = 0;
  std::uint64_t probes = 0;
  std::uint64_t probeIterations = 0;
  std::uint64_t maxProbeRounds = 0;   ///< longest single Sync_Probe (Lemma 4: O(1))
  std::uint64_t trims = 0;            ///< settlers removed by Backtrack_Move
  std::uint64_t borrows = 0;          ///< seekers demoted to explorers (≤ 2)
  std::uint64_t custodianWaitRounds = 0;
  std::uint32_t treeSize = 0;
  std::uint32_t emptyAtDfsEnd = 0;    ///< Lemma 1/7: ≥ ⌈k/3⌉
  std::uint64_t dfsEndRound = 0;      ///< round at which TDFS reached k nodes
};

class RootedSyncDispersion {
 public:
  /// Requires a rooted initial configuration and k >= 7 (see header note).
  explicit RootedSyncDispersion(SyncEngine& engine);

  /// Installs the protocol fiber and the oscillator round hook.
  void start();

  [[nodiscard]] bool dispersed() const;
  [[nodiscard]] const SyncDispStats& stats() const noexcept { return stats_; }
  [[nodiscard]] std::uint64_t agentBits(AgentIx a) const;

  /// Final DFS-tree parent ports per settled agent (test introspection).
  [[nodiscard]] const OscillatorSystem& oscillators() const noexcept { return osc_; }

 private:
  enum class Role : std::uint8_t { Leader, Seeker, Explorer };

  struct CoveredRecord {
    Port stopKey = kNoPort;  ///< child port / sibling port at parent
    NodeId node = kInvalidNode;  ///< simulation-side assertion key (see DESIGN.md)
    NodeRecord record;
  };

  struct AgentState {
    Role role = Role::Explorer;
    bool settled = false;
    NodeId settledAt = kInvalidNode;  // simulation-side assertion key
    std::optional<NodeRecord> ownRecord;
    std::vector<CoveredRecord> covered;  // ≤ 3 (children) / ≤ 2 (siblings)
  };

  // ---- fiber entry ----
  Task protocol();

  // ---- DFS phases ----
  Task probeAt(NodeId w);            // result in probeResult_
  Task forwardMove(NodeId w, Port p);
  Task backtrackMove(NodeId w);
  Task settleRemaining(NodeId last);
  Task retraverse(NodeId root);

  // ---- record custody ----
  Task checkInRecord(NodeId v);      // inHand_ -> custodian (waits co-location)
  Task checkOutRecord(NodeId v);     // custodian -> inHand_
  Task awaitHolderAt(NodeId v);      // holder co-located; ptr in peek_
  [[nodiscard]] NodeRecord* holderRecordAt(NodeId v, AgentIx* holder = nullptr,
                                           std::size_t* coveredIx = nullptr);

  // ---- group / role helpers ----
  [[nodiscard]] AgentIx pickSeekerAt(NodeId v) const;
  [[nodiscard]] AgentIx settlerAtNode(NodeId v) const;
  Task moveGroup(NodeId from, Port p);
  void settleAgent(AgentIx a, NodeId at);
  [[nodiscard]] AgentIx chooseSettleCandidate(NodeId at);  // may borrow a seeker

  // ---- errands ----
  Task sideTripSetNextSibling(NodeId w, Port prevChildPort, Port newChildPort);
  Task messengerSiblingCover(NodeId u, Port portBackToParent, Port childPortOfU,
                             Port anchorPort);
  Task trimLeaf(NodeId pw, Port portToLeaf, Port anchorPort);
  Task awaitSettlerIdleAtHome(NodeId v);  // result in foundSettler_

  void recordMemory();

  /// Marks an agent whose persistent fields changed so the next memory
  /// checkpoint re-measures it.  Every mutation of ownRecord / covered /
  /// oscillation duty / role must call this (trip-retirements inside the
  /// oscillator system only lower an agent's bits, so they may go
  /// unmarked without affecting the recorded high-water mark).
  void markBits(AgentIx a) {
    if (!bitsDirtyFlag_[a]) {
      bitsDirtyFlag_[a] = 1;
      bitsDirty_.push_back(a);
    }
  }

  SyncEngine& engine_;
  OscillatorSystem osc_;
  std::vector<AgentState> st_;
  SyncDispStats stats_;
  BitWidths widths_;
  AgentIx leader_ = kNoAgent;
  /// All agents given the Seeker role, ascending by ID (fixed at start;
  /// borrowed seekers are filtered out by their role at use).  Lets
  /// Sync_Probe gather co-located seekers in ID order without re-sorting.
  std::vector<AgentIx> seekersById_;
  std::vector<AgentIx> probeSeekers_;   // scratch, reused across iterations
  std::vector<std::uint8_t> probeMet_;  // scratch, reused across iterations
  std::vector<AgentIx> bitsDirty_;      // agents to re-measure (see markBits)
  std::vector<std::uint8_t> bitsDirtyFlag_;

  std::optional<NodeRecord> inHand_;  // record of the group's current node
  Port probeResult_ = kNoPort;
  AgentIx foundSettler_ = kNoAgent;   // result slot of awaitSettlerIdleAtHome
  std::uint32_t settledCount_ = 0;
};

}  // namespace disp
