#include "algo/baseline_ks.hpp"

#include <algorithm>

#include "algo/protocol_common.hpp"
#include "util/check.hpp"

namespace disp {

// --------------------------------------------------------------- SYNC

KsSyncDispersion::KsSyncDispersion(SyncEngine& engine)
    : engine_(engine),
      st_(engine.agentCount()),
      widths_(BitWidths::forRun(/*maxId=*/4ULL * engine.agentCount(),
                                engine.graph().maxDegree(), engine.agentCount())) {
  const NodeId root = engine_.positionOf(0);
  for (AgentIx a = 0; a < engine_.agentCount(); ++a) {
    DISP_REQUIRE(engine_.positionOf(a) == root,
                 "KS baseline expects a rooted initial configuration");
    group_.push_back(a);
  }
  std::sort(group_.begin(), group_.end(), [&](AgentIx a, AgentIx b) {
    return engine_.idOf(a) < engine_.idOf(b);
  });
}

void KsSyncDispersion::start() { engine_.addFiber(protocol()); }

bool KsSyncDispersion::dispersed() const {
  std::vector<NodeId> where;
  for (AgentIx a = 0; a < engine_.agentCount(); ++a) {
    if (!st_[a].settled) return false;
    where.push_back(engine_.positionOf(a));
  }
  return isDispersed(where);
}

std::uint64_t KsSyncDispersion::agentBits(AgentIx a) const {
  // settled flag + parentPort + checked + own ID.
  (void)a;
  return 1 + widths_.port + widths_.port + widths_.id;
}

void KsSyncDispersion::recordMemory() {
  for (AgentIx a = 0; a < engine_.agentCount(); ++a) {
    engine_.memory().record(a, agentBits(a));
  }
}

Task KsSyncDispersion::moveGroup(Port p) {
  for (const AgentIx a : group_) engine_.stageMove(a, p);
  co_await engine_.nextRound();
}

Task KsSyncDispersion::protocol() {
  const Graph& g = engine_.graph();
  const auto isSettler = [this](AgentIx a) { return st_[a].settled; };

  // Settle the smallest-ID agent at the root.
  AgentIx first = group_.front();
  group_.erase(group_.begin());
  st_[first].settled = true;
  st_[first].parentPort = kNoPort;
  engine_.traceSettle(first);
  recordMemory();

  NodeId w = engine_.positionOf(first);
  while (!group_.empty()) {
    AgentIx keeper = settlerAt(engine_, w, isSettler);
    DISP_CHECK(keeper != kNoAgent, "KS: current node must hold a settler");
    AgentState& rec = st_[keeper];

    if (rec.checked == g.degree(w)) {
      // All ports probed: backtrack to the parent.
      DISP_CHECK(rec.parentPort != kNoPort,
                 "KS: DFS exhausted the graph before settling everyone (k > n?)");
      co_await moveGroup(rec.parentPort);
      w = engine_.positionOf(group_.back());
      continue;
    }

    const Port p = ++rec.checked;
    if (p == rec.parentPort) continue;  // tree edge to parent, already known

    co_await moveGroup(p);
    const NodeId v = engine_.positionOf(group_.back());
    if (settlerAt(engine_, v, isSettler) != kNoAgent) {
      // Occupied: retreat to w (every group member arrived via the same
      // edge, so its own pin points back).
      co_await moveGroup(engine_.pinOf(group_.back()));
    } else {
      // Fully unsettled: settle the smallest-ID group member here.
      AgentIx amin = group_.front();
      group_.erase(group_.begin());
      st_[amin].settled = true;
      st_[amin].parentPort = engine_.pinOf(amin);
      engine_.traceSettle(amin);
      recordMemory();
      w = v;
    }
  }
}

// -------------------------------------------------------------- ASYNC

KsAsyncDispersion::KsAsyncDispersion(AsyncEngine& engine)
    : engine_(engine),
      st_(engine.agentCount()),
      widths_(BitWidths::forRun(4ULL * engine.agentCount(), engine.graph().maxDegree(),
                                engine.agentCount())) {
  const NodeId root = engine_.positionOf(0);
  for (AgentIx a = 0; a < engine_.agentCount(); ++a) {
    DISP_REQUIRE(engine_.positionOf(a) == root,
                 "KS baseline expects a rooted initial configuration");
    if (leader_ == kNoAgent || engine_.idOf(a) > engine_.idOf(leader_)) leader_ = a;
  }
  groupSize_ = engine_.agentCount();
}

void KsAsyncDispersion::start() {
  for (AgentIx a = 0; a < engine_.agentCount(); ++a) {
    engine_.setAgentFiber(a, a == leader_ ? leaderFiber(a) : followerFiber(a));
  }
}

bool KsAsyncDispersion::dispersed() const {
  std::vector<NodeId> where;
  for (AgentIx a = 0; a < engine_.agentCount(); ++a) {
    if (!st_[a].settled) return false;
    where.push_back(engine_.positionOf(a));
  }
  return isDispersed(where);
}

std::uint64_t KsAsyncDispersion::agentBits(AgentIx a) const {
  std::uint64_t bits = 1 /*settled*/ + 3 * widths_.port + widths_.id;
  if (a == leader_) bits += widths_.count;  // groupSize
  return bits;
}

void KsAsyncDispersion::recordMemory() {
  for (AgentIx a = 0; a < engine_.agentCount(); ++a) {
    engine_.memory().record(a, agentBits(a));
  }
}

Task KsAsyncDispersion::followerFiber(AgentIx self) {
  for (;;) {
    co_await engine_.nextActivation(self);
    AgentState& me = st_[self];
    if (me.settled) continue;  // settlers idle (they answer reads passively)
    if (me.orderPort != kNoPort) {
      const Port p = me.orderPort;
      me.orderPort = kNoPort;
      engine_.move(self, p);
    }
  }
}

void KsAsyncDispersion::orderGroupMove(AgentIx self, Port p, bool usePin) {
  // Communicate phase: write a movement order into every co-located
  // unsettled agent (the group), except the leader itself which moves now.
  const NodeId here = engine_.positionOf(self);
  for (const AgentIx a : engine_.agentsAt(here)) {
    if (a == self || st_[a].settled) continue;
    st_[a].orderPort = usePin ? engine_.pinOf(a) : p;
  }
}

Task KsAsyncDispersion::awaitGroupAssembled(AgentIx self, std::uint32_t expected) {
  for (;;) {
    const NodeId here = engine_.positionOf(self);
    std::uint32_t present = 0;
    for (const AgentIx a : engine_.agentsAt(here)) present += !st_[a].settled;
    if (present >= expected) co_return;
    co_await engine_.nextActivation(self);
  }
}

Task KsAsyncDispersion::leaderFiber(AgentIx self) {
  const Graph& g = engine_.graph();
  const auto isSettler = [this](AgentIx a) { return st_[a].settled; };

  co_await engine_.nextActivation(self);

  // Settle the smallest-ID co-located agent at the root.
  {
    AgentIx amin = minIdAgentAt(engine_, engine_.positionOf(self),
                                [&](AgentIx a) { return !st_[a].settled; });
    DISP_CHECK(amin != kNoAgent, "no agent to settle at root");
    st_[amin].settled = true;
    st_[amin].parentPort = kNoPort;
    --groupSize_;
    engine_.traceSettle(amin);
    recordMemory();
    if (groupSize_ == 0) {  // k == 1
      engine_.finish();
      co_return;
    }
  }

  for (;;) {
    const NodeId w = engine_.positionOf(self);
    AgentIx keeper = settlerAt(engine_, w, isSettler);
    DISP_CHECK(keeper != kNoAgent, "KS: current node must hold a settler");
    AgentState& rec = st_[keeper];

    Port moveVia = kNoPort;
    if (rec.checked == g.degree(w)) {
      DISP_CHECK(rec.parentPort != kNoPort, "KS: DFS exhausted graph early");
      moveVia = rec.parentPort;
    } else {
      const Port p = ++rec.checked;
      if (p == rec.parentPort) continue;  // skip the tree edge upward
      moveVia = p;
    }

    // Order the group across the edge; leader crosses in this same cycle
    // and then lets the activation end (one move per CCM cycle).
    orderGroupMove(self, moveVia, /*usePin=*/false);
    engine_.move(self, moveVia);
    co_await engine_.nextActivation(self);
    co_await awaitGroupAssembled(self, groupSize_);

    const NodeId v = engine_.positionOf(self);
    const bool backtracked = (moveVia == rec.parentPort);
    if (backtracked) continue;

    if (settlerAt(engine_, v, isSettler) != kNoAgent) {
      // Occupied neighbor: return to w (each agent retreats via its own pin).
      orderGroupMove(self, kNoPort, /*usePin=*/true);
      engine_.move(self, engine_.pinOf(self));
      co_await engine_.nextActivation(self);
      co_await awaitGroupAssembled(self, groupSize_);
      continue;
    }

    // Fully unsettled node: settle the smallest-ID group member.
    AgentIx amin = minIdAgentAt(engine_, v, [&](AgentIx a) { return !st_[a].settled; });
    DISP_CHECK(amin != kNoAgent, "nobody to settle");
    if (amin == self) {
      // Leader is alone: settle itself, dispersion complete.
      st_[self].settled = true;
      st_[self].parentPort = engine_.pinOf(self);
      engine_.traceSettle(self);
      recordMemory();
      engine_.finish();
      co_return;
    }
    // Communicate-phase write into the co-located agent: it is settled now.
    st_[amin].settled = true;
    st_[amin].parentPort = engine_.pinOf(amin);
    --groupSize_;
    engine_.traceSettle(amin);
    recordMemory();
  }
}

}  // namespace disp
