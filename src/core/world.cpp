#include "core/world.hpp"

#include <algorithm>
#include <thread>

#include "core/round_executor.hpp"

namespace disp {

World::World(const Graph& g, std::vector<NodeId> startPositions, std::vector<AgentId> ids)
    : graph_(&g),
      ids_(std::move(ids)),
      nodes_(g.nodeCount()),
      auxChunks_((g.nodeCount() + kAuxChunk - 1) / kAuxChunk) {
  DISP_REQUIRE(!startPositions.empty(), "need at least one agent");
  DISP_REQUIRE(startPositions.size() == ids_.size(), "positions/ids size mismatch");
  DISP_REQUIRE(startPositions.size() <= g.nodeCount(), "k must be <= n");
  DISP_REQUIRE(startPositions.size() < kLogRemove, "agent count exceeds the log encoding");
  {
    // Sort-and-adjacent-find over a scratch vector: O(k log k) with one
    // allocation, instead of a per-run std::set of tree nodes.
    std::vector<AgentId> scratch(ids_);
    std::sort(scratch.begin(), scratch.end());
    DISP_REQUIRE(std::adjacent_find(scratch.begin(), scratch.end()) == scratch.end(),
                 "agent IDs must be unique");
  }
  agents_.resize(startPositions.size());
  for (AgentIx a = 0; a < agentCount(); ++a) {
    const NodeId v = startPositions[a];
    DISP_REQUIRE(v < g.nodeCount(), "start position out of range");
    AgentCell& cell = agents_[a];
    cell.pos = v;
    cell.pin = kNoPort;
    NodeCell& node = nodes_[v];
    cell.next = node.head;
    if (node.head != kNoAgent) agents_[node.head].prev = a;
    node.head = a;
    ++node.count;
  }
}

void World::applyMove(AgentIx a, Port p) {
  DISP_REQUIRE(a < agentCount(), "agent out of range");
  const NodeId from = agents_[a].pos;
  DISP_REQUIRE(p >= 1 && p <= graph_->degree(from), "move through invalid port");
  moveInternal(a, from, p);
}

World::ViewAux& World::auxAllocate(NodeId v) const {
  const std::lock_guard<std::mutex> guard(auxMutex_);
  // Only one lane can reach here for a given v (partition / node lock), so
  // nodes_[v].aux is stable; the mutex guards the shared counter + chunks.
  std::uint32_t slot = nodes_[v].aux;
  if (slot == kNoAux) {
    slot = auxCount_++;
    const std::size_t chunk = slot / kAuxChunk;
    if (!auxChunks_[chunk]) {
      auxChunks_[chunk] = std::make_unique<ViewAux[]>(kAuxChunk);
    }
    nodes_[v].aux = slot;
  }
  return auxSlot(slot);
}

void World::materialize(NodeId v) const {
  ViewAux& aux = auxFor(v);
  std::vector<AgentIx>& out = aux.view;
  if (nodes_[v].viewState == kViewPendingLog) {
    // Replay the few pending ops into the still-sorted cache.
    for (const AgentIx entry : aux.log) {
      const AgentIx a = entry & ~kLogRemove;
      if (entry & kLogRemove) {
        const auto it = std::lower_bound(out.begin(), out.end(), a);
        DISP_DCHECK(it != out.end() && *it == a, "occupancy log desynchronized");
        out.erase(it);
      } else {
        out.insert(std::upper_bound(out.begin(), out.end(), a), a);
      }
    }
    aux.log.clear();
  } else {
    out.clear();
    // Push-front insertion makes the list *descending* whenever a group
    // arrives in ascending commit order (the dominant burst pattern), so
    // detect that while walking and reverse in O(g) instead of sorting.
    bool descending = true;
    for (AgentIx a = nodes_[v].head; a != kNoAgent; a = agents_[a].next) {
      descending = descending && (out.empty() || out.back() > a);
      out.push_back(a);
    }
    if (descending) {
      std::reverse(out.begin(), out.end());
    } else {
      std::sort(out.begin(), out.end());
    }
  }
  nodes_[v].viewState = kViewClean;
}

void World::lockNode(NodeId v) noexcept {
  // Critical sections are a handful of writes, so a short spin almost
  // always wins; yield periodically in case the holder was preempted
  // (oversubscribed single-core machines).
  int spins = 0;
  while (nodeLocks_[v].test_and_set(std::memory_order_acquire)) {
    if (++spins >= 64) {
      std::this_thread::yield();
      spins = 0;
    }
  }
}

void World::moveLockedStaged(AgentIx a, Port p) {
  DISP_DCHECK(a < agentCount(), "agent out of range");
  AgentCell& cell = agents_[a];
  // Stable reads: `a` moves at most once per batch and no other lane
  // writes its pos/pin.
  const NodeId from = cell.pos;
  DISP_DCHECK(p >= 1 && p <= graph_->degree(from), "move through invalid port");
  const NodeId to = graph_->neighbor(from, p);

  // Same mutations as moveInternal, but each node's list/count/log is
  // touched only under that node's lock.  One lock held at a time, so no
  // ordering discipline is needed for deadlock freedom.  Between unlink
  // and relink `a` is on no list, and only this lane references its links.
  lockNode(from);
  {
    NodeCell& src = nodes_[from];
    if (cell.prev == kNoAgent) {
      src.head = cell.next;
    } else {
      agents_[cell.prev].next = cell.next;
    }
    if (cell.next != kNoAgent) agents_[cell.next].prev = cell.prev;
    --src.count;
    logOp(from, a | kLogRemove);
  }
  unlockNode(from);

  lockNode(to);
  {
    NodeCell& dst = nodes_[to];
    cell.next = dst.head;
    cell.prev = kNoAgent;
    if (dst.head != kNoAgent) agents_[dst.head].prev = a;
    dst.head = a;
    ++dst.count;
    logOp(to, a);
  }
  unlockNode(to);

  cell.pos = to;
  cell.pin = graph_->reversePort(from, p);
  // totalMoves_ is batch-incremented by applyMovesStagedParallel.
}

void World::applyMovesStagedParallel(
    RoundExecutor& exec, const std::vector<std::pair<AgentIx, Port>>& moves) {
  if (!nodeLocks_) {
    // Value-initialized atomic_flags start clear (C++20).
    nodeLocks_ = std::make_unique<std::atomic_flag[]>(graph_->nodeCount());
  }
  exec.run([&](unsigned lane) {
    const auto [lo, hi] = RoundExecutor::chunk(moves.size(), exec.lanes(), lane);
    for (std::size_t i = lo; i < hi; ++i) {
      moveLockedStaged(moves[i].first, moves[i].second);
    }
  });
  totalMoves_ += moves.size();
}

}  // namespace disp
