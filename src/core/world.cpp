#include "core/world.hpp"

#include <algorithm>
#include <set>

namespace disp {

World::World(const Graph& g, std::vector<NodeId> startPositions, std::vector<AgentId> ids)
    : graph_(&g),
      pos_(std::move(startPositions)),
      ids_(std::move(ids)),
      occupants_(g.nodeCount()) {
  DISP_REQUIRE(!pos_.empty(), "need at least one agent");
  DISP_REQUIRE(pos_.size() == ids_.size(), "positions/ids size mismatch");
  DISP_REQUIRE(pos_.size() <= g.nodeCount(), "k must be <= n");
  {
    std::set<AgentId> unique(ids_.begin(), ids_.end());
    DISP_REQUIRE(unique.size() == ids_.size(), "agent IDs must be unique");
  }
  pin_.assign(pos_.size(), kNoPort);
  for (AgentIx a = 0; a < agentCount(); ++a) {
    DISP_REQUIRE(pos_[a] < g.nodeCount(), "start position out of range");
    occupants_[pos_[a]].push_back(a);
  }
}

void World::applyMove(AgentIx a, Port p) {
  DISP_REQUIRE(a < agentCount(), "agent out of range");
  const NodeId from = pos_[a];
  DISP_REQUIRE(p >= 1 && p <= graph_->degree(from), "move through invalid port");
  const NodeId to = graph_->neighbor(from, p);

  auto& fromOcc = occupants_[from];
  fromOcc.erase(std::find(fromOcc.begin(), fromOcc.end(), a));
  auto& toOcc = occupants_[to];
  toOcc.insert(std::upper_bound(toOcc.begin(), toOcc.end(), a), a);

  pos_[a] = to;
  pin_[a] = graph_->reversePort(from, p);
  ++totalMoves_;
}

}  // namespace disp
