#include "core/world.hpp"

#include <algorithm>

namespace disp {

World::World(const Graph& g, std::vector<NodeId> startPositions, std::vector<AgentId> ids)
    : graph_(&g),
      ids_(std::move(ids)),
      nodes_(g.nodeCount()),
      view_(g.nodeCount()),
      log_(g.nodeCount()) {
  DISP_REQUIRE(!startPositions.empty(), "need at least one agent");
  DISP_REQUIRE(startPositions.size() == ids_.size(), "positions/ids size mismatch");
  DISP_REQUIRE(startPositions.size() <= g.nodeCount(), "k must be <= n");
  DISP_REQUIRE(startPositions.size() < kLogRemove, "agent count exceeds the log encoding");
  {
    // Sort-and-adjacent-find over a scratch vector: O(k log k) with one
    // allocation, instead of a per-run std::set of tree nodes.
    std::vector<AgentId> scratch(ids_);
    std::sort(scratch.begin(), scratch.end());
    DISP_REQUIRE(std::adjacent_find(scratch.begin(), scratch.end()) == scratch.end(),
                 "agent IDs must be unique");
  }
  agents_.resize(startPositions.size());
  for (AgentIx a = 0; a < agentCount(); ++a) {
    const NodeId v = startPositions[a];
    DISP_REQUIRE(v < g.nodeCount(), "start position out of range");
    AgentCell& cell = agents_[a];
    cell.pos = v;
    cell.pin = kNoPort;
    NodeCell& node = nodes_[v];
    cell.next = node.head;
    if (node.head != kNoAgent) agents_[node.head].prev = a;
    node.head = a;
    ++node.count;
  }
}

void World::applyMove(AgentIx a, Port p) {
  DISP_REQUIRE(a < agentCount(), "agent out of range");
  const NodeId from = agents_[a].pos;
  DISP_REQUIRE(p >= 1 && p <= graph_->degree(from), "move through invalid port");
  moveInternal(a, from, p);
}

void World::materialize(NodeId v) const {
  std::vector<AgentIx>& out = view_[v];
  if (nodes_[v].viewState == kViewPendingLog) {
    // Replay the few pending ops into the still-sorted cache.
    for (const AgentIx entry : log_[v]) {
      const AgentIx a = entry & ~kLogRemove;
      if (entry & kLogRemove) {
        const auto it = std::lower_bound(out.begin(), out.end(), a);
        DISP_DCHECK(it != out.end() && *it == a, "occupancy log desynchronized");
        out.erase(it);
      } else {
        out.insert(std::upper_bound(out.begin(), out.end(), a), a);
      }
    }
    log_[v].clear();
  } else {
    out.clear();
    // Push-front insertion makes the list *descending* whenever a group
    // arrives in ascending commit order (the dominant burst pattern), so
    // detect that while walking and reverse in O(g) instead of sorting.
    bool descending = true;
    for (AgentIx a = nodes_[v].head; a != kNoAgent; a = agents_[a].next) {
      descending = descending && (out.empty() || out.back() > a);
      out.push_back(a);
    }
    if (descending) {
      std::reverse(out.begin(), out.end());
    } else {
      std::sort(out.begin(), out.end());
    }
  }
  nodes_[v].viewState = kViewClean;
}

}  // namespace disp
