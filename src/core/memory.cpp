#include "core/memory.hpp"

namespace disp {
static_assert(bitsFor(0) == 1);
static_assert(bitsFor(1) == 1);
static_assert(bitsFor(2) == 2);
static_assert(bitsFor(255) == 8);
static_assert(bitsFor(256) == 9);
}  // namespace disp
