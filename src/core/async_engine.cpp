#include "core/async_engine.hpp"

#include <stdexcept>

#include "util/check.hpp"

namespace disp {

AsyncEngine::AsyncEngine(const Graph& g, std::vector<NodeId> startPositions,
                         std::vector<AgentId> ids, std::unique_ptr<Scheduler> scheduler)
    : world_(g, std::move(startPositions), std::move(ids)),
      memory_(world_.agentCount()),
      scheduler_(std::move(scheduler)),
      fibers_(world_.agentCount()),
      lastActiveStamp_(world_.agentCount(), 0) {
  DISP_REQUIRE(scheduler_ != nullptr, "scheduler required");
}

StepAwait AsyncEngine::nextActivation(AgentIx a) {
  DISP_CHECK(a == current_, "agent awaited activation outside its own turn");
  return StepAwait{&fibers_[a].slot};
}

void AsyncEngine::move(AgentIx a, Port p) {
  DISP_CHECK(a == current_, "only the activated agent may move");
  DISP_CHECK(!inSetup_, "no moves before the first activation (time starts at t=0)");
  DISP_CHECK(!movedThisActivation_, "an activation allows at most one move");
  const NodeId from = world_.positionOf(a);
  if (faults_ != nullptr) [[unlikely]] {
    // Fault mode: the attempt consumes the activation's move budget whether
    // or not it succeeds.  A port invalid for the agent's *actual* position
    // (its protocol's belief desynced by an earlier vetoed move) or a
    // churned-down edge makes this a failed traversal — the agent stays put.
    movedThisActivation_ = true;
    if (p < 1 || p > graph().degree(from)) return;
    if (faults_->edgeFaultsActive() && faults_->edgeDown(from, graph().neighbor(from, p))) {
      return;
    }
    faults_->noteMove(world_.countAt(from), world_.countAt(graph().neighbor(from, p)));
  }
  world_.applyMove(a, p);
  movedThisActivation_ = true;
  if (moveHook_) moveHook_(a, from, world_.positionOf(a));
  trace_.emit({TraceEventKind::Move, activations_, a, world_.positionOf(a), from, p});
}

void AsyncEngine::setAgentFiber(AgentIx a, Task task) {
  DISP_REQUIRE(a < agentCount(), "agent out of range");
  DISP_REQUIRE(task.valid(), "fiber task is empty");
  DISP_REQUIRE(!fibers_[a].task.valid(), "agent already has a fiber");
  fibers_[a].task = std::move(task);
}

void AsyncEngine::run(std::uint64_t maxActivations) {
  for (AgentIx a = 0; a < agentCount(); ++a) {
    DISP_REQUIRE(fibers_[a].task.valid(), "every agent needs a fiber before run()");
  }

  // Kick every fiber to its first `co_await nextActivation(...)`.  This is
  // t = 0 setup, not an activation: no moves are permitted yet.
  inSetup_ = true;
  for (AgentIx a = 0; a < agentCount(); ++a) {
    FiberState& fiber = fibers_[a];
    if (fiber.started) continue;
    fiber.started = true;
    current_ = a;
    fiber.task.rootHandle().resume();
    current_ = kNoAgent;
    if (fiber.task.done()) fiber.task.rethrowIfFailed();
  }
  inSetup_ = false;

  if (faults_ != nullptr) {
    // Seed the excess counter and apply t = 0 faults (byzantine-silent
    // agents) before the first activation.
    faults_->initConfig(world_);
    faults_->advanceTo(activations_, world_, trace_);
    faults_->noteConfig(activations_);
  }
  while (!finished_) {
    if (activations_ >= maxActivations) {
      if (faults_ != nullptr) {
        // Under faults a protocol may legitimately never terminate (e.g.
        // crash-stopped agents it waits for); the cap is a verdict, not a
        // bug — report it and let the session score recovery.
        limitHit_ = true;
        break;
      }
      throw std::runtime_error(
          "AsyncEngine: activation cap exceeded (deadlock or bug); activations=" +
          std::to_string(activations_));
    }
    const AgentIx a = scheduler_->next();
    DISP_CHECK(a < agentCount(), "scheduler returned bad agent");

    // Dispatch is hoisted behind the armed() check: an activation of an
    // agent whose fiber already returned (it keeps being scheduled until
    // finish()) skips the resume bookkeeping entirely but still counts
    // toward the epoch, exactly as before.  Crashed agents are likewise
    // scheduled-but-not-resumed: their activations keep counting toward
    // epochs, so crash-stop cannot freeze time.
    FiberState& fiber = fibers_[a];
    if (fiber.slot.armed() && !(faults_ != nullptr && faults_->crashed(a))) {
      current_ = a;
      movedThisActivation_ = false;
      fiber.slot.take().resume();
      current_ = kNoAgent;
      if (fiber.task.done()) fiber.task.rethrowIfFailed();
    }

    ++activations_;
    // Epoch-stamp accounting: instead of clearing a per-agent flag array at
    // every epoch boundary (an O(k) std::fill on the hot path), each agent
    // records the stamp of the epoch it was last active in; bumping the
    // stamp retires all k flags at once.
    if (lastActiveStamp_[a] != epochStamp_) {
      lastActiveStamp_[a] = epochStamp_;
      if (++activeCount_ == agentCount()) {
        ++epochs_;
        activeCount_ = 0;
        ++epochStamp_;
      }
    }
    if (faults_ != nullptr) {
      // Activation boundary: the configuration is stable here (agents rest
      // on nodes between cycles), so score recovery and apply any faults
      // scheduled at or before this activation.
      faults_->noteConfig(activations_);
      faults_->advanceTo(activations_, world_, trace_);
    }
    const auto fill = [this](std::vector<NodeId>& v) {
      for (AgentIx b = 0; b < agentCount(); ++b) v[b] = positionOf(b);
    };
    if (trace_.sampleAtCadence(activations_, epochs_, totalMoves(), agentCount(),
                               fill) &&
        !finished_) {
      // Early stop: remaining fibers stay suspended (destroyed with the
      // engine); the session reports the partial facts with stoppedEarly.
      // A stopWhen firing on the very activation the protocol finished is
      // moot — the run completed.
      trace_.requestStop();
      break;
    }
  }
  // A partially elapsed epoch still counts as time spent.
  if (activeCount_ > 0) ++epochs_;
  // Close the series on the terminal state (off-cadence run end).
  trace_.closeSeries(activations_, epochs_, totalMoves(), agentCount(),
                     [this](std::vector<NodeId>& v) {
                       for (AgentIx b = 0; b < agentCount(); ++b) v[b] = positionOf(b);
                     });
}

std::vector<NodeId> AsyncEngine::positionsSnapshot() const {
  std::vector<NodeId> out(agentCount());
  for (AgentIx a = 0; a < agentCount(); ++a) out[a] = positionOf(a);
  return out;
}

}  // namespace disp
