#pragma once
// Typed trace events and observer hooks for run sessions.
//
// A run session (algo/runner.hpp::runSession) can attach an EngineObserver
// to either engine.  The observer sees
//  * a stream of TraceEvent records — the protocol-level facts (moves,
//    settles, meetings, subsumption cascades, oscillation duty churn) that
//    the paper's trajectory claims are about — emitted by the engines and
//    by every protocol as the run unfolds, and
//  * periodic StepSnapshot records (every `sampleEvery` rounds in SYNC /
//    activations in ASYNC) carrying the settled count, the move total and a
//    positions view, with an optional early-stop predicate.
//
// Determinism contract (tested in tests/trace_test.cpp): observers are
// strictly read-only taps.  Emission points never branch protocol control
// flow, touch an Rng, or reorder fibers, so a run with any combination of
// observers and any sampling cadence reports byte-identical facts
// (dispersed/time/activations/moves/memory/positions) to the unobserved
// run at the same seed — and the zero-observer path stays on the exact
// pre-observer hot path.

#include <cstdint>
#include <functional>
#include <stdexcept>
#include <vector>

#include "core/world.hpp"
#include "graph/graph.hpp"

namespace disp {

/// Protocol-level event taxonomy (DESIGN.md §7 documents each emitter).
enum class TraceEventKind : std::uint8_t {
  /// An agent traversed an edge.  node = destination, a = source node,
  /// b = port taken.  SYNC: emitted at round commit; ASYNC: at the move.
  Move,
  /// An agent settled at `node`.  a = group/tree label (kNoTraceLabel for
  /// single-tree protocols).
  Settle,
  /// Two DFS trees detected each other (general protocols).  node = where,
  /// agent = detecting group's leader, a = detecting label, b = met label.
  Meeting,
  /// A subsumption was decided.  a = winner label, b = loser label,
  /// agent = winner's leader, node = meeting node.
  Subsume,
  /// A settled agent was unsettled/collected (loser-tree collapse walk,
  /// Backtrack_Move leaf trim).  node = where it sat, a = its old label,
  /// b = collecting label (kNoTraceLabel when not a subsumption).
  Collapse,
  /// A group was frozen at a safe point pending collapse.  a = frozen
  /// label, b = winner label, agent = frozen group's leader.
  Freeze,
  /// Oscillation coverage duty changed (§5.2 settlers).  agent = the
  /// oscillator, node = its home, a = 1 gained / 0 dropped, b = stop count.
  OscillationDuty,
  /// Fault injection (core/faults.hpp, DESIGN.md §11).  An agent
  /// crash-stopped: node = where it sits, a = b = kNoTraceLabel.
  FaultCrash,
  /// A crashed agent restarted in place.  node = where it sits.
  FaultRestart,
  /// Edge churn state change.  agent = kNoAgent, node = smaller endpoint,
  /// a = larger endpoint, b = 1 edge went down / 0 edge came back up.
  FaultEdge,
  /// An agent was marked byzantine-silent at t = 0 (present but inert).
  /// node = its start node, a = b = kNoTraceLabel.
  FaultSilent,
};

/// Label value for events outside any multi-tree context.
inline constexpr std::uint32_t kNoTraceLabel = static_cast<std::uint32_t>(-1);

/// Stable lowercase identifier ("move", "settle", ...) used by the JSONL
/// trace schema and scripts/check_trace.sh.
[[nodiscard]] const char* traceEventKindName(TraceEventKind k);

/// One trace record.  `time` is rounds committed so far (SYNC) or
/// activations completed so far (ASYNC) at emission; events within one run
/// are emitted in non-decreasing `time` order.
struct TraceEvent {
  TraceEventKind kind = TraceEventKind::Move;
  std::uint64_t time = 0;
  AgentIx agent = kNoAgent;
  NodeId node = kInvalidNode;
  std::uint32_t a = 0;  ///< kind-specific, see TraceEventKind
  std::uint32_t b = 0;  ///< kind-specific, see TraceEventKind
};

/// Periodic run snapshot handed to onStep / stopWhen.  `positions` points
/// at engine-owned storage and is only valid during the callback.
struct StepSnapshot {
  std::uint64_t time = 0;    ///< rounds (SYNC) / activations (ASYNC)
  std::uint64_t epochs = 0;  ///< ASYNC: completed epochs; SYNC: == time
  std::uint32_t settled = 0;
  std::uint64_t totalMoves = 0;
  const std::vector<NodeId>* positions = nullptr;  ///< per agent index
};

/// Observer bundle installed on an engine before run().  Any subset of the
/// hooks may be set; all-empty behaves exactly like no observer.
struct EngineObserver {
  /// Typed event stream (Move/Settle/Meeting/...).
  std::function<void(const TraceEvent&)> onEvent;
  /// Sampled snapshots: every `sampleEvery` rounds (SYNC) / activations
  /// (ASYNC), plus one final snapshot when the run ends off-cadence.
  std::function<void(const StepSnapshot&)> onStep;
  /// Early-stop predicate, checked at the same cadence as onStep (after
  /// it).  Returning true ends the run at the next step boundary; the
  /// session reports the partial facts with RunResult::stoppedEarly set.
  std::function<bool(const StepSnapshot&)> stopWhen;
  /// Snapshot cadence; 1 = every round/activation.  Must be >= 1.
  std::uint64_t sampleEvery = 1;

  [[nodiscard]] bool any() const {
    return onEvent != nullptr || onStep != nullptr || stopWhen != nullptr;
  }
};

/// Shared observer state machine embedded in both engines: settled-count
/// bookkeeping, event emission, cadence-gated snapshot delivery with the
/// early-stop check, and the close-the-series epilogue.  The engine owns
/// time (rounds vs activations) and the positions fill; everything else
/// lives here once so a fix never needs applying twice.
class TraceHost {
 public:
  /// Installs the observer (validates the cadence).
  void install(EngineObserver observer) {
    if (observer.sampleEvery < 1) {
      throw std::invalid_argument("observer sampleEvery must be >= 1");
    }
    observer_ = std::move(observer);
    observing_ = observer_.any();
    traceEvents_ = observer_.onEvent != nullptr;
  }

  [[nodiscard]] bool observing() const noexcept { return observing_; }
  [[nodiscard]] bool tracing() const noexcept { return traceEvents_; }
  [[nodiscard]] std::uint32_t settledCount() const noexcept { return settled_; }
  [[nodiscard]] bool stopRequested() const noexcept { return stopRequested_; }
  void requestStop() noexcept { stopRequested_ = true; }

  void emit(const TraceEvent& e) {
    if (traceEvents_) observer_.onEvent(e);
  }
  void settle(std::uint64_t time, AgentIx a, NodeId node, std::uint32_t label) {
    ++settled_;
    if (traceEvents_) {
      observer_.onEvent({TraceEventKind::Settle, time, a, node, label, 0});
    }
  }
  void unsettle(std::uint64_t time, AgentIx a, NodeId node, std::uint32_t oldLabel,
                std::uint32_t byLabel) {
    if (settled_ == 0) {
      throw std::logic_error("traceUnsettle without a matching traceSettle");
    }
    --settled_;
    if (traceEvents_) {
      observer_.onEvent({TraceEventKind::Collapse, time, a, node, oldLabel, byLabel});
    }
  }

  /// Cadence-gated snapshot: delivers onStep and evaluates stopWhen when
  /// `time` is a sampling point.  `fill(positions)` materializes the
  /// positions view (invoked only when a snapshot is actually delivered;
  /// the vector arrives pre-sized to `agents`).  Returns the stopWhen
  /// verdict (false off-cadence).
  template <typename Fill>
  [[nodiscard]] bool sampleAtCadence(std::uint64_t time, std::uint64_t epochs,
                                     std::uint64_t moves, std::uint32_t agents,
                                     Fill&& fill) {
    if (!observing_) return false;
    if (observer_.sampleEvery > 1 && (time % observer_.sampleEvery) != 0) return false;
    if (!observer_.onStep && !observer_.stopWhen) return false;
    return deliver(time, epochs, moves, agents, fill);
  }

  /// Close-the-series epilogue: the run may end off-cadence, and final
  /// settles can land after the last commit — deliver one terminal
  /// snapshot unless the latest delivered one already matches.
  template <typename Fill>
  void closeSeries(std::uint64_t time, std::uint64_t epochs, std::uint64_t moves,
                   std::uint32_t agents, Fill&& fill) {
    if (!observing_ || !observer_.onStep) return;
    if (lastTime_ == time && lastSettled_ == settled_ && lastMoves_ == moves) return;
    (void)deliver(time, epochs, moves, agents, fill);
  }

 private:
  template <typename Fill>
  bool deliver(std::uint64_t time, std::uint64_t epochs, std::uint64_t moves,
               std::uint32_t agents, Fill&& fill) {
    scratch_.resize(agents);
    fill(scratch_);
    const StepSnapshot snap{time, epochs, settled_, moves, &scratch_};
    lastTime_ = time;
    lastSettled_ = settled_;
    lastMoves_ = moves;
    if (observer_.onStep) observer_.onStep(snap);
    return observer_.stopWhen && observer_.stopWhen(snap);
  }

  EngineObserver observer_;
  bool observing_ = false;
  bool traceEvents_ = false;
  bool stopRequested_ = false;
  std::uint32_t settled_ = 0;
  std::vector<NodeId> scratch_;  ///< positions view storage
  std::uint64_t lastTime_ = ~0ULL;
  std::uint32_t lastSettled_ = 0;
  std::uint64_t lastMoves_ = 0;
};

}  // namespace disp
