#include "core/fiber.hpp"

// Task is header-only; this TU pins the component in the build graph.
namespace disp {
static_assert(sizeof(Task) == sizeof(void*), "Task should remain a thin handle");
}  // namespace disp
