#include "core/fiber.hpp"

namespace disp {

// Task itself stays a thin handle; the frame pool's thread-local free lists
// live here.
static_assert(sizeof(Task) == sizeof(void*), "Task should remain a thin handle");

namespace detail {
thread_local FramePool::FreeLists FramePool::lists_;
}  // namespace detail

}  // namespace disp
