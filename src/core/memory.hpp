#pragma once
// Persistent-memory accounting (the paper's "memory complexity" column).
//
// Memory complexity is the number of bits an agent carries from one CCM
// cycle to the next; Compute-phase scratch is free.  Each algorithm reports
// its agents' persistent footprint through this ledger at checkpoints (every
// settle/role change and periodically); the ledger keeps the high-water
// mark, which EXPERIMENTS.md compares against O(log(k+Δ)).

#include <algorithm>
#include <cstdint>
#include <vector>

namespace disp {

/// Bits to store a value in [0, maxValue] (at least 1).
[[nodiscard]] constexpr std::uint32_t bitsFor(std::uint64_t maxValue) noexcept {
  std::uint32_t bits = 1;
  while ((maxValue >>= 1) != 0) ++bits;
  return bits;
}

/// Width catalogue for a run: all protocol fields are combinations of
/// these quantities.
struct BitWidths {
  std::uint32_t id;     ///< agent identifier: ⌈log2(maxId+1)⌉
  std::uint32_t port;   ///< a port (including ⊥): ⌈log2(Δ+2)⌉
  std::uint32_t count;  ///< a counter bounded by k: ⌈log2(k+1)⌉

  static BitWidths forRun(std::uint64_t maxId, std::uint32_t maxDegree,
                          std::uint32_t k) noexcept {
    return {bitsFor(maxId), bitsFor(static_cast<std::uint64_t>(maxDegree) + 1),
            bitsFor(k)};
  }
};

class MemoryLedger {
 public:
  explicit MemoryLedger(std::uint32_t agentCount = 0) : perAgent_(agentCount, 0) {}

  void resize(std::uint32_t agentCount) { perAgent_.assign(agentCount, 0); }

  /// Records agent `a` currently persisting `bits` bits.
  void record(std::uint32_t a, std::uint64_t bits) {
    if (a < perAgent_.size()) perAgent_[a] = std::max(perAgent_[a], bits);
    maxBits_ = std::max(maxBits_, bits);
  }

  [[nodiscard]] std::uint64_t maxBits() const noexcept { return maxBits_; }
  [[nodiscard]] std::uint64_t bitsOf(std::uint32_t a) const {
    return a < perAgent_.size() ? perAgent_[a] : 0;
  }

 private:
  std::vector<std::uint64_t> perAgent_;
  std::uint64_t maxBits_ = 0;
};

}  // namespace disp
