#include "core/round_executor.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace disp {

namespace {
// Spin budget before a waiter parks (workers) or starts yielding (the
// caller's join).  Deliberately small: on oversubscribed machines — CI
// runners, containers pinned to one core — spinning lanes steal cycles
// from the lane actually doing work.
constexpr int kSpinIterations = 256;
}  // namespace

RoundExecutor::RoundExecutor(unsigned lanes) : lanes_(std::max(1u, lanes)) {
  workers_.reserve(lanes_ - 1);
  for (unsigned lane = 1; lane < lanes_; ++lane) {
    workers_.emplace_back([this, lane] { workerLoop(lane); });
  }
}

RoundExecutor::~RoundExecutor() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stop_.store(true, std::memory_order_release);
  }
  wake_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void RoundExecutor::workerLoop(unsigned lane) {
  std::uint64_t seen = 0;
  for (;;) {
    int spins = 0;
    std::uint64_t gen = generation_.load(std::memory_order_acquire);
    while (gen == seen && !stop_.load(std::memory_order_acquire)) {
      if (++spins < kSpinIterations) {
        std::this_thread::yield();
      } else {
        // Park until the next generation (or shutdown).  The predicate is
        // re-checked under mutex_, and run() bumps generation_ under the
        // same mutex before notifying, so wakeups cannot be lost.
        std::unique_lock<std::mutex> lock(mutex_);
        wake_.wait(lock, [&] {
          return generation_.load(std::memory_order_acquire) != seen ||
                 stop_.load(std::memory_order_acquire);
        });
      }
      gen = generation_.load(std::memory_order_acquire);
    }
    if (gen == seen) return;  // shutdown with no new work
    seen = gen;
    try {
      (*job_)(lane);
    } catch (...) {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (!firstError_) firstError_ = std::current_exception();
    }
    pending_.fetch_sub(1, std::memory_order_acq_rel);
  }
}

void RoundExecutor::run(const std::function<void(unsigned)>& job) {
  if (workers_.empty()) {
    job(0);
    return;
  }
  DISP_CHECK(job_ == nullptr, "RoundExecutor::run() is not reentrant");
  job_ = &job;
  pending_.store(lanes_ - 1, std::memory_order_release);
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    generation_.fetch_add(1, std::memory_order_release);  // publishes job_
  }
  wake_.notify_all();
  try {
    job(0);
  } catch (...) {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (!firstError_) firstError_ = std::current_exception();
  }
  // Join: the release-decrements of pending_ order every worker's writes
  // (including its chunk's world mutations) before this acquire loop exits.
  int spins = 0;
  while (pending_.load(std::memory_order_acquire) != 0) {
    if (++spins >= kSpinIterations) std::this_thread::yield();
  }
  job_ = nullptr;
  std::exception_ptr err;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    std::swap(err, firstError_);
  }
  if (err) std::rethrow_exception(err);
}

std::pair<std::size_t, std::size_t> RoundExecutor::chunk(std::size_t jobs,
                                                         unsigned lanes,
                                                         unsigned lane) {
  DISP_DCHECK(lanes >= 1 && lane < lanes, "lane out of range");
  const std::size_t base = jobs / lanes;
  const std::size_t extra = jobs % lanes;
  const std::size_t lo = lane * base + std::min<std::size_t>(lane, extra);
  return {lo, lo + base + (lane < extra ? 1 : 0)};
}

}  // namespace disp
