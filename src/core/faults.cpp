#include "core/faults.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <stdexcept>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace disp {

namespace {

[[noreturn]] void parseFail(const std::string& text, const std::string& why) {
  throw std::invalid_argument("bad fault spec '" + text + "': " + why);
}

/// Full-token numeric check (sign-free), same rule as GraphSpec: a typo'd
/// value fails when the spec is read, not deep inside a sweep.
bool isNumber(const std::string& v) {
  if (v.empty()) return false;
  char* end = nullptr;
  const double d = std::strtod(v.c_str(), &end);
  return end == v.c_str() + v.size() && std::isfinite(d) && v[0] != '-' &&
         v[0] != '+';
}

/// Canonical value form: integers lose leading zeros ("064" -> "64");
/// non-integers stay as written.
std::string normalizeValue(const std::string& v) {
  if (v.find_first_not_of("0123456789") != std::string::npos) return v;
  return std::to_string(std::strtoull(v.c_str(), nullptr, 10));
}

std::uint64_t asU64(const std::string& text, const std::string& key,
                    const std::string& value) {
  const bool digits = value.find_first_not_of("0123456789") == std::string::npos;
  if (!digits) {
    parseFail(text, "parameter '" + key + "' value '" + value +
                        "' is not an unsigned integer");
  }
  return std::strtoull(value.c_str(), nullptr, 10);
}

/// Canonical undirected edge key: smaller endpoint in the high word.
std::uint64_t edgeKey(NodeId u, NodeId v) {
  if (u > v) std::swap(u, v);
  return (std::uint64_t{u} << 32) | std::uint64_t{v};
}

/// Fault randomness is an independent stream of the run seed: mixing in a
/// fixed tag keeps it decoupled from the scheduler / graph / placement
/// streams (which all seed Rng(seed) directly or fork from it).
Rng faultRng(std::uint64_t seed) {
  std::uint64_t sm = seed ^ 0xfa177fa177fa177fULL;
  return Rng(splitmix64(sm));
}

}  // namespace

FaultSpec FaultSpec::parse(const std::string& text) {
  if (text.empty()) parseFail(text, "empty spec");
  FaultSpec spec;
  const auto colon = text.find(':');
  const std::string head = text.substr(0, colon);

  struct ParamDef {
    const char* key;
    bool required;
  };
  std::vector<ParamDef> known;
  if (head == "none") {
    spec.kind_ = Kind::None;
    if (colon != std::string::npos) parseFail(text, "'none' takes no parameters");
    return spec;
  } else if (head == "crash") {
    spec.kind_ = Kind::Crash;
    known = {{"rate", true}, {"restart", false}, {"window", false}};
  } else if (head == "churn") {
    spec.kind_ = Kind::Churn;
    known = {{"edges", true}, {"every", true}, {"count", false}};
  } else if (head == "silent") {
    spec.kind_ = Kind::Silent;
    known = {{"count", true}};
  } else {
    parseFail(text, "unknown fault kind '" + head +
                        "' (known: none, crash, churn, silent)");
  }

  if (colon == std::string::npos || colon + 1 == text.size()) {
    parseFail(text, "'" + head + "' needs parameters");
  }
  const std::string args = text.substr(colon + 1);
  std::string::size_type from = 0;
  while (from <= args.size()) {
    const auto comma = args.find(',', from);
    const auto to = comma == std::string::npos ? args.size() : comma;
    const std::string tok = args.substr(from, to - from);
    if (!tok.empty()) {
      const auto eq = tok.find('=');
      if (eq == std::string::npos || eq == 0 || eq + 1 == tok.size()) {
        parseFail(text, "parameter '" + tok + "' is not key=value");
      }
      const std::string key = tok.substr(0, eq);
      const std::string value = tok.substr(eq + 1);
      const bool ok = std::any_of(known.begin(), known.end(),
                                  [&key](const ParamDef& d) { return key == d.key; });
      if (!ok) {
        std::string names;
        for (const ParamDef& d : known) {
          if (!names.empty()) names += ", ";
          names += d.key;
        }
        parseFail(text, "fault kind '" + head + "' has no parameter '" + key +
                            "' (known: " + names + ")");
      }
      if (!isNumber(value)) {
        parseFail(text,
                  "parameter '" + key + "' value '" + value + "' is not a number");
      }
      if (!spec.params_.emplace(key, normalizeValue(value)).second) {
        parseFail(text, "duplicate parameter '" + key + "'");
      }
    }
    if (comma == std::string::npos) break;
    from = comma + 1;
  }
  for (const ParamDef& d : known) {
    if (d.required && spec.params_.count(d.key) == 0) {
      parseFail(text, "fault kind '" + head + "' requires parameter '" +
                          std::string(d.key) + "'");
    }
  }

  // Typed views + range validation, once at parse time.
  const auto u64At = [&](const char* key, std::uint64_t fallback) {
    const auto it = spec.params_.find(key);
    return it == spec.params_.end() ? fallback : asU64(text, key, it->second);
  };
  switch (spec.kind_) {
    case Kind::Crash: {
      spec.rate_ = std::strtod(spec.params_.at("rate").c_str(), nullptr);
      if (!(spec.rate_ > 0.0) || spec.rate_ > 1.0) {
        parseFail(text, "rate must be in (0, 1]");
      }
      spec.restart_ = u64At("restart", 0);
      if (spec.params_.count("restart") != 0 && spec.restart_ == 0) {
        parseFail(text, "restart must be >= 1 (omit it for crash-stop)");
      }
      spec.window_ = u64At("window", 0);
      if (spec.params_.count("window") != 0 && spec.window_ == 0) {
        parseFail(text, "window must be >= 1");
      }
      break;
    }
    case Kind::Churn: {
      const std::uint64_t edges = u64At("edges", 0);
      if (edges < 1 || edges > 0xffffffffULL) {
        parseFail(text, "edges must be in [1, 2^32)");
      }
      spec.edges_ = static_cast<std::uint32_t>(edges);
      spec.every_ = u64At("every", 0);
      if (spec.every_ < 1) parseFail(text, "every must be >= 1");
      const std::uint64_t count = u64At("count", 8);
      if (count < 1 || count > 4096) parseFail(text, "count must be in [1, 4096]");
      spec.count_ = static_cast<std::uint32_t>(count);
      break;
    }
    case Kind::Silent: {
      const std::uint64_t count = u64At("count", 0);
      if (count < 1 || count > 0xffffffffULL) {
        parseFail(text, "count must be >= 1");
      }
      spec.count_ = static_cast<std::uint32_t>(count);
      break;
    }
    case Kind::None:
      break;
  }
  return spec;
}

std::string FaultSpec::toString() const {
  std::string out;
  switch (kind_) {
    case Kind::None: return "none";
    case Kind::Crash: out = "crash"; break;
    case Kind::Churn: out = "churn"; break;
    case Kind::Silent: out = "silent"; break;
  }
  bool first = true;
  for (const auto& [key, value] : params_) {
    out += first ? ':' : ',';
    first = false;
    out += key + '=' + value;
  }
  return out;
}

FaultInjector::FaultInjector(const FaultSpec& spec, const Graph& g,
                             std::uint32_t k, std::uint64_t seed, bool async)
    : crashed_(k, 0) {
  DISP_REQUIRE(k >= 1, "fault injector needs at least one agent");
  // ASYNC time parameters scale by k so one spec unit stays one
  // rounds-equivalent (~ one scheduler pass over the k agents).
  const std::uint64_t s = async ? k : 1;
  Rng rng = faultRng(seed);

  switch (spec.kind()) {
    case FaultSpec::Kind::None:
      break;
    case FaultSpec::Kind::Crash: {
      const std::uint64_t window =
          (spec.window() != 0 ? spec.window() : 2ULL * k + 16) * s;
      for (AgentIx a = 0; a < k; ++a) {
        // One draw pair per agent regardless of outcome, so the schedule of
        // agent a never depends on the crash verdicts of agents < a.
        const bool crashes = rng.chance(spec.rate());
        const std::uint64_t when = 1 + rng.below(window);
        if (!crashes) continue;
        schedule_.push_back({FaultEvent::Type::Crash, when, a, 0});
        if (spec.restart() != 0) {
          schedule_.push_back(
              {FaultEvent::Type::Restart, when + spec.restart() * s, a, 0});
        }
      }
      break;
    }
    case FaultSpec::Kind::Churn: {
      downSets_.resize(spec.count());
      for (std::uint32_t i = 0; i < spec.count(); ++i) {
        // The final churn event restores every edge (empty down set): the
        // graph ends equal to its input, so re-dispersal is possible by
        // construction and "after the last fault" is well-defined.
        if (i + 1 < spec.count()) {
          std::vector<std::uint64_t>& set = downSets_[i];
          // Degree-biased edge sampling via a random (node, port) pick —
          // no O(m) edge list needed.  Dedup within the set; bounded
          // attempts so tiny graphs can't spin forever.
          for (std::uint64_t tries = 0;
               set.size() < spec.edges() && tries < 64ULL * spec.edges();
               ++tries) {
            const auto u = static_cast<NodeId>(rng.below(g.nodeCount()));
            if (g.degree(u) == 0) continue;
            const auto p = static_cast<Port>(1 + rng.below(g.degree(u)));
            const std::uint64_t key = edgeKey(u, g.neighbor(u, p));
            if (std::find(set.begin(), set.end(), key) == set.end()) {
              set.push_back(key);
            }
          }
          std::sort(set.begin(), set.end());
        }
        schedule_.push_back(
            {FaultEvent::Type::ChurnSet, (i + 1) * spec.every() * s, kNoAgent, i});
      }
      break;
    }
    case FaultSpec::Kind::Silent: {
      DISP_REQUIRE(spec.count() < k,
                   "silent fault needs count < k (some agent must stay live)");
      // Uniform distinct victims via a partial Fisher-Yates over [0, k).
      std::vector<AgentIx> pool(k);
      for (AgentIx a = 0; a < k; ++a) pool[a] = a;
      std::vector<AgentIx> victims;
      for (std::uint32_t i = 0; i < spec.count(); ++i) {
        const auto j = i + rng.below(k - i);
        std::swap(pool[i], pool[j]);
        victims.push_back(pool[i]);
      }
      std::sort(victims.begin(), victims.end());
      for (const AgentIx a : victims) {
        schedule_.push_back({FaultEvent::Type::Silent, 0, a, 0});
      }
      break;
    }
  }

  // Time-sorted, ties broken by (type, agent, churnIndex): a deterministic
  // total order so the applied sequence — and the emitted fault events —
  // never depend on construction order.
  std::stable_sort(schedule_.begin(), schedule_.end(),
                   [](const FaultEvent& x, const FaultEvent& y) {
                     if (x.time != y.time) return x.time < y.time;
                     if (x.type != y.type) return x.type < y.type;
                     if (x.agent != y.agent) return x.agent < y.agent;
                     return x.churnIndex < y.churnIndex;
                   });
}

bool FaultInjector::edgeDown(NodeId u, NodeId v) const {
  return std::binary_search(down_.begin(), down_.end(), edgeKey(u, v));
}

void FaultInjector::initConfig(const World& world) {
  // excess = k - |occupied nodes|: O(k) once per run, only under faults.
  std::vector<NodeId> pos(world.agentCount());
  for (AgentIx a = 0; a < world.agentCount(); ++a) pos[a] = world.positionOf(a);
  std::sort(pos.begin(), pos.end());
  const auto distinct = std::unique(pos.begin(), pos.end()) - pos.begin();
  excess_ = std::int64_t(world.agentCount()) - std::int64_t(distinct);
}

void FaultInjector::advanceTo(std::uint64_t now, const World& world,
                              TraceHost& trace) {
  while (cursor_ < schedule_.size() && schedule_[cursor_].time <= now) {
    const FaultEvent& e = schedule_[cursor_++];
    ++applied_;
    lastAppliedTime_ = e.time;
    switch (e.type) {
      case FaultEvent::Type::Silent:
        crashed_[e.agent] = 1;
        trace.emit({TraceEventKind::FaultSilent, now, e.agent,
                    world.positionOf(e.agent), kNoTraceLabel, kNoTraceLabel});
        break;
      case FaultEvent::Type::Crash:
        crashed_[e.agent] = 1;
        trace.emit({TraceEventKind::FaultCrash, now, e.agent,
                    world.positionOf(e.agent), kNoTraceLabel, kNoTraceLabel});
        break;
      case FaultEvent::Type::Restart:
        crashed_[e.agent] = 0;
        trace.emit({TraceEventKind::FaultRestart, now, e.agent,
                    world.positionOf(e.agent), kNoTraceLabel, kNoTraceLabel});
        break;
      case FaultEvent::Type::ChurnSet: {
        // Restored edges first (b = 0), then the fresh down set (b = 1);
        // both in sorted key order — a canonical per-event stream.
        const std::vector<std::uint64_t>& next = downSets_[e.churnIndex];
        for (const std::uint64_t key : down_) {
          if (!std::binary_search(next.begin(), next.end(), key)) {
            trace.emit({TraceEventKind::FaultEdge, now, kNoAgent,
                        static_cast<NodeId>(key >> 32),
                        static_cast<std::uint32_t>(key & 0xffffffffULL), 0});
          }
        }
        for (const std::uint64_t key : next) {
          if (!std::binary_search(down_.begin(), down_.end(), key)) {
            trace.emit({TraceEventKind::FaultEdge, now, kNoAgent,
                        static_cast<NodeId>(key >> 32),
                        static_cast<std::uint32_t>(key & 0xffffffffULL), 1});
          }
        }
        down_ = next;
        break;
      }
    }
  }
}

}  // namespace disp
