#pragma once
// Activation schedulers for the ASYNC engine.
//
// The ASYNC adversary controls when each agent performs CCM cycles, subject
// to fairness (every agent is activated infinitely often).  Time is then
// measured in epochs — the scheduler cannot slow the algorithm down in
// epoch terms by merely starving one agent, but it can reorder operations
// arbitrarily, which is what breaks naive algorithms (the paper's §4.3
// in-transit-helper scenario).  These policies generate a spectrum of
// interleavings:
//
//   RoundRobin     — fixed order sweeps (most synchronous-like)
//   ShuffledSweeps — a fresh random permutation per sweep
//   UniformRandom  — i.i.d. uniform agent choice
//   Weighted       — a designated subset is activated `skew`× more often,
//                    stretching the interleavings inside each epoch

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace disp {

class Scheduler {
 public:
  virtual ~Scheduler() = default;
  /// Index of the next agent to activate (in [0, k)).
  [[nodiscard]] virtual std::uint32_t next() = 0;
  [[nodiscard]] virtual std::string name() const = 0;
};

[[nodiscard]] std::unique_ptr<Scheduler> makeRoundRobinScheduler(std::uint32_t k);
[[nodiscard]] std::unique_ptr<Scheduler> makeShuffledSweepScheduler(std::uint32_t k,
                                                                    std::uint64_t seed);
[[nodiscard]] std::unique_ptr<Scheduler> makeUniformScheduler(std::uint32_t k,
                                                              std::uint64_t seed);
/// Agents whose index is in `slowSet` are scheduled with weight 1; all
/// others with weight `skew` (>= 1).
[[nodiscard]] std::unique_ptr<Scheduler> makeWeightedScheduler(
    std::uint32_t k, std::vector<std::uint32_t> slowSet, std::uint32_t skew,
    std::uint64_t seed);

/// Named factory used by benches: round_robin | shuffled | uniform |
/// weighted.  The weighted policy accepts optional parameters,
/// "weighted:SKEW" or "weighted:SKEW:SLOWCOUNT": the first SLOWCOUNT
/// agents (default 1) are activated SKEW (default 8) times less often
/// than the rest.  Plain "weighted" is the historical 8x skew on agent 0.
[[nodiscard]] std::unique_ptr<Scheduler> makeSchedulerByName(const std::string& name,
                                                             std::uint32_t k,
                                                             std::uint64_t seed);
[[nodiscard]] std::vector<std::string> knownSchedulers();

}  // namespace disp
