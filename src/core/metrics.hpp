#pragma once
// Run results and dispersion verification.

#include <cstdint>
#include <string>
#include <vector>

#include "core/world.hpp"
#include "graph/graph.hpp"

namespace disp {

/// One captured trajectory sample (RunOptions::captureTrajectory).
struct TrajectoryPoint {
  std::uint64_t time = 0;     ///< rounds (SYNC) / activations (ASYNC)
  std::uint32_t settled = 0;  ///< settled agents at this point
  std::uint64_t totalMoves = 0;
};

/// Outcome of one simulated run.
struct RunResult {
  bool dispersed = false;      ///< every agent settled on a distinct node
  std::uint64_t time = 0;      ///< rounds (SYNC) or epochs (ASYNC)
  std::uint64_t activations = 0;  ///< total CCM cycles (SYNC: rounds * k)
  std::uint64_t totalMoves = 0;   ///< edge traversals summed over agents
  std::uint64_t maxMemoryBits = 0;  ///< persistent-memory high-water mark
  std::vector<NodeId> finalPositions;  ///< per agent index
  /// True iff RunOptions::stopWhen ended the run before the protocol
  /// finished; the counters above describe the truncated run.
  bool stoppedEarly = false;
  /// Settled/moves time series at the sampling cadence (empty unless
  /// RunOptions::captureTrajectory; always closes on the terminal state).
  std::vector<TrajectoryPoint> trajectory;

  // --- fault-mode verdicts (RunOptions::faults != "none"; DESIGN.md §11) ---
  /// True iff the run ended at the round/activation cap.  Only a fault-mode
  /// outcome: without an injector the cap throws instead.
  bool limitHit = false;
  /// Self-stabilization verdict: the configuration was dispersed from some
  /// point to the end of the run, at or after the last injected fault.
  /// Without faults this mirrors `dispersed`.
  bool recovered = false;
  /// Time (rounds/activations) at which the final dispersed stretch began,
  /// clamped below by the last fault's injection time.  0 unless recovered.
  std::uint64_t recoveredAt = 0;
  /// Fault events actually applied during the run (0 without faults).
  std::uint64_t faultsInjected = 0;
  /// Non-empty iff the protocol violated one of its own invariants under
  /// fault injection (belief desynced by vetoed moves / crashed peers) —
  /// reported instead of thrown, like the cap.  A protocol that crashes
  /// its own logic did not self-stabilize: `recovered` is forced false.
  /// Without faults, invariant violations still throw.
  std::string protocolError;

  [[nodiscard]] std::string summary() const;
};

/// True iff `positions` are pairwise distinct (the dispersion configuration).
[[nodiscard]] bool isDispersed(const std::vector<NodeId>& positions);

}  // namespace disp
