#pragma once
// Run results and dispersion verification.

#include <cstdint>
#include <string>
#include <vector>

#include "core/world.hpp"
#include "graph/graph.hpp"

namespace disp {

/// One captured trajectory sample (RunOptions::captureTrajectory).
struct TrajectoryPoint {
  std::uint64_t time = 0;     ///< rounds (SYNC) / activations (ASYNC)
  std::uint32_t settled = 0;  ///< settled agents at this point
  std::uint64_t totalMoves = 0;
};

/// Outcome of one simulated run.
struct RunResult {
  bool dispersed = false;      ///< every agent settled on a distinct node
  std::uint64_t time = 0;      ///< rounds (SYNC) or epochs (ASYNC)
  std::uint64_t activations = 0;  ///< total CCM cycles (SYNC: rounds * k)
  std::uint64_t totalMoves = 0;   ///< edge traversals summed over agents
  std::uint64_t maxMemoryBits = 0;  ///< persistent-memory high-water mark
  std::vector<NodeId> finalPositions;  ///< per agent index
  /// True iff RunOptions::stopWhen ended the run before the protocol
  /// finished; the counters above describe the truncated run.
  bool stoppedEarly = false;
  /// Settled/moves time series at the sampling cadence (empty unless
  /// RunOptions::captureTrajectory; always closes on the terminal state).
  std::vector<TrajectoryPoint> trajectory;

  [[nodiscard]] std::string summary() const;
};

/// True iff `positions` are pairwise distinct (the dispersion configuration).
[[nodiscard]] bool isDispersed(const std::vector<NodeId>& positions);

}  // namespace disp
