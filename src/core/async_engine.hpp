#pragma once
// ASYNC model: agents are activated one at a time by a fair adversarial
// scheduler; an activation is one full Communicate–Compute–Move cycle
// (reads of co-located memory, local computation, at most one edge
// traversal — atomic per activation, matching the paper's guarantee that
// agents rest on nodes between cycles).
//
// Time is measured in *epochs* (paper §2): epoch i ends at the first moment
// every agent has completed at least one full cycle since epoch i-1 ended.
//
// Protocol code runs in one fiber per agent: a loop of
// `co_await engine.nextActivation(a)` punctuated by at most one
// `engine.move(a, port)` per activation.  A protocol signals global
// termination via `engine.finish()` (e.g. when the last leader settles).

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "core/faults.hpp"
#include "core/fiber.hpp"
#include "core/memory.hpp"
#include "core/scheduler.hpp"
#include "core/trace.hpp"
#include "core/world.hpp"
#include "graph/graph.hpp"
#include "util/check.hpp"

namespace disp {

class AsyncEngine {
 public:
  AsyncEngine(const Graph& g, std::vector<NodeId> startPositions,
              std::vector<AgentId> ids, std::unique_ptr<Scheduler> scheduler);

  // --- world queries ---
  [[nodiscard]] const Graph& graph() const noexcept { return world_.graph(); }
  [[nodiscard]] std::uint32_t agentCount() const noexcept { return world_.agentCount(); }
  [[nodiscard]] AgentId idOf(AgentIx a) const { return world_.idOf(a); }
  [[nodiscard]] NodeId positionOf(AgentIx a) const { return world_.positionOf(a); }
  [[nodiscard]] Port pinOf(AgentIx a) const { return world_.pinOf(a); }
  [[nodiscard]] const std::vector<AgentIx>& agentsAt(NodeId v) const {
    return world_.agentsAt(v);
  }
  /// O(1) co-location count (agentsAt(v).size() without materializing).
  [[nodiscard]] std::uint32_t countAt(NodeId v) const { return world_.countAt(v); }
  [[nodiscard]] std::uint64_t epochs() const noexcept { return epochs_; }
  [[nodiscard]] std::uint64_t activations() const noexcept { return activations_; }
  [[nodiscard]] std::uint64_t totalMoves() const noexcept { return world_.totalMoves(); }
  [[nodiscard]] MemoryLedger& memory() noexcept { return memory_; }

  // --- observability (core/trace.hpp) ---
  /// Installs the observer; call before run().  Snapshots fire every
  /// observer.sampleEvery completed activations.
  void installObserver(EngineObserver observer) { trace_.install(std::move(observer)); }
  /// True iff an onEvent hook is installed.
  [[nodiscard]] bool tracing() const noexcept { return trace_.tracing(); }
  /// True iff stopWhen truncated the run before the protocol finished.
  [[nodiscard]] bool stopRequested() const noexcept { return trace_.stopRequested(); }
  /// Settled-agent count per the protocol's traceSettle/traceUnsettle.
  [[nodiscard]] std::uint32_t settledCount() const noexcept {
    return trace_.settledCount();
  }

  /// Protocol-side trace taps (see SyncEngine for the shared contract);
  /// events are stamped with the current activation index.
  void traceSettle(AgentIx a, std::uint32_t label = kNoTraceLabel) {
    trace_.settle(activations_, a, world_.positionOf(a), label);
  }
  void traceUnsettle(AgentIx a, std::uint32_t oldLabel = kNoTraceLabel,
                     std::uint32_t byLabel = kNoTraceLabel) {
    trace_.unsettle(activations_, a, world_.positionOf(a), oldLabel, byLabel);
  }
  void traceEvent(TraceEventKind kind, AgentIx agent, NodeId node, std::uint32_t a,
                  std::uint32_t b) {
    trace_.emit({kind, activations_, agent, node, a, b});
  }

  // --- protocol-side API (only valid inside fibers) ---
  /// Awaitable: parks agent `a` until the scheduler activates it again.
  [[nodiscard]] StepAwait nextActivation(AgentIx a);

  /// Moves agent `a` through port `p` now.  At most one move per activation
  /// (enforced); only the currently activated agent may move.
  void move(AgentIx a, Port p);

  /// Fires after every committed move with (agent, from, to).  Protocols use
  /// it to keep incremental position indexes (algo/probe_index.hpp) in sync
  /// with the world; at most one hook per engine, installed before run().
  /// The hook must outlive every move() call (protocols own their engine's
  /// whole run, so capturing `this` is safe).
  using MoveHook = std::function<void(AgentIx, NodeId from, NodeId to)>;
  void setMoveHook(MoveHook hook) {
    DISP_CHECK(!moveHook_, "AsyncEngine: move hook already installed");
    moveHook_ = std::move(hook);
  }

  /// Marks the protocol finished; run() returns after the current activation.
  void finish() noexcept { finished_ = true; }

  // --- fault injection (core/faults.hpp, DESIGN.md §11) ---
  /// Installs the per-run fault injector (non-owning; must outlive run()).
  /// Call before run().  With an injector installed:
  ///  * crashed agents are still scheduled (their activations count toward
  ///    epochs — crash-stop must not freeze time) but their fibers are not
  ///    resumed,
  ///  * move() through a port invalid for the agent's actual position, or
  ///    through a churned-down edge, becomes a failed attempt (the agent
  ///    stays put; the attempt still consumes the activation's move budget),
  ///  * hitting the activation cap reports limitHit() instead of throwing.
  void installFaults(FaultInjector* faults) { faults_ = faults; }
  /// True iff a fault-mode run ended at the activation cap (verdict).
  [[nodiscard]] bool limitHit() const noexcept { return limitHit_; }

  // --- orchestration ---
  /// Registers agent `a`'s program.  Every agent must have exactly one.
  void setAgentFiber(AgentIx a, Task task);

  /// Activates agents per the scheduler until finish() or the activation
  /// cap; throws on a fiber exception or when the cap is hit unfinished.
  void run(std::uint64_t maxActivations);

  [[nodiscard]] std::vector<NodeId> positionsSnapshot() const;

 private:
  struct FiberState {
    Task task;
    ResumeSlot slot;
    bool started = false;
  };

  World world_;
  MemoryLedger memory_;
  std::unique_ptr<Scheduler> scheduler_;
  std::vector<FiberState> fibers_;
  std::uint64_t epochs_ = 0;
  std::uint64_t activations_ = 0;
  // Epoch-stamp accounting: lastActiveStamp_[a] is the value epochStamp_
  // held when agent a last completed a cycle; agents with a stale stamp
  // have not yet been active in the current epoch.  Stamps start at 0 and
  // epochStamp_ at 1, so every agent begins "not yet active".
  std::vector<std::uint64_t> lastActiveStamp_;
  std::uint64_t epochStamp_ = 1;
  std::uint32_t activeCount_ = 0;
  AgentIx current_ = kNoAgent;
  bool movedThisActivation_ = false;
  bool inSetup_ = false;
  bool finished_ = false;
  MoveHook moveHook_;  ///< protocol index maintenance (optional)
  TraceHost trace_;    ///< observability (inert without installObserver)
  FaultInjector* faults_ = nullptr;  ///< fault mode (inert when null)
  bool limitHit_ = false;            ///< fault-mode cap verdict
};

}  // namespace disp
