#include "core/scheduler.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>
#include <utility>

#include "util/check.hpp"
#include "util/cli.hpp"

namespace disp {

namespace {

class RoundRobin final : public Scheduler {
 public:
  explicit RoundRobin(std::uint32_t k) : k_(k) {}
  std::uint32_t next() override { return std::exchange(cursor_, (cursor_ + 1) % k_); }
  std::string name() const override { return "round_robin"; }

 private:
  std::uint32_t k_;
  std::uint32_t cursor_ = 0;
};

class ShuffledSweeps final : public Scheduler {
 public:
  ShuffledSweeps(std::uint32_t k, std::uint64_t seed) : rng_(seed), order_(k) {
    std::iota(order_.begin(), order_.end(), 0U);
    rng_.shuffle(order_);
  }
  std::uint32_t next() override {
    if (cursor_ == order_.size()) {
      cursor_ = 0;
      rng_.shuffle(order_);
    }
    return order_[cursor_++];
  }
  std::string name() const override { return "shuffled"; }

 private:
  Rng rng_;
  std::vector<std::uint32_t> order_;
  std::size_t cursor_ = 0;
};

class Uniform final : public Scheduler {
 public:
  Uniform(std::uint32_t k, std::uint64_t seed) : k_(k), rng_(seed) {}
  std::uint32_t next() override { return static_cast<std::uint32_t>(rng_.below(k_)); }
  std::string name() const override { return "uniform"; }

 private:
  std::uint32_t k_;
  Rng rng_;
};

class Weighted final : public Scheduler {
 public:
  Weighted(std::uint32_t k, std::vector<std::uint32_t> slowSet, std::uint32_t skew,
           std::uint64_t seed)
      : rng_(seed) {
    DISP_REQUIRE(skew >= 1, "skew must be >= 1");
    std::vector<std::uint8_t> slow(k, 0);
    for (const std::uint32_t a : slowSet) {
      DISP_REQUIRE(a < k, "slow agent out of range");
      slow[a] = 1;
    }
    for (std::uint32_t a = 0; a < k; ++a) {
      const std::uint32_t copies = slow[a] ? 1 : skew;
      for (std::uint32_t c = 0; c < copies; ++c) pool_.push_back(a);
    }
  }
  std::uint32_t next() override {
    return pool_[static_cast<std::size_t>(rng_.below(pool_.size()))];
  }
  std::string name() const override { return "weighted"; }

 private:
  Rng rng_;
  std::vector<std::uint32_t> pool_;
};

}  // namespace

std::unique_ptr<Scheduler> makeRoundRobinScheduler(std::uint32_t k) {
  DISP_REQUIRE(k > 0, "need agents");
  return std::make_unique<RoundRobin>(k);
}

std::unique_ptr<Scheduler> makeShuffledSweepScheduler(std::uint32_t k, std::uint64_t seed) {
  DISP_REQUIRE(k > 0, "need agents");
  return std::make_unique<ShuffledSweeps>(k, seed);
}

std::unique_ptr<Scheduler> makeUniformScheduler(std::uint32_t k, std::uint64_t seed) {
  DISP_REQUIRE(k > 0, "need agents");
  return std::make_unique<Uniform>(k, seed);
}

std::unique_ptr<Scheduler> makeWeightedScheduler(std::uint32_t k,
                                                 std::vector<std::uint32_t> slowSet,
                                                 std::uint32_t skew, std::uint64_t seed) {
  DISP_REQUIRE(k > 0, "need agents");
  return std::make_unique<Weighted>(k, std::move(slowSet), skew, seed);
}

namespace {

// Parses the colon-separated numeric suffix of "weighted:skew[:slowCount]".
std::vector<std::uint32_t> parseSchedulerParams(const std::string& name,
                                                std::string::size_type from) {
  std::vector<std::uint32_t> params;
  while (from != std::string::npos) {
    const auto colon = name.find(':', from);
    const std::string tok = name.substr(from, colon == std::string::npos
                                                  ? std::string::npos
                                                  : colon - from);
    std::uint64_t v = 0;
    try {
      v = parseU64(tok, "scheduler");
    } catch (const std::exception&) {
      throw std::invalid_argument("bad scheduler parameter in: " + name);
    }
    if (v == 0 || v > 0xffffffffULL) {
      throw std::invalid_argument("bad scheduler parameter in: " + name);
    }
    params.push_back(static_cast<std::uint32_t>(v));
    from = colon == std::string::npos ? std::string::npos : colon + 1;
  }
  return params;
}

}  // namespace

std::unique_ptr<Scheduler> makeSchedulerByName(const std::string& name, std::uint32_t k,
                                               std::uint64_t seed) {
  if (name == "round_robin") return makeRoundRobinScheduler(k);
  if (name == "shuffled") return makeShuffledSweepScheduler(k, seed);
  if (name == "uniform") return makeUniformScheduler(k, seed);
  if (name == "weighted" || name.rfind("weighted:", 0) == 0) {
    // Slow down the lowest-index agents (the async leader is typically the
    // max-ID agent, placed last, so low indices are usually followers — this
    // stresses group-reassembly waits).  "weighted" = the historical 8x skew
    // on agent 0; "weighted:SKEW" and "weighted:SKEW:SLOWCOUNT" configure
    // the skew factor and the size of the slow set.
    std::uint32_t skew = 8, slowCount = 1;
    if (name.size() > 8) {
      const auto params = parseSchedulerParams(name, 9);
      if (params.empty() || params.size() > 2) {
        throw std::invalid_argument("unknown scheduler: " + name);
      }
      skew = params[0];
      if (params.size() == 2) slowCount = params[1];
    }
    DISP_REQUIRE(slowCount <= k, "weighted slow set larger than agent count");
    std::vector<std::uint32_t> slowSet(slowCount);
    std::iota(slowSet.begin(), slowSet.end(), 0U);
    return makeWeightedScheduler(k, std::move(slowSet), skew, seed);
  }
  throw std::invalid_argument("unknown scheduler: " + name);
}

std::vector<std::string> knownSchedulers() {
  return {"round_robin", "shuffled", "uniform", "weighted"};
}

}  // namespace disp
