#include "core/trace.hpp"

namespace disp {

const char* traceEventKindName(TraceEventKind k) {
  switch (k) {
    case TraceEventKind::Move: return "move";
    case TraceEventKind::Settle: return "settle";
    case TraceEventKind::Meeting: return "meeting";
    case TraceEventKind::Subsume: return "subsume";
    case TraceEventKind::Collapse: return "collapse";
    case TraceEventKind::Freeze: return "freeze";
    case TraceEventKind::OscillationDuty: return "oscillation_duty";
    case TraceEventKind::FaultCrash: return "fault_crash";
    case TraceEventKind::FaultRestart: return "fault_restart";
    case TraceEventKind::FaultEdge: return "fault_edge";
    case TraceEventKind::FaultSilent: return "fault_silent";
  }
  return "?";
}

}  // namespace disp
