#include "core/metrics.hpp"

#include <algorithm>
#include <sstream>

namespace disp {

std::string RunResult::summary() const {
  std::ostringstream os;
  os << (dispersed ? "dispersed" : "NOT dispersed") << " time=" << time
     << " moves=" << totalMoves << " memBits=" << maxMemoryBits;
  if (activations > 0) os << " activations=" << activations;
  return os.str();
}

bool isDispersed(const std::vector<NodeId>& positions) {
  std::vector<NodeId> sorted = positions;
  std::sort(sorted.begin(), sorted.end());
  return std::adjacent_find(sorted.begin(), sorted.end()) == sorted.end();
}

}  // namespace disp
