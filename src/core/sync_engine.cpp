#include "core/sync_engine.hpp"

#include <stdexcept>

#include "util/check.hpp"

namespace disp {

SyncEngine::SyncEngine(const Graph& g, std::vector<NodeId> startPositions,
                       std::vector<AgentId> ids)
    : world_(g, std::move(startPositions), std::move(ids)),
      memory_(world_.agentCount()),
      stagedFlag_(world_.agentCount(), 0) {}

void SyncEngine::stageMove(AgentIx a, Port p) {
  DISP_REQUIRE(a < agentCount(), "agent out of range");
  DISP_CHECK(!stagedFlag_[a], "agent staged two moves in one round");
  const NodeId at = world_.positionOf(a);
  DISP_REQUIRE(p >= 1 && p <= graph().degree(at), "staged move through invalid port");
  stagedFlag_[a] = 1;
  staged_.emplace_back(a, p);
}

StepAwait SyncEngine::nextRound() {
  DISP_CHECK(currentSlot_ != nullptr, "nextRound() awaited outside a fiber");
  return StepAwait{currentSlot_};
}

void SyncEngine::addFiber(Task task) {
  DISP_REQUIRE(task.valid(), "fiber task is empty");
  auto fs = std::make_unique<FiberState>();
  fs->task = std::move(task);
  fibers_.push_back(std::move(fs));
}

void SyncEngine::commitRound() {
  for (const auto& [a, p] : staged_) {
    world_.applyMove(a, p);
    stagedFlag_[a] = 0;
  }
  staged_.clear();
  ++round_;
}

void SyncEngine::run(std::uint64_t maxRounds) {
  const std::uint64_t limit = round_ + maxRounds;
  for (;;) {
    for (const auto& fiber : fibers_) {
      if (fiber->task.done()) continue;
      currentSlot_ = &fiber->slot;
      if (!fiber->started) {
        fiber->started = true;
        fiber->task.rootHandle().resume();
      } else if (fiber->slot.armed()) {
        fiber->slot.take().resume();
      }
      currentSlot_ = nullptr;
      if (fiber->task.done()) fiber->task.rethrowIfFailed();
    }
    bool anyAlive = false;
    for (const auto& fiber : fibers_) anyAlive |= !fiber->task.done();
    // A round is only charged if it commits work or some fiber still waits
    // on it; the resume in which the last fiber merely returns is free.
    if (!anyAlive && staged_.empty()) break;
    for (const auto& hook : hooks_) hook();
    commitRound();
    if (!anyAlive) break;  // final staged moves committed above
    if (round_ >= limit) {
      throw std::runtime_error("SyncEngine: round limit exceeded (deadlock or bug); round=" +
                               std::to_string(round_));
    }
  }
}

std::vector<NodeId> SyncEngine::positionsSnapshot() const {
  std::vector<NodeId> out(agentCount());
  for (AgentIx a = 0; a < agentCount(); ++a) out[a] = positionOf(a);
  return out;
}

Task skipRounds(SyncEngine& engine, std::uint32_t n) {
  for (std::uint32_t i = 0; i < n; ++i) {
    co_await engine.nextRound();
  }
}

}  // namespace disp
