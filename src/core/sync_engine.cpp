#include "core/sync_engine.hpp"

#include <algorithm>
#include <stdexcept>
#include <thread>

#include "util/check.hpp"

namespace disp {

namespace {
// Below this many staged moves the locked parallel commit costs more than
// it saves; commit serially.
constexpr std::size_t kParallelCommitMin = 256;
}  // namespace

SyncEngine::SyncEngine(const Graph& g, std::vector<NodeId> startPositions,
                       std::vector<AgentId> ids)
    : world_(g, std::move(startPositions), std::move(ids)),
      memory_(world_.agentCount()),
      stagedStamp_(world_.agentCount(), 0) {}

void SyncEngine::stageMove(AgentIx a, Port p) {
  DISP_REQUIRE(a < agentCount(), "agent out of range");
  DISP_CHECK(stagedStamp_[a] != round_ + 1, "agent staged two moves in one round");
  if (faults_ != nullptr) [[unlikely]] {
    // Fault mode: the double-stage check above still guards protocol bugs,
    // but a crashed agent's stage is dropped, and a port that is invalid
    // for the agent's *actual* position (its protocol's belief desynced by
    // an earlier vetoed move) is a failed traversal attempt, not an error.
    stagedStamp_[a] = round_ + 1;
    if (faults_->crashed(a)) return;
    if (p < 1 || p > graph().degree(world_.positionOf(a))) return;
    staged_.emplace_back(a, p);
    return;
  }
  const NodeId at = world_.positionOf(a);
  DISP_REQUIRE(p >= 1 && p <= graph().degree(at), "staged move through invalid port");
  stagedStamp_[a] = round_ + 1;
  staged_.emplace_back(a, p);
}

StepAwait SyncEngine::nextRound() {
  DISP_CHECK(currentSlot_ != nullptr, "nextRound() awaited outside a fiber");
  return StepAwait{currentSlot_};
}

void SyncEngine::addFiber(Task task) {
  DISP_REQUIRE(task.valid(), "fiber task is empty");
  // The live-fiber index is snapshotted at run() entry (and the historical
  // loop iterated fibers_ mid-range-for, which was never safe either), so
  // fibers cannot join a run in progress.
  DISP_CHECK(!running_, "addFiber() during run(): fibers must be added up front");
  auto fs = std::make_unique<FiberState>();
  fs->task = std::move(task);
  fibers_.push_back(std::move(fs));
}

void SyncEngine::commitRound() {
  if (faults_ != nullptr) [[unlikely]] {
    // Fault-aware commit: always serial (fault runs trade the parallel
    // commit for one deterministic veto point — lane invariance is
    // unaffected because staging already merged in lane order).  Crash
    // vetoes happened at staging; here churned-down edges veto the
    // traversal (the agent stays put, no Move event, no move counted) and
    // the injector's excess counter tracks every applied move.
    const bool churn = faults_->edgeFaultsActive();
    for (const auto& [a, p] : staged_) {
      const NodeId from = world_.positionOf(a);
      const NodeId to = graph().neighbor(from, p);
      if (churn && faults_->edgeDown(from, to)) continue;
      faults_->noteMove(world_.countAt(from), world_.countAt(to));
      world_.applyMoveStaged(a, p);
      if (trace_.tracing()) {
        trace_.emit({TraceEventKind::Move, round_, a, to, from, p});
      }
    }
  } else if (trace_.tracing()) {
    // Tracing commits stay serial regardless of lanes: the Move event
    // stream interleaves with the commits themselves, and byte-identical
    // traces matter more than speed on observed runs (DESIGN.md §9).
    for (const auto& [a, p] : staged_) {
      const NodeId from = world_.positionOf(a);
      world_.applyMoveStaged(a, p);
      trace_.emit({TraceEventKind::Move, round_, a, world_.positionOf(a), from, p});
    }
  } else if (executor_ && staged_.size() >= kParallelCommitMin) {
    // Order-independent within a round (each agent moves at most once and
    // per-node mutations are locked), so lanes may commit their contiguous
    // chunks concurrently; see World::applyMovesStagedParallel.
    world_.applyMovesStagedParallel(*executor_, staged_);
  } else {
    for (const auto& [a, p] : staged_) {
      // Validated by stageMove against a position that cannot have changed
      // since (moves only commit here), so skip revalidation.
      world_.applyMoveStaged(a, p);
    }
  }
  staged_.clear();
  ++round_;  // also retires every staging stamp for the round
}

void SyncEngine::setRunThreads(unsigned threads) {
  DISP_CHECK(!running_, "setRunThreads() during run()");
  if (threads == 0) threads = std::max(1u, std::thread::hardware_concurrency());
  threads = std::min(threads, 256u);
  if (threads <= 1) {
    executor_.reset();
  } else if (!executor_ || executor_->lanes() != threads) {
    executor_ = std::make_unique<RoundExecutor>(threads);
  }
}

void SyncEngine::stageParallel(const std::function<void(unsigned, LaneStager&)>& fn) {
  const unsigned lanes = stagingLanes();
  if (lanes == 1) {
    // Serial: still route through a stager so callers have one code path,
    // then merge inline.
    if (laneStagers_.empty()) laneStagers_.resize(1);
    LaneStager& only = laneStagers_[0];
    only.tracing_ = trace_.tracing();
    only.moves_.clear();
    only.events_.clear();
    fn(0, only);
    for (const auto& [a, p] : only.moves_) stageMove(a, p);
    for (TraceEvent ev : only.events_) {
      ev.time = round_;
      trace_.emit(ev);
    }
    return;
  }
  if (laneStagers_.size() < lanes) laneStagers_.resize(lanes);
  for (unsigned l = 0; l < lanes; ++l) {
    laneStagers_[l].tracing_ = trace_.tracing();
    laneStagers_[l].moves_.clear();
    laneStagers_[l].events_.clear();
  }
  executor_->run([&](unsigned lane) { fn(lane, laneStagers_[lane]); });
  // Lane-order merge through the regular staging/trace paths: with
  // contiguous per-lane chunks this reproduces the serial staging sequence
  // exactly, validation included.
  for (unsigned l = 0; l < lanes; ++l) {
    for (const auto& [a, p] : laneStagers_[l].moves_) stageMove(a, p);
    for (TraceEvent ev : laneStagers_[l].events_) {
      ev.time = round_;
      trace_.emit(ev);
    }
  }
}

void SyncEngine::installObserver(EngineObserver observer) {
  DISP_CHECK(!running_, "installObserver() during run()");
  trace_.install(std::move(observer));
}

void SyncEngine::run(std::uint64_t maxRounds) {
  const std::uint64_t limit = round_ + maxRounds;
  running_ = true;
  struct RunningGuard {
    bool& flag;
    ~RunningGuard() { flag = false; }
  } guard{running_};
  staged_.reserve(agentCount());
  // Compacted live-fiber index: finished fibers leave the scan set, so a
  // round costs O(live fibers), not O(all fibers ever added).  Insertion
  // order is preserved — resume order is part of per-seed determinism.
  live_.clear();
  for (const auto& fiber : fibers_) {
    if (!fiber->task.done()) live_.push_back(fiber.get());
  }
  if (faults_ != nullptr) {
    // Seed the excess counter and apply t = 0 faults (byzantine-silent
    // agents) before the first staging pass.
    faults_->initConfig(world_);
    faults_->advanceTo(round_, world_, trace_);
    faults_->noteConfig(round_);
  }
  for (;;) {
    std::size_t keep = 0;
    for (std::size_t i = 0; i < live_.size(); ++i) {
      FiberState* fiber = live_[i];
      currentSlot_ = &fiber->slot;
      if (!fiber->started) {
        fiber->started = true;
        fiber->task.rootHandle().resume();
      } else if (fiber->slot.armed()) {
        fiber->slot.take().resume();
      }
      currentSlot_ = nullptr;
      if (fiber->task.done()) {
        fiber->task.rethrowIfFailed();
      } else {
        live_[keep++] = fiber;
      }
    }
    live_.resize(keep);
    const bool anyAlive = !live_.empty();
    // A round is only charged if it commits work or some fiber still waits
    // on it; the resume in which the last fiber merely returns is free.
    if (!anyAlive && staged_.empty()) break;
    for (const auto& hook : hooks_) hook();
    commitRound();
    if (faults_ != nullptr) faults_->noteConfig(round_);
    const auto fill = [this](std::vector<NodeId>& v) {
      for (AgentIx a = 0; a < agentCount(); ++a) v[a] = positionOf(a);
    };
    const bool stop =
        trace_.sampleAtCadence(round_, round_, totalMoves(), agentCount(), fill);
    if (!anyAlive) break;  // run complete; a same-round stopWhen is moot
    if (stop) {
      // Early stop: fibers stay suspended (destroyed with the engine);
      // facts so far remain valid and the session reports stoppedEarly.
      trace_.requestStop();
      break;
    }
    if (round_ >= limit) {
      if (faults_ != nullptr) {
        // Under faults a protocol may legitimately never terminate (e.g.
        // crash-stopped agents it waits for); the cap is a verdict, not a
        // bug — report it and let the session score recovery.
        limitHit_ = true;
        break;
      }
      throw std::runtime_error("SyncEngine: round limit exceeded (deadlock or bug); round=" +
                               std::to_string(round_));
    }
    if (faults_ != nullptr) {
      // Round boundary: crashes/restarts/churn scheduled at time <= round_
      // take effect before the next staging pass, stamped with the same
      // round as the moves they gate.
      faults_->advanceTo(round_, world_, trace_);
    }
  }
  // Close the series on the terminal state: the run may end off-cadence,
  // and the final fiber resumes (settles without staged moves) happen after
  // the last commit.
  trace_.closeSeries(round_, round_, totalMoves(), agentCount(),
                     [this](std::vector<NodeId>& v) {
                       for (AgentIx a = 0; a < agentCount(); ++a) v[a] = positionOf(a);
                     });
}

std::vector<NodeId> SyncEngine::positionsSnapshot() const {
  std::vector<NodeId> out(agentCount());
  for (AgentIx a = 0; a < agentCount(); ++a) out[a] = positionOf(a);
  return out;
}

Task skipRounds(SyncEngine& engine, std::uint32_t n) {
  for (std::uint32_t i = 0; i < n; ++i) {
    co_await engine.nextRound();
  }
}

}  // namespace disp
