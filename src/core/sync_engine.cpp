#include "core/sync_engine.hpp"

#include <stdexcept>

#include "util/check.hpp"

namespace disp {

SyncEngine::SyncEngine(const Graph& g, std::vector<NodeId> startPositions,
                       std::vector<AgentId> ids)
    : world_(g, std::move(startPositions), std::move(ids)),
      memory_(world_.agentCount()),
      stagedStamp_(world_.agentCount(), 0) {}

void SyncEngine::stageMove(AgentIx a, Port p) {
  DISP_REQUIRE(a < agentCount(), "agent out of range");
  DISP_CHECK(stagedStamp_[a] != round_ + 1, "agent staged two moves in one round");
  const NodeId at = world_.positionOf(a);
  DISP_REQUIRE(p >= 1 && p <= graph().degree(at), "staged move through invalid port");
  stagedStamp_[a] = round_ + 1;
  staged_.emplace_back(a, p);
}

StepAwait SyncEngine::nextRound() {
  DISP_CHECK(currentSlot_ != nullptr, "nextRound() awaited outside a fiber");
  return StepAwait{currentSlot_};
}

void SyncEngine::addFiber(Task task) {
  DISP_REQUIRE(task.valid(), "fiber task is empty");
  // The live-fiber index is snapshotted at run() entry (and the historical
  // loop iterated fibers_ mid-range-for, which was never safe either), so
  // fibers cannot join a run in progress.
  DISP_CHECK(!running_, "addFiber() during run(): fibers must be added up front");
  auto fs = std::make_unique<FiberState>();
  fs->task = std::move(task);
  fibers_.push_back(std::move(fs));
}

void SyncEngine::commitRound() {
  if (trace_.tracing()) {
    for (const auto& [a, p] : staged_) {
      const NodeId from = world_.positionOf(a);
      world_.applyMoveStaged(a, p);
      trace_.emit({TraceEventKind::Move, round_, a, world_.positionOf(a), from, p});
    }
  } else {
    for (const auto& [a, p] : staged_) {
      // Validated by stageMove against a position that cannot have changed
      // since (moves only commit here), so skip revalidation.
      world_.applyMoveStaged(a, p);
    }
  }
  staged_.clear();
  ++round_;  // also retires every staging stamp for the round
}

void SyncEngine::installObserver(EngineObserver observer) {
  DISP_CHECK(!running_, "installObserver() during run()");
  trace_.install(std::move(observer));
}

void SyncEngine::run(std::uint64_t maxRounds) {
  const std::uint64_t limit = round_ + maxRounds;
  running_ = true;
  struct RunningGuard {
    bool& flag;
    ~RunningGuard() { flag = false; }
  } guard{running_};
  staged_.reserve(agentCount());
  // Compacted live-fiber index: finished fibers leave the scan set, so a
  // round costs O(live fibers), not O(all fibers ever added).  Insertion
  // order is preserved — resume order is part of per-seed determinism.
  live_.clear();
  for (const auto& fiber : fibers_) {
    if (!fiber->task.done()) live_.push_back(fiber.get());
  }
  for (;;) {
    std::size_t keep = 0;
    for (std::size_t i = 0; i < live_.size(); ++i) {
      FiberState* fiber = live_[i];
      currentSlot_ = &fiber->slot;
      if (!fiber->started) {
        fiber->started = true;
        fiber->task.rootHandle().resume();
      } else if (fiber->slot.armed()) {
        fiber->slot.take().resume();
      }
      currentSlot_ = nullptr;
      if (fiber->task.done()) {
        fiber->task.rethrowIfFailed();
      } else {
        live_[keep++] = fiber;
      }
    }
    live_.resize(keep);
    const bool anyAlive = !live_.empty();
    // A round is only charged if it commits work or some fiber still waits
    // on it; the resume in which the last fiber merely returns is free.
    if (!anyAlive && staged_.empty()) break;
    for (const auto& hook : hooks_) hook();
    commitRound();
    const auto fill = [this](std::vector<NodeId>& v) {
      for (AgentIx a = 0; a < agentCount(); ++a) v[a] = positionOf(a);
    };
    const bool stop =
        trace_.sampleAtCadence(round_, round_, totalMoves(), agentCount(), fill);
    if (!anyAlive) break;  // run complete; a same-round stopWhen is moot
    if (stop) {
      // Early stop: fibers stay suspended (destroyed with the engine);
      // facts so far remain valid and the session reports stoppedEarly.
      trace_.requestStop();
      break;
    }
    if (round_ >= limit) {
      throw std::runtime_error("SyncEngine: round limit exceeded (deadlock or bug); round=" +
                               std::to_string(round_));
    }
  }
  // Close the series on the terminal state: the run may end off-cadence,
  // and the final fiber resumes (settles without staged moves) happen after
  // the last commit.
  trace_.closeSeries(round_, round_, totalMoves(), agentCount(),
                     [this](std::vector<NodeId>& v) {
                       for (AgentIx a = 0; a < agentCount(); ++a) v[a] = positionOf(a);
                     });
}

std::vector<NodeId> SyncEngine::positionsSnapshot() const {
  std::vector<NodeId> out(agentCount());
  for (AgentIx a = 0; a < agentCount(); ++a) out[a] = positionOf(a);
  return out;
}

Task skipRounds(SyncEngine& engine, std::uint32_t n) {
  for (std::uint32_t i = 0; i < n; ++i) {
    co_await engine.nextRound();
  }
}

}  // namespace disp
