#pragma once
// Shared world state for both engines: agent positions, incoming ports and
// per-node occupant sets.  Nodes themselves remain memoryless — occupancy
// is engine bookkeeping for co-location queries, which are exactly what the
// paper's local communication model permits.
//
// Hot-path layout (see DESIGN.md "Hot-path data structures"): occupancy is
// an intrusive doubly-linked list per node threaded through flat cell
// arrays (AgentCell packs pos/pin/next/prev, NodeCell packs
// head/count/view-state — one cache line each per move), so applyMove() is
// O(1) regardless of how many agents share a node.  agentsAt() serves the
// documented ascending-by-agent-index view from a per-node cache that is
// repaired lazily: each move appends an add/remove op to the node's pending
// log, and the next query replays the log into the sorted cache (O(ops * g))
// — unless the log overflowed, in which case the cache is rebuilt from the
// list and sorted (O(g log g)).  Query-heavy phases (ASYNC probing) pay the
// cheap replay; move-heavy bursts (SYNC group hops) coalesce into one
// rebuild per query instead of per-move sorted inserts.

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "graph/graph.hpp"

namespace disp {

class RoundExecutor;

/// Globally unique agent identifier (the paper's a_i.ID ∈ [1, k^O(1)]).
using AgentId = std::uint32_t;

/// Dense agent index in [0, k); engine-internal.
using AgentIx = std::uint32_t;
inline constexpr AgentIx kNoAgent = static_cast<AgentIx>(-1);

class World {
 public:
  World(const Graph& g, std::vector<NodeId> startPositions, std::vector<AgentId> ids);

  [[nodiscard]] const Graph& graph() const noexcept { return *graph_; }
  [[nodiscard]] std::uint32_t agentCount() const noexcept {
    return static_cast<std::uint32_t>(agents_.size());
  }

  [[nodiscard]] AgentId idOf(AgentIx a) const {
    DISP_DCHECK(a < agentCount(), "agent out of range");
    return ids_[a];
  }
  [[nodiscard]] NodeId positionOf(AgentIx a) const {
    DISP_DCHECK(a < agentCount(), "agent out of range");
    return agents_[a].pos;
  }
  /// Incoming port: the port of the current node through which the agent
  /// last arrived (kNoPort before the first move).
  [[nodiscard]] Port pinOf(AgentIx a) const {
    DISP_DCHECK(a < agentCount(), "agent out of range");
    return agents_[a].pin;
  }

  /// Agents co-located at node v, ascending by agent index.  The reference
  /// stays valid until the next applyMove() touching v (same contract as
  /// the historical always-sorted vectors).
  [[nodiscard]] const std::vector<AgentIx>& agentsAt(NodeId v) const {
    DISP_DCHECK(v < graph_->nodeCount(), "node out of range");
    if (nodes_[v].viewState != kViewClean) materialize(v);
    return auxSlot(nodes_[v].aux).view;
  }

  /// Number of agents at node v: O(1), never materializes the sorted view.
  /// Prefer this over agentsAt(v).size() on hot paths.
  [[nodiscard]] std::uint32_t countAt(NodeId v) const {
    DISP_DCHECK(v < graph_->nodeCount(), "node out of range");
    return nodes_[v].count;
  }

  [[nodiscard]] std::uint64_t totalMoves() const noexcept { return totalMoves_; }

  /// Moves agent `a` through port `p` of its current node (immediately).
  void applyMove(AgentIx a, Port p);

  /// Same, but skips the argument validation: for engine commit loops whose
  /// moves were already validated at staging time against a position that
  /// cannot have changed since (SYNC stage/commit discipline).
  void applyMoveStaged(AgentIx a, Port p) {
    DISP_DCHECK(a < agentCount(), "agent out of range");
    DISP_DCHECK(p >= 1 && p <= graph_->degree(agents_[a].pos),
                "move through invalid port");
    moveInternal(a, agents_[a].pos, p);
  }

  /// Commits one round's staged batch with the lanes of `exec` (contiguous
  /// chunk per lane).  Byte-identical to applying the batch serially: each
  /// agent appears at most once (SYNC double-stage rule), per-node
  /// link/count/log mutations are spinlocked, and one round's pending-log
  /// ops on a node are add/removes of distinct agents — order-independent
  /// under materialize()'s sorted replay, with log overflow decided by op
  /// count alone.
  void applyMovesStagedParallel(RoundExecutor& exec,
                                const std::vector<std::pair<AgentIx, Port>>& moves);

 private:
  enum : std::uint8_t { kViewClean = 0, kViewPendingLog = 1, kViewRebuild = 2 };
  // Pending ops replayable in O(g) each stay worthwhile only in small
  // numbers; past this the next query rebuilds and sorts from scratch.
  static constexpr std::size_t kMaxPendingOps = 8;
  // Log entries are the agent index with the top bit set for removals.
  static constexpr AgentIx kLogRemove = AgentIx{1} << 31;

  /// No aux slot allocated yet for this node.
  static constexpr std::uint32_t kNoAux = 0xffffffffu;
  /// Aux-pool chunk size: big enough to amortize allocation, small enough
  /// that sparse occupancy on a 10^7-node graph stays sparse in memory.
  static constexpr std::size_t kAuxChunk = 4096;

  /// Per-agent hot state: one 16-byte cell per move endpoint.
  struct AgentCell {
    NodeId pos = kInvalidNode;
    Port pin = kNoPort;
    AgentIx next = kNoAgent;  ///< intrusive occupancy-list links
    AgentIx prev = kNoAgent;
  };
  /// Per-node hot state: list head, occupant count, sorted-view freshness,
  /// and the node's slot in the on-demand view/log pool.  16 bytes — at
  /// web scale the two per-node vectors this replaces (48 bytes of headers
  /// per node, ~480 MB at n = 10^7) dominated the resident set.
  struct NodeCell {
    AgentIx head = kNoAgent;
    std::uint32_t count = 0;
    std::uint32_t aux = kNoAux;
    std::uint8_t viewState = kViewRebuild;
  };

 public:
  /// Declared per-entity footprints, exported so the scale campaign's RSS
  /// lower bound (exp/benches_scale.cpp) tracks the real structs instead
  /// of hand-copied literals.
  static constexpr std::size_t kAgentCellBytes = sizeof(AgentCell);
  static constexpr std::size_t kNodeCellBytes = sizeof(NodeCell);

 private:
  /// Sorted occupancy view + pending-op log for one queried node.  Only
  /// nodes that are ever materialized get one (at most the nodes agents
  /// visit and query), pooled in fixed chunks.
  struct ViewAux {
    std::vector<AgentIx> view;
    std::vector<AgentIx> log;
  };

  [[nodiscard]] ViewAux& auxSlot(std::uint32_t slot) const {
    DISP_DCHECK(slot != kNoAux, "aux slot not allocated");
    return auxChunks_[slot / kAuxChunk][slot % kAuxChunk];
  }

  /// Returns the node's ViewAux, allocating its slot on first use.  Safe
  /// under the engine concurrency contract: a node's cell is only touched
  /// by the lane that owns it (staging partition) or under its spinlock
  /// (parallel commit); the pool itself (slot counter + chunk pointers) is
  /// guarded by auxMutex_, and auxChunks_ is preallocated to its final
  /// length so concurrent auxSlot() reads never race a vector growth.
  [[nodiscard]] ViewAux& auxFor(NodeId v) const {
    const std::uint32_t slot = nodes_[v].aux;
    if (slot != kNoAux) return auxSlot(slot);
    return auxAllocate(v);
  }

  ViewAux& auxAllocate(NodeId v) const;

  void materialize(NodeId v) const;

  void moveLockedStaged(AgentIx a, Port p);
  void lockNode(NodeId v) noexcept;
  void unlockNode(NodeId v) noexcept {
    nodeLocks_[v].clear(std::memory_order_release);
  }

  void moveInternal(AgentIx a, NodeId from, Port p) {
    const NodeId to = graph_->neighbor(from, p);
    AgentCell& cell = agents_[a];
    NodeCell& src = nodes_[from];
    NodeCell& dst = nodes_[to];

    // Unlink from `from`'s list ...
    if (cell.prev == kNoAgent) {
      src.head = cell.next;
    } else {
      agents_[cell.prev].next = cell.next;
    }
    if (cell.next != kNoAgent) agents_[cell.next].prev = cell.prev;
    // ... and push onto the front of `to`'s list.  All O(1); order inside
    // the list is irrelevant because the agentsAt() views are kept sorted.
    cell.next = dst.head;
    cell.prev = kNoAgent;
    if (dst.head != kNoAgent) agents_[dst.head].prev = a;
    dst.head = a;
    --src.count;
    ++dst.count;
    logOp(from, a | kLogRemove);
    logOp(to, a);

    cell.pos = to;
    cell.pin = graph_->reversePort(from, p);
    ++totalMoves_;
  }

  void logOp(NodeId v, AgentIx entry) {
    NodeCell& node = nodes_[v];
    if (node.viewState == kViewRebuild) return;  // log already abandoned
    // A non-rebuild state means materialize() ran for v, so its aux slot
    // exists — logOp never allocates (and so never takes auxMutex_).
    std::vector<AgentIx>& log = auxSlot(node.aux).log;
    if (log.size() >= kMaxPendingOps) {
      log.clear();
      node.viewState = kViewRebuild;
      return;
    }
    log.push_back(entry);
    node.viewState = kViewPendingLog;
  }

  const Graph* graph_;
  std::vector<AgentCell> agents_;
  std::vector<AgentId> ids_;
  mutable std::vector<NodeCell> nodes_;  // viewState flips on (const) queries
  // On-demand pool of sorted views + pending logs, chunked so growth never
  // reallocates (auxChunks_ is sized to its final length up front); only
  // queried nodes ever get a slot.
  mutable std::vector<std::unique_ptr<ViewAux[]>> auxChunks_;
  mutable std::uint32_t auxCount_ = 0;
  mutable std::mutex auxMutex_;
  std::uint64_t totalMoves_ = 0;
  /// Per-node spinlocks for the parallel commit path, allocated lazily on
  /// the first parallel batch (kept outside NodeCell so cells stay small
  /// and copyable; serial runs never touch them).
  std::unique_ptr<std::atomic_flag[]> nodeLocks_;
};

}  // namespace disp
