#pragma once
// Shared world state for both engines: agent positions, incoming ports and
// per-node occupant sets.  Nodes themselves remain memoryless — occupancy
// is engine bookkeeping for co-location queries, which are exactly what the
// paper's local communication model permits.

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace disp {

/// Globally unique agent identifier (the paper's a_i.ID ∈ [1, k^O(1)]).
using AgentId = std::uint32_t;

/// Dense agent index in [0, k); engine-internal.
using AgentIx = std::uint32_t;
inline constexpr AgentIx kNoAgent = static_cast<AgentIx>(-1);

class World {
 public:
  World(const Graph& g, std::vector<NodeId> startPositions, std::vector<AgentId> ids);

  [[nodiscard]] const Graph& graph() const noexcept { return *graph_; }
  [[nodiscard]] std::uint32_t agentCount() const noexcept {
    return static_cast<std::uint32_t>(pos_.size());
  }

  [[nodiscard]] AgentId idOf(AgentIx a) const {
    DISP_DCHECK(a < agentCount(), "agent out of range");
    return ids_[a];
  }
  [[nodiscard]] NodeId positionOf(AgentIx a) const {
    DISP_DCHECK(a < agentCount(), "agent out of range");
    return pos_[a];
  }
  /// Incoming port: the port of the current node through which the agent
  /// last arrived (kNoPort before the first move).
  [[nodiscard]] Port pinOf(AgentIx a) const {
    DISP_DCHECK(a < agentCount(), "agent out of range");
    return pin_[a];
  }

  /// Agents co-located at node v, ascending by agent index.
  [[nodiscard]] const std::vector<AgentIx>& agentsAt(NodeId v) const {
    DISP_DCHECK(v < graph_->nodeCount(), "node out of range");
    return occupants_[v];
  }

  [[nodiscard]] std::uint64_t totalMoves() const noexcept { return totalMoves_; }

  /// Moves agent `a` through port `p` of its current node (immediately).
  void applyMove(AgentIx a, Port p);

 private:
  const Graph* graph_;
  std::vector<NodeId> pos_;
  std::vector<Port> pin_;
  std::vector<AgentId> ids_;
  std::vector<std::vector<AgentIx>> occupants_;
  std::uint64_t totalMoves_ = 0;
};

}  // namespace disp
