#pragma once
// Shared world state for both engines: agent positions, incoming ports and
// per-node occupant sets.  Nodes themselves remain memoryless — occupancy
// is engine bookkeeping for co-location queries, which are exactly what the
// paper's local communication model permits.
//
// Hot-path layout (see DESIGN.md "Hot-path data structures"): occupancy is
// an intrusive doubly-linked list per node threaded through flat cell
// arrays (AgentCell packs pos/pin/next/prev, NodeCell packs
// head/count/view-state — one cache line each per move), so applyMove() is
// O(1) regardless of how many agents share a node.  agentsAt() serves the
// documented ascending-by-agent-index view from a per-node cache that is
// repaired lazily: each move appends an add/remove op to the node's pending
// log, and the next query replays the log into the sorted cache (O(ops * g))
// — unless the log overflowed, in which case the cache is rebuilt from the
// list and sorted (O(g log g)).  Query-heavy phases (ASYNC probing) pay the
// cheap replay; move-heavy bursts (SYNC group hops) coalesce into one
// rebuild per query instead of per-move sorted inserts.

#include <atomic>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "graph/graph.hpp"

namespace disp {

class RoundExecutor;

/// Globally unique agent identifier (the paper's a_i.ID ∈ [1, k^O(1)]).
using AgentId = std::uint32_t;

/// Dense agent index in [0, k); engine-internal.
using AgentIx = std::uint32_t;
inline constexpr AgentIx kNoAgent = static_cast<AgentIx>(-1);

class World {
 public:
  World(const Graph& g, std::vector<NodeId> startPositions, std::vector<AgentId> ids);

  [[nodiscard]] const Graph& graph() const noexcept { return *graph_; }
  [[nodiscard]] std::uint32_t agentCount() const noexcept {
    return static_cast<std::uint32_t>(agents_.size());
  }

  [[nodiscard]] AgentId idOf(AgentIx a) const {
    DISP_DCHECK(a < agentCount(), "agent out of range");
    return ids_[a];
  }
  [[nodiscard]] NodeId positionOf(AgentIx a) const {
    DISP_DCHECK(a < agentCount(), "agent out of range");
    return agents_[a].pos;
  }
  /// Incoming port: the port of the current node through which the agent
  /// last arrived (kNoPort before the first move).
  [[nodiscard]] Port pinOf(AgentIx a) const {
    DISP_DCHECK(a < agentCount(), "agent out of range");
    return agents_[a].pin;
  }

  /// Agents co-located at node v, ascending by agent index.  The reference
  /// stays valid until the next applyMove() touching v (same contract as
  /// the historical always-sorted vectors).
  [[nodiscard]] const std::vector<AgentIx>& agentsAt(NodeId v) const {
    DISP_DCHECK(v < graph_->nodeCount(), "node out of range");
    if (nodes_[v].viewState != kViewClean) materialize(v);
    return view_[v];
  }

  /// Number of agents at node v: O(1), never materializes the sorted view.
  /// Prefer this over agentsAt(v).size() on hot paths.
  [[nodiscard]] std::uint32_t countAt(NodeId v) const {
    DISP_DCHECK(v < graph_->nodeCount(), "node out of range");
    return nodes_[v].count;
  }

  [[nodiscard]] std::uint64_t totalMoves() const noexcept { return totalMoves_; }

  /// Moves agent `a` through port `p` of its current node (immediately).
  void applyMove(AgentIx a, Port p);

  /// Same, but skips the argument validation: for engine commit loops whose
  /// moves were already validated at staging time against a position that
  /// cannot have changed since (SYNC stage/commit discipline).
  void applyMoveStaged(AgentIx a, Port p) {
    DISP_DCHECK(a < agentCount(), "agent out of range");
    DISP_DCHECK(p >= 1 && p <= graph_->degree(agents_[a].pos),
                "move through invalid port");
    moveInternal(a, agents_[a].pos, p);
  }

  /// Commits one round's staged batch with the lanes of `exec` (contiguous
  /// chunk per lane).  Byte-identical to applying the batch serially: each
  /// agent appears at most once (SYNC double-stage rule), per-node
  /// link/count/log mutations are spinlocked, and one round's pending-log
  /// ops on a node are add/removes of distinct agents — order-independent
  /// under materialize()'s sorted replay, with log overflow decided by op
  /// count alone.
  void applyMovesStagedParallel(RoundExecutor& exec,
                                const std::vector<std::pair<AgentIx, Port>>& moves);

 private:
  enum : std::uint8_t { kViewClean = 0, kViewPendingLog = 1, kViewRebuild = 2 };
  // Pending ops replayable in O(g) each stay worthwhile only in small
  // numbers; past this the next query rebuilds and sorts from scratch.
  static constexpr std::size_t kMaxPendingOps = 8;
  // Log entries are the agent index with the top bit set for removals.
  static constexpr AgentIx kLogRemove = AgentIx{1} << 31;

  /// Per-agent hot state: one 16-byte cell per move endpoint.
  struct AgentCell {
    NodeId pos = kInvalidNode;
    Port pin = kNoPort;
    AgentIx next = kNoAgent;  ///< intrusive occupancy-list links
    AgentIx prev = kNoAgent;
  };
  /// Per-node hot state: list head, occupant count, sorted-view freshness.
  struct NodeCell {
    AgentIx head = kNoAgent;
    std::uint32_t count = 0;
    std::uint8_t viewState = kViewRebuild;
  };

  void materialize(NodeId v) const;

  void moveLockedStaged(AgentIx a, Port p);
  void lockNode(NodeId v) noexcept;
  void unlockNode(NodeId v) noexcept {
    nodeLocks_[v].clear(std::memory_order_release);
  }

  void moveInternal(AgentIx a, NodeId from, Port p) {
    const NodeId to = graph_->neighbor(from, p);
    AgentCell& cell = agents_[a];
    NodeCell& src = nodes_[from];
    NodeCell& dst = nodes_[to];

    // Unlink from `from`'s list ...
    if (cell.prev == kNoAgent) {
      src.head = cell.next;
    } else {
      agents_[cell.prev].next = cell.next;
    }
    if (cell.next != kNoAgent) agents_[cell.next].prev = cell.prev;
    // ... and push onto the front of `to`'s list.  All O(1); order inside
    // the list is irrelevant because the agentsAt() views are kept sorted.
    cell.next = dst.head;
    cell.prev = kNoAgent;
    if (dst.head != kNoAgent) agents_[dst.head].prev = a;
    dst.head = a;
    --src.count;
    ++dst.count;
    logOp(from, a | kLogRemove);
    logOp(to, a);

    cell.pos = to;
    cell.pin = graph_->reversePort(from, p);
    ++totalMoves_;
  }

  void logOp(NodeId v, AgentIx entry) {
    NodeCell& node = nodes_[v];
    if (node.viewState == kViewRebuild) return;  // log already abandoned
    std::vector<AgentIx>& log = log_[v];
    if (log.size() >= kMaxPendingOps) {
      log.clear();
      node.viewState = kViewRebuild;
      return;
    }
    log.push_back(entry);
    node.viewState = kViewPendingLog;
  }

  const Graph* graph_;
  std::vector<AgentCell> agents_;
  std::vector<AgentId> ids_;
  mutable std::vector<NodeCell> nodes_;  // viewState flips on (const) queries
  // Lazily-repaired sorted views of the occupancy lists plus the per-node
  // pending-op logs (chronological).
  mutable std::vector<std::vector<AgentIx>> view_;
  mutable std::vector<std::vector<AgentIx>> log_;
  std::uint64_t totalMoves_ = 0;
  /// Per-node spinlocks for the parallel commit path, allocated lazily on
  /// the first parallel batch (kept outside NodeCell so cells stay small
  /// and copyable; serial runs never touch them).
  std::unique_ptr<std::atomic_flag[]> nodeLocks_;
};

}  // namespace disp
