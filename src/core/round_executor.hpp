#pragma once
// Fork/join worker pool for intra-run parallelism (DESIGN.md §9).
//
// One RoundExecutor serves one engine: run() hands the same callable to
// every lane — lane 0 executes on the calling thread, the rest on
// persistent workers — and returns once all lanes finish.  Dispatch is a
// generation-stamped handshake: workers spin briefly on the generation
// counter before parking on a condition variable, so the ~10^5 dispatches
// of a large SYNC run cost little when rounds are dense and park cleanly
// when they are not.
//
// The executor imposes no ordering of its own.  Callers keep results
// deterministic by partitioning work into contiguous per-lane chunks (see
// chunk()) and merging per-lane buffers in lane order — that is how the
// round engine keeps parallel runs byte-identical to serial ones.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace disp {

class RoundExecutor {
 public:
  /// `lanes` = total parallel lanes including the caller's (clamped to
  /// >= 1); lanes - 1 worker threads start immediately and live until
  /// destruction.
  explicit RoundExecutor(unsigned lanes);
  ~RoundExecutor();

  RoundExecutor(const RoundExecutor&) = delete;
  RoundExecutor& operator=(const RoundExecutor&) = delete;

  [[nodiscard]] unsigned lanes() const noexcept { return lanes_; }

  /// Runs job(lane) for every lane in [0, lanes()); lane 0 runs on the
  /// caller.  Blocks until every lane finished.  The first exception (by
  /// completion order) is rethrown on the caller after the join, so the
  /// pool is always quiescent when this returns.  Not reentrant.
  void run(const std::function<void(unsigned)>& job);

  /// [lo, hi) chunk of `jobs` items owned by `lane` when the items are
  /// split into `lanes` contiguous chunks (remainder spread over the first
  /// lanes; concatenating chunks in lane order restores item order).
  [[nodiscard]] static std::pair<std::size_t, std::size_t> chunk(std::size_t jobs,
                                                                 unsigned lanes,
                                                                 unsigned lane);

 private:
  void workerLoop(unsigned lane);

  unsigned lanes_;
  std::vector<std::thread> workers_;
  const std::function<void(unsigned)>* job_ = nullptr;
  std::atomic<std::uint64_t> generation_{0};
  std::atomic<std::uint32_t> pending_{0};  ///< worker lanes still running
  std::atomic<bool> stop_{false};
  std::mutex mutex_;  ///< guards parking, generation bumps and firstError_
  std::condition_variable wake_;
  std::exception_ptr firstError_;
};

}  // namespace disp
