#pragma once
// SYNC model: lock-step rounds (the paper's §2 "Time cycle" under full
// synchrony).  Every round, every agent performs one CCM cycle; moves are
// staged during the round and commit simultaneously at its end, so meetings
// are co-locations at commit points.
//
// Protocol code runs in fibers (see fiber.hpp): a fiber stages moves for
// the agents it controls and `co_await engine.round()`s to let time pass.
// Several fibers may coexist (general initial configurations run one DFS
// fiber per start node).  Round hooks run every round before commit and are
// used by free-running subsystems (oscillating settlers).

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "core/faults.hpp"
#include "core/fiber.hpp"
#include "core/memory.hpp"
#include "core/round_executor.hpp"
#include "core/trace.hpp"
#include "core/world.hpp"
#include "graph/graph.hpp"

namespace disp {

class SyncEngine {
 public:
  SyncEngine(const Graph& g, std::vector<NodeId> startPositions,
             std::vector<AgentId> ids);

  // --- world queries (valid between rounds) ---
  [[nodiscard]] const Graph& graph() const noexcept { return world_.graph(); }
  [[nodiscard]] std::uint32_t agentCount() const noexcept { return world_.agentCount(); }
  [[nodiscard]] AgentId idOf(AgentIx a) const { return world_.idOf(a); }
  [[nodiscard]] NodeId positionOf(AgentIx a) const { return world_.positionOf(a); }
  [[nodiscard]] Port pinOf(AgentIx a) const { return world_.pinOf(a); }
  [[nodiscard]] const std::vector<AgentIx>& agentsAt(NodeId v) const {
    return world_.agentsAt(v);
  }
  /// O(1) co-location count (agentsAt(v).size() without materializing).
  [[nodiscard]] std::uint32_t countAt(NodeId v) const { return world_.countAt(v); }
  [[nodiscard]] std::uint64_t round() const noexcept { return round_; }
  [[nodiscard]] std::uint64_t totalMoves() const noexcept { return world_.totalMoves(); }
  [[nodiscard]] MemoryLedger& memory() noexcept { return memory_; }

  // --- observability (core/trace.hpp) ---
  /// Installs the observer; call before run().  Snapshots fire every
  /// observer.sampleEvery committed rounds.
  void installObserver(EngineObserver observer);
  /// True iff an onEvent hook is installed — protocols may use this to
  /// skip building event payloads on the zero-observer path.
  [[nodiscard]] bool tracing() const noexcept { return trace_.tracing(); }
  /// True iff stopWhen truncated the run before the protocol finished.
  [[nodiscard]] bool stopRequested() const noexcept { return trace_.stopRequested(); }
  /// Settled-agent count per the protocol's traceSettle/traceUnsettle
  /// calls (maintained with or without an observer).
  [[nodiscard]] std::uint32_t settledCount() const noexcept {
    return trace_.settledCount();
  }

  /// Protocol-side trace taps.  traceSettle/traceUnsettle also maintain
  /// the settled count surfaced in snapshots; traceEvent is for the
  /// remaining kinds (Meeting/Subsume/Freeze/OscillationDuty).  All of
  /// them stamp the event with the current round.
  void traceSettle(AgentIx a, std::uint32_t label = kNoTraceLabel) {
    trace_.settle(round_, a, world_.positionOf(a), label);
  }
  void traceUnsettle(AgentIx a, std::uint32_t oldLabel = kNoTraceLabel,
                     std::uint32_t byLabel = kNoTraceLabel) {
    trace_.unsettle(round_, a, world_.positionOf(a), oldLabel, byLabel);
  }
  void traceEvent(TraceEventKind kind, AgentIx agent, NodeId node, std::uint32_t a,
                  std::uint32_t b) {
    trace_.emit({kind, round_, agent, node, a, b});
  }

  // --- staging (fibers and hooks) ---
  /// Stages a move for this round; at most one per agent per round.
  void stageMove(AgentIx a, Port p);

  /// Awaitable: suspend the calling fiber until the next round boundary.
  [[nodiscard]] StepAwait nextRound();

  // --- intra-run parallelism (DESIGN.md §9) ---
  /// Worker lanes for round execution: 1 = serial (default, no pool), 0 =
  /// hardware concurrency, N = exactly N lanes.  Call before run().  Facts,
  /// traces and snapshots are byte-identical for every value: parallel
  /// staging merges per-lane buffers in lane order through the regular
  /// stageMove/trace paths, and the parallel commit is order-independent
  /// within a round (each agent moves at most once).
  void setRunThreads(unsigned threads);
  /// Lanes available to stageParallel (1 = serial).
  [[nodiscard]] unsigned stagingLanes() const noexcept {
    return executor_ ? executor_->lanes() : 1;
  }

  /// Per-lane staging buffer for stageParallel(): a worker lane records
  /// moves and trace events here; the engine replays the buffers in lane
  /// order, so the merged result is byte-identical to staging the same
  /// sequence serially.
  class LaneStager {
   public:
    void stageMove(AgentIx a, Port p) { moves_.emplace_back(a, p); }
    /// Buffered equivalent of SyncEngine::traceEvent (round stamped at the
    /// merge; no-op when the engine isn't tracing, like TraceHost::emit).
    void traceEvent(TraceEventKind kind, AgentIx agent, NodeId node, std::uint32_t a,
                    std::uint32_t b) {
      if (tracing_) events_.push_back({kind, 0, agent, node, a, b});
    }

   private:
    friend class SyncEngine;
    std::vector<std::pair<AgentIx, Port>> moves_;
    std::vector<TraceEvent> events_;
    bool tracing_ = false;
  };

  /// Runs fn(lane, stager) on every lane (lane 0 = caller) and merges the
  /// lane buffers in lane order.  With one lane, runs fn inline.  fn must
  /// treat the world as immutable (positions/pins/occupancy only change at
  /// commit) and write nothing but its own stager.  Intended for round
  /// hooks over independent per-agent work (oscillator staging); fibers
  /// are never parallelized — they share protocol state by design.
  void stageParallel(const std::function<void(unsigned, LaneStager&)>& fn);

  // --- fault injection (core/faults.hpp, DESIGN.md §11) ---
  /// Installs the per-run fault injector (non-owning; must outlive run()).
  /// Call before run().  With an injector installed:
  ///  * crashed agents' staged moves are dropped at the staging boundary,
  ///  * staged ports invalid for the agent's *actual* position (protocol
  ///    belief desynced by an earlier vetoed move) become failed attempts
  ///    instead of errors,
  ///  * commits run serially and veto moves through churned-down edges,
  ///  * hitting the round limit reports limitHit() instead of throwing.
  void installFaults(FaultInjector* faults) {
    DISP_CHECK(!running_, "installFaults() during run()");
    faults_ = faults;
  }
  /// True iff a fault-mode run ended at the round limit (verdict, not bug).
  [[nodiscard]] bool limitHit() const noexcept { return limitHit_; }

  // --- orchestration ---
  void addFiber(Task task);
  void addRoundHook(std::function<void()> hook) { hooks_.push_back(std::move(hook)); }

  /// Runs rounds until every fiber completes.  Throws if a fiber threw, or
  /// if `maxRounds` elapse first (deadlock guard) — unless a fault injector
  /// is installed, in which case the limit becomes a reported verdict.
  void run(std::uint64_t maxRounds);

  [[nodiscard]] std::vector<NodeId> positionsSnapshot() const;

 private:
  struct FiberState {
    Task task;
    ResumeSlot slot;
    bool started = false;
  };

  void commitRound();

  World world_;
  MemoryLedger memory_;
  std::uint64_t round_ = 0;
  std::vector<std::pair<AgentIx, Port>> staged_;
  /// Round-stamp double-stage detection: the round (plus one, so zero means
  /// never) in which each agent last staged — no per-round flag reset pass.
  std::vector<std::uint64_t> stagedStamp_;
  std::vector<std::unique_ptr<FiberState>> fibers_;
  /// Unfinished fibers in insertion order; run() scans and compacts this
  /// instead of re-walking every fiber ever added.
  std::vector<FiberState*> live_;
  std::vector<std::function<void()>> hooks_;
  ResumeSlot* currentSlot_ = nullptr;
  bool running_ = false;  ///< guards addFiber() against mid-run additions
  TraceHost trace_;       ///< observability (inert without installObserver)
  FaultInjector* faults_ = nullptr;  ///< fault mode (inert when null)
  bool limitHit_ = false;            ///< fault-mode limit verdict
  /// Worker pool for stageParallel / parallel commit; null when serial.
  std::unique_ptr<RoundExecutor> executor_;
  std::vector<LaneStager> laneStagers_;
};

/// Convenience subtask: let `n` rounds pass.
Task skipRounds(SyncEngine& engine, std::uint32_t n);

}  // namespace disp
