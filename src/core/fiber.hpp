#pragma once
// Cooperative coroutine tasks for protocol orchestration.
//
// Distributed protocols are naturally sequential per participant ("move,
// wait two rounds, check who you met, move back"), but a simulation must
// interleave many participants.  Task is a minimal nestable coroutine:
// a protocol is written as straight-line code that `co_await`s time
// (rounds in SYNC, activations in ASYNC); engines resume the suspended
// leaf once per time step.
//
//   Task probe(Ctx& c) { ...; co_await c.round(); ...; }
//   Task dfs(Ctx& c)   { ...; co_await probe(c); ... }   // nesting
//
// Tasks start suspended; engines own the root handles.  Exceptions
// propagate: nested tasks rethrow into their parent at resumption; root
// task exceptions are rethrown by the engine's run loop.

#include <coroutine>
#include <cstddef>
#include <cstdlib>
#include <exception>
#include <new>
#include <utility>

namespace disp {

namespace detail {

/// Thread-local size-bucketed free list for coroutine frames.  Protocols
/// allocate one frame per nested co_await (probes, side trips, group moves
/// — tens of thousands per run), so frame recycling takes malloc/free off
/// the simulator hot path.  Thread-local keeps the exp/ BatchRunner's
/// concurrent engines allocator-contention-free.
class FramePool {
 public:
  static constexpr std::size_t kGranularity = 64;
  static constexpr std::size_t kBuckets = 32;  // frames up to 2 KiB pooled

  [[nodiscard]] static void* allocate(std::size_t bytes) {
    const std::size_t bucket = (bytes + kGranularity - 1) / kGranularity;
    if (bucket >= kBuckets) return ::operator new(bytes);
    FreeNode*& head = lists_.bucket[bucket];
    if (head != nullptr) {
      return std::exchange(head, head->next);
    }
    return ::operator new(bucket * kGranularity);
  }

  static void release(void* p, std::size_t bytes) noexcept {
    const std::size_t bucket = (bytes + kGranularity - 1) / kGranularity;
    if (bucket >= kBuckets) {
      ::operator delete(p);
      return;
    }
    auto* node = static_cast<FreeNode*>(p);
    node->next = std::exchange(lists_.bucket[bucket], node);
  }

 private:
  struct FreeNode {
    FreeNode* next;
  };
  /// Recycled frames are handed back to the system at thread exit.
  struct FreeLists {
    FreeNode* bucket[kBuckets] = {};
    ~FreeLists() {
      for (FreeNode* head : bucket) {
        while (head != nullptr) {
          ::operator delete(std::exchange(head, head->next));
        }
      }
    }
  };
  static thread_local FreeLists lists_;
};

}  // namespace detail

class Task {
 public:
  struct promise_type {
    std::coroutine_handle<> continuation;  // parent frame, resumed on completion
    std::exception_ptr exception;

    void* operator new(std::size_t bytes) { return detail::FramePool::allocate(bytes); }
    void operator delete(void* p, std::size_t bytes) noexcept {
      detail::FramePool::release(p, bytes);
    }

    Task get_return_object() noexcept {
      return Task(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    std::suspend_always initial_suspend() noexcept { return {}; }

    struct FinalAwaiter {
      bool await_ready() noexcept { return false; }
      std::coroutine_handle<> await_suspend(
          std::coroutine_handle<promise_type> h) noexcept {
        // Symmetric transfer back into the awaiting parent, if any.
        const auto cont = h.promise().continuation;
        return cont ? cont : std::noop_coroutine();
      }
      void await_resume() noexcept {}
    };
    FinalAwaiter final_suspend() noexcept { return {}; }

    void return_void() noexcept {}
    void unhandled_exception() noexcept { exception = std::current_exception(); }
  };

  Task() noexcept = default;
  explicit Task(std::coroutine_handle<promise_type> h) noexcept : handle_(h) {}
  Task(Task&& other) noexcept : handle_(std::exchange(other.handle_, nullptr)) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      destroy();
      handle_ = std::exchange(other.handle_, nullptr);
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { destroy(); }

  [[nodiscard]] bool valid() const noexcept { return handle_ != nullptr; }
  [[nodiscard]] bool done() const noexcept { return !handle_ || handle_.done(); }

  /// Engine-side: the root handle to kick off / resume.
  [[nodiscard]] std::coroutine_handle<> rootHandle() const noexcept { return handle_; }

  /// Rethrows an exception that escaped the (finished) task, if any.
  void rethrowIfFailed() const {
    if (handle_ && handle_.done() && handle_.promise().exception) {
      std::rethrow_exception(handle_.promise().exception);
    }
  }

  // --- awaitable interface: `co_await subtask` runs it to completion ---
  [[nodiscard]] bool await_ready() const noexcept { return done(); }
  std::coroutine_handle<> await_suspend(std::coroutine_handle<> parent) noexcept {
    handle_.promise().continuation = parent;
    return handle_;  // symmetric transfer into the child
  }
  void await_resume() const {
    if (handle_ && handle_.promise().exception) {
      std::rethrow_exception(handle_.promise().exception);
    }
  }

 private:
  void destroy() noexcept {
    if (handle_) {
      handle_.destroy();
      handle_ = nullptr;
    }
  }
  std::coroutine_handle<promise_type> handle_;
};

/// Where a suspended fiber parks the handle an engine must resume at the
/// next time step.  Engines expose one slot per fiber; the time-step
/// awaiter writes the current leaf handle into it.
struct ResumeSlot {
  std::coroutine_handle<> pending;

  [[nodiscard]] bool armed() const noexcept { return pending != nullptr; }
  std::coroutine_handle<> take() noexcept { return std::exchange(pending, nullptr); }
};

/// Awaitable that parks the current coroutine in `slot` until the engine's
/// next time step.
struct StepAwait {
  ResumeSlot* slot;
  bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<> h) noexcept { slot->pending = h; }
  void await_resume() const noexcept {}
};

}  // namespace disp
