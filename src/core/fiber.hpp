#pragma once
// Cooperative coroutine tasks for protocol orchestration.
//
// Distributed protocols are naturally sequential per participant ("move,
// wait two rounds, check who you met, move back"), but a simulation must
// interleave many participants.  Task is a minimal nestable coroutine:
// a protocol is written as straight-line code that `co_await`s time
// (rounds in SYNC, activations in ASYNC); engines resume the suspended
// leaf once per time step.
//
//   Task probe(Ctx& c) { ...; co_await c.round(); ...; }
//   Task dfs(Ctx& c)   { ...; co_await probe(c); ... }   // nesting
//
// Tasks start suspended; engines own the root handles.  Exceptions
// propagate: nested tasks rethrow into their parent at resumption; root
// task exceptions are rethrown by the engine's run loop.

#include <coroutine>
#include <exception>
#include <utility>

namespace disp {

class Task {
 public:
  struct promise_type {
    std::coroutine_handle<> continuation;  // parent frame, resumed on completion
    std::exception_ptr exception;

    Task get_return_object() noexcept {
      return Task(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    std::suspend_always initial_suspend() noexcept { return {}; }

    struct FinalAwaiter {
      bool await_ready() noexcept { return false; }
      std::coroutine_handle<> await_suspend(
          std::coroutine_handle<promise_type> h) noexcept {
        // Symmetric transfer back into the awaiting parent, if any.
        const auto cont = h.promise().continuation;
        return cont ? cont : std::noop_coroutine();
      }
      void await_resume() noexcept {}
    };
    FinalAwaiter final_suspend() noexcept { return {}; }

    void return_void() noexcept {}
    void unhandled_exception() noexcept { exception = std::current_exception(); }
  };

  Task() noexcept = default;
  explicit Task(std::coroutine_handle<promise_type> h) noexcept : handle_(h) {}
  Task(Task&& other) noexcept : handle_(std::exchange(other.handle_, nullptr)) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      destroy();
      handle_ = std::exchange(other.handle_, nullptr);
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { destroy(); }

  [[nodiscard]] bool valid() const noexcept { return handle_ != nullptr; }
  [[nodiscard]] bool done() const noexcept { return !handle_ || handle_.done(); }

  /// Engine-side: the root handle to kick off / resume.
  [[nodiscard]] std::coroutine_handle<> rootHandle() const noexcept { return handle_; }

  /// Rethrows an exception that escaped the (finished) task, if any.
  void rethrowIfFailed() const {
    if (handle_ && handle_.done() && handle_.promise().exception) {
      std::rethrow_exception(handle_.promise().exception);
    }
  }

  // --- awaitable interface: `co_await subtask` runs it to completion ---
  [[nodiscard]] bool await_ready() const noexcept { return done(); }
  std::coroutine_handle<> await_suspend(std::coroutine_handle<> parent) noexcept {
    handle_.promise().continuation = parent;
    return handle_;  // symmetric transfer into the child
  }
  void await_resume() const {
    if (handle_ && handle_.promise().exception) {
      std::rethrow_exception(handle_.promise().exception);
    }
  }

 private:
  void destroy() noexcept {
    if (handle_) {
      handle_.destroy();
      handle_ = nullptr;
    }
  }
  std::coroutine_handle<promise_type> handle_;
};

/// Where a suspended fiber parks the handle an engine must resume at the
/// next time step.  Engines expose one slot per fiber; the time-step
/// awaiter writes the current leaf handle into it.
struct ResumeSlot {
  std::coroutine_handle<> pending;

  [[nodiscard]] bool armed() const noexcept { return pending != nullptr; }
  std::coroutine_handle<> take() noexcept { return std::exchange(pending, nullptr); }
};

/// Awaitable that parks the current coroutine in `slot` until the engine's
/// next time step.
struct StepAwait {
  ResumeSlot* slot;
  bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<> h) noexcept { slot->pending = h; }
  void await_resume() const noexcept {}
};

}  // namespace disp
