#pragma once
// Fault injection as a first-class scenario axis (DESIGN.md §11).
//
// FaultSpec is the parsed, printable fault-load grammar — the third spec
// axis next to GraphSpec and PlacementSpec:
//
//   none                          failure-free (the default; zero overhead)
//   crash:rate=R                  each agent independently crash-stops with
//                                 probability R at a uniform time in the
//                                 crash window (never acts again)
//   crash:rate=R,restart=T        ... and restarts T time units later
//                                 (crash-restart: its program resumes where
//                                 it stopped, its position unchanged)
//   crash:rate=R,window=W         explicit crash window (default ~2k)
//   churn:edges=E,every=T         edge churn: every T time units a fresh
//                                 set of E edges goes down (the previous
//                                 set comes back up); after `count` events
//                                 (default 8) all edges are restored, so
//                                 the final graph equals the input graph
//   churn:edges=E,every=T,count=N explicit churn-event count
//   silent:count=C                C byzantine-silent agents: physically
//                                 present (they occupy their start node and
//                                 are seen by co-located agents) but never
//                                 execute a step, from t = 0
//
// Times are "rounds-equivalent": in the SYNC model one unit is one round;
// in the ASYNC model the injector scales every time parameter by k, so one
// unit is k activations — roughly one scheduler pass.  parse(toString())
// round-trips; parameters print in canonical sorted order.
//
// FaultInjector materializes one seed-deterministic schedule per run (all
// randomness drawn up front from the run seed — independent of lane count,
// scheduler state and observer presence) and answers the engines' boundary
// queries: who is crashed, which edges are down, and — for the
// self-stabilization verdict — whether the configuration re-dispersed
// after the last injected fault and stayed dispersed to run end.
//
// Determinism contract: the schedule is a pure function of (spec, graph,
// k, seed, model); the engines consult it only at round/activation
// boundaries through the serial fault paths, so fault runs report
// byte-identical facts at every --run-threads value.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/trace.hpp"
#include "core/world.hpp"
#include "graph/graph.hpp"

namespace disp {

/// A parsed fault-load spec (see file header for the grammar).
class FaultSpec {
 public:
  enum class Kind { None, Crash, Churn, Silent };

  /// Throws std::invalid_argument on an unknown kind, a missing required
  /// parameter, a duplicate, or an out-of-range value.
  [[nodiscard]] static FaultSpec parse(const std::string& text);

  /// Canonical form (parameters in sorted key order, values normalized);
  /// parse(toString()) round-trips.
  [[nodiscard]] std::string toString() const;

  [[nodiscard]] Kind kind() const noexcept { return kind_; }
  [[nodiscard]] bool any() const noexcept { return kind_ != Kind::None; }

  // --- typed parameters (valid for the matching kind) ---
  /// Crash: per-agent crash probability, in (0, 1].
  [[nodiscard]] double rate() const noexcept { return rate_; }
  /// Crash: restart delay in time units; 0 = crash-stop (no restart).
  [[nodiscard]] std::uint64_t restart() const noexcept { return restart_; }
  /// Crash: crash-window length in time units; 0 = auto (2k + 16).
  [[nodiscard]] std::uint64_t window() const noexcept { return window_; }
  /// Churn: edges taken down per churn event.
  [[nodiscard]] std::uint32_t edges() const noexcept { return edges_; }
  /// Churn: cadence between churn events, in time units.
  [[nodiscard]] std::uint64_t every() const noexcept { return every_; }
  /// Churn: total churn events (the last one restores every edge).
  /// Silent: number of byzantine-silent agents.
  [[nodiscard]] std::uint32_t count() const noexcept { return count_; }

  [[nodiscard]] bool operator==(const FaultSpec&) const = default;

 private:
  Kind kind_ = Kind::None;
  std::map<std::string, std::string> params_;  ///< as given, normalized
  double rate_ = 0.0;
  std::uint64_t restart_ = 0;
  std::uint64_t window_ = 0;
  std::uint32_t edges_ = 0;
  std::uint64_t every_ = 0;
  std::uint32_t count_ = 0;
};

/// One materialized fault-schedule entry (exposed for determinism tests).
struct FaultEvent {
  enum class Type : std::uint8_t { Silent, Crash, Restart, ChurnSet };
  Type type = Type::Crash;
  std::uint64_t time = 0;       ///< rounds (SYNC) / activations (ASYNC)
  AgentIx agent = kNoAgent;     ///< Silent / Crash / Restart
  std::uint32_t churnIndex = 0; ///< ChurnSet: which down-set takes effect

  [[nodiscard]] bool operator==(const FaultEvent&) const = default;
};

/// Per-run fault machinery: the materialized schedule plus the engines'
/// boundary queries and the self-stabilization bookkeeping.  Non-owning
/// references only; one injector per run, installed on the engine before
/// run() (algo/runner.cpp owns the lifecycle).
class FaultInjector {
 public:
  /// Materializes the full schedule up front.  `async` selects the time
  /// scale (ASYNC time parameters are multiplied by k so spec units stay
  /// rounds-equivalent).  Seed-deterministic: same inputs, same schedule.
  FaultInjector(const FaultSpec& spec, const Graph& g, std::uint32_t k,
                std::uint64_t seed, bool async);

  // --- engine consultation (boundary calls) ---
  /// Applies every scheduled event with time <= now, emitting the fault
  /// trace events (fault_crash/fault_restart/fault_edge/fault_silent)
  /// stamped `now` through `trace`.
  void advanceTo(std::uint64_t now, const World& world, TraceHost& trace);
  /// True while agent `a` is crashed (or byzantine-silent): its staged
  /// moves are dropped (SYNC) / its fiber is not resumed (ASYNC).
  [[nodiscard]] bool crashed(AgentIx a) const { return crashed_[a] != 0; }
  /// True iff any edge is currently down (guards the per-move edgeDown
  /// lookup so churn-free runs skip it entirely).
  [[nodiscard]] bool edgeFaultsActive() const noexcept { return !down_.empty(); }
  /// True iff the (undirected) edge {u, v} is currently down.
  [[nodiscard]] bool edgeDown(NodeId u, NodeId v) const;

  // --- self-stabilization bookkeeping ---
  /// Seeds the excess-collision counter from the starting configuration;
  /// call once at run start, before any move.
  void initConfig(const World& world);
  /// Records one applied move given the *pre-move* occupant counts of its
  /// endpoints (O(1) incremental excess maintenance; the engines call this
  /// right before World::applyMove/applyMoveStaged).
  void noteMove(std::uint32_t fromCountBefore, std::uint32_t toCountBefore) {
    if (fromCountBefore >= 2) --excess_;
    if (toCountBefore >= 1) ++excess_;
  }
  /// Boundary check: extends or resets the "continuously dispersed since"
  /// watermark.  Call after every committed round / activation.
  void noteConfig(std::uint64_t now) {
    if (excess_ != 0) {
      dispersedSince_ = kNever;
    } else if (dispersedSince_ == kNever) {
      dispersedSince_ = now;
    }
  }

  // --- verdict (valid after the run) ---
  /// True iff the configuration is dispersed at run end and stayed
  /// dispersed continuously from recoveredAt() on — i.e. the protocol
  /// settled and remained stable after the last injected fault.
  [[nodiscard]] bool recovered() const noexcept { return dispersedSince_ != kNever; }
  /// Earliest time from which the configuration was continuously dispersed
  /// through run end, clamped to the last applied fault (0 if !recovered()).
  [[nodiscard]] std::uint64_t recoveredAt() const noexcept {
    if (!recovered()) return 0;
    return dispersedSince_ > lastAppliedTime_ ? dispersedSince_ : lastAppliedTime_;
  }
  /// Time of the last fault event actually applied (0 if none fired).
  [[nodiscard]] std::uint64_t lastFaultTime() const noexcept {
    return lastAppliedTime_;
  }
  /// Number of schedule entries applied so far.
  [[nodiscard]] std::uint64_t applied() const noexcept { return applied_; }

  /// The full materialized schedule, time-sorted (determinism tests).
  [[nodiscard]] const std::vector<FaultEvent>& schedule() const noexcept {
    return schedule_;
  }
  /// The down-edge set of churn event i, as canonical (min<<32|max) keys.
  [[nodiscard]] const std::vector<std::uint64_t>& churnSet(std::uint32_t i) const {
    return downSets_.at(i);
  }

 private:
  static constexpr std::uint64_t kNever = ~std::uint64_t{0};

  std::vector<FaultEvent> schedule_;  ///< sorted by (time, type, agent)
  std::size_t cursor_ = 0;            ///< first unapplied schedule entry
  std::vector<std::uint8_t> crashed_; ///< per agent; restarts clear it
  /// Per churn event: the sorted canonical edge keys that go down.
  std::vector<std::vector<std::uint64_t>> downSets_;
  std::vector<std::uint64_t> down_;   ///< current down set (sorted keys)
  std::uint64_t lastAppliedTime_ = 0;
  std::uint64_t applied_ = 0;
  std::int64_t excess_ = 0;           ///< sum over nodes of max(0, count-1)
  std::uint64_t dispersedSince_ = kNever;
};

}  // namespace disp
