#include "exp/sweep.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "algo/placement.hpp"
#include "algo/registry.hpp"
#include "core/faults.hpp"
#include "util/check.hpp"

namespace disp::exp {

std::vector<std::uint32_t> kSweep(std::uint32_t lo, std::uint32_t hi) {
  std::vector<std::uint32_t> ks;
  const double f = scale();
  for (std::uint32_t e = lo; e <= hi; ++e) {
    const auto k = static_cast<std::uint32_t>(double(1u << e) * f);
    if (k >= 8) ks.push_back(k);
  }
  return ks;
}

std::string clustersPlacement(std::uint32_t clusters) {
  return clusters == 1 ? "rooted" : "clusters:l=" + std::to_string(clusters);
}

RunRecord runCell(const CaseSpec& c) {
  const auto n = static_cast<std::uint32_t>(double(c.k) * c.nOverK);
  const Graph g = GraphSpec::parse(c.graph).instantiate(n, c.seed, c.labeling);
  return runCell(g, c);
}

RunRecord runCell(const Graph& g, const CaseSpec& c) {
  const Placement p = PlacementSpec::parse(c.placement).place(g, c.k, c.seed);
  RunOptions opts;
  opts.algorithm = c.algorithm;
  opts.scheduler = c.scheduler;
  opts.seed = c.seed;
  opts.limit = c.limit;
  opts.runThreads = c.runThreads;
  opts.faults = c.faults;
  if (c.observe) c.observe(opts);
  RunRecord out;
  out.run = runSession(g, p, opts);
  out.n = g.nodeCount();
  out.maxDegree = g.maxDegree();
  out.edges = g.edgeCount();
  return out;
}

std::vector<std::uint32_t> SweepSpec::scaledKs() const {
  if (scale == 1.0) return ks;
  DISP_REQUIRE(scale > 0.0, "sweep '" + name + "' has a non-positive scale");
  std::vector<std::uint32_t> out;
  out.reserve(ks.size());
  for (const std::uint32_t k : ks) {
    const auto scaled =
        std::max<std::uint32_t>(8, static_cast<std::uint32_t>(double(k) * scale));
    // Clamping can collapse neighbors; keep first occurrence, spec order.
    if (std::find(out.begin(), out.end(), scaled) == out.end()) out.push_back(scaled);
  }
  return out;
}

std::string CellKey::describe() const {
  std::ostringstream os;
  const AlgorithmDef* def = findAlgorithm(algorithm);
  os << graph << " k=" << k << " place=" << placement << " sched=" << scheduler
     << " algo=" << (def != nullptr ? def->traits.display : algorithm);
  if (faults != "none") os << " faults=" << faults;
  return os.str();
}

bool Cell::allDispersed() const {
  for (const RunRecord& r : replicates) {
    if (!r.run.dispersed) return false;
  }
  return !replicates.empty();
}

std::uint64_t Cell::maxMemoryBits() const {
  std::uint64_t bits = 0;
  for (const RunRecord& r : replicates) {
    bits = std::max(bits, r.run.maxMemoryBits);
  }
  return bits;
}

const Cell& SweepResult::at(const CellKey& key) const {
  CellKey canon = key;
  canon.graph = GraphSpec::parse(key.graph).toString();
  canon.placement = PlacementSpec::parse(key.placement).toString();
  canon.faults = FaultSpec::parse(key.faults).toString();
  for (const Cell& c : cells) {
    if (c.key == canon) return c;
  }
  throw std::out_of_range("sweep '" + spec.name + "' has no cell " + canon.describe());
}

std::vector<CellKey> enumerateCells(const SweepSpec& spec) {
  DISP_REQUIRE(!spec.graphs.empty() && !spec.ks.empty() && !spec.algorithms.empty() &&
                   !spec.placements.empty() && !spec.schedulers.empty() &&
                   !spec.faults.empty() && !spec.seeds.empty(),
               "sweep '" + spec.name + "' has an empty axis");
  // A typo'd algorithm key or spec string would otherwise degrade every one
  // of its cells into errored replicates; validating the axes up front
  // fails the sweep loudly.  Spec strings are stored canonically so any
  // equivalent spelling addresses the same cell.
  for (const std::string& algorithm : spec.algorithms) (void)algorithmDef(algorithm);
  std::vector<std::string> graphs;
  graphs.reserve(spec.graphs.size());
  for (const std::string& g : spec.graphs) {
    graphs.push_back(GraphSpec::parse(g).toString());
  }
  std::vector<std::string> placements;
  placements.reserve(spec.placements.size());
  for (const std::string& p : spec.placements) {
    placements.push_back(PlacementSpec::parse(p).toString());
  }
  std::vector<std::string> faults;
  faults.reserve(spec.faults.size());
  for (const std::string& f : spec.faults) {
    faults.push_back(FaultSpec::parse(f).toString());
  }
  const std::vector<std::uint32_t> ks = spec.scaledKs();
  std::vector<CellKey> keys;
  keys.reserve(spec.cellCount());
  for (const std::string& graph : graphs) {
    for (const std::uint32_t k : ks) {
      for (const std::string& placement : placements) {
        for (const std::string& scheduler : spec.schedulers) {
          for (const std::string& algorithm : spec.algorithms) {
            for (const std::string& fault : faults) {
              keys.push_back({graph, k, placement, scheduler, algorithm, fault});
            }
          }
        }
      }
    }
  }
  return keys;
}

double ci95(const Summary& s) {
  if (s.count < 2) return 0.0;
  return 1.96 * s.stddev / std::sqrt(double(s.count));
}

std::string growthDiagnosisLine(const std::string& label, const std::vector<double>& ks,
                                const std::vector<double>& times) {
  const auto d = diagnoseGrowth(ks, times);
  std::ostringstream os;
  os << "fit[" << label << "]: time ~ k^" << fmt(d.power.exponent, 2)
     << " (r2=" << fmt(d.power.r2, 3) << "), time/k: " << fmt(d.ratioLinearSmall, 1)
     << " -> " << fmt(d.ratioLinearLarge, 1)
     << ", time/(k log k): " << fmt(d.ratioKLogKSmall, 2) << " -> "
     << fmt(d.ratioKLogKLarge, 2);
  return os.str();
}

}  // namespace disp::exp
