// Table 1 sweeps (E1–E5) as declarative SweepSpecs.  Table layouts and
// single-seed cell values are byte-identical to the historical hand-rolled
// binaries; with --seeds replicates, time cells become per-cell means.
#include <cmath>

#include "algo/placement.hpp"
#include "algo/registry.hpp"
#include "exp/benches.hpp"

namespace disp::exp {

// E1 — Table 1, SYNC rooted rows.
// Measures rounds vs k for the paper's RootedSyncDisp (Theorem 6.1, O(k)),
// the Sudo-style helper-doubling baseline (O(k log k); GeneralSync with
// ℓ=1) and the KS baseline (O(min{m, kΔ})), across graph families.  The
// claim to check: ours has flat rounds/k; Sudo-style has flat
// rounds/(k log k); KS blows up on dense graphs.
void benchTable1SyncRooted(BenchContext& ctx) {
  const std::string name = "table1_sync_rooted";
  ctx.out << "# E1: Table 1 — SYNC rooted (rounds vs k)\n";
  for (const std::string& family :
       ctx.graphsOr({"er", "complete", "star", "path", "randtree"})) {
    SweepSpec spec;
    spec.name = name;
    spec.graphs = {family};
    // complete graphs need n=k to stress KS; other families use n=2k.
    spec.ks = kSweep(5, family == "complete" ? 8 : 9);
    spec.algorithms = {"rooted_sync", "general_sync",
                       "ks_sync"};
    spec.seeds = ctx.seedsOr(3);
    spec.nOverK = family == "complete" ? 1.0 : 2.0;
    const SweepResult res = ctx.runner().run(spec);

    const bool ci = spec.seeds.size() > 1;
    std::vector<std::string> hdr{"k", "n", "m", "Delta"};
    timeHeader(hdr, "RootedSync(ours)", ci);
    timeHeader(hdr, "Sudo-style", ci);
    timeHeader(hdr, "KS-baseline", ci);
    hdr.insert(hdr.end(), {"ours/k", "sudo/(k log k)"});
    Table t(hdr);
    std::vector<double> ks, ours;
    for (const std::uint32_t k : spec.ks) {
      const Cell& a = res.at({family, k, "rooted", "round_robin", "rooted_sync"});
      const Cell& b = res.at({family, k, "rooted", "round_robin", "general_sync"});
      const Cell& c = res.at({family, k, "rooted", "round_robin", "ks_sync"});
      if (!a.ran() || !b.ran() || !c.ran()) continue;  // outside this --shard
      if (!a.allDispersed() || !b.allDispersed() || !c.allDispersed()) {
        ctx.out << "!! undispersed case " << family << " k=" << k << "\n";
        continue;
      }
      const double lg = std::log2(double(k));
      t.row()
          .cell(std::uint64_t{k})
          .cell(std::uint64_t{a.first().n})
          .cell(a.first().edges)
          .cell(std::uint64_t{a.first().maxDegree});
      timeCellCi(t, a, ci);
      timeCellCi(t, b, ci);
      timeCellCi(t, c, ci);
      t.cell(a.meanTime() / k, 1).cell(b.meanTime() / (k * lg), 2);
      ks.push_back(k);
      ours.push_back(a.meanTime());
    }
    emitTable(ctx, name, "family: " + family, t);
    if (ks.size() >= 2) {
      emitNote(ctx, name, "fit",
               growthDiagnosisLine(family + "/RootedSync", ks, ours));
    }
  }
}

// E2 — Table 1, ASYNC rooted rows.
// Epochs vs k for RootedAsyncDisp (Theorem 7.1, O(k log k)) against the KS
// baseline (O(min{m, kΔ})), under several fair adversarial schedulers.
void benchTable1AsyncRooted(BenchContext& ctx) {
  const std::string name = "table1_async_rooted";
  ctx.out << "# E2: Table 1 — ASYNC rooted (epochs vs k)\n";
  for (const std::string& family : ctx.graphsOr({"er", "complete", "star"})) {
    SweepSpec spec;
    spec.name = name;
    spec.graphs = {family};
    spec.ks = kSweep(5, 8);
    spec.algorithms = {"rooted_async", "ks_async"};
    spec.schedulers = {"round_robin", "uniform"};
    spec.seeds = ctx.seedsOr(5);
    spec.nOverK = family == "complete" ? 1.0 : 2.0;
    const SweepResult res = ctx.runner().run(spec);

    const bool ci = spec.seeds.size() > 1;
    std::vector<std::string> hdr{"k", "Delta", "sched"};
    timeHeader(hdr, "RootedAsync(ours)", ci);
    timeHeader(hdr, "KS-async", ci);
    hdr.insert(hdr.end(), {"ours/(k log k)", "ks/min(m,kDelta)"});
    Table t(hdr);
    std::vector<double> ks, ours;
    for (const std::uint32_t k : spec.ks) {
      for (const std::string& sched : spec.schedulers) {
        const Cell& a = res.at({family, k, "rooted", sched, "rooted_async"});
        const Cell& b = res.at({family, k, "rooted", sched, "ks_async"});
        if (!a.ran() || !b.ran()) continue;  // outside this --shard
        if (!a.allDispersed() || !b.allDispersed()) continue;
        const double lg = std::log2(double(k));
        const double ksBound =
            std::min<double>(double(a.first().edges),
                             double(k) * a.first().maxDegree);
        t.row()
            .cell(std::uint64_t{k})
            .cell(std::uint64_t{a.first().maxDegree})
            .cell(sched);
        timeCellCi(t, a, ci);
        timeCellCi(t, b, ci);
        t.cell(a.meanTime() / (k * lg), 2).cell(b.meanTime() / ksBound, 2);
        if (sched == "round_robin") {
          ks.push_back(k);
          ours.push_back(a.meanTime());
        }
      }
    }
    emitTable(ctx, name, "family: " + family, t);
    if (ks.size() >= 2) {
      emitNote(ctx, name, "fit",
               growthDiagnosisLine(family + "/RootedAsync", ks, ours));
    }
  }
}

// E3 — Table 1, SYNC general rows.
// Rounds vs k for the multi-source case (ℓ start nodes) with KS
// subsumption.  The growing phase here is the helper-doubling one (see
// DESIGN.md §4: the Theorem 8.1 integration of the oscillation machinery
// into the general case is the documented gap), so the expected shape is
// the [36]-level O(k log k)-ish curve, still far below the KS baseline.
void benchTable1SyncGeneral(BenchContext& ctx) {
  const std::string name = "table1_sync_general";
  ctx.out << "# E3: Table 1 — SYNC general (rounds vs k and l)\n";
  SweepSpec spec;
  spec.name = name;
  spec.graphs = ctx.graphsOr({"er", "grid", "randtree"});
  spec.ks = kSweep(5, 8);
  spec.algorithms = {"general_sync"};
  spec.placements =
      ctx.placementsOr({"clusters:l=2", "clusters:l=4", "clusters:l=8"});
  spec.seeds = ctx.seedsOr(7);
  const SweepResult res = ctx.runner().run(spec);

  const bool ci = spec.seeds.size() > 1;
  std::vector<std::string> hdr{"family", "k", "l"};
  timeHeader(hdr, "rounds", ci);
  hdr.insert(hdr.end(), {"rounds/(k log k)", "dispersed"});
  Table t(hdr);
  for (const std::string& family : spec.graphs) {
    for (const std::uint32_t k : spec.ks) {
      for (const std::string& place : spec.placements) {
        const Cell& r = res.at({family, k, place, "round_robin", "general_sync"});
        if (!r.ran()) continue;  // outside this --shard
        const double lg = std::log2(double(k));
        t.row().cell(family).cell(std::uint64_t{k}).cell(
            PlacementSpec::parse(place).tableLabel());
        timeCellCi(t, r, ci);
        t.cell(r.meanTime() / (k * lg), 2)
            .cell(std::string(r.allDispersed() ? "yes" : "NO"));
      }
    }
  }
  emitTable(ctx, name, "GeneralSync across start-node counts", t);
}

// E4 — Table 1, ASYNC general rows.
//
// Measures GeneralAsyncDisp (Theorem 8.2 = the RootedAsyncDisp growing
// phase composed with KS subsumption, collapse walks and squatting) from
// general initial configurations with ℓ > 1 source nodes, against the
// O(k log k)-epoch claim, across adversarial schedulers.  The ℓ = 1 column
// is kept as the rooted reference point so the general rows can be read as
// a multiplicative overhead over the growing phase alone.
void benchTable1AsyncGeneral(BenchContext& ctx) {
  const std::string name = "table1_async_general";
  ctx.out << "# E4: Table 1 — ASYNC general (GeneralAsyncDisp, Theorem 8.2)\n";
  SweepSpec spec;
  spec.name = name;
  spec.graphs = ctx.graphsOr({"er", "grid"});
  spec.ks = kSweep(5, 8);
  spec.algorithms = {"general_async"};
  spec.placements = ctx.placementsOr({"rooted", "clusters:l=4", "clusters:l=16"});
  spec.schedulers = {"round_robin", "uniform", "weighted"};
  spec.seeds = ctx.seedsOr(9);
  const SweepResult res = ctx.runner().run(spec);

  const bool ci = spec.seeds.size() > 1;
  std::vector<std::string> hdr{"family", "k", "l", "sched"};
  timeHeader(hdr, "epochs", ci);
  hdr.emplace_back("epochs/(k log k)");
  Table t(hdr);
  std::vector<double> ks, es;
  for (const std::string& family : spec.graphs) {
    for (const std::uint32_t k : spec.ks) {
      for (const std::string& place : spec.placements) {
        const std::string l = PlacementSpec::parse(place).tableLabel();
        for (const std::string& sched : spec.schedulers) {
          const Cell& r = res.at({family, k, place, sched, "general_async"});
          if (!r.allDispersed()) continue;
          const double lg = std::log2(double(k));
          t.row()
              .cell(family)
              .cell(std::uint64_t{k})
              .cell(l)
              .cell(sched);
          timeCellCi(t, r, ci);
          t.cell(r.meanTime() / (k * lg), 2);
          if (family == "er" && l == "4" && sched == "round_robin") {
            ks.push_back(k);
            es.push_back(r.meanTime());
          }
        }
      }
    }
  }
  emitTable(ctx, name, "ASYNC general dispersion under schedulers", t);
  if (ks.size() >= 2) {
    emitNote(ctx, name, "fit",
             growthDiagnosisLine("er/GeneralAsync(l=4)", ks, es));
  }
}

// E5 — Table 1 memory column.
// Max persistent bits per agent vs (k, Δ) for every algorithm; the paper
// claims O(log(k+Δ)) for all of them.  The report prints the measured
// high-water mark next to log2(k+Δ): the ratio must stay bounded as k
// doubles.
void benchTable1Memory(BenchContext& ctx) {
  const std::string name = "table1_memory";
  ctx.out << "# E5: Table 1 — memory (max persistent bits/agent)\n";
  Table t({"algo", "family", "k", "Delta", "bits", "log2(k+Delta)", "bits/log"});
  for (const std::string algo : {"rooted_sync", "rooted_async", "general_sync",
                                 "general_async", "ks_sync", "ks_async"}) {
    // GeneralAsync runs from a genuine general configuration (ℓ = 4); the
    // others keep their Table 1 placements (GeneralSync's ℓ = 1 is the
    // Sudo-style baseline row).
    const std::string place = algo == "general_async" ? "clusters:l=4" : "rooted";
    SweepSpec spec;
    spec.name = name;
    spec.graphs = ctx.graphsOr({"er", "star"});
    spec.ks = kSweep(5, 8);
    spec.algorithms = {algo};
    spec.placements = {place};
    spec.seeds = ctx.seedsOr(11);
    const SweepResult res = ctx.runner().run(spec);

    for (const std::string& family : spec.graphs) {
      for (const std::uint32_t k : spec.ks) {
        const Cell& r = res.at({family, k, place, "round_robin", algo});
        if (!r.allDispersed()) continue;
        const double lg = std::log2(double(k) + double(r.first().maxDegree));
        t.row()
            .cell(algorithmDisplayName(algo))
            .cell(family)
            .cell(std::uint64_t{k})
            .cell(std::uint64_t{r.first().maxDegree})
            .cell(r.maxMemoryBits())
            .cell(lg, 1)
            .cell(double(r.maxMemoryBits()) / lg, 1);
      }
    }
  }
  emitTable(ctx, name, "memory vs O(log(k+Delta))", t);
}

}  // namespace disp::exp
