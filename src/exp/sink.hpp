#pragma once
// Result sinks for the experiment driver.
//
// Every bench renders GitHub-markdown tables to a stream (unchanged from
// the historical binaries, byte for byte).  When a JSON-lines sink is
// attached, each printed table row is mirrored as one JSON object whose
// keys are the column headers and whose values are the rendered cell
// strings — exactly the row dictionaries scripts/record_bench_baseline.sh
// has always parsed out of the markdown, so BENCH_table1.json stays
// format-compatible.  Growth-fit lines are mirrored as {"fit": ...}.

#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "exp/batch_runner.hpp"
#include "util/table.hpp"

namespace disp::exp {

/// Writes one JSON object per line; values are emitted as JSON strings.
class JsonlWriter {
 public:
  explicit JsonlWriter(std::ostream& os) : os_(os) {}

  void record(const std::vector<std::pair<std::string, std::string>>& fields);

 private:
  std::ostream& os_;
};

/// Everything a bench body needs: the markdown stream, an optional JSONL
/// mirror, execution options, and an optional replicate-seed override.
struct BenchContext {
  std::ostream& out;
  JsonlWriter* jsonl = nullptr;
  BatchOptions batch;
  /// When non-empty, replaces each bench's historical single seed.
  std::vector<std::uint64_t> seedOverride;

  [[nodiscard]] std::vector<std::uint64_t> seedsOr(std::uint64_t fallback) const {
    return seedOverride.empty() ? std::vector<std::uint64_t>{fallback} : seedOverride;
  }
  [[nodiscard]] BatchRunner runner() const { return BatchRunner(batch); }
};

/// Prints `# title` + the table to ctx.out and mirrors every row to the
/// JSONL sink (tagged with the sweep name and table title).
void emitTable(BenchContext& ctx, const std::string& sweep, const std::string& title,
               const Table& t);

/// Prints a diagnostic line (fit lines, warnings) and mirrors it to JSONL
/// under the given field name.
void emitNote(BenchContext& ctx, const std::string& sweep, const std::string& field,
              const std::string& line);

/// Adds the time cell for an aggregated sweep cell: the exact integer for a
/// single replicate (historical format), the mean otherwise.
void timeCell(Table& t, const Cell& c);

}  // namespace disp::exp
