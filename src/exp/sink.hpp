#pragma once
// Result sinks for the experiment driver.
//
// Every bench renders GitHub-markdown tables to a stream (unchanged from
// the historical binaries, byte for byte).  When a JSON-lines sink is
// attached, each printed table row is mirrored as one JSON object whose
// keys are the column headers and whose values are the rendered cell
// strings — exactly the row dictionaries scripts/record_bench_baseline.sh
// has always parsed out of the markdown, so BENCH_table1.json stays
// format-compatible.  Growth-fit lines are mirrored as {"fit": ...}.

#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "exp/batch_runner.hpp"
#include "util/table.hpp"

namespace disp::exp {

/// Writes one JSON object per line; values are emitted as JSON strings.
class JsonlWriter {
 public:
  explicit JsonlWriter(std::ostream& os) : os_(os) {}

  void record(const std::vector<std::pair<std::string, std::string>>& fields);

 private:
  std::ostream& os_;
};

/// Everything a bench body needs: the markdown stream, an optional JSONL
/// mirror, execution options, and the optional axis overrides (seeds,
/// graph/placement specs, k values) that the --seeds/--graphs/
/// --placements/--ks flags install.
struct BenchContext {
  std::ostream& out;
  JsonlWriter* jsonl = nullptr;
  BatchOptions batch;
  /// When non-empty, replaces each bench's historical single seed.
  std::vector<std::uint64_t> seedOverride{};
  /// When non-empty, replaces a sweep's graph axis (GraphSpec strings).
  std::vector<std::string> graphOverride{};
  /// When non-empty, replaces a sweep's placement axis (PlacementSpec strings).
  std::vector<std::string> placementOverride{};
  /// When non-empty, replaces a sweep's k axis.
  std::vector<std::uint32_t> kOverride{};
  /// When non-empty, replaces a sweep's fault axis (FaultSpec strings).
  std::vector<std::string> faultsOverride{};
  /// Cell-listing mode (disp_bench --list-cells / listBenchCells): bench
  /// bodies must skip work outside BatchRunner — BatchRunner itself returns
  /// after enumeration when BatchOptions::onCellListed is set, but e.g.
  /// scale_real's standalone ingest-timing block must consult this flag.
  bool enumerateOnly = false;

  [[nodiscard]] std::vector<std::uint64_t> seedsOr(std::uint64_t fallback) const {
    return seedOverride.empty() ? std::vector<std::uint64_t>{fallback} : seedOverride;
  }
  [[nodiscard]] std::vector<std::string> graphsOr(
      std::vector<std::string> fallback) const {
    return graphOverride.empty() ? std::move(fallback) : graphOverride;
  }
  [[nodiscard]] std::vector<std::string> placementsOr(
      std::vector<std::string> fallback) const {
    return placementOverride.empty() ? std::move(fallback) : placementOverride;
  }
  [[nodiscard]] std::vector<std::uint32_t> ksOr(
      std::vector<std::uint32_t> fallback) const {
    return kOverride.empty() ? std::move(fallback) : kOverride;
  }
  [[nodiscard]] std::vector<std::string> faultsOr(
      std::vector<std::string> fallback) const {
    return faultsOverride.empty() ? std::move(fallback) : faultsOverride;
  }
  [[nodiscard]] BatchRunner runner() const { return BatchRunner(batch); }
};

/// Prints `# title` + the table to ctx.out and mirrors every row to the
/// JSONL sink (tagged with the sweep name and table title).
void emitTable(BenchContext& ctx, const std::string& sweep, const std::string& title,
               const Table& t);

/// Prints a diagnostic line (fit lines, warnings) and mirrors it to JSONL
/// under the given field name.
void emitNote(BenchContext& ctx, const std::string& sweep, const std::string& field,
              const std::string& line);

/// Adds the time cell for an aggregated sweep cell: the exact integer for a
/// single replicate (historical format), the mean otherwise.
void timeCell(Table& t, const Cell& c);

/// Header helper for replicated sweeps: appends `name` and, when `ci`,
/// a "name ±95" column right after it (single-seed tables stay
/// byte-identical to the historical layout by passing ci = false).
void timeHeader(std::vector<std::string>& header, const std::string& name, bool ci);

/// timeCell plus, when `ci`, the per-cell 95% confidence half-width of the
/// mean time over the non-errored replicates.
void timeCellCi(Table& t, const Cell& c, bool ci);

/// Thread-safe JSON-lines sink for run traces (disp_bench --trace).  Its
/// observe() hook matches BatchOptions::observe: each replicate gets an
/// onEvent stream plus sampled snapshot rows, every line self-describing
/// with the cell key and seed (concurrent replicates interleave by line,
/// never within one).  Schema (all values JSON strings, validated by
/// scripts/check_trace.sh):
///   {"cell", "seed", "event": move|settle|meeting|subsume|collapse|freeze|
///    oscillation_duty|fault_crash|fault_restart|fault_edge|fault_silent,
///    "t", "agent", "node", "a", "b"}
///   {"cell", "seed", "event": "sample", "t", "epochs", "settled", "moves"}
/// "-" stands for no-agent / no-node / no-label fields.
class TraceJsonl {
 public:
  /// Snapshot cadence per run: every `sampleEvery` rounds/activations.
  TraceJsonl(std::ostream& os, std::uint64_t sampleEvery)
      : writer_(os), sampleEvery_(sampleEvery) {}

  /// BatchOptions::observe-compatible hook.
  void observe(const CellKey& key, std::uint64_t seed, RunOptions& opts);

 private:
  std::mutex mutex_;
  JsonlWriter writer_;
  std::uint64_t sampleEvery_;
};

/// Plotting-friendly settled/moves trajectory sink (disp_bench
/// --trajectory): one CSV row per sampled snapshot,
///   cell,seed,t,epochs,settled,moves
/// with the header emitted on construction.  Thread-safe like TraceJsonl;
/// rows from concurrent replicates interleave but each is self-describing.
class TrajectoryCsv {
 public:
  /// Snapshot cadence per run: every `sampleEvery` rounds/activations.
  TrajectoryCsv(std::ostream& os, std::uint64_t sampleEvery);

  /// BatchOptions::observe-compatible hook.
  void observe(const CellKey& key, std::uint64_t seed, RunOptions& opts);

 private:
  std::mutex mutex_;
  std::ostream& os_;
  std::uint64_t sampleEvery_;
};

}  // namespace disp::exp
