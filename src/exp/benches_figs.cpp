// Figure / lemma probes (E6–E10).  These need algorithm-internal stats
// (probe counters, see-off sweeps, cover assignments), so they drive the
// engines directly instead of going through SweepSpec; independent
// configurations still run over the parallelFor pool with preallocated
// result slots, so output is thread-count-independent.
#include <cmath>

#include "algo/async_rooted.hpp"
#include "algo/empty_selection.hpp"
#include "algo/placement.hpp"
#include "algo/sync_rooted.hpp"
#include "core/async_engine.hpp"
#include "core/sync_engine.hpp"
#include "exp/benches.hpp"
#include "graph/generators.hpp"
#include "util/rng.hpp"

namespace disp::exp {

namespace {

RootedTree randomTree(std::uint32_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::int64_t> parent(n);
  parent[0] = -1;
  for (std::uint32_t v = 1; v < n; ++v)
    parent[v] = static_cast<std::int64_t>(rng.below(v));
  return RootedTree::fromParentArray(parent, 0);
}

}  // namespace

// E6 — Figure 1 / Lemma 1.
// Empty_Node_Selection on random trees: the fraction of empty nodes must be
// >= 1/3 for every tree (Lemma 1), with ~1/2 typical (lines).
void benchFig1EmptySelection(BenchContext& ctx) {
  const std::string name = "fig1_empty_selection";
  ctx.out << "# E6: Fig. 1 / Lemma 1 — Empty_Node_Selection\n";
  Table t({"k", "trees", "minEmptyFrac", "meanEmptyFrac", "lemma1 (>=0.333)"});
  for (const std::uint32_t k : kSweep(4, 11)) {
    std::vector<double> fracs;
    bool ok = true;
    for (std::uint64_t seed = 1; seed <= 32; ++seed) {
      const RootedTree tree = randomTree(k, seed * 977 + k);
      const auto sel = emptyNodeSelection(tree);
      validateSelection(tree, sel);  // throws on any lemma violation
      const double frac = double(sel.emptyCount()) / double(k);
      fracs.push_back(frac);
      ok &= sel.emptyCount() * 3 + 2 >= k;
    }
    const Summary s = summarize(fracs);
    t.row()
        .cell(std::uint64_t{k})
        .cell(std::uint64_t{32})
        .cell(s.min, 3)
        .cell(s.mean, 3)
        .cell(std::string(ok ? "holds" : "VIOLATED"));
  }
  emitTable(ctx, name, "empty fraction on random trees", t);
}

// E7 — Figures 2-4 / Lemmas 2-3.
// Cover-assignment statistics on random trees: trip lengths are <= 6
// rounds, children-coverers handle <= 3 nodes, sibling-coverers <= 2,
// and the measured end-to-end algorithm never builds a longer cycle
// (OscillatorSystem asserts this during every RootedSyncDisp run).
void benchFig2Oscillation(BenchContext& ctx) {
  const std::string name = "fig2_oscillation";
  ctx.out << "# E7: Figs. 2-4 / Lemmas 2-3 — oscillation covers\n";
  Table t({"k", "coverers", "childType", "siblingType", "maxCovered", "maxTripRounds"});
  for (const std::uint32_t k : kSweep(4, 11)) {
    std::uint32_t coverers = 0, child = 0, sibling = 0, maxCovered = 0, maxTrip = 0;
    for (std::uint64_t seed = 1; seed <= 16; ++seed) {
      const RootedTree tree = randomTree(k, seed * 31 + k);
      const auto sel = emptyNodeSelection(tree);
      for (std::uint32_t v = 0; v < k; ++v) {
        if (sel.coverType[v] == CoverType::None) continue;
        ++coverers;
        child += sel.coverType[v] == CoverType::Children;
        sibling += sel.coverType[v] == CoverType::Siblings;
        const auto covered = static_cast<std::uint32_t>(sel.covers[v].size());
        maxCovered = std::max(maxCovered, covered);
        maxTrip = std::max(maxTrip, oscillationTripRounds(sel.coverType[v], covered));
      }
    }
    t.row()
        .cell(std::uint64_t{k})
        .cell(std::uint64_t{coverers})
        .cell(std::uint64_t{child})
        .cell(std::uint64_t{sibling})
        .cell(std::uint64_t{maxCovered})
        .cell(std::uint64_t{maxTrip});
  }
  emitTable(ctx, name, "cover statistics (Lemma 2 bound: maxTripRounds <= 6)", t);
}

// E8 — Figure 5 / Lemma 4.
// Sync_Probe is O(1) rounds regardless of node degree: the longest single
// probe during a full RootedSyncDisp run must stay flat while the hub
// degree grows by 16x.
void benchFig5SyncProbe(BenchContext& ctx) {
  const std::string name = "fig5_sync_probe";
  ctx.out << "# E8: Fig. 5 / Lemma 4 — Sync_Probe rounds vs degree\n";
  Table t({"graph", "Delta", "k", "probes", "maxProbeRounds", "avgIter/probe"});
  const auto k = static_cast<std::uint32_t>(64 * scale());
  const std::vector<std::uint32_t> hubs{128, 256, 512, 1024, 2048};
  struct Slot {
    std::uint32_t maxDegree = 0;
    SyncDispStats stats;
  };
  std::vector<Slot> slots(hubs.size());
  parallelFor(ctx.batch.threads, hubs.size(), [&](std::size_t i) {
    const Graph g = makeStar(hubs[i] + 1).build(PortLabeling::RandomPermutation, 7);
    const Placement p = rootedPlacement(g, k, 0, 5);
    SyncEngine engine(g, p.positions, p.ids);
    RootedSyncDispersion algo(engine);
    algo.start();
    engine.run(100000000ULL);
    slots[i] = {g.maxDegree(), algo.stats()};
  });
  for (const Slot& s : slots) {
    t.row()
        .cell("star")
        .cell(std::uint64_t{s.maxDegree})
        .cell(std::uint64_t{k})
        .cell(s.stats.probes)
        .cell(s.stats.maxProbeRounds)
        .cell(double(s.stats.probeIterations) / double(s.stats.probes), 2);
  }
  emitTable(ctx, name, "probe cost is degree-independent (flat column 5)", t);
}

// E9 — Figure 7 / Lemma 5.
// Async_Probe finds a fully unsettled neighbor in O(log k) iterations via
// helper doubling: average probe iterations per DFS step must grow
// logarithmically (not linearly) with k on dense graphs.
void benchFig7AsyncProbe(BenchContext& ctx) {
  const std::string name = "fig7_async_probe";
  ctx.out << "# E9: Fig. 7 / Lemma 5 — Async_Probe iterations vs k\n";
  Table t({"graph", "k", "probes", "iter/probe", "log2(k)", "guests"});
  const std::vector<std::uint32_t> ks = kSweep(4, 8);
  std::vector<AsyncDispStats> slots(ks.size());
  parallelFor(ctx.batch.threads, ks.size(), [&](std::size_t i) {
    const std::uint32_t k = ks[i];
    const Graph g = makeComplete(k).build(PortLabeling::RandomPermutation, 3);
    const Placement p = rootedPlacement(g, k, 0, 5);
    AsyncEngine engine(g, p.positions, p.ids, makeRoundRobinScheduler(k));
    RootedAsyncDispersion algo(engine);
    algo.start();
    engine.run(400000000ULL);
    slots[i] = algo.stats();
  });
  for (std::size_t i = 0; i < ks.size(); ++i) {
    const AsyncDispStats& s = slots[i];
    t.row()
        .cell("complete")
        .cell(std::uint64_t{ks[i]})
        .cell(s.probes)
        .cell(double(s.probeIterations) / double(s.probes), 2)
        .cell(std::log2(double(ks[i])), 2)
        .cell(s.guestsRecruited);
  }
  emitTable(ctx, name, "iterations per probe track log2(k), not k", t);
}

// E10 — Figure 6 / Lemma 6.
// Guest_See_Off escorts g guests home in O(log g) pairing sweeps: on a
// clique the guest set roughly equals the settled neighborhood, so the
// average number of see-off sweeps per DFS step must track log2, not
// linear.
void benchFig6GuestSeeOff(BenchContext& ctx) {
  const std::string name = "fig6_guest_see_off";
  ctx.out << "# E10: Fig. 6 / Lemma 6 — Guest_See_Off sweeps\n";
  Table t({"graph", "k", "seeOffSweeps", "steps", "sweeps/step", "log2(k)"});
  const std::vector<std::uint32_t> ks = kSweep(4, 8);
  std::vector<AsyncDispStats> slots(ks.size());
  parallelFor(ctx.batch.threads, ks.size(), [&](std::size_t i) {
    const std::uint32_t k = ks[i];
    const Graph g = makeComplete(k).build(PortLabeling::RandomPermutation, 9);
    const Placement p = rootedPlacement(g, k, 0, 7);
    AsyncEngine engine(g, p.positions, p.ids, makeRoundRobinScheduler(k));
    RootedAsyncDispersion algo(engine);
    algo.start();
    engine.run(400000000ULL);
    slots[i] = algo.stats();
  });
  for (std::size_t i = 0; i < ks.size(); ++i) {
    const AsyncDispStats& s = slots[i];
    const std::uint64_t steps = s.forwardMoves + s.backtracks;
    t.row()
        .cell("complete")
        .cell(std::uint64_t{ks[i]})
        .cell(s.seeOffSweeps)
        .cell(steps)
        .cell(double(s.seeOffSweeps) / double(steps), 2)
        .cell(std::log2(double(ks[i])), 2);
  }
  emitTable(ctx, name, "see-off sweeps per step track log2(k)", t);
}

}  // namespace disp::exp
