#include "exp/bench_registry.hpp"

#include <fstream>
#include <iostream>
#include <memory>

#include "exp/benches.hpp"

namespace disp::exp {

const std::vector<BenchDef>& benchRegistry() {
  static const std::vector<BenchDef> kRegistry{
      {"table1_sync_rooted", "E1: rounds vs k, SYNC rooted (Theorem 6.1 vs baselines)",
       &benchTable1SyncRooted},
      {"table1_sync_general", "E3: rounds vs k and l, SYNC general (§8.1)",
       &benchTable1SyncGeneral},
      {"table1_async_rooted", "E2: epochs vs k, ASYNC rooted (Theorem 7.1)",
       &benchTable1AsyncRooted},
      {"table1_async_general", "E4: epochs vs k and l, ASYNC general (Theorem 8.2)",
       &benchTable1AsyncGeneral},
      {"table1_memory", "E5: max persistent bits/agent vs O(log(k+Delta))",
       &benchTable1Memory},
      {"table1_scale", "E15: SYNC rooted at k=2^10..2^14 (streams cells to JSONL)",
       &benchTable1Scale},
      {"fig1_empty_selection", "E6: empty-node fraction on random trees (Lemma 1)",
       &benchFig1EmptySelection},
      {"fig2_oscillation", "E7: cover-assignment statistics (Lemmas 2-3)",
       &benchFig2Oscillation},
      {"fig5_sync_probe", "E8: Sync_Probe rounds vs degree (Lemma 4)",
       &benchFig5SyncProbe},
      {"fig6_guest_see_off", "E10: Guest_See_Off sweeps vs log k (Lemma 6)",
       &benchFig6GuestSeeOff},
      {"fig7_async_probe", "E9: Async_Probe iterations vs log k (Lemma 5)",
       &benchFig7AsyncProbe},
      {"lower_bound_line", "E11: time/k on the Omega(k) path instance",
       &benchLowerBoundLine},
      {"ablation_techniques", "E12: KS -> doubling -> full technique levels",
       &benchAblationTechniques},
      {"ablation_scheduler", "E13: epoch robustness across ASYNC schedulers",
       &benchAblationScheduler},
      {"wallclock", "E14: simulator wall-clock per run (telemetry)",
       &benchWallclock},
  };
  return kRegistry;
}

const BenchDef* findBench(const std::string& name) {
  for (const BenchDef& def : benchRegistry()) {
    if (name == def.name) return &def;
  }
  return nullptr;
}

int runBenches(const std::vector<std::string>& names, const Cli& cli) {
  for (const std::string& name : names) {
    if (!findBench(name)) {
      std::cerr << "error: unknown sweep '" << name << "' — known sweeps:\n";
      for (const BenchDef& def : benchRegistry()) {
        std::cerr << "  " << def.name << "\n";
      }
      return 2;
    }
  }

  std::unique_ptr<std::ofstream> jsonlFile;
  std::unique_ptr<JsonlWriter> jsonl;
  const std::string jsonlPath = cli.str("jsonl", "");
  if (!jsonlPath.empty()) {
    jsonlFile = std::make_unique<std::ofstream>(jsonlPath);
    if (!*jsonlFile) {
      std::cerr << "error: cannot open --jsonl file: " << jsonlPath << "\n";
      return 2;
    }
    jsonl = std::make_unique<JsonlWriter>(*jsonlFile);
  }

  BenchContext ctx{std::cout, jsonl.get(), {}, {}};
  const std::int64_t threads = cli.integer("threads", 0);
  if (threads < 0 || threads > 4096) {
    std::cerr << "error: --threads must be in [0, 4096] (0 = hardware concurrency)\n";
    return 2;
  }
  ctx.batch.threads = static_cast<unsigned>(threads);
  ctx.seedOverride = cli.u64list("seeds");

  for (const std::string& name : names) {
    try {
      findBench(name)->fn(ctx);
    } catch (const std::exception& e) {
      std::cerr << "error: sweep '" << name << "' failed: " << e.what() << "\n";
      return 1;
    }
  }
  if (jsonlFile) {
    jsonlFile->flush();
    if (!*jsonlFile) {
      std::cerr << "error: writing --jsonl file failed: " << jsonlPath << "\n";
      return 1;
    }
  }
  return 0;
}

int benchMain(const std::string& name, int argc, const char* const* argv) {
  try {
    const Cli cli(argc, argv);
    return runBenches({name}, cli);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
}

}  // namespace disp::exp
