#include "exp/bench_registry.hpp"

#include <algorithm>
#include <atomic>
#include <fstream>
#include <iostream>
#include <memory>
#include <streambuf>
#include <thread>

#include "algo/placement.hpp"
#include "core/faults.hpp"
#include "exp/benches.hpp"
#include "graph/spec.hpp"
#include "util/stats.hpp"

namespace disp::exp {

const std::vector<BenchDef>& benchRegistry() {
  static const std::vector<BenchDef> kRegistry{
      {"table1_sync_rooted", "E1: rounds vs k, SYNC rooted (Theorem 6.1 vs baselines)",
       &benchTable1SyncRooted},
      {"table1_sync_general", "E3: rounds vs k and l, SYNC general (§8.1)",
       &benchTable1SyncGeneral},
      {"table1_async_rooted", "E2: epochs vs k, ASYNC rooted (Theorem 7.1)",
       &benchTable1AsyncRooted},
      {"table1_async_general", "E4: epochs vs k and l, ASYNC general (Theorem 8.2)",
       &benchTable1AsyncGeneral},
      {"table1_memory", "E5: max persistent bits/agent vs O(log(k+Delta))",
       &benchTable1Memory},
      {"table1_scale", "E15: SYNC rooted at k=2^10..2^14 (streams cells to JSONL)",
       &benchTable1Scale},
      {"fig1_empty_selection", "E6: empty-node fraction on random trees (Lemma 1)",
       &benchFig1EmptySelection, /*heavy=*/false, /*shardable=*/false},
      {"fig2_oscillation", "E7: cover-assignment statistics (Lemmas 2-3)",
       &benchFig2Oscillation, /*heavy=*/false, /*shardable=*/false},
      {"fig5_sync_probe", "E8: Sync_Probe rounds vs degree (Lemma 4)",
       &benchFig5SyncProbe, /*heavy=*/false, /*shardable=*/false},
      {"fig6_guest_see_off", "E10: Guest_See_Off sweeps vs log k (Lemma 6)",
       &benchFig6GuestSeeOff, /*heavy=*/false, /*shardable=*/false},
      {"fig7_async_probe", "E9: Async_Probe iterations vs log k (Lemma 5)",
       &benchFig7AsyncProbe, /*heavy=*/false, /*shardable=*/false},
      {"lower_bound_line", "E11: time/k on the Omega(k) path instance",
       &benchLowerBoundLine},
      {"ablation_techniques", "E12: KS -> doubling -> full technique levels",
       &benchAblationTechniques},
      {"ablation_scheduler", "E13: epoch robustness across ASYNC schedulers",
       &benchAblationScheduler},
      {"wallclock", "E14: simulator wall-clock per run (telemetry)",
       &benchWallclock, /*heavy=*/false, /*shardable=*/false},
      {"scaling", "E18: single-run wallclock vs --run-threads lanes (telemetry)",
       &benchScaling, /*heavy=*/false, /*shardable=*/false},
      {"scale_real", "E19: web-scale ingest & peak-RSS campaign (n=10^6..10^7)",
       &benchScaleReal, /*heavy=*/true},
      {"trace_smoke", "E16: tiny observed cells (drives --trace / check_trace.sh)",
       &benchTraceSmoke},
      {"scenario", "E17: ad-hoc workloads from --graphs/--placements/--ks specs",
       &benchScenario},
      {"faults", "E20: fault loads vs protocols — self-stabilization scorecard",
       &benchFaults},
  };
  return kRegistry;
}

const BenchDef* findBench(const std::string& name) {
  for (const BenchDef& def : benchRegistry()) {
    if (name == def.name) return &def;
  }
  return nullptr;
}

std::pair<unsigned, unsigned> parseShardFlag(const std::string& value) {
  const auto fail = [&value](const std::string& why) {
    return std::invalid_argument("--shard=" + value + ": " + why +
                                 " (canonical form is I/N, e.g. --shard=0/4)");
  };
  const auto slash = value.find('/');
  if (slash == std::string::npos || value.find('/', slash + 1) != std::string::npos) {
    throw fail("wants exactly one '/'");
  }
  const std::string index = value.substr(0, slash);
  const std::string count = value.substr(slash + 1);
  // Canonical decimal only: one spelling per shard, so coordinator file
  // names and dedup identities can never alias ("01/4" vs "1/4").
  const auto canonical = [](const std::string& s) {
    if (s.empty() || s.find_first_not_of("0123456789") != std::string::npos) return false;
    return s.size() == 1 || s[0] != '0';
  };
  if (!canonical(index)) throw fail("index is not a canonical decimal");
  if (!canonical(count)) throw fail("count is not a canonical decimal");
  if (index.size() > 4 || count.size() > 4) throw fail("shard numbers out of range");
  const unsigned long long i = std::stoull(index);
  const unsigned long long n = std::stoull(count);
  if (n < 1 || n > 4096) throw fail("count must be in [1, 4096]");
  if (i >= n) throw fail("index must be < count");
  return {static_cast<unsigned>(i), static_cast<unsigned>(n)};
}

namespace {

/// --seeds/--graphs/--placements/--faults/--ks, validated up front so a
/// typo'd spec fails before any sweep runs.  Shared by runBenches and
/// listBenchCells; throws std::invalid_argument.
void applyAxisOverrides(BenchContext& ctx, const Cli& cli) {
  ctx.seedOverride = cli.u64list("seeds");
  // Workload overrides: ';'-separated GraphSpec / PlacementSpec strings
  // (spec parameters use ',' internally) and a comma-separated k list.
  ctx.graphOverride = cli.specList("graphs");
  ctx.placementOverride = cli.specList("placements");
  ctx.faultsOverride = cli.specList("faults");
  for (const std::string& g : ctx.graphOverride) (void)GraphSpec::parse(g);
  for (const std::string& p : ctx.placementOverride) (void)PlacementSpec::parse(p);
  for (const std::string& f : ctx.faultsOverride) (void)FaultSpec::parse(f);
  for (const std::uint64_t k : cli.u64list("ks")) {
    if (k < 1 || k > (1ULL << 24)) {
      throw std::invalid_argument("--ks values must be in [1, 2^24]");
    }
    ctx.kOverride.push_back(static_cast<std::uint32_t>(k));
  }
}

struct NullBuffer : std::streambuf {
  int overflow(int c) override { return c; }
};

}  // namespace

std::vector<ListedCell> listBenchCells(const std::vector<std::string>& names,
                                       const Cli& cli) {
  for (const std::string& name : names) {
    const BenchDef* def = findBench(name);
    if (def == nullptr) throw std::invalid_argument("unknown sweep '" + name + "'");
    if (!def->shardable) {
      throw std::invalid_argument(
          "sweep '" + name + "' is not shardable (hand-rolled loop outside "
          "the canonical cell enumeration) — every shard would rerun it whole");
    }
  }
  NullBuffer nullBuf;
  std::ostream nullOut(&nullBuf);
  BenchContext ctx{nullOut, nullptr, {}, {}, {}, {}, {}, {}};
  applyAxisOverrides(ctx, cli);
  ctx.enumerateOnly = true;
  std::vector<ListedCell> out;
  std::string currentSweep;
  std::size_t invocations = 0;
  ctx.batch.onCellListed = [&out, &currentSweep, &invocations](
                               std::size_t index, const CellKey& key, bool) {
    if (index == 0) ++invocations;  // every run() call starts at cell 0
    out.push_back({currentSweep, invocations - 1, index, key});
  };
  for (const std::string& name : names) {
    currentSweep = name;
    invocations = 0;
    findBench(name)->fn(ctx);
  }
  return out;
}

int runBenches(const std::vector<std::string>& names, const Cli& cli) {
  for (const std::string& name : names) {
    if (!findBench(name)) {
      std::cerr << "error: unknown sweep '" << name << "' — known sweeps:\n";
      for (const BenchDef& def : benchRegistry()) {
        std::cerr << "  " << def.name << "\n";
      }
      return 2;
    }
  }

  // --list-cells: print the canonical enumeration (respecting --shard and
  // the axis overrides) as JSON lines and exit — nothing is simulated.  An
  // empty listing is a valid answer, so this path always exits 0.
  if (cli.has("list-cells")) {
    unsigned listShardIndex = 0, listShardCount = 1;
    try {
      if (cli.has("shard")) {
        const auto sh = parseShardFlag(cli.str("shard", ""));
        listShardIndex = sh.first;
        listShardCount = sh.second;
      }
      const std::vector<ListedCell> cells = listBenchCells(names, cli);
      JsonlWriter out(std::cout);
      for (const ListedCell& c : cells) {
        if (c.index % listShardCount != listShardIndex) continue;
        out.record({{"sweep", c.sweep},
                    {"invocation", std::to_string(c.invocation)},
                    {"index", std::to_string(c.index)},
                    {"graph", c.key.graph},
                    {"k", std::to_string(c.key.k)},
                    {"placement", c.key.placement},
                    {"sched", c.key.scheduler},
                    {"algo", c.key.algorithm},
                    {"faults", c.key.faults}});
      }
      return 0;
    } catch (const std::exception& e) {
      std::cerr << "error: " << e.what() << "\n";
      return 2;
    }
  }

  std::unique_ptr<std::ofstream> jsonlFile;
  std::unique_ptr<JsonlWriter> jsonl;
  const std::string jsonlPath = cli.str("jsonl", "");
  if (!jsonlPath.empty()) {
    jsonlFile = std::make_unique<std::ofstream>(jsonlPath);
    if (!*jsonlFile) {
      std::cerr << "error: cannot open --jsonl file: " << jsonlPath << "\n";
      return 2;
    }
    jsonl = std::make_unique<JsonlWriter>(*jsonlFile);
  }

  BenchContext ctx{std::cout, jsonl.get(), {}, {}, {}, {}, {}, {}};
  const std::int64_t threads = cli.integer("threads", 0);
  if (threads < 0 || threads > 4096) {
    std::cerr << "error: --threads must be in [0, 4096] (0 = hardware concurrency)\n";
    return 2;
  }
  ctx.batch.threads = static_cast<unsigned>(threads);
  const std::int64_t runThreads = cli.integer("run-threads", 1);
  if (runThreads < 0 || runThreads > 256) {
    std::cerr << "error: --run-threads must be in [0, 256] (0 = hardware concurrency)\n";
    return 2;
  }
  ctx.batch.runThreads = static_cast<unsigned>(runThreads);
  // Nested-parallelism guard: cell-level workers (--threads) and intra-run
  // lanes (--run-threads) multiply into oversubscription.  0 means
  // hardware concurrency for both flags, so resolve before comparing.
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  const unsigned effCell = ctx.batch.threads == 0 ? hw : ctx.batch.threads;
  const unsigned effRun = ctx.batch.runThreads == 0 ? hw : ctx.batch.runThreads;
  if (effRun > 1 && effCell > 1) {
    std::cerr << "error: --run-threads=" << runThreads
              << " requires --threads=1 (cell-level and intra-run "
                 "parallelism multiply; pick one axis)\n";
    return 2;
  }
  try {
    applyAxisOverrides(ctx, cli);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }

  // --shard=I/N: deterministic cell-index partition (merge the JSONL
  // outputs with scripts/merge_jsonl.sh or disp_fleet merge).
  if (cli.has("shard")) {
    try {
      const auto sh = parseShardFlag(cli.str("shard", ""));
      ctx.batch.shardIndex = sh.first;
      ctx.batch.shardCount = sh.second;
    } catch (const std::exception& e) {
      std::cerr << "error: " << e.what() << "\n";
      return 2;
    }
    for (const std::string& name : names) {
      if (!findBench(name)->shardable) {
        std::cerr << "error: sweep '" << name
                  << "' is not shardable (hand-rolled loop outside the "
                     "canonical cell enumeration) — every shard would rerun "
                     "it whole; drop --shard or drop the sweep\n";
        return 2;
      }
    }
  }

  // Empty-shard detection: every BatchRunner invocation adds the cells
  // this shard owns; zero at the end means the JSONL output is validly
  // empty (kEmptyShardExitCode, distinct from a crash).
  std::atomic<std::uint64_t> ownedCells{0};
  ctx.batch.ownedCells = &ownedCells;

  // --stream-cells: mirror every finished cell as one generic row the
  // moment its replicates land (completion order; the sink flushes per
  // line), so a SIGKILL'd worker keeps its finished cells durable.  Suites
  // with richer custom streams (table1_scale, scale_real) override this
  // hook on their own BatchOptions copy.
  std::string currentSweep;
  if (cli.has("stream-cells")) {
    if (jsonl == nullptr) {
      std::cerr << "error: --stream-cells wants --jsonl=PATH (it streams "
                   "cell rows there)\n";
      return 2;
    }
    ctx.batch.onCellDone = [&currentSweep, sink = jsonl.get()](const Cell& c) {
      std::size_t errors = 0;
      for (const RunRecord& r : c.replicates) {
        if (!r.error.empty()) ++errors;
      }
      std::vector<std::pair<std::string, std::string>> fields;
      fields.emplace_back("sweep", currentSweep);
      fields.emplace_back("table", "cell");
      fields.emplace_back("graph", c.key.graph);
      fields.emplace_back("k", std::to_string(c.key.k));
      fields.emplace_back("placement", c.key.placement);
      fields.emplace_back("sched", c.key.scheduler);
      fields.emplace_back("algo", c.key.algorithm);
      fields.emplace_back("faults", c.key.faults);
      fields.emplace_back("n", std::to_string(c.first().n));
      fields.emplace_back("m", std::to_string(c.first().edges));
      fields.emplace_back("Delta", std::to_string(c.first().maxDegree));
      fields.emplace_back("time",
                          fmt(c.meanTime(), c.replicates.size() == 1 ? 0 : 1));
      fields.emplace_back("moves", std::to_string(c.first().run.totalMoves));
      fields.emplace_back("dispersed", c.allDispersed() ? "yes" : "NO");
      fields.emplace_back("errors", std::to_string(errors));
      fields.emplace_back("seeds", std::to_string(c.replicates.size()));
      sink->record(fields);
    };
  }

  // Trace sink: every replicate of every selected sweep streams its typed
  // events + sampled snapshots as JSON lines (schema in exp/sink.hpp).
  std::unique_ptr<std::ofstream> traceFile;
  std::unique_ptr<TraceJsonl> trace;
  const std::string tracePath = cli.str("trace", "");
  const std::int64_t sample = cli.integer("sample", 1);
  if (sample < 1) {
    std::cerr << "error: --sample must be >= 1 (snapshot cadence)\n";
    return 2;
  }
  if (!tracePath.empty()) {
    traceFile = std::make_unique<std::ofstream>(tracePath);
    if (!*traceFile) {
      std::cerr << "error: cannot open --trace file: " << tracePath << "\n";
      return 2;
    }
    trace = std::make_unique<TraceJsonl>(*traceFile,
                                         static_cast<std::uint64_t>(sample));
    ctx.batch.observe = [tracer = trace.get()](const CellKey& key,
                                               std::uint64_t seed,
                                               RunOptions& opts) {
      tracer->observe(key, seed, opts);
    };
  }

  // Trajectory CSV sink (exclusive with --trace: both claim the snapshot
  // hooks; the trace stream already carries the sample rows).
  std::unique_ptr<std::ofstream> trajFile;
  std::unique_ptr<TrajectoryCsv> traj;
  const std::string trajPath = cli.str("trajectory", "");
  if (!trajPath.empty()) {
    if (!tracePath.empty()) {
      std::cerr << "error: --trajectory and --trace are mutually exclusive "
                   "(--trace already streams sample rows)\n";
      return 2;
    }
    trajFile = std::make_unique<std::ofstream>(trajPath);
    if (!*trajFile) {
      std::cerr << "error: cannot open --trajectory file: " << trajPath << "\n";
      return 2;
    }
    traj = std::make_unique<TrajectoryCsv>(*trajFile,
                                           static_cast<std::uint64_t>(sample));
    ctx.batch.observe = [sink = traj.get()](const CellKey& key, std::uint64_t seed,
                                            RunOptions& opts) {
      sink->observe(key, seed, opts);
    };
  }

  for (const std::string& name : names) {
    currentSweep = name;
    try {
      findBench(name)->fn(ctx);
    } catch (const std::exception& e) {
      std::cerr << "error: sweep '" << name << "' failed: " << e.what() << "\n";
      return 1;
    }
  }
  if (jsonlFile) {
    jsonlFile->flush();
    if (!*jsonlFile) {
      std::cerr << "error: writing --jsonl file failed: " << jsonlPath << "\n";
      return 1;
    }
  }
  if (traceFile) {
    traceFile->flush();
    if (!*traceFile) {
      std::cerr << "error: writing --trace file failed: " << tracePath << "\n";
      return 1;
    }
  }
  if (trajFile) {
    trajFile->flush();
    if (!*trajFile) {
      std::cerr << "error: writing --trajectory file failed: " << trajPath << "\n";
      return 1;
    }
  }
  if (cli.has("shard") && ownedCells.load() == 0) {
    std::cerr << "note: --shard=" << cli.str("shard", "")
              << " owns zero cells of the selected sweeps (valid, just empty)\n";
    return kEmptyShardExitCode;
  }
  return 0;
}

int benchMain(const std::string& name, int argc, const char* const* argv) {
  try {
    const Cli cli(argc, argv);
    return runBenches({name}, cli);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
}

}  // namespace disp::exp
