#include "exp/bench_registry.hpp"

#include <algorithm>
#include <fstream>
#include <iostream>
#include <memory>
#include <thread>

#include "algo/placement.hpp"
#include "core/faults.hpp"
#include "exp/benches.hpp"
#include "graph/spec.hpp"

namespace disp::exp {

const std::vector<BenchDef>& benchRegistry() {
  static const std::vector<BenchDef> kRegistry{
      {"table1_sync_rooted", "E1: rounds vs k, SYNC rooted (Theorem 6.1 vs baselines)",
       &benchTable1SyncRooted},
      {"table1_sync_general", "E3: rounds vs k and l, SYNC general (§8.1)",
       &benchTable1SyncGeneral},
      {"table1_async_rooted", "E2: epochs vs k, ASYNC rooted (Theorem 7.1)",
       &benchTable1AsyncRooted},
      {"table1_async_general", "E4: epochs vs k and l, ASYNC general (Theorem 8.2)",
       &benchTable1AsyncGeneral},
      {"table1_memory", "E5: max persistent bits/agent vs O(log(k+Delta))",
       &benchTable1Memory},
      {"table1_scale", "E15: SYNC rooted at k=2^10..2^14 (streams cells to JSONL)",
       &benchTable1Scale},
      {"fig1_empty_selection", "E6: empty-node fraction on random trees (Lemma 1)",
       &benchFig1EmptySelection},
      {"fig2_oscillation", "E7: cover-assignment statistics (Lemmas 2-3)",
       &benchFig2Oscillation},
      {"fig5_sync_probe", "E8: Sync_Probe rounds vs degree (Lemma 4)",
       &benchFig5SyncProbe},
      {"fig6_guest_see_off", "E10: Guest_See_Off sweeps vs log k (Lemma 6)",
       &benchFig6GuestSeeOff},
      {"fig7_async_probe", "E9: Async_Probe iterations vs log k (Lemma 5)",
       &benchFig7AsyncProbe},
      {"lower_bound_line", "E11: time/k on the Omega(k) path instance",
       &benchLowerBoundLine},
      {"ablation_techniques", "E12: KS -> doubling -> full technique levels",
       &benchAblationTechniques},
      {"ablation_scheduler", "E13: epoch robustness across ASYNC schedulers",
       &benchAblationScheduler},
      {"wallclock", "E14: simulator wall-clock per run (telemetry)",
       &benchWallclock},
      {"scaling", "E18: single-run wallclock vs --run-threads lanes (telemetry)",
       &benchScaling},
      {"scale_real", "E19: web-scale ingest & peak-RSS campaign (n=10^6..10^7)",
       &benchScaleReal, /*heavy=*/true},
      {"trace_smoke", "E16: tiny observed cells (drives --trace / check_trace.sh)",
       &benchTraceSmoke},
      {"scenario", "E17: ad-hoc workloads from --graphs/--placements/--ks specs",
       &benchScenario},
      {"faults", "E20: fault loads vs protocols — self-stabilization scorecard",
       &benchFaults},
  };
  return kRegistry;
}

const BenchDef* findBench(const std::string& name) {
  for (const BenchDef& def : benchRegistry()) {
    if (name == def.name) return &def;
  }
  return nullptr;
}

int runBenches(const std::vector<std::string>& names, const Cli& cli) {
  for (const std::string& name : names) {
    if (!findBench(name)) {
      std::cerr << "error: unknown sweep '" << name << "' — known sweeps:\n";
      for (const BenchDef& def : benchRegistry()) {
        std::cerr << "  " << def.name << "\n";
      }
      return 2;
    }
  }

  std::unique_ptr<std::ofstream> jsonlFile;
  std::unique_ptr<JsonlWriter> jsonl;
  const std::string jsonlPath = cli.str("jsonl", "");
  if (!jsonlPath.empty()) {
    jsonlFile = std::make_unique<std::ofstream>(jsonlPath);
    if (!*jsonlFile) {
      std::cerr << "error: cannot open --jsonl file: " << jsonlPath << "\n";
      return 2;
    }
    jsonl = std::make_unique<JsonlWriter>(*jsonlFile);
  }

  BenchContext ctx{std::cout, jsonl.get(), {}, {}, {}, {}, {}, {}};
  const std::int64_t threads = cli.integer("threads", 0);
  if (threads < 0 || threads > 4096) {
    std::cerr << "error: --threads must be in [0, 4096] (0 = hardware concurrency)\n";
    return 2;
  }
  ctx.batch.threads = static_cast<unsigned>(threads);
  const std::int64_t runThreads = cli.integer("run-threads", 1);
  if (runThreads < 0 || runThreads > 256) {
    std::cerr << "error: --run-threads must be in [0, 256] (0 = hardware concurrency)\n";
    return 2;
  }
  ctx.batch.runThreads = static_cast<unsigned>(runThreads);
  // Nested-parallelism guard: cell-level workers (--threads) and intra-run
  // lanes (--run-threads) multiply into oversubscription.  0 means
  // hardware concurrency for both flags, so resolve before comparing.
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  const unsigned effCell = ctx.batch.threads == 0 ? hw : ctx.batch.threads;
  const unsigned effRun = ctx.batch.runThreads == 0 ? hw : ctx.batch.runThreads;
  if (effRun > 1 && effCell > 1) {
    std::cerr << "error: --run-threads=" << runThreads
              << " requires --threads=1 (cell-level and intra-run "
                 "parallelism multiply; pick one axis)\n";
    return 2;
  }
  ctx.seedOverride = cli.u64list("seeds");

  // Workload overrides: ';'-separated GraphSpec / PlacementSpec strings
  // (spec parameters use ',' internally) and a comma-separated k list.
  // Validate up front so a typo'd spec fails before any sweep runs.
  ctx.graphOverride = cli.specList("graphs");
  ctx.placementOverride = cli.specList("placements");
  ctx.faultsOverride = cli.specList("faults");
  try {
    for (const std::string& g : ctx.graphOverride) (void)GraphSpec::parse(g);
    for (const std::string& p : ctx.placementOverride) {
      (void)PlacementSpec::parse(p);
    }
    for (const std::string& f : ctx.faultsOverride) (void)FaultSpec::parse(f);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
  for (const std::uint64_t k : cli.u64list("ks")) {
    if (k < 1 || k > (1ULL << 24)) {
      std::cerr << "error: --ks values must be in [1, 2^24]\n";
      return 2;
    }
    ctx.kOverride.push_back(static_cast<std::uint32_t>(k));
  }

  // --shard=I/N: deterministic cell-index partition (merge the JSONL
  // outputs with scripts/merge_jsonl.sh).
  const std::string shard = cli.str("shard", "");
  if (!shard.empty()) {
    const auto slash = shard.find('/');
    if (slash == std::string::npos) {
      std::cerr << "error: --shard wants I/N (e.g. --shard=0/4)\n";
      return 2;
    }
    std::uint64_t index = 0, count = 0;
    try {
      index = parseU64(shard.substr(0, slash), "--shard index");
      count = parseU64(shard.substr(slash + 1), "--shard count");
    } catch (const std::exception& e) {
      std::cerr << "error: " << e.what() << "\n";
      return 2;
    }
    if (count < 1 || count > 4096 || index >= count) {
      std::cerr << "error: --shard=I/N needs I < N <= 4096\n";
      return 2;
    }
    ctx.batch.shardIndex = static_cast<unsigned>(index);
    ctx.batch.shardCount = static_cast<unsigned>(count);
  }

  // Trace sink: every replicate of every selected sweep streams its typed
  // events + sampled snapshots as JSON lines (schema in exp/sink.hpp).
  std::unique_ptr<std::ofstream> traceFile;
  std::unique_ptr<TraceJsonl> trace;
  const std::string tracePath = cli.str("trace", "");
  const std::int64_t sample = cli.integer("sample", 1);
  if (sample < 1) {
    std::cerr << "error: --sample must be >= 1 (snapshot cadence)\n";
    return 2;
  }
  if (!tracePath.empty()) {
    traceFile = std::make_unique<std::ofstream>(tracePath);
    if (!*traceFile) {
      std::cerr << "error: cannot open --trace file: " << tracePath << "\n";
      return 2;
    }
    trace = std::make_unique<TraceJsonl>(*traceFile,
                                         static_cast<std::uint64_t>(sample));
    ctx.batch.observe = [tracer = trace.get()](const CellKey& key,
                                               std::uint64_t seed,
                                               RunOptions& opts) {
      tracer->observe(key, seed, opts);
    };
  }

  // Trajectory CSV sink (exclusive with --trace: both claim the snapshot
  // hooks; the trace stream already carries the sample rows).
  std::unique_ptr<std::ofstream> trajFile;
  std::unique_ptr<TrajectoryCsv> traj;
  const std::string trajPath = cli.str("trajectory", "");
  if (!trajPath.empty()) {
    if (!tracePath.empty()) {
      std::cerr << "error: --trajectory and --trace are mutually exclusive "
                   "(--trace already streams sample rows)\n";
      return 2;
    }
    trajFile = std::make_unique<std::ofstream>(trajPath);
    if (!*trajFile) {
      std::cerr << "error: cannot open --trajectory file: " << trajPath << "\n";
      return 2;
    }
    traj = std::make_unique<TrajectoryCsv>(*trajFile,
                                           static_cast<std::uint64_t>(sample));
    ctx.batch.observe = [sink = traj.get()](const CellKey& key, std::uint64_t seed,
                                            RunOptions& opts) {
      sink->observe(key, seed, opts);
    };
  }

  for (const std::string& name : names) {
    try {
      findBench(name)->fn(ctx);
    } catch (const std::exception& e) {
      std::cerr << "error: sweep '" << name << "' failed: " << e.what() << "\n";
      return 1;
    }
  }
  if (jsonlFile) {
    jsonlFile->flush();
    if (!*jsonlFile) {
      std::cerr << "error: writing --jsonl file failed: " << jsonlPath << "\n";
      return 1;
    }
  }
  if (traceFile) {
    traceFile->flush();
    if (!*traceFile) {
      std::cerr << "error: writing --trace file failed: " << tracePath << "\n";
      return 1;
    }
  }
  if (trajFile) {
    trajFile->flush();
    if (!*trajFile) {
      std::cerr << "error: writing --trajectory file failed: " << trajPath << "\n";
      return 1;
    }
  }
  return 0;
}

int benchMain(const std::string& name, int argc, const char* const* argv) {
  try {
    const Cli cli(argc, argv);
    return runBenches({name}, cli);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
}

}  // namespace disp::exp
