#pragma once
// Declarative experiment sweeps.
//
// A SweepSpec names a cross-product of experiment axes — graph families ×
// agent counts k × start-node clusters ℓ × ASYNC schedulers × algorithms —
// plus a list of replicate seeds.  Each point of the cross-product is a
// *cell*; each cell is simulated once per seed (the seed drives graph
// construction, placement and the run itself, exactly like the historical
// bench_common::runCase single-seed path).  BatchRunner (batch_runner.hpp)
// executes a spec over a thread pool, sharing each immutable Graph across
// every run that uses it, and aggregates replicates per cell.
//
// Scale knob: DISP_BENCH_SCALE ∈ {0.5, 1, 2, 4} scales kSweep() the same
// way it always scaled the hand-rolled bench loops.

#include <cstdint>
#include <cstdlib>
#include <functional>
#include <string>
#include <vector>

#include "algo/runner.hpp"
#include "graph/graph.hpp"
#include "util/stats.hpp"

namespace disp::exp {

[[nodiscard]] inline double scale() {
  if (const char* s = std::getenv("DISP_BENCH_SCALE")) return std::atof(s);
  return 1.0;
}

/// k values 2^lo .. 2^hi scaled by DISP_BENCH_SCALE (minimum 8).
[[nodiscard]] std::vector<std::uint32_t> kSweep(std::uint32_t lo = 5,
                                                std::uint32_t hi = 9);

/// One simulation point: every input runSession needs, from one seed.
struct CaseSpec {
  std::string family = "er";
  std::uint32_t k = 0;
  std::string algorithm = "rooted_sync";  ///< registry key (algo/registry.hpp)
  std::uint32_t clusters = 1;  ///< 1 = rooted placement; >1 = ℓ clusters
  std::string scheduler = "round_robin";
  std::uint64_t seed = 17;  ///< drives graph, placement and run
  double nOverK = 2.0;      ///< n = k * nOverK nodes
  PortLabeling labeling = PortLabeling::RandomPermutation;
  std::uint64_t limit = 0;  ///< round/activation cap; 0 = auto (RunOptions)
  /// Observer plumbing: when set, invoked on the run's RunOptions right
  /// before runSession, to attach onEvent/onRound/... hooks (BatchRunner
  /// binds its BatchOptions::observe hook here per replicate).
  std::function<void(RunOptions&)> observe;
};

/// Outcome of one simulated case plus the graph's vital statistics.
struct RunRecord {
  RunResult run;
  std::uint32_t n = 0;
  std::uint32_t maxDegree = 0;
  std::uint64_t edges = 0;
  /// Non-empty when the run threw (limit hit — protocol bug or too-small
  /// cap).  BatchRunner records the error instead of aborting the sweep;
  /// errored replicates count as undispersed and are excluded from `time`.
  std::string error;
};

/// Builds the case's graph and placement and runs it once.
[[nodiscard]] RunRecord runCell(const CaseSpec& c);

/// Same, against a prebuilt graph (must equal makeFamily for the case's
/// family/n/seed/labeling — BatchRunner uses this to share graphs).
[[nodiscard]] RunRecord runCell(const Graph& g, const CaseSpec& c);

/// The cross-product of experiment axes.  Every vector axis must be
/// non-empty; `seeds` are the replicates aggregated per cell.
struct SweepSpec {
  std::string name;  ///< registry / JSONL identifier
  std::vector<std::string> families;
  std::vector<std::uint32_t> ks;
  std::vector<std::string> algorithms;  ///< registry keys
  std::vector<std::uint32_t> clusterCounts{1};
  std::vector<std::string> schedulers{"round_robin"};
  std::vector<std::uint64_t> seeds{17};
  double nOverK = 2.0;
  PortLabeling labeling = PortLabeling::RandomPermutation;
  std::uint64_t limit = 0;  ///< per-run round/activation cap; 0 = auto
  /// Multiplies the k axis at enumeration time (each k clamped to >= 8,
  /// duplicates dropped).  1.0 = run `ks` as written.  Sweeps whose ks are
  /// spelled out literally (e.g. table1_scale's 2^10..2^14) set this from
  /// scale() so DISP_BENCH_SCALE still shrinks or grows them; sweeps built
  /// via kSweep() already folded the env scale into `ks` and keep 1.0.
  double scale = 1.0;

  /// The k axis after applying `scale`.
  [[nodiscard]] std::vector<std::uint32_t> scaledKs() const;

  [[nodiscard]] std::size_t cellCount() const {
    return families.size() * scaledKs().size() * algorithms.size() *
           clusterCounts.size() * schedulers.size();
  }
};

/// Coordinates of one cell inside a sweep (the seed axis is aggregated).
struct CellKey {
  std::string family;
  std::uint32_t k = 0;
  std::uint32_t clusters = 1;
  std::string scheduler = "round_robin";
  std::string algorithm = "rooted_sync";  ///< registry key

  [[nodiscard]] bool operator==(const CellKey&) const = default;
  [[nodiscard]] std::string describe() const;
};

/// One aggregated cell: replicate runs (index-parallel with spec.seeds)
/// plus summary statistics over the time metric.
struct Cell {
  CellKey key;
  std::vector<RunRecord> replicates;
  Summary time;  ///< rounds (SYNC) / epochs (ASYNC) over non-errored replicates

  [[nodiscard]] const RunRecord& first() const { return replicates.front(); }
  [[nodiscard]] bool allDispersed() const;
  /// Mean time over replicates (the single value for single-seed sweeps).
  [[nodiscard]] double meanTime() const { return time.mean; }
  /// Memory high-water mark across replicates (the claim is a worst case).
  [[nodiscard]] std::uint64_t maxMemoryBits() const;
};

/// Result of executing a SweepSpec: cells in deterministic enumeration
/// order (family ▸ k ▸ clusters ▸ scheduler ▸ algorithm, each axis in spec
/// order) — independent of thread count.
struct SweepResult {
  SweepSpec spec;
  std::vector<Cell> cells;

  /// Cell lookup; throws std::out_of_range naming the missing key.
  [[nodiscard]] const Cell& at(const CellKey& key) const;
};

/// Enumerates the cell keys of a spec in canonical order.
[[nodiscard]] std::vector<CellKey> enumerateCells(const SweepSpec& spec);

/// 95% confidence-interval half-width of the mean (normal approximation);
/// 0 for fewer than two samples.
[[nodiscard]] double ci95(const Summary& s);

/// The "fit[label]: ..." growth-diagnosis line benches print under each
/// table (Table-1 model check: exponent of time ~ k^p plus flat-ratio
/// columns).
[[nodiscard]] std::string growthDiagnosisLine(const std::string& label,
                                              const std::vector<double>& ks,
                                              const std::vector<double>& times);

}  // namespace disp::exp
